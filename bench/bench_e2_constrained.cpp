// E2 — Lemma 3: Constrained-Multisearch(Psi, delta) runs in O(sqrt n)
// regardless of how queries are distributed over the pieces.
//
// Workload: a directed k-ary tree; queries are advanced to the tail pieces
// and a single Constrained-Multisearch call is measured. Three query
// distributions stress the Gamma-copy machinery: uniform (balanced),
// Zipf(1.1) (skewed), and point (every query in one piece). We also sweep
// the splitting depth to vary delta (piece-size exponent).
#include <cmath>

#include "bench_common.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "multisearch/constrained.hpp"
#include "multisearch/partitioned.hpp"
#include "multisearch/query.hpp"
#include "util/rng.hpp"

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::KaryTree;

namespace {

enum class Load { kUniform, kZipf, kPoint };

const char* load_name(Load l) {
  switch (l) {
    case Load::kUniform: return "uniform";
    case Load::kZipf: return "zipf(1.1)";
    default: return "point";
  }
}

struct RunResult {
  ConstrainedStats stats;
  double p;
};

RunResult run_one(std::size_t nkeys, Load load, std::int32_t cut_depth,
                  const bench::TraceOptions& topt = {},
                  const std::string& point = "") {
  KaryTree tree(ds::iota_keys(nkeys), 2, ds::TreeMode::kDirected);
  const auto psi = cut_depth < 0 ? tree.alpha_splitting()
                                 : tree.alpha_splitting_at(cut_depth);
  util::Rng rng(nkeys * 31 + static_cast<std::size_t>(load));
  std::vector<Query> qs;
  switch (load) {
    case Load::kUniform:
      qs = ds::uniform_key_queries(nkeys, nkeys, rng);
      break;
    case Load::kZipf:
      qs = ds::zipf_key_queries(nkeys, nkeys, 1.1, rng);
      break;
    case Load::kPoint:
      qs = make_queries(nkeys);
      for (auto& q : qs) q.key[0] = static_cast<std::int64_t>(nkeys / 2);
      break;
  }
  reset_queries(qs);
  const auto prog = tree.rank_count();
  // Advance all queries into the tail pieces: cut_depth+1 global steps.
  const auto depth = cut_depth < 0
                         ? std::max<std::int32_t>(1, (tree.height() + 1) / 2)
                         : cut_depth;
  for (std::int32_t i = 0; i <= depth; ++i)
    global_multistep(tree.graph(), prog, qs);
  bench::TracedModel tm(topt);
  const auto shape = tree.graph().shape_for(qs.size());
  const auto st = constrained_multisearch(tree.graph(), psi, prog, qs, tm.model, shape);
  if (!point.empty()) bench::emit_trace(tm.rec, topt, point);
  return {st, static_cast<double>(shape.size())};
}

}  // namespace

int main(int argc, char** argv) {
  const auto topt = bench::parse_trace_flag(argc, argv);
  bench::BenchReport breport("e2_constrained", argc, argv);
  // Part 1: n sweep per load shape.
  for (const Load load : {Load::kUniform, Load::kZipf, Load::kPoint}) {
    bench::section(std::string("E2: Lemma 3, n sweep, load = ") +
                   load_name(load));
    util::Table t({"n(mesh)", "marked", "copies", "rounds", "advanced",
                   "steps", "steps/sqrt(n)"});
    std::vector<double> ns, steps;
    for (const auto nkeys : bench::pow2_sweep(10, 19)) {
      const auto r = run_one(nkeys, load, -1, topt,
                             std::string("e2_") + load_name(load) + "_n" +
                                 std::to_string(nkeys));
      t.add_row({static_cast<std::int64_t>(r.p),
                 static_cast<std::int64_t>(r.stats.marked),
                 static_cast<std::int64_t>(r.stats.copies),
                 static_cast<std::int64_t>(r.stats.rounds),
                 static_cast<std::int64_t>(r.stats.advanced),
                 r.stats.cost.steps, r.stats.cost.steps / std::sqrt(r.p)});
      ns.push_back(r.p);
      steps.push_back(r.stats.cost.steps);
    }
    bench::emit(t, std::string("e2_") + load_name(load));
    bench::report_fit("E2 constrained multisearch (claim O(sqrt n))", ns,
                      steps, 0.5);
  }

  // Part 2: delta sweep at fixed n (cut depth controls piece sizes).
  bench::section("E2: delta sweep at n = 2^18 (uniform load)");
  util::Table t({"cut depth", "delta", "copies", "rounds", "steps",
                 "steps/sqrt(n)"});
  const std::size_t nkeys = std::size_t{1} << 18;
  KaryTree probe(ds::iota_keys(nkeys), 2, ds::TreeMode::kDirected);
  for (std::int32_t d = 4; d < probe.height(); d += 3) {
    const auto r = run_one(nkeys, Load::kUniform, d, topt,
                           "e2_delta_d" + std::to_string(d));
    KaryTree tree(ds::iota_keys(nkeys), 2, ds::TreeMode::kDirected);
    const auto psi = tree.alpha_splitting_at(d);
    t.add_row({static_cast<std::int64_t>(d), psi.delta,
               static_cast<std::int64_t>(r.stats.copies),
               static_cast<std::int64_t>(r.stats.rounds), r.stats.cost.steps,
               r.stats.cost.steps / std::sqrt(r.p)});
  }
  bench::emit(t, "e2_delta");
  return 0;
}
