// E3 — Theorem 5: multisearch on an alpha-partitionable directed graph in
// O(sqrt n + r * sqrt(n)/log n).
//
// Workload: the comb graph (spine tree + directed teeth, Figure-2 shape
// with controllable path lengths far beyond log n). Two sweeps:
//   (a) r sweep at fixed n — the additive shape: steps ~ a + b * r/log n,
//       and the advantage over the synchronous baseline (r * sqrt n)
//       approaches log n;
//   (b) n sweep at r = c*log n — exponent ~0.5.
#include <cmath>

#include "bench_common.hpp"
#include "datastruct/workloads.hpp"
#include "multisearch/partitioned.hpp"
#include "multisearch/query.hpp"
#include "multisearch/synchronous.hpp"
#include "util/rng.hpp"

using namespace meshsearch;
using namespace meshsearch::msearch;

namespace {

struct ComboResult {
  double alg_steps = 0, sync_steps = 0;
  std::size_t phases = 0;
  std::int32_t r = 0;
  double p = 0;
};

ComboResult run(std::size_t teeth, std::size_t tooth_len, std::size_t m_q,
                std::int64_t depth, std::uint64_t seed,
                const bench::TraceOptions& topt = {},
                const std::string& point = "") {
  const auto comb = ds::build_comb(teeth, tooth_len);
  auto qs = make_queries(m_q);
  util::Rng rng(seed);
  for (auto& q : qs) {
    q.key[0] = static_cast<std::int64_t>(rng.uniform(1ull << 30));
    q.key[1] = depth;
  }
  const ds::CombWalk prog{comb.root};
  bench::TracedModel tm(topt);
  const auto shape = comb.graph.shape_for(qs.size());
  ComboResult res;
  res.p = static_cast<double>(shape.size());
  auto qa = qs;
  const auto alg =
      multisearch_alpha(comb.graph, comb.splitting, prog, qa, tm.model, shape);
  res.alg_steps = alg.cost.steps;
  res.phases = alg.log_phases;
  res.r = alg.longest_path;
  if (!point.empty()) bench::emit_trace(tm.rec, topt, point);
  auto qb = qs;
  reset_queries(qb);
  res.sync_steps = synchronous_multisearch(comb.graph, prog, qb, tm.model, shape)
                       .cost.steps;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto topt = bench::parse_trace_flag(argc, argv);
  bench::BenchReport breport("e3_alpha", argc, argv);
  // (a) r sweep at fixed n ~ 2^18.
  bench::section("E3: Theorem 5, r sweep at n ~ 2^18");
  const std::size_t teeth = 1 << 9, tooth_len = 1 << 9;  // ~2^18 vertices
  util::Table t({"r", "r/log n", "log-phases", "alg steps", "sync steps",
                 "sync/alg", "alg steps/sqrt(n)"});
  std::vector<double> rs, steps;
  for (const std::int64_t depth : {0L, 8L, 32L, 64L, 128L, 256L, 480L}) {
    const auto res = run(teeth, tooth_len, teeth * 64, depth, 11, topt,
                         "e3_r" + std::to_string(depth));
    const double logn = std::log2(res.p);
    t.add_row({static_cast<std::int64_t>(res.r), res.r / logn,
               static_cast<std::int64_t>(res.phases), res.alg_steps,
               res.sync_steps, res.sync_steps / res.alg_steps,
               res.alg_steps / std::sqrt(res.p)});
    rs.push_back(static_cast<double>(res.r));
    steps.push_back(res.alg_steps);
  }
  bench::emit(t, "e3_r_sweep");
  {
    // Linear fit steps vs r: Theorem 5 predicts slope ~ sqrt(n)/log n
    // (times the constrained-multisearch constant).
    const auto fit = util::fit_linear(rs, steps);
    const double p = static_cast<double>((std::size_t{1} << 19));
    std::cout << "steps vs r: slope " << fit.slope << " (sqrt(n)/log n = "
              << std::sqrt(p) / std::log2(p) << ", r2 " << fit.r2 << ")\n";
  }

  // (b) n sweep at r ~ 8 log n.
  bench::section("E3: Theorem 5, n sweep at r ~ 8 log n");
  util::Table t2({"n(mesh)", "r", "log-phases", "alg steps", "sync steps",
                  "sync/alg", "alg/sqrt(n)"});
  std::vector<double> ns, alg_steps, sync_steps;
  for (unsigned e = 12; e <= 20; e += 2) {
    const std::size_t half = std::size_t{1} << (e / 2);
    const double logn = static_cast<double>(e);
    const auto res = run(half, half, half * half / 4,
                         static_cast<std::int64_t>(8 * logn), 13 + e, topt,
                         "e3_n2e" + std::to_string(e));
    t2.add_row({static_cast<std::int64_t>(res.p),
                static_cast<std::int64_t>(res.r),
                static_cast<std::int64_t>(res.phases), res.alg_steps,
                res.sync_steps, res.sync_steps / res.alg_steps,
                res.alg_steps / std::sqrt(res.p)});
    ns.push_back(res.p);
    alg_steps.push_back(res.alg_steps);
    sync_steps.push_back(res.sync_steps);
  }
  bench::emit(t2, "e3_n_sweep");
  bench::report_fit("E3 Algorithm 2 at r=8log n (claim O(sqrt n))", ns,
                    alg_steps, 0.5);
  bench::report_fit("E3 synchronous baseline", ns, sync_steps, 0.5);
  return 0;
}
