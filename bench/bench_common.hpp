// Shared helpers for the experiment harness. Every bench binary prints
// paper-style series as aligned tables (and mirrors them to CSV under
// bench_out/ when writable), then a log-log power fit of the measured
// simulated mesh time against the problem size, so EXPERIMENTS.md can quote
// "claimed exponent vs measured exponent" directly.
//
// Observability: pass `--trace <prefix>` (or `--trace=<prefix>`) to any bench
// binary to dump one Chrome/Perfetto trace-event JSON plus one flat metrics
// JSON per sweep point, named `<prefix>.<point>.trace.json` and
// `<prefix>.<point>.metrics.json`, and to print the per-primitive cost
// attribution table to stdout. Load the trace JSON at https://ui.perfetto.dev.
#pragma once

#include <cctype>
#include <filesystem>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "mesh/cost.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace meshsearch::bench {

inline void section(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Make a string safe as a file name: every char outside [A-Za-z0-9._-]
/// becomes '_', runs collapse to one '_', and trailing '_' are stripped.
/// "e2_zipf(1.1)" -> "e2_zipf_1.1".
inline std::string sanitize_csv_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '.' || c == '_' || c == '-';
    if (ok) {
      out.push_back(c);
    } else if (!out.empty() && out.back() != '_') {
      out.push_back('_');
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  if (out.empty()) out = "unnamed";
  return out;
}

/// Registry of CSV names already emitted by this process. Sanitization is
/// lossy — distinct sweep points can collide (e.g. "zipf(1.1)" and
/// "zipf_1.1" both sanitize to "zipf_1.1") and the later one used to
/// silently overwrite the earlier file. Keyed by the RAW name so a re-emit
/// of the same point still refreshes its own file; a different raw name
/// whose sanitized form is taken gets a "_2", "_3", ... suffix.
struct CsvNameRegistry {
  std::map<std::string, std::string> by_raw;  ///< raw name -> chosen file stem
  std::set<std::string> taken;                ///< file stems already claimed
};

/// Resolve `raw` (sanitizing to `sanitized`) against `reg`: returns the
/// stem this raw name should write, registering it on first use. Pure
/// bookkeeping — callers decide how to surface a collision.
inline std::string disambiguate_csv_name(const std::string& raw,
                                         const std::string& sanitized,
                                         CsvNameRegistry& reg) {
  const auto it = reg.by_raw.find(raw);
  if (it != reg.by_raw.end()) return it->second;
  std::string chosen = sanitized;
  for (int n = 2; reg.taken.count(chosen) != 0; ++n)
    chosen = sanitized + "_" + std::to_string(n);
  reg.by_raw.emplace(raw, chosen);
  reg.taken.insert(chosen);
  return chosen;
}

inline void emit(const util::Table& t, const std::string& csv_name) {
  t.print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (ec) {
    std::cerr << "warning: cannot create bench_out/ (" << ec.message()
              << "); skipping CSV mirror for " << csv_name << "\n";
    return;
  }
  static CsvNameRegistry registry;
  const std::string sanitized = sanitize_csv_name(csv_name);
  const std::string unique =
      disambiguate_csv_name(csv_name, sanitized, registry);
  if (unique != sanitized)
    std::cerr << "warning: CSV name collision: \"" << csv_name
              << "\" sanitizes to already-emitted \"" << sanitized
              << "\"; writing bench_out/" << unique << ".csv instead\n";
  const std::string path = "bench_out/" + unique + ".csv";
  try {
    t.write_csv_file(path);
  } catch (const std::exception& e) {
    std::cerr << "warning: CSV write failed for " << path << ": " << e.what()
              << "\n";
  }
}

inline void report_fit(const std::string& label,
                       const std::vector<double>& xs,
                       const std::vector<double>& ys,
                       double claimed_exponent) {
  const auto fit = util::fit_power(xs, ys);
  std::cout << label << ": measured exponent " << fit.exponent
            << " (claimed " << claimed_exponent << ", r2 " << fit.r2 << ")\n";
}

/// Standard problem-size sweep: mesh sizes 2^lo .. 2^hi.
inline std::vector<std::size_t> pow2_sweep(unsigned lo, unsigned hi) {
  std::vector<std::size_t> out;
  for (unsigned e = lo; e <= hi; ++e) out.push_back(std::size_t{1} << e);
  return out;
}

// ---------------------------------------------------------------------------
// Trace wiring.

struct TraceOptions {
  bool enabled = false;
  std::string prefix = "bench_out/trace";
};

/// Parse `--trace <prefix>` / `--trace=<prefix>` / bare `--trace`.
/// Unknown arguments are ignored so benches stay forward-compatible.
inline TraceOptions parse_trace_flag(int argc, char** argv) {
  TraceOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace") {
      opt.enabled = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') opt.prefix = argv[++i];
    } else if (a.rfind("--trace=", 0) == 0) {
      opt.enabled = true;
      if (a.size() > 8) opt.prefix = a.substr(8);
    }
  }
  return opt;
}

/// One sweep point's TraceRecorder + CostModel, wired together only when
/// tracing is enabled (a null sink costs one pointer test per primitive).
/// Replaces the per-bench three-line recorder/model/wire boilerplate.
struct TracedModel {
  trace::TraceRecorder rec;
  mesh::CostModel model;

  explicit TracedModel(const TraceOptions& opt, std::string engine = "counting")
      : rec(std::move(engine)) {
    if (opt.enabled) model.trace = &rec;
  }
};

/// Write `<prefix>.<point>.trace.json` + `<prefix>.<point>.metrics.json` for
/// one sweep point and print the per-primitive attribution table. No-op when
/// tracing is disabled.
inline void emit_trace(const trace::TraceRecorder& rec, const TraceOptions& opt,
                       const std::string& point) {
  if (!opt.enabled) return;
  const std::string stem = opt.prefix + "." + sanitize_csv_name(point);
  std::error_code ec;
  const auto dir = std::filesystem::path(stem).parent_path();
  if (!dir.empty()) std::filesystem::create_directories(dir, ec);
  trace::write_trace_json_file(rec, stem + ".trace.json");
  trace::write_metrics_json_file(rec, stem + ".metrics.json");
  std::cout << "\n-- cost attribution: " << point << " (" << rec.engine()
            << " engine, total " << rec.total_steps() << " steps) --\n";
  trace::metrics_table(rec).print(std::cout);
  std::cout << "trace: " << stem << ".trace.json\n";
}

}  // namespace meshsearch::bench
