// Shared helpers for the experiment harness. Every bench binary prints
// paper-style series as aligned tables (and mirrors them to CSV under
// bench_out/ when writable), then a log-log power fit of the measured
// simulated mesh time against the problem size, so EXPERIMENTS.md can quote
// "claimed exponent vs measured exponent" directly.
#pragma once

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace meshsearch::bench {

inline void section(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

inline void emit(const util::Table& t, const std::string& csv_name) {
  t.print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (!ec) {
    try {
      t.write_csv_file("bench_out/" + csv_name + ".csv");
    } catch (const std::exception&) {
      // CSV mirroring is best-effort (read-only working directories).
    }
  }
}

inline void report_fit(const std::string& label,
                       const std::vector<double>& xs,
                       const std::vector<double>& ys,
                       double claimed_exponent) {
  const auto fit = util::fit_power(xs, ys);
  std::cout << label << ": measured exponent " << fit.exponent
            << " (claimed " << claimed_exponent << ", r2 " << fit.r2 << ")\n";
}

/// Standard problem-size sweep: mesh sizes 2^lo .. 2^hi.
inline std::vector<std::size_t> pow2_sweep(unsigned lo, unsigned hi) {
  std::vector<std::size_t> out;
  for (unsigned e = lo; e <= hi; ++e) out.push_back(std::size_t{1} << e);
  return out;
}

}  // namespace meshsearch::bench
