// Shared helpers for the experiment harness. Every bench binary prints
// paper-style series as aligned tables (and mirrors them to CSV under
// bench_out/ when writable), then a log-log power fit of the measured
// simulated mesh time against the problem size, so EXPERIMENTS.md can quote
// "claimed exponent vs measured exponent" directly.
//
// Observability: pass `--trace <prefix>` (or `--trace=<prefix>`) to any bench
// binary to dump one Chrome/Perfetto trace-event JSON plus one flat metrics
// JSON per sweep point, named `<prefix>.<point>.trace.json` and
// `<prefix>.<point>.metrics.json`, and to print the per-primitive cost
// attribution table to stdout. Load the trace JSON at https://ui.perfetto.dev.
// Machine-readable reports: construct one `bench::BenchReport` at the top of
// main and every `bench::emit()` table is additionally captured as a series
// in `bench_out/BENCH_<exp>.json` (schema "meshsearch.bench.v1": git sha,
// thread count, argv, config, charged series, wall-clock histograms). The
// bench_check tool compares these against committed baselines under
// bench/baselines/ — charged values gate exactly, wall-clock by tolerance.
#pragma once

#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <cstdlib>

#include "mesh/cost.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "util/benchcmp.hpp"
#include "util/json.hpp"
#include "util/parallel_for.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace meshsearch::bench {

inline void section(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Make a string safe as a file name: every char outside [A-Za-z0-9._-]
/// becomes '_', runs collapse to one '_', and trailing '_' are stripped.
/// "e2_zipf(1.1)" -> "e2_zipf_1.1".
inline std::string sanitize_csv_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '.' || c == '_' || c == '-';
    if (ok) {
      out.push_back(c);
    } else if (!out.empty() && out.back() != '_') {
      out.push_back('_');
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  if (out.empty()) out = "unnamed";
  return out;
}

/// Registry of CSV names already emitted by this process. Sanitization is
/// lossy — distinct sweep points can collide (e.g. "zipf(1.1)" and
/// "zipf_1.1" both sanitize to "zipf_1.1") and the later one used to
/// silently overwrite the earlier file. Keyed by the RAW name so a re-emit
/// of the same point still refreshes its own file; a different raw name
/// whose sanitized form is taken gets a "_2", "_3", ... suffix.
struct CsvNameRegistry {
  std::map<std::string, std::string> by_raw;  ///< raw name -> chosen file stem
  std::set<std::string> taken;                ///< file stems already claimed
};

/// Resolve `raw` (sanitizing to `sanitized`) against `reg`: returns the
/// stem this raw name should write, registering it on first use. Pure
/// bookkeeping — callers decide how to surface a collision.
inline std::string disambiguate_csv_name(const std::string& raw,
                                         const std::string& sanitized,
                                         CsvNameRegistry& reg) {
  const auto it = reg.by_raw.find(raw);
  if (it != reg.by_raw.end()) return it->second;
  std::string chosen = sanitized;
  for (int n = 2; reg.taken.count(chosen) != 0; ++n)
    chosen = sanitized + "_" + std::to_string(n);
  reg.by_raw.emplace(raw, chosen);
  reg.taken.insert(chosen);
  return chosen;
}

/// Bare-flag lookup: `has_flag(argc, argv, "--smoke")`.
inline bool has_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i)
    if (flag == argv[i]) return true;
  return false;
}

/// Commit id recorded in BENCH_*.json: MESHSEARCH_GIT_SHA when set (CI
/// exports it), else `git rev-parse HEAD`, else "unknown".
inline std::string bench_git_sha() {
  if (const char* env = std::getenv("MESHSEARCH_GIT_SHA");
      env != nullptr && env[0] != '\0')
    return env;
  std::string sha;
  if (FILE* p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) sha = buf;
    ::pclose(p);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
    sha.pop_back();
  return sha.empty() ? "unknown" : sha;
}

/// Machine-readable run report. Construct one per bench binary (first thing
/// in main); it registers itself so emit() mirrors every table into the
/// report, and the destructor writes `bench_out/BENCH_<exp>.json`.
class BenchReport {
 public:
  BenchReport(std::string exp, int argc, char** argv)
      : exp_(std::move(exp)), born_(std::chrono::steady_clock::now()) {
    for (int i = 0; i < argc; ++i) argv_.emplace_back(argv[i]);
    active() = this;
  }
  ~BenchReport() {
    if (write_on_exit) {
      try {
        write();
      } catch (const std::exception& e) {
        std::cerr << "warning: bench report write failed: " << e.what()
                  << "\n";
      }
    }
    if (active() == this) active() = nullptr;
  }

  /// Tests construct reports without wanting a file on disk.
  bool write_on_exit = true;
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// The report emit() mirrors into, when one exists.
  static BenchReport*& active() {
    static BenchReport* current = nullptr;
    return current;
  }

  void set_config(std::string key, std::string value) {
    config_.emplace_back(std::move(key), std::move(value));
  }

  /// Capture a table as a charged series. Repeated names get a "_2", "_3"
  /// suffix so the comparison keys stay unique.
  void add_table(const std::string& name, const util::Table& t) {
    std::string unique = name;
    for (int n = 2; series_names_.count(unique) != 0; ++n)
      unique = name + "_" + std::to_string(n);
    series_names_.insert(unique);
    series_.emplace_back(std::move(unique), t);
  }

  void observe_wall(const std::string& name, double us) {
    auto it = wall_index_.find(name);
    if (it == wall_index_.end()) {
      it = wall_index_.emplace(name, wall_.size()).first;
      wall_.emplace_back(name, util::LogHistogram{});
    }
    wall_[it->second].second.observe(us);
  }

  /// Copy every wall-clock histogram a recorder accumulated (phase spans,
  /// stream latency/queue-wait) into the report, merging repeats by name.
  void add_wall_from(const trace::TraceRecorder& rec) {
    for (const auto& h : rec.stats().snapshot().histograms) {
      auto it = wall_index_.find(h.name);
      if (it == wall_index_.end()) {
        it = wall_index_.emplace(h.name, wall_.size()).first;
        wall_.emplace_back(h.name, util::LogHistogram{});
      }
      wall_[it->second].second.merge(h.hist);
    }
  }

  /// Scoped wall timer feeding observe_wall on destruction.
  class WallTimer {
   public:
    WallTimer(BenchReport* report, std::string name)
        : report_(report),
          name_(std::move(name)),
          start_(std::chrono::steady_clock::now()) {}
    WallTimer(WallTimer&& other) noexcept
        : report_(other.report_),
          name_(std::move(other.name_)),
          start_(other.start_) {
      other.report_ = nullptr;
    }
    WallTimer(const WallTimer&) = delete;
    WallTimer& operator=(const WallTimer&) = delete;
    WallTimer& operator=(WallTimer&&) = delete;
    ~WallTimer() {
      if (report_ == nullptr) return;
      const auto us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      report_->observe_wall(name_, us);
    }

   private:
    BenchReport* report_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
  };

  WallTimer time(std::string name) { return WallTimer(this, std::move(name)); }

  std::string path() const { return "bench_out/BENCH_" + exp_ + ".json"; }

  /// Serialize and write the report (pretty-printed; called by the
  /// destructor, safe to call earlier for a partial flush).
  void write() {
    observe_wall("bench.total",
                 std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - born_)
                     .count());
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    if (ec) {
      std::cerr << "warning: cannot create bench_out/ (" << ec.message()
                << "); skipping " << path() << "\n";
      return;
    }
    std::ofstream out(path());
    if (!out.good()) {
      std::cerr << "warning: cannot open " << path() << " for writing\n";
      return;
    }
    out << to_json().dump(2) << "\n";
    std::cout << "bench report: " << path() << "\n";
  }

  util::JsonValue to_json() const {
    using util::JsonValue;
    std::vector<std::pair<std::string, JsonValue>> doc;
    doc.emplace_back("schema",
                     JsonValue::make_string(std::string(util::kBenchSchemaV1)));
    doc.emplace_back("exp", JsonValue::make_string(exp_));
    doc.emplace_back("git_sha", JsonValue::make_string(bench_git_sha()));
    doc.emplace_back("threads", JsonValue::make_number(static_cast<double>(
                                    util::default_thread_count())));
    std::vector<JsonValue> argv_json;
    for (const std::string& a : argv_)
      argv_json.push_back(JsonValue::make_string(a));
    doc.emplace_back("argv", JsonValue::make_array(std::move(argv_json)));
    std::vector<std::pair<std::string, JsonValue>> cfg;
    for (const auto& [k, v] : config_)
      cfg.emplace_back(k, JsonValue::make_string(v));
    doc.emplace_back("config", JsonValue::make_object(std::move(cfg)));
    std::vector<JsonValue> series;
    for (const auto& [name, table] : series_)
      series.push_back(series_json(name, table));
    doc.emplace_back("series", JsonValue::make_array(std::move(series)));
    std::vector<JsonValue> wall;
    for (const auto& [name, hist] : wall_) wall.push_back(wall_json(name, hist));
    doc.emplace_back("wall", JsonValue::make_array(std::move(wall)));
    return JsonValue::make_object(std::move(doc));
  }

 private:
  static util::JsonValue cell_json(const util::Table::Cell& c) {
    using util::JsonValue;
    if (const auto* s = std::get_if<std::string>(&c))
      return JsonValue::make_string(*s);
    if (const auto* d = std::get_if<double>(&c))
      return JsonValue::make_number(*d);
    return JsonValue::make_number(
        static_cast<double>(std::get<std::int64_t>(c)));
  }

  static util::JsonValue series_json(const std::string& name,
                                     const util::Table& t) {
    using util::JsonValue;
    std::vector<JsonValue> cols;
    for (const std::string& h : t.headers())
      cols.push_back(JsonValue::make_string(h));
    std::vector<JsonValue> rows;
    for (const auto& row : t.row_data()) {
      std::vector<JsonValue> cells;
      for (const auto& c : row) cells.push_back(cell_json(c));
      rows.push_back(JsonValue::make_array(std::move(cells)));
    }
    return JsonValue::make_object(
        {{"name", JsonValue::make_string(name)},
         {"columns", JsonValue::make_array(std::move(cols))},
         {"rows", JsonValue::make_array(std::move(rows))}});
  }

  static util::JsonValue wall_json(const std::string& name,
                                   const util::LogHistogram& h) {
    using util::JsonValue;
    return JsonValue::make_object(
        {{"name", JsonValue::make_string(name)},
         {"count", JsonValue::make_number(static_cast<double>(h.count()))},
         {"sum_us", JsonValue::make_number(h.sum())},
         {"min_us", JsonValue::make_number(h.empty() ? 0 : h.min())},
         {"max_us", JsonValue::make_number(h.empty() ? 0 : h.max())},
         {"mean_us", JsonValue::make_number(h.mean())},
         {"p50_us", JsonValue::make_number(h.p50())},
         {"p90_us", JsonValue::make_number(h.p90())},
         {"p95_us", JsonValue::make_number(h.p95())},
         {"p99_us", JsonValue::make_number(h.p99())}});
  }

  std::string exp_;
  std::vector<std::string> argv_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, util::Table>> series_;
  std::set<std::string> series_names_;
  std::vector<std::pair<std::string, util::LogHistogram>> wall_;
  std::map<std::string, std::size_t> wall_index_;
  std::chrono::steady_clock::time_point born_;
};

/// Wall timer charging the active report (no-op when no report exists), so
/// sweep loops can time points without threading the report through.
inline BenchReport::WallTimer time_point(std::string name) {
  return BenchReport::WallTimer(BenchReport::active(), std::move(name));
}

inline void emit(const util::Table& t, const std::string& csv_name) {
  if (BenchReport* report = BenchReport::active())
    report->add_table(csv_name, t);
  t.print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (ec) {
    std::cerr << "warning: cannot create bench_out/ (" << ec.message()
              << "); skipping CSV mirror for " << csv_name << "\n";
    return;
  }
  static CsvNameRegistry registry;
  const std::string sanitized = sanitize_csv_name(csv_name);
  const std::string unique =
      disambiguate_csv_name(csv_name, sanitized, registry);
  if (unique != sanitized)
    std::cerr << "warning: CSV name collision: \"" << csv_name
              << "\" sanitizes to already-emitted \"" << sanitized
              << "\"; writing bench_out/" << unique << ".csv instead\n";
  const std::string path = "bench_out/" + unique + ".csv";
  try {
    t.write_csv_file(path);
  } catch (const std::exception& e) {
    std::cerr << "warning: CSV write failed for " << path << ": " << e.what()
              << "\n";
  }
}

inline void report_fit(const std::string& label,
                       const std::vector<double>& xs,
                       const std::vector<double>& ys,
                       double claimed_exponent) {
  const auto fit = util::fit_power(xs, ys);
  std::cout << label << ": measured exponent " << fit.exponent
            << " (claimed " << claimed_exponent << ", r2 " << fit.r2 << ")\n";
}

/// Standard problem-size sweep: mesh sizes 2^lo .. 2^hi.
inline std::vector<std::size_t> pow2_sweep(unsigned lo, unsigned hi) {
  std::vector<std::size_t> out;
  for (unsigned e = lo; e <= hi; ++e) out.push_back(std::size_t{1} << e);
  return out;
}

// ---------------------------------------------------------------------------
// Trace wiring.

struct TraceOptions {
  bool enabled = false;
  std::string prefix = "bench_out/trace";
};

/// Parse `--trace <prefix>` / `--trace=<prefix>` / bare `--trace`.
/// Unknown arguments are ignored so benches stay forward-compatible.
inline TraceOptions parse_trace_flag(int argc, char** argv) {
  TraceOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace") {
      opt.enabled = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') opt.prefix = argv[++i];
    } else if (a.rfind("--trace=", 0) == 0) {
      opt.enabled = true;
      if (a.size() > 8) opt.prefix = a.substr(8);
    }
  }
  return opt;
}

/// One sweep point's TraceRecorder + CostModel, wired together only when
/// tracing is enabled (a null sink costs one pointer test per primitive).
/// Replaces the per-bench three-line recorder/model/wire boilerplate.
struct TracedModel {
  trace::TraceRecorder rec;
  mesh::CostModel model;

  explicit TracedModel(const TraceOptions& opt, std::string engine = "counting")
      : rec(std::move(engine)) {
    if (opt.enabled) model.trace = &rec;
  }
};

/// Write `<prefix>.<point>.trace.json` + `<prefix>.<point>.metrics.json` for
/// one sweep point and print the per-primitive attribution table. No-op when
/// tracing is disabled.
inline void emit_trace(const trace::TraceRecorder& rec, const TraceOptions& opt,
                       const std::string& point) {
  if (!opt.enabled) return;
  const std::string stem = opt.prefix + "." + sanitize_csv_name(point);
  std::error_code ec;
  const auto dir = std::filesystem::path(stem).parent_path();
  if (!dir.empty()) std::filesystem::create_directories(dir, ec);
  trace::write_trace_json_file(rec, stem + ".trace.json");
  trace::write_metrics_json_file(rec, stem + ".metrics.json");
  std::cout << "\n-- cost attribution: " << point << " (" << rec.engine()
            << " engine, total " << rec.total_steps() << " steps) --\n";
  trace::metrics_table(rec).print(std::cout);
  std::cout << "trace: " << stem << ".trace.json\n";
}

}  // namespace meshsearch::bench
