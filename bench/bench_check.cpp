// bench_check — compare BENCH_<exp>.json reports against committed
// baselines and fail on regressions.
//
// Usage:
//   bench_check <baseline.json> <current.json>
//   bench_check --dir <baseline_dir> <current_dir>
//
// Dir mode compares every BENCH_*.json in <baseline_dir> against the file of
// the same name in <current_dir>; a baseline with no current counterpart is
// a failure (coverage must not silently shrink).
//
// Environment:
//   MESHSEARCH_SKIP_BENCH_GATE=1  skip entirely, exit 0 (for hosts where the
//                                 benches cannot run)
//   MESHSEARCH_BENCH_WALL_GATE=1  wall-clock slowdowns past 25% become fatal
//                                 (default: warn only — wall time is
//                                 machine-dependent, charged costs are not)
//
// Exit codes: 0 ok (or skipped), 1 regression found, 2 usage or I/O error.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "util/benchcmp.hpp"
#include "util/json.hpp"

namespace {

using meshsearch::util::BenchCompareOptions;
using meshsearch::util::BenchCompareResult;
using meshsearch::util::BenchIssue;

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

const char* kind_name(BenchIssue::Kind k) {
  switch (k) {
    case BenchIssue::Kind::kChargedDrift: return "charged-drift";
    case BenchIssue::Kind::kWallRegression: return "wall-regression";
    case BenchIssue::Kind::kMissingSeries: return "missing-series";
    case BenchIssue::Kind::kMissingValue: return "missing-value";
    case BenchIssue::Kind::kSchema: return "schema";
  }
  return "unknown";
}

/// Compare one file pair; prints every issue. Returns false on regression.
bool check_pair(const std::string& baseline_path,
                const std::string& current_path,
                const BenchCompareOptions& opt, bool& io_error) {
  const auto base = meshsearch::util::parse_json_file(baseline_path);
  if (!base.ok) {
    std::cerr << "bench_check: " << base.error << "\n";
    io_error = true;
    return false;
  }
  const auto cur = meshsearch::util::parse_json_file(current_path);
  if (!cur.ok) {
    std::cerr << "bench_check: " << cur.error << "\n";
    io_error = true;
    return false;
  }
  const BenchCompareResult res =
      meshsearch::util::compare_bench(base.value, cur.value, opt);
  for (const auto& issue : res.issues) {
    std::ostream& os = issue.fatal ? std::cerr : std::cout;
    os << (issue.fatal ? "FAIL" : "warn") << " [" << kind_name(issue.kind)
       << "] " << issue.where << ": " << issue.message;
    if (issue.baseline != 0 || issue.current != 0)
      os << " (baseline " << issue.baseline << ", current " << issue.current
         << ")";
    os << "\n";
  }
  std::cout << "bench_check: " << baseline_path << " vs " << current_path
            << ": " << res.compared_values << " values compared, "
            << res.issues.size() << " issue(s), "
            << (res.ok ? "OK" : "REGRESSION") << "\n";
  return res.ok;
}

int usage() {
  std::cerr << "usage: bench_check <baseline.json> <current.json>\n"
            << "       bench_check --dir <baseline_dir> <current_dir>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (env_truthy("MESHSEARCH_SKIP_BENCH_GATE")) {
    std::cout << "bench_check: skipped (MESHSEARCH_SKIP_BENCH_GATE set)\n";
    return 0;
  }
  BenchCompareOptions opt;
  opt.gate_wall = env_truthy("MESHSEARCH_BENCH_WALL_GATE");

  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();

  bool io_error = false;
  bool ok = true;
  if (args[0] == "--dir") {
    if (args.size() != 3) return usage();
    const std::filesystem::path base_dir = args[1];
    const std::filesystem::path cur_dir = args[2];
    std::error_code ec;
    std::vector<std::filesystem::path> baselines;
    for (const auto& entry :
         std::filesystem::directory_iterator(base_dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 &&
          entry.path().extension() == ".json")
        baselines.push_back(entry.path());
    }
    if (ec) {
      std::cerr << "bench_check: cannot read " << base_dir << ": "
                << ec.message() << "\n";
      return 2;
    }
    if (baselines.empty()) {
      std::cerr << "bench_check: no BENCH_*.json baselines in " << base_dir
                << "\n";
      return 2;
    }
    std::sort(baselines.begin(), baselines.end());
    for (const auto& bp : baselines) {
      const auto cp = cur_dir / bp.filename();
      if (!std::filesystem::exists(cp)) {
        std::cerr << "FAIL [missing-value] " << cp.string()
                  << ": current report missing (bench not run?)\n";
        ok = false;
        continue;
      }
      if (!check_pair(bp.string(), cp.string(), opt, io_error)) ok = false;
    }
  } else {
    if (args.size() != 2) return usage();
    ok = check_pair(args[0], args[1], opt, io_error);
  }
  if (io_error) return 2;
  return ok ? 0 : 1;
}
