// E9 — fault injection and phase-level recovery overhead.
//
// Claim (mesh/fault.hpp, multisearch/recovery.hpp): with a seed-driven
// FaultPlan armed, every multisearch engine checkpoints its phases and
// re-runs failed attempts (charging the wasted work plus exponential
// backoff), and the stream scheduler re-plans batches that exhaust their
// retry budget onto the degraded capacity. Every injected fault is either
// recovered — outcomes bit-identical to the fault-free oracle — or reported
// as a degraded batch; never a silent wrong answer.
//
// Three sweeps:
//   * counting engines: phase-failure rate x engine; reports amortized
//     steps/query, the overhead ratio vs the fault-free run of the same
//     stream, retry/backoff/degradation counters, and verifies recovered
//     outcomes against the fault-free oracle.
//   * E9c, corruption: the same engines under p_corrupt — in-transit payload
//     corruption caught by end-of-phase checksum audits (mesh/integrity.hpp)
//     and re-run; reports the corrupt.* counters alongside the overhead and
//     verifies the same zero-silent-mismatch contract.
//   * cycle engine: stall/drop rate and corruption rate on the physical RAR;
//     reports the measured step overhead and verifies the fetched data is
//     unchanged (faults delay or get retransmitted, never corrupt results).
//
// `--smoke` shrinks sizes and rates for CI tier-1.
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "mesh/cycle_ops.hpp"
#include "mesh/fault.hpp"
#include "multisearch/query.hpp"
#include "multisearch/stream.hpp"
#include "util/rng.hpp"

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::KaryTree;
using ds::TreeMode;

namespace {

struct Sizes {
  std::size_t dag_n = 1 << 12;
  std::size_t tree2_n = 1 << 11;
  std::size_t tree3_n = 1 << 10;
  std::size_t ratio = 4;  ///< stream length as a multiple of mesh capacity
  std::uint32_t cycle_side = 16;
  std::vector<double> phase_rates{0.0, 0.02, 0.05, 0.1, 0.2};
  std::vector<double> corrupt_rates{0.0, 0.02, 0.05, 0.1};
  std::vector<double> cycle_rates{0.0, 0.001, 0.005, 0.01};
};

/// Which FaultConfig knob a counting-engine sweep drives.
enum class Knob { kPhase, kCorrupt };

struct RatePoint {
  double rate = 0;
  double steps_per_query = 0;
  double overhead = 1.0;  ///< total steps / fault-free total steps
  double retries = 0;
  double backoff_steps = 0;
  double replanned = 0;
  double degraded = 0;
  double failed_queries = 0;
};

/// Sweep one engine over failure rates of the chosen knob: rate 0 is the
/// fault-free oracle (its outcomes and total anchor the comparison).
/// `make_engine(m)` builds a fresh cold engine charging through `m`;
/// `make_stream()` the deterministic query stream.
template <typename MakeEngine, typename MakeStream>
void sweep_engine(const std::string& name, const Sizes& sz, Knob knob,
                  MakeEngine make_engine, MakeStream make_stream) {
  const bool corrupting = knob == Knob::kCorrupt;
  const auto& rates = corrupting ? sz.corrupt_rates : sz.phase_rates;
  const char* knob_name = corrupting ? "p_corrupt" : "p_phase";
  std::vector<QueryOutcome> oracle;
  double oracle_total = 0;
  util::Table t({knob_name, "steps/query", "overhead", "phase retries",
                 "backoff steps", "corrupt detected", "corrupt recovered",
                 "replanned", "degraded", "failed queries"});
  for (const double rate : rates) {
    mesh::FaultConfig cfg;
    cfg.seed = 99;
    if (corrupting)
      cfg.p_corrupt = rate;
    else
      cfg.p_phase = rate;
    mesh::FaultPlan plan(cfg);
    mesh::CostModel m;
    m.fault = &plan;  // disarmed at rate 0: identical to no plan
    auto engine = make_engine(m);
    auto stream = make_stream(sz.ratio * engine.capacity());
    StreamScheduler sched(engine, BatchPolicy{});
    const StreamResult res = sched.run(stream);

    RatePoint pt;
    pt.rate = rate;
    pt.steps_per_query = res.amortized_steps_per_query();
    const auto stats = plan.stats();
    pt.retries = static_cast<double>(stats.phase_retries);
    pt.backoff_steps = stats.backoff_steps;
    pt.replanned = static_cast<double>(stats.replanned_batches);
    pt.degraded = static_cast<double>(stats.degraded_batches);
    pt.failed_queries = static_cast<double>(res.failed_queries.size());

    const auto out = outcomes(stream);
    if (rate == 0.0) {
      oracle = out;
      oracle_total = res.total().steps;
      pt.overhead = 1.0;
    } else {
      pt.overhead = oracle_total > 0 ? res.total().steps / oracle_total : 1.0;
      // Every query outside a degraded batch must match the fault-free
      // oracle exactly: recovery, not approximation.
      const std::set<std::uint32_t> failed(res.failed_queries.begin(),
                                           res.failed_queries.end());
      for (std::size_t i = 0; i < out.size(); ++i)
        if (failed.count(static_cast<std::uint32_t>(i)) == 0 &&
            !(out[i] == oracle[i]))
          std::cout << "VIOLATION: " << name << " " << knob_name << "="
                    << rate << " query " << i
                    << " diverged from fault-free oracle\n";
    }
    // Integrity invariant: every injected corruption must have been caught.
    if (stats.corrupt_detected != stats.corrupt_injected)
      std::cout << "VIOLATION: " << name << " " << knob_name << "=" << rate
                << " corruption slipped past the checksum ("
                << stats.corrupt_detected << "/" << stats.corrupt_injected
                << " detected)\n";
    t.add_row({pt.rate, pt.steps_per_query, pt.overhead, pt.retries,
               pt.backoff_steps, static_cast<double>(stats.corrupt_detected),
               static_cast<double>(stats.corrupt_recovered), pt.replanned,
               pt.degraded, pt.failed_queries});
  }
  bench::section("E9" + std::string(corrupting ? "c" : "") + ": " + name +
                 " recovery overhead (" + knob_name + ")");
  bench::emit(t, "e9_" + name + (corrupting ? "_corrupt" : ""));
}

/// Cycle-engine sweep: physical RAR under stall/drop injection. The fetched
/// data must be identical at every rate; only the measured steps grow.
void sweep_cycle(const Sizes& sz) {
  const mesh::MeshShape shape(sz.cycle_side);
  const std::size_t p = shape.size();
  util::Rng rng(123);
  std::vector<std::int64_t> table(p), addr(p);
  for (std::size_t i = 0; i < p; ++i) {
    table[i] = static_cast<std::int64_t>(rng.uniform(1ull << 30));
    addr[i] = static_cast<std::int64_t>(rng.uniform(p));
  }
  std::vector<std::int64_t> oracle;
  double oracle_steps = 0;
  util::Table t({"p_stall=p_drop", "rar steps", "overhead", "stalls", "drops",
                 "lockstep retried"});
  for (const double rate : sz.cycle_rates) {
    mesh::FaultConfig cfg;
    cfg.seed = 7;
    cfg.p_stall = rate;
    cfg.p_drop = rate;
    mesh::FaultPlan plan(cfg);
    const auto res = mesh::cycle_random_access_read(shape, table, addr, 0,
                                                    nullptr, &plan);
    if (rate == 0.0) {
      oracle = res.out;
      oracle_steps = static_cast<double>(res.steps);
    } else if (res.out != oracle) {
      std::cout << "VIOLATION: cycle RAR data corrupted at rate " << rate
                << "\n";
    }
    const auto stats = plan.stats();
    t.add_row({rate, static_cast<double>(res.steps),
               oracle_steps > 0 ? static_cast<double>(res.steps) / oracle_steps
                                : 1.0,
               static_cast<double>(stats.injected_stalls),
               static_cast<double>(stats.injected_drops),
               static_cast<double>(stats.lockstep_retried_steps)});
  }
  bench::section("E9: cycle RAR under stall/drop injection");
  bench::emit(t, "e9_cycle_rar");
}

/// Cycle-engine corruption sweep (E9c): p_corrupt on the physical RAR. Every
/// flipped payload must be caught by the transit checksum and retransmitted,
/// so the fetched data is bit-identical at every rate.
void sweep_cycle_corrupt(const Sizes& sz) {
  const mesh::MeshShape shape(sz.cycle_side);
  const std::size_t p = shape.size();
  util::Rng rng(123);
  std::vector<std::int64_t> table(p), addr(p);
  for (std::size_t i = 0; i < p; ++i) {
    table[i] = static_cast<std::int64_t>(rng.uniform(1ull << 30));
    addr[i] = static_cast<std::int64_t>(rng.uniform(p));
  }
  std::vector<std::int64_t> oracle;
  double oracle_steps = 0;
  util::Table t({"p_corrupt", "rar steps", "overhead", "corrupt injected",
                 "corrupt detected", "corrupt recovered"});
  for (const double rate : sz.corrupt_rates) {
    mesh::FaultConfig cfg;
    cfg.seed = 11;
    cfg.p_corrupt = rate;
    mesh::FaultPlan plan(cfg);
    const auto res = mesh::cycle_random_access_read(shape, table, addr, 0,
                                                    nullptr, &plan);
    if (rate == 0.0) {
      oracle = res.out;
      oracle_steps = static_cast<double>(res.steps);
    } else if (res.out != oracle) {
      std::cout << "VIOLATION: cycle RAR data corrupted at p_corrupt=" << rate
                << "\n";
    }
    const auto stats = plan.stats();
    if (stats.corrupt_detected != stats.corrupt_injected)
      std::cout << "VIOLATION: cycle RAR corruption slipped past the checksum"
                << " at p_corrupt=" << rate << " (" << stats.corrupt_detected
                << "/" << stats.corrupt_injected << " detected)\n";
    t.add_row({rate, static_cast<double>(res.steps),
               oracle_steps > 0 ? static_cast<double>(res.steps) / oracle_steps
                                : 1.0,
               static_cast<double>(stats.corrupt_injected),
               static_cast<double>(stats.corrupt_detected),
               static_cast<double>(stats.corrupt_recovered)});
  }
  bench::section("E9c: cycle RAR under payload corruption");
  bench::emit(t, "e9_cycle_rar_corrupt");
}

/// Showcase trace: one armed alg3 stream with the recorder wired, so the
/// attribution table (printed by emit_trace) shows the `backoff` primitive
/// and the fault.* metrics land in both JSON exports.
void showcase(const bench::TraceOptions& topt, const Sizes& sz) {
  if (!topt.enabled) return;
  KaryTree tree(ds::iota_keys(sz.tree3_n), 2, TreeMode::kUndirected);
  const auto shape = tree.graph().shape_for(tree.graph().vertex_count());
  const auto [s1, s2] = tree.alpha_beta_splittings();
  mesh::FaultConfig cfg;
  cfg.seed = 99;
  cfg.p_phase = 0.1;
  mesh::FaultPlan plan(cfg);
  bench::TracedModel tm(topt);
  tm.model.fault = &plan;
  PreparedSearch engine(EngineKind::kAlg3AlphaBeta, tree.graph(), s1, s2,
                        tree.euler_scan(), tm.model, shape);
  auto stream = make_queries(sz.ratio * engine.capacity());
  util::Rng qrng(44);
  for (auto& q : stream) {
    const auto a =
        qrng.uniform_range(-3, static_cast<std::int64_t>(sz.tree3_n) + 3);
    q.key[0] = a;
    q.key[1] = a + qrng.uniform_range(0, 30);
  }
  StreamScheduler sched(engine, BatchPolicy{});
  sched.run(stream);
  bench::emit_trace(tm.rec, topt, "e9_showcase_alg3_p10");
}

}  // namespace

int main(int argc, char** argv) {
  const auto topt = bench::parse_trace_flag(argc, argv);
  bench::BenchReport breport("e9_faults", argc, argv);
  Sizes sz;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) {
      breport.set_config("smoke", "1");
      sz.dag_n = 1 << 10;
      sz.tree2_n = 1 << 9;
      sz.tree3_n = 1 << 8;
      sz.ratio = 2;
      sz.cycle_side = 8;
      sz.phase_rates = {0.0, 0.1};
      sz.corrupt_rates = {0.0, 0.1};
      sz.cycle_rates = {0.0, 0.01};
    }

  // Algorithm 1 (both plans): hierarchical DAG.
  util::Rng rng(41);
  const auto g = ds::build_hierarchical_dag(sz.dag_n, 2.0, 3, rng);
  const HierarchicalDag dag(g, 2.0);
  const auto shape = g.shape_for(g.vertex_count());
  auto alg1_stream = [&](std::size_t mq) {
    auto qs = make_queries(mq);
    util::Rng qrng(42);
    for (auto& q : qs)
      q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));
    return qs;
  };
  auto make_alg1_paper = [&](const mesh::CostModel& m) {
    return PreparedSearch(dag, PlanKind::kPaper, ds::HashWalk{0}, m, shape);
  };
  auto make_alg1_geometric = [&](const mesh::CostModel& m) {
    return PreparedSearch(dag, PlanKind::kGeometric, ds::HashWalk{0}, m,
                          shape);
  };
  sweep_engine("alg1-paper", sz, Knob::kPhase, make_alg1_paper, alg1_stream);
  sweep_engine("alg1-paper", sz, Knob::kCorrupt, make_alg1_paper, alg1_stream);
  sweep_engine("alg1-geometric", sz, Knob::kPhase, make_alg1_geometric,
               alg1_stream);
  sweep_engine("alg1-geometric", sz, Knob::kCorrupt, make_alg1_geometric,
               alg1_stream);

  // Algorithm 2: directed k-ary search tree, alpha splitting.
  KaryTree tree2(ds::iota_keys(sz.tree2_n), 3, TreeMode::kDirected);
  const auto shape2 = tree2.graph().shape_for(tree2.graph().vertex_count());
  auto make_alg2 = [&](const mesh::CostModel& m) {
    return PreparedSearch(EngineKind::kAlg2Alpha, tree2.graph(),
                          tree2.alpha_splitting(), tree2.alpha_splitting(),
                          tree2.rank_count(), m, shape2);
  };
  auto alg2_stream = [&](std::size_t mq) {
    util::Rng qrng(43);
    return ds::uniform_key_queries(mq, sz.tree2_n + 20, qrng);
  };
  sweep_engine("alg2-alpha", sz, Knob::kPhase, make_alg2, alg2_stream);
  sweep_engine("alg2-alpha", sz, Knob::kCorrupt, make_alg2, alg2_stream);

  // Algorithm 3: undirected binary tree, alpha-beta splittings.
  KaryTree tree3(ds::iota_keys(sz.tree3_n), 2, TreeMode::kUndirected);
  const auto shape3 = tree3.graph().shape_for(tree3.graph().vertex_count());
  const auto [s1, s2] = tree3.alpha_beta_splittings();
  auto make_alg3 = [&](const mesh::CostModel& m) {
    return PreparedSearch(EngineKind::kAlg3AlphaBeta, tree3.graph(), s1, s2,
                          tree3.euler_scan(), m, shape3);
  };
  auto alg3_stream = [&](std::size_t mq) {
    auto qs = make_queries(mq);
    util::Rng qrng(44);
    for (auto& q : qs) {
      const auto a =
          qrng.uniform_range(-3, static_cast<std::int64_t>(sz.tree3_n) + 3);
      q.key[0] = a;
      q.key[1] = a + qrng.uniform_range(0, 30);
    }
    return qs;
  };
  sweep_engine("alg3-alpha-beta", sz, Knob::kPhase, make_alg3, alg3_stream);
  sweep_engine("alg3-alpha-beta", sz, Knob::kCorrupt, make_alg3, alg3_stream);

  sweep_cycle(sz);
  sweep_cycle_corrupt(sz);
  showcase(topt, sz);
  return 0;
}
