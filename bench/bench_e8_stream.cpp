// E8 — streaming amortization: serve m >> n queries on one warm mesh.
//
// Claim (stream.hpp): every engine's cost splits into one-time setup
// (distribute_graph + level indices + band replication, or splitting tags)
// and per-batch work (inject + the multisearch proper). A PreparedSearch
// pays the setup once; a StreamScheduler then serves an arbitrary stream in
// mesh-capacity batches. The naive baseline re-runs the full setup before
// every batch. We sweep the stream-to-mesh ratio m/n in {1..64} for all
// four engines under both batch policies and report amortized steps/query:
// the warm engine must beat the baseline strictly for m/n >= 4 (more than a
// couple of batches), with the gap approaching the setup share of a batch.
//
// `--trace <prefix>` additionally dumps the trace of one showcase point
// (Alg 1 paper plan, m/n = 16, FIFO) whose attribution table ends with the
// stream.* throughput metrics — queries/step, amortized steps/query, and
// the amortized-setup fraction.
#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "multisearch/query.hpp"
#include "multisearch/stream.hpp"
#include "util/rng.hpp"

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::KaryTree;
using ds::TreeMode;

namespace {

struct SweepPoint {
  std::size_t ratio = 0;
  double warm_apq = 0;   ///< amortized steps/query, warm engine
  double naive_apq = 0;  ///< amortized steps/query, re-setup baseline
  double setup_fraction = 0;
};

/// Run one (engine, policy) sweep over m/n: a fresh warm engine and a fresh
/// naive engine per point (so every point is a cold start, comparable to a
/// server booting for that stream). `make_engine` returns a new
/// PreparedSearch; `make_stream(m)` a stream of m queries.
template <typename MakeEngine, typename MakeStream>
std::vector<SweepPoint> sweep(MakeEngine make_engine, MakeStream make_stream,
                              BatchOrder order,
                              const std::vector<std::size_t>& ratios) {
  std::vector<SweepPoint> out;
  for (const std::size_t ratio : ratios) {
    const auto wall = bench::time_point("e8.sweep_point");
    SweepPoint pt;
    pt.ratio = ratio;
    BatchPolicy policy;
    policy.order = order;
    {
      auto engine = make_engine();
      auto stream = make_stream(ratio * engine.capacity());
      StreamScheduler sched(engine, policy);
      const auto res = sched.run(stream);
      pt.warm_apq = res.amortized_steps_per_query();
      pt.setup_fraction = res.setup_fraction();
    }
    {
      auto engine = make_engine();
      auto stream = make_stream(ratio * engine.capacity());
      StreamScheduler naive(engine, policy, /*resetup_every_batch=*/true);
      const auto res = naive.run(stream);
      pt.naive_apq = res.amortized_steps_per_query();
    }
    out.push_back(pt);
  }
  return out;
}

void report(const std::string& engine_name, BatchOrder order,
            const std::vector<SweepPoint>& pts) {
  const std::string policy =
      order == BatchOrder::kFifo ? "fifo" : "locality";
  util::Table t({"m/n", "warm steps/query", "naive steps/query",
                 "naive/warm", "setup fraction (warm)"});
  for (const auto& pt : pts)
    t.add_row({static_cast<std::int64_t>(pt.ratio), pt.warm_apq, pt.naive_apq,
               pt.naive_apq / pt.warm_apq, pt.setup_fraction});
  bench::section("E8: " + engine_name + " (" + policy + ")");
  bench::emit(t, "e8_" + engine_name + "_" + policy);
  for (const auto& pt : pts)
    if (pt.ratio >= 4 && pt.warm_apq >= pt.naive_apq)
      std::cout << "VIOLATION: warm engine not below baseline at m/n = "
                << pt.ratio << "\n";
}

/// Showcase trace: one warm stream with the recorder wired, so the
/// attribution table (printed by emit_trace) ends with the stream.* metrics.
void showcase(const bench::TraceOptions& topt) {
  if (!topt.enabled) return;
  util::Rng rng(7);
  const auto g = ds::build_hierarchical_dag(1 << 14, 2.0, 3, rng);
  const HierarchicalDag dag(g, 2.0);
  const auto shape = g.shape_for(g.vertex_count());
  bench::TracedModel tm(topt);
  PreparedSearch engine(dag, PlanKind::kPaper, ds::HashWalk{0}, tm.model,
                        shape);
  auto stream = make_queries(16 * engine.capacity());
  util::Rng qrng(8);
  for (auto& q : stream)
    q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));
  StreamScheduler sched(engine, BatchPolicy{});
  sched.run(stream);
  bench::emit_trace(tm.rec, topt, "e8_showcase_alg1_m16");
  // The recorder accumulated per-batch latency / queue-wait histograms —
  // fold them into the BENCH report's wall section.
  if (bench::BenchReport* report = bench::BenchReport::active())
    report->add_wall_from(tm.rec);
}

}  // namespace

int main(int argc, char** argv) {
  const auto topt = bench::parse_trace_flag(argc, argv);
  bench::BenchReport breport("e8_stream", argc, argv);
  // --smoke: shrunken sizes and ratio list for the CI bench gate — seconds,
  // not minutes, while still exercising all four engines and both policies.
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  if (smoke) breport.set_config("smoke", "1");
  const std::vector<std::size_t> ratios =
      smoke ? std::vector<std::size_t>{1, 2, 4, 8}
            : std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64};
  const std::size_t dag_n = smoke ? (1 << 11) : (1 << 14);
  const std::size_t tree2_n = smoke ? (1 << 10) : (1 << 13);
  const std::size_t tree3_n = smoke ? (1 << 9) : (1 << 12);

  // Algorithm 1, both plans: one shared DAG (the sweep only varies m).
  util::Rng rng(41);
  const auto g = ds::build_hierarchical_dag(dag_n, 2.0, 3, rng);
  const HierarchicalDag dag(g, 2.0);
  const auto shape = g.shape_for(g.vertex_count());
  const mesh::CostModel m;
  auto alg1_stream = [&](std::size_t mq) {
    auto qs = make_queries(mq);
    util::Rng qrng(42);
    for (auto& q : qs)
      q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));
    return qs;
  };

  // Algorithm 2: directed k-ary search tree, alpha splitting.
  KaryTree tree2(ds::iota_keys(tree2_n), 3, TreeMode::kDirected);
  const auto shape2 = tree2.graph().shape_for(tree2.graph().vertex_count());
  auto alg2_stream = [&](std::size_t mq) {
    util::Rng qrng(43);
    return ds::uniform_key_queries(mq, tree2_n + 20, qrng);
  };

  // Algorithm 3: undirected binary tree, alpha-beta splittings.
  KaryTree tree3(ds::iota_keys(tree3_n), 2, TreeMode::kUndirected);
  const auto shape3 = tree3.graph().shape_for(tree3.graph().vertex_count());
  const auto [s1, s2] = tree3.alpha_beta_splittings();
  auto alg3_stream = [&](std::size_t mq) {
    auto qs = make_queries(mq);
    util::Rng qrng(44);
    for (auto& q : qs) {
      const auto a =
          qrng.uniform_range(-3, static_cast<std::int64_t>(tree3_n) + 3);
      q.key[0] = a;
      q.key[1] = a + qrng.uniform_range(0, 30);
    }
    return qs;
  };

  for (const auto order : {BatchOrder::kFifo, BatchOrder::kLocalityReorder}) {
    report("alg1-paper", order,
           sweep([&] { return PreparedSearch(dag, PlanKind::kPaper,
                                             ds::HashWalk{0}, m, shape); },
                 alg1_stream, order, ratios));
    report("alg1-geometric", order,
           sweep([&] { return PreparedSearch(dag, PlanKind::kGeometric,
                                             ds::HashWalk{0}, m, shape); },
                 alg1_stream, order, ratios));
    report("alg2-alpha", order,
           sweep([&] { return PreparedSearch(EngineKind::kAlg2Alpha,
                                             tree2.graph(),
                                             tree2.alpha_splitting(),
                                             tree2.alpha_splitting(),
                                             tree2.rank_count(), m, shape2); },
                 alg2_stream, order, ratios));
    report("alg3-alpha-beta", order,
           sweep([&] { return PreparedSearch(EngineKind::kAlg3AlphaBeta,
                                             tree3.graph(), s1, s2,
                                             tree3.euler_scan(), m, shape3); },
                 alg3_stream, order, ratios));
  }

  showcase(topt);
  return 0;
}
