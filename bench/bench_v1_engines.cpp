// V1 — engine cross-validation and wall-clock throughput of the simulator.
//
// google-benchmark timings for the physically faithful cycle engine
// (shearsort, snake scan, greedy routing) and the counting engine, plus a
// table comparing measured cycle-engine step counts with the counting
// engine's charged costs: the scan ratio is a constant, the sort ratio
// grows as the shearsort log factor (exactly why the counting engine
// charges the optimal bound — see DESIGN.md §2).
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "mesh/cycle_ops.hpp"
#include "mesh/grid.hpp"
#include "mesh/ops.hpp"
#include "util/rng.hpp"

using namespace meshsearch;
using mesh::Grid;
using mesh::MeshShape;

namespace {

std::vector<std::int64_t> random_values(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = rng.uniform_range(-1000000, 1000000);
  return v;
}

void BM_CycleShearsort(benchmark::State& state) {
  const MeshShape s(static_cast<std::uint32_t>(state.range(0)));
  const auto vals = random_values(s.size(), 1);
  for (auto _ : state) {
    auto g = Grid<std::int64_t>::from_snake(s, vals);
    benchmark::DoNotOptimize(g.shearsort());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_CycleShearsort)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_CycleSnakeScan(benchmark::State& state) {
  const MeshShape s(static_cast<std::uint32_t>(state.range(0)));
  const auto vals = random_values(s.size(), 2);
  for (auto _ : state) {
    auto g = Grid<std::int64_t>::from_snake(s, vals);
    benchmark::DoNotOptimize(g.snake_scan(std::plus<std::int64_t>{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_CycleSnakeScan)->Arg(32)->Arg(128);

void BM_CycleRoutePermutation(benchmark::State& state) {
  const MeshShape s(static_cast<std::uint32_t>(state.range(0)));
  util::Rng rng(3);
  const auto vals = random_values(s.size(), 3);
  const auto perm = util::random_permutation(s.size(), rng);
  const std::vector<std::uint32_t> dest(perm.begin(), perm.end());
  for (auto _ : state) {
    auto g = Grid<std::int64_t>::from_snake(s, vals);
    benchmark::DoNotOptimize(g.route_permutation(dest));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_CycleRoutePermutation)->Arg(16)->Arg(32)->Arg(64);

void BM_CountingSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto vals = random_values(n, 4);
  const mesh::CostModel m;
  for (auto _ : state) {
    auto v = vals;
    benchmark::DoNotOptimize(mesh::ops::sort(v, m, static_cast<double>(n)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CountingSort)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

void cross_engine_table(const bench::TraceOptions& topt) {
  bench::section("V1: measured cycle-engine steps vs charged costs");
  util::Table t({"side", "p", "shear steps", "charged sort", "ratio(sort)",
                 "scan steps", "charged scan", "ratio(scan)", "route steps",
                 "charged route", "RAR steps", "charged RAR(phys)"});
  const mesh::CostModel m;
  mesh::CostModel phys;
  phys.physical_sort = true;
  for (std::uint32_t side : {8u, 16u, 32u, 64u, 128u}) {
    const MeshShape s(side);
    trace::TraceRecorder rec("cycle");
    trace::TraceRecorder* tr = topt.enabled ? &rec : nullptr;
    const auto vals = random_values(s.size(), side);
    auto g1 = Grid<std::int64_t>::from_snake(s, vals);
    g1.set_trace(tr);
    const double shear = static_cast<double>(g1.shearsort());
    auto g2 = Grid<std::int64_t>::from_snake(s, vals);
    g2.set_trace(tr);
    const double scan =
        static_cast<double>(g2.snake_scan(std::plus<std::int64_t>{}));
    util::Rng rng(side);
    const auto perm = util::random_permutation(s.size(), rng);
    const std::vector<std::uint32_t> dest(perm.begin(), perm.end());
    auto g3 = Grid<std::int64_t>::from_snake(s, vals);
    g3.set_trace(tr);
    const double route = static_cast<double>(g3.route_permutation(dest));
    // Physical random access read with a skewed request pattern.
    std::vector<std::int64_t> addr(s.size(), mesh::kNoAddr);
    for (std::size_t i = 0; i < s.size(); ++i)
      if (rng.uniform(10) < 7)
        addr[i] = static_cast<std::int64_t>(
            rng.bernoulli(0.5) ? rng.uniform(4) : rng.uniform(s.size()));
    const auto rar = mesh::cycle_random_access_read(s, vals, addr, 0, tr);
    const double p = static_cast<double>(s.size());
    t.add_row({static_cast<std::int64_t>(side), static_cast<std::int64_t>(p),
               shear, m.sort(p).steps, shear / m.sort(p).steps, scan,
               m.scan(p).steps, scan / m.scan(p).steps, route,
               m.route(p).steps, static_cast<double>(rar.steps),
               phys.rar(p).steps});
    bench::emit_trace(rec, topt, "v1_cycle_side" + std::to_string(side));
  }
  bench::emit(t, "v1_cross_engine");
}

}  // namespace

int main(int argc, char** argv) {
  const auto topt = bench::parse_trace_flag(argc, argv);
  cross_engine_table(topt);
  // Strip --trace before handing argv to google-benchmark, which rejects
  // flags it does not know.
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace") {
      if (i + 1 < argc && argv[i + 1][0] != '-') ++i;
      continue;
    }
    if (a.rfind("--trace=", 0) == 0) continue;
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
