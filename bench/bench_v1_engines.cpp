// V1 — engine cross-validation and wall-clock throughput of the simulator.
//
// google-benchmark timings for the physically faithful cycle engine
// (shearsort, snake scan, greedy routing) and the counting engine, plus a
// table comparing measured cycle-engine step counts with the counting
// engine's charged costs: the scan ratio is a constant, the sort ratio
// grows as the shearsort log factor (exactly why the counting engine
// charges the optimal bound — see DESIGN.md §2).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "datastruct/workloads.hpp"
#include "mesh/cycle_ops.hpp"
#include "mesh/grid.hpp"
#include "mesh/ops.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/query.hpp"
#include "util/check.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"

using namespace meshsearch;
using mesh::Grid;
using mesh::MeshShape;

namespace {

std::vector<std::int64_t> random_values(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = rng.uniform_range(-1000000, 1000000);
  return v;
}

void BM_CycleShearsort(benchmark::State& state) {
  const MeshShape s(static_cast<std::uint32_t>(state.range(0)));
  const auto vals = random_values(s.size(), 1);
  for (auto _ : state) {
    auto g = Grid<std::int64_t>::from_snake(s, vals);
    benchmark::DoNotOptimize(g.shearsort());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_CycleShearsort)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_CycleSnakeScan(benchmark::State& state) {
  const MeshShape s(static_cast<std::uint32_t>(state.range(0)));
  const auto vals = random_values(s.size(), 2);
  for (auto _ : state) {
    auto g = Grid<std::int64_t>::from_snake(s, vals);
    benchmark::DoNotOptimize(g.snake_scan(std::plus<std::int64_t>{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_CycleSnakeScan)->Arg(32)->Arg(128);

void BM_CycleRoutePermutation(benchmark::State& state) {
  const MeshShape s(static_cast<std::uint32_t>(state.range(0)));
  util::Rng rng(3);
  const auto vals = random_values(s.size(), 3);
  const auto perm = util::random_permutation(s.size(), rng);
  const std::vector<std::uint32_t> dest(perm.begin(), perm.end());
  for (auto _ : state) {
    auto g = Grid<std::int64_t>::from_snake(s, vals);
    benchmark::DoNotOptimize(g.route_permutation(dest));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_CycleRoutePermutation)->Arg(16)->Arg(32)->Arg(64);

void BM_CountingSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto vals = random_values(n, 4);
  const mesh::CostModel m;
  for (auto _ : state) {
    auto v = vals;
    benchmark::DoNotOptimize(mesh::ops::sort(v, m, static_cast<double>(n)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CountingSort)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

void cross_engine_table(const bench::TraceOptions& topt) {
  bench::section("V1: measured cycle-engine steps vs charged costs");
  util::Table t({"side", "p", "shear steps", "charged sort", "ratio(sort)",
                 "scan steps", "charged scan", "ratio(scan)", "route steps",
                 "charged route", "RAR steps", "charged RAR(phys)"});
  const mesh::CostModel m;
  mesh::CostModel phys;
  phys.physical_sort = true;
  for (std::uint32_t side : {8u, 16u, 32u, 64u, 128u}) {
    const MeshShape s(side);
    trace::TraceRecorder rec("cycle");
    trace::TraceRecorder* tr = topt.enabled ? &rec : nullptr;
    const auto vals = random_values(s.size(), side);
    auto g1 = Grid<std::int64_t>::from_snake(s, vals);
    g1.set_trace(tr);
    const double shear = static_cast<double>(g1.shearsort());
    auto g2 = Grid<std::int64_t>::from_snake(s, vals);
    g2.set_trace(tr);
    const double scan =
        static_cast<double>(g2.snake_scan(std::plus<std::int64_t>{}));
    util::Rng rng(side);
    const auto perm = util::random_permutation(s.size(), rng);
    const std::vector<std::uint32_t> dest(perm.begin(), perm.end());
    auto g3 = Grid<std::int64_t>::from_snake(s, vals);
    g3.set_trace(tr);
    const double route = static_cast<double>(g3.route_permutation(dest));
    // Physical random access read with a skewed request pattern.
    std::vector<std::int64_t> addr(s.size(), mesh::kNoAddr);
    for (std::size_t i = 0; i < s.size(); ++i)
      if (rng.uniform(10) < 7)
        addr[i] = static_cast<std::int64_t>(
            rng.bernoulli(0.5) ? rng.uniform(4) : rng.uniform(s.size()));
    const auto rar = mesh::cycle_random_access_read(s, vals, addr, 0, tr);
    const double p = static_cast<double>(s.size());
    // Build the row in a named vector: a brace-init list of variant
    // temporaries trips a gcc-12 maybe-uninitialized false positive here.
    std::vector<util::Table::Cell> row;
    row.emplace_back(static_cast<std::int64_t>(side));
    row.emplace_back(static_cast<std::int64_t>(p));
    row.emplace_back(shear);
    row.emplace_back(m.sort(p).steps);
    row.emplace_back(shear / m.sort(p).steps);
    row.emplace_back(scan);
    row.emplace_back(m.scan(p).steps);
    row.emplace_back(scan / m.scan(p).steps);
    row.emplace_back(route);
    row.emplace_back(m.route(p).steps);
    row.emplace_back(static_cast<double>(rar.steps));
    row.emplace_back(phys.rar(p).steps);
    t.add_row(std::move(row));
    bench::emit_trace(rec, topt, "v1_cycle_side" + std::to_string(side));
  }
  bench::emit(t, "v1_cross_engine");
}

/// V1k — the counting-engine kernel sweep the SoA data plane is gated on.
///
/// One point per n: the full set of mesh::ops primitives over snake-ordered
/// SoA arrays (integer keys, payload indices, segment flags). The table rows
/// are charged costs plus a data checksum — both bit-identical by contract
/// whatever the kernel implementation — while the per-op wall histograms in
/// BENCH_v1_engines.json are what the wall gate (and the EXPERIMENTS.md V2
/// table) compare before/after.
void counting_kernel_sweep() {
  bench::section("V1k: counting-engine kernel sweep (SoA data plane)");
  util::Table t({"n", "sort", "rank", "scan", "seg scan", "route", "rar",
                 "raw", "compress", "checksum"});
  for (const unsigned e : {18u, 20u, 22u}) {
    const std::size_t n = std::size_t{1} << e;
    const double p = static_cast<double>(n);
    const std::string tag = "v1k.n" + std::to_string(e) + ".";
    const auto total_wall = bench::time_point(tag + "total");
    util::Rng rng(100 + e);
    std::vector<std::int64_t> keys(n);
    for (auto& k : keys)
      k = rng.uniform_range(std::int64_t{-1} << 40, std::int64_t{1} << 40);
    const mesh::CostModel m;
    std::uint64_t checksum = 0xcbf29ce484222325ull;
    const auto mix = [&checksum](std::uint64_t x) {
      checksum = (checksum ^ x) * 0x100000001b3ull;
    };

    mesh::Cost c_sort, c_rank, c_scan, c_seg, c_route, c_rar, c_raw, c_comp;
    {
      const auto w = bench::time_point(tag + "sort");
      auto v = keys;
      c_sort = mesh::ops::sort(v, m, p);
      for (std::size_t i = 0; i < n; i += 997)
        mix(static_cast<std::uint64_t>(v[i]));
    }
    std::vector<std::uint32_t> ranks;
    {
      const auto w = bench::time_point(tag + "rank");
      c_rank = mesh::ops::rank(keys, ranks, m, p);
      for (std::size_t i = 0; i < n; i += 997) mix(ranks[i]);
    }
    {
      const auto w = bench::time_point(tag + "scan");
      auto v = keys;
      c_scan = mesh::ops::scan_inclusive(v, m, p);
      for (std::size_t i = 0; i < n; i += 997)
        mix(static_cast<std::uint64_t>(v[i]));
    }
    {
      const auto w = bench::time_point(tag + "seg_scan");
      auto v = keys;
      std::vector<std::uint8_t> seg(n, 0);
      for (std::size_t i = 0; i < n; i += 17) seg[i] = 1;
      c_seg = mesh::ops::scan_segmented(v, seg, m, p);
      for (std::size_t i = 0; i < n; i += 997)
        mix(static_cast<std::uint64_t>(v[i]));
    }
    {
      const auto w = bench::time_point(tag + "route");
      const auto perm = util::random_permutation(n, rng);
      const std::vector<std::uint32_t> dest(perm.begin(), perm.end());
      std::vector<std::int64_t> out;
      c_route = mesh::ops::route(keys, dest, out, n, m, p);
      for (std::size_t i = 0; i < n; i += 997)
        mix(static_cast<std::uint64_t>(out[i]));
    }
    std::vector<mesh::ops::Addr> addr(n);
    for (std::size_t i = 0; i < n; ++i)
      addr[i] = i % 8 == 0 ? mesh::ops::kNone
                           : static_cast<mesh::ops::Addr>(rng.uniform(n));
    {
      const auto w = bench::time_point(tag + "rar");
      std::vector<std::int64_t> out;
      c_rar = mesh::ops::random_access_read(std::span<const std::int64_t>(keys),
                                            std::span<const mesh::ops::Addr>(addr),
                                            out, m, p);
      for (std::size_t i = 0; i < n; i += 997)
        mix(static_cast<std::uint64_t>(out[i]));
    }
    {
      const auto w = bench::time_point(tag + "raw");
      std::vector<std::uint32_t> counts;
      c_raw = mesh::ops::random_access_count(
          std::span<const mesh::ops::Addr>(addr), counts, n, m, p);
      for (std::size_t i = 0; i < n; i += 997) mix(counts[i]);
    }
    {
      const auto w = bench::time_point(tag + "compress");
      std::vector<std::int64_t> out;
      c_comp = mesh::ops::compress(
          keys, [](std::int64_t k) { return k > 0; }, out, m, p);
      for (std::size_t i = 0; i < out.size(); i += 997)
        mix(static_cast<std::uint64_t>(out[i]));
    }
    t.add_row({static_cast<std::int64_t>(n), c_sort.steps, c_rank.steps,
               c_scan.steps, c_seg.steps, c_route.steps, c_rar.steps,
               c_raw.steps, c_comp.steps,
               static_cast<std::int64_t>(checksum >> 1)});
  }
  bench::emit(t, "v1k_counting");
}

/// Parse `--threads <list>` / `--threads=<list>` where <list> is a comma
/// separated set of host thread counts, e.g. `--threads 1,2,4,8`. Bare
/// `--threads` uses the default sweep {1, 2, 4, 8}. Empty when absent.
std::vector<unsigned> parse_threads_flag(int argc, char** argv) {
  std::string spec;
  bool enabled = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads") {
      enabled = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') spec = argv[++i];
    } else if (a.rfind("--threads=", 0) == 0) {
      enabled = true;
      spec = a.substr(10);
    }
  }
  if (!enabled) return {};
  if (spec.empty()) return {1, 2, 4, 8};
  std::vector<unsigned> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const unsigned long v = std::strtoul(tok.c_str(), nullptr, 10);
    if (v > 0 && v <= 4096) out.push_back(static_cast<unsigned>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Host-parallelism wall-clock sweep: Algorithm 1 (paper plan) on a
/// hierarchical DAG at n = 2^20, once per requested thread count. The
/// determinism contract demands bit-identical simulated step counts and
/// query outcomes at every thread count — checked here, not just in tests.
void thread_sweep(const std::vector<unsigned>& threads) {
  using namespace meshsearch::msearch;
  if (threads.empty()) return;
  bench::section("V1t: host-thread wall-clock sweep (Alg 1, n=2^20)");
  // hardware_concurrency() may report 0 when the host cannot say.
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned max_swept = *std::max_element(threads.begin(), threads.end());
  if (hw > 0) {
    std::cout << "host hardware concurrency: " << hw << " threads\n";
    if (hw < max_swept)
      std::cout << "note: sweep includes counts above " << hw
                << "; those rows are oversubscribed and their speedups "
                   "reflect scheduling, not scaling\n";
  } else {
    std::cout << "host hardware concurrency: unknown\n";
  }
  util::Rng rng(7);
  const std::size_t n = std::size_t{1} << 20;
  const auto g = ds::build_hierarchical_dag(n, 2.0, 3, rng);
  const HierarchicalDag dag(g, 2.0);
  const auto shape = g.shape_for(g.vertex_count());
  const mesh::CostModel m;
  auto qs = make_queries(g.vertex_count());
  util::Rng qrng(n);
  for (auto& q : qs)
    q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));
  const ds::HashWalk prog{0};

  util::Table t({"threads", "wall ms", "speedup", "sim steps", "note"});
  double base_ms = 0.0;
  double ref_steps = 0.0;
  std::vector<QueryOutcome> ref_outcomes;
  for (std::size_t i = 0; i < threads.size(); ++i) {
    util::ThreadPool::set_global_threads(threads[i]);
    auto q = qs;
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = hierarchical_multisearch(dag, prog, q, m, shape);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (i == 0) {
      base_ms = ms;
      ref_steps = res.cost.steps;
      ref_outcomes = outcomes(q);
    } else {
      MS_CHECK_MSG(res.cost.steps == ref_steps,
                   "thread sweep: simulated step counts diverged "
                   "(determinism contract violated)");
      MS_CHECK_MSG(outcomes(q) == ref_outcomes,
                   "thread sweep: query outcomes diverged "
                   "(determinism contract violated)");
    }
    std::vector<util::Table::Cell> row;
    row.emplace_back(static_cast<std::int64_t>(threads[i]));
    row.emplace_back(ms);
    row.emplace_back(base_ms / ms);
    row.emplace_back(res.cost.steps);
    row.emplace_back(std::string(hw > 0 && threads[i] > hw ? "oversubscribed"
                                                           : ""));
    t.add_row(std::move(row));
  }
  util::ThreadPool::set_global_threads(0);  // back to the env/default pool
  bench::emit(t, "v1_threads");
}

}  // namespace

int main(int argc, char** argv) {
  const auto topt = bench::parse_trace_flag(argc, argv);
  bench::BenchReport breport("v1_engines", argc, argv);
  // --smoke: the V1k kernel sweep only (deterministic charged table + data
  // checksum + per-op wall histograms) for the CI bench gate; skips the
  // cycle-engine table, the thread sweep and google-benchmark.
  if (bench::has_flag(argc, argv, "--smoke")) {
    breport.set_config("smoke", "1");
    counting_kernel_sweep();
    return 0;
  }
  const auto threads = parse_threads_flag(argc, argv);
  cross_engine_table(topt);
  counting_kernel_sweep();
  thread_sweep(threads);
  // Strip --trace/--threads before handing argv to google-benchmark, which
  // rejects flags it does not know.
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace" || a == "--threads") {
      if (i + 1 < argc && argv[i + 1][0] != '-') ++i;
      continue;
    }
    if (a.rfind("--trace=", 0) == 0 || a.rfind("--threads=", 0) == 0) continue;
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
