// E6 — §6: interval trees and multiple interval intersection search.
//
//   (a) Counting: |{i : [l_i, r_i] meets [a,b]}| = n - rank_{r}(a-1) -
//       (n - rank_{l}(b)) — two Theorem-5 (Algorithm 2) rank multisearches
//       on endpoint trees. Checked against the brute-force oracle and swept
//       over n; compared with the 1-processor sequential baseline (total
//       visits = work).
//   (b) Reporting: stabbing queries on the chain-augmented interval tree via
//       Algorithm 3, swept over interval density (mean stabbing depth k),
//       showing the output-sensitive r = O(log n + k) term.
#include <cmath>

#include "bench_common.hpp"
#include "datastruct/interval_tree.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/segment_tree.hpp"
#include "datastruct/workloads.hpp"
#include "multisearch/partitioned.hpp"
#include "multisearch/query.hpp"
#include "multisearch/sequential.hpp"
#include "util/rng.hpp"

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::Interval;
using ds::IntervalTree;
using ds::KaryTree;

namespace {

std::vector<Interval> random_intervals(std::size_t n, std::int64_t span,
                                       std::int64_t max_len, util::Rng& rng) {
  std::vector<Interval> ivs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t lo = rng.uniform_range(0, span);
    ivs[i] = Interval{lo, lo + rng.uniform_range(0, max_len),
                      static_cast<std::int32_t>(i)};
  }
  return ivs;
}

KaryTree endpoint_tree(const std::vector<Interval>& ivs, bool left) {
  std::vector<std::int64_t> pts;
  pts.reserve(ivs.size());
  for (const auto& iv : ivs) pts.push_back(left ? iv.lo : iv.hi);
  std::sort(pts.begin(), pts.end());
  std::vector<ds::WeightedKey> keys;
  for (const auto p : pts) {
    if (!keys.empty() && keys.back().key == p)
      ++keys.back().weight;
    else
      keys.push_back({p, 1});
  }
  return KaryTree(keys, 4, ds::TreeMode::kDirected);
}

}  // namespace

int main(int argc, char** argv) {
  const auto topt = bench::parse_trace_flag(argc, argv);
  bench::BenchReport breport("e6_intervals", argc, argv);
  // (a) counting sweep over n.
  bench::section("E6a: multiple interval intersection counting (Alg 2 x2)");
  util::Table t({"intervals", "n(mesh)", "mesh steps", "steps/sqrt(n)",
                 "seq visits", "speedup(work/steps)", "oracle ok"});
  std::vector<double> ns, steps;
  for (unsigned e = 10; e <= 18; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    util::Rng rng(61 + e);
    const auto ivs = random_intervals(n, static_cast<std::int64_t>(4 * n), 64, rng);
    const KaryTree ltree = endpoint_tree(ivs, true);
    const KaryTree rtree = endpoint_tree(ivs, false);
    auto qa = make_queries(n), qb = make_queries(n);
    std::vector<std::pair<std::int64_t, std::int64_t>> ranges(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t a = rng.uniform_range(0, static_cast<std::int64_t>(4 * n));
      const std::int64_t b = a + rng.uniform_range(0, 256);
      ranges[i] = {a, b};
      qa[i].key[0] = a - 1;
      qb[i].key[0] = b;
    }
    bench::TracedModel tm(topt);
    const auto shape = rtree.graph().shape_for(n);
    auto res1 = multisearch_alpha(rtree.graph(), rtree.alpha_splitting(),
                                  rtree.rank_count(), qa, tm.model, shape);
    auto res2 = multisearch_alpha(ltree.graph(), ltree.alpha_splitting(),
                                  ltree.rank_count(), qb, tm.model, shape);
    bench::emit_trace(tm.rec, topt, "e6a_n2e" + std::to_string(e));
    // Sequential baseline work.
    auto sa = qa, sb = qb;
    reset_queries(sa);
    reset_queries(sb);
    const auto seq1 = sequential_multisearch(rtree.graph(), rtree.rank_count(), sa);
    const auto seq2 = sequential_multisearch(ltree.graph(), ltree.rank_count(), sb);
    // Spot-check 200 answers against the oracle.
    bool ok = true;
    const auto ni = static_cast<std::int64_t>(n);
    for (std::size_t i = 0; i < 200; ++i) {
      const std::size_t j = rng.uniform(n);
      const std::int64_t got = ni - qa[j].acc0 - (ni - qb[j].acc0);
      if (got != ds::intersect_count_oracle(ivs, ranges[j].first,
                                            ranges[j].second)) {
        ok = false;
        break;
      }
    }
    const double total = res1.cost.steps + res2.cost.steps;
    const double work =
        static_cast<double>(seq1.total_visits + seq2.total_visits);
    const double p = static_cast<double>(shape.size());
    t.add_row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(p),
               total, total / std::sqrt(p), work, work / total,
               std::string(ok ? "yes" : "NO")});
    ns.push_back(p);
    steps.push_back(total);
  }
  bench::emit(t, "e6a_counting");
  bench::report_fit("E6a interval counting (claim O(sqrt n))", ns, steps, 0.5);

  // (b) reporting: density sweep at fixed n.
  bench::section("E6b: stabbing reporting via Algorithm 3, density sweep");
  util::Table t2({"max len", "mean k", "r", "log-phases", "alg steps",
                  "alg/sqrt(n)"});
  const std::size_t n = std::size_t{1} << 14;
  for (const std::int64_t maxlen : {0L, 64L, 256L, 1024L, 4096L}) {
    util::Rng rng(71 + static_cast<std::uint64_t>(maxlen));
    const auto ivs =
        random_intervals(n, static_cast<std::int64_t>(2 * n), maxlen, rng);
    IntervalTree tree(ivs);
    auto qs = make_queries(n);
    for (auto& q : qs)
      q.key[0] = rng.uniform_range(0, static_cast<std::int64_t>(2 * n));
    const auto [s1, s2] = tree.alpha_beta_splittings();
    bench::TracedModel tm(topt);
    const auto shape = tree.graph().shape_for(qs.size());
    const auto res = multisearch_alpha_beta(tree.graph(), s1, s2,
                                            tree.stabbing_program(), qs, tm.model,
                                            shape);
    bench::emit_trace(tm.rec, topt, "e6b_len" + std::to_string(maxlen));
    double mean_k = 0;
    for (const auto& q : qs) mean_k += static_cast<double>(q.acc0);
    mean_k /= static_cast<double>(qs.size());
    const double p = static_cast<double>(shape.size());
    t2.add_row({maxlen, mean_k, static_cast<std::int64_t>(res.longest_path),
                static_cast<std::int64_t>(res.log_phases), res.cost.steps,
                res.cost.steps / std::sqrt(p)});
  }
  bench::emit(t2, "e6b_stabbing");

  // (c) the same stabbing answers by the segment-tree decomposition
  // (pure directed descent, Algorithm 2) — a cross-structure check and a
  // cost comparison of the two §6 data-structure choices.
  bench::section("E6c: stabbing counts, interval tree (Alg 3) vs segment tree (Alg 2)");
  util::Table t3({"intervals", "segtree steps", "ivtree steps",
                  "ivtree/segtree", "answers agree"});
  for (unsigned e = 10; e <= 15; e += 1) {
    const std::size_t nn = std::size_t{1} << e;
    util::Rng rng(91 + e);
    const auto ivs =
        random_intervals(nn, static_cast<std::int64_t>(2 * nn), 128, rng);
    ds::SegmentTree st(ivs);
    IntervalTree it(ivs);
    auto qs = make_queries(nn);
    for (auto& q : qs)
      q.key[0] = rng.uniform_range(0, static_cast<std::int64_t>(2 * nn));
    bench::TracedModel tm(topt);
    auto q_st = qs;
    const auto st_res = multisearch_alpha(
        st.graph(), st.alpha_splitting(), st.stab_count(), q_st, tm.model,
        st.graph().shape_for(qs.size()));
    auto q_it = qs;
    const auto [s1, s2] = it.alpha_beta_splittings();
    const auto it_res = multisearch_alpha_beta(
        it.graph(), s1, s2, it.stabbing_program(), q_it, tm.model,
        it.graph().shape_for(qs.size()));
    bench::emit_trace(tm.rec, topt, "e6c_n2e" + std::to_string(e));
    bool agree = true;
    for (std::size_t i = 0; i < qs.size(); ++i)
      agree &= q_st[i].acc0 == q_it[i].acc0;
    t3.add_row({static_cast<std::int64_t>(nn), st_res.cost.steps,
                it_res.cost.steps, it_res.cost.steps / st_res.cost.steps,
                std::string(agree ? "yes" : "NO")});
  }
  bench::emit(t3, "e6c_cross_structure");
  return 0;
}
