// E11 — dynamic updates: incremental refresh vs full re-setup crossover.
//
// Claim (update.hpp / stream.hpp): after a payload-only apply_updates batch,
// a warm engine can re-distribute just the dirty records — charged as
// ceil(dirty replica copies / p) `rebuild` rounds (one sort + one route
// each) — instead of re-running the full setup. The crossover is governed by
// the update fraction: below a threshold the incremental path is strictly
// cheaper, above it (dirty copies >> p) the full re-setup wins. We sweep the
// update batch size B for all four engines, measure the realized dirty
// fraction and both refresh costs, and report the measured crossover.
// Topological deltas have no incremental path at all: the Kirkpatrick
// section re-triangulates the whole hierarchy per batch (pockets at the
// coarsest granularity) and demonstrates the forced full re-setup fallback.
//
// Every sweep point also replays one batch on the refreshed warm engine and
// on a cold engine built over the same mutated structure: outcomes and
// per-batch charges must be bit-identical (the warm==cold oracle), else a
// VIOLATION line is printed and the gate's stdout diff catches it.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "datastruct/interval_tree.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "geometry/kirkpatrick.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/query.hpp"
#include "multisearch/stream.hpp"
#include "multisearch/update.hpp"
#include "util/rng.hpp"

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::Interval;
using ds::IntervalTree;
using ds::KaryTree;
using ds::TreeMode;
using geom::Kirkpatrick;
using geom::Point2;

namespace {

struct SweepPoint {
  std::size_t batch = 0;        ///< inserts + deletes in the update batch
  std::size_t dirty = 0;        ///< dirty vertices the delta reported
  double dirty_frac = 0;        ///< dirty / vertex_count
  double incremental_steps = 0; ///< refresh via the rebuild primitive
  double full_steps = 0;        ///< refresh via force_full re-setup
};

/// One engine's sweep: for each batch size build a fresh structure and warm
/// engine (every point is a cold start), apply one payload-only update
/// batch, and measure the incremental refresh against the force_full
/// baseline on the same delta. `flow(B)` owns the structure mutation and the
/// warm==cold replay; it returns the filled point.
template <typename Flow>
std::vector<SweepPoint> sweep(const std::vector<std::size_t>& batches,
                              Flow flow) {
  std::vector<SweepPoint> out;
  for (const std::size_t b : batches) {
    const auto wall = bench::time_point("e11.sweep_point");
    out.push_back(flow(b));
  }
  return out;
}

void report(const std::string& engine_name,
            const std::vector<SweepPoint>& pts, bool expect_cheap_start) {
  util::Table t({"batch", "dirty verts", "dirty frac", "incremental steps",
                 "full steps", "full/incremental"});
  for (const auto& pt : pts)
    t.add_row({static_cast<std::int64_t>(pt.batch),
               static_cast<std::int64_t>(pt.dirty), pt.dirty_frac,
               pt.incremental_steps, pt.full_steps,
               pt.full_steps / pt.incremental_steps});
  bench::section("E11: " + engine_name + " incremental vs full re-setup");
  bench::emit(t, "e11_" + engine_name);
  // The measured crossover: the largest swept batch whose incremental
  // refresh still beats the full re-setup (every smaller batch must too).
  std::size_t crossover = 0;
  for (const auto& pt : pts) {
    if (pt.incremental_steps < pt.full_steps)
      crossover = pt.batch;
    else
      break;
  }
  std::cout << "crossover: incremental wins up to batch "
            << crossover << " of " << pts.back().batch << " swept\n";
  if (expect_cheap_start &&
      pts.front().incremental_steps >= pts.front().full_steps)
    std::cout << "VIOLATION: incremental refresh not below full re-setup at "
                 "batch "
              << pts.front().batch << "\n";
}

/// Replay one batch on the refreshed warm engine and on a cold engine over
/// the same mutated structure; print VIOLATION lines on any divergence.
template <typename P>
void warm_cold_check(const std::string& engine_name,
                     PreparedSearch<P>& warm, PreparedSearch<P> cold,
                     std::vector<Query> qs) {
  auto warm_qs = qs;
  const BatchReport w = warm.run_batch(warm_qs);
  const BatchReport c = cold.run_batch(qs);
  if (const auto diff = diff_outcomes(outcomes(warm_qs), outcomes(qs));
      !diff.empty())
    std::cout << "VIOLATION: warm/cold outcomes diverge (" << engine_name
              << "): " << diff << "\n";
  if (!(w.inject == c.inject) || !(w.run == c.run) || w.visits != c.visits)
    std::cout << "VIOLATION: warm/cold per-batch charges diverge ("
              << engine_name << ")\n";
}

std::vector<Interval> interval_set(std::size_t n, std::size_t wides,
                                   std::uint64_t seed) {
  std::vector<Interval> ivs;
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t lo = rng.uniform_range(0, 90000);
    ivs.push_back(Interval{lo, lo + rng.uniform_range(0, 800),
                           static_cast<std::int32_t>(i)});
  }
  // Wide intervals anchor the root chains so later wide inserts have a
  // chain (with slack) to land in.
  for (std::size_t w = 0; w < wides; ++w)
    ivs.push_back(Interval{static_cast<std::int64_t>(w), 100000,
                           static_cast<std::int32_t>(n + w)});
  return ivs;
}

std::vector<Point2> point_set(std::size_t n, std::uint64_t seed) {
  std::vector<Point2> pts;
  util::Rng rng(seed);
  for (std::size_t i = 0; i < 4 * n && pts.size() < n; ++i) {
    const Point2 p{rng.uniform_range(-9000, 9000),
                   rng.uniform_range(-9000, 9000)};
    bool dup = false;
    for (const auto& q : pts) dup |= q.x == p.x && q.y == p.y;
    if (!dup) pts.push_back(p);
  }
  return pts;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport breport("e11_dynamic", argc, argv);
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  if (smoke) breport.set_config("smoke", "1");
  const std::size_t keys_n = smoke ? (1 << 10) : (1 << 12);
  const std::size_t ivs_n = smoke ? 384 : 1024;
  const std::size_t pts_n = smoke ? 160 : 600;
  // Per-structure batch sweeps: the k-ary sweep runs all the way to "every
  // key updated" so the realized update fraction spans ~0..1 and the
  // crossover (where ceil(dirty copies / p) rebuild rounds outgrow the full
  // re-setup) is actually reachable; chains and triangulations sweep
  // smaller batches.
  const std::vector<std::size_t> kary_batches =
      smoke ? std::vector<std::size_t>{1, 32, keys_n}
            : std::vector<std::size_t>{1, 16, 256, 1024, keys_n};
  const std::vector<std::size_t> ivs_batches =
      smoke ? std::vector<std::size_t>{1, 8, 64}
            : std::vector<std::size_t>{1, 4, 16, 64, 256};
  const std::vector<std::size_t> kp_batches =
      smoke ? std::vector<std::size_t>{1, 8, 64}
            : std::vector<std::size_t>{1, 4, 16, 64};
  const mesh::CostModel m;

  // K-ary payload update: weight updates in place of the LAST b keys. A
  // weight change dirties its leaf and the rank prefixes after it, so the
  // dirty suffix scales with b — sweeping the realized update fraction —
  // while the topology is untouched (the delta stays payload-only).
  auto kary_update = [&](KaryTree& tree, std::size_t b) {
    std::vector<ds::WeightedKey> ins;
    for (std::size_t i = 0; i < b; ++i)
      ins.push_back(ds::WeightedKey{
          static_cast<std::int64_t>(keys_n - 1 - i), 2});
    return tree.apply_updates(ins, {});
  };
  auto kary_queries = [&](std::size_t mq, std::uint64_t seed) {
    util::Rng qrng(seed);
    return ds::uniform_key_queries(mq, keys_n + 300, qrng);
  };

  // Algorithm 1, both plans, over the directed k-ary tree's hierarchical
  // DAG (|L_i| = k^i is exactly the paper's class, mu = k).
  for (const PlanKind plan : {PlanKind::kPaper, PlanKind::kGeometric}) {
    const std::string name =
        plan == PlanKind::kPaper ? "alg1-paper" : "alg1-geometric";
    report(name, sweep(kary_batches, [&](std::size_t b) {
      KaryTree tree(ds::iota_keys(keys_n), 3, TreeMode::kDirected);
      const HierarchicalDag dag(tree.graph(), 3.0);
      const auto shape = tree.graph().shape_for(tree.graph().vertex_count());
      PreparedSearch warm(dag, plan, tree.rank_count(), m, shape);
      const auto delta = kary_update(tree, b);
      SweepPoint pt;
      pt.batch = b;
      pt.dirty = delta.dirty_vertices.size();
      pt.dirty_frac = static_cast<double>(pt.dirty) /
                      static_cast<double>(tree.graph().vertex_count());
      RefreshRequest req;
      req.delta = delta;
      pt.incremental_steps = warm.refresh(req).cost.steps;
      req.force_full = true;
      pt.full_steps = warm.refresh(req).cost.steps;
      warm_cold_check(name, warm,
                      PreparedSearch(dag, plan, tree.rank_count(), m, shape),
                      kary_queries(shape.size() / 2, 51));
      return pt;
    }), /*expect_cheap_start=*/true);
  }

  // Algorithm 2 over the same tree family, alpha splitting.
  report("alg2-alpha", sweep(kary_batches, [&](std::size_t b) {
    KaryTree tree(ds::iota_keys(keys_n), 3, TreeMode::kDirected);
    const auto shape = tree.graph().shape_for(tree.graph().vertex_count());
    PreparedSearch warm(EngineKind::kAlg2Alpha, tree.graph(),
                        tree.alpha_splitting(), tree.alpha_splitting(),
                        tree.rank_count(), m, shape);
    const auto delta = kary_update(tree, b);
    SweepPoint pt;
    pt.batch = b;
    pt.dirty = delta.dirty_vertices.size();
    pt.dirty_frac = static_cast<double>(pt.dirty) /
                    static_cast<double>(tree.graph().vertex_count());
    RefreshRequest req;
    req.delta = delta;
    pt.incremental_steps = warm.refresh(req).cost.steps;
    req.force_full = true;
    pt.full_steps = warm.refresh(req).cost.steps;
    warm_cold_check(
        "alg2-alpha", warm,
        PreparedSearch(EngineKind::kAlg2Alpha, tree.graph(),
                       tree.alpha_splitting(), tree.alpha_splitting(),
                       tree.rank_count(), m, shape),
        kary_queries(shape.size() / 2, 52));
    return pt;
  }), /*expect_cheap_start=*/true);

  // Algorithm 3 over the slack interval tree: B wide inserts (landing in
  // the root chains' spare slots) + B deletes of original intervals.
  report("alg3-alpha-beta", sweep(ivs_batches, [&](std::size_t b) {
    IntervalTree t(interval_set(ivs_n, 4, 77), /*chain_slack=*/b);
    const auto [s1, s2] = t.alpha_beta_splittings();
    const auto shape = t.graph().shape_for(t.graph().vertex_count());
    PreparedSearch warm(EngineKind::kAlg3AlphaBeta, t.graph(), s1, s2,
                        t.stabbing_program(), m, shape);
    std::vector<Interval> ins;
    std::vector<std::int32_t> del;
    for (std::size_t i = 0; i < b; ++i) {
      ins.push_back(Interval{static_cast<std::int64_t>(100 + i), 99000,
                             static_cast<std::int32_t>(10000 + i)});
      del.push_back(static_cast<std::int32_t>(3 * i));
    }
    const auto delta = t.apply_updates(ins, del);
    SweepPoint pt;
    pt.batch = 2 * b;
    pt.dirty = delta.dirty_vertices.size();
    pt.dirty_frac = static_cast<double>(pt.dirty) /
                    static_cast<double>(t.graph().vertex_count());
    RefreshRequest req;
    req.delta = delta;
    pt.incremental_steps = warm.refresh(req).cost.steps;
    req.force_full = true;
    pt.full_steps = warm.refresh(req).cost.steps;
    auto qs = make_queries(shape.size() / 2);
    util::Rng qrng(53);
    for (auto& q : qs) q.key[0] = qrng.uniform_range(-100, 100100);
    warm_cold_check("alg3-alpha-beta", warm,
                    PreparedSearch(EngineKind::kAlg3AlphaBeta, t.graph(), s1,
                                   s2, t.stabbing_program(), m, shape),
                    std::move(qs));
    return pt;
  }), /*expect_cheap_start=*/true);

  // Kirkpatrick: point inserts re-triangulate the whole hierarchy (the
  // pocket is the coarsest possible — everything), so the delta is
  // topological and the refresh always takes the full re-setup fallback.
  // No crossover to find; the table pins the fallback's cost and the
  // warm==cold check still must hold after the topology change.
  {
    util::Table t({"batch", "dag verts after", "incremental", "full steps"});
    bench::section("E11: kirkpatrick topological fallback");
    for (const std::size_t b : kp_batches) {
      const auto wall = bench::time_point("e11.sweep_point");
      Kirkpatrick kp(point_set(pts_n, 88), 16384);
      const auto shape = kp.dag().shape_for(4 * kp.dag().vertex_count());
      HierarchicalDag dag = kp.hierarchical_dag();
      PreparedSearch warm(dag, PlanKind::kGeometric, kp.locate_program(), m,
                          shape);
      std::vector<Point2> ins;
      for (std::size_t i = 0; i < b; ++i)
        ins.push_back(Point2{static_cast<std::int64_t>(9200 + i),
                             static_cast<std::int64_t>(9100 - 2 * i)});
      const auto delta = kp.apply_updates(ins, {});
      dag = kp.hierarchical_dag();  // refresh the assignable view in place
      RefreshRequest req;
      req.delta = delta;
      const RefreshReport rep = warm.refresh(req);
      if (rep.incremental)
        std::cout << "VIOLATION: topological delta took the incremental "
                     "path\n";
      t.add_row({static_cast<std::int64_t>(b),
                 static_cast<std::int64_t>(kp.dag().vertex_count()),
                 std::string(rep.incremental ? "yes" : "no"),
                 rep.cost.steps});
      auto qs = make_queries(shape.size() / 4);
      util::Rng qrng(54);
      for (auto& q : qs) {
        q.key[0] = qrng.uniform_range(-20000, 20000);
        q.key[1] = qrng.uniform_range(-20000, 20000);
      }
      warm_cold_check("kirkpatrick", warm,
                      PreparedSearch(dag, PlanKind::kGeometric,
                                     kp.locate_program(), m, shape),
                      std::move(qs));
    }
    bench::emit(t, "e11_kirkpatrick_fallback");
  }

  return 0;
}
