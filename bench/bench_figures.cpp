// F1–F5 — the paper's five (definitional) figures, regenerated as
// structural dumps from the implemented classes:
//   F1: a hierarchical DAG with mu = 2 — level-size profile.
//   F2: a directed balanced binary tree and its alpha-splitter (alpha=1/2)
//       — piece inventory with kinds and sizes.
//   F3: an undirected balanced binary tree with alpha- and beta-splitters
//       whose borders are h/6 = Omega(log n) apart — measured distance.
//   F4: the band decomposition B_0..B_{T-1}, B* of §3.
//   F5: the inner split B_i^1 / B_i^2 of Lemma 1.
#include <cmath>

#include "bench_common.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/query.hpp"
#include "util/rng.hpp"

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::KaryTree;

int main(int argc, char** argv) {
  bench::BenchReport breport("figures", argc, argv);
  // F1.
  bench::section("Figure 1: hierarchical DAG with mu = 2");
  {
    util::Rng rng(1);
    const auto g = ds::build_hierarchical_dag(1 << 12, 2.0, 2, rng);
    const HierarchicalDag dag(g, 2.0);
    util::Table t({"level", "|L_i|", "|L_i| / 2^i"});
    for (std::int32_t i = 0; i <= dag.height(); ++i)
      t.add_row({static_cast<std::int64_t>(i),
                 static_cast<std::int64_t>(dag.level_size(i)),
                 static_cast<double>(dag.level_size(i)) / std::pow(2.0, i)});
    bench::emit(t, "f1_levels");
  }

  // F2.
  bench::section("Figure 2: directed balanced binary tree, alpha-splitter");
  {
    KaryTree tree(ds::iota_keys(512), 2, ds::TreeMode::kDirected);
    const auto s = tree.alpha_splitting();
    validate_alpha_splitting(tree.graph(), s);
    const auto sizes = piece_sizes(s);
    std::size_t heads = 0, tails = 0, head_total = 0, tail_total = 0;
    for (std::size_t pc = 0; pc < sizes.size(); ++pc) {
      if (s.kind[pc] == PieceKind::kHead) {
        ++heads;
        head_total += sizes[pc];
      } else {
        ++tails;
        tail_total += sizes[pc];
      }
    }
    util::Table t({"quantity", "value"});
    t.add_row({std::string("tree height h"),
               static_cast<std::int64_t>(tree.height())});
    t.add_row({std::string("splitter cut depth"),
               static_cast<std::int64_t>((tree.height() + 1) / 2)});
    t.add_row({std::string("head pieces (H_i)"), static_cast<std::int64_t>(heads)});
    t.add_row({std::string("tail pieces (T_i)"), static_cast<std::int64_t>(tails)});
    t.add_row({std::string("max piece size"),
               static_cast<std::int64_t>(max_piece_size(s))});
    t.add_row({std::string("delta (measured)"), s.delta});
    t.add_row({std::string("head vertices"), static_cast<std::int64_t>(head_total)});
    t.add_row({std::string("tail vertices"), static_cast<std::int64_t>(tail_total)});
    bench::emit(t, "f2_alpha_splitter");
  }

  // F3.
  bench::section("Figure 3: undirected tree, S1/S2 with Omega(log n) distance");
  {
    util::Table t({"n(keys)", "h", "cut d1", "cut d2", "border distance",
                   "h/6", "delta1", "delta2"});
    for (const std::size_t nkeys : {256u, 4096u, 65536u}) {
      KaryTree tree(ds::iota_keys(nkeys), 2, ds::TreeMode::kUndirected);
      const auto [s1, s2] = tree.alpha_beta_splittings();
      const auto dist = border_distance(tree.graph(), s1, s2, 1000);
      const auto h = tree.height();
      // Mirror KaryTree::alpha_beta_splittings' cut depths (d2 clamped to
      // keep the borders >= 2 cut levels apart).
      const std::int32_t d1 = std::max<std::int32_t>(1, (h + 1) / 2);
      std::int32_t d2 = std::max<std::int32_t>(1, (h + 1) / 3);
      if (d2 > d1 - 2) d2 = std::max<std::int32_t>(1, d1 - 2);
      t.add_row({static_cast<std::int64_t>(nkeys),
                 static_cast<std::int64_t>(h),
                 static_cast<std::int64_t>(d1),
                 static_cast<std::int64_t>(d2),
                 static_cast<std::int64_t>(dist),
                 static_cast<double>(h) / 6.0, s1.delta, s2.delta});
    }
    bench::emit(t, "f3_alpha_beta");
  }

  // F4 + F5.
  bench::section("Figures 4-5: band decomposition B_i and the B_i^1/B_i^2 split");
  {
    util::Rng rng(2);
    const auto g = ds::build_hierarchical_dag(1 << 20, 2.0, 2, rng);
    const HierarchicalDag dag(g, 2.0);
    const auto shape = g.shape_for(g.vertex_count());
    const auto plan = make_hierarchical_plan(dag, shape);
    util::Table t({"band", "levels", "B_i^1 levels", "B_i^2 levels", "|B_i|",
                   "submesh grid", "submesh elems", "inner grid"});
    for (std::size_t i = 0; i < plan.bands.size(); ++i) {
      const auto& b = plan.bands[i];
      t.add_row({static_cast<std::int64_t>(i),
                 std::to_string(b.lo) + ".." + std::to_string(b.hi),
                 static_cast<std::int64_t>(b.split - b.lo),
                 static_cast<std::int64_t>(b.hi - b.split + 1),
                 static_cast<std::int64_t>(b.vertices),
                 static_cast<std::int64_t>(b.grid),
                 static_cast<std::int64_t>(b.submesh_elems),
                 static_cast<std::int64_t>(b.inner_grid)});
    }
    t.add_row({std::string("B*"),
               std::to_string(plan.bstar_lo) + ".." +
                   std::to_string(dag.height()),
               std::int64_t{0},
               static_cast<std::int64_t>(dag.height() - plan.bstar_lo + 1),
               static_cast<std::int64_t>(
                   dag.band_vertex_count(plan.bstar_lo, dag.height())),
               std::int64_t{1}, static_cast<std::int64_t>(shape.size()),
               std::int64_t{1}});
    bench::emit(t, "f4_f5_bands");
    std::cout << "log*-recursion constant c = " << plan.c << " (mu = 2)\n";
  }
  return 0;
}
