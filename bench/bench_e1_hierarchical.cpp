// E1 / E1b — Theorem 2 and Lemma 1.
//
// Claim (Theorem 2): the multisearch problem for n queries on a
// hierarchical DAG of size n solves in O(sqrt n) mesh time. We sweep n,
// run Algorithm 1 with the hash-walk program (every query walks root to a
// leaf, r = h+1 = Theta(log n)), and fit the growth exponent of simulated
// steps vs mesh size — expected ~0.5. The synchronous [DR90]-style baseline
// pays Theta(r sqrt n) = Theta(sqrt(n) log n): same 0.5 exponent but a
// log-factor larger and a measured hier/sync ratio that keeps improving
// with n.
//
// Claim (Lemma 1): solving band B_i costs O(sqrt(|B_i|) * log^{(i+1)} h)
// inside its submesh. The band report prints measured vs bound per band.
#include "bench_common.hpp"
#include "datastruct/workloads.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/query.hpp"
#include "multisearch/synchronous.hpp"
#include "util/rng.hpp"

using namespace meshsearch;
using namespace meshsearch::msearch;

namespace {

void sweep(double mu, unsigned fanout, unsigned lo, unsigned hi,
           const bench::TraceOptions& topt) {
  bench::section("E1: Theorem 2 sweep (mu=" + std::to_string(mu) + ")");
  util::Table t({"n(mesh)", "h", "bands", "paper steps", "geom steps",
                 "sync steps", "sync/paper", "paper/sqrt(n)"});
  std::vector<double> ns, hier_steps, geom_steps, sync_steps;
  util::Rng rng(7);
  for (const auto n : bench::pow2_sweep(lo, hi)) {
    const auto wall = bench::time_point("e1.sweep_point");
    const auto g = ds::build_hierarchical_dag(n, mu, fanout, rng);
    const HierarchicalDag dag(g, mu);
    const auto shape = g.shape_for(g.vertex_count());
    bench::TracedModel tm(topt);
    auto qs = make_queries(g.vertex_count());
    util::Rng qrng(n);
    for (auto& q : qs)
      q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));

    auto qh = qs;
    const ds::HashWalk prog{0};
    const auto hier = hierarchical_multisearch(dag, prog, qh, tm.model, shape);
    auto qg = qs;
    const auto geom = hierarchical_multisearch(dag, prog, qg, tm.model, shape,
                                               PlanKind::kGeometric);
    auto qsyn = qs;
    reset_queries(qsyn);
    const auto sync = synchronous_multisearch(g, prog, qsyn, tm.model, shape);

    const double p = static_cast<double>(shape.size());
    const auto plan = make_hierarchical_plan(dag, shape);
    t.add_row({static_cast<std::int64_t>(shape.size()),
               static_cast<std::int64_t>(dag.height()),
               static_cast<std::int64_t>(plan.bands.size()), hier.cost.steps,
               geom.cost.steps, sync.cost.steps,
               sync.cost.steps / hier.cost.steps,
               hier.cost.steps / std::sqrt(p)});
    ns.push_back(p);
    hier_steps.push_back(hier.cost.steps);
    geom_steps.push_back(geom.cost.steps);
    sync_steps.push_back(sync.cost.steps);
    // Keyed by the DAG size parameter n: distinct sweep points can share a
    // mesh size (shape_for rounds up), so p alone would collide.
    bench::emit_trace(tm.rec, topt,
                      "e1_mu" + std::to_string(static_cast<int>(mu)) + "_n" +
                          std::to_string(n));
  }
  bench::emit(t, "e1_mu" + std::to_string(static_cast<int>(mu)));
  bench::report_fit("E1 Algorithm 1, paper plan (claim O(sqrt n))", ns,
                    hier_steps, 0.5);
  bench::report_fit("E1 Algorithm 1, geometric plan (claim O(sqrt n))", ns,
                    geom_steps, 0.5);
  bench::report_fit("E1 synchronous baseline (O(sqrt n log n))", ns,
                    sync_steps, 0.5);
}

void band_report(std::size_t n, double mu, const bench::TraceOptions& topt) {
  bench::section("E1b: Lemma 1 band breakdown (n~" + std::to_string(n) + ")");
  util::Rng rng(9);
  const auto g = ds::build_hierarchical_dag(n, mu, 3, rng);
  const HierarchicalDag dag(g, mu);
  const auto shape = g.shape_for(g.vertex_count());
  bench::TracedModel tm(topt);
  const auto plan = make_hierarchical_plan(dag, shape);
  const auto cost = hierarchical_cost(dag, plan, shape, tm.model);
  util::Table t({"band", "levels", "|B_i|", "grid", "setup steps",
                 "solve steps", "lemma1 bound", "solve/bound"});
  for (std::size_t i = 0; i < cost.bands.size(); ++i) {
    const auto& b = cost.bands[i];
    t.add_row({static_cast<std::int64_t>(i),
               std::to_string(b.lo) + ".." + std::to_string(b.hi),
               static_cast<std::int64_t>(b.vertices),
               static_cast<std::int64_t>(b.grid), b.setup_steps, b.solve_steps,
               b.lemma1_bound, b.solve_steps / b.lemma1_bound});
  }
  t.add_row({std::string("B*"),
             std::to_string(plan.bstar_lo) + ".." + std::to_string(dag.height()),
             static_cast<std::int64_t>(
                 dag.band_vertex_count(plan.bstar_lo, dag.height())),
             std::int64_t{1}, 0.0, cost.bstar_steps, std::sqrt(double(shape.size())),
             cost.bstar_steps / std::sqrt(double(shape.size()))});
  bench::emit(t, "e1b_bands");
  std::cout << "total steps " << cost.cost.steps << " = "
            << cost.cost.steps / std::sqrt(double(shape.size()))
            << " * sqrt(n); B* levels = " << cost.bstar_levels << "\n";
  bench::emit_trace(tm.rec, topt, "e1b_bands");
}

}  // namespace

int main(int argc, char** argv) {
  const auto topt = bench::parse_trace_flag(argc, argv);
  bench::BenchReport breport("e1_hierarchical", argc, argv);
  // --smoke: one short sweep for the CI bench gate.
  if (bench::has_flag(argc, argv, "--smoke")) {
    breport.set_config("smoke", "1");
    sweep(2.0, 3, 10, 14, topt);
    band_report(std::size_t{1} << 14, 2.0, topt);
    return 0;
  }
  sweep(2.0, 3, 12, 20, topt);
  sweep(4.0, 4, 12, 20, topt);
  band_report(std::size_t{1} << 20, 2.0, topt);
  return 0;
}
