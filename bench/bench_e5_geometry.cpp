// E5 — Theorem 8: the geometry applications solve in O(sqrt n) via
// hierarchical-DAG multisearch.
//
//   (a) Multiple planar point location: n queries in a Kirkpatrick
//       subdivision hierarchy over n points (the [Kir83]/[DK87] structure
//       the paper builds §5 on).
//   (b) Multiple tangent plane determination: n directional extreme-vertex
//       queries on a 3-d Dobkin–Kirkpatrick polytope hierarchy.
//   (c) Multiple line-polygon intersection on the 2-d DK hierarchy
//       (Theorem 8 item 1 in its polygon form; see DESIGN.md §6).
#include <cmath>

#include "bench_common.hpp"
#include "geometry/dk_hierarchy.hpp"
#include "geometry/dk_polygon.hpp"
#include "geometry/hull2d.hpp"
#include "geometry/kirkpatrick.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/query.hpp"
#include "multisearch/synchronous.hpp"
#include "util/rng.hpp"

using namespace meshsearch;
using namespace meshsearch::geom;
using msearch::make_queries;

namespace {

std::vector<Point2> dedup(std::vector<Point2> pts) {
  std::sort(pts.begin(), pts.end(), [](const Point2& a, const Point2& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  return pts;
}

void kirkpatrick_sweep(const bench::TraceOptions& topt) {
  bench::section("E5a: multiple planar point location (Kirkpatrick)");
  util::Table t({"points", "n(mesh)", "hier levels", "paper-plan steps",
                 "geom-plan steps", "sync steps", "sync/geom",
                 "geom/sqrt(n)"});
  std::vector<double> ns, steps, paper_steps;
  for (unsigned e = 8; e <= 14; e += 2) {
    const std::size_t npts = std::size_t{1} << e;
    util::Rng rng(31 + e);
    const Scalar radius = 1 << 18;
    const auto pts = dedup(random_points_in_disk(npts, radius - 8, rng));
    Kirkpatrick kp(pts, radius);
    const auto dag = kp.hierarchical_dag();
    const auto shape = kp.dag().shape_for(kp.dag().vertex_count());
    auto qs = make_queries(kp.dag().vertex_count());
    for (auto& q : qs) {
      q.key[0] = rng.uniform_range(-radius / 2, radius / 2);
      q.key[1] = rng.uniform_range(-radius / 2, radius / 2);
    }
    bench::TracedModel tm(topt);
    auto qh = qs;
    const auto paper =
        msearch::hierarchical_multisearch(dag, kp.locate_program(), qh, tm.model, shape);
    auto qg = qs;
    const auto geom = msearch::hierarchical_multisearch(
        dag, kp.locate_program(), qg, tm.model, shape,
        msearch::PlanKind::kGeometric);
    auto qsyn = qs;
    msearch::reset_queries(qsyn);
    const auto sync = msearch::synchronous_multisearch(
        kp.dag(), kp.locate_program(), qsyn, tm.model, shape);
    const double p = static_cast<double>(shape.size());
    t.add_row({static_cast<std::int64_t>(pts.size()),
               static_cast<std::int64_t>(shape.size()),
               static_cast<std::int64_t>(kp.hierarchy_levels()),
               paper.cost.steps, geom.cost.steps, sync.cost.steps,
               sync.cost.steps / geom.cost.steps,
               geom.cost.steps / std::sqrt(p)});
    ns.push_back(p);
    steps.push_back(geom.cost.steps);
    paper_steps.push_back(paper.cost.steps);
    bench::emit_trace(tm.rec, topt, "e5a_n2e" + std::to_string(e));
  }
  bench::emit(t, "e5a_kirkpatrick");
  bench::report_fit("E5a geometric-plan (claim O(sqrt n))", ns, steps, 0.5);
  bench::report_fit(
      "E5a paper-plan (degenerate B* regime, O(sqrt n log n) here)", ns,
      paper_steps, 0.5);
}

void dk3_sweep(const bench::TraceOptions& topt) {
  bench::section("E5b: multiple tangent planes (3-d DK hierarchy)");
  util::Table t({"hull verts", "n(mesh)", "levels", "paper-plan steps",
                 "geom-plan steps", "sync steps", "sync/geom",
                 "geom/sqrt(n)"});
  std::vector<double> ns, steps;
  for (unsigned e = 8; e <= 14; e += 2) {
    const std::size_t npts = std::size_t{1} << e;
    util::Rng rng(41 + e);
    const auto pts = random_points_on_sphere(npts, 1 << 19, rng);
    DKHierarchy3 dk(pts, rng);
    const auto& ed = dk.extreme_dag();
    const auto dag = ed.hierarchical_dag();
    const auto shape = ed.dag.shape_for(ed.dag.vertex_count());
    auto qs = make_queries(ed.dag.vertex_count());
    for (auto& q : qs) {
      do {
        q.key[0] = rng.uniform_range(-1000, 1000);
        q.key[1] = rng.uniform_range(-1000, 1000);
        q.key[2] = rng.uniform_range(-1000, 1000);
      } while (q.key[0] == 0 && q.key[1] == 0 && q.key[2] == 0);
    }
    bench::TracedModel tm(topt);
    auto qh = qs;
    const auto paper = msearch::hierarchical_multisearch(
        dag, dk.extreme_program(), qh, tm.model, shape);
    auto qg = qs;
    const auto geom = msearch::hierarchical_multisearch(
        dag, dk.extreme_program(), qg, tm.model, shape,
        msearch::PlanKind::kGeometric);
    auto qsyn = qs;
    msearch::reset_queries(qsyn);
    const auto sync = msearch::synchronous_multisearch(
        ed.dag, dk.extreme_program(), qsyn, tm.model, shape);
    const double p = static_cast<double>(shape.size());
    t.add_row({static_cast<std::int64_t>(dk.hull_vertices().size()),
               static_cast<std::int64_t>(shape.size()),
               static_cast<std::int64_t>(dk.hierarchy_levels()),
               paper.cost.steps, geom.cost.steps, sync.cost.steps,
               sync.cost.steps / geom.cost.steps,
               geom.cost.steps / std::sqrt(p)});
    ns.push_back(p);
    steps.push_back(geom.cost.steps);
    bench::emit_trace(tm.rec, topt, "e5b_n2e" + std::to_string(e));
  }
  bench::emit(t, "e5b_dk3");
  bench::report_fit("E5b tangent planes, geometric plan (claim O(sqrt n))",
                    ns, steps, 0.5);
}

void polygon_lines(const bench::TraceOptions& topt) {
  bench::section("E5c: multiple line-polygon intersection (2-d DK)");
  util::Table t({"polygon verts", "lines", "n(mesh)", "hier steps",
                 "hier/sqrt(n)", "hit fraction"});
  std::vector<double> ns, steps;
  for (unsigned e = 8; e <= 16; e += 2) {
    util::Rng rng(51 + e);
    const auto poly = random_convex_polygon(std::size_t{1} << e, 1 << 19, rng);
    DKPolygon dk(poly);
    std::vector<DKPolygon::Line> lines(std::size_t{1} << e);
    for (auto& l : lines) {
      do {
        l.a = rng.uniform_range(-100, 100);
        l.b = rng.uniform_range(-100, 100);
      } while (l.a == 0 && l.b == 0);
      l.c = rng.uniform_range(-(1LL << 26), 1LL << 26);
    }
    auto qs = dk.make_line_queries(lines);
    const auto& ed = dk.extreme_dag();
    const auto dag = ed.hierarchical_dag();
    const auto shape = ed.dag.shape_for(qs.size());
    bench::TracedModel tm(topt);
    const auto hier = msearch::hierarchical_multisearch(
        dag, dk.extreme_program(), qs, tm.model, shape,
        msearch::PlanKind::kGeometric);
    bench::emit_trace(tm.rec, topt, "e5c_n2e" + std::to_string(e));
    const auto hit = DKPolygon::combine_line_answers(lines, qs);
    double frac = 0;
    for (const auto h : hit) frac += h;
    frac /= static_cast<double>(hit.size());
    const double p = static_cast<double>(shape.size());
    t.add_row({static_cast<std::int64_t>(poly.size()),
               static_cast<std::int64_t>(lines.size()),
               static_cast<std::int64_t>(shape.size()), hier.cost.steps,
               hier.cost.steps / std::sqrt(p), frac});
    ns.push_back(p);
    steps.push_back(hier.cost.steps);
  }
  bench::emit(t, "e5c_lines");
  bench::report_fit("E5c line-polygon (claim O(sqrt n))", ns, steps, 0.5);
}

void polygon_tangents(const bench::TraceOptions& topt) {
  bench::section("E5d: multiple tangent lines from external points (2-d DK)");
  util::Table t({"polygon verts", "queries", "n(mesh)", "hier steps",
                 "hier/sqrt(n)", "verified"});
  std::vector<double> ns, steps;
  for (unsigned e = 8; e <= 16; e += 2) {
    util::Rng rng(61 + e);
    const Scalar radius = 1 << 18;
    const auto poly = random_convex_polygon(std::size_t{1} << e, radius, rng);
    DKPolygon dk(poly);
    auto qs = make_queries(std::size_t{1} << e);
    for (auto& q : qs) {
      Point2 p;
      do {
        p.x = rng.uniform_range(-4 * radius, 4 * radius);
        p.y = rng.uniform_range(-4 * radius, 4 * radius);
      } while (p.x * p.x + p.y * p.y <= 4 * static_cast<std::int64_t>(radius) * radius);
      q.key[0] = p.x;
      q.key[1] = p.y;
      q.key[2] = (q.qid & 1) ? 1 : -1;
    }
    const auto& ed = dk.extreme_dag();
    const auto dag = ed.hierarchical_dag();
    const auto shape = ed.dag.shape_for(qs.size());
    bench::TracedModel tm(topt);
    const auto hier = msearch::hierarchical_multisearch(
        dag, dk.tangent_program(), qs, tm.model, shape,
        msearch::PlanKind::kGeometric);
    bench::emit_trace(tm.rec, topt, "e5d_n2e" + std::to_string(e));
    std::size_t verified = 0, checked = 0;
    for (std::size_t i = 0; i < qs.size(); i += 17) {
      ++checked;
      verified += dk.is_tangent_vertex(Point2{qs[i].key[0], qs[i].key[1]},
                                       qs[i].result,
                                       qs[i].key[2] >= 0 ? 1 : -1);
    }
    const double p = static_cast<double>(shape.size());
    t.add_row({static_cast<std::int64_t>(poly.size()),
               static_cast<std::int64_t>(qs.size()),
               static_cast<std::int64_t>(p), hier.cost.steps,
               hier.cost.steps / std::sqrt(p),
               std::to_string(verified) + "/" + std::to_string(checked)});
    ns.push_back(p);
    steps.push_back(hier.cost.steps);
  }
  bench::emit(t, "e5d_tangents");
  bench::report_fit("E5d tangent lines (claim O(sqrt n))", ns, steps, 0.5);
}

}  // namespace

int main(int argc, char** argv) {
  const auto topt = bench::parse_trace_flag(argc, argv);
  bench::BenchReport breport("e5_geometry", argc, argv);
  kirkpatrick_sweep(topt);
  dk3_sweep(topt);
  polygon_lines(topt);
  polygon_tangents(topt);
  return 0;
}
