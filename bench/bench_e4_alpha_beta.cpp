// E4 — Theorem 7: multisearch on an alpha-beta-partitionable undirected
// graph in O(sqrt n + r * sqrt(n)/log n).
//
// Workload: undirected k-ary search trees with Euler-scan range queries
// (queries move along tree edges in both directions — the inorder-traversal
// example of §4.3 / Figure 3). The range width controls the excursion
// length and hence r.
#include <cmath>

#include "bench_common.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "multisearch/partitioned.hpp"
#include "multisearch/query.hpp"
#include "multisearch/synchronous.hpp"
#include "util/rng.hpp"

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::KaryTree;

namespace {

struct RunOut {
  double alg = 0, sync = 0, p = 0;
  std::int32_t r = 0;
  std::size_t phases = 0;
};

RunOut run(std::size_t nkeys, std::int64_t width, std::uint64_t seed,
           const bench::TraceOptions& topt = {},
           const std::string& point = "") {
  KaryTree tree(ds::iota_keys(nkeys), 2, ds::TreeMode::kUndirected);
  auto qs = make_queries(nkeys / 2);
  util::Rng rng(seed);
  for (auto& q : qs) {
    const auto lo = rng.uniform(nkeys);
    q.key[0] = static_cast<std::int64_t>(lo);
    q.key[1] = static_cast<std::int64_t>(lo) + width;
  }
  const auto [s1, s2] = tree.alpha_beta_splittings();
  bench::TracedModel tm(topt);
  const auto shape = tree.graph().shape_for(qs.size());
  RunOut out;
  out.p = static_cast<double>(shape.size());
  auto qa = qs;
  const auto alg = multisearch_alpha_beta(tree.graph(), s1, s2,
                                          tree.euler_scan(), qa, tm.model, shape);
  out.alg = alg.cost.steps;
  out.r = alg.longest_path;
  out.phases = alg.log_phases;
  if (!point.empty()) bench::emit_trace(tm.rec, topt, point);
  auto qb = qs;
  reset_queries(qb);
  out.sync =
      synchronous_multisearch(tree.graph(), tree.euler_scan(), qb, tm.model, shape)
          .cost.steps;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto topt = bench::parse_trace_flag(argc, argv);
  bench::BenchReport breport("e4_alpha_beta", argc, argv);
  bench::section("E4: Theorem 7, excursion-width sweep at n = 2^17 keys");
  util::Table t({"range width", "r", "log-phases", "alg steps", "sync steps",
                 "sync/alg", "alg/sqrt(n)"});
  std::vector<double> rs, steps;
  const std::size_t nkeys = std::size_t{1} << 17;
  for (const std::int64_t width : {0L, 4L, 16L, 64L, 128L, 256L}) {
    const auto res = run(nkeys, width, 21, topt,
                         "e4_w" + std::to_string(width));
    t.add_row({width, static_cast<std::int64_t>(res.r),
               static_cast<std::int64_t>(res.phases), res.alg, res.sync,
               res.sync / res.alg, res.alg / std::sqrt(res.p)});
    rs.push_back(static_cast<double>(res.r));
    steps.push_back(res.alg);
  }
  bench::emit(t, "e4_width_sweep");
  const auto fit = util::fit_linear(rs, steps);
  const double p = static_cast<double>(std::size_t{1} << 18);
  std::cout << "steps vs r: slope " << fit.slope << " (sqrt(n)/log n = "
            << std::sqrt(p) / std::log2(p) << ", r2 " << fit.r2 << ")\n";

  bench::section("E4: Theorem 7, n sweep at range width 32");
  util::Table t2({"n(mesh)", "r", "log-phases", "alg steps", "sync steps",
                  "sync/alg", "alg/sqrt(n)"});
  std::vector<double> ns, alg_steps;
  for (unsigned e = 10; e <= 18; e += 2) {
    const auto res = run(std::size_t{1} << e, 32, 23 + e, topt,
                         "e4_n2e" + std::to_string(e));
    t2.add_row({static_cast<std::int64_t>(res.p),
                static_cast<std::int64_t>(res.r),
                static_cast<std::int64_t>(res.phases), res.alg, res.sync,
                res.sync / res.alg, res.alg / std::sqrt(res.p)});
    ns.push_back(res.p);
    alg_steps.push_back(res.alg);
  }
  bench::emit(t2, "e4_n_sweep");
  bench::report_fit("E4 Algorithm 3 (claim O(sqrt n) at fixed width)", ns,
                    alg_steps, 0.5);
  return 0;
}
