// E7 — ablations of the paper's design choices.
//
//   (i)  Copy duplication (§1 bullet 2, the Gamma machinery of §4.4): with
//        duplication OFF, a congested piece timeshares one delta-submesh and
//        round cost multiplies by ceil(load / capacity). Point-congested
//        workloads show the gap growing with n; the paper's copies keep the
//        cost flat at O(sqrt n).
//   (ii) Sort model: the counting engine charges the optimal O(sqrt p) mesh
//        sort; charging the physical shearsort bound O(sqrt p log p) instead
//        degrades every algorithm by exactly a log factor — visible as a
//        drifting ratio, not a changed exponent.
//   (iii) The §1 strawman "one copy of G per search" needs Theta(n) space
//        per processor and Theta(n * sqrt n) time just to replicate; we
//        print its analytic cost next to the measured Algorithm-2 cost.
#include <cmath>

#include "bench_common.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "multisearch/partitioned.hpp"
#include "multisearch/query.hpp"
#include "util/rng.hpp"

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::KaryTree;

int main(int argc, char** argv) {
  const auto topt = bench::parse_trace_flag(argc, argv);
  bench::BenchReport breport("e7_ablation", argc, argv);
  // (i) duplication on/off under point congestion.
  bench::section("E7i: copy duplication under point-congested load");
  util::Table t({"n(mesh)", "steps (dup ON)", "steps (dup OFF)",
                 "OFF/ON", "ON/sqrt(n)"});
  std::vector<double> ns, on_steps, off_steps;
  for (unsigned e = 10; e <= 18; e += 2) {
    const std::size_t nkeys = std::size_t{1} << e;
    KaryTree tree(ds::iota_keys(nkeys), 2, ds::TreeMode::kDirected);
    auto qs = make_queries(nkeys);
    for (auto& q : qs) q.key[0] = static_cast<std::int64_t>(nkeys / 2);
    bench::TracedModel tm(topt);
    const auto shape = tree.graph().shape_for(qs.size());
    auto q1 = qs;
    const auto on = multisearch_alpha(tree.graph(), tree.alpha_splitting(),
                                      tree.rank_count(), q1, tm.model, shape, true);
    bench::emit_trace(tm.rec, topt, "e7i_n2e" + std::to_string(e));
    auto q2 = qs;
    const auto off = multisearch_alpha(tree.graph(), tree.alpha_splitting(),
                                       tree.rank_count(), q2, tm.model, shape, false);
    const double p = static_cast<double>(shape.size());
    t.add_row({static_cast<std::int64_t>(p), on.cost.steps, off.cost.steps,
               off.cost.steps / on.cost.steps, on.cost.steps / std::sqrt(p)});
    ns.push_back(p);
    on_steps.push_back(on.cost.steps);
    off_steps.push_back(off.cost.steps);
  }
  bench::emit(t, "e7i_duplication");
  bench::report_fit("E7i dup ON (claim O(sqrt n))", ns, on_steps, 0.5);
  bench::report_fit("E7i dup OFF (congested, super-sqrt)", ns, off_steps, 0.5);

  // (ii) optimal vs physical (shearsort) cost model.
  bench::section("E7ii: optimal-sort vs shearsort charging");
  util::Table t2({"n(mesh)", "steps (optimal)", "steps (shearsort)",
                  "ratio", "log2(n)"});
  util::Rng rng(81);
  for (unsigned e = 10; e <= 20; e += 2) {
    const std::size_t nkeys = std::size_t{1} << e;
    KaryTree tree(ds::iota_keys(nkeys), 2, ds::TreeMode::kDirected);
    auto qs = ds::uniform_key_queries(nkeys, nkeys, rng);
    const auto shape = tree.graph().shape_for(qs.size());
    mesh::CostModel opt;
    auto q1 = qs;
    const auto a = multisearch_alpha(tree.graph(), tree.alpha_splitting(),
                                     tree.rank_count(), q1, opt, shape);
    mesh::CostModel phys;
    phys.physical_sort = true;
    auto q2 = qs;
    const auto b = multisearch_alpha(tree.graph(), tree.alpha_splitting(),
                                     tree.rank_count(), q2, phys, shape);
    t2.add_row({static_cast<std::int64_t>(shape.size()), a.cost.steps,
                b.cost.steps, b.cost.steps / a.cost.steps,
                std::log2(static_cast<double>(shape.size()))});
  }
  bench::emit(t2, "e7ii_sortmodel");

  // (iii) the copy-G-per-search strawman (analytic; §1).
  bench::section("E7iii: strawman 'one copy of G per search' (analytic)");
  util::Table t3({"n(mesh)", "strawman steps (n copies via routing)",
                  "strawman space/processor", "Alg 2 steps (measured)"});
  util::Rng rng3(83);
  for (unsigned e = 10; e <= 18; e += 4) {
    const std::size_t nkeys = std::size_t{1} << e;
    KaryTree tree(ds::iota_keys(nkeys), 2, ds::TreeMode::kDirected);
    auto qs = ds::uniform_key_queries(nkeys, nkeys, rng3);
    const mesh::CostModel m;
    const auto shape = tree.graph().shape_for(qs.size());
    const double p = static_cast<double>(shape.size());
    auto q1 = qs;
    const auto alg = multisearch_alpha(tree.graph(), tree.alpha_splitting(),
                                       tree.rank_count(), q1, m, shape);
    // n copies of an n-record graph: even with perfect pipelining each copy
    // needs a full-mesh routing, n * route(n) steps, and n records per
    // processor of storage (the paper: "there is not even enough space").
    const double strawman = p * m.route(p).steps;
    t3.add_row({static_cast<std::int64_t>(p), strawman,
                static_cast<std::int64_t>(p), alg.cost.steps});
  }
  bench::emit(t3, "e7iii_strawman");
  return 0;
}
