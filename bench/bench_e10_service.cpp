// E10 — multi-tenant service SLOs: open-loop load on warm engines.
//
// Claim (service/scheduler.hpp): a registry of warm engines plus a
// deficit-round-robin ServiceScheduler serves many tenants from one mesh
// with per-tenant latency that degrades gracefully as offered load crosses
// saturation. The load generator is OPEN-LOOP: each tenant's bursts arrive
// on a Poisson process over the service's virtual clock regardless of how
// far behind the service is — arrivals are never throttled by completions,
// so queue wait is an honest function of (offered load / service rate).
//
// Sweep: offered-load multiplier x tenant count x scheduling policy, for
// all four engine kinds. Per point we report p50/p95/p99 completion
// latency, p95 queue wait (both in simulated mesh steps, merged across
// tenants) and saturation throughput (completed queries per 1000 steps).
// Everything in the tables is a deterministic function of the arrival
// trace and the pump sequence — the virtual clock never reads wall time —
// so the bench gate pins these values exactly. Expectations:
//
//   * load 0.5: queue wait is a small multiple of one batch's steps and
//     throughput tracks the offered rate.
//   * load 2.0: throughput plateaus at the engine's service rate (that IS
//     the saturation measurement) and latency grows with backlog depth.
//   * drr vs exhaustive: identical totals — with uniform tenants the
//     policies differ in interleaving, not in work.
//
// `--trace <prefix>` additionally dumps one showcase point (Algorithm 1
// paper plan, two tenants) with the recorder wired, whose attribution
// table ends with the tenant.* metric families from export_metrics().
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "multisearch/query.hpp"
#include "service/engine.hpp"
#include "service/scheduler.hpp"
#include "service/tenant.hpp"
#include "util/rng.hpp"

using namespace meshsearch;
using namespace meshsearch::msearch;
using namespace meshsearch::service;
using ds::KaryTree;
using ds::TreeMode;

namespace {

/// A burst-stream factory: `make(count, seed)` returns `count` queries for
/// the engine's structure, deterministically derived from `seed`.
using StreamFn =
    std::function<std::vector<Query>(std::size_t, std::uint64_t)>;

struct EngineCase {
  EngineKey key;
  Engine* engine = nullptr;
  StreamFn make;
  double steps_per_batch = 0;  ///< calibrated: one full-capacity warm batch
};

struct ArrivalEvent {
  double at_steps = 0;
  std::size_t tenant = 0;
};

struct PointResult {
  std::size_t tenants = 0;
  double load = 0;
  SchedulePolicy policy = SchedulePolicy::kDeficitRoundRobin;
  double p50 = 0, p95 = 0, p99 = 0;  ///< latency, simulated steps
  double qwait_p95 = 0;              ///< queue wait, simulated steps
  double throughput = 0;             ///< completed queries per 1000 steps
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
};

/// Steps one full-capacity batch charges on this warm engine — the unit
/// the load multiplier is expressed against (service rate = capacity /
/// steps_per_batch queries per step).
double calibrate_batch_steps(EngineCase& ec) {
  ServiceScheduler sched;
  auto& t = sched.add_tenant(
      "calibrate", *ec.engine,
      TenantQuota{.max_outstanding = ec.engine->capacity()});
  t.submit(ec.make(ec.engine->capacity(), /*seed=*/9));
  sched.run_until_idle();
  return sched.now_steps();
}

/// One sweep point: `tenants` uniform tenants each submitting `bursts`
/// Poisson-spaced bursts of capacity/2 queries, aggregate offered load =
/// `load` x the engine's service rate. Open loop: the event list is fixed
/// up front; the service pumps between arrivals and drains afterwards.
PointResult run_point(EngineCase& ec, std::size_t tenants, double load,
                      SchedulePolicy policy, std::size_t bursts,
                      std::uint64_t seed) {
  const std::size_t cap = ec.engine->capacity();
  const std::size_t burst = std::max<std::size_t>(1, cap / 2);
  // Aggregate offered rate = tenants * burst / mean_gap queries/step;
  // setting it to load * (cap / steps_per_batch) gives the per-tenant gap:
  const double mean_gap = static_cast<double>(tenants) *
                          static_cast<double>(burst) * ec.steps_per_batch /
                          (static_cast<double>(cap) * load);

  std::vector<ArrivalEvent> events;
  for (std::size_t t = 0; t < tenants; ++t) {
    util::Rng rng(seed * 131 + t);
    double at = 0;
    for (std::size_t b = 0; b < bursts; ++b) {
      // Exponential inter-arrival; 1-u keeps the argument strictly positive.
      at += -std::log(1.0 - rng.uniform_real()) * mean_gap;
      events.push_back({at, t});
    }
  }
  std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
    if (a.at_steps != b.at_steps) return a.at_steps < b.at_steps;
    return a.tenant < b.tenant;
  });

  ServiceScheduler sched(ServiceConfig{.policy = policy});
  std::vector<TenantSession*> sessions;
  for (std::size_t t = 0; t < tenants; ++t)
    sessions.push_back(&sched.add_tenant(
        "tenant" + std::to_string(t), *ec.engine,
        TenantQuota{.max_outstanding = bursts * burst + cap}));

  std::uint64_t qseed = seed * 977;
  for (const auto& ev : events) {
    // Serve whatever is pending until the clock catches up to the arrival;
    // if the service goes idle first, the gap is idle time.
    while (!sched.idle() && sched.now_steps() < ev.at_steps) sched.pump();
    if (sched.now_steps() < ev.at_steps) sched.advance_clock_to(ev.at_steps);
    sessions[ev.tenant]->submit(ec.make(burst, ++qseed));
  }
  sched.run_until_idle();

  PointResult pt;
  pt.tenants = tenants;
  pt.load = load;
  pt.policy = policy;
  util::LogHistogram latency, qwait;
  for (const auto& rep : sched.reports()) {
    latency.merge(rep.latency_steps);
    qwait.merge(rep.queue_wait_steps);
    pt.submitted += static_cast<std::int64_t>(rep.submitted);
    pt.completed += static_cast<std::int64_t>(rep.completed);
    if (rep.failed_queries != 0 || rep.rejected_queries != 0)
      std::cout << "VIOLATION: fault-free open loop lost queries (tenant "
                << rep.tenant << ")\n";
  }
  pt.p50 = latency.p50();
  pt.p95 = latency.p95();
  pt.p99 = latency.p99();
  pt.qwait_p95 = qwait.p95();
  pt.throughput = 1000.0 * static_cast<double>(pt.completed) /
                  std::max(1.0, sched.now_steps());
  return pt;
}

void report(const EngineCase& ec, const std::vector<PointResult>& pts) {
  const std::string name = engine_key_name(ec.key);
  util::Table t({"tenants", "load", "policy", "lat p50", "lat p95",
                 "lat p99", "qwait p95", "q/kstep", "completed"});
  for (const auto& pt : pts)
    t.add_row({static_cast<std::int64_t>(pt.tenants), pt.load,
               std::string(schedule_policy_name(pt.policy)), pt.p50, pt.p95,
               pt.p99, pt.qwait_p95, pt.throughput, pt.completed});
  bench::section("E10: " + name + " (steps/batch = " +
                 std::to_string(ec.steps_per_batch) + ")");
  std::string csv = "e10_" + name;
  for (auto& c : csv)
    if (c == '/') c = '_';
  bench::emit(t, csv);
  for (const auto& pt : pts)
    if (pt.completed != pt.submitted)
      std::cout << "VIOLATION: " << name << " left queries unresolved at "
                << pt.tenants << " tenants, load " << pt.load << "\n";
}

/// Showcase trace: two tenants on one warm Algorithm-1 engine with the
/// recorder wired, so emit_trace's attribution table ends with the
/// tenant.<name>.* metric families and the service.* totals.
void showcase(const bench::TraceOptions& topt) {
  if (!topt.enabled) return;
  util::Rng rng(7);
  const auto g = ds::build_hierarchical_dag(1 << 10, 2.0, 3, rng);
  const HierarchicalDag dag(g, 2.0);
  const auto shape = g.shape_for(g.vertex_count());
  bench::TracedModel tm(topt);
  auto engine = make_hierarchical_engine(dag, PlanKind::kPaper,
                                         ds::HashWalk{0}, tm.model, shape);
  ServiceScheduler sched(ServiceConfig{}, &tm.rec);
  const TenantQuota quota{.max_outstanding = engine->capacity()};
  auto& a = sched.add_tenant("acme", *engine, quota);
  auto& b = sched.add_tenant("bolt", *engine, quota);
  const auto burst = [&](std::uint64_t seed) {
    auto qs = make_queries(engine->capacity());
    util::Rng qrng(seed);
    for (auto& q : qs)
      q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));
    return qs;
  };
  a.submit(burst(81));
  b.submit(burst(82));
  sched.run_until_idle();
  sched.export_metrics();
  bench::emit_trace(tm.rec, topt, "e10_showcase_two_tenants");
  if (bench::BenchReport* report = bench::BenchReport::active())
    report->add_wall_from(tm.rec);
}

}  // namespace

int main(int argc, char** argv) {
  const auto topt = bench::parse_trace_flag(argc, argv);
  bench::BenchReport breport("e10_service", argc, argv);
  // --smoke: smaller structures and fewer bursts for the CI bench gate —
  // still all four engines, both policies, and 2 and 4 tenants.
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  if (smoke) breport.set_config("smoke", "1");
  const std::size_t dag_n = smoke ? (1 << 10) : (1 << 12);
  const std::size_t tree2_n = smoke ? (1 << 8) : (1 << 10);
  const std::size_t tree3_n = smoke ? (1 << 8) : (1 << 9);
  const std::size_t bursts = smoke ? 8 : 24;
  const std::vector<double> loads =
      smoke ? std::vector<double>{0.5, 2.0}
            : std::vector<double>{0.5, 0.9, 2.0};
  const std::vector<std::size_t> tenant_counts{2, 4};
  breport.set_config("bursts", std::to_string(bursts));

  // One registry of warm engines for the whole sweep: setup is paid here,
  // once per structure, and every sweep point below is warm-only work.
  util::Rng rng(41);
  const auto g = ds::build_hierarchical_dag(dag_n, 2.0, 3, rng);
  const HierarchicalDag dag(g, 2.0);
  const auto shape = g.shape_for(g.vertex_count());
  const mesh::CostModel m;
  KaryTree tree2(ds::iota_keys(tree2_n), 3, TreeMode::kDirected);
  const auto shape2 = tree2.graph().shape_for(tree2.graph().vertex_count());
  KaryTree tree3(ds::iota_keys(tree3_n), 2, TreeMode::kUndirected);
  const auto shape3 = tree3.graph().shape_for(tree3.graph().vertex_count());
  const auto [s1, s2] = tree3.alpha_beta_splittings();

  EngineRegistry registry;
  registry.add({"hier", EngineKind::kAlg1Paper},
               make_hierarchical_engine(dag, PlanKind::kPaper, ds::HashWalk{0},
                                        m, shape));
  registry.add({"hier", EngineKind::kAlg1Geometric},
               make_hierarchical_engine(dag, PlanKind::kGeometric,
                                        ds::HashWalk{0}, m, shape));
  registry.add({"tree2", EngineKind::kAlg2Alpha},
               make_partitioned_engine(EngineKind::kAlg2Alpha, tree2.graph(),
                                       tree2.alpha_splitting(),
                                       tree2.alpha_splitting(),
                                       tree2.rank_count(), m, shape2));
  registry.add({"tree3", EngineKind::kAlg3AlphaBeta},
               make_partitioned_engine(EngineKind::kAlg3AlphaBeta,
                                       tree3.graph(), s1, s2,
                                       tree3.euler_scan(), m, shape3));

  const StreamFn alg1_stream = [](std::size_t mq, std::uint64_t seed) {
    auto qs = make_queries(mq);
    util::Rng qrng(seed);
    for (auto& q : qs)
      q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));
    return qs;
  };
  const StreamFn alg2_stream = [tree2_n](std::size_t mq, std::uint64_t seed) {
    util::Rng qrng(seed);
    return ds::uniform_key_queries(mq, tree2_n + 20, qrng);
  };
  const StreamFn alg3_stream = [tree3_n](std::size_t mq, std::uint64_t seed) {
    auto qs = make_queries(mq);
    util::Rng qrng(seed);
    for (auto& q : qs) {
      const auto a =
          qrng.uniform_range(-3, static_cast<std::int64_t>(tree3_n) + 3);
      q.key[0] = a;
      q.key[1] = a + qrng.uniform_range(0, 30);
    }
    return qs;
  };

  const std::vector<std::pair<EngineKey, StreamFn>> case_specs = {
      {{"hier", EngineKind::kAlg1Paper}, alg1_stream},
      {{"hier", EngineKind::kAlg1Geometric}, alg1_stream},
      {{"tree2", EngineKind::kAlg2Alpha}, alg2_stream},
      {{"tree3", EngineKind::kAlg3AlphaBeta}, alg3_stream},
  };
  std::vector<EngineCase> cases;
  for (const auto& [key, fn] : case_specs) {
    EngineCase ec;
    ec.key = key;
    ec.engine = &registry.at(key);
    ec.make = fn;
    cases.push_back(std::move(ec));
  }

  std::uint64_t point_seed = 100;
  for (auto& ec : cases) {
    ec.steps_per_batch = calibrate_batch_steps(ec);
    std::vector<PointResult> pts;
    for (const std::size_t tenants : tenant_counts)
      for (const double load : loads)
        for (const auto policy : {SchedulePolicy::kDeficitRoundRobin,
                                  SchedulePolicy::kExhaustive}) {
          const auto wall = bench::time_point("e10.sweep_point");
          pts.push_back(
              run_point(ec, tenants, load, policy, bursts, ++point_seed));
        }
    report(ec, pts);
  }

  showcase(topt);
  return 0;
}
