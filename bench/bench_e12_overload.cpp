// E12 — overload protection: deadlines, shedding, backpressure, brownout.
//
// Claim (service/scheduler.hpp, DESIGN.md decision 17): with a per-tenant
// SloPolicy armed, the multi-tenant service survives any offered-load
// multiple of its saturation rate while (a) every admitted-and-dispatched
// query's latency p99 stays inside the tenant's target, (b) goodput holds
// near the saturation rate instead of collapsing under queue growth, and
// (c) nothing is silently lost: per tenant,
//
//     offered == admitted + rejected          (backpressure is loud)
//     admitted == completed + failed + shed   (shed/failed are reported)
//
// Both identities are checked in-binary per sweep point ("VIOLATION" on
// stdout fails the eye; the pinned tables fail the gate).
//
// Sweep: offered-load multiplier {1x .. 8x} saturation x shed policy
// {none, deadline} x all four engine kinds, two tenants, the same
// open-loop Poisson-burst generator as E10 (arrivals ride the virtual
// clock and are never throttled by completions). The contrast the tables
// show:
//
//   * shed=none: at 1x, latency is a small multiple of one batch; past
//     saturation the backlog — and so p99 — grows with the load multiple
//     (there is no finite p99 target an unprotected tenant can hold).
//   * shed=deadline: dispatched queue wait is bounded by deadline_steps at
//     pop time (expired queries are a front prefix, shed before any engine
//     work), so admitted p99 <= deadline + one batch at EVERY load, while
//     backpressure (max_queue) bounds the queue and goodput stays at the
//     service rate — the "goodput holds" check pins
//     goodput(8x) >= 0.5 * goodput(1x).
//
// Two showcase tables follow the sweep: brownout (an over-target flooder
// loses DRR quantum while an in-target tenant's p99 stays inside policy)
// and the per-engine circuit breaker (trip -> fail-fast -> half-open probe
// -> recovery, with the service.breaker.* counters). Everything runs on
// the virtual step clock, so every number here is a deterministic function
// of the submit/pump sequence — safe to pin in the bench-gate baseline.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "mesh/fault.hpp"
#include "multisearch/query.hpp"
#include "service/breaker.hpp"
#include "service/engine.hpp"
#include "service/scheduler.hpp"
#include "service/tenant.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace meshsearch;
using namespace meshsearch::msearch;
using namespace meshsearch::service;
using ds::KaryTree;
using ds::TreeMode;

namespace {

/// A burst-stream factory: `make(count, seed)` returns `count` queries for
/// the engine's structure, deterministically derived from `seed`.
using StreamFn =
    std::function<std::vector<Query>(std::size_t, std::uint64_t)>;

struct EngineCase {
  EngineKey key;
  Engine* engine = nullptr;
  StreamFn make;
  double steps_per_batch = 0;  ///< calibrated: one full-capacity warm batch
};

struct ArrivalEvent {
  double at_steps = 0;
  std::size_t tenant = 0;
};

struct PointResult {
  double load = 0;
  ShedMode mode = ShedMode::kNone;
  std::int64_t offered = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;   ///< backpressure at submit (max_queue)
  std::int64_t shed = 0;       ///< deadline-expired, resolved before dispatch
  std::int64_t completed = 0;
  double p99 = 0;         ///< admitted latency, simulated steps
  double p99_target = 0;  ///< 0 = no target (shed=none rows)
  double goodput = 0;     ///< completed queries per 1000 steps
};

/// Steps one full-capacity batch charges on this warm engine — the unit
/// deadlines and the load multiplier are expressed against.
double calibrate_batch_steps(EngineCase& ec) {
  ServiceScheduler sched;
  auto& t = sched.add_tenant(
      "calibrate", *ec.engine,
      TenantQuota{.max_outstanding = ec.engine->capacity()});
  t.submit(ec.make(ec.engine->capacity(), /*seed=*/9));
  sched.run_until_idle();
  return sched.now_steps();
}

/// One sweep point: two tenants, Poisson bursts of capacity/2 queries at
/// aggregate offered rate = `load` x the engine's service rate. With
/// mode=kDeadline both tenants run under the same overload policy:
/// deadline 6 batches, p99 target = deadline + 2 batches of dispatch
/// margin, backpressure at 6 full batches of queue.
PointResult run_point(EngineCase& ec, double load, ShedMode mode,
                      std::size_t bursts, std::uint64_t seed) {
  const std::size_t tenants = 2;
  const std::size_t cap = ec.engine->capacity();
  const std::size_t burst = std::max<std::size_t>(1, cap / 2);
  const double mean_gap = static_cast<double>(tenants) *
                          static_cast<double>(burst) * ec.steps_per_batch /
                          (static_cast<double>(cap) * load);

  std::vector<ArrivalEvent> events;
  for (std::size_t t = 0; t < tenants; ++t) {
    util::Rng rng(seed * 131 + t);
    double at = 0;
    for (std::size_t b = 0; b < bursts; ++b) {
      at += -std::log(1.0 - rng.uniform_real()) * mean_gap;
      events.push_back({at, t});
    }
  }
  std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
    if (a.at_steps != b.at_steps) return a.at_steps < b.at_steps;
    return a.tenant < b.tenant;
  });

  SloPolicy slo;
  if (mode == ShedMode::kDeadline) {
    slo.deadline_steps = 6 * ec.steps_per_batch;
    slo.p99_target_steps = slo.deadline_steps + 2 * ec.steps_per_batch;
    slo.max_queue = 12 * burst;
    slo.shed_mode = ShedMode::kDeadline;
  }

  ServiceScheduler sched;  // DRR, the policy brownout/fairness assume
  std::vector<TenantSession*> sessions;
  for (std::size_t t = 0; t < tenants; ++t)
    sessions.push_back(&sched.add_tenant(
        "tenant" + std::to_string(t), *ec.engine,
        TenantQuota{.max_outstanding = bursts * burst + cap}, slo));

  std::uint64_t qseed = seed * 977;
  for (const auto& ev : events) {
    while (!sched.idle() && sched.now_steps() < ev.at_steps) sched.pump();
    if (sched.now_steps() < ev.at_steps) sched.advance_clock_to(ev.at_steps);
    auto qs = ec.make(burst, ++qseed);
    try {
      sessions[ev.tenant]->submit(std::move(qs));
    } catch (const BackpressureError&) {
      // Loud, all-or-nothing, and counted in the tenant's report — the
      // open loop drops the burst, exactly what a backing-off client does.
    }
  }
  sched.run_until_idle();

  PointResult pt;
  pt.load = load;
  pt.mode = mode;
  pt.p99_target = slo.p99_target_steps;
  util::LogHistogram latency;
  const std::int64_t offered_per_tenant =
      static_cast<std::int64_t>(bursts * burst);
  for (const auto& rep : sched.reports()) {
    latency.merge(rep.latency_steps);
    pt.offered += offered_per_tenant;
    pt.admitted += static_cast<std::int64_t>(rep.submitted);
    pt.rejected += static_cast<std::int64_t>(rep.rejected_queries);
    pt.shed += static_cast<std::int64_t>(rep.shed);
    pt.completed += static_cast<std::int64_t>(rep.completed);
    // Conservation, per tenant: backpressure rejections and sheds are
    // reported, never silent.
    if (static_cast<std::int64_t>(rep.submitted + rep.rejected_queries) !=
        offered_per_tenant)
      std::cout << "VIOLATION: " << rep.tenant
                << " offered != admitted + rejected at load " << load << "\n";
    if (rep.completed + rep.failed_queries + rep.shed != rep.submitted)
      std::cout << "VIOLATION: " << rep.tenant
                << " admitted != completed + failed + shed at load " << load
                << "\n";
    if (mode == ShedMode::kNone &&
        (rep.rejected_queries != 0 || rep.shed != 0))
      std::cout << "VIOLATION: unprotected tenant " << rep.tenant
                << " rejected or shed queries at load " << load << "\n";
  }
  pt.p99 = latency.p99();
  pt.goodput = 1000.0 * static_cast<double>(pt.completed) /
               std::max(1.0, sched.now_steps());
  // The SLO gate: with deadline shedding armed, dispatched queue wait is
  // bounded at pop time, so admitted p99 must sit inside the target at ANY
  // overload multiple.
  if (mode == ShedMode::kDeadline && pt.completed > 0 &&
      pt.p99 > pt.p99_target)
    std::cout << "VIOLATION: admitted p99 " << pt.p99 << " over target "
              << pt.p99_target << " at load " << load << "\n";
  return pt;
}

void report(const EngineCase& ec, const std::vector<PointResult>& pts) {
  const std::string name = engine_key_name(ec.key);
  util::Table t({"load", "shed", "offered", "admitted", "rejected",
                 "shed q", "completed", "lat p99", "p99 target", "q/kstep"});
  for (const auto& pt : pts)
    t.add_row({pt.load, std::string(shed_mode_name(pt.mode)), pt.offered,
               pt.admitted, pt.rejected, pt.shed, pt.completed, pt.p99,
               pt.p99_target, pt.goodput});
  bench::section("E12: " + name + " (steps/batch = " +
                 std::to_string(ec.steps_per_batch) + ")");
  std::string csv = "e12_" + name;
  for (auto& c : csv)
    if (c == '/') c = '_';
  bench::emit(t, csv);

  // Goodput holds under overload: the most-loaded deadline point must keep
  // at least half the least-loaded deadline point's goodput (in fact it
  // stays at the saturation rate; 0.5 absorbs drain-phase edge effects).
  const PointResult* lo = nullptr;
  const PointResult* hi = nullptr;
  for (const auto& pt : pts) {
    if (pt.mode != ShedMode::kDeadline) continue;
    if (lo == nullptr || pt.load < lo->load) lo = &pt;
    if (hi == nullptr || pt.load > hi->load) hi = &pt;
  }
  if (lo != nullptr && hi != nullptr && hi->goodput < 0.5 * lo->goodput)
    std::cout << "VIOLATION: " << name << " goodput collapsed under overload ("
              << hi->goodput << " at " << hi->load << "x vs " << lo->goodput
              << " at " << lo->load << "x)\n";
}

/// Brownout showcase: a flooding tenant (p99 target it can never meet) and
/// a light in-target tenant share one engine past the backlog watermark.
/// The flooder loses quantum and sheds; the light tenant's admitted p99
/// stays inside ITS policy. Same shape as the Overload.Brownout test, at
/// bench scale and pinned in the baseline.
void brownout_showcase(bool smoke) {
  KaryTree tree(ds::iota_keys(500), 3, TreeMode::kDirected);
  const auto shape = tree.graph().shape_for(tree.graph().vertex_count());
  const std::size_t cap = shape.size();
  const mesh::CostModel m;
  auto engine = make_partitioned_engine(
      EngineKind::kAlg2Alpha, tree.graph(), tree.alpha_splitting(),
      tree.alpha_splitting(), tree.rank_count(), m, shape);
  engine->set_dataset("books");
  const StreamFn make = [](std::size_t mq, std::uint64_t seed) {
    util::Rng rng(seed);
    return ds::uniform_key_queries(mq, 520, rng);
  };
  EngineCase scratch;
  scratch.key = {"books", EngineKind::kAlg2Alpha};
  scratch.engine = engine.get();
  scratch.make = make;
  const double spb = calibrate_batch_steps(scratch);

  ServiceConfig cfg;
  cfg.brownout.watermark_queries = cap;
  cfg.brownout.quantum_scale = 0.25;
  ServiceScheduler svc(cfg);
  TenantQuota quota;
  quota.max_outstanding = 1u << 20;
  SloPolicy flood_slo;
  flood_slo.deadline_steps = 4 * spb;
  flood_slo.p99_target_steps = 1e-3;  // over target after its first batch
  flood_slo.shed_mode = ShedMode::kDeadline;
  SloPolicy light_slo;
  light_slo.p99_target_steps = 10 * spb;
  TenantSession& flood = svc.add_tenant("flood", *engine, quota, flood_slo);
  TenantSession& light = svc.add_tenant("light", *engine, quota, light_slo);

  const std::uint64_t rounds = smoke ? 10 : 24;
  for (std::uint64_t i = 0; i < rounds; ++i) {
    flood.submit(make(4 * cap, 100 + i));
    light.submit(make(cap / 8, 200 + i));
    svc.pump();
  }
  svc.run_until_idle();

  util::Table t({"tenant", "submitted", "completed", "shed", "deprio rounds",
                 "lat p99", "p99 target"});
  for (const auto& rep : svc.reports()) {
    const double target = svc.tenant(rep.tenant).slo().p99_target_steps;
    t.add_row({rep.tenant, static_cast<std::int64_t>(rep.submitted),
               static_cast<std::int64_t>(rep.completed),
               static_cast<std::int64_t>(rep.shed),
               static_cast<std::int64_t>(rep.brownout_deprioritized),
               rep.latency_steps.p99(), target});
  }
  bench::section("E12: brownout (" + std::to_string(svc.brownout_rounds()) +
                 "/" + std::to_string(svc.rounds()) + " rounds browned out)");
  bench::emit(t, "e12_brownout");

  const TenantReport lrep = light.report();
  if (lrep.latency_steps.p99() > light_slo.p99_target_steps)
    std::cout << "VIOLATION: brownout failed to protect the in-target "
                 "tenant's p99\n";
  if (lrep.brownout_deprioritized != 0)
    std::cout << "VIOLATION: brownout deprioritized a tenant inside its "
                 "target\n";
  const TenantReport frep = flood.report();
  if (frep.brownout_deprioritized == 0 || svc.brownout_rounds() == 0)
    std::cout << "VIOLATION: brownout never engaged against the flooder\n";
}

/// Circuit-breaker showcase: a faulting tenant trips the shared engine's
/// breaker (threshold 1); the co-resident tenant's queries fail fast with
/// zero charge until the engine heals and the half-open probe recovers.
/// The table is the service.breaker.* counter family.
void breaker_showcase() {
  KaryTree tree(ds::iota_keys(500), 3, TreeMode::kDirected);
  const auto shape = tree.graph().shape_for(tree.graph().vertex_count());
  const std::size_t cap = shape.size();
  const mesh::CostModel m;
  auto engine = make_partitioned_engine(
      EngineKind::kAlg2Alpha, tree.graph(), tree.alpha_splitting(),
      tree.alpha_splitting(), tree.rank_count(), m, shape);
  engine->set_dataset("books");
  engine->breaker().configure(BreakerPolicy{/*failure_threshold=*/1});
  const StreamFn make = [](std::size_t mq, std::uint64_t seed) {
    util::Rng rng(seed);
    return ds::uniform_key_queries(mq, 520, rng);
  };

  ServiceScheduler svc;
  TenantQuota quota;
  quota.max_outstanding = 16 * cap;
  TenantSession& sick = svc.add_tenant("sick", *engine, quota);
  TenantSession& bystander = svc.add_tenant("bystander", *engine, quota);

  // Every one of sick's attempts faults, with no retry or re-plan budget:
  // the first dispatch trips the breaker, and the bystander's slices in the
  // same round fail fast.
  mesh::FaultConfig fcfg;
  fcfg.seed = 17;
  fcfg.p_phase = 1.0;
  fcfg.max_retries = 0;
  fcfg.max_replans = 0;
  mesh::FaultPlan plan(fcfg);
  sick.set_fault(&plan);
  sick.submit(make(cap / 2, 41));
  bystander.submit(make(cap / 2, 42));
  svc.pump();

  // The engine heals; the next round's first dispatch is the probe.
  sick.set_fault(nullptr);
  sick.submit(make(cap / 2, 43));
  bystander.submit(make(cap / 2, 44));
  svc.run_until_idle();

  const auto& c = engine->breaker().counters();
  util::Table t({"counter", "value"});
  t.add_row({std::string("trips"), static_cast<std::int64_t>(c.trips)});
  t.add_row({std::string("probes"), static_cast<std::int64_t>(c.probes)});
  t.add_row({std::string("recoveries"),
             static_cast<std::int64_t>(c.recoveries)});
  t.add_row({std::string("fail_fast_batches"),
             static_cast<std::int64_t>(c.fail_fast_batches)});
  t.add_row({std::string("fail_fast_queries"),
             static_cast<std::int64_t>(c.fail_fast_queries)});
  bench::section("E12: circuit breaker (books/alg2-alpha, threshold 1)");
  bench::emit(t, "e12_breaker");

  if (c.trips == 0 || c.recoveries == 0)
    std::cout << "VIOLATION: breaker never tripped or never recovered\n";
  if (engine->breaker().state() != BreakerState::kClosed)
    std::cout << "VIOLATION: breaker not closed after the engine healed\n";
  const TenantReport brep = bystander.report();
  if (brep.failed_fast == 0 || brep.completed == 0)
    std::cout << "VIOLATION: bystander missing fail-fast or recovery "
                 "completions\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport breport("e12_overload", argc, argv);
  // --smoke: smaller structures, fewer bursts, endpoint loads only — still
  // both shed policies, all four engines, and both showcases.
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  if (smoke) breport.set_config("smoke", "1");
  const std::size_t dag_n = smoke ? (1 << 10) : (1 << 12);
  const std::size_t tree2_n = smoke ? (1 << 8) : (1 << 10);
  const std::size_t tree3_n = smoke ? (1 << 8) : (1 << 9);
  const std::size_t bursts = smoke ? 16 : 32;
  const std::vector<double> loads = smoke
                                        ? std::vector<double>{1.0, 8.0}
                                        : std::vector<double>{1.0, 2.0, 4.0,
                                                              8.0};
  breport.set_config("bursts", std::to_string(bursts));

  // One registry of warm engines for the whole sweep (setup paid once per
  // structure) — the same four cases as E10.
  util::Rng rng(41);
  const auto g = ds::build_hierarchical_dag(dag_n, 2.0, 3, rng);
  const HierarchicalDag dag(g, 2.0);
  const auto shape = g.shape_for(g.vertex_count());
  const mesh::CostModel m;
  KaryTree tree2(ds::iota_keys(tree2_n), 3, TreeMode::kDirected);
  const auto shape2 = tree2.graph().shape_for(tree2.graph().vertex_count());
  KaryTree tree3(ds::iota_keys(tree3_n), 2, TreeMode::kUndirected);
  const auto shape3 = tree3.graph().shape_for(tree3.graph().vertex_count());
  const auto [s1, s2] = tree3.alpha_beta_splittings();

  EngineRegistry registry;
  registry.add({"hier", EngineKind::kAlg1Paper},
               make_hierarchical_engine(dag, PlanKind::kPaper, ds::HashWalk{0},
                                        m, shape));
  registry.add({"hier", EngineKind::kAlg1Geometric},
               make_hierarchical_engine(dag, PlanKind::kGeometric,
                                        ds::HashWalk{0}, m, shape));
  registry.add({"tree2", EngineKind::kAlg2Alpha},
               make_partitioned_engine(EngineKind::kAlg2Alpha, tree2.graph(),
                                       tree2.alpha_splitting(),
                                       tree2.alpha_splitting(),
                                       tree2.rank_count(), m, shape2));
  registry.add({"tree3", EngineKind::kAlg3AlphaBeta},
               make_partitioned_engine(EngineKind::kAlg3AlphaBeta,
                                       tree3.graph(), s1, s2,
                                       tree3.euler_scan(), m, shape3));

  const StreamFn alg1_stream = [](std::size_t mq, std::uint64_t seed) {
    auto qs = make_queries(mq);
    util::Rng qrng(seed);
    for (auto& q : qs)
      q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));
    return qs;
  };
  const StreamFn alg2_stream = [tree2_n](std::size_t mq, std::uint64_t seed) {
    util::Rng qrng(seed);
    return ds::uniform_key_queries(mq, tree2_n + 20, qrng);
  };
  const StreamFn alg3_stream = [tree3_n](std::size_t mq, std::uint64_t seed) {
    auto qs = make_queries(mq);
    util::Rng qrng(seed);
    for (auto& q : qs) {
      const auto a =
          qrng.uniform_range(-3, static_cast<std::int64_t>(tree3_n) + 3);
      q.key[0] = a;
      q.key[1] = a + qrng.uniform_range(0, 30);
    }
    return qs;
  };

  const std::vector<std::pair<EngineKey, StreamFn>> case_specs = {
      {{"hier", EngineKind::kAlg1Paper}, alg1_stream},
      {{"hier", EngineKind::kAlg1Geometric}, alg1_stream},
      {{"tree2", EngineKind::kAlg2Alpha}, alg2_stream},
      {{"tree3", EngineKind::kAlg3AlphaBeta}, alg3_stream},
  };
  std::vector<EngineCase> cases;
  for (const auto& [key, fn] : case_specs) {
    EngineCase ec;
    ec.key = key;
    ec.engine = &registry.at(key);
    ec.make = fn;
    cases.push_back(std::move(ec));
  }

  std::uint64_t point_seed = 300;
  for (auto& ec : cases) {
    ec.steps_per_batch = calibrate_batch_steps(ec);
    std::vector<PointResult> pts;
    for (const double load : loads)
      for (const auto mode : {ShedMode::kNone, ShedMode::kDeadline}) {
        const auto wall = bench::time_point("e12.sweep_point");
        pts.push_back(run_point(ec, load, mode, bursts, ++point_seed));
      }
    report(ec, pts);
  }

  brownout_showcase(smoke);
  breaker_showcase();
  return 0;
}
