// Quickstart: batched predecessor searches on a distributed k-ary search
// tree, solved three ways — sequentially (the oracle), with the synchronous
// multistep baseline, and with the paper's Algorithm 2 — and a comparison
// of their simulated mesh times.
//
//   $ ./example_quickstart [num_keys] [num_queries]
#include <cstdlib>
#include <iostream>

#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "multisearch/partitioned.hpp"
#include "multisearch/query.hpp"
#include "multisearch/sequential.hpp"
#include "multisearch/stream.hpp"
#include "multisearch/synchronous.hpp"
#include "trace/trace.hpp"

#include "example_main.hpp"

using namespace meshsearch;
using namespace meshsearch::msearch;

int run(int argc, char** argv) {
  const std::size_t nkeys = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                     : (std::size_t{1} << 16);
  const std::size_t nqueries = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                        : nkeys;

  // 1. Build the search structure: a balanced 4-ary search tree over
  //    integer keys, edges directed root -> leaves (paper Figure 2).
  ds::KaryTree tree(ds::iota_keys(nkeys), /*k=*/4, ds::TreeMode::kDirected);
  std::cout << "tree: " << tree.graph().vertex_count() << " nodes, height "
            << tree.height() << ", fanout " << tree.fanout() << "\n";

  // 2. Generate a batch of queries: one search key per processor.
  util::Rng rng(2024);
  auto queries = ds::uniform_key_queries(nqueries, nkeys + nkeys / 4, rng);

  // 3. The mesh: side^2 >= max(|V|, m) processors.
  const auto shape = tree.graph().shape_for(queries.size());
  std::cout << "mesh: " << shape.side() << " x " << shape.side() << " = "
            << shape.size() << " processors\n";

  // 4. Run. The search program is the successor function f of paper §2:
  //    compare the key against the node's separators, pick a child.
  const auto prog = tree.predecessor_search();
  const mesh::CostModel model;

  auto q_seq = queries;
  const auto seq = sequential_multisearch(tree.graph(), prog, q_seq);

  auto q_sync = queries;
  reset_queries(q_sync);
  const auto sync =
      synchronous_multisearch(tree.graph(), prog, q_sync, model, shape);

  auto q_alg = queries;
  const auto alg = multisearch_alpha(tree.graph(), tree.alpha_splitting(),
                                     prog, q_alg, model, shape);

  // 5. All three agree, and the multisearch wins on simulated mesh time.
  const auto mismatch = diff_outcomes(outcomes(q_seq), outcomes(q_alg));
  const auto mismatch2 = diff_outcomes(outcomes(q_seq), outcomes(q_sync));
  std::cout << "\nresults agree: "
            << (mismatch.empty() && mismatch2.empty() ? "yes" : "NO") << "\n";
  std::cout << "sequential (1 processor) work:   " << seq.cost.steps
            << " steps\n";
  std::cout << "synchronous multistep baseline:  " << sync.cost.steps
            << " steps (" << sync.multisteps << " multisteps)\n";
  std::cout << "Algorithm 2 (Theorem 5):         " << alg.cost.steps
            << " steps (" << alg.log_phases << " log-phases)\n";
  std::cout << "speedup vs 1 processor: " << seq.cost.steps / alg.cost.steps
            << "x, vs synchronous: " << sync.cost.steps / alg.cost.steps
            << "x\n";

  // A couple of example answers.
  std::cout << "\nsample answers (key -> predecessor):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, q_alg.size()); ++i)
    std::cout << "  " << q_alg[i].key[0] << " -> " << q_alg[i].acc0 << "\n";

  // 6. Streaming: pay the Algorithm 2 setup once, then serve a longer query
  //    stream in mesh-capacity batches. The recorder charges every
  //    primitive and collects the per-batch latency/queue-wait histograms;
  //    run with MESHSEARCH_STATS=1 to get the observability summary printed
  //    on exit (see example_main.hpp).
  trace::TraceRecorder rec("alg2-alpha");
  mesh::CostModel traced_model;
  traced_model.trace = &rec;
  PreparedSearch engine(EngineKind::kAlg2Alpha, tree.graph(),
                        tree.alpha_splitting(), tree.alpha_splitting(),
                        tree.predecessor_search(), traced_model, shape);
  auto stream =
      ds::uniform_key_queries(4 * engine.capacity(), nkeys + nkeys / 4, rng);
  StreamScheduler sched(engine, BatchPolicy{});
  auto sres = sched.run(stream);
  record_stream_metrics(&rec, sres);
  std::cout << "\nstreaming " << sres.queries << " queries in "
            << sres.batches.size() << " warm batches: "
            << sres.amortized_steps_per_query()
            << " amortized steps/query (setup fraction "
            << sres.setup_fraction() << ")\n";
  const auto& lat = sres.slo.batch_latency_us;
  if (!lat.empty())
    std::cout << "batch latency p50 " << lat.p50() << " us, p95 " << lat.p95()
              << " us, max " << lat.max() << " us; degraded "
              << sres.slo.degraded_batches << ", replans " << sres.slo.replans
              << ", failed queries " << sres.slo.failed_queries << "\n";

  return mismatch.empty() && mismatch2.empty() ? 0 : 1;
}

MESHSEARCH_EXAMPLE_MAIN(run)
