// Multiple interval intersection search (paper §6): a batch of stabbing
// queries on an interval tree whose secondary lists are walkable chains,
// answered with Algorithm 3 (alpha-beta-partitionable undirected
// multisearch), plus the counting reduction via two rank trees.
//
//   $ ./example_interval_stabbing [num_intervals]
#include <cstdlib>
#include <iostream>

#include "datastruct/interval_tree.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "multisearch/partitioned.hpp"
#include "multisearch/query.hpp"

#include "example_main.hpp"

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::Interval;

int run(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : std::size_t{8192};
  util::Rng rng(99);
  std::vector<Interval> ivs(n);
  const auto span = static_cast<std::int64_t>(4 * n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t lo = rng.uniform_range(0, span);
    ivs[i] = Interval{lo, lo + rng.uniform_range(0, 200),
                      static_cast<std::int32_t>(i)};
  }

  // Reporting flavour: stabbing queries walk the interval tree's chains.
  ds::IntervalTree tree(ivs);
  std::cout << "interval tree: " << tree.tree_node_count()
            << " primary nodes + " << tree.chain_node_count()
            << " chain nodes over " << n << " intervals\n";
  auto qs = make_queries(n);
  for (auto& q : qs) q.key[0] = rng.uniform_range(0, span);
  const auto [s1, s2] = tree.graph().vertex_count() > 0
                            ? tree.alpha_beta_splittings()
                            : std::pair<Splitting, Splitting>{};
  const mesh::CostModel model;
  const auto shape = tree.graph().shape_for(qs.size());
  const auto res = multisearch_alpha_beta(tree.graph(), s1, s2,
                                          tree.stabbing_program(), qs, model,
                                          shape);
  std::size_t checked = 0, total_hits = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    const auto& q = qs[rng.uniform(qs.size())];
    const auto [cnt, sum] = ds::IntervalTree::stab_oracle(ivs, q.key[0]);
    checked += (q.acc0 == cnt && q.acc1 == sum);
  }
  for (const auto& q : qs) total_hits += static_cast<std::size_t>(q.acc0);
  std::cout << qs.size() << " stabbing queries reported " << total_hits
            << " intersections in " << res.cost.steps
            << " simulated steps over " << res.log_phases
            << " log-phases; oracle spot-checks passed: " << checked
            << "/64\n";

  // Counting flavour: |{[l,r] meets [a,b]}| = n - rank_r(a-1) - (n - rank_l(b)).
  auto endpoint_tree = [&](bool left) {
    std::vector<std::int64_t> pts;
    for (const auto& iv : ivs) pts.push_back(left ? iv.lo : iv.hi);
    std::sort(pts.begin(), pts.end());
    std::vector<ds::WeightedKey> keys;
    for (const auto p : pts) {
      if (!keys.empty() && keys.back().key == p)
        ++keys.back().weight;
      else
        keys.push_back({p, 1});
    }
    return ds::KaryTree(keys, 4, ds::TreeMode::kDirected);
  };
  const auto rtree = endpoint_tree(false);
  const auto ltree = endpoint_tree(true);
  auto qa = make_queries(n), qb = make_queries(n);
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t a = rng.uniform_range(0, span);
    const std::int64_t b = a + rng.uniform_range(0, 400);
    ranges[i] = {a, b};
    qa[i].key[0] = a - 1;
    qb[i].key[0] = b;
  }
  const auto ra = multisearch_alpha(rtree.graph(), rtree.alpha_splitting(),
                                    rtree.rank_count(), qa, model,
                                    rtree.graph().shape_for(n));
  const auto rb = multisearch_alpha(ltree.graph(), ltree.alpha_splitting(),
                                    ltree.rank_count(), qb, model,
                                    ltree.graph().shape_for(n));
  std::size_t ok = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    const std::size_t j = rng.uniform(n);
    const std::int64_t got = static_cast<std::int64_t>(n) - qa[j].acc0 -
                             (static_cast<std::int64_t>(n) - qb[j].acc0);
    ok += got == ds::intersect_count_oracle(ivs, ranges[j].first,
                                            ranges[j].second);
  }
  std::cout << n << " interval-intersection counting queries in "
            << ra.cost.steps + rb.cost.steps
            << " simulated steps (two Algorithm-2 runs); oracle spot-checks "
               "passed: "
            << ok << "/64\n";
  return (checked == 64 && ok == 64) ? 0 : 1;
}

MESHSEARCH_EXAMPLE_MAIN(run)
