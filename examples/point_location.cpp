// Multiple planar point location (paper §5): build a Kirkpatrick
// subdivision hierarchy over a random point set, then answer a batch of
// point-location queries with Algorithm 1 (Theorem 2) and verify every
// answer geometrically.
//
//   $ ./example_point_location [num_points]
#include <cstdlib>
#include <iostream>

#include "geometry/hull2d.hpp"
#include "geometry/kirkpatrick.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/query.hpp"

#include "example_main.hpp"

using namespace meshsearch;
using namespace meshsearch::geom;

int run(int argc, char** argv) {
  const std::size_t npts = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                    : std::size_t{4096};
  util::Rng rng(7);
  const Scalar radius = 1 << 17;
  auto pts = random_points_in_disk(npts, radius - 8, rng);
  std::sort(pts.begin(), pts.end(), [](const Point2& a, const Point2& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());

  Kirkpatrick kp(pts, radius);
  std::cout << "Kirkpatrick hierarchy over " << pts.size() << " points: "
            << kp.hierarchy_levels() << " levels, "
            << kp.finest_triangle_count() << " finest triangles, DAG of "
            << kp.dag().vertex_count() << " slots (level work "
            << kp.level_work() << ", mu " << kp.mu() << ")\n";

  // One query per processor.
  auto qs = msearch::make_queries(kp.dag().vertex_count());
  for (auto& q : qs) {
    q.key[0] = rng.uniform_range(-radius / 2, radius / 2);
    q.key[1] = rng.uniform_range(-radius / 2, radius / 2);
  }
  const auto dag = kp.hierarchical_dag();
  const mesh::CostModel model;
  const auto shape = kp.dag().shape_for(qs.size());
  // The geometric band plan (see multisearch/hierarchical.hpp): the paper's
  // log* bands only engage for huge heights at this DAG's growth ratio.
  const auto res = msearch::hierarchical_multisearch(
      dag, kp.locate_program(), qs, model, shape,
      msearch::PlanKind::kGeometric);

  std::size_t verified = 0;
  for (const auto& q : qs) verified += kp.answer_contains_point(q);
  std::cout << qs.size() << " point-location queries in " << res.cost.steps
            << " simulated mesh steps ("
            << res.cost.steps / std::sqrt(double(shape.size()))
            << " * sqrt(n)); " << verified << "/" << qs.size()
            << " answers verified geometrically\n";

  std::cout << "band breakdown (Algorithm 1):\n";
  for (const auto& b : res.bands)
    std::cout << "  levels " << b.lo << ".." << b.hi << ": setup "
              << b.setup_steps << ", solve " << b.solve_steps << " steps\n";
  std::cout << "  B*: " << res.bstar_levels << " levels, " << res.bstar_steps
            << " steps\n";
  return verified == qs.size() ? 0 : 1;
}

MESHSEARCH_EXAMPLE_MAIN(run)
