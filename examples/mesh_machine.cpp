// A tour of the simulated mesh-connected computer itself: watch the
// physical cycle engine execute the machine model of the paper — shearsort,
// snake prefix scan, greedy routing, and the sort-based concurrent-read
// random access read — and compare measured step counts against the
// counting engine's charged costs.
//
//   $ ./example_mesh_machine [side]
#include <cstdlib>
#include <iostream>

#include "mesh/cycle_ops.hpp"
#include "mesh/grid.hpp"
#include "mesh/ops.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

#include "example_main.hpp"

// GCC 12 fires a spurious -Wmaybe-uninitialized inside std::variant's
// copy-assignment when Table cells are appended in a loop the optimizer
// unrolls; no cell is ever read uninitialized.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

using namespace meshsearch;
using mesh::Grid;
using mesh::MeshShape;

namespace {

void dump_small_grid(const Grid<std::int64_t>& g, const std::string& title) {
  if (g.side() > 8) return;
  std::cout << title << ":\n";
  for (std::uint32_t r = 0; r < g.side(); ++r) {
    for (std::uint32_t c = 0; c < g.side(); ++c)
      std::cout << (c ? " " : "  ") << g.at(r, c);
    std::cout << "\n";
  }
}

}  // namespace

int run(int argc, char** argv) {
  const std::uint32_t side =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 8u;
  const MeshShape shape(side);
  util::Rng rng(4);
  std::vector<std::int64_t> vals(shape.size());
  for (auto& v : vals) v = rng.uniform_range(0, 99);

  std::cout << "mesh-connected computer: " << side << " x " << side << " = "
            << shape.size() << " processors\n"
            << "machine model: per step, O(1) local work + one word to a "
               "grid neighbour\n\n";

  auto g = Grid<std::int64_t>::from_snake(shape, vals);
  dump_small_grid(g, "initial contents (row-major view)");
  const auto sort_steps = g.shearsort();
  dump_small_grid(g, "after shearsort (sorted along the snake)");

  auto g2 = Grid<std::int64_t>::from_snake(shape, g.to_snake());
  const auto scan_steps = g2.snake_scan(std::plus<std::int64_t>{});

  const auto perm = util::random_permutation(shape.size(), rng);
  const std::vector<std::uint32_t> dest(perm.begin(), perm.end());
  auto g3 = Grid<std::int64_t>::from_snake(shape, vals);
  const auto route_steps = g3.route_permutation(dest);

  // Random access read: every processor fetches the record of a random
  // other processor; duplicates are allowed (concurrent read).
  std::vector<std::int64_t> addr(shape.size());
  for (auto& a : addr) a = static_cast<std::int64_t>(rng.uniform(shape.size()));
  const auto rar = mesh::cycle_random_access_read(shape, vals, addr);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < shape.size(); ++i)
    correct += rar.out[i] == vals[static_cast<std::size_t>(addr[i])];

  const mesh::CostModel charged;
  mesh::CostModel phys;
  phys.physical_sort = true;
  const double p = static_cast<double>(shape.size());
  util::Table t({"operation", "measured steps", "charged (optimal sort)",
                 "charged (shearsort)"});
  t.add_row({std::string("shearsort"), static_cast<double>(sort_steps),
             charged.sort(p).steps, phys.sort(p).steps});
  t.add_row({std::string("snake prefix scan"), static_cast<double>(scan_steps),
             charged.scan(p).steps, phys.scan(p).steps});
  t.add_row({std::string("permutation routing"),
             static_cast<double>(route_steps), charged.route(p).steps,
             phys.route(p).steps});
  t.add_row({std::string("random access read"),
             static_cast<double>(rar.steps), charged.rar(p).steps,
             phys.rar(p).steps});
  std::cout << "\n";
  t.print(std::cout);
  std::cout << "\nRAR answers verified: " << correct << "/" << shape.size()
            << "\n";
  return correct == shape.size() ? 0 : 1;
}

MESHSEARCH_EXAMPLE_MAIN(run)
