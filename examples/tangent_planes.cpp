// Multiple tangent plane determination (paper §5, Theorem 8): build a
// Dobkin–Kirkpatrick hierarchy over the convex hull of a 3-d point set and
// answer a batch of directional extreme-vertex queries with Algorithm 1.
// Also demonstrates the 2-d polygon hierarchy answering line-polygon
// intersection tests.
//
//   $ ./example_tangent_planes [num_points]
#include <cstdlib>
#include <iostream>

#include "geometry/dk_hierarchy.hpp"
#include "geometry/dk_polygon.hpp"
#include "geometry/hull2d.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/query.hpp"

#include "example_main.hpp"

using namespace meshsearch;
using namespace meshsearch::geom;

int run(int argc, char** argv) {
  const std::size_t npts = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                    : std::size_t{4096};
  util::Rng rng(3);
  const auto pts = random_points_on_sphere(npts, 1 << 18, rng);
  DKHierarchy3 dk(pts, rng);
  std::cout << "DK hierarchy: " << dk.hull_vertices().size()
            << " hull vertices, " << dk.hierarchy_levels() << " levels, DAG "
            << dk.extreme_dag().dag.vertex_count() << " slots\n";

  auto qs = msearch::make_queries(dk.extreme_dag().dag.vertex_count());
  for (auto& q : qs) {
    do {
      q.key[0] = rng.uniform_range(-1000, 1000);
      q.key[1] = rng.uniform_range(-1000, 1000);
      q.key[2] = rng.uniform_range(-1000, 1000);
    } while (q.key[0] == 0 && q.key[1] == 0 && q.key[2] == 0);
  }
  const auto dag = dk.extreme_dag().hierarchical_dag();
  const mesh::CostModel model;
  const auto shape = dk.extreme_dag().dag.shape_for(qs.size());
  const auto res = msearch::hierarchical_multisearch(
      dag, dk.extreme_program(), qs, model, shape,
      msearch::PlanKind::kGeometric);

  std::size_t verified = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    const auto& q = qs[rng.uniform(qs.size())];
    const Point3 d{q.key[0], q.key[1], q.key[2]};
    verified += q.acc0 == dot3(d, pts[static_cast<std::size_t>(
                                    extreme_point_brute(pts, d))]);
  }
  std::cout << qs.size() << " tangent-plane queries in " << res.cost.steps
            << " simulated steps ("
            << res.cost.steps / std::sqrt(double(shape.size()))
            << " * sqrt(n)); " << verified
            << "/200 supporting-plane values verified\n";
  std::cout << "example: direction (" << qs[0].key[0] << "," << qs[0].key[1]
            << "," << qs[0].key[2] << ") -> tangent plane dot(d,x) = "
            << qs[0].acc0 << " at vertex " << qs[0].result << "\n";

  // 2-d: line-polygon intersection via two extreme queries per line.
  const auto poly = random_convex_polygon(2048, 1 << 18, rng);
  DKPolygon dkp(poly);
  std::vector<DKPolygon::Line> lines(1024);
  for (auto& l : lines) {
    do {
      l.a = rng.uniform_range(-64, 64);
      l.b = rng.uniform_range(-64, 64);
    } while (l.a == 0 && l.b == 0);
    l.c = rng.uniform_range(-(1LL << 24), 1LL << 24);
  }
  auto lq = dkp.make_line_queries(lines);
  const auto pdag = dkp.extreme_dag().hierarchical_dag();
  const auto pshape = dkp.extreme_dag().dag.shape_for(lq.size());
  const auto pres = msearch::hierarchical_multisearch(
      pdag, dkp.extreme_program(), lq, model, pshape,
      msearch::PlanKind::kGeometric);
  const auto hits = DKPolygon::combine_line_answers(lines, lq);
  std::size_t agree = 0, hitc = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    agree += hits[i] == dkp.line_intersects_brute(lines[i]);
    hitc += hits[i];
  }
  std::cout << lines.size() << " line-polygon tests (" << hitc
            << " intersecting) in " << pres.cost.steps
            << " simulated steps; " << agree << "/" << lines.size()
            << " agree with brute force\n";
  return (verified == 200 && agree == lines.size()) ? 0 : 1;
}

MESHSEARCH_EXAMPLE_MAIN(run)
