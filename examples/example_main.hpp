// Shared entry-point wrapper for the examples.
//
// Every example defines `int run(int argc, char** argv)` and closes with
// MESHSEARCH_EXAMPLE_MAIN(run). The wrapper catches the typed error
// taxonomy (util/error.hpp) at the top level and prints the structured
// context — which class of failure, which engine/phase/site, and for
// fault-driven errors the seed and occurrence needed to replay it — then
// exits 1. Demonstrates the intended error-handling contract: user code
// catches meshsearch::Error (or a subclass), not raw std::logic_error.
#pragma once

#include <exception>
#include <iostream>

#include "util/error.hpp"

namespace meshsearch::examples {

inline const char* error_kind(const meshsearch::Error& e) {
  if (dynamic_cast<const meshsearch::InvalidInputError*>(&e) != nullptr)
    return "invalid input";
  if (dynamic_cast<const meshsearch::CapacityError*>(&e) != nullptr)
    return "capacity exceeded";
  if (dynamic_cast<const meshsearch::IntegrityError*>(&e) != nullptr)
    return "integrity violation";
  if (dynamic_cast<const meshsearch::CheckFailedError*>(&e) != nullptr)
    return "internal invariant failure";
  return "error";
}

inline int guarded_main(int (*run)(int, char**), int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const meshsearch::Error& e) {
    const auto& ctx = e.context();
    std::cerr << "error (" << error_kind(e) << "): " << e.message() << "\n";
    if (!ctx.engine.empty()) std::cerr << "  engine:     " << ctx.engine << "\n";
    if (!ctx.phase.empty()) std::cerr << "  phase:      " << ctx.phase << "\n";
    if (!ctx.site.empty()) std::cerr << "  site:       " << ctx.site << "\n";
    if (ctx.band >= 0) std::cerr << "  band:       " << ctx.band << "\n";
    if (ctx.has_seed)
      std::cerr << "  replay:     seed=" << ctx.seed
                << " occurrence=" << ctx.occurrence << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace meshsearch::examples

#define MESHSEARCH_EXAMPLE_MAIN(run_fn)                                   \
  int main(int argc, char** argv) {                                       \
    return ::meshsearch::examples::guarded_main(run_fn, argc, argv);      \
  }
