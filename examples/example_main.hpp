// Shared entry-point wrapper for the examples.
//
// Every example defines `int run(int argc, char** argv)` and closes with
// MESHSEARCH_EXAMPLE_MAIN(run). The wrapper catches the typed error
// taxonomy (util/error.hpp) at the top level and prints the structured
// context — which class of failure, which engine/phase/site, and for
// fault-driven errors the seed and occurrence needed to replay it — then
// exits 1. Demonstrates the intended error-handling contract: user code
// catches meshsearch::Error (or a subclass), not raw std::logic_error.
//
// With MESHSEARCH_STATS=1 the wrapper additionally prints a one-screen
// summary of the process-wide stats registry on exit (top counters, gauges,
// wall-clock histograms, and — when the example ran a stream — the SLO
// line). Every TraceRecorder mirrors its counters/histograms/metrics into
// that registry, so the summary needs no wiring inside the example.
#pragma once

#include <algorithm>
#include <cstdio>
#include <exception>
#include <iostream>

#include "trace/stats.hpp"
#include "util/error.hpp"

namespace meshsearch::examples {

inline const char* error_kind(const meshsearch::Error& e) {
  if (dynamic_cast<const meshsearch::InvalidInputError*>(&e) != nullptr)
    return "invalid input";
  if (dynamic_cast<const meshsearch::CapacityError*>(&e) != nullptr)
    return "capacity exceeded";
  if (dynamic_cast<const meshsearch::IntegrityError*>(&e) != nullptr)
    return "integrity violation";
  if (dynamic_cast<const meshsearch::CheckFailedError*>(&e) != nullptr)
    return "internal invariant failure";
  return "error";
}

/// One-screen dump of the global stats registry (MESHSEARCH_STATS=1): the
/// top counters by value, every wall-clock histogram as a percentile line,
/// and the stream SLO summary when stream gauges were recorded.
inline void print_stats_summary(std::ostream& os) {
  auto& reg = meshsearch::stats::StatsRegistry::global();
  if (!reg.enabled()) return;
  const auto snap = reg.snapshot();
  os << "\n== stats (MESHSEARCH_STATS=1) ==\n";
  if (snap.counters.empty() && snap.gauges.empty() &&
      snap.histograms.empty()) {
    os << "(no instruments recorded — wire a TraceRecorder into the cost "
          "model)\n";
    return;
  }
  auto counters = snap.counters;
  std::sort(counters.begin(), counters.end(),
            [](const auto& a, const auto& b) { return a.value > b.value; });
  const std::size_t top = std::min<std::size_t>(counters.size(), 8);
  for (std::size_t i = 0; i < top; ++i)
    os << "  counter  " << counters[i].name << " = " << counters[i].value
       << "\n";
  if (counters.size() > top)
    os << "  ... and " << counters.size() - top << " more counters\n";
  for (const auto& h : snap.histograms) {
    if (h.hist.empty()) continue;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  wall     %s: n=%zu p50=%.1fus p95=%.1fus max=%.1fus",
                  h.name.c_str(), static_cast<std::size_t>(h.hist.count()),
                  h.hist.p50(), h.hist.p95(), h.hist.max());
    os << line << "\n";
  }
  // The stream SLO line, assembled from the deterministic gauges the stream
  // scheduler records (the latency percentiles are in the histograms above).
  double degraded = -1, replans = -1, failed = -1, batches = -1;
  for (const auto& g : snap.gauges) {
    if (g.name == "stream.degraded_batches") degraded = g.value;
    else if (g.name == "stream.replans") replans = g.value;
    else if (g.name == "stream.failed_queries") failed = g.value;
    else if (g.name == "stream.batches") batches = g.value;
  }
  if (batches >= 0)
    os << "  slo      stream: " << batches << " batches, " << degraded
       << " degraded, " << replans << " replans, " << failed
       << " failed queries\n";
}

inline int guarded_main(int (*run)(int, char**), int argc, char** argv) {
  struct SummaryOnExit {
    ~SummaryOnExit() { print_stats_summary(std::cerr); }
  } summary;
  try {
    return run(argc, argv);
  } catch (const meshsearch::Error& e) {
    const auto& ctx = e.context();
    std::cerr << "error (" << error_kind(e) << "): " << e.message() << "\n";
    if (!ctx.engine.empty()) std::cerr << "  engine:     " << ctx.engine << "\n";
    if (!ctx.phase.empty()) std::cerr << "  phase:      " << ctx.phase << "\n";
    if (!ctx.site.empty()) std::cerr << "  site:       " << ctx.site << "\n";
    if (ctx.band >= 0) std::cerr << "  band:       " << ctx.band << "\n";
    if (ctx.has_seed)
      std::cerr << "  replay:     seed=" << ctx.seed
                << " occurrence=" << ctx.occurrence << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace meshsearch::examples

#define MESHSEARCH_EXAMPLE_MAIN(run_fn)                                   \
  int main(int argc, char** argv) {                                       \
    return ::meshsearch::examples::guarded_main(run_fn, argc, argv);      \
  }
