// Unit tests for the mesh data model and the counting engine: snake-order
// algebra, submesh partitions, the cost model, and the standard mesh
// operations (data correctness + charged costs).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "mesh/cost.hpp"
#include "mesh/ops.hpp"
#include "mesh/snake.hpp"
#include "mesh/submesh.hpp"
#include "util/rng.hpp"

namespace {

using namespace meshsearch;
using mesh::Coord;
using mesh::Cost;
using mesh::CostModel;
using mesh::MeshShape;
using mesh::Partition;

TEST(MeshShape, RejectsNonPowerOfTwo) {
  EXPECT_THROW(MeshShape(3), std::logic_error);
  EXPECT_THROW(MeshShape(0), std::logic_error);
  EXPECT_NO_THROW(MeshShape(8));
}

TEST(MeshShape, ForElementsPicksSmallestFit) {
  EXPECT_EQ(MeshShape::for_elements(1).side(), 1u);
  EXPECT_EQ(MeshShape::for_elements(2).side(), 2u);
  EXPECT_EQ(MeshShape::for_elements(4).side(), 2u);
  EXPECT_EQ(MeshShape::for_elements(5).side(), 4u);
  EXPECT_EQ(MeshShape::for_elements(16).side(), 4u);
  EXPECT_EQ(MeshShape::for_elements(17).side(), 8u);
}

TEST(MeshShape, SnakeCoordRoundTrip) {
  const MeshShape s(8);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const Coord c = s.snake_to_coord(i);
    EXPECT_EQ(s.coord_to_snake(c), i);
  }
}

TEST(MeshShape, SnakeNeighboursAreGridNeighbours) {
  // The defining property of the snake: consecutive indices are adjacent.
  const MeshShape s(16);
  for (std::size_t i = 0; i + 1 < s.size(); ++i)
    EXPECT_EQ(s.distance(i, i + 1), 1u) << "at " << i;
}

TEST(MeshShape, SnakeRowMajorRoundTrip) {
  const MeshShape s(4);
  for (std::size_t i = 0; i < s.size(); ++i)
    EXPECT_EQ(s.rowmajor_to_snake(s.snake_to_rowmajor(i)), i);
  // Spot-check row 1 (reversed): snake index 4 is (1, 3) => row-major 7.
  EXPECT_EQ(s.snake_to_rowmajor(4), 7u);
}

TEST(MeshShape, ManhattanDistance) {
  const MeshShape s(4);
  const auto a = s.coord_to_snake(Coord{0, 0});
  const auto b = s.coord_to_snake(Coord{3, 3});
  EXPECT_EQ(s.distance(a, b), 6u);
  EXPECT_EQ(s.distance(a, a), 0u);
}

TEST(Pow2Helpers, CeilAndLog) {
  EXPECT_EQ(mesh::ceil_pow2(1), 1u);
  EXPECT_EQ(mesh::ceil_pow2(5), 8u);
  EXPECT_EQ(mesh::ceil_pow2(8), 8u);
  EXPECT_EQ(mesh::floor_log2(1), 0u);
  EXPECT_EQ(mesh::floor_log2(9), 3u);
}

// ---------------------------------------------------------------------------
// Partition
// ---------------------------------------------------------------------------

TEST(Partition, BlockLocalRoundTrip) {
  const MeshShape s(16);
  for (std::uint32_t g : {1u, 2u, 4u, 8u}) {
    const Partition part(s, g);
    EXPECT_EQ(part.block_count(), std::size_t{g} * g);
    EXPECT_EQ(part.block_size() * part.block_count(), s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      const auto b = part.block_of(i);
      const auto l = part.local_of(i);
      EXPECT_LT(b, part.block_count());
      EXPECT_LT(l, part.block_size());
      EXPECT_EQ(part.global_of(b, l), i);
    }
  }
}

TEST(Partition, BlockPermutationIsPermutation) {
  const Partition part(MeshShape(8), 4);
  const auto perm = part.block_permutation();
  std::vector<bool> seen(perm.size(), false);
  for (auto v : perm) {
    ASSERT_LT(v, perm.size());
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Partition, LocalIndicesAreSnakeWithinBlock) {
  const MeshShape s(8);
  const Partition part(s, 2);
  // Within any block, local indices 0..blocksize-1 must trace a connected
  // snake: consecutive locals are grid neighbours.
  for (std::uint32_t b = 0; b < part.block_count(); ++b) {
    for (std::size_t l = 0; l + 1 < part.block_size(); ++l) {
      const auto g1 = part.global_of(b, l);
      const auto g2 = part.global_of(b, l + 1);
      EXPECT_EQ(s.distance(g1, g2), 1u);
    }
  }
}

TEST(Partition, RejectsBadBlockCounts) {
  EXPECT_THROW(Partition(MeshShape(8), 3), std::logic_error);
  EXPECT_THROW(Partition(MeshShape(8), 16), std::logic_error);
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

TEST(Cost, Composition) {
  const Cost a{3}, b{5};
  EXPECT_EQ((a + b).steps, 8);
  EXPECT_EQ(mesh::par(a, b).steps, 5);
  EXPECT_EQ(mesh::par({a, b, Cost{4}}).steps, 5);
  mesh::ParAccumulator acc;
  acc.add(a);
  acc.add(b);
  EXPECT_EQ(acc.total().steps, 5);
}

TEST(CostModel, ChargedBounds) {
  const CostModel m;
  EXPECT_DOUBLE_EQ(m.sort(1024).steps, 3.0 * 32);
  EXPECT_DOUBLE_EQ(m.scan(1024).steps, 2.0 * 32);
  EXPECT_DOUBLE_EQ(m.broadcast(1024).steps, 2.0 * 32);
  EXPECT_GT(m.rar(1024).steps, m.sort(1024).steps);
  // Costs grow as sqrt(p).
  EXPECT_NEAR(m.sort(4096).steps / m.sort(1024).steps, 2.0, 1e-12);
}

TEST(CostModel, PhysicalSortChargesLogFactor) {
  CostModel m;
  m.physical_sort = true;
  const double p = 1 << 20;
  EXPECT_NEAR(m.sort(p).steps, std::sqrt(p) * (20 + 1), 1e-6);
}

// ---------------------------------------------------------------------------
// Counting-engine operations
// ---------------------------------------------------------------------------

TEST(Ops, SortSortsAndCharges) {
  util::Rng rng(1);
  std::vector<std::int64_t> data(1000);
  for (auto& x : data) x = rng.uniform_range(-500, 500);
  const CostModel m;
  const Cost c = mesh::ops::sort(data, m, 1024);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  EXPECT_DOUBLE_EQ(c.steps, m.sort(1024).steps);
}

TEST(Ops, SortIsStable) {
  struct KV {
    int k;
    int v;
  };
  std::vector<KV> data{{1, 0}, {0, 1}, {1, 2}, {0, 3}, {1, 4}};
  const CostModel m;
  mesh::ops::sort(data, m, 8, [](const KV& a, const KV& b) { return a.k < b.k; });
  EXPECT_EQ(data[0].v, 1);
  EXPECT_EQ(data[1].v, 3);
  EXPECT_EQ(data[2].v, 0);
  EXPECT_EQ(data[3].v, 2);
  EXPECT_EQ(data[4].v, 4);
}

TEST(Ops, RankMatchesSortPosition) {
  std::vector<std::int64_t> data{5, 1, 4, 1, 3};
  std::vector<std::uint32_t> ranks;
  const CostModel m;
  mesh::ops::rank(data, ranks, m, 8);
  EXPECT_EQ(ranks, (std::vector<std::uint32_t>{4, 0, 3, 1, 2}));
}

TEST(Ops, Scans) {
  const CostModel m;
  std::vector<std::int64_t> inc{1, 2, 3, 4};
  mesh::ops::scan_inclusive(inc, m, 4);
  EXPECT_EQ(inc, (std::vector<std::int64_t>{1, 3, 6, 10}));
  std::vector<std::int64_t> exc{1, 2, 3, 4};
  mesh::ops::scan_exclusive(exc, m, 4);
  EXPECT_EQ(exc, (std::vector<std::int64_t>{0, 1, 3, 6}));
  std::vector<std::int64_t> seg{1, 2, 3, 4};
  mesh::ops::scan_segmented(seg, {1, 0, 1, 0}, m, 4);
  EXPECT_EQ(seg, (std::vector<std::int64_t>{1, 3, 3, 7}));
}

TEST(Ops, ReduceAndBroadcast) {
  const CostModel m;
  std::vector<std::int64_t> data{7, -2, 9};
  std::int64_t total = 0;
  const Cost c = mesh::ops::reduce(data, total, m, 4);
  EXPECT_EQ(total, 14);
  EXPECT_DOUBLE_EQ(c.steps, m.reduce(4).steps);
  EXPECT_DOUBLE_EQ(mesh::ops::broadcast(m, 4).steps, m.broadcast(4).steps);
}

TEST(Ops, RoutePermutes) {
  const CostModel m;
  std::vector<std::int64_t> data{10, 11, 12, 13};
  std::vector<std::uint32_t> dest{2, 0, 3, 1};
  std::vector<std::int64_t> out;
  mesh::ops::route(data, dest, out, 4, m, 4);
  EXPECT_EQ(out, (std::vector<std::int64_t>{11, 13, 10, 12}));
}

TEST(Ops, RouteDetectsCollision) {
  const CostModel m;
  std::vector<std::int64_t> data{1, 2};
  std::vector<std::uint32_t> dest{0, 0};
  std::vector<std::int64_t> out;
  EXPECT_THROW(mesh::ops::route(data, dest, out, 2, m, 4), std::logic_error);
}

TEST(Ops, RandomAccessReadWithDuplicates) {
  const CostModel m;
  const std::vector<std::int64_t> table{100, 200, 300};
  const std::vector<mesh::ops::Addr> addr{2, 0, 2, mesh::ops::kNone, 1};
  std::vector<std::int64_t> out;
  const Cost c = mesh::ops::random_access_read<std::int64_t>(table, addr, out, m, 16);
  EXPECT_EQ(out, (std::vector<std::int64_t>{300, 100, 300, 0, 200}));
  EXPECT_DOUBLE_EQ(c.steps, m.rar(16).steps);
}

TEST(Ops, RandomAccessWriteCombines) {
  const CostModel m;
  std::vector<std::int64_t> table{0, 0, 0};
  const std::vector<mesh::ops::Addr> addr{1, 1, 2, mesh::ops::kNone};
  const std::vector<std::int64_t> vals{5, 7, 9, 100};
  mesh::ops::random_access_write<std::int64_t>(
      addr, vals, table, [](std::int64_t a, std::int64_t b) { return a + b; },
      m, 16);
  EXPECT_EQ(table, (std::vector<std::int64_t>{0, 12, 9}));
}

TEST(Ops, RandomAccessCount) {
  const CostModel m;
  const std::vector<mesh::ops::Addr> addr{0, 2, 2, 2, mesh::ops::kNone};
  std::vector<std::uint32_t> counts;
  mesh::ops::random_access_count(addr, counts, 3, m, 16);
  EXPECT_EQ(counts, (std::vector<std::uint32_t>{1, 0, 3}));
}

TEST(Ops, CompressAndGather) {
  const CostModel m;
  const std::vector<std::int64_t> data{4, -1, 7, -3, 9};
  std::vector<std::int64_t> out;
  mesh::ops::compress(data, [](std::int64_t x) { return x > 0; }, out, m, 8);
  EXPECT_EQ(out, (std::vector<std::int64_t>{4, 7, 9}));
  const std::vector<std::uint32_t> pos{4, 0};
  mesh::ops::gather(data, pos, out, m, 8);
  EXPECT_EQ(out, (std::vector<std::int64_t>{9, 4}));
}

}  // namespace
