// Dynamic updates (ISSUE 9): batched insert/delete on the application
// structures, incremental invalidation of warm engines, and the stale-engine
// hole the feature closes. The contracts pinned here:
//
//   1. apply_updates is validated at the front door (InvalidInputError, the
//      structure untouched) and reports an honest StructureDelta: payload-only
//      dirty sets while the topology holds, topology_changed when it cannot.
//   2. A warm engine whose structure mutated NEVER serves silently: run_batch
//      throws StaleEngineError (an IntegrityError) carrying the dataset name
//      and both generation stamps.
//   3. refresh() heals: incremental (dirty-band re-distribution charged under
//      the `rebuild` primitive) for payload deltas, full re-setup otherwise —
//      and the refreshed warm engine is bit-identical to a cold engine built
//      over the same mutated structure: outcomes, per-batch charges, visits,
//      at 1 and 8 host threads, with the stats registry armed or not.
//   4. The `rebuild` phase rides the standard fault machinery: armed plans
//      retry and back off; an exhausted budget throws FaultExhaustedError and
//      leaves the engine still (safely) stale.
//   5. The service layer carries mixed read/write tenant streams: an update
//      submitted mid-stream applies only after the reads admitted before it,
//      reads after it see the new structure, and the refresh is charged to
//      the submitting tenant on the virtual clock.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "datastruct/interval_tree.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "geometry/kirkpatrick.hpp"
#include "mesh/fault.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/query.hpp"
#include "multisearch/sequential.hpp"
#include "multisearch/stream.hpp"
#include "multisearch/update.hpp"
#include "service/engine.hpp"
#include "service/scheduler.hpp"
#include "service/tenant.hpp"
#include "trace/stats.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"

namespace {

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::Interval;
using ds::IntervalTree;
using ds::KaryTree;
using ds::TreeMode;
using geom::Kirkpatrick;
using geom::Point2;

// ---------------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------------

struct RunRecord {
  std::vector<QueryOutcome> out;
  mesh::Cost cost;
  std::map<trace::PrimitiveKey, trace::PrimitiveStat> counters;
};

/// The determinism harness for update flows: run `f` under a 1-thread pool,
/// an 8-thread pool, and once more (8 threads) with the stats registry armed
/// (what MESHSEARCH_STATS=1 does) — outcomes, charges and attribution must
/// be bit-identical in all three.
template <typename F>
void expect_update_invariant(F f) {
  util::ThreadPool::set_global_threads(1);
  const RunRecord serial = f();
  util::ThreadPool::set_global_threads(8);
  const RunRecord parallel = f();
  auto& registry = stats::StatsRegistry::global();
  const bool stats_were_enabled = registry.enabled();
  registry.set_enabled(true);
  const RunRecord stats_on = f();
  registry.set_enabled(stats_were_enabled);
  util::ThreadPool::set_global_threads(0);
  for (const RunRecord* other : {&parallel, &stats_on}) {
    EXPECT_EQ(diff_outcomes(serial.out, other->out), "");
    EXPECT_EQ(serial.cost, other->cost);  // exact, not approximate
    EXPECT_TRUE(serial.counters == other->counters)
        << "per-primitive attribution diverged";
  }
}

std::vector<Query> rank_queries(std::size_t m, std::int64_t key_hi,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  return ds::uniform_key_queries(m, key_hi, rng);
}

std::vector<Query> stab_queries(std::size_t m, std::int64_t lo,
                                std::int64_t hi, std::uint64_t seed) {
  auto qs = make_queries(m);
  util::Rng rng(seed);
  for (auto& q : qs)
    q.key[0] = rng.uniform_range(lo, hi);
  return qs;
}

// ---------------------------------------------------------------------------
// The rebuild primitive itself.
// ---------------------------------------------------------------------------

TEST(RebuildPrimitive, NamedAndChargedAsSortPlusRoute) {
  EXPECT_STREQ(trace::primitive_name(trace::Primitive::kRebuild), "rebuild");
  trace::TraceRecorder rec("counting");
  mesh::CostModel m;
  m.trace = &rec;
  const double p = 1024;
  const mesh::Cost c = m.rebuild(p, 3.0);
  // rebuild = one sort pass + one route pass over the dirty records.
  const mesh::CostModel quiet;
  EXPECT_DOUBLE_EQ(c.steps,
                   3.0 * (quiet.sort(p).steps + quiet.route(p).steps));
  bool saw = false;
  for (const auto& [key, stat] : rec.counters())
    if (key.prim == trace::Primitive::kRebuild) {
      saw = true;
      EXPECT_EQ(stat.calls, 3u);  // `times` back-to-back executions
    }
  EXPECT_TRUE(saw);
}

// ---------------------------------------------------------------------------
// KaryTree::apply_updates.
// ---------------------------------------------------------------------------

TEST(DynamicKaryTree, PayloadOnlyBatchReportsDirtySetAndStaysCorrect) {
  KaryTree tree(ds::iota_keys(200), 3, TreeMode::kDirected);
  const std::size_t vertices = tree.graph().vertex_count();
  EXPECT_EQ(tree.graph().generation(), 0u);

  // Two inserts (one brand-new key, one weight update in place), two
  // deletes: the merged key set still fits the leaf level, so the update is
  // payload-only.
  const auto delta = tree.apply_updates(
      {ds::WeightedKey{500, 2}, ds::WeightedKey{5, 42}},
      {std::int64_t{7}, std::int64_t{13}});
  EXPECT_FALSE(delta.topology_changed);
  EXPECT_FALSE(delta.dirty_vertices.empty());
  EXPECT_LT(delta.dirty_vertices.size(), vertices);  // incremental, not all
  EXPECT_EQ(delta.generation, 1u);
  EXPECT_EQ(tree.graph().generation(), 1u);
  EXPECT_EQ(tree.graph().vertex_count(), vertices);  // same topology
  EXPECT_EQ(tree.key_set().size(), 199u);            // 200 - 2 + 1 new

  // The updated tree answers exactly like a cold tree built from the same
  // key set.
  KaryTree fresh(tree.key_set(), 3, TreeMode::kDirected);
  auto qa = rank_queries(300, 520, 91);
  auto qb = qa;
  sequential_multisearch(tree.graph(), tree.rank_count(), qa);
  sequential_multisearch(fresh.graph(), fresh.rank_count(), qb);
  EXPECT_EQ(diff_outcomes(outcomes(qa), outcomes(qb)), "");
}

TEST(DynamicKaryTree, OutgrowingTheLeafLevelRebuildsInPlace) {
  KaryTree tree(ds::iota_keys(9), 3, TreeMode::kDirected);  // 9 = full leaves
  std::vector<ds::WeightedKey> ins{ds::WeightedKey{100, 1}};
  const auto delta = tree.apply_updates(ins, {});
  EXPECT_TRUE(delta.topology_changed);
  EXPECT_EQ(delta.generation, 1u);
  EXPECT_EQ(tree.key_set().size(), 10u);
  tree.graph().validate();

  KaryTree fresh(tree.key_set(), 3, TreeMode::kDirected);
  auto qa = rank_queries(100, 120, 92);
  auto qb = qa;
  sequential_multisearch(tree.graph(), tree.rank_count(), qa);
  sequential_multisearch(fresh.graph(), fresh.rank_count(), qb);
  EXPECT_EQ(diff_outcomes(outcomes(qa), outcomes(qb)), "");
}

TEST(DynamicKaryTree, MalformedBatchesRejectedBeforeAnyMutation) {
  KaryTree tree(ds::iota_keys(20), 2, TreeMode::kDirected);
  const auto before = tree.key_set();
  // Duplicate insert keys.
  EXPECT_THROW(tree.apply_updates({ds::WeightedKey{50, 1},
                                   ds::WeightedKey{50, 2}},
                                  {}),
               InvalidInputError);
  // Delete of an absent key.
  EXPECT_THROW(tree.apply_updates({}, {std::int64_t{999}}),
               InvalidInputError);
  // Duplicate delete.
  EXPECT_THROW(tree.apply_updates({}, {std::int64_t{3}, std::int64_t{3}}),
               InvalidInputError);
  // Emptying the tree.
  std::vector<std::int64_t> all;
  for (const auto& wk : before) all.push_back(wk.key);
  EXPECT_THROW(tree.apply_updates({}, all), InvalidInputError);
  // Nothing moved: same keys, same generation.
  EXPECT_EQ(tree.graph().generation(), 0u);
  EXPECT_EQ(tree.key_set().size(), before.size());
}

// ---------------------------------------------------------------------------
// IntervalTree::apply_updates (slack chains).
// ---------------------------------------------------------------------------

std::vector<Interval> demo_intervals() {
  std::vector<Interval> ivs;
  util::Rng rng(7);
  for (std::int32_t i = 0; i < 24; ++i) {
    const std::int64_t lo = rng.uniform_range(0, 900);
    ivs.push_back(Interval{lo, lo + rng.uniform_range(0, 120), i});
  }
  ivs.push_back(Interval{0, 1000, 24});  // wide: anchors the root chain
  return ivs;
}

void expect_stab_matches_oracle(const IntervalTree& t,
                                std::vector<Query> qs) {
  sequential_multisearch(t.graph(), t.stabbing_program(), qs);
  for (const auto& q : qs) {
    const auto [cnt, sum] = IntervalTree::stab_oracle(t.intervals(), q.key[0]);
    EXPECT_EQ(q.acc0, cnt) << "x=" << q.key[0];
    EXPECT_EQ(q.acc1, sum) << "x=" << q.key[0];
  }
}

TEST(DynamicIntervalTree, SlackAbsorbsInsertsAndDeletesPayloadOnly) {
  IntervalTree t(demo_intervals(), /*chain_slack=*/3);
  const std::size_t vertices = t.graph().vertex_count();

  // A root-straddling insert lands in the root chains' spare slots; a
  // delete re-inerts a tail slot. Both are payload rewrites.
  const auto delta = t.apply_updates({Interval{1, 999, 100}},
                                     {std::int32_t{24}});
  EXPECT_FALSE(delta.topology_changed);
  EXPECT_FALSE(delta.dirty_vertices.empty());
  EXPECT_EQ(delta.generation, 1u);
  EXPECT_EQ(t.graph().vertex_count(), vertices);
  EXPECT_EQ(t.interval_count(), 25u);
  t.graph().validate();
  expect_stab_matches_oracle(t, stab_queries(400, -50, 1100, 71));

  // Delete + re-insert with the same id in one batch is legal (the delete
  // frees the id first); emptied chains park and re-open correctly.
  const auto delta2 = t.apply_updates({Interval{2, 998, 100}},
                                      {std::int32_t{100}});
  EXPECT_FALSE(delta2.topology_changed);
  EXPECT_EQ(delta2.generation, 2u);
  expect_stab_matches_oracle(t, stab_queries(400, -50, 1100, 72));
}

TEST(DynamicIntervalTree, ChainOverflowFallsBackToFullRebuild) {
  IntervalTree t(demo_intervals(), /*chain_slack=*/0);  // no spare slots
  const auto delta = t.apply_updates({Interval{1, 999, 100}}, {});
  EXPECT_TRUE(delta.topology_changed);
  EXPECT_EQ(delta.generation, 1u);
  EXPECT_EQ(t.interval_count(), 26u);
  t.graph().validate();
  expect_stab_matches_oracle(t, stab_queries(400, -50, 1100, 73));
}

TEST(DynamicIntervalTree, MalformedBatchesRejectedBeforeAnyMutation) {
  IntervalTree t(demo_intervals(), /*chain_slack=*/2);
  // Inverted insert.
  EXPECT_THROW(t.apply_updates({Interval{10, 5, 200}}, {}),
               InvalidInputError);
  // Insert id already live (and not deleted in the same batch).
  EXPECT_THROW(t.apply_updates({Interval{1, 2, 0}}, {}), InvalidInputError);
  // Duplicate insert ids within the batch.
  EXPECT_THROW(t.apply_updates({Interval{1, 2, 300}, Interval{3, 4, 300}},
                               {}),
               InvalidInputError);
  // Delete of an absent id, duplicate delete ids.
  EXPECT_THROW(t.apply_updates({}, {std::int32_t{999}}), InvalidInputError);
  EXPECT_THROW(t.apply_updates({}, {std::int32_t{0}, std::int32_t{0}}),
               InvalidInputError);
  // Emptying the set.
  std::vector<std::int32_t> all;
  for (const auto& iv : t.intervals()) all.push_back(iv.id);
  EXPECT_THROW(t.apply_updates({}, all), InvalidInputError);
  EXPECT_EQ(t.graph().generation(), 0u);
  EXPECT_EQ(t.interval_count(), 25u);
}

// ---------------------------------------------------------------------------
// Kirkpatrick::apply_updates (re-triangulated pockets).
// ---------------------------------------------------------------------------

std::vector<Point2> demo_points() {
  std::vector<Point2> pts;
  util::Rng rng(19);
  for (int i = 0; i < 40; ++i)
    pts.push_back(Point2{rng.uniform_range(-900, 900),
                         rng.uniform_range(-900, 900)});
  std::sort(pts.begin(), pts.end(), [](const Point2& a, const Point2& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  pts.erase(std::unique(pts.begin(), pts.end(),
                        [](const Point2& a, const Point2& b) {
                          return a.x == b.x && a.y == b.y;
                        }),
            pts.end());
  return pts;
}

TEST(DynamicKirkpatrick, DeleteReinsertOfSamePointIsPayloadOnly) {
  Kirkpatrick kp(demo_points(), 2048);
  const Point2 p = kp.points().front();
  // Deterministic re-triangulation: removing and re-adding the same point
  // rebuilds an identical DAG — an empty dirty set, but the generation
  // still moves (the engine must still be told to re-stamp).
  const auto delta = kp.apply_updates({p}, {p});
  EXPECT_FALSE(delta.topology_changed);
  EXPECT_TRUE(delta.dirty_vertices.empty());
  EXPECT_EQ(delta.generation, 1u);
  EXPECT_EQ(kp.dag().generation(), 1u);
}

TEST(DynamicKirkpatrick, PointInsertChangesTopologyAndStaysCorrect) {
  Kirkpatrick kp(demo_points(), 2048);
  const auto delta = kp.apply_updates({Point2{3, 4}, Point2{-7, 11}}, {});
  // A changed point count changes the slot count: the honest delta is a
  // topology change, the engines' full re-setup fallback.
  EXPECT_TRUE(delta.topology_changed);
  EXPECT_EQ(delta.generation, 1u);
  kp.dag().validate();

  util::Rng rng(23);
  auto qs = make_queries(200);
  for (auto& q : qs) {
    q.key[0] = rng.uniform_range(-3000, 3000);
    q.key[1] = rng.uniform_range(-3000, 3000);
  }
  sequential_multisearch(kp.dag(), kp.locate_program(), qs);
  const auto bt = kp.bounding_corners();
  for (const auto& q : qs) {
    const Point2 p{q.key[0], q.key[1]};
    if (point_in_triangle(p, bt[0], bt[1], bt[2]))
      EXPECT_TRUE(kp.answer_contains_point(q));
    else
      EXPECT_EQ(q.result, Kirkpatrick::kOutside);
  }
}

TEST(DynamicKirkpatrick, MalformedBatchesRejectedBeforeAnyMutation) {
  Kirkpatrick kp(demo_points(), 2048);
  const std::size_t n = kp.points().size();
  // Delete of an absent point; duplicate insert of a live point.
  EXPECT_THROW(kp.apply_updates({}, {Point2{12345, 12345}}),
               InvalidInputError);
  EXPECT_THROW(kp.apply_updates({kp.points().front()}, {}),
               InvalidInputError);
  // Emptying the point set.
  EXPECT_THROW(kp.apply_updates({}, kp.points()), InvalidInputError);
  EXPECT_EQ(kp.dag().generation(), 0u);
  EXPECT_EQ(kp.points().size(), n);
}

// ---------------------------------------------------------------------------
// The stale-engine gate (satellite 1): a mutated dataset must never be
// served silently — the typed throw, with context, at the warm boundary.
// ---------------------------------------------------------------------------

TEST(UpdateStaleEngine, MutatedDatasetLookupThrowsTypedStaleEngineError) {
  KaryTree tree(ds::iota_keys(200), 3, TreeMode::kDirected);
  const auto shape = tree.graph().shape_for(tree.graph().vertex_count());
  const mesh::CostModel m;

  service::EngineRegistry registry;
  service::Engine& engine = registry.add(
      {"orders", EngineKind::kAlg2Alpha},
      service::make_partitioned_engine(
          EngineKind::kAlg2Alpha, tree.graph(), tree.alpha_splitting(),
          tree.alpha_splitting(), tree.rank_count(), m, shape));
  EXPECT_EQ(engine.dataset(), "orders");  // stamped by the registry

  // Warm serving works before the mutation...
  auto batch = rank_queries(shape.size(), 220, 41);
  EXPECT_NO_THROW(engine.run_batch(batch));
  EXPECT_FALSE(engine.stale());

  // ...then the dataset mutates out from under the warm engine.
  const auto delta = tree.apply_updates({ds::WeightedKey{777, 3}}, {});
  EXPECT_TRUE(engine.stale());
  bool threw = false;
  try {
    engine.run_batch(batch);
  } catch (const StaleEngineError& e) {
    threw = true;
    EXPECT_EQ(e.dataset(), "orders");
    EXPECT_EQ(e.structure_generation(), 1u);
    EXPECT_EQ(e.prepared_generation(), 0u);
    EXPECT_EQ(e.context().phase, "run_batch");
    EXPECT_NE(std::string(e.what()).find("orders"), std::string::npos);
  }
  EXPECT_TRUE(threw) << "stale warm engine served silently";
  // The taxonomy: StaleEngineError IS an IntegrityError IS an Error.
  EXPECT_THROW(engine.run_batch(batch), IntegrityError);
  EXPECT_THROW(engine.run_batch(batch), Error);

  // refresh() reopens the gate and the answers match the mutated oracle.
  RefreshRequest req;
  req.delta = delta;
  const auto rep = engine.refresh(req);
  EXPECT_TRUE(rep.incremental);
  EXPECT_FALSE(engine.stale());
  auto served = rank_queries(shape.size(), 800, 42);
  auto expect = served;
  engine.run_batch(served);
  sequential_multisearch(tree.graph(), tree.rank_count(), expect);
  EXPECT_EQ(diff_outcomes(outcomes(served), outcomes(expect)), "");
}

// ---------------------------------------------------------------------------
// Warm-refresh == cold-rebuild oracle (satellite 3): after refresh, a warm
// engine is bit-identical to a cold engine prepared over the same mutated
// structure — outcomes, per-batch charges, visits — at 1 and 8 threads and
// with the stats registry armed.
// ---------------------------------------------------------------------------

/// Run the warm-update-refresh flow for one engine pair and demand parity
/// with the cold comparator. Returns the warm record for the thread-
/// invariance harness.
template <typename MakeWarm, typename MakeCold, typename Mutate,
          typename Oracle>
RunRecord warm_cold_flow(MakeWarm make_warm, MakeCold make_cold,
                         Mutate mutate, Oracle oracle,
                         const std::vector<Query>& qs) {
  trace::TraceRecorder rec("counting");
  mesh::CostModel m;
  m.trace = &rec;
  auto warm_engine = make_warm(m);
  {
    auto pre = qs;
    warm_engine->run_batch(pre);  // pre-update warm serving
  }
  const RefreshRequest req = mutate();
  const RefreshReport rrep = warm_engine->refresh(req);
  EXPECT_EQ(rrep.incremental, !req.delta.topology_changed && !req.force_full);

  auto warm = qs;
  const BatchReport wrep = warm_engine->run_batch(warm);

  const mesh::CostModel cold_model;  // unattributed comparator
  auto cold_engine = make_cold(cold_model);
  auto cold = qs;
  const BatchReport crep = cold_engine->run_batch(cold);

  EXPECT_EQ(diff_outcomes(outcomes(warm), outcomes(cold)), "");
  EXPECT_EQ(wrep.inject, crep.inject);
  EXPECT_EQ(wrep.run, crep.run);
  EXPECT_EQ(wrep.visits, crep.visits);

  auto seq = qs;
  oracle(seq);
  EXPECT_EQ(diff_outcomes(outcomes(warm), outcomes(seq)), "");
  return RunRecord{outcomes(warm), rrep.cost + wrep.inject + wrep.run,
                   rec.counters()};
}

TEST(UpdateWarmColdOracle, Alg1PaperAndGeometricOverKaryDag) {
  for (const PlanKind plan : {PlanKind::kPaper, PlanKind::kGeometric}) {
    const auto qs = rank_queries(300, 520, 61);
    expect_update_invariant([&] {
      // Fresh per run: the flow mutates the tree.
      KaryTree tree(ds::iota_keys(200), 3, TreeMode::kDirected);
      const HierarchicalDag dag(tree.graph(), 3.0);
      const auto shape = tree.graph().shape_for(qs.size());
      using Prog = decltype(tree.rank_count());
      return warm_cold_flow(
          [&](const mesh::CostModel& m) {
            return std::make_unique<PreparedSearch<Prog>>(
                dag, plan, tree.rank_count(), m, shape);
          },
          [&](const mesh::CostModel& m) {
            return std::make_unique<PreparedSearch<Prog>>(
                dag, plan, tree.rank_count(), m, shape);
          },
          [&] {
            RefreshRequest req;
            req.delta = tree.apply_updates(
                {ds::WeightedKey{500, 2}, ds::WeightedKey{5, 42}},
                {std::int64_t{7}, std::int64_t{13}});
            EXPECT_FALSE(req.delta.topology_changed);
            return req;
          },
          [&](std::vector<Query>& seq) {
            sequential_multisearch(tree.graph(), tree.rank_count(), seq);
          },
          qs);
    });
  }
}

TEST(UpdateWarmColdOracle, Alg2AlphaOverKaryTree) {
  const auto qs = rank_queries(300, 520, 62);
  expect_update_invariant([&] {
    KaryTree tree(ds::iota_keys(200), 3, TreeMode::kDirected);
    const auto shape = tree.graph().shape_for(qs.size());
    using Prog = decltype(tree.rank_count());
    RunRecord r = warm_cold_flow(
        [&](const mesh::CostModel& m) {
          return std::make_unique<PreparedSearch<Prog>>(
              EngineKind::kAlg2Alpha, tree.graph(), tree.alpha_splitting(),
              tree.alpha_splitting(), tree.rank_count(), m, shape);
        },
        [&](const mesh::CostModel& m) {
          return std::make_unique<PreparedSearch<Prog>>(
              EngineKind::kAlg2Alpha, tree.graph(), tree.alpha_splitting(),
              tree.alpha_splitting(), tree.rank_count(), m, shape);
        },
        [&] {
          RefreshRequest req;
          req.delta =
              tree.apply_updates({ds::WeightedKey{500, 2}}, {std::int64_t{7}});
          EXPECT_FALSE(req.delta.topology_changed);
          return req;
        },
        [&](std::vector<Query>& seq) {
          sequential_multisearch(tree.graph(), tree.rank_count(), seq);
        },
        qs);
    // The incremental refresh is charged under the rebuild primitive.
    bool saw_rebuild = false;
    for (const auto& [key, stat] : r.counters)
      saw_rebuild |= key.prim == trace::Primitive::kRebuild;
    EXPECT_TRUE(saw_rebuild);
    return r;
  });
}

TEST(UpdateWarmColdOracle, Alg3AlphaBetaOverSlackIntervalTree) {
  const auto qs = stab_queries(256, -50, 1100, 63);
  expect_update_invariant([&] {
    IntervalTree t(demo_intervals(), /*chain_slack=*/3);
    const auto [s1, s2] = t.alpha_beta_splittings();
    const auto shape = t.graph().shape_for(qs.size());
    using Prog = decltype(t.stabbing_program());
    return warm_cold_flow(
        [&](const mesh::CostModel& m) {
          return std::make_unique<PreparedSearch<Prog>>(
              EngineKind::kAlg3AlphaBeta, t.graph(), s1, s2,
              t.stabbing_program(), m, shape);
        },
        [&](const mesh::CostModel& m) {
          return std::make_unique<PreparedSearch<Prog>>(
              EngineKind::kAlg3AlphaBeta, t.graph(), s1, s2,
              t.stabbing_program(), m, shape);
        },
        [&] {
          RefreshRequest req;
          req.delta = t.apply_updates({Interval{1, 999, 100}},
                                      {std::int32_t{24}});
          EXPECT_FALSE(req.delta.topology_changed);
          return req;
        },
        [&](std::vector<Query>& seq) {
          sequential_multisearch(t.graph(), t.stabbing_program(), seq);
        },
        qs);
  });
}

TEST(UpdateWarmColdOracle, KirkpatrickTopologyChangeTakesFullResetup) {
  util::Rng qrng(64);
  auto qs = make_queries(200);
  for (auto& q : qs) {
    q.key[0] = qrng.uniform_range(-3000, 3000);
    q.key[1] = qrng.uniform_range(-3000, 3000);
  }
  expect_update_invariant([&] {
    Kirkpatrick kp(demo_points(), 2048);
    // Leave headroom in the mesh: the re-triangulated DAG grows.
    const auto shape =
        kp.dag().shape_for(4 * kp.dag().vertex_count());
    // The HierarchicalDag view is assignable so the warm engine's pointer
    // stays valid across the topology change.
    HierarchicalDag dag = kp.hierarchical_dag();
    using Prog = Kirkpatrick::PointLocate;
    return warm_cold_flow(
        [&](const mesh::CostModel& m) {
          return std::make_unique<PreparedSearch<Prog>>(
              dag, PlanKind::kGeometric, kp.locate_program(), m, shape);
        },
        [&](const mesh::CostModel& m) {
          return std::make_unique<PreparedSearch<Prog>>(
              dag, PlanKind::kGeometric, kp.locate_program(), m, shape);
        },
        [&] {
          RefreshRequest req;
          req.delta = kp.apply_updates({Point2{3, 4}, Point2{-7, 11}}, {});
          EXPECT_TRUE(req.delta.topology_changed);
          dag = kp.hierarchical_dag();  // refresh the view in place
          return req;
        },
        [&](std::vector<Query>& seq) {
          sequential_multisearch(kp.dag(), kp.locate_program(), seq);
        },
        qs);
  });
}

// ---------------------------------------------------------------------------
// Fault injection on the rebuild phase (satellite 3): retries recharge and
// back off; an exhausted budget leaves the engine safely stale.
// ---------------------------------------------------------------------------

TEST(UpdateFaultRebuild, ArmedPlanRetriesAndExhaustionLeavesEngineStale) {
  KaryTree tree(ds::iota_keys(200), 3, TreeMode::kDirected);
  const auto shape = tree.graph().shape_for(tree.graph().vertex_count());

  // Fault-free reference refresh cost.
  const mesh::CostModel quiet;
  PreparedSearch ref(EngineKind::kAlg2Alpha, tree.graph(),
                     tree.alpha_splitting(), tree.alpha_splitting(),
                     tree.rank_count(), quiet, shape);
  RefreshRequest req;
  req.delta = tree.apply_updates({ds::WeightedKey{500, 2}}, {});
  const RefreshReport clean = ref.refresh(req);
  EXPECT_TRUE(clean.incremental);

  // Armed plan: the rebuild phase fails some attempts, each failed attempt
  // re-charges and backs off, so the faulted refresh costs strictly more.
  mesh::FaultConfig cfg;
  cfg.seed = 5;
  cfg.p_phase = 0.9;
  mesh::FaultPlan plan(cfg);
  mesh::CostModel m;
  m.fault = &plan;
  PreparedSearch eng(EngineKind::kAlg2Alpha, tree.graph(),
                     tree.alpha_splitting(), tree.alpha_splitting(),
                     tree.rank_count(), m, shape);
  req.delta = tree.apply_updates({ds::WeightedKey{501, 2}}, {});
  EXPECT_TRUE(eng.stale());
  const RefreshReport faulted = eng.refresh(req);
  EXPECT_TRUE(faulted.incremental);
  EXPECT_FALSE(eng.stale());
  EXPECT_GT(plan.stats().phase_failures, 0u);
  EXPECT_GT(faulted.cost.steps, clean.cost.steps);

  // Exhaustion: every attempt fails -> FaultExhaustedError, the engine is
  // STILL stale (the gate stays shut), and a fault-free retry heals it.
  mesh::FaultConfig fatal;
  fatal.seed = 6;
  fatal.p_phase = 1.0;
  fatal.max_retries = 2;
  mesh::FaultPlan fatal_plan(fatal);
  m.fault = &fatal_plan;
  req.delta = tree.apply_updates({ds::WeightedKey{502, 2}}, {});
  EXPECT_THROW(eng.refresh(req), mesh::FaultExhaustedError);
  EXPECT_TRUE(eng.stale());
  auto batch = rank_queries(64, 520, 44);
  EXPECT_THROW(eng.run_batch(batch), StaleEngineError);
  m.fault = nullptr;
  const RefreshReport healed = eng.refresh(req);
  EXPECT_TRUE(healed.incremental);
  EXPECT_FALSE(eng.stale());
  auto served = rank_queries(64, 520, 44);
  auto expect = served;
  eng.run_batch(served);
  sequential_multisearch(tree.graph(), tree.rank_count(), expect);
  EXPECT_EQ(diff_outcomes(outcomes(served), outcomes(expect)), "");
}

// ---------------------------------------------------------------------------
// Mixed read/write tenant streams through the service layer.
// ---------------------------------------------------------------------------

TEST(ServiceUpdates, MixedReadWriteStreamAppliesUpdateBetweenWaves) {
  KaryTree tree(ds::iota_keys(200), 3, TreeMode::kDirected);
  const auto shape = tree.graph().shape_for(tree.graph().vertex_count());
  const std::size_t cap = shape.size();
  const mesh::CostModel m;
  auto engine = service::make_partitioned_engine(
      EngineKind::kAlg2Alpha, tree.graph(), tree.alpha_splitting(),
      tree.alpha_splitting(), tree.rank_count(), m, shape);

  trace::TraceRecorder rec("counting");
  service::ServiceScheduler svc({}, &rec);
  service::TenantQuota quota;
  quota.max_outstanding = 8 * cap;
  service::TenantSession& t = svc.add_tenant("acme", *engine, quota);

  // Wave 1 reads the original structure: pin its oracle BEFORE the update
  // can run.
  const auto wave1 = rank_queries(cap + 9, 520, 81);
  auto expect1 = wave1;
  sequential_multisearch(tree.graph(), tree.rank_count(), expect1);
  const service::Submission s1 = t.submit(wave1);

  // The write, then wave 2, which must see the mutated structure.
  const std::size_t uidx = t.submit_update([&tree] {
    RefreshRequest req;
    req.delta = tree.apply_updates({ds::WeightedKey{500, 7}},
                                   {std::int64_t{13}});
    return req;
  });
  EXPECT_EQ(uidx, 0u);
  EXPECT_EQ(t.pending_updates(), 1u);
  const auto wave2 = rank_queries(cap / 2, 800, 82);
  const service::Submission s2 = t.submit(wave2);
  EXPECT_THROW(t.submit_update(service::UpdateFn{}), InvalidInputError);

  svc.run_until_idle();
  EXPECT_TRUE(svc.idle());
  EXPECT_EQ(t.pending_updates(), 0u);
  EXPECT_EQ(t.updates_applied(), 1u);

  // Wave 1 was answered by the pre-update structure, wave 2 by the
  // post-update one.
  auto expect2 = wave2;
  sequential_multisearch(tree.graph(), tree.rank_count(), expect2);
  std::vector<Query> got1, got2;
  for (service::Ticket k = s1.first; k < s1.first + s1.count; ++k)
    got1.push_back(t.result(k));
  for (service::Ticket k = s2.first; k < s2.first + s2.count; ++k)
    got2.push_back(t.result(k));
  EXPECT_EQ(diff_outcomes(outcomes(got1), outcomes(expect1)), "");
  EXPECT_EQ(diff_outcomes(outcomes(got2), outcomes(expect2)), "");

  // The refresh was charged to the tenant on the virtual clock, and the
  // report carries the update accounting.
  const service::TenantReport rep = t.report();
  EXPECT_EQ(rep.updates_submitted, 1u);
  EXPECT_EQ(rep.updates_applied, 1u);
  EXPECT_EQ(rep.incremental_refreshes, 1u);
  EXPECT_EQ(rep.full_refreshes, 0u);
  EXPECT_GT(rep.refresh.steps, 0.0);
  EXPECT_DOUBLE_EQ(svc.now_steps(), rep.charged().steps);
  svc.export_metrics();
  std::map<std::string, double> metrics;
  for (const auto& mt : rec.metrics()) metrics[mt.name] = mt.value;
  EXPECT_EQ(metrics.at("tenant.acme.updates_applied"), 1.0);
  EXPECT_EQ(metrics.at("tenant.acme.incremental_refreshes"), 1.0);
  EXPECT_GT(metrics.at("tenant.acme.refresh_steps"), 0.0);
}

TEST(ServiceUpdates, OutOfBandMutationSurfacesStaleEngineErrorFromPump) {
  KaryTree tree(ds::iota_keys(100), 3, TreeMode::kDirected);
  const auto shape = tree.graph().shape_for(tree.graph().vertex_count());
  const mesh::CostModel m;
  auto engine = service::make_partitioned_engine(
      EngineKind::kAlg2Alpha, tree.graph(), tree.alpha_splitting(),
      tree.alpha_splitting(), tree.rank_count(), m, shape);
  service::ServiceScheduler svc;
  service::TenantQuota quota;
  quota.max_outstanding = 4 * shape.size();
  service::TenantSession& t = svc.add_tenant("acme", *engine, quota);
  t.submit(rank_queries(shape.size() / 2, 120, 83));
  // Mutating the structure WITHOUT submit_update is the bug this PR closes:
  // the service refuses to serve the stale engine rather than answering
  // from a structure the engine never distributed.
  tree.apply_updates({ds::WeightedKey{700, 1}}, {});
  EXPECT_THROW(svc.run_until_idle(), StaleEngineError);
}

TEST(ServiceUpdates, FaultExhaustedRefreshDegradesAndStillApplies) {
  KaryTree tree(ds::iota_keys(100), 3, TreeMode::kDirected);
  const auto shape = tree.graph().shape_for(tree.graph().vertex_count());
  const mesh::CostModel m;
  auto engine = service::make_partitioned_engine(
      EngineKind::kAlg2Alpha, tree.graph(), tree.alpha_splitting(),
      tree.alpha_splitting(), tree.rank_count(), m, shape);
  service::ServiceScheduler svc;
  service::TenantQuota quota;
  quota.max_outstanding = 4 * shape.size();
  service::TenantSession& t = svc.add_tenant("acme", *engine, quota);

  mesh::FaultConfig cfg;
  cfg.seed = 11;
  cfg.p_phase = 1.0;  // the rebuild phase can never succeed under this plan
  cfg.max_retries = 2;
  mesh::FaultPlan plan(cfg);
  t.set_fault(&plan);

  t.submit_update([&tree] {
    RefreshRequest req;
    req.delta = tree.apply_updates({ds::WeightedKey{700, 1}}, {});
    return req;
  });
  svc.run_until_idle();  // must terminate: degraded, then applied fault-free
  EXPECT_EQ(t.updates_applied(), 1u);
  const service::TenantReport rep = t.report();
  EXPECT_EQ(rep.degraded_refreshes, 1u);
  EXPECT_EQ(rep.incremental_refreshes, 1u);

  // And the engine serves the mutated structure correctly afterwards.
  t.set_fault(nullptr);
  auto served = rank_queries(shape.size() / 2, 800, 84);
  const service::Submission sub = t.submit(served);
  svc.run_until_idle();
  auto expect = served;
  sequential_multisearch(tree.graph(), tree.rank_count(), expect);
  std::vector<Query> got;
  for (service::Ticket k = sub.first; k < sub.first + sub.count; ++k)
    got.push_back(t.result(k));
  EXPECT_EQ(diff_outcomes(outcomes(got), outcomes(expect)), "");
}

}  // namespace
