// Composite cycle-engine operations: partial routing, segmented snake
// broadcast, and the physical random access read — validated against the
// counting engine and measured against the charged cost.
#include <gtest/gtest.h>

#include <cmath>

#include "mesh/cycle_ops.hpp"
#include "mesh/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace meshsearch;
using mesh::Grid;
using mesh::MeshShape;

TEST(RoutePartial, MovesOnlyMarkedPackets) {
  const MeshShape s(4);
  std::vector<std::int64_t> vals(s.size());
  for (std::size_t i = 0; i < vals.size(); ++i)
    vals[i] = 100 + static_cast<std::int64_t>(i);
  auto g = Grid<std::int64_t>::from_snake(s, vals);
  // Row-major: cell 0 -> 15, cell 5 -> 2; others carry nothing.
  std::vector<std::int64_t> dest(s.size(), -1);
  dest[0] = 15;
  dest[5] = 2;
  const auto v0 = g.at_rm(0);
  const auto v5 = g.at_rm(5);
  mesh::route_partial(g, dest, /*fill=*/-7);
  EXPECT_EQ(g.at_rm(15), v0);
  EXPECT_EQ(g.at_rm(2), v5);
  EXPECT_EQ(g.at_rm(3), -7);  // no packet arrived
}

TEST(RoutePartial, EmptyAndFull) {
  const MeshShape s(4);
  std::vector<std::int64_t> vals(s.size(), 9);
  auto g = Grid<std::int64_t>::from_snake(s, vals);
  std::vector<std::int64_t> none(s.size(), -1);
  EXPECT_EQ(mesh::route_partial(g, none, 0), 0u);
  // Full reversal still works through the partial interface.
  auto g2 = Grid<std::int64_t>::from_snake(s, vals);
  for (std::size_t i = 0; i < s.size(); ++i) g2.at_rm(i) = std::int64_t(i);
  std::vector<std::int64_t> rev(s.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    rev[i] = static_cast<std::int64_t>(s.size() - 1 - i);
  mesh::route_partial(g2, rev, 0);
  for (std::size_t i = 0; i < s.size(); ++i)
    EXPECT_EQ(g2.at_rm(s.size() - 1 - i), static_cast<std::int64_t>(i));
}

TEST(SegmentedBroadcast, CopiesLeaderValues) {
  const MeshShape s(4);
  std::vector<std::int64_t> vals(s.size(), 0);
  std::vector<std::uint8_t> leader(s.size(), 0);
  // Segments at snake positions 0, 5, 11.
  leader[0] = leader[5] = leader[11] = 1;
  vals[0] = 10;
  vals[5] = 20;
  vals[11] = 30;
  mesh::segmented_snake_broadcast(s, vals, leader);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(vals[i], 10) << i;
  for (std::size_t i = 5; i < 11; ++i) EXPECT_EQ(vals[i], 20) << i;
  for (std::size_t i = 11; i < 16; ++i) EXPECT_EQ(vals[i], 30) << i;
}

class CycleRarTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CycleRarTest, MatchesCountingEngine) {
  const MeshShape s(GetParam());
  util::Rng rng(1000 + GetParam());
  std::vector<std::int64_t> table(s.size());
  for (auto& t : table) t = rng.uniform_range(-1000000, 1000000);
  // Mixed request pattern: ~60% request a random address (heavy duplicates
  // included), rest idle.
  std::vector<std::int64_t> addr(s.size(), mesh::kNoAddr);
  std::vector<mesh::ops::Addr> addr_ops(s.size(), mesh::ops::kNone);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (rng.uniform(10) < 6) {
      // Skew: half the requests hit a handful of hot addresses.
      const std::int64_t a =
          rng.bernoulli(0.5)
              ? static_cast<std::int64_t>(rng.uniform(std::min<std::size_t>(
                    4, s.size())))
              : static_cast<std::int64_t>(rng.uniform(s.size()));
      addr[i] = a;
      addr_ops[i] = a;
    }
  }
  const auto res = mesh::cycle_random_access_read(s, table, addr, -99);
  const mesh::CostModel m;
  std::vector<std::int64_t> expect;
  mesh::ops::random_access_read<std::int64_t>(table, addr_ops, expect, m,
                                              static_cast<double>(s.size()));
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (addr[i] == mesh::kNoAddr)
      EXPECT_EQ(res.out[i], -99);
    else
      EXPECT_EQ(res.out[i], expect[i]) << "i=" << i << " addr=" << addr[i];
  }
  // Step count: a constant number of sorts/scans/routes — within the
  // shearsort-charged bound times a small constant.
  mesh::CostModel phys;
  phys.physical_sort = true;
  EXPECT_LE(static_cast<double>(res.steps),
            3.0 * phys.rar(static_cast<double>(s.size())).steps);
  EXPECT_GE(res.steps, s.side());
}

INSTANTIATE_TEST_SUITE_P(Sides, CycleRarTest,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

TEST(CycleRar, AllReadSameAddress) {
  const MeshShape s(8);
  std::vector<std::int64_t> table(s.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    table[i] = static_cast<std::int64_t>(1000 + i);
  std::vector<std::int64_t> addr(s.size(), 17);  // total congestion
  const auto res = mesh::cycle_random_access_read(s, table, addr);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(res.out[i], 1017);
}

class CycleRawTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CycleRawTest, MatchesCountingEngine) {
  const MeshShape s(GetParam());
  util::Rng rng(2000 + GetParam());
  std::vector<std::int64_t> table(s.size());
  for (auto& t : table) t = rng.uniform_range(-1000, 1000);
  std::vector<std::int64_t> addr(s.size(), mesh::kNoAddr);
  std::vector<std::int64_t> value(s.size(), 0);
  std::vector<mesh::ops::Addr> addr_ops(s.size(), mesh::ops::kNone);
  std::vector<std::int64_t> value_ops(s.size(), 0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (rng.uniform(10) < 7) {
      const auto a = static_cast<std::int64_t>(
          rng.bernoulli(0.4) ? rng.uniform(3) : rng.uniform(s.size()));
      addr[i] = a;
      addr_ops[i] = a;
      value[i] = rng.uniform_range(-50, 50);
      value_ops[i] = value[i];
    }
  }
  const auto res = mesh::cycle_random_access_write(s, table, addr, value);
  auto expect = table;
  const mesh::CostModel m;
  mesh::ops::random_access_write<std::int64_t>(
      addr_ops, value_ops, expect,
      [](std::int64_t a, std::int64_t b) { return a + b; }, m,
      static_cast<double>(s.size()));
  EXPECT_EQ(res.table, expect);
  EXPECT_GE(res.steps, s.side());
}

INSTANTIATE_TEST_SUITE_P(Sides, CycleRawTest,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

TEST(CycleRaw, AllWriteOneAddress) {
  const MeshShape s(8);
  std::vector<std::int64_t> table(s.size(), 0);
  std::vector<std::int64_t> addr(s.size(), 5);
  std::vector<std::int64_t> value(s.size(), 1);
  const auto res = mesh::cycle_random_access_write(s, table, addr, value);
  for (std::size_t i = 0; i < s.size(); ++i)
    EXPECT_EQ(res.table[i], i == 5 ? static_cast<std::int64_t>(s.size()) : 0);
}

TEST(CycleRar, NoRequests) {
  const MeshShape s(4);
  std::vector<std::int64_t> table(s.size(), 5);
  std::vector<std::int64_t> addr(s.size(), mesh::kNoAddr);
  const auto res = mesh::cycle_random_access_read(s, table, addr, 42);
  for (const auto v : res.out) EXPECT_EQ(v, 42);
}

TEST(CycleRar, IdentityPermutationRead) {
  const MeshShape s(8);
  std::vector<std::int64_t> table(s.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    table[i] = static_cast<std::int64_t>(i * i);
  std::vector<std::int64_t> addr(s.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    addr[i] = static_cast<std::int64_t>(i);
  const auto res = mesh::cycle_random_access_read(s, table, addr);
  for (std::size_t i = 0; i < s.size(); ++i)
    EXPECT_EQ(res.out[i], static_cast<std::int64_t>(i * i));
}

}  // namespace
