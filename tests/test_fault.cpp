// Fault-injection and recovery tests (mesh/fault.hpp, multisearch/recovery.hpp,
// stream degradation in multisearch/stream.hpp). Four contracts:
//
//   1. Fault-free bit-identity: a disarmed FaultPlan threaded through any
//      engine (and the stream scheduler) changes NOTHING — outcomes, charged
//      cost and per-primitive attribution match a run with no plan at all,
//      at 1 and 8 host threads.
//   2. Armed determinism: same workload seed + same fault plan => the same
//      injections, retries, costs and outcomes, run after run.
//   3. Recovery correctness: every query outside a reported-degraded batch
//      matches the fault-free oracle exactly — recovery, not approximation;
//      a batch that exhausts its budget is REPORTED (failed_queries), its
//      queries kept at their pre-batch checkpoint, never silently wrong.
//   4. Cycle-engine faults only delay: stalls and drops add routing steps
//      but the delivered data is bit-identical to the fault-free run.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "mesh/cycle_ops.hpp"
#include "mesh/fault.hpp"
#include "multisearch/query.hpp"
#include "multisearch/stream.hpp"
#include "service/engine.hpp"
#include "service/scheduler.hpp"
#include "service/tenant.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"

namespace {

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::KaryTree;
using ds::TreeMode;

// ---------------------------------------------------------------------------
// FaultPlan unit contracts.
// ---------------------------------------------------------------------------

TEST(FaultPlan, DefaultConstructedIsDisarmedAndInert) {
  mesh::FaultPlan plan;
  EXPECT_FALSE(plan.armed());
  EXPECT_FALSE(plan.stall(0, 0, 0));
  EXPECT_FALSE(plan.drop(0, 0, 0, 1));
  EXPECT_EQ(plan.lockstep_extra(1000), 0u);
  const auto d = plan.draw_phase("anything");
  EXPECT_EQ(d.failed_attempts, 0u);
  EXPECT_EQ(d.backoff_steps, 0.0);
  const auto s = plan.stats();
  EXPECT_EQ(s.detections, 0u);
  EXPECT_EQ(s.capacity_factor, 1.0);
  EXPECT_EQ(plan.effective_capacity(500), 500u);
}

TEST(FaultPlan, DrawsAreAPureFunctionOfSeedAndSite) {
  mesh::FaultConfig cfg;
  cfg.seed = 5;
  cfg.p_stall = 0.4;
  cfg.p_drop = 0.4;
  cfg.p_phase = 0.4;
  mesh::FaultPlan a(cfg), b(cfg);
  std::size_t hits = 0;
  for (std::uint64_t site = 0; site < 200; ++site) {
    const bool sa = a.stall(1, site / 10, site);
    EXPECT_EQ(sa, b.stall(1, site / 10, site));
    const bool da = a.drop(1, site / 10, site, site + 1);
    EXPECT_EQ(da, b.drop(1, site / 10, site, site + 1));
    hits += static_cast<std::size_t>(sa) + static_cast<std::size_t>(da);
  }
  EXPECT_GT(hits, 0u);    // p = 0.4 over 400 draws: some must land...
  EXPECT_LT(hits, 400u);  // ...and some must not.
  for (int i = 0; i < 50; ++i) {
    const auto da = a.draw_phase("phase.x");
    const auto db = b.draw_phase("phase.x");
    EXPECT_EQ(da.failed_attempts, db.failed_attempts);
    EXPECT_EQ(da.backoff_steps, db.backoff_steps);
  }
  // Same name, later occurrence => an independent draw stream (the 50 draws
  // above cannot all coincide with a different-seed plan's).
  mesh::FaultConfig other = cfg;
  other.seed = 6;
  mesh::FaultPlan c(other);
  bool any_difference = false;
  mesh::FaultPlan a2(cfg);
  for (int i = 0; i < 50; ++i)
    if (a2.draw_phase("phase.x").failed_attempts !=
        c.draw_phase("phase.x").failed_attempts)
      any_difference = true;
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlan, BackoffDoublesPerFailedAttempt) {
  mesh::FaultConfig cfg;
  cfg.seed = 1;
  cfg.p_phase = 0.5;
  cfg.backoff_base = 8.0;
  mesh::FaultPlan plan(cfg);
  std::uint32_t deepest = 0;
  for (int i = 0; i < 200; ++i) {
    const auto d = plan.draw_phase("p");
    // base * (2^failed - 1): 0 -> 0, 1 -> 8, 2 -> 24, 3 -> 56, ...
    double expect = 0;
    for (std::uint32_t j = 0; j < d.failed_attempts; ++j)
      expect += 8.0 * static_cast<double>(1u << j);
    EXPECT_EQ(d.backoff_steps, expect);
    deepest = std::max(deepest, d.failed_attempts);
  }
  EXPECT_GE(deepest, 2u);  // p = 0.5: multi-failure draws must occur
  const auto s = plan.stats();
  EXPECT_EQ(s.phase_retries, s.phase_failures);
  EXPECT_GT(s.backoff_steps, 0.0);
}

TEST(FaultPlan, ExhaustedRetryBudgetThrows) {
  mesh::FaultConfig cfg;
  cfg.p_phase = 1.0;  // every attempt fails
  cfg.max_retries = 4;
  mesh::FaultPlan plan(cfg);
  EXPECT_THROW(plan.draw_phase("doomed"), mesh::FaultExhaustedError);
  const auto s = plan.stats();
  EXPECT_EQ(s.exhausted, 1u);
  EXPECT_EQ(s.phase_failures, 5u);  // 1 initial + max_retries attempts
}

TEST(FaultPlan, ExhaustedErrorCarriesReplayContext) {
  mesh::FaultConfig cfg;
  cfg.seed = 77;
  cfg.p_phase = 1.0;
  cfg.max_retries = 1;
  mesh::FaultPlan plan(cfg);
  try {
    plan.draw_phase("phase.doomed");
    FAIL() << "expected FaultExhaustedError";
  } catch (const mesh::FaultExhaustedError& e) {
    // Structured replay coordinates, both as accessors...
    EXPECT_EQ(e.seed(), 77u);
    EXPECT_EQ(e.site(), "phase.doomed");
    EXPECT_EQ(e.occurrence(), 0u);
    // ...and in the what() text, so they survive a bare catch.
    const std::string w = e.what();
    EXPECT_NE(w.find("seed=77"), std::string::npos);
    EXPECT_NE(w.find("phase.doomed"), std::string::npos);
    EXPECT_NE(w.find("occurrence=0"), std::string::npos);
  }
  // Also catchable as the taxonomy base.
  EXPECT_THROW(plan.draw_phase("phase.doomed"), meshsearch::Error);
}

TEST(FaultPlan, CorruptDrawsAreIndependentOfStallAndDropStreams) {
  // Adding p_corrupt to a plan must not move any stall/drop draw: corruption
  // uses its own hash-domain tags, so pre-existing fault streams replay
  // bit-identically when corruption is switched on next to them.
  mesh::FaultConfig a_cfg;
  a_cfg.seed = 21;
  a_cfg.p_stall = 0.2;
  a_cfg.p_drop = 0.2;
  mesh::FaultConfig b_cfg = a_cfg;
  b_cfg.p_corrupt = 0.5;
  mesh::FaultPlan a(a_cfg), b(b_cfg);
  for (std::uint64_t site = 0; site < 300; ++site) {
    EXPECT_EQ(a.stall(2, site, site * 3), b.stall(2, site, site * 3));
    EXPECT_EQ(a.drop(2, site, site * 3, site + 1),
              b.drop(2, site, site * 3, site + 1));
  }
  // No transit word was actually corrupted by these stall/drop queries.
  EXPECT_EQ(b.stats().corrupt_injected, 0u);
}

TEST(FaultPlan, CorruptOnlyPlanIsArmedAndDraws) {
  mesh::FaultConfig cfg;
  cfg.seed = 23;
  cfg.p_corrupt = 0.4;
  mesh::FaultPlan plan(cfg);
  EXPECT_TRUE(plan.armed());
  std::uint64_t corrupted = 0;
  for (std::uint64_t i = 0; i < 200; ++i)
    corrupted += static_cast<std::uint64_t>(plan.corrupt(3, i, i, i + 1));
  EXPECT_GT(corrupted, 0u);
  EXPECT_LT(corrupted, 200u);
  EXPECT_EQ(plan.stats().corrupt_injected, corrupted);
  // The flipped bit is a pure function of the site.
  EXPECT_EQ(plan.corrupt_bit(3, 5, 6, 7), plan.corrupt_bit(3, 5, 6, 7));
}

TEST(FaultPlan, DegradeHalvesCapacityButNeverBelowOne) {
  mesh::FaultConfig cfg;
  cfg.p_phase = 0.1;
  mesh::FaultPlan plan(cfg);
  EXPECT_EQ(plan.effective_capacity(100), 100u);
  plan.degrade();
  EXPECT_EQ(plan.effective_capacity(100), 50u);
  plan.degrade();
  EXPECT_EQ(plan.effective_capacity(100), 25u);
  for (int i = 0; i < 20; ++i) plan.degrade();
  EXPECT_EQ(plan.effective_capacity(100), 1u);
  EXPECT_LT(plan.stats().capacity_factor, 1.0);
}

// ---------------------------------------------------------------------------
// Workload fixtures (mirrors test_stream.cpp, smaller sizes).
// ---------------------------------------------------------------------------

struct Alg1Fixture {
  DistributedGraph g;
  HierarchicalDag dag;
  mesh::MeshShape shape;

  explicit Alg1Fixture(std::uint64_t seed = 30)
      : g([&] {
          util::Rng rng(seed);
          return ds::build_hierarchical_dag(1200, 2.0, 3, rng);
        }()),
        dag(g, 2.0),
        shape(g.shape_for(g.vertex_count())) {}

  std::vector<Query> stream(std::size_t m, std::uint64_t seed = 31) const {
    auto qs = make_queries(m);
    util::Rng rng(seed);
    for (auto& q : qs)
      q.key[0] = static_cast<std::int64_t>(rng.uniform(1ull << 40));
    return qs;
  }
};

struct Alg2Fixture {
  KaryTree tree;
  mesh::MeshShape shape;

  Alg2Fixture() : tree(ds::iota_keys(500), 3, TreeMode::kDirected),
                  shape(tree.graph().shape_for(tree.graph().vertex_count())) {}

  std::vector<Query> stream(std::size_t m, std::uint64_t seed = 32) const {
    util::Rng rng(seed);
    return ds::uniform_key_queries(m, 520, rng);
  }
};

struct Alg3Fixture {
  KaryTree tree;
  Splitting s1, s2;
  mesh::MeshShape shape;

  Alg3Fixture() : tree(ds::iota_keys(256), 2, TreeMode::kUndirected),
                  shape(tree.graph().shape_for(tree.graph().vertex_count())) {
    std::tie(s1, s2) = tree.alpha_beta_splittings();
  }

  std::vector<Query> stream(std::size_t m, std::uint64_t seed = 33) const {
    auto qs = make_queries(m);
    util::Rng rng(seed);
    for (auto& q : qs) {
      const auto a = rng.uniform_range(-3, 259);
      q.key[0] = a;
      q.key[1] = a + rng.uniform_range(0, 30);
    }
    return qs;
  }
};

/// Everything a fault contract compares between two runs.
struct RunRecord {
  std::vector<QueryOutcome> out;
  mesh::Cost cost;
  std::map<trace::PrimitiveKey, trace::PrimitiveStat> counters;
  std::map<std::string, double> metrics;
  std::vector<std::uint32_t> failed;
};

void expect_identical(const RunRecord& a, const RunRecord& b) {
  EXPECT_EQ(diff_outcomes(a.out, b.out), "");
  EXPECT_EQ(a.cost, b.cost);  // exact, not approximate
  EXPECT_TRUE(a.counters == b.counters)
      << "per-primitive attribution diverged";
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.failed, b.failed);
}

/// Run `f(plan_or_null)` once with no fault plan and once with a DISARMED
/// plan attached, at 1 and at 8 host threads; all four runs must be
/// bit-identical in outcomes, cost, attribution and metrics.
template <typename F>
void expect_disarmed_inert(F f) {
  RunRecord first;
  bool have_first = false;
  for (const unsigned threads : {1u, 8u}) {
    util::ThreadPool::set_global_threads(threads);
    const RunRecord bare = f(static_cast<mesh::FaultPlan*>(nullptr));
    mesh::FaultPlan disarmed;
    const RunRecord with = f(&disarmed);
    expect_identical(bare, with);
    // The disarmed plan's counters never move either.
    const auto s = disarmed.stats();
    EXPECT_EQ(s.detections, 0u);
    if (!have_first) {
      first = bare;
      have_first = true;
    } else {
      expect_identical(first, bare);  // and thread-count invariant
    }
  }
  util::ThreadPool::set_global_threads(0);
}

template <typename MakeEngine>
RunRecord run_stream(MakeEngine make_engine, std::vector<Query> stream,
                     mesh::FaultPlan* plan) {
  trace::TraceRecorder rec("counting");
  mesh::CostModel m;
  m.trace = &rec;
  m.fault = plan;
  auto engine = make_engine(m);
  StreamScheduler sched(engine, BatchPolicy{});
  const auto res = sched.run(stream);
  RunRecord r;
  r.out = outcomes(stream);
  r.cost = res.total();
  r.counters = rec.counters();
  for (const auto& mt : rec.metrics()) r.metrics[mt.name] = mt.value;
  r.failed = res.failed_queries;
  return r;
}

// ---------------------------------------------------------------------------
// (1) Fault-free bit-identity: all four engines + stream scheduler.
// ---------------------------------------------------------------------------

TEST(FaultFree, Alg1PaperStreamBitIdenticalWithDisarmedPlan) {
  const Alg1Fixture fx;
  const auto stream0 = fx.stream(2 * fx.shape.size() + 17);
  expect_disarmed_inert([&](mesh::FaultPlan* plan) {
    return run_stream(
        [&](const mesh::CostModel& m) {
          return PreparedSearch(fx.dag, PlanKind::kPaper, ds::HashWalk{0}, m,
                                fx.shape);
        },
        stream0, plan);
  });
}

TEST(FaultFree, Alg1GeometricStreamBitIdenticalWithDisarmedPlan) {
  const Alg1Fixture fx;
  const auto stream0 = fx.stream(2 * fx.shape.size() + 5);
  expect_disarmed_inert([&](mesh::FaultPlan* plan) {
    return run_stream(
        [&](const mesh::CostModel& m) {
          return PreparedSearch(fx.dag, PlanKind::kGeometric, ds::HashWalk{0},
                                m, fx.shape);
        },
        stream0, plan);
  });
}

TEST(FaultFree, Alg2AlphaStreamBitIdenticalWithDisarmedPlan) {
  const Alg2Fixture fx;
  const auto stream0 = fx.stream(2 * fx.shape.size() + 9);
  expect_disarmed_inert([&](mesh::FaultPlan* plan) {
    return run_stream(
        [&](const mesh::CostModel& m) {
          return PreparedSearch(EngineKind::kAlg2Alpha, fx.tree.graph(),
                                fx.tree.alpha_splitting(),
                                fx.tree.alpha_splitting(),
                                fx.tree.rank_count(), m, fx.shape);
        },
        stream0, plan);
  });
}

TEST(FaultFree, Alg3AlphaBetaStreamBitIdenticalWithDisarmedPlan) {
  const Alg3Fixture fx;
  const auto stream0 = fx.stream(2 * fx.shape.size() + 13);
  expect_disarmed_inert([&](mesh::FaultPlan* plan) {
    return run_stream(
        [&](const mesh::CostModel& m) {
          return PreparedSearch(EngineKind::kAlg3AlphaBeta, fx.tree.graph(),
                                fx.s1, fx.s2, fx.tree.euler_scan(), m,
                                fx.shape);
        },
        stream0, plan);
  });
}

// ---------------------------------------------------------------------------
// (2) Armed determinism: same seed + same plan => bit-identical runs.
// ---------------------------------------------------------------------------

TEST(FaultRecovery, ArmedRunIsDeterministicGivenSeedAndPlan) {
  const Alg3Fixture fx;
  const auto stream0 = fx.stream(3 * fx.shape.size() + 21);
  auto run_armed = [&] {
    mesh::FaultConfig cfg;
    cfg.seed = 9;
    cfg.p_phase = 0.3;
    mesh::FaultPlan plan(cfg);
    return run_stream(
        [&](const mesh::CostModel& m) {
          return PreparedSearch(EngineKind::kAlg3AlphaBeta, fx.tree.graph(),
                                fx.s1, fx.s2, fx.tree.euler_scan(), m,
                                fx.shape);
        },
        stream0, &plan);
  };
  expect_identical(run_armed(), run_armed());
}

TEST(FaultRecovery, ArmedRunIsThreadCountInvariant) {
  const Alg2Fixture fx;
  const auto stream0 = fx.stream(3 * fx.shape.size() + 7);
  auto run_armed = [&] {
    mesh::FaultConfig cfg;
    cfg.seed = 11;
    cfg.p_phase = 0.3;
    mesh::FaultPlan plan(cfg);
    return run_stream(
        [&](const mesh::CostModel& m) {
          return PreparedSearch(EngineKind::kAlg2Alpha, fx.tree.graph(),
                                fx.tree.alpha_splitting(),
                                fx.tree.alpha_splitting(),
                                fx.tree.rank_count(), m, fx.shape);
        },
        stream0, &plan);
  };
  util::ThreadPool::set_global_threads(1);
  const RunRecord serial = run_armed();
  util::ThreadPool::set_global_threads(8);
  const RunRecord parallel = run_armed();
  util::ThreadPool::set_global_threads(0);
  expect_identical(serial, parallel);
}

// ---------------------------------------------------------------------------
// (3) Recovery correctness vs the fault-free oracle.
// ---------------------------------------------------------------------------

template <typename MakeEngine>
void expect_recovers_to_oracle(MakeEngine make_engine,
                               const std::vector<Query>& stream0,
                               double p_phase, std::uint64_t fault_seed) {
  const RunRecord oracle =
      run_stream(make_engine, stream0, static_cast<mesh::FaultPlan*>(nullptr));
  mesh::FaultConfig cfg;
  cfg.seed = fault_seed;
  cfg.p_phase = p_phase;
  mesh::FaultPlan plan(cfg);
  const RunRecord faulty = run_stream(make_engine, stream0, &plan);
  const auto s = plan.stats();
  ASSERT_GT(s.phase_retries, 0u) << "workload too small to draw any fault";
  EXPECT_TRUE(faulty.failed.empty());  // retries absorbed every failure
  EXPECT_EQ(diff_outcomes(faulty.out, oracle.out), "");
  // Retries + backoff are charged: the armed run costs strictly more.
  EXPECT_GT(faulty.cost.steps, oracle.cost.steps);
  EXPECT_GT(s.backoff_steps, 0.0);
}

TEST(FaultRecovery, Alg1GeometricRecoversToFaultFreeOracle) {
  const Alg1Fixture fx;
  expect_recovers_to_oracle(
      [&](const mesh::CostModel& m) {
        return PreparedSearch(fx.dag, PlanKind::kGeometric, ds::HashWalk{0}, m,
                              fx.shape);
      },
      fx.stream(3 * fx.shape.size() + 11), 0.25, 3);
}

TEST(FaultRecovery, Alg2AlphaRecoversToFaultFreeOracle) {
  const Alg2Fixture fx;
  expect_recovers_to_oracle(
      [&](const mesh::CostModel& m) {
        return PreparedSearch(EngineKind::kAlg2Alpha, fx.tree.graph(),
                              fx.tree.alpha_splitting(),
                              fx.tree.alpha_splitting(), fx.tree.rank_count(),
                              m, fx.shape);
      },
      fx.stream(3 * fx.shape.size() + 19), 0.25, 4);
}

TEST(FaultRecovery, Alg3AlphaBetaRecoversToFaultFreeOracle) {
  const Alg3Fixture fx;
  expect_recovers_to_oracle(
      [&](const mesh::CostModel& m) {
        return PreparedSearch(EngineKind::kAlg3AlphaBeta, fx.tree.graph(),
                              fx.s1, fx.s2, fx.tree.euler_scan(), m, fx.shape);
      },
      fx.stream(3 * fx.shape.size() + 23), 0.25, 5);
}

TEST(FaultRecovery, Alg1PaperRecoversToFaultFreeOracle) {
  const Alg1Fixture fx;
  expect_recovers_to_oracle(
      [&](const mesh::CostModel& m) {
        return PreparedSearch(fx.dag, PlanKind::kPaper, ds::HashWalk{0}, m,
                              fx.shape);
      },
      fx.stream(3 * fx.shape.size() + 29), 0.45, 6);
}

// ---------------------------------------------------------------------------
// Stream degradation: exhausted retries are reported, never silent.
// ---------------------------------------------------------------------------

TEST(FaultStream, ExhaustedRetriesDegradeReplanAndReport) {
  const Alg2Fixture fx;
  auto stream = fx.stream(2 * fx.shape.size() + 15);
  const auto pristine = outcomes(stream);
  mesh::FaultConfig cfg;
  cfg.seed = 13;
  cfg.p_phase = 1.0;  // every attempt of every phase fails: nothing survives
  mesh::FaultPlan plan(cfg);
  mesh::CostModel m;
  m.fault = &plan;
  PreparedSearch engine(EngineKind::kAlg2Alpha, fx.tree.graph(),
                        fx.tree.alpha_splitting(), fx.tree.alpha_splitting(),
                        fx.tree.rank_count(), m, fx.shape);
  StreamScheduler sched(engine, BatchPolicy{});
  const auto res = sched.run(stream);

  // Every query position is reported failed exactly once...
  std::set<std::uint32_t> failed(res.failed_queries.begin(),
                                 res.failed_queries.end());
  EXPECT_EQ(failed.size(), res.failed_queries.size());
  EXPECT_EQ(failed.size(), stream.size());
  // ...every emitted report is a degraded one at the last re-plan
  // generation...
  const auto max_replans = static_cast<std::uint32_t>(cfg.max_replans);
  for (const auto& rep : res.batches) {
    EXPECT_TRUE(rep.degraded);
    EXPECT_EQ(rep.replans, max_replans);
  }
  // ...the stream itself still holds the pre-batch checkpoints (no partial
  // writes from failed attempts)...
  EXPECT_EQ(diff_outcomes(outcomes(stream), pristine), "");
  // ...and the degradation/replanning is visible in the plan's stats.
  const auto s = plan.stats();
  EXPECT_GT(s.exhausted, 0u);
  EXPECT_GT(s.replanned_batches, 0u);
  EXPECT_GT(s.degraded_batches, 0u);
  EXPECT_LT(s.capacity_factor, 1.0);
}

TEST(FaultStream, FaultMetricsExportedOnlyWhenArmed) {
  const Alg3Fixture fx;
  auto run = [&](double p_phase) {
    trace::TraceRecorder rec("counting");
    mesh::FaultConfig cfg;
    cfg.seed = 9;
    cfg.p_phase = p_phase;
    mesh::FaultPlan plan(cfg);
    mesh::CostModel m;
    m.trace = &rec;
    m.fault = &plan;
    PreparedSearch engine(EngineKind::kAlg3AlphaBeta, fx.tree.graph(), fx.s1,
                          fx.s2, fx.tree.euler_scan(), m, fx.shape);
    auto stream = fx.stream(2 * fx.shape.size());
    StreamScheduler sched(engine, BatchPolicy{});
    sched.run(stream);
    std::map<std::string, double> metrics;
    for (const auto& mt : rec.metrics()) metrics[mt.name] = mt.value;
    // Both JSON exports carry whatever metrics were recorded.
    std::ostringstream trace_json, metrics_json;
    trace::write_trace_json(rec, trace_json);
    trace::write_metrics_json(rec, metrics_json);
    if (metrics.count("fault.phase_retries") != 0) {
      EXPECT_NE(trace_json.str().find("fault.phase_retries"),
                std::string::npos);
      EXPECT_NE(metrics_json.str().find("fault.phase_retries"),
                std::string::npos);
    } else {
      EXPECT_EQ(trace_json.str().find("fault."), std::string::npos);
      EXPECT_EQ(metrics_json.str().find("fault."), std::string::npos);
    }
    return metrics;
  };

  const auto armed = run(0.3);
  ASSERT_EQ(armed.count("fault.phase_retries"), 1u);
  ASSERT_EQ(armed.count("fault.backoff_steps"), 1u);
  ASSERT_EQ(armed.count("fault.capacity_factor"), 1u);
  EXPECT_GT(armed.at("fault.phase_retries"), 0.0);
  EXPECT_GT(armed.at("fault.backoff_steps"), 0.0);

  // Disarmed (p = 0): no fault.* metrics at all — trace bit-identity.
  const auto disarmed = run(0.0);
  for (const auto& [name, value] : disarmed)
    EXPECT_NE(name.rfind("fault.", 0), 0u) << name << " leaked when disarmed";
}

// ---------------------------------------------------------------------------
// (4) Cycle engine: stalls and drops delay, never corrupt.
// ---------------------------------------------------------------------------

struct CycleFixture {
  mesh::MeshShape shape{16};
  std::vector<std::int64_t> table, addr;

  CycleFixture() {
    const std::size_t p = shape.size();
    util::Rng rng(123);
    table.resize(p);
    addr.resize(p);
    for (std::size_t i = 0; i < p; ++i) {
      table[i] = static_cast<std::int64_t>(rng.uniform(1ull << 30));
      addr[i] = static_cast<std::int64_t>(rng.uniform(p));
    }
  }
};

TEST(FaultCycle, DisarmedPlanLeavesRarBitIdentical) {
  const CycleFixture fx;
  const auto bare =
      mesh::cycle_random_access_read(fx.shape, fx.table, fx.addr, 0);
  mesh::FaultPlan disarmed;
  const auto with = mesh::cycle_random_access_read(fx.shape, fx.table, fx.addr,
                                                   0, nullptr, &disarmed);
  EXPECT_EQ(bare.out, with.out);
  EXPECT_EQ(bare.steps, with.steps);
  EXPECT_EQ(disarmed.stats().detections, 0u);
}

TEST(FaultCycle, StallsAndDropsDelayButNeverCorrupt) {
  const CycleFixture fx;
  const auto oracle =
      mesh::cycle_random_access_read(fx.shape, fx.table, fx.addr, 0);
  mesh::FaultConfig cfg;
  cfg.seed = 7;
  cfg.p_stall = 0.01;
  cfg.p_drop = 0.01;
  mesh::FaultPlan plan(cfg);
  const auto faulty = mesh::cycle_random_access_read(fx.shape, fx.table,
                                                     fx.addr, 0, nullptr,
                                                     &plan);
  EXPECT_EQ(faulty.out, oracle.out);  // data bit-identical
  EXPECT_GE(faulty.steps, oracle.steps);
  const auto s = plan.stats();
  EXPECT_GT(s.injected_stalls, 0u);
  EXPECT_GT(s.injected_drops, 0u);
  EXPECT_GT(s.lockstep_retried_steps, 0u);  // shearsort/scan/broadcast hits
  EXPECT_GT(faulty.steps, oracle.steps);    // those retries are counted
}

TEST(FaultCycle, ArmedRarIsDeterministic) {
  const CycleFixture fx;
  auto run = [&] {
    mesh::FaultConfig cfg;
    cfg.seed = 17;
    cfg.p_stall = 0.02;
    cfg.p_drop = 0.02;
    mesh::FaultPlan plan(cfg);
    return mesh::cycle_random_access_read(fx.shape, fx.table, fx.addr, 0,
                                          nullptr, &plan);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.out, b.out);
  EXPECT_EQ(a.steps, b.steps);
}

TEST(FaultCycle, CorruptionIsDetectedRecoveredAndBitIdentical) {
  // End-to-end transport integrity: with p_corrupt armed, every corrupted
  // word is caught by its checksum and retransmitted — the delivered data
  // matches the fault-free oracle exactly, and the recovery shows up in the
  // corrupt counters and the step count. Silent corruption would surface as
  // an outcome mismatch here (or an IntegrityError at delivery).
  const CycleFixture fx;
  const auto oracle =
      mesh::cycle_random_access_read(fx.shape, fx.table, fx.addr, 0);
  mesh::FaultConfig cfg;
  cfg.seed = 29;
  cfg.p_corrupt = 0.02;
  mesh::FaultPlan plan(cfg);
  const auto faulty = mesh::cycle_random_access_read(fx.shape, fx.table,
                                                     fx.addr, 0, nullptr,
                                                     &plan);
  EXPECT_EQ(faulty.out, oracle.out);  // recovered, not approximated
  EXPECT_GT(faulty.steps, oracle.steps);
  const auto s = plan.stats();
  EXPECT_GT(s.corrupt_injected, 0u);
  EXPECT_EQ(s.corrupt_detected, s.corrupt_injected);  // nothing slips through
  EXPECT_GT(s.corrupt_recovered, 0u);
  EXPECT_GT(s.detections, 0u);
}

TEST(FaultCycle, ArmedCorruptionIsDeterministic) {
  const CycleFixture fx;
  auto run = [&] {
    mesh::FaultConfig cfg;
    cfg.seed = 31;
    cfg.p_corrupt = 0.03;
    mesh::FaultPlan plan(cfg);
    auto r = mesh::cycle_random_access_read(fx.shape, fx.table, fx.addr, 0,
                                            nullptr, &plan);
    return std::make_pair(r, plan.stats().corrupt_injected);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first.out, b.first.out);
  EXPECT_EQ(a.first.steps, b.first.steps);
  EXPECT_EQ(a.second, b.second);
}

TEST(FaultCycle, RawCorruptionSurvivesCombining) {
  const CycleFixture fx;
  std::vector<std::int64_t> value(fx.shape.size());
  for (std::size_t i = 0; i < value.size(); ++i)
    value[i] = static_cast<std::int64_t>(i % 11) + 1;
  const auto oracle =
      mesh::cycle_random_access_write(fx.shape, fx.table, fx.addr, value);
  mesh::FaultConfig cfg;
  cfg.seed = 37;
  cfg.p_corrupt = 0.02;
  mesh::FaultPlan plan(cfg);
  const auto faulty = mesh::cycle_random_access_write(fx.shape, fx.table,
                                                      fx.addr, value, nullptr,
                                                      &plan);
  EXPECT_EQ(faulty.table, oracle.table);
  EXPECT_GT(plan.stats().corrupt_injected, 0u);
}

TEST(FaultRecovery, CorruptionRecoversToFaultFreeOracleOnCountingEngine) {
  // Counting-engine corruption: the end-of-phase checksum audit catches a
  // corrupted phase and re-runs it, so the stream's final outcomes match
  // the fault-free oracle and the corrupt.* counters move.
  const Alg2Fixture fx;
  auto make_engine = [&](const mesh::CostModel& m) {
    return PreparedSearch(EngineKind::kAlg2Alpha, fx.tree.graph(),
                          fx.tree.alpha_splitting(), fx.tree.alpha_splitting(),
                          fx.tree.rank_count(), m, fx.shape);
  };
  const auto stream0 = fx.stream(3 * fx.shape.size() + 5);
  const RunRecord oracle =
      run_stream(make_engine, stream0, static_cast<mesh::FaultPlan*>(nullptr));
  mesh::FaultConfig cfg;
  cfg.seed = 41;
  cfg.p_corrupt = 0.25;
  mesh::FaultPlan plan(cfg);
  const RunRecord faulty = run_stream(make_engine, stream0, &plan);
  const auto s = plan.stats();
  ASSERT_GT(s.corrupt_injected, 0u) << "workload too small to draw";
  EXPECT_EQ(s.corrupt_detected, s.corrupt_injected);
  EXPECT_GT(s.phase_retries, 0u);  // corrupted phases were re-run
  EXPECT_TRUE(faulty.failed.empty());
  EXPECT_EQ(diff_outcomes(faulty.out, oracle.out), "");
  EXPECT_GT(faulty.cost.steps, oracle.cost.steps);
}

TEST(FaultStream, CorruptMetricsExportedWhenCorruptionArmed) {
  const Alg2Fixture fx;
  trace::TraceRecorder rec("counting");
  mesh::FaultConfig cfg;
  cfg.seed = 43;
  cfg.p_corrupt = 0.3;
  mesh::FaultPlan plan(cfg);
  mesh::CostModel m;
  m.trace = &rec;
  m.fault = &plan;
  PreparedSearch engine(EngineKind::kAlg2Alpha, fx.tree.graph(),
                        fx.tree.alpha_splitting(), fx.tree.alpha_splitting(),
                        fx.tree.rank_count(), m, fx.shape);
  auto stream = fx.stream(2 * fx.shape.size());
  StreamScheduler sched(engine, BatchPolicy{});
  sched.run(stream);
  std::map<std::string, double> metrics;
  for (const auto& mt : rec.metrics()) metrics[mt.name] = mt.value;
  ASSERT_EQ(metrics.count("fault.corrupt.injected"), 1u);
  ASSERT_EQ(metrics.count("fault.corrupt.detected"), 1u);
  ASSERT_EQ(metrics.count("fault.corrupt.recovered"), 1u);
  EXPECT_GT(metrics.at("fault.corrupt.injected"), 0.0);
  EXPECT_EQ(metrics.at("fault.corrupt.detected"),
            metrics.at("fault.corrupt.injected"));
  std::ostringstream trace_json, metrics_json;
  trace::write_trace_json(rec, trace_json);
  trace::write_metrics_json(rec, metrics_json);
  EXPECT_NE(trace_json.str().find("fault.corrupt.injected"),
            std::string::npos);
  EXPECT_NE(metrics_json.str().find("fault.corrupt.injected"),
            std::string::npos);
}

TEST(FaultCycle, LockstepPrimitivesSurviveCorruption) {
  // Shearsort / snake scan / broadcast run through the lockstep path, whose
  // corruption model retransmits within the step. The sorted output must be
  // exactly the fault-free one.
  const mesh::MeshShape shape(8);
  util::Rng rng(53);
  std::vector<std::int64_t> data(shape.size());
  for (auto& d : data) d = static_cast<std::int64_t>(rng.uniform(1u << 20));
  auto clean = mesh::Grid<std::int64_t>::from_snake(shape, data);
  const std::size_t clean_steps = clean.shearsort();
  mesh::FaultConfig cfg;
  cfg.seed = 59;
  cfg.p_corrupt = 0.01;
  mesh::FaultPlan plan(cfg);
  auto faulty = mesh::Grid<std::int64_t>::from_snake(shape, data);
  faulty.set_fault(&plan);
  const std::size_t faulty_steps = faulty.shearsort();
  EXPECT_EQ(faulty.to_snake(), clean.to_snake());
  EXPECT_GT(faulty_steps, clean_steps);
  EXPECT_GT(plan.stats().corrupt_injected, 0u);
}

TEST(FaultCycle, RawCombiningSurvivesInjection) {
  const CycleFixture fx;
  std::vector<std::int64_t> value(fx.shape.size());
  for (std::size_t i = 0; i < value.size(); ++i)
    value[i] = static_cast<std::int64_t>(i % 7) + 1;
  const auto oracle =
      mesh::cycle_random_access_write(fx.shape, fx.table, fx.addr, value);
  mesh::FaultConfig cfg;
  cfg.seed = 19;
  cfg.p_stall = 0.01;
  cfg.p_drop = 0.01;
  mesh::FaultPlan plan(cfg);
  const auto faulty = mesh::cycle_random_access_write(fx.shape, fx.table,
                                                      fx.addr, value, nullptr,
                                                      &plan);
  EXPECT_EQ(faulty.table, oracle.table);
  EXPECT_GE(faulty.steps, oracle.steps);
  EXPECT_GT(plan.stats().detections, 0u);
}

// ---------------------------------------------------------------------------
// Per-tenant fault isolation (src/service/): arming a FaultPlan on ONE
// tenant's stream degrades only that tenant — co-resident tenants sharing
// the same warm engine stay bit-identical to a fault-free service run.
// ---------------------------------------------------------------------------

TEST(FaultService, FaultPlanOnOneTenantIsolatesCoResidents) {
  const Alg2Fixture fx;
  const std::size_t cap = fx.shape.size();
  const auto faulty_qs = fx.stream(cap + cap / 2, /*seed=*/81);
  const auto clean_qs = fx.stream(cap + 13, /*seed=*/82);

  // One service run: pinned interleaved trace, optional fault on tenant A.
  struct ServiceRun {
    std::vector<QueryOutcome> faulty_out, clean_out;
    service::TenantReport faulty_rep, clean_rep;
  };
  const auto run = [&](mesh::FaultPlan* plan) {
    const mesh::CostModel m;
    auto engine = service::make_partitioned_engine(
        EngineKind::kAlg2Alpha, fx.tree.graph(), fx.tree.alpha_splitting(),
        fx.tree.alpha_splitting(), fx.tree.rank_count(), m, fx.shape);
    service::ServiceScheduler svc;
    service::TenantQuota quota;
    quota.max_outstanding = 8 * cap;
    service::TenantSession& faulty = svc.add_tenant("faulty", *engine, quota);
    service::TenantSession& clean = svc.add_tenant("clean", *engine, quota);
    faulty.set_fault(plan);
    const auto sf = faulty.submit(faulty_qs);
    const auto sc = clean.submit(clean_qs);
    svc.run_until_idle();
    ServiceRun out;
    for (auto k = sf.first; k < sf.first + sf.count; ++k) {
      const Query& q = faulty.result(k);
      out.faulty_out.push_back(QueryOutcome{q.steps, q.acc0, q.acc1, q.result});
    }
    for (auto k = sc.first; k < sc.first + sc.count; ++k) {
      const Query& q = clean.result(k);
      out.clean_out.push_back(QueryOutcome{q.steps, q.acc0, q.acc1, q.result});
    }
    out.faulty_rep = faulty.report();
    out.clean_rep = clean.report();
    return out;
  };

  const ServiceRun reference = run(nullptr);
  EXPECT_EQ(reference.faulty_rep.failed_queries, 0u);
  EXPECT_EQ(reference.clean_rep.failed_queries, 0u);

  mesh::FaultConfig cfg;
  cfg.seed = 17;
  cfg.p_phase = 1.0;  // every attempt of every phase fails: nothing survives
  mesh::FaultPlan plan(cfg);
  const ServiceRun faulted = run(&plan);

  // The faulty tenant's batches degrade: every query is REPORTED failed at
  // its pre-batch checkpoint (never a silent wrong answer), after visible
  // re-plan generations against its shrinking surviving capacity.
  EXPECT_EQ(faulted.faulty_rep.failed_queries, faulty_qs.size());
  EXPECT_EQ(faulted.faulty_rep.completed, 0u);
  EXPECT_GT(faulted.faulty_rep.degraded_batches, 0u);
  EXPECT_GT(faulted.faulty_rep.replans, 0u);
  EXPECT_EQ(diff_outcomes(faulted.faulty_out, outcomes(faulty_qs)), "");
  EXPECT_GT(plan.stats().exhausted, 0u);
  EXPECT_LT(plan.stats().capacity_factor, 1.0);

  // The co-resident tenant — SHARING the warm engine — is untouched:
  // bit-identical outcomes and charges vs the fault-free run, no failures.
  EXPECT_EQ(faulted.clean_rep.failed_queries, 0u);
  EXPECT_EQ(faulted.clean_rep.degraded_batches, 0u);
  EXPECT_EQ(faulted.clean_rep.completed, clean_qs.size());
  EXPECT_EQ(diff_outcomes(faulted.clean_out, reference.clean_out), "");
  EXPECT_EQ(faulted.clean_rep.charged().steps,
            reference.clean_rep.charged().steps);
}

TEST(FaultService, PerTenantFaultMetricsLandUnderTenantNamespace) {
  const Alg3Fixture fx;
  const std::size_t cap = fx.shape.size();
  const mesh::CostModel m;
  auto engine = service::make_partitioned_engine(
      EngineKind::kAlg3AlphaBeta, fx.tree.graph(), fx.s1, fx.s2,
      fx.tree.euler_scan(), m, fx.shape);
  trace::TraceRecorder rec("service");
  service::ServiceScheduler svc({}, &rec);
  service::TenantQuota quota;
  quota.max_outstanding = 8 * cap;
  service::TenantSession& faulty = svc.add_tenant("faulty", *engine, quota);
  service::TenantSession& clean = svc.add_tenant("clean", *engine, quota);
  mesh::FaultConfig cfg;
  cfg.seed = 23;
  cfg.p_phase = 0.5;  // retries happen, batches still (almost surely) survive
  mesh::FaultPlan plan(cfg);
  faulty.set_fault(&plan);
  faulty.submit(fx.stream(cap, 91));
  clean.submit(fx.stream(cap / 2, 92));
  svc.run_until_idle();
  svc.export_metrics();

  std::map<std::string, double> metrics;
  for (const auto& mt : rec.metrics()) metrics[mt.name] = mt.value;
  // The armed plan's family is namespaced under its tenant...
  ASSERT_TRUE(metrics.count("tenant.faulty.fault.phase_failures"));
  EXPECT_GT(metrics.at("tenant.faulty.fault.phase_failures"), 0.0);
  ASSERT_TRUE(metrics.count("tenant.faulty.fault.capacity_factor"));
  // ...the fault-free tenant exports no fault family at all...
  for (const auto& [name, value] : metrics)
    EXPECT_EQ(name.find("tenant.clean.fault."), std::string::npos) << name;
  // ...and nothing leaked into the global (unprefixed) fault namespace.
  EXPECT_EQ(metrics.count("fault.phase_failures"), 0u);
}

}  // namespace
