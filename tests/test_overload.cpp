// Overload-protection tests (src/service/): the circuit-breaker state
// machine (trip -> half-open probe -> recovery), deadline shedding with an
// oracle check that shed queries never reach an engine, backpressure with a
// structured retry-after hint, brownout deprioritization of over-target
// tenants, the shed-resolves-update-barrier invariant, and bit-identity of
// the whole overload pipeline at 1 vs 8 threads with the stats registry
// armed (MESHSEARCH_STATS=1 equivalent).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "mesh/fault.hpp"
#include "multisearch/query.hpp"
#include "multisearch/sequential.hpp"
#include "multisearch/stream.hpp"
#include "service/breaker.hpp"
#include "service/engine.hpp"
#include "service/scheduler.hpp"
#include "service/tenant.hpp"
#include "trace/stats.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"

namespace {

using namespace meshsearch;
using namespace meshsearch::msearch;
using namespace meshsearch::service;
using ds::KaryTree;
using ds::TreeMode;

// ---------------------------------------------------------------------------
// Shared fixture: one directed k-ary tree and a warm Alg2 engine over it,
// the same long-lived-structure pattern the service tests use.
// ---------------------------------------------------------------------------

struct TreeFixture {
  KaryTree tree;
  mesh::MeshShape shape;

  TreeFixture() : tree(ds::iota_keys(500), 3, TreeMode::kDirected),
                  shape(tree.graph().shape_for(tree.graph().vertex_count())) {}

  std::unique_ptr<Engine> make_engine(const mesh::CostModel& m) const {
    auto e = service::make_partitioned_engine(
        EngineKind::kAlg2Alpha, tree.graph(), tree.alpha_splitting(),
        tree.alpha_splitting(), tree.rank_count(), m, shape);
    e->set_dataset("books");
    return e;
  }

  std::vector<Query> stream(std::size_t m, std::uint64_t seed) const {
    util::Rng rng(seed);
    return ds::uniform_key_queries(m, 520, rng);
  }

  /// Queries with DISTINCT keys `first .. first + m - 1` (m + first <= 520),
  /// so a batch's contents are identifiable from the keys an engine saw.
  std::vector<Query> unique_stream(std::size_t m, std::int64_t first) const {
    auto qs = make_queries(m);
    for (std::size_t i = 0; i < m; ++i)
      qs[i].key[0] = first + static_cast<std::int64_t>(i);
    return qs;
  }

  /// Charged steps of one full warm batch — the virtual-time unit deadline
  /// and target policies are expressed in. Deterministic (a scratch engine
  /// run under a fresh model).
  double steps_per_batch() const {
    const mesh::CostModel m;
    auto scratch = make_engine(m);
    auto batch = stream(scratch->capacity(), /*seed=*/9);
    const BatchReport rep = scratch->run_batch(batch);
    return (rep.inject + rep.run).steps;
  }
};

/// Engine wrapper that records the key of every query actually dispatched
/// to run_batch — the oracle for "shed queries never reach an engine".
class RecordingEngine final : public Engine {
 public:
  explicit RecordingEngine(Engine& inner) : inner_(&inner) {}

  EngineKind kind() const override { return inner_->kind(); }
  std::size_t capacity() const override { return inner_->capacity(); }
  mesh::Cost setup_cost() const override { return inner_->setup_cost(); }
  std::size_t batches_served() const override {
    return inner_->batches_served();
  }
  const std::string& dataset() const override { return inner_->dataset(); }
  void set_dataset(std::string name) override {
    inner_->set_dataset(std::move(name));
  }
  std::uint64_t structure_generation() const override {
    return inner_->structure_generation();
  }
  std::uint64_t prepared_generation() const override {
    return inner_->prepared_generation();
  }
  bool stale() const override { return inner_->stale(); }
  std::size_t refreshes() const override { return inner_->refreshes(); }
  RefreshReport refresh(const RefreshRequest& req) override {
    return inner_->refresh(req);
  }
  void bind_sinks(trace::TraceRecorder* trace,
                  mesh::FaultPlan* fault) override {
    inner_->bind_sinks(trace, fault);
  }
  BatchReport run_batch(std::vector<Query>& batch) override {
    for (const auto& q : batch) dispatched_keys.insert(q.key[0]);
    return inner_->run_batch(batch);
  }

  std::set<std::int64_t> dispatched_keys;

 private:
  Engine* inner_;
};

// ---------------------------------------------------------------------------
// Circuit breaker: the state machine in isolation.
// ---------------------------------------------------------------------------

TEST(Breaker, StateMachineTripProbeRecovery) {
  CircuitBreaker br;
  br.configure(BreakerPolicy{/*failure_threshold=*/3});
  ASSERT_TRUE(br.enabled());
  EXPECT_EQ(br.state(), BreakerState::kClosed);

  // Two failures: streak grows, still closed; a success resets the streak.
  EXPECT_FALSE(br.record_failure(/*round=*/1));
  EXPECT_FALSE(br.record_failure(1));
  EXPECT_EQ(br.consecutive_failures(), 2u);
  EXPECT_FALSE(br.record_success());  // not a probe: no "recovery"
  EXPECT_EQ(br.consecutive_failures(), 0u);

  // Three consecutive failures trip it open.
  EXPECT_FALSE(br.record_failure(2));
  EXPECT_FALSE(br.record_failure(2));
  EXPECT_TRUE(br.record_failure(2));
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.counters().trips, 1u);

  // Same round: fail fast. Later round: the first admit IS the probe.
  EXPECT_THROW(br.admit(2, "books", "alg2-alpha"), CircuitOpenError);
  EXPECT_NO_THROW(br.admit(3, "books", "alg2-alpha"));
  EXPECT_EQ(br.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(br.counters().probes, 1u);

  // Failed probe re-trips immediately (no threshold wait)...
  EXPECT_TRUE(br.record_failure(3));
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  EXPECT_EQ(br.counters().trips, 2u);
  EXPECT_THROW(br.admit(3, "books", "alg2-alpha"), CircuitOpenError);

  // ...and the next round's probe can recover.
  EXPECT_NO_THROW(br.admit(4, "books", "alg2-alpha"));
  EXPECT_TRUE(br.record_success());
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  EXPECT_EQ(br.counters().recoveries, 1u);
  EXPECT_EQ(br.consecutive_failures(), 0u);

  // The typed error carries the engine identity and streak.
  br.record_failure(5);
  br.record_failure(5);
  br.record_failure(5);
  try {
    br.admit(5, "books", "alg2-alpha");
    FAIL() << "expected CircuitOpenError";
  } catch (const CircuitOpenError& e) {
    EXPECT_EQ(e.dataset(), "books");
    EXPECT_EQ(e.engine_kind(), "alg2-alpha");
    EXPECT_EQ(e.consecutive_failures(), 3u);
    EXPECT_EQ(e.context().phase, "breaker");
  }
}

TEST(Breaker, DisabledByDefaultNeverTrips) {
  CircuitBreaker br;
  EXPECT_FALSE(br.enabled());
  for (std::uint64_t r = 0; r < 64; ++r)
    EXPECT_FALSE(br.record_failure(r));
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  EXPECT_NO_THROW(br.admit(99, "books", "alg2-alpha"));
  EXPECT_EQ(br.counters().trips, 0u);
}

// ---------------------------------------------------------------------------
// Breaker in the service: trip on a failing tenant, fail co-resident work
// fast with zero charge, probe and recover once the engine heals.
// ---------------------------------------------------------------------------

TEST(Breaker, ServiceTripsFailsFastAndRecovers) {
  const TreeFixture fx;
  const std::size_t cap = fx.shape.size();
  trace::TraceRecorder rec("counting");
  mesh::CostModel m;
  m.trace = &rec;
  auto engine = fx.make_engine(m);
  engine->breaker().configure(BreakerPolicy{/*failure_threshold=*/1});

  ServiceScheduler svc({}, &rec);
  TenantQuota quota;
  quota.max_outstanding = 16 * cap;
  TenantSession& sick = svc.add_tenant("sick", *engine, quota);
  TenantSession& bystander = svc.add_tenant("bystander", *engine, quota);

  // Every one of sick's attempts faults with no retries and no replans:
  // each dispatch resolves its queries kFailed and feeds the breaker one
  // failure.
  mesh::FaultConfig cfg;
  cfg.seed = 17;
  cfg.p_phase = 1.0;
  cfg.max_retries = 0;
  cfg.max_replans = 0;
  mesh::FaultPlan plan(cfg);
  sick.set_fault(&plan);

  // Both streams fit one DRR quantum (= capacity), so one pump round
  // resolves each tenant's whole queue.
  const auto sick_qs = fx.stream(cap / 2, 41);
  const auto by_qs = fx.stream(cap / 2 + 7, 42);
  sick.submit(sick_qs);
  bystander.submit(by_qs);

  // Round 1: sick dispatches first (registration order), fails, trips the
  // breaker (threshold 1). Bystander's turn is in the SAME round, so its
  // dispatches hit the open breaker and fail fast — reported, zero charge.
  const double clock_before = svc.now_steps();
  svc.pump();
  const TenantReport by1 = bystander.report();
  EXPECT_EQ(engine->breaker().state(), BreakerState::kOpen);
  EXPECT_GE(engine->breaker().counters().trips, 1u);
  EXPECT_EQ(by1.failed_queries, by_qs.size());
  EXPECT_EQ(by1.failed_fast, by_qs.size());
  EXPECT_EQ(by1.completed, 0u);
  // Fail-fast charged nothing on bystander's behalf; the only clock motion
  // was sick's failed attempt (a failed attempt advances nothing either).
  EXPECT_EQ(by1.charged().steps, 0.0);
  EXPECT_EQ(svc.now_steps(), clock_before);
  // Fail-fast batches are not real attempts: batches_ counts dispatches.
  EXPECT_EQ(by1.batches, 0u);

  // The engine heals (fault disarmed). The next round's first dispatch is
  // the half-open probe; it succeeds and the breaker recovers.
  sick.set_fault(nullptr);
  const auto sick_qs2 = fx.stream(cap / 4, 43);
  const Submission s2 = sick.submit(sick_qs2);
  svc.run_until_idle();
  EXPECT_EQ(engine->breaker().state(), BreakerState::kClosed);
  EXPECT_GE(engine->breaker().counters().probes, 1u);
  EXPECT_GE(engine->breaker().counters().recoveries, 1u);
  // The probe's queries were REALLY answered — oracle check.
  auto expect = sick_qs2;
  sequential_multisearch(fx.tree.graph(), fx.tree.rank_count(), expect);
  std::vector<Query> got;
  for (Ticket k = s2.first; k < s2.first + s2.count; ++k)
    got.push_back(sick.result(k));
  EXPECT_EQ(diff_outcomes(outcomes(got), outcomes(expect)), "");

  // Both exporters carry the breaker family.
  svc.export_metrics();
  std::map<std::string, double> metrics;
  for (const auto& mt : rec.metrics()) metrics[mt.name] = mt.value;
  ASSERT_EQ(metrics.count("service.breaker.books_alg2-alpha.trips"), 1u);
  EXPECT_GE(metrics.at("service.breaker.books_alg2-alpha.trips"), 1.0);
  EXPECT_GE(metrics.at("service.breaker.books_alg2-alpha.recoveries"), 1.0);
  EXPECT_EQ(metrics.at("service.breaker.books_alg2-alpha.fail_fast_queries"),
            static_cast<double>(by_qs.size()));
  EXPECT_EQ(metrics.at("service.breaker.books_alg2-alpha.open"), 0.0);
  EXPECT_EQ(metrics.at("tenant.bystander.failed_fast"),
            static_cast<double>(by_qs.size()));
}

// ---------------------------------------------------------------------------
// Deadline shedding: expired queries resolve kShed BEFORE dispatch and
// never reach an engine (oracle via RecordingEngine); result() throws the
// typed error; completion callbacks fire with shed=true.
// ---------------------------------------------------------------------------

TEST(Overload, DeadlineShedsBeforeDispatchOracle) {
  const TreeFixture fx;
  const double spb = fx.steps_per_batch();
  const mesh::CostModel m;
  auto inner = fx.make_engine(m);
  RecordingEngine engine(*inner);

  ServiceScheduler svc;
  TenantQuota quota;
  quota.max_outstanding = 4096;
  SloPolicy slo;
  slo.deadline_steps = 2 * spb;
  slo.shed_mode = ShedMode::kDeadline;
  TenantSession& t = svc.add_tenant("acme", engine, quota, slo);

  std::vector<CompletionEvent> events;
  t.on_complete([&](const CompletionEvent& ev) { events.push_back(ev); });

  // Wave 1 (keys 0..259) is served promptly: nothing sheds.
  const auto wave1 = fx.unique_stream(260, /*first=*/0);
  const Submission s1 = t.submit(wave1);
  svc.run_until_idle();
  EXPECT_EQ(t.report().shed, 0u);

  // Wave 2 (keys 260..519) queues, then the clock jumps past its deadline
  // before any dispatch opportunity: every query sheds, none is served.
  const auto wave2 = fx.unique_stream(260, /*first=*/260);
  const Submission s2 = t.submit(wave2);
  svc.advance_clock_to(svc.now_steps() + slo.deadline_steps + 1.0);
  svc.run_until_idle();

  const TenantReport rep = t.report();
  EXPECT_EQ(rep.completed, wave1.size());
  EXPECT_EQ(rep.shed, wave2.size());
  EXPECT_EQ(rep.failed_queries, 0u);  // shed is disjoint from failed
  EXPECT_EQ(rep.outstanding, 0u);

  // Oracle: no shed key was ever handed to run_batch.
  for (const auto& q : wave2)
    EXPECT_EQ(engine.dispatched_keys.count(q.key[0]), 0u)
        << "shed query with key " << q.key[0] << " reached the engine";
  for (const auto& q : wave1)
    EXPECT_EQ(engine.dispatched_keys.count(q.key[0]), 1u);

  // Ticket state machine and the typed error.
  for (Ticket k = s1.first; k < s1.first + s1.count; ++k)
    EXPECT_EQ(t.poll(k), QueryState::kDone);
  for (Ticket k = s2.first; k < s2.first + s2.count; ++k) {
    ASSERT_EQ(t.poll(k), QueryState::kShed);
    try {
      (void)t.result(k);
      FAIL() << "expected DeadlineExceededError for shed ticket " << k;
    } catch (const DeadlineExceededError& e) {
      EXPECT_EQ(e.tenant(), "acme");
      EXPECT_EQ(e.dataset(), "books");
      EXPECT_EQ(e.deadline_steps(), slo.deadline_steps);
      EXPECT_GT(e.shed_steps() - e.admitted_steps(), e.deadline_steps());
    }
  }

  // Callbacks: one per query, shed flags exactly on wave 2.
  ASSERT_EQ(events.size(), wave1.size() + wave2.size());
  std::size_t shed_events = 0;
  for (const auto& ev : events) {
    if (ev.shed) ++shed_events;
    EXPECT_EQ(ev.shed, ev.ticket >= s2.first);
    EXPECT_FALSE(ev.failed);
  }
  EXPECT_EQ(shed_events, wave2.size());
}

TEST(Overload, ShedQueriesResolveUpdateBarrier) {
  // An update whose barrier covers only-shed queries must still apply —
  // shed counts as resolved, else the update queue would wedge.
  TreeFixture fx;
  const double spb = fx.steps_per_batch();
  const mesh::CostModel m;
  auto engine = fx.make_engine(m);
  ServiceScheduler svc;
  TenantQuota quota;
  quota.max_outstanding = 4096;
  SloPolicy slo;
  slo.deadline_steps = spb;
  slo.shed_mode = ShedMode::kDeadline;
  TenantSession& t = svc.add_tenant("acme", *engine, quota, slo);

  t.submit(fx.stream(64, 51));
  t.submit_update([&fx] {
    RefreshRequest req;
    req.delta = fx.tree.apply_updates({ds::WeightedKey{700, 1}}, {});
    return req;
  });
  // Everything queued before the update expires before it can run.
  svc.advance_clock_to(svc.now_steps() + slo.deadline_steps + 1.0);
  svc.run_until_idle();
  EXPECT_EQ(t.updates_applied(), 1u);
  EXPECT_EQ(t.report().shed, 64u);
  EXPECT_TRUE(svc.idle());
}

// ---------------------------------------------------------------------------
// Backpressure: submit past max_queue rejects the whole call with a typed
// error carrying a deterministic retry-after hint; nothing is enqueued.
// ---------------------------------------------------------------------------

TEST(Overload, BackpressureRejectsWithRetryAfterHint) {
  const TreeFixture fx;
  const mesh::CostModel m;
  auto engine = fx.make_engine(m);
  ServiceScheduler svc;
  TenantQuota quota;
  quota.max_outstanding = 4096;
  SloPolicy slo;
  slo.max_queue = 10;
  TenantSession& t = svc.add_tenant("acme", *engine, quota, slo);

  const Submission ok = t.submit(fx.stream(8, 61));
  EXPECT_EQ(ok.count, 8u);
  EXPECT_EQ(t.queued(), 8u);

  const auto refused = fx.stream(5, 62);
  try {
    t.submit(refused);
    FAIL() << "expected BackpressureError";
  } catch (const BackpressureError& e) {
    EXPECT_EQ(e.queued(), 8u);
    EXPECT_EQ(e.max_queue(), 10u);
    EXPECT_GT(e.retry_after_steps(), 0.0);
    EXPECT_EQ(e.context().site, "acme");
  }
  // All-or-nothing: the refused call enqueued nothing, and the hint is a
  // CapacityError (retryable) for callers catching the base class.
  EXPECT_EQ(t.queued(), 8u);
  EXPECT_THROW(t.submit(refused), CapacityError);

  const TenantReport rep = t.report();
  EXPECT_EQ(rep.rejected_submissions, 2u);
  EXPECT_EQ(rep.rejected_queries, 10u);
  EXPECT_EQ(rep.rejected_backpressure, 10u);

  // The admitted work drains normally, after which the same call fits.
  svc.run_until_idle();
  EXPECT_EQ(t.submit(refused).count, 5u);
  svc.run_until_idle();
  EXPECT_EQ(t.report().completed, 13u);
}

// ---------------------------------------------------------------------------
// Brownout: with the service over its backlog watermark, a flooding tenant
// whose latency p99 exceeds its target loses quantum; the under-target
// tenant keeps its share and its p99 stays inside policy while the flooder
// sheds.
// ---------------------------------------------------------------------------

TEST(Overload, BrownoutDeprioritizesOverTargetTenantOnly) {
  const TreeFixture fx;
  const std::size_t cap = fx.shape.size();
  const double spb = fx.steps_per_batch();
  const mesh::CostModel m;
  auto engine = fx.make_engine(m);

  ServiceConfig cfg;
  cfg.brownout.watermark_queries = cap;  // any real backlog is "over"
  cfg.brownout.quantum_scale = 0.25;
  ServiceScheduler svc(cfg);
  TenantQuota quota;
  quota.max_outstanding = 1u << 20;

  SloPolicy flood_slo;
  flood_slo.deadline_steps = 4 * spb;
  flood_slo.p99_target_steps = 1e-3;  // over target after its first batch
  flood_slo.shed_mode = ShedMode::kDeadline;
  SloPolicy light_slo;
  light_slo.p99_target_steps = 10 * spb;
  TenantSession& flood = svc.add_tenant("flood", *engine, quota, flood_slo);
  TenantSession& light = svc.add_tenant("light", *engine, quota, light_slo);

  // Open loop: each round the flooder offers 4x capacity, the light tenant
  // a sliver. The backlog keeps the service in brownout throughout.
  for (std::uint64_t i = 0; i < 12; ++i) {
    flood.submit(fx.stream(4 * cap, 100 + i));
    light.submit(fx.stream(cap / 8, 200 + i));
    svc.pump();
  }
  svc.run_until_idle();

  const TenantReport frep = flood.report();
  const TenantReport lrep = light.report();
  EXPECT_GT(svc.brownout_rounds(), 0u);
  EXPECT_GT(frep.brownout_deprioritized, 0u);
  EXPECT_EQ(lrep.brownout_deprioritized, 0u);  // never over ITS target
  // The flooder pays: deadline shedding keeps its queue finite.
  EXPECT_GT(frep.shed, 0u);
  // The light tenant is protected: everything served, nothing shed, and its
  // admitted p99 stays inside its own policy target.
  EXPECT_EQ(lrep.shed, 0u);
  EXPECT_EQ(lrep.completed, lrep.submitted);
  EXPECT_LE(lrep.latency_steps.p99(), light_slo.p99_target_steps);
  // Conservation per tenant: completed + shed + failed == submitted.
  EXPECT_EQ(frep.completed + frep.shed + frep.failed_queries, frep.submitted);
  EXPECT_EQ(lrep.completed + lrep.shed + lrep.failed_queries, lrep.submitted);
}

// ---------------------------------------------------------------------------
// Determinism: the full overload pipeline — shedding, backpressure,
// breaker trips/probes, brownout — is a function of the submit/pump
// sequence alone. 1 vs 8 threads, stats registry off and armed.
// ---------------------------------------------------------------------------

TEST(Overload, OverloadPipelineBitIdenticalAcrossThreadsAndStats) {
  const TreeFixture fx;
  const std::size_t cap = fx.shape.size();
  const double spb = fx.steps_per_batch();

  struct Record {
    std::vector<QueryOutcome> out;  ///< sentinel rows for shed/failed
    double clock_steps = 0;
    std::uint64_t brownout_rounds = 0;
    std::map<std::string, double> metrics;
  };
  const auto run = [&] {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    auto engine = fx.make_engine(m);
    // Threshold 1: the breaker is per ENGINE and bolt's successful batches
    // (same engine, fault-free) reset the streak between acme's faulted
    // turns, so a higher threshold never trips on a tenant-scoped fault.
    engine->breaker().configure(BreakerPolicy{/*failure_threshold=*/1});
    ServiceConfig cfg;
    cfg.brownout.watermark_queries = cap;
    ServiceScheduler svc(cfg, &rec);
    TenantQuota quota;
    quota.max_outstanding = 1u << 20;
    SloPolicy aslo;
    aslo.deadline_steps = 2 * spb;
    aslo.p99_target_steps = 1e-3;
    aslo.max_queue = 6 * cap;
    aslo.shed_mode = ShedMode::kDeadline;
    SloPolicy bslo;
    bslo.p99_target_steps = 12 * spb;
    TenantSession& a = svc.add_tenant("acme", *engine, quota, aslo);
    TenantSession& b = svc.add_tenant("bolt", *engine, quota, bslo);

    // Faults on acme trip the breaker mid-trace; the plan is rebuilt per
    // run from the same config, so the fault schedule is pinned too.
    mesh::FaultConfig fcfg;
    fcfg.seed = 29;
    fcfg.p_phase = 1.0;
    fcfg.max_retries = 0;
    fcfg.max_replans = 0;
    mesh::FaultPlan plan(fcfg);

    std::size_t backpressured = 0;
    const auto offer = [&](TenantSession& t, std::vector<Query> qs) {
      try {
        t.submit(std::move(qs));
      } catch (const BackpressureError&) {
        ++backpressured;
      }
    };
    for (std::uint64_t i = 0; i < 6; ++i) {
      offer(a, fx.stream(3 * cap, 300 + i));
      offer(b, fx.stream(cap / 4, 400 + i));
      if (i == 2) a.set_fault(&plan);   // breaker trips here...
      if (i == 4) a.set_fault(nullptr); // ...and recovers via probe here
      svc.pump();
    }
    svc.run_until_idle();
    svc.export_metrics();

    Record r;
    for (const TenantSession* t : {&a, &b})
      for (Ticket k = 0; k < t->submitted(); ++k) {
        if (t->poll(k) == QueryState::kDone) {
          const Query& q = t->result(k);
          r.out.push_back(QueryOutcome{q.steps, q.acc0, q.acc1, q.result});
        } else {
          // kShed/kFailed have no answer; pin WHICH state as a sentinel.
          const auto s = static_cast<std::int32_t>(t->poll(k));
          r.out.push_back(QueryOutcome{-s, -1, -1, -1});
        }
      }
    r.clock_steps = svc.now_steps();
    r.brownout_rounds = svc.brownout_rounds();
    for (const auto& mt : rec.metrics()) r.metrics[mt.name] = mt.value;
    r.metrics["harness.backpressured"] = static_cast<double>(backpressured);
    return r;
  };

  util::ThreadPool::set_global_threads(1);
  const Record serial = run();
  util::ThreadPool::set_global_threads(8);
  const Record parallel = run();
  auto& registry = stats::StatsRegistry::global();
  const bool stats_were_enabled = registry.enabled();
  registry.set_enabled(true);  // what MESHSEARCH_STATS=1 does
  const Record stats_on = run();
  registry.set_enabled(stats_were_enabled);
  util::ThreadPool::set_global_threads(0);

  for (const Record* other : {&parallel, &stats_on}) {
    EXPECT_EQ(diff_outcomes(serial.out, other->out), "");
    EXPECT_EQ(serial.clock_steps, other->clock_steps);  // exact
    EXPECT_EQ(serial.brownout_rounds, other->brownout_rounds);
    EXPECT_EQ(serial.metrics.size(), other->metrics.size());
    EXPECT_TRUE(serial.metrics == other->metrics)
        << "overload metrics diverged across thread counts / stats mode";
  }
  // Sanity: the pinned trace really exercised every mechanism.
  EXPECT_GT(serial.metrics.at("tenant.acme.shed"), 0.0);
  EXPECT_GT(serial.metrics.at("service.breaker.books_alg2-alpha.trips"), 0.0);
  EXPECT_GT(serial.metrics.at("service.breaker.books_alg2-alpha.recoveries"),
            0.0);
  EXPECT_GT(serial.metrics.at("service.brownout_rounds"), 0.0);
  EXPECT_GT(serial.metrics.at("tenant.bolt.completed"), 0.0);
}

// ---------------------------------------------------------------------------
// BatchSource::pop_expired: exact prefix popping across batch boundaries,
// partial fronts, and the pending-queries invariant.
// ---------------------------------------------------------------------------

TEST(Overload, PopExpiredTakesPrefixAcrossBatches) {
  BatchSource src;
  src.enqueue({0, 1, 2});
  src.enqueue({3, 4});
  src.enqueue({5, 6, 7});
  ASSERT_EQ(src.pending_queries(), 8u);

  // Expire positions < 4: spans all of batch 0 and half of batch 1.
  const auto first = src.pop_expired([](std::uint32_t i) { return i < 4; });
  EXPECT_EQ(first, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(src.pending_queries(), 4u);
  EXPECT_EQ(src.pending_batches(), 2u);  // batch 0 dropped, batch 1 trimmed

  // Nothing expired: a no-op that touches nothing.
  const auto none = src.pop_expired([](std::uint32_t) { return false; });
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(src.pending_queries(), 4u);

  // The predicate only sees the prefix: position 4 is live, so 5..7 are
  // never consulted even if "expired" (admission order guarantees they are
  // younger — the service's deadline predicate is monotone).
  const auto stop = src.pop_expired([](std::uint32_t i) { return i >= 5; });
  EXPECT_TRUE(stop.empty());

  // Everything expired drains the source.
  const auto rest = src.pop_expired([](std::uint32_t) { return true; });
  EXPECT_EQ(rest, (std::vector<std::uint32_t>{4, 5, 6, 7}));
  EXPECT_TRUE(src.empty());
  EXPECT_EQ(src.pending_queries(), 0u);
}

}  // namespace
