// Application-layer tests: k-ary trees (construction invariants and all
// three programs) and interval trees (structure, stabbing, splittings,
// counting reduction) — paper §6.
#include <gtest/gtest.h>

#include <algorithm>

#include "datastruct/interval_tree.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "multisearch/partitioned.hpp"
#include "multisearch/query.hpp"
#include "multisearch/sequential.hpp"

namespace {

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::Interval;
using ds::IntervalTree;
using ds::KaryTree;
using ds::TreeMode;

// ---------------------------------------------------------------------------
// k-ary tree construction
// ---------------------------------------------------------------------------

TEST(KaryTree, StructureInvariants) {
  for (unsigned k : {2u, 3u, 5u, 6u}) {
    KaryTree tree(ds::iota_keys(37), k, TreeMode::kUndirected);
    const auto& g = tree.graph();
    EXPECT_EQ(g.vert(tree.root()).level, 0);
    std::size_t leaves = 0;
    for (const auto& v : g.verts()) {
      if (v.key[6] == 0) {
        ++leaves;
        EXPECT_EQ(v.level, tree.height());
      } else {
        EXPECT_EQ(static_cast<unsigned>(v.key[6]), k);
      }
    }
    EXPECT_EQ(leaves, tree.leaf_count());
    EXPECT_GE(tree.leaf_count(), 37u);
    EXPECT_LT(tree.leaf_count(), 37u * k);
    // Undirected: max degree k+1 (children + parent).
    EXPECT_LE(g.max_degree(), k + 1);
  }
}

TEST(KaryTree, RejectsBadInput) {
  EXPECT_THROW(KaryTree({}, 2, TreeMode::kDirected), std::logic_error);
  EXPECT_THROW(KaryTree(ds::iota_keys(4), 1, TreeMode::kDirected),
               std::logic_error);
  EXPECT_THROW(KaryTree(ds::iota_keys(4), 7, TreeMode::kDirected),
               std::logic_error);
  std::vector<ds::WeightedKey> dup{{1, 1}, {1, 1}};
  EXPECT_THROW(KaryTree(dup, 2, TreeMode::kDirected), std::logic_error);
}

TEST(KaryTree, SingleKeyDegenerate) {
  KaryTree tree(ds::iota_keys(1), 2, TreeMode::kDirected);
  EXPECT_EQ(tree.height(), 0);
  auto qs = make_queries(3);
  qs[0].key[0] = -5;
  qs[1].key[0] = 0;
  qs[2].key[0] = 99;
  sequential_multisearch(tree.graph(), tree.predecessor_search(), qs);
  EXPECT_EQ(qs[0].acc0, std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(qs[1].acc0, 0);
  EXPECT_EQ(qs[2].acc0, 0);
}

TEST(KaryTree, PredecessorAgainstBinarySearch) {
  util::Rng rng(42);
  std::vector<ds::WeightedKey> keys;
  std::int64_t cur = 0;
  for (int i = 0; i < 300; ++i) {
    cur += 1 + static_cast<std::int64_t>(rng.uniform(10));
    keys.push_back({cur, 1});
  }
  KaryTree tree(keys, 4, TreeMode::kDirected);
  auto qs = make_queries(500);
  for (auto& q : qs)
    q.key[0] = static_cast<std::int64_t>(rng.uniform(static_cast<std::uint64_t>(cur + 50)));
  sequential_multisearch(tree.graph(), tree.predecessor_search(), qs);
  for (const auto& q : qs) {
    auto it = std::upper_bound(
        keys.begin(), keys.end(), q.key[0],
        [](std::int64_t x, const ds::WeightedKey& w) { return x < w.key; });
    const std::int64_t expect = it == keys.begin()
                                    ? std::numeric_limits<std::int64_t>::min()
                                    : std::prev(it)->key;
    EXPECT_EQ(q.acc0, expect) << "x=" << q.key[0];
  }
}

TEST(KaryTree, RankWithWeights) {
  util::Rng rng(43);
  std::vector<ds::WeightedKey> keys;
  for (int i = 0; i < 200; ++i)
    keys.push_back({2 * i, 1 + static_cast<std::int64_t>(rng.uniform(5))});
  KaryTree tree(keys, 3, TreeMode::kDirected);
  auto qs = make_queries(300);
  for (auto& q : qs) q.key[0] = rng.uniform_range(-5, 405);
  sequential_multisearch(tree.graph(), tree.rank_count(), qs);
  for (const auto& q : qs) {
    std::int64_t expect = 0;
    for (const auto& w : keys)
      if (w.key <= q.key[0]) expect += w.weight;
    EXPECT_EQ(q.acc0, expect) << "x=" << q.key[0];
  }
}

TEST(KaryTree, EulerScanChecksumIsOrderFree) {
  KaryTree tree(ds::iota_keys(50), 2, TreeMode::kUndirected);
  auto qs = make_queries(2);
  qs[0].key[0] = 10;
  qs[0].key[1] = 20;
  qs[1].key[0] = 10;
  qs[1].key[1] = 20;
  sequential_multisearch(tree.graph(), tree.euler_scan(), qs);
  EXPECT_EQ(qs[0].acc0, 11);
  EXPECT_EQ(qs[0].acc1, qs[1].acc1);
  EXPECT_NE(qs[0].acc1, 0);
}

TEST(KaryTree, EulerScanEmptyRange) {
  KaryTree tree(ds::iota_keys(64), 2, TreeMode::kUndirected);
  auto qs = make_queries(2);
  qs[0].key[0] = 100;  // beyond all keys
  qs[0].key[1] = 200;
  qs[1].key[0] = 20;   // inverted range
  qs[1].key[1] = 10;
  sequential_multisearch(tree.graph(), tree.euler_scan(), qs);
  EXPECT_EQ(qs[0].acc0, 0);
  EXPECT_EQ(qs[1].acc0, 0);
}

// ---------------------------------------------------------------------------
// interval tree
// ---------------------------------------------------------------------------

std::vector<Interval> random_intervals(std::size_t n, std::int64_t span,
                                       std::int64_t max_len, util::Rng& rng) {
  std::vector<Interval> ivs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t lo = rng.uniform_range(0, span);
    ivs[i] = Interval{lo, lo + rng.uniform_range(0, max_len),
                      static_cast<std::int32_t>(i)};
  }
  return ivs;
}

TEST(IntervalTree, StructureCounts) {
  util::Rng rng(1);
  const auto ivs = random_intervals(100, 1000, 50, rng);
  IntervalTree t(ivs);
  EXPECT_EQ(t.interval_count(), 100u);
  // Every interval appears in exactly two chains.
  EXPECT_EQ(t.chain_node_count(), 200u);
  EXPECT_LE(t.graph().max_degree(), msearch::kMaxDegree);
  t.graph().validate();
}

TEST(IntervalTree, StabbingSingleInterval) {
  IntervalTree t({{10, 20, 0}});
  auto qs = make_queries(4);
  qs[0].key[0] = 5;
  qs[1].key[0] = 10;
  qs[2].key[0] = 15;
  qs[3].key[0] = 21;
  sequential_multisearch(t.graph(), t.stabbing_program(), qs);
  EXPECT_EQ(qs[0].acc0, 0);
  EXPECT_EQ(qs[1].acc0, 1);
  EXPECT_EQ(qs[2].acc0, 1);
  EXPECT_EQ(qs[3].acc0, 0);
}

TEST(IntervalTree, StabbingPointIntervals) {
  IntervalTree t({{5, 5, 0}, {5, 5, 1}, {7, 7, 2}});
  auto qs = make_queries(3);
  qs[0].key[0] = 5;
  qs[1].key[0] = 6;
  qs[2].key[0] = 7;
  sequential_multisearch(t.graph(), t.stabbing_program(), qs);
  EXPECT_EQ(qs[0].acc0, 2);
  EXPECT_EQ(qs[1].acc0, 0);
  EXPECT_EQ(qs[2].acc0, 1);
}

class IntervalStabTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IntervalStabTest, MatchesOracle) {
  const auto [n, max_len] = GetParam();
  util::Rng rng(50 + n + max_len);
  const auto ivs = random_intervals(static_cast<std::size_t>(n), 500,
                                    max_len, rng);
  IntervalTree t(ivs);
  auto qs = make_queries(200);
  for (auto& q : qs) q.key[0] = rng.uniform_range(-10, 600);
  sequential_multisearch(t.graph(), t.stabbing_program(), qs);
  for (const auto& q : qs) {
    const auto [cnt, sum] = IntervalTree::stab_oracle(ivs, q.key[0]);
    EXPECT_EQ(q.acc0, cnt) << "x=" << q.key[0];
    EXPECT_EQ(q.acc1, sum) << "x=" << q.key[0];
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, IntervalStabTest,
    ::testing::Combine(::testing::Values(1, 7, 50, 300),
                       ::testing::Values(0, 5, 100, 600)));

TEST(IntervalTree, StabbingViaAlgorithm3) {
  util::Rng rng(77);
  const auto ivs = random_intervals(400, 2000, 80, rng);
  IntervalTree t(ivs);
  auto qs = make_queries(400);
  for (auto& q : qs) q.key[0] = rng.uniform_range(0, 2100);
  auto qseq = qs;
  sequential_multisearch(t.graph(), t.stabbing_program(), qseq);
  auto qalg = qs;
  const mesh::CostModel m;
  const auto shape = t.graph().shape_for(qalg.size());
  const auto [s1, s2] = t.alpha_beta_splittings();
  validate_splitting(t.graph(), s1);
  validate_splitting(t.graph(), s2);
  const auto res = multisearch_alpha_beta(t.graph(), s1, s2,
                                          t.stabbing_program(), qalg, m, shape);
  EXPECT_EQ(diff_outcomes(outcomes(qseq), outcomes(qalg)), "");
  EXPECT_GE(res.log_phases, 1u);
}

TEST(IntervalTree, SplittingPieceSizesAreSubLinear) {
  util::Rng rng(78);
  // Adversarial-ish: all intervals straddle the same midpoint => one node
  // owns every chain.
  std::vector<Interval> ivs;
  for (int i = 0; i < 500; ++i)
    ivs.push_back({500 - i, 500 + i, i});
  IntervalTree t(ivs);
  const auto [s1, s2] = t.alpha_beta_splittings();
  const double n = static_cast<double>(t.graph().vertex_count());
  // S1 cuts chains into sqrt(n) segments: max piece O(sqrt n).
  EXPECT_LE(static_cast<double>(max_piece_size(s1)), 4.0 * std::sqrt(n) + 64);
  // S2 attaches half-period prefixes; still far below n.
  EXPECT_LE(static_cast<double>(max_piece_size(s2)), n / 2);
}

// ---------------------------------------------------------------------------
// §6: multiple interval intersection *counting* via two rank trees
// ---------------------------------------------------------------------------

TEST(IntervalCounting, RankReductionMatchesOracle) {
  util::Rng rng(79);
  const auto ivs = random_intervals(300, 1000, 60, rng);
  // Trees over left and right endpoints (with multiplicity as weight).
  auto build_endpoint_tree = [&](bool left) {
    std::vector<std::int64_t> pts;
    for (const auto& iv : ivs) pts.push_back(left ? iv.lo : iv.hi);
    std::sort(pts.begin(), pts.end());
    std::vector<ds::WeightedKey> keys;
    for (const auto p : pts) {
      if (!keys.empty() && keys.back().key == p)
        ++keys.back().weight;
      else
        keys.push_back({p, 1});
    }
    return KaryTree(keys, 4, TreeMode::kDirected);
  };
  const KaryTree ltree = build_endpoint_tree(true);
  const KaryTree rtree = build_endpoint_tree(false);
  // 200 intersection queries [a, b].
  util::Rng qrng(80);
  auto qa = make_queries(200);
  auto qb = make_queries(200);
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
  for (std::size_t i = 0; i < qa.size(); ++i) {
    const std::int64_t a = qrng.uniform_range(0, 1100);
    const std::int64_t b = a + qrng.uniform_range(0, 200);
    ranges.emplace_back(a, b);
    qa[i].key[0] = a - 1;  // rank of a-1 among right endpoints: r_i < a
    qb[i].key[0] = b;      // rank of b among left endpoints: l_i <= b
  }
  sequential_multisearch(rtree.graph(), rtree.rank_count(), qa);
  sequential_multisearch(ltree.graph(), ltree.rank_count(), qb);
  const auto n = static_cast<std::int64_t>(ivs.size());
  for (std::size_t i = 0; i < qa.size(); ++i) {
    // |{intersecting [a,b]}| = n - |{r < a}| - |{l > b}|.
    const std::int64_t got = n - qa[i].acc0 - (n - qb[i].acc0);
    EXPECT_EQ(got, ds::intersect_count_oracle(ivs, ranges[i].first,
                                              ranges[i].second))
        << "[a,b]=[" << ranges[i].first << "," << ranges[i].second << "]";
  }
}

}  // namespace
