// Streaming batch scheduler tests (stream.hpp): oracle agreement per batch,
// permutation invariance of the stream, warm-vs-cold bit-identity of batch
// costs, the naive re-setup baseline losing at m/n >= 4, batch planning
// properties, trace metrics, and the 1-vs-8-thread determinism contract of
// DESIGN.md §5.6 extended to StreamScheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>
#include <vector>

#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "multisearch/query.hpp"
#include "multisearch/sequential.hpp"
#include "multisearch/setup.hpp"
#include "multisearch/stream.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"

namespace {

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::KaryTree;
using ds::TreeMode;

// ---------------------------------------------------------------------------
// Workload fixtures: one long-lived structure per engine kind, so
// PreparedSearch's cached pointers stay valid for the whole test.
// ---------------------------------------------------------------------------

struct Alg1Fixture {
  DistributedGraph g;
  HierarchicalDag dag;
  mesh::MeshShape shape;

  // 3000 vertices like test_determinism.cpp: big enough that the paper plan
  // has non-empty bands and the geometric plan passes its capacity check.
  explicit Alg1Fixture(std::uint64_t seed = 20)
      : g([&] {
          util::Rng rng(seed);
          return ds::build_hierarchical_dag(3000, 2.0, 3, rng);
        }()),
        dag(g, 2.0),
        shape(g.shape_for(g.vertex_count())) {}

  std::vector<Query> stream(std::size_t m, std::uint64_t seed = 21) const {
    auto qs = make_queries(m);
    util::Rng rng(seed);
    for (auto& q : qs)
      q.key[0] = static_cast<std::int64_t>(rng.uniform(1ull << 40));
    return qs;
  }
};

struct Alg2Fixture {
  KaryTree tree;
  mesh::MeshShape shape;

  Alg2Fixture() : tree(ds::iota_keys(500), 3, TreeMode::kDirected),
                  shape(tree.graph().shape_for(tree.graph().vertex_count())) {}

  std::vector<Query> stream(std::size_t m, std::uint64_t seed = 22) const {
    util::Rng rng(seed);
    return ds::uniform_key_queries(m, 520, rng);
  }
};

struct Alg3Fixture {
  KaryTree tree;
  Splitting s1, s2;
  mesh::MeshShape shape;

  Alg3Fixture() : tree(ds::iota_keys(256), 2, TreeMode::kUndirected),
                  shape(tree.graph().shape_for(tree.graph().vertex_count())) {
    std::tie(s1, s2) = tree.alpha_beta_splittings();
  }

  std::vector<Query> stream(std::size_t m, std::uint64_t seed = 23) const {
    auto qs = make_queries(m);
    util::Rng rng(seed);
    for (auto& q : qs) {
      const auto a = rng.uniform_range(-3, 259);
      q.key[0] = a;
      q.key[1] = a + rng.uniform_range(0, 30);
    }
    return qs;
  }
};

std::map<std::int32_t, QueryOutcome> outcomes_by_qid(
    const std::vector<Query>& qs) {
  std::map<std::int32_t, QueryOutcome> out;
  for (const auto& q : qs)
    out[q.qid] = QueryOutcome{q.steps, q.acc0, q.acc1, q.result};
  return out;
}

// ---------------------------------------------------------------------------
// (a) Every batch's outcomes match the sequential reference, query by query.
// ---------------------------------------------------------------------------

TEST(StreamOracle, Alg1PaperMatchesSequential) {
  const Alg1Fixture fx;
  const std::size_t cap = fx.shape.size();
  auto stream = fx.stream(3 * cap + cap / 2 + 7);  // partial last batch
  auto expect = stream;
  sequential_multisearch(fx.g, ds::HashWalk{0}, expect);
  const mesh::CostModel m;
  PreparedSearch engine(fx.dag, PlanKind::kPaper, ds::HashWalk{0}, m,
                        fx.shape);
  StreamScheduler sched(engine, BatchPolicy{});
  const auto res = sched.run(stream);
  EXPECT_EQ(res.batches.size(), 4u);
  EXPECT_EQ(diff_outcomes(outcomes(stream), outcomes(expect)), "");
}

TEST(StreamOracle, Alg1GeometricMatchesSequential) {
  const Alg1Fixture fx;
  const std::size_t cap = fx.shape.size();
  auto stream = fx.stream(2 * cap + 13);
  auto expect = stream;
  sequential_multisearch(fx.g, ds::HashWalk{0}, expect);
  const mesh::CostModel m;
  PreparedSearch engine(fx.dag, PlanKind::kGeometric, ds::HashWalk{0}, m,
                        fx.shape);
  StreamScheduler sched(engine, BatchPolicy{});
  sched.run(stream);
  EXPECT_EQ(diff_outcomes(outcomes(stream), outcomes(expect)), "");
}

TEST(StreamOracle, Alg2AlphaMatchesSequential) {
  const Alg2Fixture fx;
  const std::size_t cap = fx.shape.size();
  auto stream = fx.stream(3 * cap + 5);
  auto expect = stream;
  sequential_multisearch(fx.tree.graph(), fx.tree.rank_count(), expect);
  const mesh::CostModel m;
  PreparedSearch engine(EngineKind::kAlg2Alpha, fx.tree.graph(),
                        fx.tree.alpha_splitting(), fx.tree.alpha_splitting(),
                        fx.tree.rank_count(), m, fx.shape);
  StreamScheduler sched(engine, BatchPolicy{});
  sched.run(stream);
  EXPECT_EQ(diff_outcomes(outcomes(stream), outcomes(expect)), "");
}

TEST(StreamOracle, Alg3AlphaBetaMatchesSequential) {
  const Alg3Fixture fx;
  const std::size_t cap = fx.shape.size();
  auto stream = fx.stream(2 * cap + 9);
  auto expect = stream;
  sequential_multisearch(fx.tree.graph(), fx.tree.euler_scan(), expect);
  const mesh::CostModel m;
  PreparedSearch engine(EngineKind::kAlg3AlphaBeta, fx.tree.graph(), fx.s1,
                        fx.s2, fx.tree.euler_scan(), m, fx.shape);
  StreamScheduler sched(engine, BatchPolicy{});
  sched.run(stream);
  EXPECT_EQ(diff_outcomes(outcomes(stream), outcomes(expect)), "");
}

TEST(StreamOracle, LocalityReorderMatchesSequentialInArrivalPositions) {
  const Alg2Fixture fx;
  const std::size_t cap = fx.shape.size();
  auto stream = fx.stream(3 * cap + 17);
  auto expect = stream;
  sequential_multisearch(fx.tree.graph(), fx.tree.rank_count(), expect);
  const mesh::CostModel m;
  PreparedSearch engine(EngineKind::kAlg2Alpha, fx.tree.graph(),
                        fx.tree.alpha_splitting(), fx.tree.alpha_splitting(),
                        fx.tree.rank_count(), m, fx.shape);
  BatchPolicy policy;
  policy.order = BatchOrder::kLocalityReorder;
  StreamScheduler sched(engine, policy);
  sched.run(stream);
  // Outcomes land back in arrival positions regardless of batch order.
  EXPECT_EQ(diff_outcomes(outcomes(stream), outcomes(expect)), "");
}

// ---------------------------------------------------------------------------
// (b) A shuffled stream yields the identical multiset of outcomes.
// ---------------------------------------------------------------------------

TEST(StreamShuffle, ShuffledStreamSameOutcomeMultiset) {
  const Alg1Fixture fx;
  const std::size_t cap = fx.shape.size();
  auto stream = fx.stream(2 * cap + 31);
  auto shuffled = stream;
  util::Rng rng(24);
  const auto perm = util::random_permutation(shuffled.size(), rng);
  for (std::size_t i = 0; i < perm.size(); ++i)
    shuffled[i] = stream[perm[i]];

  const mesh::CostModel m;
  PreparedSearch e1(fx.dag, PlanKind::kPaper, ds::HashWalk{0}, m, fx.shape);
  StreamScheduler s1(e1, BatchPolicy{});
  s1.run(stream);
  PreparedSearch e2(fx.dag, PlanKind::kPaper, ds::HashWalk{0}, m, fx.shape);
  StreamScheduler s2(e2, BatchPolicy{});
  s2.run(shuffled);
  EXPECT_EQ(outcomes_by_qid(stream), outcomes_by_qid(shuffled));
}

TEST(StreamShuffle, LocalityAndFifoSameOutcomeMultiset) {
  const Alg3Fixture fx;
  auto fifo_stream = fx.stream(3 * fx.shape.size() + 11);
  auto loc_stream = fifo_stream;
  const mesh::CostModel m;
  PreparedSearch e1(EngineKind::kAlg3AlphaBeta, fx.tree.graph(), fx.s1, fx.s2,
                    fx.tree.euler_scan(), m, fx.shape);
  StreamScheduler s1(e1, BatchPolicy{});
  s1.run(fifo_stream);
  PreparedSearch e2(EngineKind::kAlg3AlphaBeta, fx.tree.graph(), fx.s1, fx.s2,
                    fx.tree.euler_scan(), m, fx.shape);
  BatchPolicy loc;
  loc.order = BatchOrder::kLocalityReorder;
  StreamScheduler s2(e2, loc);
  s2.run(loc_stream);
  EXPECT_EQ(outcomes_by_qid(fifo_stream), outcomes_by_qid(loc_stream));
}

// ---------------------------------------------------------------------------
// (c) Warm batches 2..k: outcomes and per-batch costs bit-identical to cold
// standalone runs (a fresh engine serving that batch as its first).
// ---------------------------------------------------------------------------

TEST(StreamWarm, WarmBatchesBitIdenticalToColdStandaloneRuns) {
  const Alg1Fixture fx;
  const std::size_t cap = fx.shape.size();
  const auto stream0 = fx.stream(5 * cap);
  const BatchPolicy policy;
  const auto slices = plan_batches(stream0, policy, cap);
  ASSERT_EQ(slices.size(), 5u);

  const mesh::CostModel m;
  PreparedSearch warm(fx.dag, PlanKind::kPaper, ds::HashWalk{0}, m, fx.shape);
  auto warm_stream = stream0;
  StreamScheduler sched(warm, policy);
  const auto res = sched.run(warm_stream);

  for (std::size_t b = 0; b < slices.size(); ++b) {
    PreparedSearch cold(fx.dag, PlanKind::kPaper, ds::HashWalk{0}, m,
                        fx.shape);
    // One-time setup is charged identically however often it is re-derived.
    EXPECT_EQ(cold.setup_cost().steps, warm.setup_cost().steps);
    std::vector<Query> batch;
    for (const auto idx : slices[b]) batch.push_back(stream0[idx]);
    const auto rep = cold.run_batch(batch);
    // Bit-identical per-batch charges: warm batches pay exactly what a cold
    // engine's FIRST batch pays (setup aside) — no drift batch to batch.
    EXPECT_EQ(rep.inject.steps, res.batches[b].inject.steps);
    EXPECT_EQ(rep.run.steps, res.batches[b].run.steps);
    EXPECT_EQ(rep.visits, res.batches[b].visits);
    // And bit-identical outcomes, query by query.
    std::vector<Query> warm_batch;
    for (const auto idx : slices[b]) warm_batch.push_back(warm_stream[idx]);
    EXPECT_EQ(diff_outcomes(outcomes(batch), outcomes(warm_batch)), "");
  }
}

TEST(StreamWarm, SecondStreamOnWarmEngineChargesNoSetup) {
  const Alg2Fixture fx;
  auto first = fx.stream(2 * fx.shape.size());
  auto second = fx.stream(2 * fx.shape.size(), 29);
  const mesh::CostModel m;
  PreparedSearch engine(EngineKind::kAlg2Alpha, fx.tree.graph(),
                        fx.tree.alpha_splitting(), fx.tree.alpha_splitting(),
                        fx.tree.rank_count(), m, fx.shape);
  StreamScheduler sched(engine, BatchPolicy{});
  const auto r1 = sched.run(first);
  EXPECT_EQ(r1.setup.steps, engine.setup_cost().steps);
  const auto r2 = sched.run(second);
  EXPECT_EQ(r2.setup.steps, 0.0);  // engine already warm: nothing attributed
  auto expect = second;
  sequential_multisearch(fx.tree.graph(), fx.tree.rank_count(), expect);
  EXPECT_EQ(diff_outcomes(outcomes(second), outcomes(expect)), "");
}

TEST(StreamWarm, SetupCostMatchesStandalonePieces) {
  const Alg1Fixture fx;
  const mesh::CostModel m;
  PreparedSearch engine(fx.dag, PlanKind::kPaper, ds::HashWalk{0}, m,
                        fx.shape);
  const mesh::Cost graph_cost = distribute_graph(fx.g, m, fx.shape);
  const auto li = compute_level_indices(fx.g, m, fx.shape);
  const mesh::Cost bands = band_setup_cost(engine.plan(), fx.shape, m);
  EXPECT_EQ(engine.setup_cost().steps,
            (graph_cost + li.cost + bands).steps);
}

TEST(StreamWarm, Alg1RunWithoutBandSetupIsCheaperByExactlyThatSetup) {
  // Geometric plan: at this size it has several bands (the paper's log*
  // plan needs a far taller DAG before its first band appears).
  const Alg1Fixture fx;
  const mesh::CostModel m;
  auto qs_full = fx.stream(fx.g.vertex_count());
  auto qs_warm = qs_full;
  const auto full = hierarchical_multisearch(fx.dag, ds::HashWalk{0}, qs_full,
                                             m, fx.shape, PlanKind::kGeometric,
                                             /*charge_band_setup=*/true);
  const auto warm = hierarchical_multisearch(fx.dag, ds::HashWalk{0}, qs_warm,
                                             m, fx.shape, PlanKind::kGeometric,
                                             /*charge_band_setup=*/false);
  EXPECT_EQ(diff_outcomes(outcomes(qs_full), outcomes(qs_warm)), "");
  const auto plan =
      make_hierarchical_plan(fx.dag, fx.shape, PlanKind::kGeometric);
  const mesh::Cost bands = band_setup_cost(plan, fx.shape, m);
  EXPECT_GT(bands.steps, 0.0);
  // Same terms, different accumulation order -> compare to relative eps.
  EXPECT_NEAR(full.cost.steps, warm.cost.steps + bands.steps,
              1e-9 * full.cost.steps);
}

// ---------------------------------------------------------------------------
// The naive re-setup-every-batch baseline loses at m/n >= 4 (all engines).
// ---------------------------------------------------------------------------

template <typename MakeEngine>
void expect_warm_beats_resetup(const std::vector<Query>& stream0,
                               MakeEngine make_engine) {
  auto warm_stream = stream0;
  auto warm_engine = make_engine();
  StreamScheduler warm(warm_engine, BatchPolicy{});
  const auto warm_res = warm.run(warm_stream);

  auto naive_stream = stream0;
  auto naive_engine = make_engine();
  StreamScheduler naive(naive_engine, BatchPolicy{},
                        /*resetup_every_batch=*/true);
  const auto naive_res = naive.run(naive_stream);

  EXPECT_EQ(diff_outcomes(outcomes(warm_stream), outcomes(naive_stream)), "");
  EXPECT_LT(warm_res.amortized_steps_per_query(),
            naive_res.amortized_steps_per_query());
  EXPECT_LT(warm_res.setup_fraction(), naive_res.setup_fraction());
}

TEST(StreamBaseline, WarmBeatsResetupAlg1Paper) {
  const Alg1Fixture fx;
  const mesh::CostModel m;
  expect_warm_beats_resetup(fx.stream(4 * fx.shape.size()), [&] {
    return PreparedSearch(fx.dag, PlanKind::kPaper, ds::HashWalk{0}, m,
                          fx.shape);
  });
}

TEST(StreamBaseline, WarmBeatsResetupAlg1Geometric) {
  const Alg1Fixture fx;
  const mesh::CostModel m;
  expect_warm_beats_resetup(fx.stream(4 * fx.shape.size()), [&] {
    return PreparedSearch(fx.dag, PlanKind::kGeometric, ds::HashWalk{0}, m,
                          fx.shape);
  });
}

TEST(StreamBaseline, WarmBeatsResetupAlg2Alpha) {
  const Alg2Fixture fx;
  const mesh::CostModel m;
  expect_warm_beats_resetup(fx.stream(4 * fx.shape.size()), [&] {
    return PreparedSearch(EngineKind::kAlg2Alpha, fx.tree.graph(),
                          fx.tree.alpha_splitting(), fx.tree.alpha_splitting(),
                          fx.tree.rank_count(), m, fx.shape);
  });
}

TEST(StreamBaseline, WarmBeatsResetupAlg3AlphaBeta) {
  const Alg3Fixture fx;
  const mesh::CostModel m;
  expect_warm_beats_resetup(fx.stream(4 * fx.shape.size()), [&] {
    return PreparedSearch(EngineKind::kAlg3AlphaBeta, fx.tree.graph(), fx.s1,
                          fx.s2, fx.tree.euler_scan(), m, fx.shape);
  });
}

// ---------------------------------------------------------------------------
// Batch planning properties.
// ---------------------------------------------------------------------------

TEST(StreamPolicy, PlanBatchesCoversEveryIndexExactlyOnce) {
  const Alg1Fixture fx;
  const auto stream = fx.stream(1000);
  for (const auto order : {BatchOrder::kFifo, BatchOrder::kLocalityReorder}) {
    BatchPolicy policy;
    policy.batch_size = 96;
    policy.order = order;
    const auto batches = plan_batches(stream, policy, 256);
    std::vector<std::uint8_t> seen(stream.size(), 0);
    for (const auto& b : batches) {
      EXPECT_FALSE(b.empty());
      EXPECT_LE(b.size(), 96u);
      for (const auto idx : b) {
        ASSERT_LT(idx, stream.size());
        EXPECT_EQ(seen[idx], 0);
        seen[idx] = 1;
      }
    }
    EXPECT_EQ(std::count(seen.begin(), seen.end(), 1),
              static_cast<std::ptrdiff_t>(stream.size()));
  }
}

TEST(StreamPolicy, LocalityReorderSortsEachWindowByKey) {
  const Alg1Fixture fx;
  const auto stream = fx.stream(777);
  BatchPolicy policy;
  policy.batch_size = 64;
  policy.window = 256;
  policy.order = BatchOrder::kLocalityReorder;
  const auto batches = plan_batches(stream, policy, 1024);
  // Flatten back: within every 256-index window the keys ascend.
  std::vector<std::uint32_t> flat;
  for (const auto& b : batches) flat.insert(flat.end(), b.begin(), b.end());
  ASSERT_EQ(flat.size(), stream.size());
  for (std::size_t i = 1; i < flat.size(); ++i) {
    if (i % 256 == 0) continue;  // window boundary
    EXPECT_LE(stream[flat[i - 1]].key[0], stream[flat[i]].key[0]);
  }
}

// Regression: the window reorder once used an unstable std::sort, so with
// heavily duplicated locality keys the schedule depended on introsort
// internals instead of being a pure function of the stream. Ties must keep
// arrival order.
TEST(StreamPolicy, LocalityReorderKeepsArrivalOrderOnDuplicateKeys) {
  auto stream = make_queries(512);
  util::Rng rng(77);
  for (auto& q : stream) {
    q.key[0] = rng.uniform_range(0, 2);  // 3 distinct keys: huge tie groups
    q.key[1] = rng.uniform_range(0, 1);
    q.key[2] = 0;
  }
  BatchPolicy policy;
  policy.batch_size = 64;
  policy.window = 256;
  policy.order = BatchOrder::kLocalityReorder;
  const auto batches = plan_batches(stream, policy, 1024);
  std::vector<std::uint32_t> flat;
  for (const auto& b : batches) flat.insert(flat.end(), b.begin(), b.end());
  ASSERT_EQ(flat.size(), stream.size());
  for (std::size_t i = 1; i < flat.size(); ++i) {
    if (i % 256 == 0) continue;  // window boundary
    const Query& qa = stream[flat[i - 1]];
    const Query& qb = stream[flat[i]];
    const auto ka = std::tie(qa.key[0], qa.key[1], qa.key[2]);
    const auto kb = std::tie(qb.key[0], qb.key[1], qb.key[2]);
    EXPECT_TRUE(ka < kb || (ka == kb && flat[i - 1] < flat[i]))
        << "duplicate keys broke arrival order at position " << i;
  }
}

TEST(StreamPolicy, BatchSizeClampedToCapacity) {
  const Alg1Fixture fx;
  const auto stream = fx.stream(300);
  BatchPolicy policy;
  policy.batch_size = 100000;  // far beyond capacity
  const auto batches = plan_batches(stream, policy, 128);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 128u);
  EXPECT_EQ(batches[2].size(), 44u);
}

TEST(StreamPolicy, EmptyStreamYieldsNoBatchesAndZeroCost) {
  const Alg2Fixture fx;
  const mesh::CostModel m;
  PreparedSearch engine(EngineKind::kAlg2Alpha, fx.tree.graph(),
                        fx.tree.alpha_splitting(), fx.tree.alpha_splitting(),
                        fx.tree.rank_count(), m, fx.shape);
  StreamScheduler sched(engine, BatchPolicy{});
  std::vector<Query> empty;
  const auto res = sched.run(empty);
  EXPECT_TRUE(res.batches.empty());
  EXPECT_EQ(res.total().steps, 0.0);
  EXPECT_EQ(res.amortized_steps_per_query(), 0.0);
}

// ---------------------------------------------------------------------------
// Trace metrics and attribution.
// ---------------------------------------------------------------------------

TEST(StreamMetrics, ThroughputMetricsRecordedAndVisibleInTable) {
  const Alg1Fixture fx;
  trace::TraceRecorder rec("counting");
  mesh::CostModel m;
  m.trace = &rec;
  PreparedSearch engine(fx.dag, PlanKind::kPaper, ds::HashWalk{0}, m,
                        fx.shape);
  auto stream = fx.stream(4 * fx.shape.size());
  StreamScheduler sched(engine, BatchPolicy{});
  const auto res = sched.run(stream);

  std::map<std::string, double> metrics;
  for (const auto& mt : rec.metrics()) metrics[mt.name] = mt.value;
  ASSERT_EQ(metrics.count("stream.queries_per_step"), 1u);
  ASSERT_EQ(metrics.count("stream.amortized_steps_per_query"), 1u);
  ASSERT_EQ(metrics.count("stream.setup_fraction"), 1u);
  EXPECT_EQ(metrics["stream.batches"], 4.0);
  EXPECT_EQ(metrics["stream.queries"], static_cast<double>(stream.size()));
  EXPECT_GT(metrics["stream.setup_fraction"], 0.0);
  EXPECT_LT(metrics["stream.setup_fraction"], 1.0);
  EXPECT_EQ(metrics["stream.amortized_steps_per_query"],
            res.amortized_steps_per_query());

  // The amortized-setup fraction is visible in the attribution table.
  std::ostringstream os;
  trace::metrics_table(rec).print(os);
  EXPECT_NE(os.str().find("metric:stream.setup_fraction"), std::string::npos);
}

TEST(StreamMetrics, AttributionSumsToSetupPlusStreamTotal) {
  const Alg3Fixture fx;
  trace::TraceRecorder rec("counting");
  mesh::CostModel m;
  m.trace = &rec;
  PreparedSearch engine(EngineKind::kAlg3AlphaBeta, fx.tree.graph(), fx.s1,
                        fx.s2, fx.tree.euler_scan(), m, fx.shape);
  auto stream = fx.stream(2 * fx.shape.size() + 100);
  StreamScheduler sched(engine, BatchPolicy{});
  const auto res = sched.run(stream);
  // Everything charged through the model — construction-time setup plus all
  // per-batch work — is attributed, and nothing else is.
  double attributed = 0.0;
  for (const auto& [key, stat] : rec.counters()) attributed += stat.steps;
  EXPECT_NEAR(attributed, rec.total_steps(), 1e-6);
  EXPECT_NEAR(rec.total_steps(), res.total().steps, 1e-6);
}

TEST(StreamMetrics, PerBatchSpanTreeRecorded) {
  const Alg2Fixture fx;
  trace::TraceRecorder rec("counting");
  mesh::CostModel m;
  m.trace = &rec;
  PreparedSearch engine(EngineKind::kAlg2Alpha, fx.tree.graph(),
                        fx.tree.alpha_splitting(), fx.tree.alpha_splitting(),
                        fx.tree.rank_count(), m, fx.shape);
  auto stream = fx.stream(3 * fx.shape.size());
  StreamScheduler sched(engine, BatchPolicy{});
  sched.run(stream);
  std::size_t prepare = 0, batch_spans = 0;
  for (const auto& s : rec.spans()) {
    if (s.name == "stream.prepare") ++prepare;
    if (s.name.rfind("stream.batch ", 0) == 0) ++batch_spans;
  }
  EXPECT_EQ(prepare, 1u);      // warm: one setup span, at construction
  EXPECT_EQ(batch_spans, 3u);  // one span per batch
}

// ---------------------------------------------------------------------------
// (d) 1-vs-8-thread determinism contract for StreamScheduler.
// ---------------------------------------------------------------------------

struct RunRecord {
  std::vector<QueryOutcome> out;
  mesh::Cost cost;
  std::map<trace::PrimitiveKey, trace::PrimitiveStat> counters;
};

template <typename F>
void expect_thread_invariant(F f) {
  util::ThreadPool::set_global_threads(1);
  const RunRecord serial = f();
  util::ThreadPool::set_global_threads(8);
  const RunRecord parallel = f();
  util::ThreadPool::set_global_threads(0);
  EXPECT_EQ(diff_outcomes(serial.out, parallel.out), "");
  EXPECT_EQ(serial.cost, parallel.cost);  // exact, not approximate
  EXPECT_TRUE(serial.counters == parallel.counters)
      << "per-primitive attribution diverged across thread counts";
}

TEST(StreamDeterminism, Alg1PaperSchedulerThreadInvariant) {
  const Alg1Fixture fx;
  const auto stream0 = fx.stream(3 * fx.shape.size() + 64);
  expect_thread_invariant([&] {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    PreparedSearch engine(fx.dag, PlanKind::kPaper, ds::HashWalk{0}, m,
                          fx.shape);
    auto stream = stream0;
    StreamScheduler sched(engine, BatchPolicy{});
    const auto res = sched.run(stream);
    return RunRecord{outcomes(stream), res.total(), rec.counters()};
  });
}

TEST(StreamDeterminism, Alg1GeometricSchedulerThreadInvariant) {
  const Alg1Fixture fx;
  const auto stream0 = fx.stream(3 * fx.shape.size() + 64);
  expect_thread_invariant([&] {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    PreparedSearch engine(fx.dag, PlanKind::kGeometric, ds::HashWalk{0}, m,
                          fx.shape);
    auto stream = stream0;
    StreamScheduler sched(engine, BatchPolicy{});
    const auto res = sched.run(stream);
    return RunRecord{outcomes(stream), res.total(), rec.counters()};
  });
}

TEST(StreamDeterminism, Alg2SchedulerThreadInvariant) {
  const Alg2Fixture fx;
  const auto stream0 = fx.stream(3 * fx.shape.size() + 32);
  expect_thread_invariant([&] {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    PreparedSearch engine(EngineKind::kAlg2Alpha, fx.tree.graph(),
                          fx.tree.alpha_splitting(), fx.tree.alpha_splitting(),
                          fx.tree.rank_count(), m, fx.shape);
    auto stream = stream0;
    BatchPolicy policy;
    policy.order = BatchOrder::kLocalityReorder;
    StreamScheduler sched(engine, policy);
    const auto res = sched.run(stream);
    return RunRecord{outcomes(stream), res.total(), rec.counters()};
  });
}

TEST(StreamDeterminism, Alg3SchedulerThreadInvariant) {
  const Alg3Fixture fx;
  const auto stream0 = fx.stream(3 * fx.shape.size() + 32);
  expect_thread_invariant([&] {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    PreparedSearch engine(EngineKind::kAlg3AlphaBeta, fx.tree.graph(), fx.s1,
                          fx.s2, fx.tree.euler_scan(), m, fx.shape);
    auto stream = stream0;
    StreamScheduler sched(engine, BatchPolicy{});
    const auto res = sched.run(stream);
    return RunRecord{outcomes(stream), res.total(), rec.counters()};
  });
}

TEST(StreamFaultFree, DisarmedPlanLeavesSchedulerBitIdentical) {
  // Fault-free contract: attaching a disarmed FaultPlan to the scheduler's
  // cost model changes nothing — same batches, costs, attribution, and an
  // empty failed_queries list.
  const Alg2Fixture fx;
  const auto stream0 = fx.stream(3 * fx.shape.size() + 27);
  mesh::FaultPlan disarmed;
  auto run_with = [&](mesh::FaultPlan* plan) {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    m.fault = plan;
    PreparedSearch engine(EngineKind::kAlg2Alpha, fx.tree.graph(),
                          fx.tree.alpha_splitting(), fx.tree.alpha_splitting(),
                          fx.tree.rank_count(), m, fx.shape);
    auto stream = stream0;
    StreamScheduler sched(engine, BatchPolicy{});
    const auto res = sched.run(stream);
    return std::tuple{outcomes(stream), res.total(), rec.counters(),
                      res.failed_queries.size(), res.batches.size()};
  };
  const auto bare = run_with(nullptr);
  const auto with = run_with(&disarmed);
  EXPECT_EQ(diff_outcomes(std::get<0>(bare), std::get<0>(with)), "");
  EXPECT_EQ(std::get<1>(bare), std::get<1>(with));
  EXPECT_TRUE(std::get<2>(bare) == std::get<2>(with));
  EXPECT_EQ(std::get<3>(with), 0u);
  EXPECT_EQ(std::get<4>(bare), std::get<4>(with));
  EXPECT_EQ(disarmed.stats().detections, 0u);
}

// ---------------------------------------------------------------------------
// Edge cases / contract checks.
// ---------------------------------------------------------------------------

TEST(StreamEdge, OversizedBatchThrows) {
  const Alg1Fixture fx;
  const mesh::CostModel m;
  PreparedSearch engine(fx.dag, PlanKind::kPaper, ds::HashWalk{0}, m,
                        fx.shape);
  auto batch = fx.stream(fx.shape.size() + 1);
  EXPECT_THROW(engine.run_batch(batch), std::logic_error);
}

TEST(StreamEdge, PartitionedPreparedSearchRejectsAlg1Kind) {
  const Alg2Fixture fx;
  const mesh::CostModel m;
  EXPECT_THROW(PreparedSearch(EngineKind::kAlg1Paper, fx.tree.graph(),
                              fx.tree.alpha_splitting(),
                              fx.tree.alpha_splitting(), fx.tree.rank_count(),
                              m, fx.shape),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// plan_batches edge contracts: each formerly-implicit behavior is now
// defined and pinned (empty stream, batch_size == 0, oversize clamp, zero
// capacity), for both batch orders.
// ---------------------------------------------------------------------------

TEST(StreamEdge, PlanBatchesEmptyStreamYieldsNoBatches) {
  for (const auto order : {BatchOrder::kFifo, BatchOrder::kLocalityReorder}) {
    BatchPolicy policy;
    policy.order = order;
    EXPECT_TRUE(plan_batches({}, policy, 64).empty());
    const BatchSource src({}, policy, 64);
    EXPECT_TRUE(src.empty());
    EXPECT_EQ(src.pending_queries(), 0u);
  }
}

TEST(StreamEdge, PlanBatchesZeroBatchSizeMeansCapacity) {
  const Alg1Fixture fx;
  const auto stream = fx.stream(3 * 50 + 7);
  BatchPolicy policy;
  policy.batch_size = 0;
  const auto batches = plan_batches(stream, policy, 50);
  ASSERT_EQ(batches.size(), 4u);
  for (std::size_t i = 0; i + 1 < batches.size(); ++i)
    EXPECT_EQ(batches[i].size(), 50u);  // full capacity, not some default
  EXPECT_EQ(batches.back().size(), 7u);
}

TEST(StreamEdge, PlanBatchesOversizeBatchClampedToCapacity) {
  const Alg1Fixture fx;
  const auto stream = fx.stream(100);
  BatchPolicy policy;
  policy.batch_size = 1000;  // larger than capacity: the clamp is a guarantee
  const auto batches = plan_batches(stream, policy, 32);
  for (const auto& b : batches) EXPECT_LE(b.size(), 32u);
  std::size_t total = 0;
  for (const auto& b : batches) total += b.size();
  EXPECT_EQ(total, stream.size());
}

TEST(StreamEdge, PlanBatchesZeroCapacityIsInvalidInput) {
  const Alg1Fixture fx;
  const auto stream = fx.stream(8);
  EXPECT_THROW(plan_batches(stream, BatchPolicy{}, 0), InvalidInputError);
  // Even an empty stream: a zero-processor mesh is malformed, not idle.
  EXPECT_THROW(plan_batches({}, BatchPolicy{}, 0), InvalidInputError);
}

// ---------------------------------------------------------------------------
// BatchSource queue properties: the slicing/requeue machinery the service
// scheduler shares with StreamScheduler.
// ---------------------------------------------------------------------------

TEST(StreamQueue, PopUptoSplitsAndCoalescesWithinAGeneration) {
  BatchSource src;
  src.enqueue({0, 1, 2, 3, 4});
  src.enqueue({5, 6});
  src.enqueue({});  // no-op
  EXPECT_EQ(src.pending_batches(), 2u);
  EXPECT_EQ(src.pending_queries(), 7u);

  // Split: a 3-slice leaves the front batch's tail in place.
  const auto first = src.pop_upto(3);
  EXPECT_EQ(first.indices, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(first.replans, 0u);
  EXPECT_EQ(src.pending_queries(), 4u);
  // Coalesce: the next slice spans the remaining tail AND the next batch,
  // because both are generation 0.
  const auto rest = src.pop_upto(10);
  EXPECT_EQ(rest.indices, (std::vector<std::uint32_t>{3, 4, 5, 6}));
  EXPECT_TRUE(src.empty());
  EXPECT_EQ(src.pending_queries(), 0u);
}

TEST(StreamQueue, PopUptoNeverCoalescesAcrossGenerations) {
  BatchSource src;
  PendingBatch failed;
  failed.indices = {10, 11, 12};
  failed.replans = 1;
  src.requeue_split_front(failed, 8);  // one piece at generation 2
  src.enqueue({20, 21});               // fresh arrival at generation 0
  // A wide slice stops at the generation boundary: mixing would let the
  // fresh batch inherit the retried batch's shrunken retry budget.
  const auto gen2 = src.pop_upto(100);
  EXPECT_EQ(gen2.replans, 2u);
  EXPECT_EQ(gen2.indices, (std::vector<std::uint32_t>{10, 11, 12}));
  const auto gen0 = src.pop_upto(100);
  EXPECT_EQ(gen0.replans, 0u);
  EXPECT_EQ(gen0.indices, (std::vector<std::uint32_t>{20, 21}));
}

TEST(StreamQueue, RequeueSplitFrontPreservesOrderAndBumpsGeneration) {
  BatchSource src;
  src.enqueue({50, 51});
  PendingBatch failed;
  failed.indices = {0, 1, 2, 3, 4};
  failed.replans = 0;
  src.requeue_split_front(failed, 2);  // pieces {0,1} {2,3} {4} go FIRST
  EXPECT_EQ(src.pending_queries(), 7u);
  EXPECT_EQ(src.front_replans(), 1u);
  const auto a = src.pop();
  const auto b = src.pop();
  const auto c = src.pop();
  const auto d = src.pop();
  EXPECT_EQ(a.indices, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(b.indices, (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(c.indices, (std::vector<std::uint32_t>{4}));
  EXPECT_EQ(a.replans, 1u);
  EXPECT_EQ(c.replans, 1u);
  EXPECT_EQ(d.indices, (std::vector<std::uint32_t>{50, 51}));  // not overtaken
  EXPECT_EQ(d.replans, 0u);
  EXPECT_TRUE(src.empty());
}

TEST(StreamQueue, RequeueSplitBackAppendsAfterPendingWork) {
  BatchSource src;
  src.enqueue({50, 51});
  PendingBatch failed;
  failed.indices = {0, 1, 2};
  failed.replans = 2;
  src.requeue_split_back(failed, 2);
  EXPECT_EQ(src.front_replans(), 0u);
  EXPECT_EQ(src.pop().indices, (std::vector<std::uint32_t>{50, 51}));
  const auto p1 = src.pop();
  const auto p2 = src.pop();
  EXPECT_EQ(p1.indices, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(p2.indices, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(p1.replans, 3u);
  EXPECT_EQ(p2.replans, 3u);
  EXPECT_TRUE(src.empty());
}

}  // namespace
