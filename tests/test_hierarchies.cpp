// Tests for the §5 geometry hierarchies: Kirkpatrick point location and the
// Dobkin–Kirkpatrick extreme-vertex hierarchies (3-d and polygon), both as
// standalone structures and driven through Algorithm 1 multisearch.
#include <gtest/gtest.h>

#include <algorithm>

#include "geometry/dk_hierarchy.hpp"
#include "geometry/dk_polygon.hpp"
#include "geometry/hull2d.hpp"
#include "geometry/kirkpatrick.hpp"
#include "multisearch/query.hpp"
#include "multisearch/sequential.hpp"

namespace {

using namespace meshsearch;
using namespace meshsearch::geom;
using msearch::make_queries;

std::vector<Point2> dedup_points(std::vector<Point2> pts) {
  std::sort(pts.begin(), pts.end(), [](const Point2& a, const Point2& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  return pts;
}

// ---------------------------------------------------------------------------
// Kirkpatrick
// ---------------------------------------------------------------------------

class KirkpatrickTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KirkpatrickTest, LocatesRandomProbes) {
  util::Rng rng(100 + GetParam());
  const auto pts = dedup_points(random_points_in_disk(GetParam(), 2000, rng));
  Kirkpatrick kp(pts, 2048);
  kp.dag().validate();
  EXPECT_GE(kp.hierarchy_levels(), 2u);
  const auto prog = kp.locate_program();
  auto qs = make_queries(300);
  for (auto& q : qs) {
    q.key[0] = rng.uniform_range(-6000, 6000);
    q.key[1] = rng.uniform_range(-5000, 6000);
  }
  msearch::sequential_multisearch(kp.dag(), prog, qs);
  const auto bt = kp.bounding_corners();
  for (const auto& q : qs) {
    const Point2 p{q.key[0], q.key[1]};
    if (point_in_triangle(p, bt[0], bt[1], bt[2])) {
      EXPECT_TRUE(kp.answer_contains_point(q))
          << "p=(" << p.x << "," << p.y << ") result=" << q.result;
    } else {
      EXPECT_EQ(q.result, Kirkpatrick::kOutside);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KirkpatrickTest,
                         ::testing::Values(1u, 5u, 40u, 200u, 1000u));

TEST(Kirkpatrick, QueryPathLengthIsLogarithmic) {
  util::Rng rng(42);
  const auto pts = dedup_points(random_points_in_disk(2000, 20000, rng));
  Kirkpatrick kp(pts, 32768);
  auto qs = make_queries(200);
  for (auto& q : qs) {
    q.key[0] = rng.uniform_range(-20000, 20000);
    q.key[1] = rng.uniform_range(-20000, 20000);
  }
  msearch::sequential_multisearch(kp.dag(), kp.locate_program(), qs);
  const auto r = msearch::max_steps(qs);
  // r <= level_work * (#levels + 1); both are O(log n) with small constants.
  EXPECT_LE(r, kp.level_work() *
                   static_cast<std::int32_t>(kp.hierarchy_levels() + 1));
  const auto bt = kp.bounding_corners();
  for (const auto& q : qs) {
    const Point2 p{q.key[0], q.key[1]};
    if (point_in_triangle(p, bt[0], bt[1], bt[2]))
      EXPECT_TRUE(kp.answer_contains_point(q));
    else
      EXPECT_EQ(q.result, Kirkpatrick::kOutside);
  }
}

TEST(Kirkpatrick, LevelsShrinkGeometrically) {
  util::Rng rng(43);
  const auto pts = dedup_points(random_points_in_disk(3000, 50000, rng));
  Kirkpatrick kp(pts, 65536);
  // log-ish number of hierarchy levels.
  EXPECT_LE(kp.hierarchy_levels(), 60u);
  EXPECT_GT(kp.mu(), 1.05);
}

TEST(Kirkpatrick, PointLocationViaAlgorithm1) {
  util::Rng rng(44);
  const auto pts = dedup_points(random_points_in_disk(600, 4000, rng));
  Kirkpatrick kp(pts, 4096);
  const auto dag = kp.hierarchical_dag();
  auto qs = make_queries(600);
  for (auto& q : qs) {
    q.key[0] = rng.uniform_range(-4000, 4000);
    q.key[1] = rng.uniform_range(-3000, 4000);
  }
  auto qseq = qs;
  msearch::sequential_multisearch(kp.dag(), kp.locate_program(), qseq);
  const mesh::CostModel m;
  const auto shape = kp.dag().shape_for(qs.size());
  const auto res =
      msearch::hierarchical_multisearch(dag, kp.locate_program(), qs, m, shape);
  EXPECT_EQ(msearch::diff_outcomes(msearch::outcomes(qseq),
                                   msearch::outcomes(qs)),
            "");
  EXPECT_GT(res.cost.steps, 0.0);
}

// ---------------------------------------------------------------------------
// DK polygon hierarchy
// ---------------------------------------------------------------------------

class DKPolyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DKPolyTest, ExtremeMatchesBruteForce) {
  util::Rng rng(200 + GetParam());
  const auto poly = random_convex_polygon(GetParam(), 500000, rng);
  DKPolygon dk(poly);
  dk.extreme_dag().dag.validate();
  auto qs = make_queries(200);
  for (auto& q : qs) {
    do {
      q.key[0] = rng.uniform_range(-1000, 1000);
      q.key[1] = rng.uniform_range(-1000, 1000);
    } while (q.key[0] == 0 && q.key[1] == 0);
    q.key[2] = 0;
  }
  msearch::sequential_multisearch(dk.extreme_dag().dag, dk.extreme_program(),
                                  qs);
  for (const auto& q : qs) {
    EXPECT_EQ(q.acc0, dk.extreme_dot_brute(Point2{q.key[0], q.key[1]}))
        << "d=(" << q.key[0] << "," << q.key[1] << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DKPolyTest,
                         ::testing::Values(4u, 9u, 33u, 128u, 1000u));

TEST(DKPolygon, PathLengthLogarithmic) {
  util::Rng rng(45);
  const auto poly = random_convex_polygon(2000, 800000, rng);
  DKPolygon dk(poly);
  auto qs = make_queries(100);
  for (auto& q : qs) {
    q.key[0] = rng.uniform_range(-999, 1000);
    q.key[1] = 1 + rng.uniform_range(0, 999);
  }
  msearch::sequential_multisearch(dk.extreme_dag().dag, dk.extreme_program(),
                                  qs);
  EXPECT_LE(msearch::max_steps(qs),
            dk.extreme_dag().level_work *
                static_cast<std::int32_t>(dk.hierarchy_levels() + 2));
}

TEST(DKPolygon, LineIntersectionBatch) {
  util::Rng rng(46);
  const auto poly = random_convex_polygon(300, 100000, rng);
  DKPolygon dk(poly);
  std::vector<DKPolygon::Line> lines(150);
  for (auto& l : lines) {
    do {
      l.a = rng.uniform_range(-50, 50);
      l.b = rng.uniform_range(-50, 50);
    } while (l.a == 0 && l.b == 0);
    l.c = rng.uniform_range(-8000000, 8000000);
  }
  auto qs = dk.make_line_queries(lines);
  msearch::sequential_multisearch(dk.extreme_dag().dag, dk.extreme_program(),
                                  qs);
  const auto got = DKPolygon::combine_line_answers(lines, qs);
  int hits = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(got[i], dk.line_intersects_brute(lines[i])) << "line " << i;
    hits += got[i];
  }
  // The workload must exercise both outcomes.
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, static_cast<int>(lines.size()));
}

class DKTangentTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DKTangentTest, TangentsFromExternalPoints) {
  util::Rng rng(400 + GetParam());
  const Scalar radius = 100000;
  const auto poly = random_convex_polygon(GetParam(), radius, rng);
  DKPolygon dk(poly);
  auto qs = make_queries(300);
  for (auto& q : qs) {
    // Sample points well outside the polygon's circumscribing circle.
    Point2 p;
    do {
      p.x = rng.uniform_range(-4 * radius, 4 * radius);
      p.y = rng.uniform_range(-4 * radius, 4 * radius);
    } while (!dk.point_outside(p) ||
             p.x * p.x + p.y * p.y <= radius * radius);
    q.key[0] = p.x;
    q.key[1] = p.y;
    q.key[2] = (q.qid % 2 == 0) ? 1 : -1;  // alternate left/right tangents
  }
  msearch::sequential_multisearch(dk.extreme_dag().dag, dk.tangent_program(),
                                  qs);
  for (const auto& q : qs) {
    const int side = q.key[2] >= 0 ? 1 : -1;
    EXPECT_TRUE(dk.is_tangent_vertex(Point2{q.key[0], q.key[1]}, q.result,
                                     side))
        << "p=(" << q.key[0] << "," << q.key[1] << ") side=" << side
        << " result=" << q.result;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DKTangentTest,
                         ::testing::Values(5u, 16u, 100u, 700u));

TEST(DKPolygon, TangentViaAlgorithm1MatchesSequential) {
  util::Rng rng(401);
  const Scalar radius = 200000;
  const auto poly = random_convex_polygon(500, radius, rng);
  DKPolygon dk(poly);
  auto qs = make_queries(400);
  for (auto& q : qs) {
    Point2 p;
    do {
      p.x = rng.uniform_range(-4 * radius, 4 * radius);
      p.y = rng.uniform_range(-4 * radius, 4 * radius);
    } while (p.x * p.x + p.y * p.y <= 4 * radius * radius);
    q.key[0] = p.x;
    q.key[1] = p.y;
    q.key[2] = 1;
  }
  auto qseq = qs;
  msearch::sequential_multisearch(dk.extreme_dag().dag, dk.tangent_program(),
                                  qseq);
  const mesh::CostModel m;
  const auto dag = dk.extreme_dag().hierarchical_dag();
  const auto shape = dk.extreme_dag().dag.shape_for(qs.size());
  msearch::hierarchical_multisearch(dag, dk.tangent_program(), qs, m, shape,
                                    msearch::PlanKind::kGeometric);
  EXPECT_EQ(msearch::diff_outcomes(msearch::outcomes(qseq),
                                   msearch::outcomes(qs)),
            "");
}

TEST(DKPolygon, Algorithm1MatchesSequential) {
  util::Rng rng(47);
  const auto poly = random_convex_polygon(800, 400000, rng);
  DKPolygon dk(poly);
  auto qs = make_queries(500);
  for (auto& q : qs) {
    do {
      q.key[0] = rng.uniform_range(-1000, 1000);
      q.key[1] = rng.uniform_range(-1000, 1000);
    } while (q.key[0] == 0 && q.key[1] == 0);
  }
  auto qseq = qs;
  msearch::sequential_multisearch(dk.extreme_dag().dag, dk.extreme_program(),
                                  qseq);
  const mesh::CostModel m;
  const auto dag = dk.extreme_dag().hierarchical_dag();
  const auto shape = dk.extreme_dag().dag.shape_for(qs.size());
  msearch::hierarchical_multisearch(dag, dk.extreme_program(), qs, m, shape);
  EXPECT_EQ(msearch::diff_outcomes(msearch::outcomes(qseq),
                                   msearch::outcomes(qs)),
            "");
}

// ---------------------------------------------------------------------------
// DK 3-d hierarchy
// ---------------------------------------------------------------------------

class DK3Test : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DK3Test, TangentPlaneValuesMatchBruteForce) {
  util::Rng rng(300 + GetParam());
  const auto pts = random_points_on_sphere(GetParam(), 100000, rng);
  DKHierarchy3 dk(pts, rng);
  dk.extreme_dag().dag.validate();
  auto qs = make_queries(150);
  for (auto& q : qs) {
    do {
      q.key[0] = rng.uniform_range(-1000, 1000);
      q.key[1] = rng.uniform_range(-1000, 1000);
      q.key[2] = rng.uniform_range(-1000, 1000);
    } while (q.key[0] == 0 && q.key[1] == 0 && q.key[2] == 0);
  }
  msearch::sequential_multisearch(dk.extreme_dag().dag, dk.extreme_program(),
                                  qs);
  for (const auto& q : qs) {
    const Point3 d{q.key[0], q.key[1], q.key[2]};
    const auto brute =
        dot3(d, pts[static_cast<std::size_t>(extreme_point_brute(pts, d))]);
    EXPECT_EQ(q.acc0, brute) << "d=(" << d.x << "," << d.y << "," << d.z << ")";
    // The reported vertex achieves the max (a supporting plane witness).
    EXPECT_EQ(dot3(d, pts[static_cast<std::size_t>(q.result)]), brute);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DK3Test,
                         ::testing::Values(16u, 60u, 250u, 1200u));

TEST(DK3, BallInteriorPointsNeverWin) {
  util::Rng rng(48);
  auto pts = random_points_on_sphere(300, 50000, rng);
  pts.push_back(Point3{0, 0, 0});  // deep interior point
  DKHierarchy3 dk(pts, rng);
  auto qs = make_queries(50);
  for (auto& q : qs) {
    q.key[0] = rng.uniform_range(-100, 100);
    q.key[1] = rng.uniform_range(-100, 100);
    q.key[2] = 1 + rng.uniform_range(0, 100);
  }
  msearch::sequential_multisearch(dk.extreme_dag().dag, dk.extreme_program(),
                                  qs);
  for (const auto& q : qs)
    EXPECT_NE(q.result, static_cast<std::int32_t>(pts.size() - 1));
}

TEST(DK3, HierarchyShrinks) {
  util::Rng rng(49);
  const auto pts = random_points_on_sphere(2000, 200000, rng);
  DKHierarchy3 dk(pts, rng);
  EXPECT_GE(dk.hierarchy_levels(), 3u);
  EXPECT_LE(dk.hierarchy_levels(), 80u);
  EXPECT_GT(dk.extreme_dag().mu, 1.0);
  // Ring walks are constant-bounded.
  EXPECT_LE(dk.extreme_dag().level_work, 2 * 16);
}

TEST(DK3, Algorithm1MatchesSequential) {
  util::Rng rng(50);
  const auto pts = random_points_on_sphere(500, 80000, rng);
  DKHierarchy3 dk(pts, rng);
  auto qs = make_queries(400);
  for (auto& q : qs) {
    do {
      q.key[0] = rng.uniform_range(-500, 500);
      q.key[1] = rng.uniform_range(-500, 500);
      q.key[2] = rng.uniform_range(-500, 500);
    } while (q.key[0] == 0 && q.key[1] == 0 && q.key[2] == 0);
  }
  auto qseq = qs;
  msearch::sequential_multisearch(dk.extreme_dag().dag, dk.extreme_program(),
                                  qseq);
  const mesh::CostModel m;
  const auto dag = dk.extreme_dag().hierarchical_dag();
  const auto shape = dk.extreme_dag().dag.shape_for(qs.size());
  msearch::hierarchical_multisearch(dag, dk.extreme_program(), qs, m, shape);
  EXPECT_EQ(msearch::diff_outcomes(msearch::outcomes(qseq),
                                   msearch::outcomes(qs)),
            "");
}

}  // namespace
