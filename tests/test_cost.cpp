// Unit tests for the Cost algebra and the CostModel charge formulas
// (mesh/cost.hpp): sequential/parallel composition, the physical_sort
// switch, the `times` multiplier, and charge attribution into a trace sink.
#include <gtest/gtest.h>

#include <cmath>

#include "mesh/cost.hpp"
#include "trace/trace.hpp"

namespace {

using namespace meshsearch;
using mesh::Cost;
using mesh::CostModel;
using mesh::par;
using mesh::ParAccumulator;

TEST(Cost, DefaultsToZeroSteps) {
  EXPECT_EQ(Cost{}.steps, 0.0);
  EXPECT_EQ(Cost{}, Cost{0.0});
}

TEST(Cost, SequentialCompositionAdds) {
  const Cost a{3.0}, b{4.5};
  EXPECT_EQ((a + b).steps, 7.5);
  Cost c;
  c += a;
  c += b;
  EXPECT_EQ(c, a + b);
}

TEST(Cost, ScalarMultiplyScalesSteps) {
  EXPECT_EQ((2.0 * Cost{3.0}).steps, 6.0);
  EXPECT_EQ((0.0 * Cost{3.0}).steps, 0.0);
}

TEST(Cost, ComparesBySteps) {
  EXPECT_LT(Cost{1.0}, Cost{2.0});
  EXPECT_FALSE(Cost{2.0} < Cost{2.0});
}

TEST(Cost, ParallelCompositionIsMax) {
  EXPECT_EQ(par(Cost{3.0}, Cost{7.0}).steps, 7.0);
  EXPECT_EQ(par(Cost{7.0}, Cost{3.0}).steps, 7.0);
  EXPECT_EQ(par({Cost{1.0}, Cost{9.0}, Cost{4.0}}).steps, 9.0);
  EXPECT_EQ(par({}).steps, 0.0);
}

TEST(Cost, ParAccumulatorTracksRunningMax) {
  ParAccumulator acc;
  EXPECT_EQ(acc.total().steps, 0.0);
  acc.add(Cost{5.0});
  acc.add(Cost{2.0});
  acc.add(Cost{8.0});
  EXPECT_EQ(acc.total().steps, 8.0);
}

TEST(CostModel, OptimalSortChargesThreeSqrtP) {
  const CostModel m;
  const double p = 4096;
  EXPECT_DOUBLE_EQ(m.sort(p).steps, 3.0 * std::sqrt(p));
  EXPECT_DOUBLE_EQ(m.scan(p).steps, 2.0 * std::sqrt(p));
  EXPECT_DOUBLE_EQ(m.broadcast(p).steps, 2.0 * std::sqrt(p));
  EXPECT_DOUBLE_EQ(m.reduce(p).steps, 2.0 * std::sqrt(p));
  // Routing is sort-based: sort + one traversal.
  EXPECT_DOUBLE_EQ(m.route(p).steps, m.sort(p).steps + std::sqrt(p));
}

TEST(CostModel, PhysicalSortChargesShearsortBound) {
  CostModel m;
  m.physical_sort = true;
  const double p = 4096;
  EXPECT_DOUBLE_EQ(m.sort(p).steps, std::sqrt(p) * (std::log2(p) + 1.0));
  // The route/rar/raw composites inherit the switched sort bound.
  EXPECT_DOUBLE_EQ(m.route(p).steps, m.sort(p).steps + std::sqrt(p));
  EXPECT_GT(m.rar(p).steps, CostModel{}.rar(p).steps);
}

TEST(CostModel, CompositesDecomposeIntoBuildingBlocks) {
  const CostModel m;
  const double p = 1024;
  EXPECT_DOUBLE_EQ(m.rar(p).steps, 2.0 * m.sort(p).steps +
                                       2.0 * m.scan(p).steps +
                                       2.0 * m.route(p).steps);
  EXPECT_DOUBLE_EQ(m.raw(p).steps,
                   m.sort(p).steps + m.scan(p).steps + m.route(p).steps);
  EXPECT_DOUBLE_EQ(m.compress(p).steps, m.scan(p).steps + m.route(p).steps);
}

TEST(CostModel, SmallMeshesClampToOneProcessor) {
  const CostModel m;
  EXPECT_DOUBLE_EQ(m.sort(0).steps, 3.0);
  EXPECT_DOUBLE_EQ(m.sort(1).steps, 3.0);
  EXPECT_DOUBLE_EQ(m.scan(0.25).steps, 2.0);
}

TEST(CostModel, TimesMultiplierMatchesRepeatedCharges) {
  const CostModel m;
  const double p = 256;
  EXPECT_DOUBLE_EQ(m.rar(p, 7.0).steps, 7.0 * m.rar(p).steps);
  EXPECT_DOUBLE_EQ(m.sort(p, 3.0).steps, (3.0 * m.sort(p)).steps);
  EXPECT_EQ(m.scan(p, 0.0).steps, 0.0);
  EXPECT_EQ(m.scan(p, -1.0).steps, 0.0);
}

TEST(CostModel, ChargesRecordIntoAttachedTrace) {
  trace::TraceRecorder rec("counting");
  CostModel m;
  m.trace = &rec;
  const double p = 64;
  const Cost total = m.sort(p) + m.rar(p, 3.0) + m.scan(p, 0.0);
  EXPECT_DOUBLE_EQ(rec.total_steps(), total.steps);

  const auto counters = rec.counters();
  ASSERT_EQ(counters.size(), 2u);  // zero-times scan records nothing
  const auto sort_it =
      counters.find(trace::PrimitiveKey{trace::Primitive::kSort, p});
  ASSERT_NE(sort_it, counters.end());
  EXPECT_EQ(sort_it->second.calls, 1u);
  const auto rar_it =
      counters.find(trace::PrimitiveKey{trace::Primitive::kRar, p});
  ASSERT_NE(rar_it, counters.end());
  EXPECT_EQ(rar_it->second.calls, 3u);
  EXPECT_DOUBLE_EQ(rar_it->second.steps, 3.0 * m.rar(p).steps);
}

TEST(CostModel, CompositeChargesAttributeOnlyThemselves) {
  // rar must not also show up as sort/scan/route in the histogram —
  // otherwise per-primitive attribution would double count.
  trace::TraceRecorder rec("counting");
  CostModel m;
  m.trace = &rec;
  m.rar(64);
  const auto counters = rec.counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters.begin()->first.prim, trace::Primitive::kRar);
}

}  // namespace
