// Tests for the additional tree structures: segment trees (stabbing counts
// by a second, independent decomposition) and 2-3 trees (the [PVS83]
// reference structure), both as Theorem-5 multisearch inputs.
#include <gtest/gtest.h>

#include <algorithm>

#include "datastruct/interval_tree.hpp"
#include "datastruct/segment_tree.hpp"
#include "datastruct/twothree_tree.hpp"
#include "datastruct/workloads.hpp"
#include "multisearch/partitioned.hpp"
#include "multisearch/query.hpp"
#include "multisearch/sequential.hpp"

namespace {

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::Interval;
using ds::SegmentTree;
using ds::TwoThreeTree;

std::vector<Interval> random_intervals(std::size_t n, std::int64_t span,
                                       std::int64_t max_len, util::Rng& rng) {
  std::vector<Interval> ivs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t lo = rng.uniform_range(-span, span);
    ivs[i] = Interval{lo, lo + rng.uniform_range(0, max_len),
                      static_cast<std::int32_t>(i)};
  }
  return ivs;
}

// ---------------------------------------------------------------------------
// segment tree
// ---------------------------------------------------------------------------

TEST(SegmentTree, SingleInterval) {
  SegmentTree t({{10, 20, 0}});
  auto qs = make_queries(5);
  qs[0].key[0] = 9;
  qs[1].key[0] = 10;
  qs[2].key[0] = 15;
  qs[3].key[0] = 20;
  qs[4].key[0] = 21;
  sequential_multisearch(t.graph(), t.stab_count(), qs);
  EXPECT_EQ(qs[0].acc0, 0);
  EXPECT_EQ(qs[1].acc0, 1);
  EXPECT_EQ(qs[2].acc0, 1);
  EXPECT_EQ(qs[3].acc0, 1);
  EXPECT_EQ(qs[4].acc0, 0);
}

TEST(SegmentTree, PointIntervalsAndTouching) {
  SegmentTree t({{5, 5, 0}, {5, 9, 1}, {9, 12, 2}});
  auto qs = make_queries(4);
  qs[0].key[0] = 5;
  qs[1].key[0] = 7;
  qs[2].key[0] = 9;
  qs[3].key[0] = 12;
  sequential_multisearch(t.graph(), t.stab_count(), qs);
  EXPECT_EQ(qs[0].acc0, 2);
  EXPECT_EQ(qs[1].acc0, 1);
  EXPECT_EQ(qs[2].acc0, 2);
  EXPECT_EQ(qs[3].acc0, 1);
}

class SegmentTreeTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(SegmentTreeTest, MatchesOracleAndIntervalTree) {
  const auto [n, maxlen] = GetParam();
  util::Rng rng(600 + n + maxlen);
  const auto ivs =
      random_intervals(static_cast<std::size_t>(n), 400, maxlen, rng);
  SegmentTree st(ivs);
  ds::IntervalTree it(ivs);
  auto qs = make_queries(300);
  for (auto& q : qs) q.key[0] = rng.uniform_range(-450, 450);
  auto q_st = qs;
  sequential_multisearch(st.graph(), st.stab_count(), q_st);
  auto q_it = qs;
  sequential_multisearch(it.graph(), it.stabbing_program(), q_it);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto [cnt, sum] = ds::IntervalTree::stab_oracle(ivs, qs[i].key[0]);
    (void)sum;
    EXPECT_EQ(q_st[i].acc0, cnt) << "x=" << qs[i].key[0];
    // Two totally different decompositions agree.
    EXPECT_EQ(q_st[i].acc0, q_it[i].acc0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SegmentTreeTest,
    ::testing::Combine(::testing::Values(1, 9, 77, 400),
                       ::testing::Values(0, 3, 50, 900)));

TEST(SegmentTree, ViaAlgorithm2) {
  util::Rng rng(601);
  const auto ivs = random_intervals(500, 3000, 120, rng);
  SegmentTree st(ivs);
  const auto psi = st.alpha_splitting();
  validate_alpha_splitting(st.graph(), psi);
  auto qs = make_queries(500);
  for (auto& q : qs) q.key[0] = rng.uniform_range(-3200, 3200);
  auto qseq = qs;
  sequential_multisearch(st.graph(), st.stab_count(), qseq);
  auto qalg = qs;
  const mesh::CostModel m;
  const auto shape = st.graph().shape_for(qs.size());
  multisearch_alpha(st.graph(), psi, st.stab_count(), qalg, m, shape);
  EXPECT_EQ(diff_outcomes(outcomes(qseq), outcomes(qalg)), "");
}

TEST(SegmentTree, DescentLengthIsHeight) {
  util::Rng rng(602);
  const auto ivs = random_intervals(1000, 5000, 100, rng);
  SegmentTree st(ivs);
  auto qs = make_queries(50);
  for (auto& q : qs) q.key[0] = rng.uniform_range(-5200, 5200);
  sequential_multisearch(st.graph(), st.stab_count(), qs);
  for (const auto& q : qs) EXPECT_EQ(q.steps, st.height() + 1);
}

// ---------------------------------------------------------------------------
// 2-3 tree
// ---------------------------------------------------------------------------

TEST(TwoThreeTree, StructureInvariants) {
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 17u, 100u, 1000u}) {
    std::vector<std::int64_t> keys(n);
    for (std::size_t i = 0; i < n; ++i) keys[i] = static_cast<std::int64_t>(3 * i);
    TwoThreeTree t(keys);
    // Every internal node has 2 or 3 children; every leaf at depth height.
    std::size_t leaves = 0;
    for (const auto& v : t.graph().verts()) {
      if (v.key[6] == 0) {
        ++leaves;
        EXPECT_EQ(v.level, t.height());
      } else {
        EXPECT_TRUE(v.key[6] == 2 || v.key[6] == 3) << v.key[6];
        EXPECT_EQ(static_cast<unsigned>(v.degree),
                  static_cast<unsigned>(v.key[6]));
      }
    }
    EXPECT_EQ(leaves, n);
    // Height within the 2-3 bounds.
    if (n > 1) {
      EXPECT_LE(std::pow(2.0, t.height()), static_cast<double>(n));
      EXPECT_GE(std::pow(3.0, t.height()), static_cast<double>(n));
    }
  }
}

TEST(TwoThreeTree, LookupAgainstBinarySearch) {
  util::Rng rng(603);
  std::vector<std::int64_t> keys;
  std::int64_t cur = 0;
  for (int i = 0; i < 500; ++i) {
    cur += 1 + static_cast<std::int64_t>(rng.uniform(7));
    keys.push_back(cur);
  }
  TwoThreeTree t(keys);
  auto qs = make_queries(800);
  for (auto& q : qs)
    q.key[0] = rng.uniform_range(-5, cur + 5);
  sequential_multisearch(t.graph(), t.lookup(), qs);
  for (const auto& q : qs) {
    const bool member =
        std::binary_search(keys.begin(), keys.end(), q.key[0]);
    EXPECT_EQ(q.acc0, member ? 1 : 0) << "x=" << q.key[0];
    auto it = std::upper_bound(keys.begin(), keys.end(), q.key[0]);
    const std::int64_t pred = it == keys.begin()
                                  ? std::numeric_limits<std::int64_t>::min()
                                  : *std::prev(it);
    EXPECT_EQ(q.acc1, pred) << "x=" << q.key[0];
  }
}

TEST(TwoThreeTree, ViaAlgorithm2) {
  util::Rng rng(604);
  std::vector<std::int64_t> keys(3000);
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = static_cast<std::int64_t>(2 * i);
  TwoThreeTree t(keys);
  const auto psi = t.alpha_splitting();
  validate_alpha_splitting(t.graph(), psi);
  auto qs = make_queries(2000);
  for (auto& q : qs) q.key[0] = rng.uniform_range(-3, 6003);
  auto qseq = qs;
  sequential_multisearch(t.graph(), t.lookup(), qseq);
  auto qalg = qs;
  const mesh::CostModel m;
  const auto shape = t.graph().shape_for(qs.size());
  const auto res = multisearch_alpha(t.graph(), psi, t.lookup(), qalg, m, shape);
  EXPECT_EQ(diff_outcomes(outcomes(qseq), outcomes(qalg)), "");
  EXPECT_GE(res.log_phases, 1u);
}

}  // namespace
