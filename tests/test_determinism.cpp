// Determinism contract tests (DESIGN.md §5.6): host parallelism is a
// wall-clock accelerator only. Every engine must produce bit-identical
// query outcomes, simulated cost totals, and per-primitive attribution
// tables at any thread count. Each test runs the same workload with a
// 1-thread (fully serial) and an 8-thread global pool and compares.
#include <gtest/gtest.h>

#include <map>
#include <span>
#include <vector>

#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "mesh/fault.hpp"
#include "mesh/ops.hpp"
#include "multisearch/constrained.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/partitioned.hpp"
#include "multisearch/query.hpp"
#include "multisearch/sequential.hpp"
#include "service/engine.hpp"
#include "service/scheduler.hpp"
#include "service/tenant.hpp"
#include "trace/stats.hpp"
#include "trace/trace.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"

namespace {

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::KaryTree;
using ds::TreeMode;

/// Everything the determinism contract covers for one run.
struct RunRecord {
  std::vector<QueryOutcome> out;
  mesh::Cost cost;
  std::map<trace::PrimitiveKey, trace::PrimitiveStat> counters;
};

/// Run `f` (which takes a trace-wired CostModel and returns a RunRecord)
/// under a 1-thread pool and an 8-thread pool and demand bit-identical
/// results. Restores the default pool afterwards.
template <typename F>
void expect_thread_invariant(F f) {
  util::ThreadPool::set_global_threads(1);
  const RunRecord serial = f();
  util::ThreadPool::set_global_threads(8);
  const RunRecord parallel = f();
  util::ThreadPool::set_global_threads(0);
  EXPECT_EQ(diff_outcomes(serial.out, parallel.out), "");
  EXPECT_EQ(serial.cost, parallel.cost);  // exact, not approximate
  EXPECT_EQ(serial.counters.size(), parallel.counters.size());
  EXPECT_TRUE(serial.counters == parallel.counters)
      << "per-primitive attribution diverged across thread counts";
}

TEST(Determinism, Alg1PaperPlan) {
  util::Rng rng(10);
  const auto g = ds::build_hierarchical_dag(3000, 2.0, 3, rng);
  const HierarchicalDag dag(g, 2.0);
  auto qs = make_queries(g.vertex_count());
  util::Rng qrng(11);
  for (auto& q : qs)
    q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));
  const auto shape = g.shape_for(qs.size());
  expect_thread_invariant([&] {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    auto q = qs;
    const auto res = hierarchical_multisearch(dag, ds::HashWalk{0}, q, m,
                                              shape, PlanKind::kPaper);
    return RunRecord{outcomes(q), res.cost, rec.counters()};
  });
}

TEST(Determinism, Alg1GeometricPlan) {
  util::Rng rng(12);
  const auto g = ds::build_hierarchical_dag(3000, 2.0, 3, rng);
  const HierarchicalDag dag(g, 2.0);
  auto qs = make_queries(g.vertex_count());
  util::Rng qrng(13);
  for (auto& q : qs)
    q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));
  const auto shape = g.shape_for(qs.size());
  expect_thread_invariant([&] {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    auto q = qs;
    const auto res = hierarchical_multisearch(dag, ds::HashWalk{0}, q, m,
                                              shape, PlanKind::kGeometric);
    return RunRecord{outcomes(q), res.cost, rec.counters()};
  });
}

TEST(Determinism, ConstrainedMultisearch) {
  const auto comb = ds::build_comb(16, 64);
  auto qs = make_queries(256);
  util::Rng rng(14);
  for (auto& q : qs) {
    q.key[0] = rng.uniform_range(0, 15);  // target tooth
    q.key[1] = rng.uniform_range(0, 63);  // depth down the tooth
  }
  reset_queries(qs);
  const auto shape = comb.graph.shape_for(qs.size());
  expect_thread_invariant([&] {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    auto q = qs;
    const auto res = constrained_multisearch(
        comb.graph, comb.splitting, ds::CombWalk{comb.root}, q, m, shape);
    mesh::Cost cost = res.cost;
    return RunRecord{outcomes(q), cost, rec.counters()};
  });
}

TEST(Determinism, Alg2AlphaPartitioned) {
  KaryTree tree(ds::iota_keys(1000), 3, TreeMode::kDirected);
  util::Rng rng(15);
  auto qs = ds::uniform_key_queries(1000, 1020, rng);
  const auto shape = tree.graph().shape_for(qs.size());
  expect_thread_invariant([&] {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    auto q = qs;
    const auto res = multisearch_alpha(tree.graph(), tree.alpha_splitting(),
                                       tree.rank_count(), q, m, shape);
    return RunRecord{outcomes(q), res.cost, rec.counters()};
  });
}

TEST(Determinism, DisarmedFaultPlanBitIdenticalStandaloneEngines) {
  // Fault-free contract (DESIGN.md §11): a disarmed FaultPlan threaded
  // through CostModel::fault changes nothing — outcomes, cost and
  // attribution match a null-fault run at every thread count.
  util::Rng rng(18);
  const auto g = ds::build_hierarchical_dag(1500, 2.0, 3, rng);
  const HierarchicalDag dag(g, 2.0);
  auto qs = make_queries(g.vertex_count());
  util::Rng qrng(19);
  for (auto& q : qs)
    q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));
  const auto shape = g.shape_for(qs.size());
  mesh::FaultPlan disarmed;
  for (mesh::FaultPlan* plan :
       {static_cast<mesh::FaultPlan*>(nullptr), &disarmed}) {
    expect_thread_invariant([&] {
      trace::TraceRecorder rec("counting");
      mesh::CostModel m;
      m.trace = &rec;
      m.fault = plan;
      auto q = qs;
      const auto res = hierarchical_multisearch(dag, ds::HashWalk{0}, q, m,
                                                shape, PlanKind::kPaper);
      return RunRecord{outcomes(q), res.cost, rec.counters()};
    });
  }
  // And directly across the two plan settings at the default pool.
  auto run_with = [&](mesh::FaultPlan* plan) {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    m.fault = plan;
    auto q = qs;
    const auto res = hierarchical_multisearch(dag, ds::HashWalk{0}, q, m,
                                              shape, PlanKind::kPaper);
    return RunRecord{outcomes(q), res.cost, rec.counters()};
  };
  const RunRecord bare = run_with(nullptr);
  const RunRecord with = run_with(&disarmed);
  EXPECT_EQ(diff_outcomes(bare.out, with.out), "");
  EXPECT_EQ(bare.cost, with.cost);
  EXPECT_TRUE(bare.counters == with.counters);
  EXPECT_EQ(disarmed.stats().detections, 0u);
}

TEST(Determinism, SoaCountingKernelsBitIdenticalAcrossThreads) {
  // The SoA kernels (radix sort histograms, fixed-chunk scatters) are the
  // only counting-engine code with real host parallelism inside a
  // primitive; their data and charged costs must not depend on the pool.
  util::Rng rng(20);
  const std::size_t n = 1 << 15;
  std::vector<std::int64_t> keys(n);
  for (auto& k : keys) k = rng.uniform_range(-(1ll << 40), 1ll << 40);
  std::vector<std::int64_t> dup(n);  // heavy duplication stresses stability
  for (auto& k : dup) k = rng.uniform_range(0, 7);
  const mesh::CostModel m;
  const double p = static_cast<double>(n);
  struct KernelRecord {
    std::vector<std::int64_t> sorted, dup_sorted;
    std::vector<std::uint32_t> ranks, order;
    mesh::Cost cost;
    bool operator==(const KernelRecord&) const = default;
  };
  const auto run = [&] {
    KernelRecord r;
    r.sorted = keys;
    r.cost += mesh::ops::sort(r.sorted, m, p);
    r.dup_sorted = dup;
    r.cost += mesh::ops::sort(r.dup_sorted, m, p);
    r.cost += mesh::ops::rank(keys, r.ranks, m, p);
    r.order = mesh::ops::soa::sort_index(std::span<const std::int64_t>(dup));
    return r;
  };
  util::ThreadPool::set_global_threads(1);
  const KernelRecord serial = run();
  util::ThreadPool::set_global_threads(8);
  const KernelRecord parallel = run();
  util::ThreadPool::set_global_threads(0);
  EXPECT_TRUE(serial == parallel)
      << "SoA kernel data or cost diverged across thread counts";
}

TEST(Determinism, Alg3AlphaBetaPartitioned) {
  KaryTree tree(ds::iota_keys(512), 2, TreeMode::kUndirected);
  auto qs = make_queries(256);
  util::Rng rng(16);
  for (auto& q : qs) {
    const auto a = rng.uniform_range(-3, 515);
    q.key[0] = a;
    q.key[1] = a + rng.uniform_range(0, 30);
  }
  const auto shape = tree.graph().shape_for(qs.size());
  const auto [s1, s2] = tree.alpha_beta_splittings();
  expect_thread_invariant([&] {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    auto q = qs;
    const auto res = multisearch_alpha_beta(tree.graph(), s1, s2,
                                            tree.euler_scan(), q, m, shape);
    return RunRecord{outcomes(q), res.cost, rec.counters()};
  });
}

// ---------------------------------------------------------------------------
// Multi-tenant service determinism: a pinned arrival trace through the
// ServiceScheduler — two tenants interleaving submissions on one warm
// engine — produces bit-identical outcomes, charged costs, primitive
// attribution, AND exported tenant metrics at 1 vs 8 threads, with the
// stats registry disabled or armed (MESHSEARCH_STATS=1 equivalent).
// ---------------------------------------------------------------------------

TEST(Determinism, MultiTenantServicePinnedTraceBitIdentical) {
  KaryTree tree(ds::iota_keys(500), 3, TreeMode::kDirected);
  const auto shape = tree.graph().shape_for(tree.graph().vertex_count());
  const std::size_t cap = shape.size();
  const auto make_stream = [&](std::size_t m, std::uint64_t seed) {
    util::Rng rng(seed);
    return ds::uniform_key_queries(m, 520, rng);
  };
  // The pinned trace: four submissions interleaved across two tenants, with
  // a pump between waves so later arrivals queue behind in-flight work, plus
  // a fifth wave that deterministically expires (the clock jumps past
  // bolt's deadline before its dispatch) so overload shedding is inside the
  // bit-identity contract too.
  const auto qa1 = make_stream(cap + 31, 71);
  const auto qb1 = make_stream(cap / 2, 72);
  const auto qa2 = make_stream(cap / 3, 73);
  const auto qb2 = make_stream(cap + 7, 74);
  const auto qb3 = make_stream(cap / 4, 75);

  // One warm batch's charged steps — the unit bolt's deadline is written
  // in. Deterministic: a scratch engine under a fresh model.
  const double spb = [&] {
    const mesh::CostModel m;
    auto scratch = service::make_partitioned_engine(
        EngineKind::kAlg2Alpha, tree.graph(), tree.alpha_splitting(),
        tree.alpha_splitting(), tree.rank_count(), m, shape);
    auto batch = make_stream(scratch->capacity(), 70);
    const BatchReport rep = scratch->run_batch(batch);
    return (rep.inject + rep.run).steps;
  }();

  struct ServiceRecord {
    std::vector<QueryOutcome> out;  ///< both tenants, ticket order
    double clock_steps = 0;
    std::map<trace::PrimitiveKey, trace::PrimitiveStat> counters;
    std::map<std::string, double> metrics;  ///< exported, deterministic
  };
  const auto run = [&] {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    auto engine = service::make_partitioned_engine(
        EngineKind::kAlg2Alpha, tree.graph(), tree.alpha_splitting(),
        tree.alpha_splitting(), tree.rank_count(), m, shape);
    service::ServiceScheduler svc({}, &rec);
    service::TenantQuota quota;
    quota.max_outstanding = 8 * cap;
    service::SloPolicy bolt_slo;
    bolt_slo.deadline_steps = 16 * spb;  // generous: waves 1-2 never shed
    bolt_slo.shed_mode = service::ShedMode::kDeadline;
    service::TenantSession& a = svc.add_tenant("acme", *engine, quota);
    service::TenantSession& b =
        svc.add_tenant("bolt", *engine, quota, bolt_slo);
    a.submit(qa1);
    b.submit(qb1);
    svc.pump();  // wave 1 partially served before wave 2 arrives
    a.submit(qa2);
    b.submit(qb2);
    svc.run_until_idle();
    // Wave 5 expires in an idle gap: every query sheds at the next pump,
    // before any dispatch — a deterministic function of the clock sequence.
    b.submit(qb3);
    svc.advance_clock_to(svc.now_steps() + bolt_slo.deadline_steps + 1.0);
    svc.run_until_idle();
    svc.export_metrics();
    ServiceRecord r;
    for (const service::TenantSession* t : {&a, &b})
      for (service::Ticket k = 0; k < t->submitted(); ++k) {
        if (t->poll(k) == service::QueryState::kShed) {
          // No answer to read (result() throws the typed error); pin the
          // shed state itself as a sentinel row.
          r.out.push_back(QueryOutcome{-1, -1, -1, -1});
          continue;
        }
        const Query& q = t->result(k);
        r.out.push_back(QueryOutcome{q.steps, q.acc0, q.acc1, q.result});
      }
    r.clock_steps = svc.now_steps();
    r.counters = rec.counters();
    for (const auto& mt : rec.metrics()) r.metrics[mt.name] = mt.value;
    return r;
  };

  util::ThreadPool::set_global_threads(1);
  const ServiceRecord serial = run();
  util::ThreadPool::set_global_threads(8);
  const ServiceRecord parallel = run();
  // Third run with the stats registry armed (what MESHSEARCH_STATS=1 does):
  // wall histograms flow, determinism-covered values must not move.
  auto& registry = stats::StatsRegistry::global();
  const bool stats_were_enabled = registry.enabled();
  registry.set_enabled(true);
  const ServiceRecord stats_on = run();
  registry.set_enabled(stats_were_enabled);
  util::ThreadPool::set_global_threads(0);

  for (const ServiceRecord* other : {&parallel, &stats_on}) {
    EXPECT_EQ(diff_outcomes(serial.out, other->out), "");
    EXPECT_EQ(serial.clock_steps, other->clock_steps);  // exact
    EXPECT_TRUE(serial.counters == other->counters)
        << "per-primitive attribution diverged";
    EXPECT_EQ(serial.metrics.size(), other->metrics.size());
    EXPECT_TRUE(serial.metrics == other->metrics)
        << "exported tenant metrics diverged";
  }
  // Sanity: the pinned trace exercised both tenants, produced metrics, and
  // shed exactly the expired wave (completed + shed == submitted for bolt).
  EXPECT_EQ(serial.out.size(), qa1.size() + qb1.size() + qa2.size() +
                                   qb2.size() + qb3.size());
  EXPECT_EQ(serial.metrics.at("tenant.acme.completed"),
            static_cast<double>(qa1.size() + qa2.size()));
  EXPECT_EQ(serial.metrics.at("tenant.bolt.completed"),
            static_cast<double>(qb1.size() + qb2.size()));
  EXPECT_EQ(serial.metrics.at("tenant.bolt.shed"),
            static_cast<double>(qb3.size()));
}

}  // namespace
