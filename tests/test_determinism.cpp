// Determinism contract tests (DESIGN.md §5.6): host parallelism is a
// wall-clock accelerator only. Every engine must produce bit-identical
// query outcomes, simulated cost totals, and per-primitive attribution
// tables at any thread count. Each test runs the same workload with a
// 1-thread (fully serial) and an 8-thread global pool and compares.
#include <gtest/gtest.h>

#include <map>
#include <span>
#include <vector>

#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "mesh/fault.hpp"
#include "mesh/ops.hpp"
#include "multisearch/constrained.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/partitioned.hpp"
#include "multisearch/query.hpp"
#include "trace/trace.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"

namespace {

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::KaryTree;
using ds::TreeMode;

/// Everything the determinism contract covers for one run.
struct RunRecord {
  std::vector<QueryOutcome> out;
  mesh::Cost cost;
  std::map<trace::PrimitiveKey, trace::PrimitiveStat> counters;
};

/// Run `f` (which takes a trace-wired CostModel and returns a RunRecord)
/// under a 1-thread pool and an 8-thread pool and demand bit-identical
/// results. Restores the default pool afterwards.
template <typename F>
void expect_thread_invariant(F f) {
  util::ThreadPool::set_global_threads(1);
  const RunRecord serial = f();
  util::ThreadPool::set_global_threads(8);
  const RunRecord parallel = f();
  util::ThreadPool::set_global_threads(0);
  EXPECT_EQ(diff_outcomes(serial.out, parallel.out), "");
  EXPECT_EQ(serial.cost, parallel.cost);  // exact, not approximate
  EXPECT_EQ(serial.counters.size(), parallel.counters.size());
  EXPECT_TRUE(serial.counters == parallel.counters)
      << "per-primitive attribution diverged across thread counts";
}

TEST(Determinism, Alg1PaperPlan) {
  util::Rng rng(10);
  const auto g = ds::build_hierarchical_dag(3000, 2.0, 3, rng);
  const HierarchicalDag dag(g, 2.0);
  auto qs = make_queries(g.vertex_count());
  util::Rng qrng(11);
  for (auto& q : qs)
    q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));
  const auto shape = g.shape_for(qs.size());
  expect_thread_invariant([&] {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    auto q = qs;
    const auto res = hierarchical_multisearch(dag, ds::HashWalk{0}, q, m,
                                              shape, PlanKind::kPaper);
    return RunRecord{outcomes(q), res.cost, rec.counters()};
  });
}

TEST(Determinism, Alg1GeometricPlan) {
  util::Rng rng(12);
  const auto g = ds::build_hierarchical_dag(3000, 2.0, 3, rng);
  const HierarchicalDag dag(g, 2.0);
  auto qs = make_queries(g.vertex_count());
  util::Rng qrng(13);
  for (auto& q : qs)
    q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));
  const auto shape = g.shape_for(qs.size());
  expect_thread_invariant([&] {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    auto q = qs;
    const auto res = hierarchical_multisearch(dag, ds::HashWalk{0}, q, m,
                                              shape, PlanKind::kGeometric);
    return RunRecord{outcomes(q), res.cost, rec.counters()};
  });
}

TEST(Determinism, ConstrainedMultisearch) {
  const auto comb = ds::build_comb(16, 64);
  auto qs = make_queries(256);
  util::Rng rng(14);
  for (auto& q : qs) {
    q.key[0] = rng.uniform_range(0, 15);  // target tooth
    q.key[1] = rng.uniform_range(0, 63);  // depth down the tooth
  }
  reset_queries(qs);
  const auto shape = comb.graph.shape_for(qs.size());
  expect_thread_invariant([&] {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    auto q = qs;
    const auto res = constrained_multisearch(
        comb.graph, comb.splitting, ds::CombWalk{comb.root}, q, m, shape);
    mesh::Cost cost = res.cost;
    return RunRecord{outcomes(q), cost, rec.counters()};
  });
}

TEST(Determinism, Alg2AlphaPartitioned) {
  KaryTree tree(ds::iota_keys(1000), 3, TreeMode::kDirected);
  util::Rng rng(15);
  auto qs = ds::uniform_key_queries(1000, 1020, rng);
  const auto shape = tree.graph().shape_for(qs.size());
  expect_thread_invariant([&] {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    auto q = qs;
    const auto res = multisearch_alpha(tree.graph(), tree.alpha_splitting(),
                                       tree.rank_count(), q, m, shape);
    return RunRecord{outcomes(q), res.cost, rec.counters()};
  });
}

TEST(Determinism, DisarmedFaultPlanBitIdenticalStandaloneEngines) {
  // Fault-free contract (DESIGN.md §11): a disarmed FaultPlan threaded
  // through CostModel::fault changes nothing — outcomes, cost and
  // attribution match a null-fault run at every thread count.
  util::Rng rng(18);
  const auto g = ds::build_hierarchical_dag(1500, 2.0, 3, rng);
  const HierarchicalDag dag(g, 2.0);
  auto qs = make_queries(g.vertex_count());
  util::Rng qrng(19);
  for (auto& q : qs)
    q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));
  const auto shape = g.shape_for(qs.size());
  mesh::FaultPlan disarmed;
  for (mesh::FaultPlan* plan :
       {static_cast<mesh::FaultPlan*>(nullptr), &disarmed}) {
    expect_thread_invariant([&] {
      trace::TraceRecorder rec("counting");
      mesh::CostModel m;
      m.trace = &rec;
      m.fault = plan;
      auto q = qs;
      const auto res = hierarchical_multisearch(dag, ds::HashWalk{0}, q, m,
                                                shape, PlanKind::kPaper);
      return RunRecord{outcomes(q), res.cost, rec.counters()};
    });
  }
  // And directly across the two plan settings at the default pool.
  auto run_with = [&](mesh::FaultPlan* plan) {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    m.fault = plan;
    auto q = qs;
    const auto res = hierarchical_multisearch(dag, ds::HashWalk{0}, q, m,
                                              shape, PlanKind::kPaper);
    return RunRecord{outcomes(q), res.cost, rec.counters()};
  };
  const RunRecord bare = run_with(nullptr);
  const RunRecord with = run_with(&disarmed);
  EXPECT_EQ(diff_outcomes(bare.out, with.out), "");
  EXPECT_EQ(bare.cost, with.cost);
  EXPECT_TRUE(bare.counters == with.counters);
  EXPECT_EQ(disarmed.stats().detections, 0u);
}

TEST(Determinism, SoaCountingKernelsBitIdenticalAcrossThreads) {
  // The SoA kernels (radix sort histograms, fixed-chunk scatters) are the
  // only counting-engine code with real host parallelism inside a
  // primitive; their data and charged costs must not depend on the pool.
  util::Rng rng(20);
  const std::size_t n = 1 << 15;
  std::vector<std::int64_t> keys(n);
  for (auto& k : keys) k = rng.uniform_range(-(1ll << 40), 1ll << 40);
  std::vector<std::int64_t> dup(n);  // heavy duplication stresses stability
  for (auto& k : dup) k = rng.uniform_range(0, 7);
  const mesh::CostModel m;
  const double p = static_cast<double>(n);
  struct KernelRecord {
    std::vector<std::int64_t> sorted, dup_sorted;
    std::vector<std::uint32_t> ranks, order;
    mesh::Cost cost;
    bool operator==(const KernelRecord&) const = default;
  };
  const auto run = [&] {
    KernelRecord r;
    r.sorted = keys;
    r.cost += mesh::ops::sort(r.sorted, m, p);
    r.dup_sorted = dup;
    r.cost += mesh::ops::sort(r.dup_sorted, m, p);
    r.cost += mesh::ops::rank(keys, r.ranks, m, p);
    r.order = mesh::ops::soa::sort_index(std::span<const std::int64_t>(dup));
    return r;
  };
  util::ThreadPool::set_global_threads(1);
  const KernelRecord serial = run();
  util::ThreadPool::set_global_threads(8);
  const KernelRecord parallel = run();
  util::ThreadPool::set_global_threads(0);
  EXPECT_TRUE(serial == parallel)
      << "SoA kernel data or cost diverged across thread counts";
}

TEST(Determinism, Alg3AlphaBetaPartitioned) {
  KaryTree tree(ds::iota_keys(512), 2, TreeMode::kUndirected);
  auto qs = make_queries(256);
  util::Rng rng(16);
  for (auto& q : qs) {
    const auto a = rng.uniform_range(-3, 515);
    q.key[0] = a;
    q.key[1] = a + rng.uniform_range(0, 30);
  }
  const auto shape = tree.graph().shape_for(qs.size());
  const auto [s1, s2] = tree.alpha_beta_splittings();
  expect_thread_invariant([&] {
    trace::TraceRecorder rec("counting");
    mesh::CostModel m;
    m.trace = &rec;
    auto q = qs;
    const auto res = multisearch_alpha_beta(tree.graph(), s1, s2,
                                            tree.euler_scan(), q, m, shape);
    return RunRecord{outcomes(q), res.cost, rec.counters()};
  });
}

}  // namespace
