// Observability-layer tests: LogHistogram bucket math and percentiles
// (against a sorted-vector oracle), StatsRegistry sharding and snapshot
// determinism, disabled-mode zero-allocation, concurrent updates, the
// registry-backed TraceRecorder::metric() (the O(n^2) overwrite fix), the
// JSON reader/writer round trip, and the bench baseline comparison logic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "trace/stats.hpp"
#include "trace/trace.hpp"
#include "util/benchcmp.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using meshsearch::stats::StatsRegistry;
using meshsearch::util::BenchCompareOptions;
using meshsearch::util::compare_bench;
using meshsearch::util::JsonValue;
using meshsearch::util::LogHistogram;
using meshsearch::util::parse_json;

namespace {

// ---------------------------------------------------------------------------
// LogHistogram

TEST(LogHistogram, BucketIndexIsMonotoneAcrossBoundaries) {
  std::size_t prev = 0;
  for (double v : {0.0, 1e-4, 1e-3, 2e-3, 0.1, 0.5, 1.0, 1.5, 2.0, 3.0, 100.0,
                   1e6, 1e12, 1e30}) {
    const std::size_t i = LogHistogram::bucket_index(v);
    EXPECT_GE(i, prev) << "v=" << v;
    EXPECT_LT(i, LogHistogram::kBucketCount);
    prev = i;
  }
}

TEST(LogHistogram, BucketContainsItsRepresentative) {
  for (std::size_t i = 1; i + 1 < LogHistogram::kBucketCount; ++i) {
    const double rep = LogHistogram::bucket_value(i);
    EXPECT_EQ(LogHistogram::bucket_index(rep), i) << "bucket " << i;
    // bucket_upper is the mathematical boundary between buckets i and i+1;
    // libm rounding may land the exact boundary value on either side, but
    // values clearly below/above it must classify correctly.
    const double up = LogHistogram::bucket_upper(i);
    const std::size_t at = LogHistogram::bucket_index(up);
    EXPECT_TRUE(at == i || at == i + 1) << "bucket " << i << " at " << at;
    EXPECT_LE(LogHistogram::bucket_index(up * 0.999), i) << "bucket " << i;
    EXPECT_GT(LogHistogram::bucket_index(up * 1.001), i) << "bucket " << i;
  }
}

TEST(LogHistogram, ExactMomentsAndEmptyBehavior) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  h.observe(3.25);
  h.observe(1.5, 4);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 3.25 + 4 * 1.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.5);
  EXPECT_DOUBLE_EQ(h.max(), 3.25);
  EXPECT_DOUBLE_EQ(h.mean(), (3.25 + 6.0) / 5);
}

/// Percentiles must track a sorted-vector oracle within the documented
/// ~4.4% bucket resolution (plus the clamp to exact min/max).
TEST(LogHistogram, PercentilesMatchSortedVectorOracle) {
  meshsearch::util::Rng rng(1234);
  std::vector<double> values;
  LogHistogram h;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over ~6 decades, the realistic span of wall timings.
    const double v =
        std::pow(10.0, static_cast<double>(rng.uniform(6'000'000)) / 1e6);
    values.push_back(v);
    h.observe(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const double oracle = values[rank - 1];
    const double est = h.percentile(q);
    EXPECT_NEAR(est / oracle, 1.0, 0.05) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.percentile(1.0), h.max());
}

TEST(LogHistogram, MergeEqualsInterleavedObservation) {
  LogHistogram a, b, both;
  meshsearch::util::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    // Quarter-integer values keep every partial sum exact in a double, so
    // merge order cannot perturb `sum` and equality is bit-for-bit.
    const double v = static_cast<double>(rng.uniform(100000)) * 0.25;
    (i % 2 == 0 ? a : b).observe(v);
    both.observe(v);
  }
  a.merge(b);
  EXPECT_EQ(a, both);
}

// ---------------------------------------------------------------------------
// StatsRegistry

TEST(StatsRegistry, CountersGaugesHistogramsRoundTrip) {
  StatsRegistry reg(true);
  reg.add("requests", 3);
  reg.add("requests", 2);
  reg.set("温度", 21.5);  // names are arbitrary bytes
  reg.observe("lat_us", 100.0);
  reg.observe("lat_us", 200.0);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "requests");
  EXPECT_EQ(snap.counters[0].value, 5u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 21.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.count(), 2u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].hist.sum(), 300.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].hist.min(), 100.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].hist.max(), 200.0);
}

TEST(StatsRegistry, DisabledRegistryAllocatesNoShards) {
  StatsRegistry reg(false);
  reg.add("c", 10);
  reg.observe("h", 1.0);
  reg.set("g", 2.0);
  EXPECT_EQ(reg.shard_count(), 0u);
  const auto snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(snap.gauges.empty());
}

TEST(StatsRegistry, ConcurrentUpdatesMergeExactly) {
  StatsRegistry reg(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  const auto counter = reg.counter("hits");
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, counter, t] {
      const auto hist = reg.histogram("obs");
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        hist.observe(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.histograms[0].hist.min(), 1.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].hist.max(), kThreads);
  EXPECT_GE(reg.shard_count(), 1u);
  EXPECT_LE(reg.shard_count(), static_cast<std::size_t>(kThreads) + 1);
}

TEST(StatsRegistry, SnapshotIsDeterministicRegistrationOrder) {
  StatsRegistry reg(true);
  reg.add("z", 1);
  reg.add("a", 1);
  reg.add("m", 1);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "z");
  EXPECT_EQ(snap.counters[1].name, "a");
  EXPECT_EQ(snap.counters[2].name, "m");
}

TEST(StatsRegistry, ResetZeroesValuesKeepsRegistrations) {
  StatsRegistry reg(true);
  reg.add("c", 7);
  reg.observe("h", 3.0);
  reg.set("g", 4.0);
  reg.reset();
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 0u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_TRUE(snap.histograms[0].hist.empty());
}

// ---------------------------------------------------------------------------
// TraceRecorder::metric — the O(n^2) overwrite fix

TEST(TraceMetrics, TenThousandMetricsKeepOrderAndOverwrite) {
  meshsearch::trace::TraceRecorder rec("test");
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i)
    rec.metric("m" + std::to_string(i), static_cast<double>(i));
  // Overwrite every metric once — the old implementation scanned the whole
  // vector per call, turning this loop quadratic.
  for (int i = 0; i < kN; ++i)
    rec.metric("m" + std::to_string(i), static_cast<double>(2 * i));
  const auto metrics = rec.metrics();
  ASSERT_EQ(metrics.size(), static_cast<std::size_t>(kN));
  for (int i : {0, 1, 4999, 9999}) {
    EXPECT_EQ(metrics[static_cast<std::size_t>(i)].name,
              "m" + std::to_string(i));
    EXPECT_DOUBLE_EQ(metrics[static_cast<std::size_t>(i)].value, 2.0 * i);
  }
}

// ---------------------------------------------------------------------------
// JSON reader/writer

TEST(Json, ParseDumpRoundTrip) {
  const char* doc =
      R"({"a": [1, 2.5, "x\n", true, null], "b": {"nested": -3e2}})";
  const auto parsed = parse_json(doc);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto again = parse_json(parsed.value.dump());
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.value.dump(), parsed.value.dump());
  EXPECT_DOUBLE_EQ(
      again.value.find("b")->get_number("nested"), -300.0);
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"}) {
    EXPECT_FALSE(parse_json(bad).ok) << bad;
  }
}

// ---------------------------------------------------------------------------
// Bench baseline comparison

JsonValue tiny_bench(double steps, double wall) {
  const std::string text = R"({
    "schema": "meshsearch.bench.v1",
    "exp": "t",
    "series": [{
      "name": "s",
      "columns": ["n", "steps", "wall_us", "ok"],
      "rows": [[64, )" + std::to_string(steps) + ", " +
                           std::to_string(wall) + R"(, "yes"]]
    }],
    "wall": [{"name": "w", "p50_us": )" + std::to_string(wall) + R"(,
              "p95_us": )" + std::to_string(wall) + R"(}]
  })";
  const auto parsed = parse_json(text);
  EXPECT_TRUE(parsed.ok) << parsed.error;
  return parsed.value;
}

TEST(BenchCmp, IdenticalReportsPass) {
  const auto doc = tiny_bench(1000.0, 50.0);
  const auto res = compare_bench(doc, doc, {});
  EXPECT_TRUE(res.ok);
  EXPECT_TRUE(res.issues.empty());
  EXPECT_GT(res.compared_values, 0u);
}

TEST(BenchCmp, ChargedDriftIsFatalEitherDirection) {
  const auto base = tiny_bench(1000.0, 50.0);
  for (double drifted : {1000.1, 999.9}) {
    const auto res = compare_bench(base, tiny_bench(drifted, 50.0), {});
    EXPECT_FALSE(res.ok) << drifted;
  }
  // Within the libm tolerance: fine.
  BenchCompareOptions opt;
  EXPECT_TRUE(
      compare_bench(base, tiny_bench(1000.0 * (1 + 1e-9), 50.0), opt).ok);
}

TEST(BenchCmp, WallRegressionWarnsUnlessGated) {
  const auto base = tiny_bench(1000.0, 50.0);
  const auto slow = tiny_bench(1000.0, 80.0);  // +60% wall
  BenchCompareOptions warn_only;
  const auto res = compare_bench(base, slow, warn_only);
  EXPECT_TRUE(res.ok);
  EXPECT_FALSE(res.issues.empty());
  BenchCompareOptions gated;
  gated.gate_wall = true;
  EXPECT_FALSE(compare_bench(base, slow, gated).ok);
  // Faster wall clock is never an issue.
  EXPECT_TRUE(compare_bench(base, tiny_bench(1000.0, 10.0), gated).ok);
}

TEST(BenchCmp, MissingSeriesOrRowFails) {
  const auto base = tiny_bench(1000.0, 50.0);
  auto empty = parse_json(
      R"({"schema": "meshsearch.bench.v1", "exp": "t", "series": []})");
  ASSERT_TRUE(empty.ok);
  EXPECT_FALSE(compare_bench(base, empty.value, {}).ok);
  // Extra series in current is fine (new coverage).
  EXPECT_TRUE(compare_bench(empty.value, base, {}).ok);
}

TEST(BenchCmp, SchemaValidation) {
  using meshsearch::util::validate_bench_schema;
  EXPECT_NE(validate_bench_schema(JsonValue::make_null()), "");
  const auto good = tiny_bench(1.0, 1.0);
  EXPECT_EQ(validate_bench_schema(good), "");
  const auto bad =
      parse_json(R"({"schema": "meshsearch.bench.v2", "exp": "t"})");
  ASSERT_TRUE(bad.ok);
  EXPECT_NE(validate_bench_schema(bad.value), "");
}

TEST(BenchCmp, WallMetricNameClassifier) {
  using meshsearch::util::is_wall_metric;
  EXPECT_TRUE(is_wall_metric("wall_us"));
  EXPECT_TRUE(is_wall_metric("batch latency"));
  EXPECT_TRUE(is_wall_metric("p95_ms"));
  EXPECT_FALSE(is_wall_metric("steps"));
  EXPECT_FALSE(is_wall_metric("steps/sqrt(n)"));
  EXPECT_FALSE(is_wall_metric("naive/warm"));
}

// ---------------------------------------------------------------------------
// BenchReport writer (schema conformance of what the benches emit)

TEST(BenchReport, EmitsSchemaValidJson) {
  meshsearch::util::Table t({"n", "steps"});
  t.add_row({std::int64_t{64}, 123.5});
  const char* argv[] = {"prog", "--smoke"};
  meshsearch::bench::BenchReport report("unit", 2,
                                        const_cast<char**>(argv));
  report.write_on_exit = false;
  report.set_config("smoke", "1");
  report.add_table("series_a", t);
  report.observe_wall("w", 10.0);
  report.observe_wall("w", 20.0);
  const auto doc = report.to_json();
  EXPECT_EQ(meshsearch::util::validate_bench_schema(doc), "");
  EXPECT_EQ(doc.get_string("exp"), "unit");
  const auto round = parse_json(doc.dump(2));
  ASSERT_TRUE(round.ok) << round.error;
  // Self-compare must pass the gate.
  EXPECT_TRUE(compare_bench(doc, round.value, {}).ok);
}

}  // namespace
