// Multisearch core tests: splittings, constrained multisearch (Lemma 3
// semantics), Algorithms 2/3 (Theorems 5/7) against the sequential oracle,
// and Algorithm 1 (Theorem 2) on hierarchical DAGs.
#include <gtest/gtest.h>

#include <cmath>

#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "util/stats.hpp"
#include "multisearch/constrained.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/partitioned.hpp"
#include "multisearch/query.hpp"
#include "multisearch/sequential.hpp"
#include "multisearch/setup.hpp"
#include "multisearch/synchronous.hpp"

namespace {

using namespace meshsearch;
using namespace meshsearch::msearch;
using ds::KaryTree;
using ds::TreeMode;

// ---------------------------------------------------------------------------
// graph & query plumbing
// ---------------------------------------------------------------------------

TEST(Graph, BuildAndValidate) {
  DistributedGraph g(4);
  g.add_edge(0, 1);
  g.add_undirected_edge(1, 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_EQ(g.size(), 4u + 3u);
  EXPECT_EQ(g.max_degree(), 1u);  // 0->1, 1->2, 2->1: one out-edge each
  g.validate();
}

TEST(Graph, RejectsSelfLoopAndRange) {
  DistributedGraph g(2);
  EXPECT_THROW(g.add_edge(0, 0), std::logic_error);
  EXPECT_THROW(g.add_edge(0, 5), std::logic_error);
}

TEST(Graph, ShapeForCoversVerticesAndQueries) {
  DistributedGraph g(100);
  EXPECT_GE(g.shape_for(50).size(), 100u);
  EXPECT_GE(g.shape_for(300).size(), 300u);
}

TEST(Queries, OutcomeDiffReportsFirstMismatch) {
  auto a = make_queries(2);
  auto b = make_queries(2);
  a[1].acc0 = 5;
  const auto d = diff_outcomes(outcomes(a), outcomes(b));
  EXPECT_NE(d.find("query 1"), std::string::npos);
  EXPECT_EQ(diff_outcomes(outcomes(a), outcomes(a)), "");
}

// ---------------------------------------------------------------------------
// splittings
// ---------------------------------------------------------------------------

TEST(Splitting, KaryAlphaSplittingIsValid) {
  KaryTree tree(ds::iota_keys(200), 2, TreeMode::kDirected);
  const auto s = tree.alpha_splitting();
  validate_alpha_splitting(tree.graph(), s);
  // Piece sizes near sqrt(n): delta around 1/2 for a binary tree.
  EXPECT_GT(s.delta, 0.3);
  EXPECT_LT(s.delta, 0.8);
}

TEST(Splitting, KaryAlphaBetaBordersFarApart) {
  KaryTree tree(ds::iota_keys(512), 2, TreeMode::kUndirected);
  const auto [s1, s2] = tree.alpha_beta_splittings();
  validate_splitting(tree.graph(), s1);
  validate_splitting(tree.graph(), s2);
  const auto dist = border_distance(tree.graph(), s1, s2, 64);
  EXPECT_GE(dist, 1u);  // Theta(h/6) for the Figure-3 construction
}

TEST(Splitting, BorderVerticesAreEndpointsOfCrossEdges) {
  KaryTree tree(ds::iota_keys(64), 2, TreeMode::kUndirected);
  const auto [s1, s2] = tree.alpha_beta_splittings();
  for (const Vid v : border_vertices(tree.graph(), s1)) {
    const auto& rec = tree.graph().vert(v);
    bool crosses = false;
    for (std::uint8_t d = 0; d < rec.degree; ++d)
      crosses |= s1.piece[static_cast<std::size_t>(rec.nbr[d])] !=
                 s1.piece[static_cast<std::size_t>(v)];
    EXPECT_TRUE(crosses);
  }
}

TEST(Splitting, NormalizeRespectsCapAndKind) {
  Splitting s;
  s.piece = {0, 0, 1, 2, 3, 3, 4, 5};
  s.kind = {PieceKind::kHead, PieceKind::kTail, PieceKind::kTail,
            PieceKind::kHead, PieceKind::kTail, PieceKind::kTail};
  s.delta = 0.5;
  const auto norm = normalize_splitting(s, 3);
  // Every group <= 3 vertices and single-kind.
  const auto sizes = piece_sizes(norm);
  for (std::size_t pc = 0; pc < sizes.size(); ++pc) EXPECT_LE(sizes[pc], 3u);
  for (std::size_t v = 0; v < s.piece.size(); ++v) {
    const auto orig_kind = s.kind[static_cast<std::size_t>(s.piece[v])];
    const auto new_kind = norm.kind[static_cast<std::size_t>(norm.piece[v])];
    EXPECT_EQ(static_cast<int>(orig_kind), static_cast<int>(new_kind));
  }
  // Fewer groups than pieces (merging happened).
  EXPECT_LT(norm.num_pieces(), s.num_pieces());
}

TEST(Splitting, CombIsAlphaPartitionable) {
  const auto comb = ds::build_comb(16, 32);
  validate_alpha_splitting(comb.graph, comb.splitting);
}

// ---------------------------------------------------------------------------
// sequential + synchronous baselines agree
// ---------------------------------------------------------------------------

TEST(Baselines, PredecessorSearchOracle) {
  const auto keys = ds::iota_keys(100);
  KaryTree tree(keys, 3, TreeMode::kDirected);
  util::Rng rng(1);
  auto qs = ds::uniform_key_queries(64, 130, rng);
  auto qseq = qs;
  sequential_multisearch(tree.graph(), tree.predecessor_search(), qseq);
  // Manual check of predecessor semantics against the key set.
  for (const auto& q : qseq) {
    const std::int64_t x = q.key[0];
    const std::int64_t expect =
        x >= 99 ? 99 : (x < 0 ? std::numeric_limits<std::int64_t>::min() : x);
    EXPECT_EQ(q.acc0, expect) << "x=" << x;
  }
  // Synchronous baseline must agree with sequential.
  auto qsync = qs;
  const mesh::CostModel m;
  const auto shape = tree.graph().shape_for(qsync.size());
  reset_queries(qsync);
  synchronous_multisearch(tree.graph(), tree.predecessor_search(), qsync, m,
                          shape);
  EXPECT_EQ(diff_outcomes(outcomes(qseq), outcomes(qsync)), "");
}

TEST(Baselines, SynchronousCostIsRTimesSqrtN) {
  const auto comb = ds::build_comb(8, 64);
  auto qs = make_queries(32);
  util::Rng rng(2);
  for (auto& q : qs) {
    q.key[0] = static_cast<std::int64_t>(rng.uniform(1u << 30));
    q.key[1] = 40;  // tooth steps
  }
  const mesh::CostModel m;
  const auto shape = comb.graph.shape_for(qs.size());
  reset_queries(qs);
  const auto res =
      synchronous_multisearch(comb.graph, ds::CombWalk{comb.root}, qs, m, shape);
  const std::int32_t r = max_steps(qs);
  EXPECT_EQ(res.multisteps, static_cast<std::size_t>(r));
  const double per_step = m.rar(static_cast<double>(shape.size())).steps +
                          m.broadcast(static_cast<double>(shape.size())).steps;
  EXPECT_NEAR(res.cost.steps, r * per_step, 1e-9);
}

// ---------------------------------------------------------------------------
// constrained multisearch (Lemma 3)
// ---------------------------------------------------------------------------

TEST(Constrained, AdvancesWithinPieceOnly) {
  // Comb: teeth are pieces. A query inside a tooth advances along it but
  // never exits through the splitter (there are no exit edges anyway);
  // a query at a spine node whose next hop is a tooth must NOT take it.
  const auto comb = ds::build_comb(4, 100);
  auto qs = make_queries(4);
  for (auto& q : qs) {
    q.key[0] = static_cast<std::int64_t>(q.qid);
    q.key[1] = 100;
  }
  reset_queries(qs);
  const ds::CombWalk prog{comb.root};
  // Advance every query to its spine leaf (the last spine node): height+1
  // steps from the root.
  for (std::int32_t i = 0; i <= comb.spine_height; ++i)
    global_multistep(comb.graph, prog, qs);
  for (const auto& q : qs)
    ASSERT_EQ(comb.graph.vert(q.current).key[6], std::int64_t{1});
  const mesh::CostModel m;
  const auto shape = comb.graph.shape_for(qs.size());
  auto before = qs;
  const auto st = constrained_multisearch(comb.graph, comb.splitting, prog, qs,
                                          m, shape);
  // All queries sit in the spine (head) piece; their next hop crosses into a
  // tooth, so nobody may advance.
  EXPECT_EQ(st.advanced, 0u);
  for (std::size_t i = 0; i < qs.size(); ++i)
    EXPECT_EQ(qs[i].current, before[i].current);
  // Now take one global step into the teeth and run constrained again: every
  // query advances up to log2(n) steps, all inside its tooth.
  global_multistep(comb.graph, prog, qs);
  const auto st2 = constrained_multisearch(comb.graph, comb.splitting, prog,
                                           qs, m, shape);
  const auto max_rounds = static_cast<std::size_t>(
      std::floor(std::log2(static_cast<double>(shape.size()))));
  EXPECT_GT(st2.advanced, 0u);
  EXPECT_LE(st2.rounds, max_rounds);
  for (const auto& q : qs)
    EXPECT_EQ(comb.splitting.piece[static_cast<std::size_t>(q.current)],
              comb.splitting.piece[static_cast<std::size_t>(q.current)]);
}

TEST(Constrained, StepBudgetIsLog2N) {
  const auto comb = ds::build_comb(2, 4000);  // teeth longer than log2 n
  auto qs = make_queries(2);
  for (auto& q : qs) {
    q.key[0] = static_cast<std::int64_t>(q.qid);
    q.key[1] = 4000;
  }
  reset_queries(qs);
  const ds::CombWalk prog{comb.root};
  for (std::int32_t i = 0; i <= comb.spine_height + 1; ++i)
    global_multistep(comb.graph, prog, qs);
  const auto steps_before = qs[0].steps;
  const mesh::CostModel m;
  const auto shape = comb.graph.shape_for(qs.size());
  const auto st =
      constrained_multisearch(comb.graph, comb.splitting, prog, qs, m, shape);
  const auto budget = static_cast<std::int32_t>(
      std::floor(std::log2(static_cast<double>(shape.size()))));
  EXPECT_LE(qs[0].steps - steps_before, budget);
  EXPECT_EQ(st.rounds, static_cast<std::size_t>(budget));
}

TEST(Constrained, EmptyMarkSetExitsEarly) {
  const auto comb = ds::build_comb(4, 8);
  auto qs = make_queries(4);
  reset_queries(qs);
  for (auto& q : qs) q.done = true;
  const mesh::CostModel m;
  const auto shape = comb.graph.shape_for(qs.size());
  const auto st = constrained_multisearch(comb.graph, comb.splitting,
                                          ds::CombWalk{comb.root}, qs, m, shape);
  EXPECT_EQ(st.marked, 0u);
  EXPECT_EQ(st.copies, 0u);
  // Exit after steps 1-3 only.
  const double p = static_cast<double>(shape.size());
  EXPECT_NEAR(st.cost.steps,
              m.rar(p).steps + m.raw(p).steps + m.scan(p).steps +
                  m.reduce(p).steps,
              1e-9);
}

TEST(Constrained, CopiesMatchGammaFormula) {
  // Point congestion: all queries in one tooth => gamma = ceil(q / cap).
  const auto comb = ds::build_comb(4, 64);
  const std::size_t m_queries = 256;
  auto qs = make_queries(m_queries);
  for (auto& q : qs) {
    q.key[0] = 7;  // same key => same tooth
    q.key[1] = 64;
  }
  reset_queries(qs);
  const ds::CombWalk prog{comb.root};
  for (std::int32_t i = 0; i <= comb.spine_height + 1; ++i)
    global_multistep(comb.graph, prog, qs);
  const mesh::CostModel m;
  const auto shape = comb.graph.shape_for(qs.size());
  auto psi = comb.splitting;
  const auto st = constrained_multisearch(comb.graph, psi, prog, qs, m, shape);
  const std::size_t cap = std::max<std::size_t>(
      static_cast<std::size_t>(std::ceil(
          std::pow(static_cast<double>(shape.size()), psi.delta))),
      max_piece_size(psi));
  EXPECT_EQ(st.copies, (m_queries + cap - 1) / cap);
}

// ---------------------------------------------------------------------------
// Algorithm 2 (alpha-partitionable, Theorem 5)
// ---------------------------------------------------------------------------

class Alg2Test : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

TEST_P(Alg2Test, MatchesSequentialOracle) {
  const auto [k, nkeys] = GetParam();
  KaryTree tree(ds::iota_keys(static_cast<std::size_t>(nkeys)), k,
                TreeMode::kDirected);
  util::Rng rng(99);
  auto qs = ds::uniform_key_queries(static_cast<std::size_t>(nkeys),
                                    static_cast<std::uint64_t>(nkeys) + 20,
                                    rng);
  auto qseq = qs;
  sequential_multisearch(tree.graph(), tree.rank_count(), qseq);
  auto qalg = qs;
  const mesh::CostModel m;
  const auto shape = tree.graph().shape_for(qalg.size());
  const auto res = multisearch_alpha(tree.graph(), tree.alpha_splitting(),
                                     tree.rank_count(), qalg, m, shape);
  EXPECT_EQ(diff_outcomes(outcomes(qseq), outcomes(qalg)), "");
  EXPECT_GE(res.log_phases, 1u);
  // Rank semantics: acc0 = x+1 clamped to [0, nkeys].
  for (const auto& q : qalg) {
    const auto expect = std::clamp<std::int64_t>(q.key[0] + 1, 0, nkeys);
    EXPECT_EQ(q.acc0, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Alg2Test,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 6u),
                       ::testing::Values(1, 2, 7, 64, 100, 1000)));

TEST(Alg2, CombLongPathsNeedFewLogPhases) {
  const auto comb = ds::build_comb(16, 512);
  const std::size_t m_q = 128;
  auto qs = make_queries(m_q);
  util::Rng rng(5);
  for (auto& q : qs) {
    q.key[0] = static_cast<std::int64_t>(rng.uniform(1u << 20));
    q.key[1] = 500;
  }
  auto qseq = qs;
  const ds::CombWalk prog{comb.root};
  sequential_multisearch(comb.graph, prog, qseq);
  auto qalg = qs;
  const mesh::CostModel m;
  const auto shape = comb.graph.shape_for(qalg.size());
  const auto res = multisearch_alpha(comb.graph, comb.splitting, prog, qalg, m,
                                     shape);
  EXPECT_EQ(diff_outcomes(outcomes(qseq), outcomes(qalg)), "");
  // r ~ 500+5; each log-phase advances >= ~log2(n) ~ 13 steps inside a
  // tooth; expect ceil(r / logn)-ish phases, far fewer than r.
  const double n = static_cast<double>(shape.size());
  const double logn = std::log2(n);
  const double r = static_cast<double>(res.longest_path);
  EXPECT_LE(static_cast<double>(res.log_phases), 2.0 * r / logn + 3.0);
}

TEST(Alg2, DuplicationOffStillCorrect) {
  KaryTree tree(ds::iota_keys(256), 2, TreeMode::kDirected);
  util::Rng rng(6);
  auto qs = ds::zipf_key_queries(256, 256, 1.1, rng);
  auto qseq = qs;
  sequential_multisearch(tree.graph(), tree.rank_count(), qseq);
  auto qalg = qs;
  const mesh::CostModel m;
  const auto shape = tree.graph().shape_for(qalg.size());
  const auto res =
      multisearch_alpha(tree.graph(), tree.alpha_splitting(), tree.rank_count(),
                        qalg, m, shape, /*duplicate_copies=*/false);
  EXPECT_EQ(diff_outcomes(outcomes(qseq), outcomes(qalg)), "");
  // And it must cost at least as much as the duplicated version.
  auto qalg2 = qs;
  const auto res2 =
      multisearch_alpha(tree.graph(), tree.alpha_splitting(), tree.rank_count(),
                        qalg2, m, shape, /*duplicate_copies=*/true);
  EXPECT_GE(res.cost.steps, res2.cost.steps - 1e-9);
}

class RandomPartitionableTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RandomPartitionableTest, Algorithm2MatchesOracle) {
  const auto [k1, k2, piece] = GetParam();
  util::Rng rng(500 + static_cast<std::uint64_t>(k1 * 100 + k2 * 10 + piece));
  const auto inst = ds::build_random_partitionable(
      static_cast<std::size_t>(k1), static_cast<std::size_t>(k2),
      static_cast<std::size_t>(piece), 3, rng);
  validate_alpha_splitting(inst.graph, inst.splitting);
  const ds::PartitionableWalk prog{&inst};
  auto qs = make_queries(inst.graph.vertex_count());
  for (auto& q : qs) q.key[0] = static_cast<std::int64_t>(rng.uniform(1u << 30));
  auto qseq = qs;
  sequential_multisearch(inst.graph, prog, qseq);
  // Every search must end in a sink; case-3 queries cross exactly one
  // splitter edge (head piece -> tail piece) on the way.
  for (const auto& q : qseq) {
    ASSERT_GE(q.result, 0);
    EXPECT_EQ(inst.graph.vert(q.result).degree, 0u);
  }
  auto qalg = qs;
  const mesh::CostModel m;
  const auto shape = inst.graph.shape_for(qalg.size());
  const auto res = multisearch_alpha(inst.graph, inst.splitting, prog, qalg,
                                     m, shape);
  EXPECT_EQ(diff_outcomes(outcomes(qseq), outcomes(qalg)), "");
  EXPECT_GE(res.log_phases, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomPartitionableTest,
    ::testing::Combine(::testing::Values(1, 3, 8), ::testing::Values(1, 5, 16),
                       ::testing::Values(2, 17, 90)));

TEST(RandomPartitionable, NormalizedSplittingStillWorks) {
  util::Rng rng(501);
  const auto inst = ds::build_random_partitionable(6, 20, 31, 3, rng);
  const ds::PartitionableWalk prog{&inst};
  auto qs = make_queries(512);
  for (auto& q : qs) q.key[0] = static_cast<std::int64_t>(rng.uniform(1u << 30));
  auto qseq = qs;
  sequential_multisearch(inst.graph, prog, qseq);
  // Group pieces to ~2x piece size (the §4.5 normalization) and re-run.
  const auto norm = normalize_splitting(inst.splitting, 62);
  validate_alpha_splitting(inst.graph, norm);
  EXPECT_LT(norm.num_pieces(), inst.splitting.num_pieces());
  auto qalg = qs;
  const mesh::CostModel m;
  const auto shape = inst.graph.shape_for(qs.size());
  multisearch_alpha(inst.graph, norm, prog, qalg, m, shape);
  EXPECT_EQ(diff_outcomes(outcomes(qseq), outcomes(qalg)), "");
}

// ---------------------------------------------------------------------------
// Algorithm 3 (alpha-beta-partitionable, Theorem 7)
// ---------------------------------------------------------------------------

class Alg3Test : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

TEST_P(Alg3Test, EulerScanMatchesOracle) {
  const auto [k, nkeys] = GetParam();
  KaryTree tree(ds::iota_keys(static_cast<std::size_t>(nkeys)), k,
                TreeMode::kUndirected);
  util::Rng rng(7);
  auto qs = make_queries(static_cast<std::size_t>(std::max(8, nkeys / 2)));
  for (auto& q : qs) {
    const auto a = rng.uniform_range(-3, nkeys + 3);
    const auto b = a + rng.uniform_range(0, 30);
    q.key[0] = a;
    q.key[1] = b;
  }
  auto qseq = qs;
  sequential_multisearch(tree.graph(), tree.euler_scan(), qseq);
  // Oracle semantics check: acc0 counts keys in [a, b] intersect [0, nkeys).
  for (const auto& q : qseq) {
    const std::int64_t lo = std::max<std::int64_t>(q.key[0], 0);
    const std::int64_t hi = std::min<std::int64_t>(q.key[1], nkeys - 1);
    EXPECT_EQ(q.acc0, std::max<std::int64_t>(0, hi - lo + 1))
        << "range [" << q.key[0] << "," << q.key[1] << "]";
  }
  auto qalg = qs;
  const mesh::CostModel m;
  const auto shape = tree.graph().shape_for(qalg.size());
  const auto [s1, s2] = tree.alpha_beta_splittings();
  const auto res =
      multisearch_alpha_beta(tree.graph(), s1, s2, tree.euler_scan(), qalg, m,
                             shape);
  EXPECT_EQ(diff_outcomes(outcomes(qseq), outcomes(qalg)), "");
  EXPECT_GE(res.log_phases, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Alg3Test,
    ::testing::Combine(::testing::Values(2u, 3u, 4u),
                       ::testing::Values(2, 9, 64, 257, 1000)));

// ---------------------------------------------------------------------------
// Algorithm 1 (hierarchical DAGs, Theorem 2)
// ---------------------------------------------------------------------------

TEST(Hierarchical, DagValidation) {
  util::Rng rng(8);
  const auto g = ds::build_hierarchical_dag(1000, 2.0, 2, rng);
  const HierarchicalDag dag(g, 2.0);
  EXPECT_GE(dag.height(), 8);
  EXPECT_EQ(dag.level_size(0), 1u);
  std::size_t total = 0;
  for (std::int32_t i = 0; i <= dag.height(); ++i) total += dag.level_size(i);
  EXPECT_EQ(total, g.vertex_count());
  EXPECT_EQ(dag.band_vertex_count(0, dag.height()), g.vertex_count());
}

TEST(Hierarchical, RejectsSkipLevelEdges) {
  DistributedGraph g(3);
  g.vert(0).level = 0;
  g.vert(1).level = 1;
  g.vert(2).level = 2;
  g.add_edge(0, 2);  // skips level 1
  EXPECT_THROW(HierarchicalDag(g, 2.0), std::logic_error);
}

TEST(Hierarchical, PlanCoversAllLevels) {
  util::Rng rng(9);
  for (const std::size_t n : {100u, 5000u, 100000u}) {
    const auto g = ds::build_hierarchical_dag(n, 2.0, 2, rng);
    const HierarchicalDag dag(g, 2.0);
    const auto shape = g.shape_for(g.vertex_count());
    const auto plan = make_hierarchical_plan(dag, shape);
    // Bands are contiguous from level 0 and end where B* begins.
    std::int32_t expect_lo = 0;
    for (const auto& b : plan.bands) {
      EXPECT_EQ(b.lo, expect_lo);
      EXPECT_GE(b.hi, b.lo);
      expect_lo = b.hi + 1;
      // A copy of the band fits in its submesh.
      EXPECT_LE(b.vertices, b.submesh_elems);
      EXPECT_GE(b.split, b.lo);
      EXPECT_LE(b.split, b.hi + 1);
    }
    EXPECT_EQ(plan.bstar_lo, expect_lo);
    // B* is O(1) levels: it spans 2*l_T where c <= l_T < mu^c when bands
    // exist; with no bands the whole DAG qualifies only because h < mu^c.
    const double mu_c = std::pow(dag.mu(), plan.c);
    if (plan.bands.empty())
      EXPECT_LT(static_cast<double>(dag.height()), mu_c);
    else
      EXPECT_LE(static_cast<double>(dag.height() - plan.bstar_lo + 1),
                2.0 * mu_c + 3.0);
  }
}

class HierTest : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(HierTest, MatchesSequentialOracle) {
  const auto [n, mu] = GetParam();
  util::Rng rng(10);
  const auto g = ds::build_hierarchical_dag(n, mu, 3, rng);
  const HierarchicalDag dag(g, mu);
  auto qs = make_queries(g.vertex_count());
  util::Rng qrng(11);
  for (auto& q : qs)
    q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));
  auto qseq = qs;
  const ds::HashWalk prog{0};
  sequential_multisearch(g, prog, qseq);
  auto qalg = qs;
  const mesh::CostModel m;
  const auto shape = g.shape_for(qalg.size());
  const auto res = hierarchical_multisearch(dag, prog, qalg, m, shape);
  EXPECT_EQ(diff_outcomes(outcomes(qseq), outcomes(qalg)), "");
  EXPECT_EQ(res.total_visits,
            static_cast<std::size_t>(g.vertex_count()) *
                static_cast<std::size_t>(dag.height() + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, HierTest,
    ::testing::Combine(::testing::Values(std::size_t{50}, std::size_t{1000},
                                         std::size_t{20000}),
                       ::testing::Values(1.5, 2.0, 4.0)));

TEST(Setup, LevelIndicesMatchConstruction) {
  util::Rng rng(18);
  for (const auto mu : {1.7, 2.0, 3.0}) {
    const auto g = ds::build_hierarchical_dag(20000, mu, 2, rng);
    const mesh::CostModel m;
    const auto shape = g.shape_for(g.vertex_count());
    const auto res = compute_level_indices(g, m, shape);
    for (std::size_t v = 0; v < g.vertex_count(); ++v)
      ASSERT_EQ(res.level[v], g.vert(static_cast<Vid>(v)).level) << v;
    const HierarchicalDag dag(g, mu);
    EXPECT_EQ(res.rounds, static_cast<std::size_t>(dag.height()) + 1);
    EXPECT_GT(res.cost.steps, 0.0);
  }
}

TEST(Setup, LevelIndexCostIsSqrtN) {
  util::Rng rng(19);
  std::vector<double> ns, costs;
  for (const std::size_t n : {1u << 12, 1u << 14, 1u << 16, 1u << 18}) {
    const auto g = ds::build_hierarchical_dag(n, 2.0, 2, rng);
    const mesh::CostModel m;
    const auto shape = g.shape_for(g.vertex_count());
    const auto res = compute_level_indices(g, m, shape);
    ns.push_back(static_cast<double>(shape.size()));
    costs.push_back(res.cost.steps);
  }
  // The shrinking-subsquare telescoping keeps the peel at O(sqrt n) even
  // though it runs h+1 rounds.
  const auto fit = util::fit_power(ns, costs);
  EXPECT_NEAR(fit.exponent, 0.5, 0.1);
}

TEST(Setup, DistributeInitialIsConstantOps) {
  util::Rng rng(20);
  const auto g = ds::build_hierarchical_dag(5000, 2.0, 2, rng);
  const mesh::CostModel m;
  const auto shape = g.shape_for(g.vertex_count());
  const auto cost = distribute_initial(g, g.vertex_count(), m, shape);
  const double p = static_cast<double>(shape.size());
  EXPECT_GT(cost.steps, m.sort(p).steps);
  EXPECT_LT(cost.steps, 30.0 * std::sqrt(p));  // a constant number of ops
}

TEST(Setup, LevelPeelRejectsStalledGraphs) {
  // A 2-cycle cannot be peeled.
  DistributedGraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const mesh::CostModel m;
  EXPECT_THROW(compute_level_indices(g, m, g.shape_for(2)), std::logic_error);
}

TEST(Hierarchical, BandLabelsSatisfyTheorem2Storage) {
  util::Rng rng(17);
  // mu=2, n large enough for at least one paper band plus the geometric
  // plan's several bands.
  const auto g = ds::build_hierarchical_dag(1 << 18, 2.0, 2, rng);
  const HierarchicalDag dag(g, 2.0);
  const auto shape = g.shape_for(g.vertex_count());
  // The paper's log* plan satisfies the O(1)-memory storage argument.
  {
    const auto plan = make_hierarchical_plan(dag, shape, PlanKind::kPaper);
    ASSERT_FALSE(plan.bands.empty());
    const auto labels = band_labels(plan, shape);
    verify_label_capacity(plan, shape, labels);
    for (const auto l : labels) {
      EXPECT_GE(l, -1);
      EXPECT_LT(l, static_cast<std::int32_t>(plan.bands.size()));
    }
    std::vector<std::size_t> count(plan.bands.size(), 0);
    for (const auto l : labels)
      if (l >= 0) ++count[static_cast<std::size_t>(l)];
    for (const auto c : count) EXPECT_GT(c, 0u);
  }
  // The geometric plan provably CANNOT: every one of its ~log n bands wants
  // a quarter of the mesh, so the coarse bands retain only (3/4)^k of their
  // submesh — this is exactly the O(log n)-memory trade-off DESIGN.md §5.9
  // documents (its copies are staged transiently instead).
  {
    const auto plan =
        make_hierarchical_plan(dag, shape, PlanKind::kGeometric);
    ASSERT_GT(plan.bands.size(), 4u);
    const auto labels = band_labels(plan, shape);
    EXPECT_THROW(verify_label_capacity(plan, shape, labels),
                 std::logic_error);
  }
}

TEST(Hierarchical, GeometricPlanInvariants) {
  util::Rng rng(14);
  for (const std::size_t n : {200u, 5000u, 200000u}) {
    const auto g = ds::build_hierarchical_dag(n, 2.0, 2, rng);
    const HierarchicalDag dag(g, 2.0);
    const auto shape = g.shape_for(g.vertex_count());
    const auto plan =
        make_hierarchical_plan(dag, shape, PlanKind::kGeometric);
    std::int32_t expect_lo = 0;
    std::uint32_t prev_grid = 2 * shape.side();
    std::size_t prefix = 0;
    for (const auto& b : plan.bands) {
      EXPECT_EQ(b.lo, expect_lo);
      expect_lo = b.hi + 1;
      // Grids shrink monotonically; the whole prefix fits the submesh.
      EXPECT_LT(b.grid, prev_grid);
      prev_grid = b.grid;
      prefix += b.vertices;
      EXPECT_LE(prefix, b.submesh_elems);
      EXPECT_EQ(b.split, b.lo);  // no inner split in the geometric plan
    }
    EXPECT_EQ(plan.bstar_lo, expect_lo);
    EXPECT_LE(plan.bstar_lo, dag.height());
  }
}

TEST(Hierarchical, GeometricPlanMatchesOracle) {
  util::Rng rng(15);
  const auto g = ds::build_hierarchical_dag(30000, 2.0, 3, rng);
  const HierarchicalDag dag(g, 2.0);
  auto qs = make_queries(g.vertex_count());
  for (auto& q : qs) q.key[0] = static_cast<std::int64_t>(rng.uniform(1u << 30));
  auto qseq = qs;
  const ds::HashWalk prog{0};
  sequential_multisearch(g, prog, qseq);
  const mesh::CostModel m;
  const auto shape = g.shape_for(qs.size());
  const auto res = hierarchical_multisearch(dag, prog, qs, m, shape,
                                            PlanKind::kGeometric);
  EXPECT_EQ(diff_outcomes(outcomes(qseq), outcomes(qs)), "");
  // The geometric plan should not be more expensive than the paper plan
  // here (mu = 2 at this size has at most one band).
  auto qs2 = qs;
  const auto paper = hierarchical_multisearch(dag, prog, qs2, m, shape,
                                              PlanKind::kPaper);
  EXPECT_LE(res.cost.steps, paper.cost.steps * 1.5);
}

TEST(Hierarchical, MeasuredSweepsBoundedByLevelWork) {
  util::Rng rng(16);
  const auto g = ds::build_hierarchical_dag(5000, 2.0, 2, rng);
  const HierarchicalDag dag(g, 2.0);  // plain DAG: 1 visit per level
  auto qs = make_queries(g.vertex_count());
  for (auto& q : qs) q.key[0] = static_cast<std::int64_t>(rng.uniform(99));
  const mesh::CostModel m;
  const auto shape = g.shape_for(qs.size());
  const auto res =
      hierarchical_multisearch(dag, ds::HashWalk{0}, qs, m, shape);
  ASSERT_EQ(res.level_sweeps.size(),
            static_cast<std::size_t>(dag.height()) + 1);
  for (const auto s : res.level_sweeps) EXPECT_EQ(s, 1);
}

TEST(Hierarchical, CostScalesAsSqrtN) {
  util::Rng rng(12);
  std::vector<double> ns, costs;
  for (const std::size_t n : {1u << 10, 1u << 12, 1u << 14, 1u << 16, 1u << 18}) {
    const auto g = ds::build_hierarchical_dag(n, 2.0, 2, rng);
    const HierarchicalDag dag(g, 2.0);
    const auto shape = g.shape_for(g.vertex_count());
    const auto plan = make_hierarchical_plan(dag, shape);
    const mesh::CostModel m;
    const auto res = hierarchical_cost(dag, plan, shape, m);
    ns.push_back(static_cast<double>(shape.size()));
    costs.push_back(res.cost.steps);
  }
  const auto fit = util::fit_power(ns, costs);
  EXPECT_NEAR(fit.exponent, 0.5, 0.1);
}

TEST(Hierarchical, CheaperThanSynchronousBaseline) {
  util::Rng rng(13);
  const auto g = ds::build_hierarchical_dag(1 << 16, 2.0, 2, rng);
  const HierarchicalDag dag(g, 2.0);
  auto qs = make_queries(g.vertex_count());
  for (auto& q : qs) q.key[0] = static_cast<std::int64_t>(rng.uniform(1u << 30));
  const mesh::CostModel m;
  const auto shape = g.shape_for(qs.size());
  auto qa = qs;
  const auto hier = hierarchical_multisearch(dag, ds::HashWalk{0}, qa, m, shape);
  auto qb = qs;
  reset_queries(qb);
  const auto sync =
      synchronous_multisearch(g, ds::HashWalk{0}, qb, m, shape);
  EXPECT_LT(hier.cost.steps, sync.cost.steps);
}

}  // namespace
