// Cycle-engine tests: the physically faithful grid simulator, plus the
// cross-engine checks (V1) that tie it to the counting engine — identical
// data results, and measured step counts tracking the charged bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mesh/grid.hpp"
#include "mesh/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace meshsearch;
using mesh::Grid;
using mesh::MeshShape;

std::vector<std::int64_t> random_values(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = rng.uniform_range(-1000000, 1000000);
  return v;
}

TEST(Grid, SnakeRoundTrip) {
  const MeshShape s(4);
  const auto vals = random_values(s.size(), 1);
  const auto g = Grid<std::int64_t>::from_snake(s, vals);
  EXPECT_EQ(g.to_snake(), vals);
}

class ShearsortTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ShearsortTest, SortsIntoSnakeOrder) {
  const MeshShape s(GetParam());
  auto vals = random_values(s.size(), 17 + GetParam());
  auto g = Grid<std::int64_t>::from_snake(s, vals);
  const std::size_t steps = g.shearsort();
  auto expect = vals;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(g.to_snake(), expect);
  // Shearsort bound: (2 ceil(log2 s) + 3) * s steps.
  const double side = s.side();
  const double bound = (2 * std::ceil(std::log2(side)) + 3) * side + side;
  EXPECT_LE(static_cast<double>(steps), bound);
  EXPECT_GE(steps, s.side());
}

INSTANTIATE_TEST_SUITE_P(Sides, ShearsortTest,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

TEST(Grid, ShearsortWithDuplicates) {
  const MeshShape s(8);
  util::Rng rng(3);
  std::vector<std::int64_t> vals(s.size());
  for (auto& x : vals) x = rng.uniform(4);  // heavy duplication
  auto g = Grid<std::int64_t>::from_snake(s, vals);
  g.shearsort();
  auto expect = vals;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(g.to_snake(), expect);
}

TEST(Grid, ShearsortAlreadySorted) {
  const MeshShape s(8);
  std::vector<std::int64_t> vals(s.size());
  std::iota(vals.begin(), vals.end(), 0);
  auto g = Grid<std::int64_t>::from_snake(s, vals);
  g.shearsort();
  EXPECT_EQ(g.to_snake(), vals);
}

TEST(Grid, SortRowsAscending) {
  const MeshShape s(4);
  auto vals = random_values(s.size(), 5);
  auto g = Grid<std::int64_t>::from_snake(s, vals);
  const std::size_t steps = g.sort_rows(std::less<std::int64_t>{}, false);
  EXPECT_EQ(steps, s.side());
  for (std::uint32_t r = 0; r < s.side(); ++r)
    for (std::uint32_t c = 0; c + 1 < s.side(); ++c)
      EXPECT_LE(g.at(r, c), g.at(r, c + 1));
}

TEST(Grid, SortColsAscending) {
  const MeshShape s(4);
  auto vals = random_values(s.size(), 6);
  auto g = Grid<std::int64_t>::from_snake(s, vals);
  g.sort_cols(std::less<std::int64_t>{});
  for (std::uint32_t c = 0; c < s.side(); ++c)
    for (std::uint32_t r = 0; r + 1 < s.side(); ++r)
      EXPECT_LE(g.at(r, c), g.at(r + 1, c));
}

TEST(Grid, SnakeScanMatchesPrefixSum) {
  const MeshShape s(8);
  auto vals = random_values(s.size(), 7);
  auto g = Grid<std::int64_t>::from_snake(s, vals);
  const std::size_t steps = g.snake_scan(std::plus<std::int64_t>{});
  std::vector<std::int64_t> expect = vals;
  for (std::size_t i = 1; i < expect.size(); ++i) expect[i] += expect[i - 1];
  EXPECT_EQ(g.to_snake(), expect);
  EXPECT_EQ(steps, 3u * s.side());
}

TEST(Grid, SnakeScanNonCommutativeOp) {
  // Scan with string-like concatenation encoded as (value, length) pairs
  // is overkill; use max, which is associative but not invertible.
  const MeshShape s(4);
  auto vals = random_values(s.size(), 8);
  auto g = Grid<std::int64_t>::from_snake(s, vals);
  g.snake_scan([](std::int64_t a, std::int64_t b) { return std::max(a, b); });
  std::vector<std::int64_t> expect = vals;
  for (std::size_t i = 1; i < expect.size(); ++i)
    expect[i] = std::max(expect[i], expect[i - 1]);
  EXPECT_EQ(g.to_snake(), expect);
}

TEST(Grid, AtBoundsCheckedInDebugOnBothOverloads) {
#ifdef NDEBUG
  GTEST_SKIP() << "MS_DCHECK compiles out under NDEBUG";
#else
  const MeshShape s(4);
  auto g = Grid<std::int64_t>::from_snake(s, random_values(s.size(), 2));
  const auto& cg = g;
  // In-range access works through both overloads.
  g.at(s.side() - 1, s.side() - 1) = 7;
  EXPECT_EQ(cg.at(s.side() - 1, s.side() - 1), 7);
  // Out-of-range throws through both — the const overload used to skip the
  // check entirely and read out of bounds.
  EXPECT_THROW(g.at(s.side(), 0), std::logic_error);
  EXPECT_THROW(g.at(0, s.side()), std::logic_error);
  EXPECT_THROW(cg.at(s.side(), 0), std::logic_error);
  EXPECT_THROW(cg.at(0, s.side()), std::logic_error);
#endif
}

TEST(Grid, BroadcastFromOrigin) {
  const MeshShape s(8);
  Grid<std::int64_t> g(s);
  g.at(0, 0) = 99;
  const std::size_t steps = g.broadcast_from_origin();
  for (std::uint32_t r = 0; r < s.side(); ++r)
    for (std::uint32_t c = 0; c < s.side(); ++c) EXPECT_EQ(g.at(r, c), 99);
  EXPECT_EQ(steps, 2u * (s.side() - 1));
}

class RouteTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RouteTest, RandomPermutationDelivers) {
  const MeshShape s(GetParam());
  util::Rng rng(100 + GetParam());
  auto vals = random_values(s.size(), 9);
  auto g = Grid<std::int64_t>::from_snake(s, vals);
  // Destination (row-major) = random permutation.
  const auto perm32 = util::random_permutation(s.size(), rng);
  std::vector<std::uint32_t> dest(perm32.begin(), perm32.end());
  const std::size_t steps = g.route_permutation(dest);
  for (std::size_t i = 0; i < s.size(); ++i) {
    // Packet originally at row-major i must now be at dest[i].
    EXPECT_EQ(g.at_rm(dest[i]), vals[s.rowmajor_to_snake(i)]);
  }
  // Delivery within the greedy-routing bound.
  EXPECT_LE(steps, 64 * static_cast<std::size_t>(s.side()) + 64);
}

INSTANTIATE_TEST_SUITE_P(Sides, RouteTest, ::testing::Values(2u, 4u, 8u, 16u));

TEST(Grid, RouteTransposeExact) {
  const MeshShape s(8);
  auto vals = random_values(s.size(), 10);
  auto g = Grid<std::int64_t>::from_snake(s, vals);
  std::vector<std::uint32_t> dest(s.size());
  for (std::uint32_t r = 0; r < s.side(); ++r)
    for (std::uint32_t c = 0; c < s.side(); ++c)
      dest[r * s.side() + c] = c * s.side() + r;
  auto before = g;  // copy
  g.route_permutation(dest);
  for (std::uint32_t r = 0; r < s.side(); ++r)
    for (std::uint32_t c = 0; c < s.side(); ++c)
      EXPECT_EQ(g.at(c, r), before.at(r, c));
}

TEST(Grid, RouteIdentityIsFree) {
  const MeshShape s(4);
  auto vals = random_values(s.size(), 11);
  auto g = Grid<std::int64_t>::from_snake(s, vals);
  std::vector<std::uint32_t> dest(s.size());
  std::iota(dest.begin(), dest.end(), 0u);
  EXPECT_EQ(g.route_permutation(dest), 0u);
  EXPECT_EQ(g.to_snake(), vals);
}

TEST(Grid, RouteReversalWorstCase) {
  const MeshShape s(16);
  auto vals = random_values(s.size(), 12);
  auto g = Grid<std::int64_t>::from_snake(s, vals);
  std::vector<std::uint32_t> dest(s.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    dest[i] = static_cast<std::uint32_t>(s.size() - 1 - i);
  const std::size_t steps = g.route_permutation(dest);
  // Reversal distance is 2(s-1); greedy XY should stay within a small
  // constant of it.
  EXPECT_GE(steps, 2u * (s.side() - 1));
  EXPECT_LE(steps, 8u * s.side());
}

// ---------------------------------------------------------------------------
// V1: cross-engine equivalence
// ---------------------------------------------------------------------------

TEST(CrossEngine, SortSameData) {
  const MeshShape s(16);
  auto vals = random_values(s.size(), 21);
  // Counting engine.
  auto host = vals;
  const mesh::CostModel m;
  mesh::ops::sort(host, m, static_cast<double>(s.size()));
  // Cycle engine.
  auto g = Grid<std::int64_t>::from_snake(s, vals);
  g.shearsort();
  EXPECT_EQ(g.to_snake(), host);
}

TEST(CrossEngine, ScanSameData) {
  const MeshShape s(8);
  auto vals = random_values(s.size(), 22);
  auto host = vals;
  const mesh::CostModel m;
  mesh::ops::scan_inclusive(host, m, static_cast<double>(s.size()));
  auto g = Grid<std::int64_t>::from_snake(s, vals);
  g.snake_scan(std::plus<std::int64_t>{});
  EXPECT_EQ(g.to_snake(), host);
}

TEST(CrossEngine, MeasuredScanStepsTrackCharged) {
  // Charged scan = 2 sqrt(p); physical = 3 sqrt(p): same sqrt growth.
  const mesh::CostModel m;
  for (std::uint32_t side : {4u, 8u, 16u, 32u}) {
    const MeshShape s(side);
    auto vals = random_values(s.size(), side);
    auto g = Grid<std::int64_t>::from_snake(s, vals);
    const double measured =
        static_cast<double>(g.snake_scan(std::plus<std::int64_t>{}));
    const double charged = m.scan(static_cast<double>(s.size())).steps;
    EXPECT_NEAR(measured / charged, 1.5, 0.01);
  }
}

TEST(CrossEngine, MeasuredSortStepsWithinLogFactor) {
  const mesh::CostModel m;
  for (std::uint32_t side : {4u, 8u, 16u, 32u}) {
    const MeshShape s(side);
    auto vals = random_values(s.size(), 100 + side);
    auto g = Grid<std::int64_t>::from_snake(s, vals);
    const double measured = static_cast<double>(g.shearsort());
    const double charged_optimal = m.sort(static_cast<double>(s.size())).steps;
    mesh::CostModel phys;
    phys.physical_sort = true;
    const double charged_physical =
        phys.sort(static_cast<double>(s.size())).steps;
    EXPECT_GT(measured, charged_optimal * 0.5);
    EXPECT_LE(measured, charged_physical * 3.0);
  }
}

}  // namespace
