// Unit tests for the utility layer: deterministic RNG, statistics fits,
// the thread pool, and the table writer.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <sstream>
#include <thread>

#include "util/parallel_for.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace meshsearch;

TEST(Rng, DeterministicForSeed) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInBounds) {
  util::Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformRangeInclusive) {
  util::Rng rng(7);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformRealInUnitInterval) {
  util::Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform_real();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  util::Rng rng(5);
  std::array<int, 10> buckets{};
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++buckets[rng.uniform(10)];
  for (int b : buckets) {
    EXPECT_GT(b, draws / 10 * 0.9);
    EXPECT_LT(b, draws / 10 * 1.1);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  util::Rng a(9);
  util::Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, Mix64AvalanchesLowBits) {
  // Consecutive inputs must produce well-spread outputs.
  std::array<int, 16> buckets{};
  for (std::uint64_t i = 0; i < 1600; ++i) ++buckets[util::mix64(i) % 16];
  for (int b : buckets) EXPECT_GT(b, 50);
}

TEST(Zipf, SkewsTowardLowRanks) {
  util::Rng rng(3);
  util::Zipf zipf(1000, 1.2);
  std::size_t low = 0, draws = 20000;
  for (std::size_t i = 0; i < draws; ++i) low += zipf(rng) < 10;
  // With s=1.2 the top-10 ranks carry a large constant fraction.
  EXPECT_GT(low, draws / 4);
}

TEST(Zipf, ZeroSkewIsUniform) {
  util::Rng rng(3);
  util::Zipf zipf(10, 0.0);
  std::array<int, 10> buckets{};
  for (int i = 0; i < 50000; ++i) ++buckets[zipf(rng)];
  for (int b : buckets) {
    EXPECT_GT(b, 4200);
    EXPECT_LT(b, 5800);
  }
}

TEST(RandomPermutation, IsAPermutation) {
  util::Rng rng(13);
  const auto perm = util::random_permutation(257, rng);
  std::vector<bool> seen(257, false);
  for (auto v : perm) {
    ASSERT_LT(v, 257u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> xs{3, 1, 2, 5, 4};
  const auto s = util::summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.5 * i - 2.0);
  }
  const auto f = util::fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 3.5, 1e-9);
  EXPECT_NEAR(f.intercept, -2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, PowerFitRecoversExponent) {
  std::vector<double> xs, ys;
  for (double x = 64; x <= 1 << 20; x *= 2) {
    xs.push_back(x);
    ys.push_back(7.0 * std::pow(x, 0.5));
  }
  const auto f = util::fit_power(xs, ys);
  EXPECT_NEAR(f.exponent, 0.5, 1e-9);
  EXPECT_NEAR(std::exp(f.log_coeff), 7.0, 1e-6);
}

TEST(Stats, GeometricSizes) {
  const auto sizes = util::geometric_sizes(64, 4.0, 4);
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[0], 64u);
  EXPECT_EQ(sizes[3], 4096u);
}

TEST(ParallelFor, ComputesAllIndices) {
  std::vector<std::atomic<int>> hits(10000);
  util::parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  int count = 0;
  util::parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  std::atomic<int> c2{0};
  util::parallel_for(0, 3, [&](std::size_t) { ++c2; });
  EXPECT_EQ(c2.load(), 3);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      util::ThreadPool::global().parallel_for(
          0, 10000,
          [](std::size_t i) {
            if (i == 4321) throw std::runtime_error("boom");
          }),
      std::runtime_error);
}

TEST(ParallelFor, MultiThrowPropagatesLowestIndexDeterministically) {
  // When several chunks throw concurrently, the propagated exception must be
  // the one from the lowest chunk index — equivalently, the exception a
  // serial loop would have thrown first — at every thread count. Before the
  // deterministic-propagation fix the winner was the lowest PARTICIPANT id,
  // which depends on which chunks each thread happens to own.
  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    util::ThreadPool::set_global_threads(threads);
    std::string caught;
    try {
      util::ThreadPool::global().parallel_for(
          0, 100000,
          [](std::size_t i) {
            // Many throwing indices spread across the range so that with
            // any chunking several participants throw in the same run.
            if (i % 1000 == 137) throw std::runtime_error(std::to_string(i));
          },
          /*grain=*/1);
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    EXPECT_EQ(caught, "137") << "threads=" << threads;
  }
  util::ThreadPool::set_global_threads(0);
}

TEST(ParallelFor, PoolIsReusableAfterException) {
  auto& pool = util::ThreadPool::global();
  try {
    pool.parallel_for(0, 100, [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> c{0};
  pool.parallel_for(0, 1000, [&](std::size_t) { ++c; });
  EXPECT_EQ(c.load(), 1000);
}

TEST(ParallelFor, DeterministicResults) {
  std::vector<double> slot(1 << 16), slot2(1 << 16);
  util::parallel_for(0, slot.size(),
                     [&](std::size_t i) { slot[i] = std::sqrt(double(i)); });
  util::parallel_for(0, slot2.size(),
                     [&](std::size_t i) { slot2[i] = std::sqrt(double(i)); });
  const double a = std::accumulate(slot.begin(), slot.end(), 0.0);
  const double b = std::accumulate(slot2.begin(), slot2.end(), 0.0);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(ParallelFor, InvertedRangeIsEmpty) {
  // begin > end must be an empty range on every overload; with unsigned
  // arithmetic a missing guard turns it into a near-2^64 iteration count.
  int count = 0;
  util::parallel_for(std::size_t{10}, std::size_t{2},
                     [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  const std::function<void(std::size_t)> body = [&](std::size_t) { ++count; };
  util::parallel_for(std::size_t{10}, std::size_t{2}, body);
  EXPECT_EQ(count, 0);
  util::ThreadPool::global().parallel_for(10, 2, body);
  EXPECT_EQ(count, 0);
  util::ThreadPool::global().parallel_for_chunks(
      10, 2, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ParallelFor, NestedCallsRunSerially) {
  // Regression: a body calling parallel_for from a pool worker used to
  // overwrite the pool's live job state and deadlock or corrupt the run.
  // The nested loop must run serially on the calling thread instead.
  util::ThreadPool::set_global_threads(4);
  ASSERT_EQ(util::ThreadPool::global().thread_count(), 4u);
  std::vector<std::size_t> sums(64, 0);
  std::atomic<int> outer_bodies{0};
  util::parallel_for(
      std::size_t{0}, sums.size(),
      [&](std::size_t i) {
        EXPECT_TRUE(util::ThreadPool::in_parallel_region());
        std::size_t local = 0;
        util::parallel_for(std::size_t{0}, std::size_t{100},
                           [&](std::size_t j) {
                             EXPECT_TRUE(
                                 util::ThreadPool::in_parallel_region());
                             local += i * j;  // nested loop is serial here
                           });
        sums[i] = local;
        ++outer_bodies;
      },
      /*grain=*/1);
  for (std::size_t i = 0; i < sums.size(); ++i) EXPECT_EQ(sums[i], i * 4950);
  EXPECT_EQ(outer_bodies.load(), 64);
  EXPECT_FALSE(util::ThreadPool::in_parallel_region());
  util::ThreadPool::set_global_threads(0);
}

TEST(ParallelFor, NestedExceptionPropagates) {
  util::ThreadPool::set_global_threads(4);
  EXPECT_THROW(util::parallel_for(std::size_t{0}, std::size_t{64},
                                  [&](std::size_t i) {
                                    util::parallel_for(
                                        std::size_t{0}, std::size_t{16},
                                        [&](std::size_t j) {
                                          if (i == 17 && j == 3)
                                            throw std::runtime_error("inner");
                                        });
                                  }),
               std::runtime_error);
  util::ThreadPool::set_global_threads(0);
}

TEST(ParallelFor, SetGlobalThreadsRebuildsPool) {
  util::ThreadPool::set_global_threads(2);
  EXPECT_EQ(util::ThreadPool::global().thread_count(), 2u);
  std::atomic<int> c{0};
  util::parallel_for(std::size_t{0}, std::size_t{1000},
                     [&](std::size_t) { ++c; });
  EXPECT_EQ(c.load(), 1000);
  util::ThreadPool::set_global_threads(0);
  EXPECT_EQ(util::ThreadPool::global().thread_count(),
            util::default_thread_count());
}

TEST(ParallelFor, ParseThreadCountAcceptsOnlyBoundedPositiveIntegers) {
  EXPECT_EQ(util::parse_thread_count("1"), 1u);
  EXPECT_EQ(util::parse_thread_count("8"), 8u);
  EXPECT_EQ(util::parse_thread_count("4096"), 4096u);
  // strtoul semantics kept on purpose (these always worked):
  EXPECT_EQ(util::parse_thread_count(" 8"), 8u);   // leading whitespace
  EXPECT_EQ(util::parse_thread_count("+8"), 8u);   // explicit sign
  EXPECT_EQ(util::parse_thread_count("08"), 8u);   // decimal, not octal
  // Everything else is rejected (0 = "fall back and warn"):
  EXPECT_EQ(util::parse_thread_count(nullptr), 0u);
  EXPECT_EQ(util::parse_thread_count(""), 0u);
  EXPECT_EQ(util::parse_thread_count("0"), 0u);
  EXPECT_EQ(util::parse_thread_count("-1"), 0u);     // wraps to huge: rejected
  EXPECT_EQ(util::parse_thread_count("4097"), 0u);   // above the cap
  EXPECT_EQ(util::parse_thread_count("8x"), 0u);     // trailing garbage
  EXPECT_EQ(util::parse_thread_count("x8"), 0u);
  EXPECT_EQ(util::parse_thread_count("3.5"), 0u);
  EXPECT_EQ(util::parse_thread_count("8 "), 0u);     // trailing whitespace
  EXPECT_EQ(util::parse_thread_count("99999999999999999999"), 0u);  // overflow
}

TEST(ParallelFor, EnvKnobControlsDefaultThreadCount) {
  const unsigned hw =
      std::max(1u, std::thread::hardware_concurrency());
  ::setenv("MESHSEARCH_THREADS", "3", 1);
  EXPECT_EQ(util::default_thread_count(), 3u);
  ::setenv("MESHSEARCH_THREADS", "0", 1);  // invalid: fall back to hardware
  EXPECT_EQ(util::default_thread_count(), hw);
  ::setenv("MESHSEARCH_THREADS", "not-a-number", 1);
  EXPECT_EQ(util::default_thread_count(), hw);
  ::setenv("MESHSEARCH_THREADS", "8x", 1);  // typo'd: fall back, don't misread
  EXPECT_EQ(util::default_thread_count(), hw);
  ::unsetenv("MESHSEARCH_THREADS");
  EXPECT_EQ(util::default_thread_count(), hw);
}

TEST(ParallelFor, ChunkInterfaceCoversRangeOnce) {
  std::vector<int> hits(10000, 0);
  std::atomic<int> chunks{0};
  util::ThreadPool::global().parallel_for_chunks(
      0, hits.size(),
      [&](std::size_t lo, std::size_t hi) {
        ++chunks;
        for (std::size_t i = lo; i < hi; ++i) ++hits[i];
      },
      /*grain=*/64);
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_GE(chunks.load(), 1);
}

TEST(Table, PrintsAlignedAndCsv) {
  util::Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b,c"), std::int64_t{42}});
  std::ostringstream text, csv;
  t.print(text);
  t.write_csv(csv);
  EXPECT_NE(text.str().find("alpha"), std::string::npos);
  EXPECT_NE(csv.str().find("\"b,c\",42"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsRaggedRows) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), std::logic_error);
}

}  // namespace
