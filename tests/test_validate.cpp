// Front-door validation (multisearch/validate.hpp), the typed error
// taxonomy (util/error.hpp), and paranoid mode. Contract: malformed input
// given to any public entry point throws InvalidInputError / CapacityError
// BEFORE any phase is charged — never a deep MS_CHECK — and degenerate but
// legal input (empty batch, single-vertex DAG, 1x1 mesh, duplicate interval
// endpoints) is handled, not rejected.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datastruct/interval_tree.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/segment_tree.hpp"
#include "datastruct/twothree_tree.hpp"
#include "datastruct/workloads.hpp"
#include "geometry/hull3d.hpp"
#include "geometry/kirkpatrick.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/stream.hpp"
#include "multisearch/synchronous.hpp"
#include "multisearch/validate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace meshsearch;
using namespace meshsearch::msearch;

// ---------------------------------------------------------------------------
// Error taxonomy basics.
// ---------------------------------------------------------------------------

TEST(ErrorTaxonomy, WhatCarriesStructuredContext) {
  ErrorContext ctx;
  ctx.engine = "alg1-paper";
  ctx.phase = "phase.step2";
  ctx.site = "somewhere";
  ctx.band = 3;
  ctx.seed = 42;
  ctx.occurrence = 7;
  ctx.has_seed = true;
  const Error e("it broke", ctx);
  const std::string w = e.what();
  EXPECT_NE(w.find("it broke"), std::string::npos);
  EXPECT_NE(w.find("engine=alg1-paper"), std::string::npos);
  EXPECT_NE(w.find("phase=phase.step2"), std::string::npos);
  EXPECT_NE(w.find("band=3"), std::string::npos);
  EXPECT_NE(w.find("seed=42"), std::string::npos);
  EXPECT_NE(w.find("occurrence=7"), std::string::npos);
  EXPECT_EQ(e.message(), "it broke");
  EXPECT_EQ(e.context().band, 3);
}

TEST(ErrorTaxonomy, SubclassesAreCatchableAsErrorAndLogicError) {
  // The compatibility contract: everything slots under std::logic_error.
  EXPECT_THROW(invalid_input("x", "here"), InvalidInputError);
  EXPECT_THROW(invalid_input("x", "here"), Error);
  EXPECT_THROW(invalid_input("x", "here"), std::logic_error);
  EXPECT_THROW(capacity_error("x", "here"), CapacityError);
  EXPECT_THROW(capacity_error("x", "here"), std::logic_error);
}

// ---------------------------------------------------------------------------
// Graph / splitting / shape validators.
// ---------------------------------------------------------------------------

TEST(Validate, DuplicateEdgeRejected) {
  DistributedGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // parallel edge: legal to build, invalid to run
  g.add_edge(1, 2);
  EXPECT_THROW(validate_graph(g, "test"), InvalidInputError);
}

TEST(Validate, CleanGraphPasses) {
  DistributedGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_NO_THROW(validate_graph(g, "test"));
}

TEST(Validate, SplittingSizeMismatchRejected) {
  DistributedGraph g(4);
  Splitting s;
  s.piece = {0, 0, 1};  // one short
  s.kind = {PieceKind::kHead, PieceKind::kTail};
  EXPECT_THROW(validate_splitting_input(g, s, "test"), InvalidInputError);
}

TEST(Validate, GraphLargerThanMeshIsCapacityError) {
  DistributedGraph g(5);
  EXPECT_THROW(validate_graph_fits(g, mesh::MeshShape(2), "test"),
               CapacityError);
  EXPECT_NO_THROW(validate_graph_fits(g, mesh::MeshShape(4), "test"));
}

TEST(Validate, OversizedBatchIsCapacityError) {
  EXPECT_THROW(validate_batch_size(17, 16, "test"), CapacityError);
  EXPECT_NO_THROW(validate_batch_size(16, 16, "test"));
  EXPECT_NO_THROW(validate_batch_size(0, 16, "test"));
}

TEST(Validate, HierarchicalLevelGapRejected) {
  // 0 -> 2 skips a level; also leaves level 1 empty.
  DistributedGraph g(3);
  g.vert(0).level = 0;
  g.vert(1).level = 0;
  g.vert(2).level = 2;
  g.add_edge(0, 2);
  EXPECT_THROW(HierarchicalDag(g, 2.0), InvalidInputError);
}

TEST(Validate, HierarchicalMuAtMostOneRejected) {
  DistributedGraph g(2);
  g.vert(0).level = 0;
  g.vert(1).level = 1;
  g.add_edge(0, 1);
  EXPECT_THROW(HierarchicalDag(g, 1.0), InvalidInputError);
  EXPECT_NO_THROW(HierarchicalDag(g, 2.0));
}

// ---------------------------------------------------------------------------
// Data-structure builders.
// ---------------------------------------------------------------------------

TEST(Validate, KaryTreeBadFanOutRejected) {
  EXPECT_THROW(ds::KaryTree(ds::iota_keys(8), 7, ds::TreeMode::kDirected),
               InvalidInputError);
  EXPECT_THROW(ds::KaryTree(ds::iota_keys(8), 1, ds::TreeMode::kDirected),
               InvalidInputError);
}

TEST(Validate, KaryTreeUnsortedKeysRejected) {
  auto keys = ds::iota_keys(8);
  std::swap(keys[2], keys[5]);
  EXPECT_THROW(ds::KaryTree(std::move(keys), 2, ds::TreeMode::kDirected),
               InvalidInputError);
}

TEST(Validate, IntervalTreeInvertedIntervalRejected) {
  EXPECT_THROW(ds::IntervalTree({{10, 4, 0}}), InvalidInputError);
  EXPECT_THROW(ds::IntervalTree({}), InvalidInputError);
}

TEST(Validate, IntervalTreeDuplicateEndpointsHandled) {
  // Duplicate and degenerate endpoints are legal — distinct-endpoint
  // compaction inside the builder must absorb them, not trip a check.
  EXPECT_NO_THROW(ds::IntervalTree({{5, 5, 0}, {5, 5, 1}, {5, 9, 2}, {9, 9, 3}}));
}

TEST(Validate, SegmentTreeBuilderUsesTheFrontDoor) {
  // Same taxonomy as the other builders: InvalidInputError before any
  // construction work, never a deep MS_CHECK.
  EXPECT_THROW(ds::SegmentTree({}), InvalidInputError);
  EXPECT_THROW(ds::SegmentTree({{1, 5, 0}, {10, 4, 1}}), InvalidInputError);
  try {
    ds::SegmentTree({{1, 5, 0}, {10, 4, 1}});
    FAIL() << "inverted interval accepted";
  } catch (const InvalidInputError& e) {
    EXPECT_EQ(e.context().site, "segment-tree");
    EXPECT_NE(std::string(e.what()).find("lo > hi"), std::string::npos);
  }
  EXPECT_NO_THROW(ds::SegmentTree({{5, 5, 0}, {1, 9, 1}}));
}

TEST(Validate, TwoThreeTreeBuilderUsesTheFrontDoor) {
  EXPECT_THROW(ds::TwoThreeTree({}), InvalidInputError);
  EXPECT_THROW(ds::TwoThreeTree({3, 1, 2}), InvalidInputError);   // unsorted
  EXPECT_THROW(ds::TwoThreeTree({1, 2, 2, 3}), InvalidInputError);  // dup
  try {
    ds::TwoThreeTree({1, 2, 2, 3});
    FAIL() << "duplicate key accepted";
  } catch (const InvalidInputError& e) {
    EXPECT_EQ(e.context().site, "twothree-tree");
    EXPECT_NE(std::string(e.what()).find("index 2"), std::string::npos);
  }
  EXPECT_NO_THROW(ds::TwoThreeTree({1, 2, 3, 10}));
}

// ---------------------------------------------------------------------------
// Geometry builders.
// ---------------------------------------------------------------------------

TEST(Validate, CollinearPointSetRejected) {
  std::vector<geom::Point2> pts;
  for (int i = 0; i < 8; ++i)
    pts.push_back({i, 2 * i});  // all on y = 2x
  EXPECT_THROW(validate_point_set_2d(pts, "test"), InvalidInputError);
  pts.push_back({1, 100});  // one witness off the line
  EXPECT_NO_THROW(validate_point_set_2d(pts, "test"));
}

TEST(Validate, DuplicatePointsRejected) {
  const std::vector<geom::Point2> pts = {{0, 0}, {5, 1}, {2, 7}, {5, 1}};
  EXPECT_THROW(validate_points_distinct(pts, "test"), InvalidInputError);
  EXPECT_THROW(geom::Kirkpatrick(pts, 1 << 12), InvalidInputError);
}

TEST(Validate, Hull3DegenerateInputsRejected) {
  util::Rng rng(7);
  EXPECT_THROW(geom::convex_hull3({{0, 0, 0}, {1, 1, 1}, {2, 2, 2}}, rng),
               InvalidInputError);  // too few
  // All collinear.
  std::vector<geom::Point3> line;
  for (int i = 0; i < 6; ++i) line.push_back({i, i, i});
  EXPECT_THROW(geom::convex_hull3(line, rng), InvalidInputError);
  // All coplanar (z = 0).
  std::vector<geom::Point3> plane = {{0, 0, 0}, {4, 0, 0}, {0, 4, 0},
                                     {4, 4, 0}, {1, 2, 0}};
  EXPECT_THROW(geom::convex_hull3(plane, rng), InvalidInputError);
}

// ---------------------------------------------------------------------------
// Degenerate-but-legal inputs at the engine entry points.
// ---------------------------------------------------------------------------

struct TinyDag {
  DistributedGraph g;
  explicit TinyDag(std::size_t verts = 1) : g(verts) {
    for (std::size_t i = 0; i < verts; ++i)
      g.vert(static_cast<Vid>(i)).level = static_cast<std::int32_t>(i);
    for (std::size_t i = 0; i + 1 < verts; ++i)
      g.add_edge(static_cast<Vid>(i), static_cast<Vid>(i + 1));
  }
};

TEST(Validate, EmptyQuerySetIsHandled) {
  const TinyDag t(4);
  const HierarchicalDag dag(t.g, 2.0);
  std::vector<Query> queries;  // empty batch: valid, nothing to do
  mesh::CostModel m;
  const auto shape = t.g.shape_for(0);
  EXPECT_NO_THROW(
      hierarchical_multisearch(dag, ds::HashWalk{0}, queries, m, shape));
}

TEST(Validate, SingleVertexDagRuns) {
  const TinyDag t(1);
  const HierarchicalDag dag(t.g, 2.0);
  auto queries = make_queries(2);
  mesh::CostModel m;
  const auto shape = t.g.shape_for(queries.size());
  EXPECT_NO_THROW(
      hierarchical_multisearch(dag, ds::HashWalk{0}, queries, m, shape));
  for (const auto& q : queries) EXPECT_TRUE(q.done);
}

TEST(Validate, OneByOneMeshRuns) {
  const TinyDag t(1);
  const HierarchicalDag dag(t.g, 2.0);
  auto queries = make_queries(1);
  mesh::CostModel m;
  const mesh::MeshShape shape(1);
  EXPECT_NO_THROW(
      hierarchical_multisearch(dag, ds::HashWalk{0}, queries, m, shape));
}

TEST(Validate, EngineRejectsOversizedBatchBeforeRunning) {
  const TinyDag t(2);
  const HierarchicalDag dag(t.g, 2.0);
  auto queries = make_queries(10);
  mesh::CostModel m;
  const mesh::MeshShape shape(2);  // 4 processors < 10 queries
  EXPECT_THROW(
      hierarchical_multisearch(dag, ds::HashWalk{0}, queries, m, shape),
      CapacityError);
}

TEST(Validate, SynchronousEngineValidatesToo) {
  const TinyDag t(2);
  auto queries = make_queries(10);
  mesh::CostModel m;
  EXPECT_THROW(synchronous_multisearch(t.g, ds::HashWalk{0}, queries, m,
                                       mesh::MeshShape(2)),
               CapacityError);
}

TEST(Validate, PreparedSearchRejectsWrongKind) {
  ds::KaryTree tree(ds::iota_keys(64), 2, ds::TreeMode::kDirected);
  const auto shape = tree.graph().shape_for(tree.graph().vertex_count());
  mesh::CostModel m;
  EXPECT_THROW(PreparedSearch(EngineKind::kAlg1Paper, tree.graph(),
                              tree.alpha_splitting(), tree.alpha_splitting(),
                              tree.rank_count(), m, shape),
               InvalidInputError);
}

// ---------------------------------------------------------------------------
// Paranoid mode.
// ---------------------------------------------------------------------------

struct ParanoidGuard {
  explicit ParanoidGuard(int mode) { set_paranoid_override(mode); }
  ~ParanoidGuard() { set_paranoid_override(-1); }
};

TEST(Paranoid, OverrideControlsTheSwitch) {
  {
    const ParanoidGuard on(1);
    EXPECT_TRUE(paranoid_enabled());
  }
  {
    const ParanoidGuard off(0);
    EXPECT_FALSE(paranoid_enabled());
  }
}

TEST(Paranoid, CleanEngineRunPassesTheAudit) {
  const ParanoidGuard on(1);
  util::Rng rng(91);
  const auto g = ds::build_hierarchical_dag(600, 2.0, 3, rng);
  const HierarchicalDag dag(g, 2.0);
  auto queries = make_queries(64);
  util::Rng qrng(92);
  for (auto& q : queries)
    q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));
  mesh::CostModel m;
  const auto shape = g.shape_for(queries.size());
  // A correct engine must sail through the shadow-oracle audit.
  EXPECT_NO_THROW(
      hierarchical_multisearch(dag, ds::HashWalk{0}, queries, m, shape));
}

TEST(Paranoid, AuditDivergenceThrowsIntegrityError) {
  EXPECT_THROW(msearch::detail::paranoid_mismatch("test-engine", 3, 1, 2),
               IntegrityError);
  EXPECT_NO_THROW(
      msearch::detail::paranoid_checksum_mismatch_check("test-engine", 5, 5));
  EXPECT_THROW(
      msearch::detail::paranoid_checksum_mismatch_check("test-engine", 5, 6),
      IntegrityError);
}

TEST(Paranoid, OutcomeChecksumIsOrderIndependentAndSensitive) {
  auto qs = make_queries(8);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    qs[i].acc0 = static_cast<std::int64_t>(i * 31);
    qs[i].result = static_cast<std::int32_t>(i);
  }
  const auto sum = outcome_checksum(qs);
  std::swap(qs[1], qs[6]);  // order must not matter
  EXPECT_EQ(outcome_checksum(qs), sum);
  qs[0].acc0 ^= 1;  // any payload bit must
  EXPECT_NE(outcome_checksum(qs), sum);
}

}  // namespace
