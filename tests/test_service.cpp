// Multi-tenant service tests (src/service/): oracle agreement per tenant,
// the EngineRegistry contract, admission-control rejection (CapacityError
// with tenant context, nothing enqueued, nothing charged), async
// poll/result/callback completion, and the fairness properties of
// deficit-round-robin between tenant streams — bounded queue wait for a
// light tenant under a 10:1 offered-load skew, exact weighted service
// shares, and the exhaustive baseline starving late registrants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "multisearch/query.hpp"
#include "multisearch/sequential.hpp"
#include "multisearch/stream.hpp"
#include "service/engine.hpp"
#include "service/scheduler.hpp"
#include "service/tenant.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace meshsearch;
using namespace meshsearch::msearch;
using namespace meshsearch::service;
using ds::KaryTree;
using ds::TreeMode;

// ---------------------------------------------------------------------------
// Fixtures: the same long-lived structures the stream tests use, so
// PreparedSearch's cached pointers stay valid for the whole test.
// ---------------------------------------------------------------------------

struct Alg1Fixture {
  DistributedGraph g;
  HierarchicalDag dag;
  mesh::MeshShape shape;

  explicit Alg1Fixture(std::uint64_t seed = 20)
      : g([&] {
          util::Rng rng(seed);
          return ds::build_hierarchical_dag(3000, 2.0, 3, rng);
        }()),
        dag(g, 2.0),
        shape(g.shape_for(g.vertex_count())) {}

  std::vector<Query> stream(std::size_t m, std::uint64_t seed = 21) const {
    auto qs = make_queries(m);
    util::Rng rng(seed);
    for (auto& q : qs)
      q.key[0] = static_cast<std::int64_t>(rng.uniform(1ull << 40));
    return qs;
  }
};

struct Alg2Fixture {
  KaryTree tree;
  mesh::MeshShape shape;

  Alg2Fixture() : tree(ds::iota_keys(500), 3, TreeMode::kDirected),
                  shape(tree.graph().shape_for(tree.graph().vertex_count())) {}

  std::vector<Query> stream(std::size_t m, std::uint64_t seed = 22) const {
    util::Rng rng(seed);
    return ds::uniform_key_queries(m, 520, rng);
  }
};

struct Alg3Fixture {
  KaryTree tree;
  Splitting s1, s2;
  mesh::MeshShape shape;

  Alg3Fixture() : tree(ds::iota_keys(256), 2, TreeMode::kUndirected),
                  shape(tree.graph().shape_for(tree.graph().vertex_count())) {
    std::tie(s1, s2) = tree.alpha_beta_splittings();
  }

  std::vector<Query> stream(std::size_t m, std::uint64_t seed = 23) const {
    auto qs = make_queries(m);
    util::Rng rng(seed);
    for (auto& q : qs) {
      const auto a = rng.uniform_range(-3, 259);
      q.key[0] = a;
      q.key[1] = a + rng.uniform_range(0, 30);
    }
    return qs;
  }
};

/// Gather a submission's answered queries back in ticket order.
std::vector<Query> results_of(const TenantSession& t, const Submission& sub) {
  std::vector<Query> out;
  out.reserve(sub.count);
  for (Ticket k = sub.first; k < sub.first + sub.count; ++k)
    out.push_back(t.result(k));
  return out;
}

// ---------------------------------------------------------------------------
// Oracle agreement: every tenant's answers match the sequential reference,
// with tenants interleaved on one warm engine and across the full registry.
// ---------------------------------------------------------------------------

TEST(ServiceOracle, TwoTenantsOneWarmEngineMatchSequential) {
  const Alg2Fixture fx;
  const std::size_t cap = fx.shape.size();
  const mesh::CostModel m;
  auto engine = make_partitioned_engine(
      EngineKind::kAlg2Alpha, fx.tree.graph(), fx.tree.alpha_splitting(),
      fx.tree.alpha_splitting(), fx.tree.rank_count(), m, fx.shape);

  ServiceScheduler svc;
  TenantQuota quota;
  quota.max_outstanding = 16 * cap;
  TenantSession& a = svc.add_tenant("acme", *engine, quota);
  TenantSession& b = svc.add_tenant("bolt", *engine, quota);

  const auto qa = fx.stream(2 * cap + 17, /*seed=*/101);
  const auto qb = fx.stream(cap + 5, /*seed=*/202);
  const Submission sa = a.submit(qa);
  const Submission sb = b.submit(qb);
  const std::size_t resolved = svc.run_until_idle();
  EXPECT_EQ(resolved, qa.size() + qb.size());
  EXPECT_TRUE(svc.idle());

  auto ea = qa;
  auto eb = qb;
  sequential_multisearch(fx.tree.graph(), fx.tree.rank_count(), ea);
  sequential_multisearch(fx.tree.graph(), fx.tree.rank_count(), eb);
  EXPECT_EQ(diff_outcomes(outcomes(results_of(a, sa)), outcomes(ea)), "");
  EXPECT_EQ(diff_outcomes(outcomes(results_of(b, sb)), outcomes(eb)), "");

  // The warm engine served both tenants without re-preparing: charged work
  // is inject + run only, setup stays the one-time construction charge.
  const TenantReport ra = a.report();
  const TenantReport rb = b.report();
  EXPECT_EQ(ra.completed, qa.size());
  EXPECT_EQ(rb.completed, qb.size());
  EXPECT_EQ(ra.failed_queries, 0u);
  EXPECT_EQ(rb.failed_queries, 0u);
  EXPECT_GT(ra.charged().steps, 0.0);
  EXPECT_GT(rb.charged().steps, 0.0);
  EXPECT_DOUBLE_EQ(svc.now_steps(),
                   ra.charged().steps + rb.charged().steps);
}

TEST(ServiceOracle, RegistryServesAllFourEngineKinds) {
  const Alg1Fixture fx1;
  const Alg2Fixture fx2;
  const Alg3Fixture fx3;
  const mesh::CostModel m;

  EngineRegistry registry;
  registry.add({"dag", EngineKind::kAlg1Paper},
               make_hierarchical_engine(fx1.dag, PlanKind::kPaper,
                                        ds::HashWalk{0}, m, fx1.shape));
  registry.add({"dag", EngineKind::kAlg1Geometric},
               make_hierarchical_engine(fx1.dag, PlanKind::kGeometric,
                                        ds::HashWalk{0}, m, fx1.shape));
  registry.add({"tree500", EngineKind::kAlg2Alpha},
               make_partitioned_engine(EngineKind::kAlg2Alpha, fx2.tree.graph(),
                                       fx2.tree.alpha_splitting(),
                                       fx2.tree.alpha_splitting(),
                                       fx2.tree.rank_count(), m, fx2.shape));
  registry.add({"tree256", EngineKind::kAlg3AlphaBeta},
               make_partitioned_engine(EngineKind::kAlg3AlphaBeta,
                                       fx3.tree.graph(), fx3.s1, fx3.s2,
                                       fx3.tree.euler_scan(), m, fx3.shape));
  EXPECT_EQ(registry.size(), 4u);
  EXPECT_EQ(registry.find({"dag", EngineKind::kAlg2Alpha}), nullptr);
  EXPECT_THROW(registry.at({"missing", EngineKind::kAlg1Paper}),
               InvalidInputError);
  EXPECT_THROW(registry.add({"dag", EngineKind::kAlg1Paper}, nullptr),
               InvalidInputError);

  ServiceScheduler svc;
  TenantQuota quota;
  quota.max_outstanding = 1 << 16;
  TenantSession& t1 = svc.add_tenant(
      "t1", registry.at({"dag", EngineKind::kAlg1Paper}), quota);
  TenantSession& t1g = svc.add_tenant(
      "t1g", registry.at({"dag", EngineKind::kAlg1Geometric}), quota);
  TenantSession& t2 = svc.add_tenant(
      "t2", registry.at({"tree500", EngineKind::kAlg2Alpha}), quota);
  TenantSession& t3 = svc.add_tenant(
      "t3", registry.at({"tree256", EngineKind::kAlg3AlphaBeta}), quota);

  const auto q1 = fx1.stream(fx1.shape.size() + 31, 11);
  const auto q1g = fx1.stream(fx1.shape.size() / 2 + 9, 12);
  const auto q2 = fx2.stream(fx2.shape.size() + 7, 13);
  const auto q3 = fx3.stream(fx3.shape.size() + 3, 14);
  const Submission s1 = t1.submit(q1);
  const Submission s1g = t1g.submit(q1g);
  const Submission s2 = t2.submit(q2);
  const Submission s3 = t3.submit(q3);
  svc.run_until_idle();

  auto e1 = q1;
  auto e1g = q1g;
  auto e2 = q2;
  auto e3 = q3;
  sequential_multisearch(fx1.g, ds::HashWalk{0}, e1);
  sequential_multisearch(fx1.g, ds::HashWalk{0}, e1g);
  sequential_multisearch(fx2.tree.graph(), fx2.tree.rank_count(), e2);
  sequential_multisearch(fx3.tree.graph(), fx3.tree.euler_scan(), e3);
  EXPECT_EQ(diff_outcomes(outcomes(results_of(t1, s1)), outcomes(e1)), "");
  EXPECT_EQ(diff_outcomes(outcomes(results_of(t1g, s1g)), outcomes(e1g)), "");
  EXPECT_EQ(diff_outcomes(outcomes(results_of(t2, s2)), outcomes(e2)), "");
  EXPECT_EQ(diff_outcomes(outcomes(results_of(t3, s3)), outcomes(e3)), "");
}

// ---------------------------------------------------------------------------
// Admission control: quota exceeded -> CapacityError naming the tenant,
// nothing enqueued, nothing charged.
// ---------------------------------------------------------------------------

TEST(ServiceAdmission, OverQuotaSubmitRejectedWholeWithTenantContext) {
  const Alg3Fixture fx;
  const mesh::CostModel m;  // no sinks: the engine charges nowhere visible
  auto engine = make_partitioned_engine(EngineKind::kAlg3AlphaBeta,
                                        fx.tree.graph(), fx.s1, fx.s2,
                                        fx.tree.euler_scan(), m, fx.shape);
  trace::TraceRecorder rec("service");
  ServiceScheduler svc({}, &rec);
  TenantQuota quota;
  quota.max_outstanding = 10;
  TenantSession& t = svc.add_tenant("acme", *engine, quota);

  bool threw = false;
  try {
    t.submit(fx.stream(11));
  } catch (const CapacityError& e) {
    threw = true;
    // The error context names the tenant so a multiplexed caller can tell
    // whose quota tripped.
    EXPECT_EQ(e.context().site, "acme");
    EXPECT_EQ(e.context().phase, "admission");
    EXPECT_EQ(e.context().engine, "service");
  }
  EXPECT_TRUE(threw);

  // Nothing was enqueued and nothing was charged: no tickets exist, the
  // trace saw no primitive work, the virtual clock never moved.
  EXPECT_EQ(t.submitted(), 0u);
  EXPECT_EQ(t.outstanding(), 0u);
  EXPECT_TRUE(svc.idle());
  EXPECT_TRUE(rec.counters().empty());
  EXPECT_DOUBLE_EQ(svc.now_steps(), 0.0);
  const TenantReport rep = t.report();
  EXPECT_EQ(rep.rejected_submissions, 1u);
  EXPECT_EQ(rep.rejected_queries, 11u);
  EXPECT_EQ(rep.batches, 0u);

  // The session is not poisoned: an in-quota submit still works, and after
  // the backlog drains the freed quota admits more.
  const Submission ok = t.submit(fx.stream(10));
  EXPECT_EQ(ok.count, 10u);
  EXPECT_THROW(t.submit(fx.stream(1)), CapacityError);
  svc.run_until_idle();
  EXPECT_EQ(t.submit(fx.stream(10)).count, 10u);
  svc.run_until_idle();
  EXPECT_EQ(t.report().completed, 20u);
}

TEST(ServiceAdmission, EmptySubmitIsANoOp) {
  const Alg3Fixture fx;
  const mesh::CostModel m;
  auto engine = make_partitioned_engine(EngineKind::kAlg3AlphaBeta,
                                        fx.tree.graph(), fx.s1, fx.s2,
                                        fx.tree.euler_scan(), m, fx.shape);
  ServiceScheduler svc;
  TenantSession& t = svc.add_tenant("acme", *engine);
  const Submission sub = t.submit({});
  EXPECT_EQ(sub.count, 0u);
  EXPECT_EQ(t.outstanding(), 0u);
  EXPECT_TRUE(svc.idle());
}

TEST(ServiceAdmission, BadTenantRegistrationRejected) {
  const Alg3Fixture fx;
  const mesh::CostModel m;
  auto engine = make_partitioned_engine(EngineKind::kAlg3AlphaBeta,
                                        fx.tree.graph(), fx.s1, fx.s2,
                                        fx.tree.euler_scan(), m, fx.shape);
  ServiceScheduler svc;
  svc.add_tenant("acme", *engine);
  EXPECT_THROW(svc.add_tenant("acme", *engine), InvalidInputError);
  TenantQuota zero_outstanding;
  zero_outstanding.max_outstanding = 0;
  EXPECT_THROW(svc.add_tenant("b", *engine, zero_outstanding),
               InvalidInputError);
  TenantQuota zero_weight;
  zero_weight.weight = 0;
  EXPECT_THROW(svc.add_tenant("c", *engine, zero_weight), InvalidInputError);
  EXPECT_THROW(svc.tenant("nobody"), InvalidInputError);
}

// ---------------------------------------------------------------------------
// Async completion: poll observes the state machine, result returns the
// answered query, the callback fires exactly once per query.
// ---------------------------------------------------------------------------

TEST(ServiceAsync, PollResultAndCallbackCompletion) {
  const Alg2Fixture fx;
  const std::size_t cap = fx.shape.size();
  const mesh::CostModel m;
  auto engine = make_partitioned_engine(
      EngineKind::kAlg2Alpha, fx.tree.graph(), fx.tree.alpha_splitting(),
      fx.tree.alpha_splitting(), fx.tree.rank_count(), m, fx.shape);
  ServiceScheduler svc;
  TenantQuota quota;
  quota.max_outstanding = 4 * cap;
  TenantSession& t = svc.add_tenant("acme", *engine, quota);

  std::set<Ticket> seen;
  std::size_t failures = 0;
  t.on_complete([&](const CompletionEvent& ev) {
    EXPECT_TRUE(seen.insert(ev.ticket).second) << "double completion";
    EXPECT_NE(ev.query, nullptr);
    EXPECT_GE(ev.latency_steps, 0.0);
    if (ev.failed) ++failures;
  });

  const auto qs = fx.stream(cap + cap / 2);
  const Submission sub = t.submit(qs);
  for (Ticket k = sub.first; k < sub.first + sub.count; ++k)
    EXPECT_EQ(t.poll(k), QueryState::kPending);

  svc.run_until_idle();
  EXPECT_EQ(seen.size(), qs.size());
  EXPECT_EQ(failures, 0u);
  for (Ticket k = sub.first; k < sub.first + sub.count; ++k)
    EXPECT_EQ(t.poll(k), QueryState::kDone);

  auto expect = qs;
  sequential_multisearch(fx.tree.graph(), fx.tree.rank_count(), expect);
  EXPECT_EQ(diff_outcomes(outcomes(results_of(t, sub)), outcomes(expect)),
            "");
}

// ---------------------------------------------------------------------------
// Fairness: the properties deficit-round-robin exists to provide.
// ---------------------------------------------------------------------------

TEST(ServiceFairness, DrrBoundsLightTenantQueueWaitUnderTenToOneSkew) {
  const Alg3Fixture fx;
  const std::size_t cap = fx.shape.size();
  const auto heavy_qs = fx.stream(10 * cap, /*seed=*/31);  // 10:1 offered load
  const auto light_qs = fx.stream(cap, /*seed=*/32);
  const mesh::CostModel m;

  const auto run = [&](SchedulePolicy policy) {
    auto engine = make_partitioned_engine(EngineKind::kAlg3AlphaBeta,
                                          fx.tree.graph(), fx.s1, fx.s2,
                                          fx.tree.euler_scan(), m, fx.shape);
    ServiceConfig cfg;
    cfg.policy = policy;
    ServiceScheduler svc(cfg);
    TenantQuota quota;
    quota.max_outstanding = 16 * cap;
    // The heavy tenant registers FIRST — the adversarial order: an unfair
    // scheduler serves its whole backlog before the light tenant runs.
    TenantSession& heavy = svc.add_tenant("heavy", *engine, quota);
    TenantSession& light = svc.add_tenant("light", *engine, quota);
    const Submission sh = heavy.submit(heavy_qs);
    const Submission sl = light.submit(light_qs);
    svc.run_until_idle();
    // No starvation under either policy: everything completes, correctly.
    auto eh = heavy_qs;
    auto el = light_qs;
    sequential_multisearch(fx.tree.graph(), fx.tree.euler_scan(), eh);
    sequential_multisearch(fx.tree.graph(), fx.tree.euler_scan(), el);
    EXPECT_EQ(diff_outcomes(outcomes(results_of(heavy, sh)), outcomes(eh)),
              "");
    EXPECT_EQ(diff_outcomes(outcomes(results_of(light, sl)), outcomes(el)),
              "");
    return std::pair{heavy.report(), light.report()};
  };

  const auto [drr_heavy, drr_light] = run(SchedulePolicy::kDeficitRoundRobin);
  // Under DRR the light tenant is served every round: its worst queue wait
  // is bounded by one round of everyone else's quanta — here, ONE heavy
  // batch — no matter how deep the heavy backlog is.
  const double total_steps =
      drr_heavy.charged().steps + drr_light.charged().steps;
  const double mean_batch =
      total_steps / static_cast<double>(drr_heavy.batches + drr_light.batches);
  EXPECT_GT(drr_light.queue_wait_steps.count(), 0u);
  EXPECT_LE(drr_light.queue_wait_steps.max(), 2.0 * mean_batch);

  const auto [exh_heavy, exh_light] = run(SchedulePolicy::kExhaustive);
  // The exhaustive baseline drains all ten heavy batches first: the light
  // tenant's BEST case waits the heavy tenant's whole backlog. DRR beats it
  // by a wide margin (~10x here; assert 4x for slack).
  EXPECT_GE(exh_light.queue_wait_steps.min(),
            exh_heavy.charged().steps * 0.999);
  EXPECT_GE(exh_light.queue_wait_steps.min(),
            4.0 * drr_light.queue_wait_steps.max());
  // Both policies do the same work; fairness only re-orders it.
  EXPECT_DOUBLE_EQ(exh_heavy.charged().steps + exh_light.charged().steps,
                   total_steps);
}

TEST(ServiceFairness, WeightedTenantsGetExactProportionalService) {
  const Alg3Fixture fx;
  const std::size_t cap = fx.shape.size();
  const mesh::CostModel m;
  auto engine = make_partitioned_engine(EngineKind::kAlg3AlphaBeta,
                                        fx.tree.graph(), fx.s1, fx.s2,
                                        fx.tree.euler_scan(), m, fx.shape);
  ServiceConfig cfg;
  cfg.quantum = cap / 8;  // small fixed quantum so rounds interleave
  ServiceScheduler svc(cfg);
  TenantQuota gold;
  gold.max_outstanding = 16 * cap;
  gold.weight = 2;
  TenantQuota coach = gold;
  coach.weight = 1;
  TenantSession& g = svc.add_tenant("gold", *engine, gold);
  TenantSession& c = svc.add_tenant("coach", *engine, coach);
  g.submit(fx.stream(4 * cap, 41));
  c.submit(fx.stream(4 * cap, 42));

  // With both backlogs deep, k rounds serve exactly k * quantum * weight
  // queries each: a 2:1 service share, not approximately but exactly.
  for (int round = 0; round < 3; ++round) svc.pump();
  EXPECT_EQ(g.report().completed, 3u * 2u * (cap / 8));
  EXPECT_EQ(c.report().completed, 3u * 1u * (cap / 8));
  svc.run_until_idle();
  EXPECT_EQ(g.report().completed, 4 * cap);
  EXPECT_EQ(c.report().completed, 4 * cap);
}

// ---------------------------------------------------------------------------
// Per-tenant metric namespacing.
// ---------------------------------------------------------------------------

TEST(ServiceMetrics, ExportNamespacesPerTenantAndSanitizesNames) {
  EXPECT_EQ(trace::tenant_metric("acme", "completed"),
            "tenant.acme.completed");
  EXPECT_EQ(trace::tenant_metric("a b/c", "x"), "tenant.a_b_c.x");
  EXPECT_EQ(trace::tenant_metric("acme", ""), "tenant.acme.");

  const Alg3Fixture fx;
  const std::size_t cap = fx.shape.size();
  const mesh::CostModel m;
  auto engine = make_partitioned_engine(EngineKind::kAlg3AlphaBeta,
                                        fx.tree.graph(), fx.s1, fx.s2,
                                        fx.tree.euler_scan(), m, fx.shape);
  trace::TraceRecorder rec("service");
  ServiceScheduler svc({}, &rec);
  TenantQuota quota;
  quota.max_outstanding = 4 * cap;
  TenantSession& a = svc.add_tenant("acme", *engine, quota);
  TenantSession& b = svc.add_tenant("bolt", *engine, quota);
  a.submit(fx.stream(cap + 9, 51));
  b.submit(fx.stream(cap / 2, 52));
  svc.run_until_idle();
  svc.export_metrics();

  std::map<std::string, double> metrics;
  for (const auto& mt : rec.metrics()) metrics[mt.name] = mt.value;
  EXPECT_EQ(metrics.at("tenant.acme.completed"),
            static_cast<double>(cap + 9));
  EXPECT_EQ(metrics.at("tenant.bolt.completed"),
            static_cast<double>(cap / 2));
  EXPECT_EQ(metrics.at("tenant.acme.failed_queries"), 0.0);
  EXPECT_EQ(metrics.at("tenant.bolt.degraded_batches"), 0.0);
  EXPECT_EQ(metrics.at("service.tenants"), 2.0);
  EXPECT_DOUBLE_EQ(metrics.at("service.clock_steps"), svc.now_steps());
  EXPECT_DOUBLE_EQ(metrics.at("tenant.acme.charged_steps") +
                       metrics.at("tenant.bolt.charged_steps"),
                   svc.now_steps());
}

// ---------------------------------------------------------------------------
// Virtual clock.
// ---------------------------------------------------------------------------

TEST(ServiceClock, AdvancesByChargedStepsAndIdleGaps) {
  const Alg3Fixture fx;
  const std::size_t cap = fx.shape.size();
  const mesh::CostModel m;
  auto engine = make_partitioned_engine(EngineKind::kAlg3AlphaBeta,
                                        fx.tree.graph(), fx.s1, fx.s2,
                                        fx.tree.euler_scan(), m, fx.shape);
  ServiceScheduler svc;
  TenantQuota quota;
  quota.max_outstanding = 4 * cap;
  TenantSession& t = svc.add_tenant("acme", *engine, quota);
  EXPECT_DOUBLE_EQ(svc.now_steps(), 0.0);
  t.submit(fx.stream(cap / 2, 61));
  svc.run_until_idle();
  const double after_first = svc.now_steps();
  EXPECT_GT(after_first, 0.0);
  EXPECT_DOUBLE_EQ(after_first, t.report().charged().steps);

  // Idle gap, then more work: later queries' waits are measured from their
  // own admission time, not the epoch.
  svc.advance_clock_to(after_first + 1e6);
  const Submission sub = t.submit(fx.stream(cap / 2, 62));
  svc.run_until_idle();
  EXPECT_GT(svc.now_steps(), after_first + 1e6);
  for (Ticket k = sub.first; k < sub.first + sub.count; ++k)
    EXPECT_EQ(t.poll(k), QueryState::kDone);
  // Queue wait of the post-gap batch is 0: it was served immediately.
  const TenantReport rep = t.report();
  EXPECT_LT(rep.latency_steps.max(), 1e6);  // nobody waited across the gap
}

}  // namespace
