// Geometry substrate tests: exact predicates, 2-d hulls, the incremental
// triangulation, and the 3-d convex hull.
#include <gtest/gtest.h>

#include <algorithm>

#include "geometry/hull2d.hpp"
#include "geometry/hull3d.hpp"
#include "geometry/predicates.hpp"
#include "geometry/triangulate.hpp"

namespace {

using namespace meshsearch;
using namespace meshsearch::geom;

// ---------------------------------------------------------------------------
// predicates
// ---------------------------------------------------------------------------

TEST(Predicates, Orient2d) {
  EXPECT_GT(orient2d({0, 0}, {1, 0}, {0, 1}), 0);
  EXPECT_LT(orient2d({0, 0}, {0, 1}, {1, 0}), 0);
  EXPECT_EQ(orient2d({0, 0}, {1, 1}, {2, 2}), 0);
  // Near-overflow coordinates stay exact.
  const Scalar M = kMaxCoord;
  EXPECT_GT(orient2d({-M, -M}, {M, -M}, {M - 1, -M + 1}), 0);
  EXPECT_EQ(orient2d({-M, -M}, {0, 0}, {M, M}), 0);
}

TEST(Predicates, Orient3d) {
  // Convention: positive when (a,b,c) appears counter-clockwise from d.
  const Point3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0};
  EXPECT_GT(orient3d(a, b, c, {0, 0, 1}), 0);
  EXPECT_LT(orient3d(a, b, c, {0, 0, -1}), 0);
  EXPECT_EQ(orient3d(a, b, c, {5, 7, 0}), 0);
}

TEST(Predicates, PointInTriangle) {
  const Point2 a{0, 0}, b{10, 0}, c{0, 10};
  EXPECT_TRUE(point_in_triangle({1, 1}, a, b, c));
  EXPECT_TRUE(point_in_triangle({0, 0}, a, b, c));     // corner
  EXPECT_TRUE(point_in_triangle({5, 0}, a, b, c));     // edge
  EXPECT_FALSE(point_in_triangle({6, 6}, a, b, c));
  EXPECT_FALSE(point_in_triangle_strict({5, 0}, a, b, c));
  EXPECT_TRUE(point_in_triangle_strict({1, 1}, a, b, c));
  // Clockwise triangle works too.
  EXPECT_TRUE(point_in_triangle({1, 1}, a, c, b));
}

TEST(Predicates, SegmentsProperlyCross) {
  EXPECT_TRUE(segments_properly_cross({0, 0}, {10, 10}, {0, 10}, {10, 0}));
  EXPECT_FALSE(segments_properly_cross({0, 0}, {10, 0}, {5, 0}, {15, 0}));
  EXPECT_FALSE(segments_properly_cross({0, 0}, {10, 0}, {5, 0}, {5, 5}));
  EXPECT_FALSE(segments_properly_cross({0, 0}, {1, 1}, {5, 0}, {5, 5}));
}

TEST(Predicates, TrianglesOverlap) {
  const std::array<Point2, 3> t1{{{0, 0}, {10, 0}, {0, 10}}};
  // Identical.
  EXPECT_TRUE(triangles_overlap(t1, t1));
  // Proper overlap.
  EXPECT_TRUE(triangles_overlap(t1, {{{1, 1}, {11, 1}, {1, 11}}}));
  // Contained.
  EXPECT_TRUE(triangles_overlap(t1, {{{1, 1}, {3, 1}, {1, 3}}}));
  // Sharing an edge only (adjacent in a triangulation).
  EXPECT_FALSE(triangles_overlap(t1, {{{10, 0}, {10, 10}, {0, 10}}}));
  // Sharing one vertex only.
  EXPECT_FALSE(triangles_overlap(t1, {{{10, 0}, {20, 0}, {10, 10}}}));
  // Disjoint.
  EXPECT_FALSE(triangles_overlap(t1, {{{100, 100}, {110, 100}, {100, 110}}}));
  // Clockwise inputs are normalized.
  EXPECT_TRUE(triangles_overlap({{{0, 0}, {0, 10}, {10, 0}}},
                                {{{1, 1}, {1, 3}, {3, 1}}}));
}

// ---------------------------------------------------------------------------
// 2-d hull
// ---------------------------------------------------------------------------

TEST(Hull2d, Square) {
  const auto hull = convex_hull({{0, 0}, {10, 0}, {10, 10}, {0, 10}, {5, 5},
                                 {5, 0}});
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_TRUE(is_strictly_convex_ccw(hull));
}

TEST(Hull2d, CollinearAndDuplicates) {
  const auto hull =
      convex_hull({{0, 0}, {5, 0}, {10, 0}, {10, 10}, {0, 0}, {10, 0}});
  EXPECT_EQ(hull.size(), 3u);
}

TEST(Hull2d, RandomPointsAllInsideHull) {
  util::Rng rng(1);
  const auto pts = random_points_in_disk(500, 1000, rng);
  const auto hull = convex_hull(pts);
  ASSERT_GE(hull.size(), 3u);
  EXPECT_TRUE(is_strictly_convex_ccw(hull));
  for (const auto& p : pts)
    for (std::size_t i = 0; i < hull.size(); ++i)
      EXPECT_GE(orient2d(hull[i], hull[(i + 1) % hull.size()], p), 0);
}

TEST(Hull2d, RandomConvexPolygonIsConvex) {
  util::Rng rng(2);
  for (const std::size_t target : {8u, 64u, 256u}) {
    const auto poly = random_convex_polygon(target, 100000, rng);
    EXPECT_TRUE(is_strictly_convex_ccw(poly));
    EXPECT_GE(poly.size(), 3u);
  }
}

// ---------------------------------------------------------------------------
// triangulation
// ---------------------------------------------------------------------------

TEST(Triangulation, SinglePoint) {
  Triangulation t({{3, 4}}, 100);
  EXPECT_EQ(t.alive_ids().size(), 3u);
  const auto id = t.locate({3, 4});
  const auto c = t.corners(id);
  EXPECT_TRUE(point_in_triangle({3, 4}, c[0], c[1], c[2]));
}

TEST(Triangulation, AliveTrianglesCoverAndCount) {
  util::Rng rng(3);
  const auto pts = random_points_in_disk(200, 500, rng);
  // Deduplicate (the builder requires distinct points).
  auto dedup = pts;
  std::sort(dedup.begin(), dedup.end(), [](const Point2& a, const Point2& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
  Triangulation t(dedup, 512);
  const auto alive = t.alive_ids();
  // Euler: a triangulation of k interior points in a triangle has 2k+1
  // triangles, plus extra splits for on-edge insertions.
  EXPECT_GE(alive.size(), 2 * dedup.size() + 1);
  // Every input point is covered by the triangle locate() returns.
  for (const auto& p : dedup) {
    const auto c = t.corners(t.locate(p));
    EXPECT_TRUE(point_in_triangle(p, c[0], c[1], c[2]));
  }
  // All alive triangles are ccw and non-degenerate.
  for (const auto id : alive) {
    const auto c = t.corners(id);
    EXPECT_GT(orient2d(c[0], c[1], c[2]), 0);
  }
}

TEST(Triangulation, LocateRandomProbes) {
  util::Rng rng(4);
  const auto pts = random_points_in_disk(100, 300, rng);
  auto dedup = pts;
  std::sort(dedup.begin(), dedup.end(), [](const Point2& a, const Point2& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
  Triangulation t(dedup, 400);
  // Probes stay inside the bounding triangle of radius 400.
  for (int i = 0; i < 500; ++i) {
    const Point2 p{rng.uniform_range(-350, 350),
                   rng.uniform_range(-350, 350)};
    const auto c = t.corners(t.locate(p));
    EXPECT_TRUE(point_in_triangle(p, c[0], c[1], c[2]));
  }
}

TEST(Triangulation, OnEdgeInsertion) {
  // Second point exactly on an edge created by the first insertion.
  Triangulation t({{0, 0}, {50, 50}}, 200);
  const auto alive = t.alive_ids();
  for (const auto id : alive) {
    const auto c = t.corners(id);
    EXPECT_GT(orient2d(c[0], c[1], c[2]), 0);
  }
  const auto c = t.corners(t.locate({50, 50}));
  EXPECT_TRUE(point_in_triangle({50, 50}, c[0], c[1], c[2]));
}

// ---------------------------------------------------------------------------
// 3-d hull
// ---------------------------------------------------------------------------

TEST(Hull3d, Tetrahedron) {
  util::Rng rng(5);
  const std::vector<Point3> pts{{0, 0, 0}, {10, 0, 0}, {0, 10, 0}, {0, 0, 10}};
  const auto hull = convex_hull3(pts, rng);
  EXPECT_EQ(hull.faces.size(), 4u);
  EXPECT_EQ(hull.vertices.size(), 4u);
}

TEST(Hull3d, InteriorPointExcluded) {
  util::Rng rng(6);
  const std::vector<Point3> pts{{0, 0, 0},   {100, 0, 0}, {0, 100, 0},
                                {0, 0, 100}, {10, 10, 10}};
  const auto hull = convex_hull3(pts, rng);
  EXPECT_EQ(hull.vertices.size(), 4u);
  EXPECT_TRUE(std::find(hull.vertices.begin(), hull.vertices.end(), 4) ==
              hull.vertices.end());
}

TEST(Hull3d, AllPointsInsideAllFaces) {
  util::Rng rng(7);
  const auto pts = random_points_in_ball(400, 1000, rng);
  const auto hull = convex_hull3(pts, rng);
  for (const auto& f : hull.faces) {
    const auto &a = pts[static_cast<std::size_t>(f[0])],
               &b = pts[static_cast<std::size_t>(f[1])],
               &c = pts[static_cast<std::size_t>(f[2])];
    for (const auto& p : pts) EXPECT_LE(orient3d(a, b, c, p), 0);
  }
}

TEST(Hull3d, EulerFormula) {
  util::Rng rng(8);
  const auto pts = random_points_on_sphere(300, 10000, rng);
  const auto hull = convex_hull3(pts, rng);
  // Triangulated sphere: F = 2V - 4, E = 3F/2, V - E + F = 2.
  EXPECT_EQ(hull.faces.size(), 2 * hull.vertices.size() - 4);
}

TEST(Hull3d, ExtremeValuesMatchBruteForce) {
  util::Rng rng(9);
  const auto pts = random_points_on_sphere(200, 5000, rng);
  const auto hull = convex_hull3(pts, rng);
  // For random directions, max dot over hull vertices == max over all pts.
  for (int i = 0; i < 50; ++i) {
    const Point3 d{rng.uniform_range(-1000, 1000),
                   rng.uniform_range(-1000, 1000),
                   rng.uniform_range(-1000, 1000)};
    std::int64_t best_hull = std::numeric_limits<std::int64_t>::min();
    for (const auto v : hull.vertices)
      best_hull = std::max(best_hull, dot3(d, pts[static_cast<std::size_t>(v)]));
    const auto brute = dot3(d, pts[static_cast<std::size_t>(
                                   extreme_point_brute(pts, d))]);
    EXPECT_EQ(best_hull, brute);
  }
}

TEST(Hull3d, AdjacencySymmetricAndBounded) {
  util::Rng rng(10);
  const auto pts = random_points_on_sphere(150, 4000, rng);
  const auto hull = convex_hull3(pts, rng);
  const auto adj = hull_adjacency(hull, pts.size());
  std::size_t edges = 0;
  for (std::size_t v = 0; v < adj.size(); ++v) {
    edges += adj[v].size();
    for (const auto w : adj[v]) {
      const auto& back = adj[static_cast<std::size_t>(w)];
      EXPECT_TRUE(std::find(back.begin(), back.end(),
                            static_cast<std::int32_t>(v)) != back.end());
    }
  }
  // Sum of degrees = 2E = 6V - 12 for a triangulated sphere.
  EXPECT_EQ(edges, 6 * hull.vertices.size() - 12);
}

TEST(Hull3d, RejectsDegenerateInput) {
  util::Rng rng(11);
  const std::vector<Point3> coplanar{{0, 0, 0}, {10, 0, 0}, {0, 10, 0},
                                     {10, 10, 0}, {5, 5, 0}};
  EXPECT_THROW(convex_hull3(coplanar, rng), std::logic_error);
  const std::vector<Point3> collinear{{0, 0, 0}, {1, 1, 1}, {2, 2, 2},
                                      {3, 3, 3}};
  EXPECT_THROW(convex_hull3(collinear, rng), std::logic_error);
}

}  // namespace
