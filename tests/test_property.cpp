// Seed-parameterized property suite: for many random instances, all
// execution engines must produce identical outcomes, and structural
// invariants must hold. These sweeps are the repository's fuzzing layer —
// every seed builds a different structure and workload.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <span>

#include "datastruct/interval_tree.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/segment_tree.hpp"
#include "datastruct/twothree_tree.hpp"
#include "datastruct/workloads.hpp"
#include "geometry/dk_polygon.hpp"
#include "geometry/hull2d.hpp"
#include "mesh/curve.hpp"
#include "mesh/cycle_ops.hpp"
#include "mesh/grid.hpp"
#include "mesh/ops.hpp"
#include "util/error.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/partitioned.hpp"
#include "multisearch/query.hpp"
#include "multisearch/sequential.hpp"
#include "multisearch/synchronous.hpp"

namespace {

using namespace meshsearch;
using namespace meshsearch::msearch;

class SeedTest : public ::testing::TestWithParam<std::uint64_t> {};

// All four execution strategies agree on a random k-ary tree workload of a
// random size, fan-out and key skew.
TEST_P(SeedTest, AllEnginesAgreeOnKaryRank) {
  util::Rng rng(GetParam() * 7919 + 1);
  const std::size_t nkeys = 2 + rng.uniform(3000);
  const unsigned k = 2 + static_cast<unsigned>(rng.uniform(5));
  ds::KaryTree tree(ds::iota_keys(nkeys), k, ds::TreeMode::kDirected);
  auto qs = rng.bernoulli(0.5)
                ? ds::uniform_key_queries(nkeys, nkeys + 10, rng)
                : ds::zipf_key_queries(nkeys, nkeys, 1.0, rng);
  auto q_seq = qs;
  sequential_multisearch(tree.graph(), tree.rank_count(), q_seq);
  const mesh::CostModel m;
  const auto shape = tree.graph().shape_for(qs.size());
  auto q_sync = qs;
  reset_queries(q_sync);
  synchronous_multisearch(tree.graph(), tree.rank_count(), q_sync, m, shape);
  auto q_on = qs;
  multisearch_alpha(tree.graph(), tree.alpha_splitting(), tree.rank_count(),
                    q_on, m, shape, true);
  auto q_off = qs;
  multisearch_alpha(tree.graph(), tree.alpha_splitting(), tree.rank_count(),
                    q_off, m, shape, false);
  EXPECT_EQ(diff_outcomes(outcomes(q_seq), outcomes(q_sync)), "");
  EXPECT_EQ(diff_outcomes(outcomes(q_seq), outcomes(q_on)), "");
  EXPECT_EQ(diff_outcomes(outcomes(q_seq), outcomes(q_off)), "");
}

// Interval tree (Alg 3) and segment tree (Alg 2) agree with the oracle on
// random interval sets of random density.
TEST_P(SeedTest, StabbingStructuresAgree) {
  util::Rng rng(GetParam() * 104729 + 2);
  const std::size_t n = 1 + rng.uniform(600);
  const std::int64_t span = 1 + static_cast<std::int64_t>(rng.uniform(2000));
  const std::int64_t maxlen = static_cast<std::int64_t>(rng.uniform(400));
  std::vector<ds::Interval> ivs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t lo = rng.uniform_range(-span, span);
    ivs[i] = ds::Interval{lo, lo + rng.uniform_range(0, maxlen),
                          static_cast<std::int32_t>(i)};
  }
  ds::IntervalTree it(ivs);
  ds::SegmentTree st(ivs);
  auto qs = make_queries(200);
  for (auto& q : qs) q.key[0] = rng.uniform_range(-span - 50, span + 450);
  auto q_it = qs, q_st = qs;
  sequential_multisearch(it.graph(), it.stabbing_program(), q_it);
  sequential_multisearch(st.graph(), st.stab_count(), q_st);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto [cnt, sum] = ds::IntervalTree::stab_oracle(ivs, qs[i].key[0]);
    EXPECT_EQ(q_it[i].acc0, cnt);
    EXPECT_EQ(q_it[i].acc1, sum);
    EXPECT_EQ(q_st[i].acc0, cnt);
  }
}

// 2-3 tree and k-ary (k=2..3 equivalent class) agree on membership.
TEST_P(SeedTest, TwoThreeLookupMatchesOracle) {
  util::Rng rng(GetParam() * 1299709 + 3);
  const std::size_t n = 1 + rng.uniform(2000);
  std::vector<std::int64_t> keys;
  std::int64_t cur = rng.uniform_range(-100, 0);
  for (std::size_t i = 0; i < n; ++i) {
    cur += 1 + static_cast<std::int64_t>(rng.uniform(4));
    keys.push_back(cur);
  }
  ds::TwoThreeTree t(keys);
  auto qs = make_queries(300);
  for (auto& q : qs) q.key[0] = rng.uniform_range(-120, cur + 20);
  // Through Algorithm 2, not just sequentially.
  const mesh::CostModel m;
  const auto shape = t.graph().shape_for(qs.size());
  multisearch_alpha(t.graph(), t.alpha_splitting(), t.lookup(), qs, m, shape);
  for (const auto& q : qs) {
    const bool member = std::binary_search(keys.begin(), keys.end(), q.key[0]);
    EXPECT_EQ(q.acc0, member ? 1 : 0);
  }
}

// Random hierarchical DAGs: both plan kinds equal the oracle; cost positive.
TEST_P(SeedTest, HierarchicalPlansAgree) {
  util::Rng rng(GetParam() * 15485863 + 4);
  const double mu = 1.5 + rng.uniform_real() * 2.5;
  const std::size_t n = 64 + rng.uniform(40000);
  const auto g = ds::build_hierarchical_dag(n, mu, 2 + rng.uniform(3), rng);
  const HierarchicalDag dag(g, mu);
  auto qs = make_queries(std::min<std::size_t>(g.vertex_count(), 4000));
  for (auto& q : qs) q.key[0] = static_cast<std::int64_t>(rng.uniform(1u << 31));
  auto q_seq = qs;
  const ds::HashWalk prog{0};
  sequential_multisearch(g, prog, q_seq);
  const mesh::CostModel m;
  const auto shape = g.shape_for(g.vertex_count());
  auto q_p = qs;
  const auto rp = hierarchical_multisearch(dag, prog, q_p, m, shape,
                                           PlanKind::kPaper);
  auto q_g = qs;
  const auto rg = hierarchical_multisearch(dag, prog, q_g, m, shape,
                                           PlanKind::kGeometric);
  EXPECT_EQ(diff_outcomes(outcomes(q_seq), outcomes(q_p)), "");
  EXPECT_EQ(diff_outcomes(outcomes(q_seq), outcomes(q_g)), "");
  EXPECT_GT(rp.cost.steps, 0.0);
  EXPECT_GT(rg.cost.steps, 0.0);
}

// DK polygon hierarchy: extreme values equal brute force for random convex
// polygons and directions.
TEST_P(SeedTest, PolygonExtremesMatchBrute) {
  util::Rng rng(GetParam() * 32452843 + 5);
  const auto poly =
      geom::random_convex_polygon(3 + rng.uniform(400), 50000, rng);
  geom::DKPolygon dk(poly);
  auto qs = make_queries(100);
  for (auto& q : qs) {
    do {
      q.key[0] = rng.uniform_range(-500, 500);
      q.key[1] = rng.uniform_range(-500, 500);
    } while (q.key[0] == 0 && q.key[1] == 0);
  }
  sequential_multisearch(dk.extreme_dag().dag, dk.extreme_program(), qs);
  for (const auto& q : qs)
    EXPECT_EQ(q.acc0,
              dk.extreme_dot_brute(geom::Point2{q.key[0], q.key[1]}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Randomized primitive-sequence fuzzing: cycle engine vs counting engine
// ---------------------------------------------------------------------------

class PrimitiveFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// Random sequences of sort/scan/broadcast/RAR/RAW over random data,
// generalizing the fixed V1 cases of test_cycle_ops.cpp: after every
// operation the cycle engine's data must equal the counting engine's, and
// the measured step count must stay within the charged shearsort-model
// envelope (the same 3x constant the V1 cases use — shearsort/scan/RAR all
// measure below 2x their physical_sort charge; 3x leaves the constant
// headroom the charged model is allowed).
TEST_P(PrimitiveFuzz, EnginesAgreeOnRandomPrimitiveSequences) {
  util::Rng rng(GetParam() * 0x9e3779b97f4a7c15ull + 0xda3e39cb94b95bdbull);
  const mesh::MeshShape shape(1u << (1 + rng.uniform(4)));  // side 2..16
  const std::size_t n = shape.size();
  const double p = static_cast<double>(n);
  mesh::CostModel phys;
  phys.physical_sort = true;  // charge the shearsort bound the grid runs

  std::vector<std::int64_t> data(n);
  for (auto& v : data) v = rng.uniform_range(-1'000'000, 1'000'000);
  // Prefix sums of prefix sums overflow; rebound values before additive ops.
  const auto clamp = [&] {
    for (auto& v : data) v %= 1'000'000;
  };
  const auto random_addrs = [&] {
    std::vector<std::int64_t> addr(n, mesh::kNoAddr);
    for (auto& a : addr)
      if (!rng.bernoulli(0.25))
        a = static_cast<std::int64_t>(rng.uniform(n));
    return addr;
  };

  double measured_total = 0.0, charged_total = 0.0;
  const std::size_t ops = 4 + rng.uniform(5);  // 4..8 ops per sequence
  for (std::size_t op = 0; op < ops; ++op) {
    double measured = 0.0, charged = 0.0;
    switch (rng.uniform(5)) {
      case 0: {  // sort
        auto g = mesh::Grid<std::int64_t>::from_snake(shape, data);
        measured = static_cast<double>(g.shearsort());
        charged = phys.sort(p).steps;
        auto expect = data;
        mesh::ops::sort(expect, phys, p);
        EXPECT_EQ(g.to_snake(), expect);
        data = std::move(expect);
        break;
      }
      case 1: {  // prefix scan
        clamp();
        auto g = mesh::Grid<std::int64_t>::from_snake(shape, data);
        measured = static_cast<double>(g.snake_scan(
            [](std::int64_t a, std::int64_t b) { return a + b; }));
        charged = phys.scan(p).steps;
        auto expect = data;
        mesh::ops::scan_inclusive(expect, phys, p);
        EXPECT_EQ(g.to_snake(), expect);
        data = std::move(expect);
        break;
      }
      case 2: {  // broadcast from the snake origin
        auto g = mesh::Grid<std::int64_t>::from_snake(shape, data);
        measured = static_cast<double>(g.broadcast_from_origin());
        charged = phys.broadcast(p).steps;
        const std::vector<std::int64_t> expect(n, data[0]);
        mesh::ops::broadcast(phys, p);
        EXPECT_EQ(g.to_snake(), expect);
        data = expect;
        break;
      }
      case 3: {  // random access read (concurrent reads + idle processors)
        const auto addr = random_addrs();
        const auto res = mesh::cycle_random_access_read(shape, data, addr);
        measured = static_cast<double>(res.steps);
        charged = phys.rar(p).steps;
        std::vector<std::int64_t> expect;
        mesh::ops::random_access_read<std::int64_t>(data, addr, expect, phys,
                                                    p);
        EXPECT_EQ(res.out, expect);
        data = std::move(expect);
        break;
      }
      case 4: {  // random access write (sum combining)
        clamp();
        const auto addr = random_addrs();
        const auto values = data;
        const auto res =
            mesh::cycle_random_access_write(shape, data, addr, values);
        measured = static_cast<double>(res.steps);
        charged = phys.raw(p).steps;
        auto expect = data;
        mesh::ops::random_access_write<std::int64_t>(
            addr, values, expect, std::plus<std::int64_t>{}, phys, p);
        EXPECT_EQ(res.table, expect);
        data = std::move(expect);
        break;
      }
    }
    EXPECT_LE(measured, 3.0 * charged);
    measured_total += measured;
    charged_total += charged;
  }
  EXPECT_GT(charged_total, 0.0);
  EXPECT_LE(measured_total, 3.0 * charged_total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimitiveFuzz,
                         ::testing::Range<std::uint64_t>(0, 50));

// ---------------------------------------------------------------------------
// SoA kernel layer: radix sort vs stable_sort, arena, bounds promotion
// ---------------------------------------------------------------------------

class SoaKernels : public ::testing::TestWithParam<std::uint64_t> {};

// Adversarial key distributions, one per seed residue: the radix sort must
// equal std::stable_sort bit-for-bit on every one of them.
std::vector<std::int64_t> soa_test_keys(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed * 0x2545f4914f6cdd1dull + 11);
  std::vector<std::int64_t> keys(n);
  switch (seed % 6) {
    case 0:  // full signed 64-bit range (sign-bit flip must be correct)
      for (auto& k : keys)
        k = static_cast<std::int64_t>(rng.uniform(~0ull));
      break;
    case 1:  // all equal
      std::fill(keys.begin(), keys.end(),
                rng.uniform_range(-1000, 1000));
      break;
    case 2:  // pre-sorted ascending
      for (std::size_t i = 0; i < n; ++i)
        keys[i] = static_cast<std::int64_t>(i) - 50;
      break;
    case 3:  // reverse-sorted
      for (std::size_t i = 0; i < n; ++i)
        keys[i] = static_cast<std::int64_t>(n - i);
      break;
    case 4:  // 1-bit keys (maximal duplication; stability does the work)
      for (auto& k : keys) k = rng.bernoulli(0.5) ? 1 : 0;
      break;
    default:  // narrow range (most radix passes constant -> skipped)
      for (auto& k : keys) k = rng.uniform_range(-3, 3);
      break;
  }
  return keys;
}

TEST_P(SoaKernels, RadixSortValuesMatchesStableSort) {
  util::Rng rng(GetParam() * 0x9e3779b97f4a7c15ull + 3);
  const std::size_t n = rng.uniform(5000);
  auto keys = soa_test_keys(GetParam(), n);
  auto expect = keys;
  std::stable_sort(expect.begin(), expect.end());
  mesh::ops::soa::sort_values(keys);
  EXPECT_EQ(keys, expect);
}

TEST_P(SoaKernels, RadixSortIndexMatchesStableSortOrder) {
  util::Rng rng(GetParam() * 0xda3e39cb94b95bdbull + 7);
  const std::size_t n = rng.uniform(5000);
  const auto keys = soa_test_keys(GetParam() + 1, n);
  std::vector<std::uint32_t> expect(n);
  std::iota(expect.begin(), expect.end(), 0u);
  std::stable_sort(expect.begin(), expect.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return keys[a] < keys[b];
                   });
  const auto order = mesh::ops::soa::sort_index(
      std::span<const std::int64_t>(keys));
  // Equality with the stable order is exactly the stability property: equal
  // keys keep ascending index order.
  EXPECT_EQ(order, expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoaKernels,
                         ::testing::Range<std::uint64_t>(0, 24));

TEST(SoaKernelsEdge, TinyInputs) {
  std::vector<std::int64_t> empty;
  mesh::ops::soa::sort_values(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<std::int64_t> one{42};
  mesh::ops::soa::sort_values(one);
  EXPECT_EQ(one, (std::vector<std::int64_t>{42}));
  std::vector<std::int64_t> two{5, -5};
  mesh::ops::soa::sort_values(two);
  EXPECT_EQ(two, (std::vector<std::int64_t>{-5, 5}));
  EXPECT_TRUE(
      mesh::ops::soa::sort_index(std::span<const std::int64_t>{}).empty());
}

TEST(SoaKernelsEdge, ScratchArenaEpochsAndGrowth) {
  mesh::ops::soa::ScratchArena arena;
  arena.begin(4);
  EXPECT_TRUE(arena.mark(0));
  EXPECT_FALSE(arena.mark(0));  // duplicate within the epoch
  EXPECT_TRUE(arena.mark(3));
  arena.begin(4);               // new epoch: everything unmarked again
  EXPECT_TRUE(arena.mark(0));
  arena.begin(16);              // growth keeps old stamps stale
  for (std::size_t i = 0; i < 16; ++i) EXPECT_TRUE(arena.mark(i));
  for (std::size_t i = 0; i < 16; ++i) EXPECT_FALSE(arena.mark(i));
}

TEST(SoaKernelsEdge, HilbertCurveIsABijectionOfGridNeighbours) {
  for (const std::uint32_t side : {1u, 2u, 4u, 8u, 32u}) {
    const mesh::MeshShape shape(side);
    std::vector<std::uint8_t> hit(shape.size(), 0);
    mesh::Coord prev{};
    for (std::size_t d = 0; d < shape.size(); ++d) {
      const mesh::Coord c = mesh::hilbert_to_coord(side, d);
      ASSERT_LT(c.row, side);
      ASSERT_LT(c.col, side);
      EXPECT_EQ(mesh::coord_to_hilbert(side, c), d);  // inverse round-trip
      const std::size_t rm = static_cast<std::size_t>(c.row) * side + c.col;
      EXPECT_FALSE(hit[rm]);
      hit[rm] = 1;
      if (d > 0) {  // consecutive Hilbert indices are grid neighbours
        const std::size_t dist =
            (c.row > prev.row ? c.row - prev.row : prev.row - c.row) +
            (c.col > prev.col ? c.col - prev.col : prev.col - c.col);
        EXPECT_EQ(dist, 1u);
      }
      prev = c;
    }
    // hilbert_order is a permutation of the snake indices.
    const auto perm = mesh::hilbert_order(shape);
    std::vector<std::uint8_t> seen(shape.size(), 0);
    for (const auto s : perm) {
      ASSERT_LT(s, shape.size());
      EXPECT_FALSE(seen[s]);
      seen[s] = 1;
    }
  }
}

// Satellite: the random-access primitives reject out-of-range addresses in
// RELEASE builds too, with a typed IntegrityError naming the site.
TEST(SoaKernelsEdge, RandomAccessBoundsAreAlwaysOn) {
  const mesh::CostModel m;
  const std::vector<std::int64_t> table(8, 0);
  const auto expect_violation = [](auto&& fn, const char* phase) {
    try {
      fn();
      FAIL() << phase << " accepted an out-of-range address";
    } catch (const IntegrityError& e) {
      EXPECT_EQ(e.context().engine, "counting");
      EXPECT_EQ(e.context().phase, phase);
      EXPECT_NE(e.message().find("out of range"), std::string::npos);
    }
  };
  std::vector<mesh::ops::Addr> addr(3, mesh::ops::kNone);
  addr[1] = 8;  // == table size: one past the end
  expect_violation(
      [&] {
        std::vector<std::int64_t> out;
        mesh::ops::random_access_read<std::int64_t>(table, addr, out, m, 8.0);
      },
      "random_access_read");
  addr[1] = -2;  // negative but not the kNone sentinel
  expect_violation(
      [&] {
        std::vector<std::int64_t> t(8, 0);
        const std::vector<std::int64_t> vals(3, 1);
        mesh::ops::random_access_write<std::int64_t>(
            addr, vals, t, std::plus<std::int64_t>{}, m, 8.0);
      },
      "random_access_write");
  addr[1] = 1000;
  expect_violation(
      [&] {
        std::vector<std::uint32_t> counts;
        mesh::ops::random_access_count(addr, counts, 8, m, 8.0);
      },
      "random_access_count");
}

}  // namespace
