// Seed-parameterized property suite: for many random instances, all
// execution engines must produce identical outcomes, and structural
// invariants must hold. These sweeps are the repository's fuzzing layer —
// every seed builds a different structure and workload.
#include <gtest/gtest.h>

#include <cmath>

#include "datastruct/interval_tree.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/segment_tree.hpp"
#include "datastruct/twothree_tree.hpp"
#include "datastruct/workloads.hpp"
#include "geometry/dk_polygon.hpp"
#include "geometry/hull2d.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/partitioned.hpp"
#include "multisearch/query.hpp"
#include "multisearch/sequential.hpp"
#include "multisearch/synchronous.hpp"

namespace {

using namespace meshsearch;
using namespace meshsearch::msearch;

class SeedTest : public ::testing::TestWithParam<std::uint64_t> {};

// All four execution strategies agree on a random k-ary tree workload of a
// random size, fan-out and key skew.
TEST_P(SeedTest, AllEnginesAgreeOnKaryRank) {
  util::Rng rng(GetParam() * 7919 + 1);
  const std::size_t nkeys = 2 + rng.uniform(3000);
  const unsigned k = 2 + static_cast<unsigned>(rng.uniform(5));
  ds::KaryTree tree(ds::iota_keys(nkeys), k, ds::TreeMode::kDirected);
  auto qs = rng.bernoulli(0.5)
                ? ds::uniform_key_queries(nkeys, nkeys + 10, rng)
                : ds::zipf_key_queries(nkeys, nkeys, 1.0, rng);
  auto q_seq = qs;
  sequential_multisearch(tree.graph(), tree.rank_count(), q_seq);
  const mesh::CostModel m;
  const auto shape = tree.graph().shape_for(qs.size());
  auto q_sync = qs;
  reset_queries(q_sync);
  synchronous_multisearch(tree.graph(), tree.rank_count(), q_sync, m, shape);
  auto q_on = qs;
  multisearch_alpha(tree.graph(), tree.alpha_splitting(), tree.rank_count(),
                    q_on, m, shape, true);
  auto q_off = qs;
  multisearch_alpha(tree.graph(), tree.alpha_splitting(), tree.rank_count(),
                    q_off, m, shape, false);
  EXPECT_EQ(diff_outcomes(outcomes(q_seq), outcomes(q_sync)), "");
  EXPECT_EQ(diff_outcomes(outcomes(q_seq), outcomes(q_on)), "");
  EXPECT_EQ(diff_outcomes(outcomes(q_seq), outcomes(q_off)), "");
}

// Interval tree (Alg 3) and segment tree (Alg 2) agree with the oracle on
// random interval sets of random density.
TEST_P(SeedTest, StabbingStructuresAgree) {
  util::Rng rng(GetParam() * 104729 + 2);
  const std::size_t n = 1 + rng.uniform(600);
  const std::int64_t span = 1 + static_cast<std::int64_t>(rng.uniform(2000));
  const std::int64_t maxlen = static_cast<std::int64_t>(rng.uniform(400));
  std::vector<ds::Interval> ivs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t lo = rng.uniform_range(-span, span);
    ivs[i] = ds::Interval{lo, lo + rng.uniform_range(0, maxlen),
                          static_cast<std::int32_t>(i)};
  }
  ds::IntervalTree it(ivs);
  ds::SegmentTree st(ivs);
  auto qs = make_queries(200);
  for (auto& q : qs) q.key[0] = rng.uniform_range(-span - 50, span + 450);
  auto q_it = qs, q_st = qs;
  sequential_multisearch(it.graph(), it.stabbing_program(), q_it);
  sequential_multisearch(st.graph(), st.stab_count(), q_st);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto [cnt, sum] = ds::IntervalTree::stab_oracle(ivs, qs[i].key[0]);
    EXPECT_EQ(q_it[i].acc0, cnt);
    EXPECT_EQ(q_it[i].acc1, sum);
    EXPECT_EQ(q_st[i].acc0, cnt);
  }
}

// 2-3 tree and k-ary (k=2..3 equivalent class) agree on membership.
TEST_P(SeedTest, TwoThreeLookupMatchesOracle) {
  util::Rng rng(GetParam() * 1299709 + 3);
  const std::size_t n = 1 + rng.uniform(2000);
  std::vector<std::int64_t> keys;
  std::int64_t cur = rng.uniform_range(-100, 0);
  for (std::size_t i = 0; i < n; ++i) {
    cur += 1 + static_cast<std::int64_t>(rng.uniform(4));
    keys.push_back(cur);
  }
  ds::TwoThreeTree t(keys);
  auto qs = make_queries(300);
  for (auto& q : qs) q.key[0] = rng.uniform_range(-120, cur + 20);
  // Through Algorithm 2, not just sequentially.
  const mesh::CostModel m;
  const auto shape = t.graph().shape_for(qs.size());
  multisearch_alpha(t.graph(), t.alpha_splitting(), t.lookup(), qs, m, shape);
  for (const auto& q : qs) {
    const bool member = std::binary_search(keys.begin(), keys.end(), q.key[0]);
    EXPECT_EQ(q.acc0, member ? 1 : 0);
  }
}

// Random hierarchical DAGs: both plan kinds equal the oracle; cost positive.
TEST_P(SeedTest, HierarchicalPlansAgree) {
  util::Rng rng(GetParam() * 15485863 + 4);
  const double mu = 1.5 + rng.uniform_real() * 2.5;
  const std::size_t n = 64 + rng.uniform(40000);
  const auto g = ds::build_hierarchical_dag(n, mu, 2 + rng.uniform(3), rng);
  const HierarchicalDag dag(g, mu);
  auto qs = make_queries(std::min<std::size_t>(g.vertex_count(), 4000));
  for (auto& q : qs) q.key[0] = static_cast<std::int64_t>(rng.uniform(1u << 31));
  auto q_seq = qs;
  const ds::HashWalk prog{0};
  sequential_multisearch(g, prog, q_seq);
  const mesh::CostModel m;
  const auto shape = g.shape_for(g.vertex_count());
  auto q_p = qs;
  const auto rp = hierarchical_multisearch(dag, prog, q_p, m, shape,
                                           PlanKind::kPaper);
  auto q_g = qs;
  const auto rg = hierarchical_multisearch(dag, prog, q_g, m, shape,
                                           PlanKind::kGeometric);
  EXPECT_EQ(diff_outcomes(outcomes(q_seq), outcomes(q_p)), "");
  EXPECT_EQ(diff_outcomes(outcomes(q_seq), outcomes(q_g)), "");
  EXPECT_GT(rp.cost.steps, 0.0);
  EXPECT_GT(rg.cost.steps, 0.0);
}

// DK polygon hierarchy: extreme values equal brute force for random convex
// polygons and directions.
TEST_P(SeedTest, PolygonExtremesMatchBrute) {
  util::Rng rng(GetParam() * 32452843 + 5);
  const auto poly =
      geom::random_convex_polygon(3 + rng.uniform(400), 50000, rng);
  geom::DKPolygon dk(poly);
  auto qs = make_queries(100);
  for (auto& q : qs) {
    do {
      q.key[0] = rng.uniform_range(-500, 500);
      q.key[1] = rng.uniform_range(-500, 500);
    } while (q.key[0] == 0 && q.key[1] == 0);
  }
  sequential_multisearch(dk.extreme_dag().dag, dk.extreme_program(), qs);
  for (const auto& q : qs)
    EXPECT_EQ(q.acc0,
              dk.extreme_dot_brute(geom::Point2{q.key[0], q.key[1]}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
