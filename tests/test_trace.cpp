// Unit tests for the observability layer (src/trace): recorder semantics,
// span nesting, attribution-sums-to-total over real algorithm runs, the
// cross-engine event-sequence guarantee, the exporters, and the bench
// harness file-name sanitizer.
#include <gtest/gtest.h>

#include <exception>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "bench/bench_common.hpp"
#include "datastruct/kary_tree.hpp"
#include "datastruct/workloads.hpp"
#include "mesh/cost.hpp"
#include "mesh/cycle_ops.hpp"
#include "mesh/grid.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/partitioned.hpp"
#include "multisearch/query.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace {

using namespace meshsearch;
using trace::Primitive;
using trace::TraceRecorder;

TEST(TraceRecorder, CountAggregatesByPrimitiveAndSubmeshSize) {
  TraceRecorder rec("counting");
  rec.count(Primitive::kSort, 64, 24.0);
  rec.count(Primitive::kSort, 64, 24.0);
  rec.count(Primitive::kSort, 16, 12.0);
  rec.count(Primitive::kScan, 64, 16.0, 4);
  EXPECT_DOUBLE_EQ(rec.total_steps(), 76.0);

  const auto c = rec.counters();
  ASSERT_EQ(c.size(), 3u);
  const auto s64 = c.at(trace::PrimitiveKey{Primitive::kSort, 64});
  EXPECT_EQ(s64.calls, 2u);
  EXPECT_DOUBLE_EQ(s64.steps, 48.0);
  EXPECT_EQ(c.at(trace::PrimitiveKey{Primitive::kScan, 64}).calls, 4u);
}

TEST(TraceRecorder, ZeroCallRecordsAreDropped) {
  TraceRecorder rec;
  rec.count(Primitive::kRoute, 16, 10.0, 0);
  EXPECT_EQ(rec.total_steps(), 0.0);
  EXPECT_TRUE(rec.counters().empty());
  EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorder, EventLogPreservesOrderAndSimTime) {
  TraceRecorder rec;
  rec.count(Primitive::kSort, 16, 12.0);
  rec.count(Primitive::kRar, 16, 50.0);
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].prim, Primitive::kSort);
  EXPECT_DOUBLE_EQ(evs[0].sim_begin, 0.0);
  EXPECT_EQ(evs[1].prim, Primitive::kRar);
  EXPECT_DOUBLE_EQ(evs[1].sim_begin, 12.0);
}

TEST(TraceRecorder, SpansNestAndMeasureSimTime) {
  TraceRecorder rec;
  {
    TRACE_SPAN(&rec, "outer");
    rec.count(Primitive::kSort, 16, 10.0);
    {
      trace::SpanScope inner(&rec, "inner");
      rec.count(Primitive::kScan, 16, 5.0);
      EXPECT_DOUBLE_EQ(inner.sim_elapsed(), 5.0);
    }
  }
  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_TRUE(spans[0].closed);
  EXPECT_DOUBLE_EQ(spans[0].sim_begin, 0.0);
  EXPECT_DOUBLE_EQ(spans[0].sim_end, 15.0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_DOUBLE_EQ(spans[1].sim_begin, 10.0);
  EXPECT_DOUBLE_EQ(spans[1].sim_end, 15.0);
  EXPECT_LE(spans[0].wall_begin_us, spans[1].wall_begin_us);
}

TEST(TraceRecorder, OpenSpansAreSnapshottedUnclosed) {
  TraceRecorder rec;
  rec.begin_span("still-open");
  rec.count(Primitive::kSort, 4, 6.0);
  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans[0].closed);
  EXPECT_DOUBLE_EQ(spans[0].sim_end, 6.0);
  rec.end_span();
  EXPECT_TRUE(rec.spans()[0].closed);
}

TEST(TraceRecorder, EndSpanWithoutBeginThrows) {
  TraceRecorder rec;
  EXPECT_THROW(rec.end_span(), std::logic_error);
}

TEST(TraceRecorder, SpansRejectForeignThreadsWhileOpen) {
  // Spans are single-thread-at-a-time: while a stack is open, begin/end
  // from any other thread must fail loudly (always-on check, not a debug
  // assert), because interleaved spans from workers would silently corrupt
  // the nesting structure.
  TraceRecorder rec;
  rec.begin_span("outer");
  std::exception_ptr begin_err, end_err;
  std::thread intruder([&] {
    try {
      rec.begin_span("foreign");
    } catch (...) {
      begin_err = std::current_exception();
    }
    try {
      rec.end_span();
    } catch (...) {
      end_err = std::current_exception();
    }
    // Counter-style attribution stays thread-safe regardless of open spans.
    rec.count(Primitive::kScan, 16, 4.0);
  });
  intruder.join();
  ASSERT_TRUE(begin_err != nullptr);
  ASSERT_TRUE(end_err != nullptr);
  EXPECT_THROW(std::rethrow_exception(begin_err), std::logic_error);
  EXPECT_THROW(std::rethrow_exception(end_err), std::logic_error);
  rec.end_span();  // the owning thread still closes its span normally
  EXPECT_DOUBLE_EQ(rec.total_steps(), 4.0);
}

TEST(TraceRecorder, SpanOwnershipResetsWhenStackEmpties) {
  // Once every span is closed, another thread may open the next one: the
  // owner is whoever opens the outermost span, not whoever went first.
  TraceRecorder rec;
  rec.begin_span("first");
  rec.end_span();
  std::exception_ptr err;
  std::thread other([&] {
    try {
      rec.begin_span("second");
      rec.end_span();
    } catch (...) {
      err = std::current_exception();
    }
  });
  other.join();
  EXPECT_TRUE(err == nullptr);
  ASSERT_EQ(rec.spans().size(), 2u);
  EXPECT_TRUE(rec.spans()[1].closed);
}

TEST(TraceRecorder, NullSinkSpanScopeIsNoop) {
  trace::SpanScope s(nullptr, "nothing");
  EXPECT_DOUBLE_EQ(s.sim_elapsed(), 0.0);
}

// --- Attribution sums to the charged total on real algorithm runs. --------

TEST(TraceAttribution, HierarchicalMultisearchSumsToTotalCost) {
  util::Rng rng(7);
  // Large enough that the log*-recursion produces at least one band B_i
  // ahead of the B* suffix (tiny DAGs degenerate to B* only).
  const auto g = ds::build_hierarchical_dag(1 << 16, 2.0, 3, rng);
  const msearch::HierarchicalDag dag(g, 2.0);
  const auto shape = g.shape_for(g.vertex_count());
  auto qs = msearch::make_queries(g.vertex_count());
  util::Rng qrng(11);
  for (auto& q : qs)
    q.key[0] = static_cast<std::int64_t>(qrng.uniform(1ull << 40));

  TraceRecorder rec("counting");
  mesh::CostModel m;
  m.trace = &rec;
  const auto res =
      msearch::hierarchical_multisearch(dag, ds::HashWalk{0}, qs, m, shape);

  // Every charged step is attributed to exactly one primitive.
  double attributed = 0;
  for (const auto& [key, stat] : rec.counters()) attributed += stat.steps;
  EXPECT_DOUBLE_EQ(attributed, rec.total_steps());
  EXPECT_DOUBLE_EQ(rec.total_steps(), res.cost.steps);

  // The span tree covers Algorithm 1's step numbering.
  bool saw_alg1 = false, saw_band = false, saw_bstar = false;
  for (const auto& sp : rec.spans()) {
    saw_alg1 |= sp.name == "algorithm1";
    saw_band |= sp.name.rfind("band ", 0) == 0;
    saw_bstar |= sp.name.rfind("alg1.step4", 0) == 0;
    EXPECT_TRUE(sp.closed);
  }
  EXPECT_TRUE(saw_alg1);
  EXPECT_TRUE(saw_band);
  EXPECT_TRUE(saw_bstar);
}

TEST(TraceAttribution, AlphaPartitionedMultisearchSumsToTotalCost) {
  const std::size_t nkeys = 1 << 10;
  ds::KaryTree tree(ds::iota_keys(nkeys), 2, ds::TreeMode::kDirected);
  util::Rng rng(13);
  auto qs = ds::uniform_key_queries(nkeys, nkeys, rng);

  TraceRecorder rec("counting");
  mesh::CostModel m;
  m.trace = &rec;
  const auto shape = tree.graph().shape_for(qs.size());
  const auto res = msearch::multisearch_alpha(
      tree.graph(), tree.alpha_splitting(), tree.rank_count(), qs, m, shape);

  double attributed = 0;
  for (const auto& [key, stat] : rec.counters()) attributed += stat.steps;
  EXPECT_DOUBLE_EQ(attributed, rec.total_steps());
  EXPECT_DOUBLE_EQ(rec.total_steps(), res.cost.steps);

  bool saw_phase = false, saw_cm = false;
  for (const auto& sp : rec.spans()) {
    saw_phase |= sp.name.rfind("log-phase ", 0) == 0;
    saw_cm |= sp.name == "constrained-multisearch";
  }
  EXPECT_TRUE(saw_phase);
  EXPECT_TRUE(saw_cm);
}

// --- Cross-engine: same workload, same recorded operation sequence. -------

TEST(TraceCrossEngine, EnginesRecordSameOperationSequence) {
  const mesh::MeshShape shape(4);
  const double p = static_cast<double>(shape.size());
  util::Rng rng(17);
  std::vector<std::int64_t> vals(shape.size());
  for (auto& v : vals) v = rng.uniform_range(-1000, 1000);
  const auto perm = util::random_permutation(shape.size(), rng);
  const std::vector<std::uint32_t> dest(perm.begin(), perm.end());
  std::vector<std::int64_t> addr(shape.size());
  for (auto& a : addr)
    a = static_cast<std::int64_t>(rng.uniform(shape.size()));
  const std::vector<std::int64_t> ones(shape.size(), 1);

  // Cycle engine: run the workload for real, measured steps.
  TraceRecorder cyc("cycle");
  {
    auto g = mesh::Grid<std::int64_t>::from_snake(shape, vals);
    g.set_trace(&cyc);
    g.shearsort();
    g.snake_scan(std::plus<std::int64_t>{});
    g.broadcast_from_origin();
    g.route_permutation(dest);
    mesh::cycle_random_access_read(shape, vals, addr, 0, &cyc);
    mesh::cycle_random_access_write(shape, vals, addr, ones, &cyc);
  }

  // Counting engine: the same operation sequence, charged analytically.
  TraceRecorder cnt("counting");
  {
    mesh::CostModel m;
    m.trace = &cnt;
    m.sort(p);
    m.scan(p);
    m.broadcast(p);
    m.route(p);
    m.rar(p);
    m.raw(p);
  }

  const auto ce = cyc.events();
  const auto ke = cnt.events();
  ASSERT_EQ(ce.size(), ke.size());
  for (std::size_t i = 0; i < ce.size(); ++i) {
    EXPECT_EQ(ce[i].prim, ke[i].prim) << "event " << i;
    EXPECT_DOUBLE_EQ(ce[i].p, ke[i].p) << "event " << i;
    EXPECT_GT(ce[i].steps, 0.0);
  }
}

// --- Exporters. -----------------------------------------------------------

TEST(TraceExport, PerfettoJsonContainsSpansAndPrimitives) {
  TraceRecorder rec("counting");
  {
    TRACE_SPAN(&rec, "phase-one");
    rec.count(Primitive::kSort, 64, 24.0);
  }
  std::ostringstream os;
  trace::write_trace_json(rec, os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(j.find("phase-one"), std::string::npos);
  EXPECT_NE(j.find("sort p=64"), std::string::npos);
  EXPECT_NE(j.find("counting"), std::string::npos);
}

TEST(TraceExport, MetricsJsonAndTableListEveryPrimitive) {
  TraceRecorder rec("cycle");
  rec.count(Primitive::kScan, 16, 12.0, 2);
  rec.count(Primitive::kRoute, 16, 9.0);
  std::ostringstream os;
  trace::write_metrics_json(rec, os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"primitives\""), std::string::npos);
  EXPECT_NE(j.find("\"spans\""), std::string::npos);
  EXPECT_NE(j.find("\"total_steps\""), std::string::npos);
  EXPECT_NE(j.find("\"scan\""), std::string::npos);

  std::ostringstream ts;
  trace::metrics_table(rec).print(ts);
  EXPECT_NE(ts.str().find("scan"), std::string::npos);
  EXPECT_NE(ts.str().find("route"), std::string::npos);
}

TEST(TraceExport, FileWritersReportFailureInsteadOfThrowing) {
  TraceRecorder rec;
  rec.count(Primitive::kSort, 4, 6.0);
  EXPECT_FALSE(trace::write_trace_json_file(
      rec, "/nonexistent_dir_for_test/x.trace.json"));
  EXPECT_FALSE(trace::write_metrics_json_file(
      rec, "/nonexistent_dir_for_test/x.metrics.json"));
}

// --- Bench harness helpers. -----------------------------------------------

TEST(BenchCommon, SanitizeCsvName) {
  EXPECT_EQ(bench::sanitize_csv_name("e2_zipf(1.1)"), "e2_zipf_1.1");
  EXPECT_EQ(bench::sanitize_csv_name("plain-name_0.9"), "plain-name_0.9");
  EXPECT_EQ(bench::sanitize_csv_name("a b//c"), "a_b_c");
  EXPECT_EQ(bench::sanitize_csv_name("(((("), "unnamed");
  EXPECT_EQ(bench::sanitize_csv_name(""), "unnamed");
}

TEST(BenchCommon, CsvNameCollisionsGetNumericSuffix) {
  bench::CsvNameRegistry reg;
  // First claim wins the clean stem.
  EXPECT_EQ(bench::disambiguate_csv_name("e2_zipf(1.1)", "e2_zipf_1.1", reg),
            "e2_zipf_1.1");
  // The SAME raw name re-emits to the same file — a refresh, not a clash.
  EXPECT_EQ(bench::disambiguate_csv_name("e2_zipf(1.1)", "e2_zipf_1.1", reg),
            "e2_zipf_1.1");
  // Distinct raw names whose sanitized forms collide used to silently
  // overwrite each other; now they get numeric suffixes.
  EXPECT_EQ(bench::disambiguate_csv_name("e2_zipf 1.1", "e2_zipf_1.1", reg),
            "e2_zipf_1.1_2");
  EXPECT_EQ(bench::disambiguate_csv_name("e2_zipf/1.1", "e2_zipf_1.1", reg),
            "e2_zipf_1.1_3");
  // Suffixed stems are reserved too: a raw name sanitizing straight to one
  // cannot steal it.
  EXPECT_EQ(bench::disambiguate_csv_name("other", "e2_zipf_1.1_2", reg),
            "e2_zipf_1.1_2_2");
  // Disambiguated raw names stay stable on re-emit.
  EXPECT_EQ(bench::disambiguate_csv_name("e2_zipf 1.1", "e2_zipf_1.1", reg),
            "e2_zipf_1.1_2");
}

}  // namespace
