# Tier-1 bench gate, run by ctest as BenchBaselineGate (see root
# CMakeLists.txt). Runs the smoke benches into a scratch directory and
# compares their BENCH_*.json reports against the committed baselines with
# bench_check. Invoked as:
#
#   cmake -DBENCH_DIR=... -DCHECK_BIN=... -DBASELINE_DIR=... -DWORK_DIR=...
#         -P tools/run_bench_gate.cmake
#
# MESHSEARCH_SKIP_BENCH_GATE=1 skips everything (benches included);
# MESHSEARCH_BENCH_WALL_GATE=1 is read by bench_check itself.

if(DEFINED ENV{MESHSEARCH_SKIP_BENCH_GATE}
   AND NOT "$ENV{MESHSEARCH_SKIP_BENCH_GATE}" STREQUAL ""
   AND NOT "$ENV{MESHSEARCH_SKIP_BENCH_GATE}" STREQUAL "0")
  message(STATUS "bench gate: skipped (MESHSEARCH_SKIP_BENCH_GATE set)")
  return()
endif()

foreach(var BENCH_DIR CHECK_BIN BASELINE_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench gate: missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# The smoke set: every experiment with a committed baseline. Keep in sync
# with bench/baselines/ (bench_check fails if a baseline has no report).
# bench_v1_engines --smoke is the counting-kernel sweep: its charged table
# and data checksum pin the SoA kernels to the scalar reference, and its
# wall histograms feed the wall gate when MESHSEARCH_BENCH_WALL_GATE=1.
set(SMOKE_BENCHES bench_e1_hierarchical bench_e8_stream bench_e10_service bench_e11_dynamic bench_e12_overload bench_v1_engines)

foreach(b ${SMOKE_BENCHES})
  message(STATUS "bench gate: running ${b} --smoke")
  execute_process(
    COMMAND "${BENCH_DIR}/${b}" --smoke
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rv
    OUTPUT_FILE "${WORK_DIR}/${b}.stdout.txt")
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "bench gate: ${b} --smoke exited with ${rv}")
  endif()
endforeach()

execute_process(
  COMMAND "${CHECK_BIN}" --dir "${BASELINE_DIR}" "${WORK_DIR}/bench_out"
  RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR
          "bench gate: regression against bench/baselines/ (bench_check "
          "exited ${rv}); if the cost model changed intentionally, rerun "
          "the smoke benches and re-commit the baselines")
endif()
message(STATUS "bench gate: OK")
