// Per-engine circuit breaker for the multi-tenant service.
//
// A warm engine that keeps failing — every batch degrading or faulting —
// burns its tenants' retry budgets on work that is doomed: each attempt
// re-charges the phase, backs off, degrades capacity, and still reports the
// batch failed. The breaker is the standard fail-fast discipline on top of
// the PR 4/5 "recovered-or-reported" contract:
//
//   kClosed    — normal operation. Every degraded or faulted batch
//                increments a consecutive-failure streak; any successful
//                batch resets it. When the streak reaches the policy
//                threshold the breaker TRIPS open.
//   kOpen      — dispatch to this engine throws CircuitOpenError
//                immediately: no charge, no retry-budget burn. The
//                scheduler turns that into reported-failed tickets
//                (TenantReport::failed_fast) — fail fast is still
//                fail REPORTED, never fail silent.
//   kHalfOpen  — on the first dispatch of a LATER scheduling round than the
//                one that tripped it, the breaker lets exactly one probe
//                batch through. A successful probe closes the breaker
//                (recovery); a failed probe re-trips it, and the next round
//                probes again.
//
// Like everything else in the service layer, the breaker runs on the
// scheduler's virtual round counter and sees only deterministic events
// (batch outcomes), so its decisions — and therefore every fail-fast /
// probe / recovery — are bit-identical at any thread count. One breaker
// lives on each registered engine, i.e. per (dataset, EngineKind) key
// (EngineRegistry stamps the identity), shared by every tenant of that
// engine: the failure streak is an ENGINE health signal, not a tenant one.
// Default-constructed breakers are DISABLED (threshold 0) and change
// nothing.
#pragma once

#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace meshsearch::service {

/// Breaker configuration. threshold 0 disables the breaker entirely (the
/// default — existing service behavior is unchanged until a caller opts in).
struct BreakerPolicy {
  /// Consecutive degraded/faulted batches that trip the breaker open.
  std::uint32_t failure_threshold = 0;
};

enum class BreakerState : std::uint8_t {
  kClosed = 0,
  kOpen,
  kHalfOpen,  ///< probe batch in flight (transient within one dispatch)
};

const char* breaker_state_name(BreakerState s);

/// Deterministic counters, exported as service.breaker.<engine>.* by
/// ServiceScheduler::export_metrics and mirrored into the stats registry at
/// transition time.
struct BreakerCounters {
  std::uint64_t trips = 0;        ///< closed/half-open -> open transitions
  std::uint64_t probes = 0;       ///< half-open probe batches dispatched
  std::uint64_t recoveries = 0;   ///< half-open -> closed transitions
  std::uint64_t fail_fast_batches = 0;  ///< dispatches refused while open
  std::uint64_t fail_fast_queries = 0;  ///< queries in refused dispatches
};

class CircuitBreaker {
 public:
  /// (Re)arm with `policy`. Resets the state machine to kClosed but keeps
  /// the lifetime counters.
  void configure(BreakerPolicy policy);

  bool enabled() const { return policy_.failure_threshold > 0; }
  const BreakerPolicy& policy() const { return policy_; }
  BreakerState state() const { return state_; }
  std::uint32_t consecutive_failures() const { return consecutive_; }
  const BreakerCounters& counters() const { return counters_; }

  /// Dispatch gate, called with the scheduler's round number before any
  /// engine work. Disabled or closed: passes. Open: the first call of a
  /// round later than the trip round becomes the half-open probe (passes,
  /// counted); every other call throws CircuitOpenError — the fail-fast,
  /// zero-charge path. `dataset` and `engine_kind` only label the error.
  void admit(std::uint64_t round, const std::string& dataset,
             const std::string& engine_kind);

  /// A dispatched batch completed. Returns true when this was a successful
  /// half-open probe (the breaker just recovered to kClosed).
  bool record_success();

  /// A dispatched batch degraded or faulted. Returns true when this failure
  /// tripped the breaker open (threshold reached, or a failed probe).
  bool record_failure(std::uint64_t round);

  /// Bookkeeping for a refused dispatch (the scheduler resolves the
  /// queries as reported-failed without charging anything).
  void count_fail_fast(std::size_t queries);

 private:
  BreakerPolicy policy_;
  BreakerState state_ = BreakerState::kClosed;
  std::uint32_t consecutive_ = 0;
  std::uint64_t opened_round_ = 0;  ///< round of the most recent trip
  BreakerCounters counters_;
};

}  // namespace meshsearch::service
