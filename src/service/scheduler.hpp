// ServiceScheduler: deficit-round-robin fair batching between tenants.
//
// One mesh, many tenants, each with a queue of admitted queries. The
// scheduler's job is the inter-stream analogue of StreamScheduler's
// intra-stream loop: pick whose queries ride the next capacity-clamped
// batch. Two policies:
//
//   * kDeficitRoundRobin (default) — classic DRR with queries as the cost
//     unit. Each pump() round visits tenants in registration order; a
//     backlogged tenant earns quantum * weight credits (quantum defaults to
//     its engine's mesh capacity) and is served front-of-queue slices
//     (BatchSource::pop_upto) no larger than its remaining credit until the
//     credit or the queue runs out. Credits of an emptied queue are
//     forfeited (no banking while idle) — the property the fairness tests
//     pin: a light tenant's queue wait is bounded by one round of everyone
//     else's quanta, regardless of how deep a heavy tenant's backlog is.
//   * kExhaustive — serve each tenant to empty before moving on: the unfair
//     baseline the fairness suite compares against (first-registered tenant
//     starves the rest).
//
// Time is a VIRTUAL clock in simulated mesh steps: each successful batch
// advances it by the batch's charged inject + run steps, and the open-loop
// bench advances it across idle gaps with advance_clock_to(). Queue-wait and
// latency histograms read this clock, so they are deterministic functions of
// the submit/pump sequence — bit-identical at any thread count, safe to pin
// in bench baselines. (A failed attempt advances nothing: its charge was
// abandoned mid-phase. Its queries' eventual latency still includes the
// steps of every batch served between admission and completion.) The
// scheduler itself is single-threaded — "async" means submit now, answers
// later, in the event-loop sense; parallelism lives inside the engines,
// which is what keeps the repo's 1-vs-8-thread bit-identity contract intact
// here for free.
//
// Fault handling follows StreamScheduler's degradation contract per tenant:
// a batch that exhausts its retry budget shrinks ONLY that tenant's
// surviving capacity, its pieces are requeued at the FRONT of that tenant's
// queue (a tenant's earlier queries must not be overtaken by its later
// ones), and the tenant's turn ends so co-resident tenants are not taxed by
// its retries. After max_replans generations the piece is reported failed
// (kFailed tickets, TenantReport::failed_queries) — never silently wrong.
//
// Overload protection (DESIGN.md decision 17) composes four mechanisms, all
// decided on the SAME virtual clock / round counter so every shed, reject,
// fail-fast, and deprioritization is bit-identical at any thread count:
//
//   * deadline shedding — a tenant with SloPolicy::shed_mode = kDeadline has
//     its expired queries (virtual queue wait > deadline_steps) popped and
//     resolved kShed at dispatch time, BEFORE any engine work. The queue is
//     FIFO in admission order, so expired queries are always a front prefix
//     (BatchSource::pop_expired) and the check at pop time bounds every
//     DISPATCHED query's wait by the deadline — which is what makes an
//     admitted-latency p99 target satisfiable under any overload.
//   * backpressure — TenantSession::submit rejects past SloPolicy::max_queue
//     with a BackpressureError carrying retry_after_hint()'s DRR drain-rate
//     estimate (see that method).
//   * circuit breakers — serve_slice consults the engine's CircuitBreaker
//     (service/breaker.hpp) before dispatch and feeds it every outcome; an
//     open breaker turns the slice into reported-failed tickets
//     (failed_fast) with zero charge.
//   * brownout — when the aggregate pending backlog exceeds
//     BrownoutPolicy::watermark_queries, tenants whose OBSERVED latency p99
//     exceeds their own p99_target_steps lose DRR quantum (and optionally
//     slice capacity) for the round, shifting service toward tenants still
//     inside their targets. DRR-only: the exhaustive baseline stays unfair
//     on purpose.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/tenant.hpp"

namespace meshsearch::service {

enum class SchedulePolicy : std::uint8_t {
  kDeficitRoundRobin = 0,
  kExhaustive,  ///< drain each tenant in turn — the unfair baseline
};

const char* schedule_policy_name(SchedulePolicy p);

/// Service-wide brownout (graceful degradation) policy. Disabled by default
/// (watermark 0). Applies to kDeficitRoundRobin only.
struct BrownoutPolicy {
  /// Aggregate pending queries (all tenants) above which a pump() round
  /// runs in brownout. 0 = never.
  std::size_t watermark_queries = 0;
  /// Multiplier on an over-target tenant's DRR quantum during brownout
  /// (floored at 1 query so no tenant is fully starved).
  double quantum_scale = 0.25;
  /// Multiplier on an over-target tenant's slice capacity during brownout;
  /// 1.0 = no batch shrink (the default — smaller batches also lose batch
  /// efficiency, so this is opt-in).
  double capacity_scale = 1.0;
};

struct ServiceConfig {
  SchedulePolicy policy = SchedulePolicy::kDeficitRoundRobin;
  /// DRR credits (in queries) a weight-1 tenant earns per round; 0 = that
  /// tenant's engine capacity (one full mesh batch per round).
  std::size_t quantum = 0;
  BrownoutPolicy brownout;
};

class ServiceScheduler {
 public:
  explicit ServiceScheduler(ServiceConfig cfg = {},
                            trace::TraceRecorder* trace = nullptr);

  ServiceScheduler(const ServiceScheduler&) = delete;
  ServiceScheduler& operator=(const ServiceScheduler&) = delete;

  /// Register a tenant on a warm engine. Names must be unique (else
  /// InvalidInputError). The returned session is stable for the scheduler's
  /// lifetime. `slo` is the tenant's overload-protection policy; the default
  /// (all zeros) disables shedding, backpressure, and brownout targeting for
  /// this tenant. ShedMode::kDeadline requires deadline_steps > 0.
  TenantSession& add_tenant(std::string name, Engine& engine,
                            TenantQuota quota = {}, SloPolicy slo = {});

  TenantSession& tenant(const std::string& name);
  const TenantSession& tenant(const std::string& name) const;
  std::size_t tenant_count() const { return tenants_.size(); }

  /// No tenant has pending work (queries or unapplied updates).
  bool idle() const;

  /// One scheduling round over all tenants under the configured policy.
  /// A tenant's turn first applies its ready updates (mutate + engine
  /// refresh, see TenantSession::submit_update), then serves query slices.
  /// Returns queries resolved (answered or reported failed) this round.
  std::size_t pump();

  /// pump() until idle. Returns total queries resolved. Terminates even
  /// under armed faults: every attempt either resolves queries or advances
  /// the failed slice's re-plan generation, and generations are capped.
  std::size_t run_until_idle();

  /// The service's virtual clock: cumulative charged steps of every
  /// successful batch, plus explicit idle advances.
  double now_steps() const { return clock_; }

  /// Advance the clock across an idle gap (open-loop arrivals). `steps`
  /// must not move backwards.
  void advance_clock_to(double steps);

  /// Scheduling rounds pumped so far (the breaker's probe clock).
  std::uint64_t rounds() const { return round_; }
  /// Rounds that ran in brownout (aggregate backlog over the watermark).
  std::uint64_t brownout_rounds() const { return brownout_rounds_; }

  /// Deterministic retry-after estimate (virtual steps) for a tenant whose
  /// submit of `incoming` queries hit backpressure: rounds needed for DRR to
  /// drain the excess at the tenant's quantum, times the estimated cost of
  /// one full round (everyone's quanta at the service's observed
  /// steps-per-resolved-query; 1.0 before anything has resolved). An
  /// estimate, not a guarantee — but a deterministic one, so callers that
  /// back off by it keep replayable traces.
  double retry_after_hint(const TenantSession& t, std::size_t incoming) const;

  std::vector<TenantReport> reports() const;

  /// Record per-tenant metrics (tenant.<name>.* — deterministic counts and
  /// charges only) plus each armed fault plan's tenant.<name>.fault.*
  /// family and service-level totals into the scheduler's trace recorder.
  /// No-op without a recorder.
  void export_metrics() const;

 private:
  struct ServeOutcome {
    std::size_t taken = 0;     ///< queries popped for the attempt
    std::size_t resolved = 0;  ///< answered or reported failed
    bool faulted = false;      ///< attempt threw FaultExhaustedError
  };

  /// Pop one slice of at most `window` queries off `t`'s queue and run it,
  /// handling fault degradation per the tenant's plan.
  ServeOutcome serve_slice(TenantSession& t, std::size_t window);

  /// Apply every ready update of `t` (in submission order): run the
  /// mutation, refresh the engine under the tenant's sinks, advance the
  /// clock by the charged refresh steps. A refresh that exhausts its fault
  /// retry budget degrades the plan and re-runs fault-free — an update is
  /// applied-after-degradation, never wedged.
  void apply_ready_updates(TenantSession& t);

  /// Resolve one query: state, accounting, histograms, callback. Only
  /// DISPATCHED resolutions (a batch actually ran, successfully or not)
  /// feed the queue-wait/latency SLO histograms — shed and fail-fast
  /// queries were never served, and folding them in would let an overloaded
  /// tenant's shed tail pollute the admitted-latency percentiles the SLO
  /// gate reads.
  void resolve(TenantSession& t, std::uint32_t idx, QueryState state,
               double attempt_start, bool dispatched);

  /// Pop and resolve (kShed) every expired query of `t` under its deadline
  /// policy; returns how many were shed. No-op unless shed_mode=kDeadline.
  std::size_t shed_expired(TenantSession& t);

  /// Brownout target test: the tenant has a p99 target and its observed
  /// latency p99 is above it.
  bool over_target(const TenantSession& t) const;

  std::size_t quantum_for(const TenantSession& t) const;

  ServiceConfig cfg_;
  trace::TraceRecorder* trace_;
  std::vector<std::unique_ptr<TenantSession>> tenants_;
  std::vector<double> deficit_;  ///< parallel to tenants_
  double clock_ = 0;             ///< virtual time, simulated mesh steps
  std::size_t serial_ = 0;       ///< batch span numbering, attempt order
  std::uint64_t round_ = 0;      ///< pump() rounds; the breaker probe clock
  std::uint64_t brownout_rounds_ = 0;
};

}  // namespace meshsearch::service
