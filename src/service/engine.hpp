// Warm-engine registry for the multi-tenant query service.
//
// PreparedSearch<P> (multisearch/stream.hpp) is a template over the search
// program, so four different engine kinds are four unrelated C++ types. The
// service layer needs to hold them in one table and swap per-tenant
// observability sinks between batches, so this header type-erases a warm
// engine behind `Engine`:
//
//   * PreparedEngine<P> owns BOTH the PreparedSearch and the CostModel it
//     charges through. PreparedSearch keeps a pointer to the model, so the
//     wrapper can repoint model.trace / model.fault between run_batch calls
//     (bind_sinks) — that is how one warm engine serves many tenants, each
//     with its own fault plan, without re-charging setup per tenant.
//   * EngineRegistry maps (dataset, EngineKind) -> Engine. "dataset" is a
//     caller-chosen name for the structure the engine was prepared on; the
//     plan kind is folded into EngineKind (kAlg1Paper vs kAlg1Geometric),
//     so the key is exactly the paper-level identity of a warm structure.
//
// Construction charges the one-time setup through the model it is given
// (landing in whatever trace the caller bound at prepare time); after that
// the registry hands out warm engines and nothing re-charges setup — the
// amortization the service exists to exploit.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "multisearch/stream.hpp"
#include "service/breaker.hpp"

namespace meshsearch::service {

/// Type-erased warm engine: one prepared search structure, ready to serve
/// capacity-clamped batches. Implementations own their CostModel so sinks
/// can be swapped per tenant (bind_sinks) between batches.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual msearch::EngineKind kind() const = 0;
  /// Largest batch the initial configuration admits (one query/processor).
  virtual std::size_t capacity() const = 0;
  /// The one-time setup charged when the engine was prepared.
  virtual mesh::Cost setup_cost() const = 0;
  virtual std::size_t batches_served() const = 0;

  /// Dataset name carried into StaleEngineError messages. EngineRegistry
  /// stamps this from the key at add() time.
  virtual const std::string& dataset() const = 0;
  virtual void set_dataset(std::string name) = 0;

  /// Generation of the underlying structure's graph right now.
  virtual std::uint64_t structure_generation() const = 0;
  /// Generation the engine's distribution was prepared against.
  virtual std::uint64_t prepared_generation() const = 0;
  /// True when the structure mutated after this engine was prepared;
  /// run_batch then throws StaleEngineError until refresh() is called.
  virtual bool stale() const = 0;
  virtual std::size_t refreshes() const = 0;

  /// Re-synchronize with the mutated structure: incremental dirty-band
  /// re-distribution when the delta allows, full re-setup otherwise (see
  /// PreparedSearch::refresh).
  virtual msearch::RefreshReport refresh(const msearch::RefreshRequest& req) = 0;

  /// Point subsequent charges at a tenant's sinks. Either may be null
  /// (null trace = unattributed, null fault = fault-free). Affects only
  /// observability and fault injection — never outcomes of a fault-free run.
  virtual void bind_sinks(trace::TraceRecorder* trace,
                          mesh::FaultPlan* fault) = 0;

  /// Run one warm batch (inject + multisearch, no setup). Queries are
  /// advanced in place. batch.size() must be at most capacity().
  virtual msearch::BatchReport run_batch(std::vector<msearch::Query>& batch) = 0;

  /// This engine's circuit breaker (service/breaker.hpp) — per registered
  /// engine, i.e. per (dataset, EngineKind) key, shared by every tenant the
  /// engine serves. Disabled by default; EngineRegistry::set_breaker_policy
  /// (or breaker().configure) arms it. The ServiceScheduler consults it
  /// before every dispatch and feeds it every batch outcome.
  CircuitBreaker& breaker() { return breaker_; }
  const CircuitBreaker& breaker() const { return breaker_; }

 private:
  CircuitBreaker breaker_;
};

/// The concrete wrapper: PreparedSearch<P> plus the CostModel it charges
/// through. Member order matters — model_ must outlive prepared_, which
/// captures `&model_` at construction.
template <msearch::SearchProgram P>
class PreparedEngine final : public Engine {
 public:
  /// Warm Algorithm-1 engine (either plan). `model` is copied; its sinks
  /// (if any) receive the setup charges.
  PreparedEngine(const msearch::HierarchicalDag& dag,
                 msearch::PlanKind plan_kind, P prog,
                 const mesh::CostModel& model, mesh::MeshShape shape)
      : model_(model),
        prepared_(dag, plan_kind, std::move(prog), model_, shape) {}

  /// Warm Algorithm-2/3 engine.
  PreparedEngine(msearch::EngineKind kind, const msearch::DistributedGraph& g,
                 msearch::Splitting psi_a, msearch::Splitting psi_b, P prog,
                 const mesh::CostModel& model, mesh::MeshShape shape,
                 bool duplicate_copies = true)
      : model_(model),
        prepared_(kind, g, std::move(psi_a), std::move(psi_b),
                  std::move(prog), model_, shape, duplicate_copies) {}

  msearch::EngineKind kind() const override { return prepared_.kind(); }
  std::size_t capacity() const override { return prepared_.capacity(); }
  mesh::Cost setup_cost() const override { return prepared_.setup_cost(); }
  std::size_t batches_served() const override {
    return prepared_.batches_served();
  }

  const std::string& dataset() const override { return prepared_.dataset(); }
  void set_dataset(std::string name) override {
    prepared_.set_dataset(std::move(name));
  }
  std::uint64_t structure_generation() const override {
    return prepared_.structure_generation();
  }
  std::uint64_t prepared_generation() const override {
    return prepared_.prepared_generation();
  }
  bool stale() const override { return prepared_.stale(); }
  std::size_t refreshes() const override { return prepared_.refreshes(); }

  msearch::RefreshReport refresh(const msearch::RefreshRequest& req) override {
    return prepared_.refresh(req);
  }

  void bind_sinks(trace::TraceRecorder* trace,
                  mesh::FaultPlan* fault) override {
    model_.trace = trace;
    model_.fault = fault;
  }

  msearch::BatchReport run_batch(
      std::vector<msearch::Query>& batch) override {
    return prepared_.run_batch(batch);
  }

 private:
  mesh::CostModel model_;              ///< owned; prepared_ charges through it
  msearch::PreparedSearch<P> prepared_;
};

/// Convenience factories mirroring the two PreparedSearch constructors.
template <msearch::SearchProgram P>
std::unique_ptr<Engine> make_hierarchical_engine(
    const msearch::HierarchicalDag& dag, msearch::PlanKind plan_kind, P prog,
    const mesh::CostModel& model, mesh::MeshShape shape) {
  return std::make_unique<PreparedEngine<P>>(dag, plan_kind, std::move(prog),
                                             model, shape);
}

template <msearch::SearchProgram P>
std::unique_ptr<Engine> make_partitioned_engine(
    msearch::EngineKind kind, const msearch::DistributedGraph& g,
    msearch::Splitting psi_a, msearch::Splitting psi_b, P prog,
    const mesh::CostModel& model, mesh::MeshShape shape,
    bool duplicate_copies = true) {
  return std::make_unique<PreparedEngine<P>>(
      kind, g, std::move(psi_a), std::move(psi_b), std::move(prog), model,
      shape, duplicate_copies);
}

/// Identity of a warm structure: which dataset it was prepared on and which
/// algorithm/plan serves it (plan kind is folded into EngineKind).
struct EngineKey {
  std::string dataset;
  msearch::EngineKind kind = msearch::EngineKind::kAlg1Paper;

  friend bool operator<(const EngineKey& a, const EngineKey& b) {
    if (a.dataset != b.dataset) return a.dataset < b.dataset;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  }
  friend bool operator==(const EngineKey&, const EngineKey&) = default;
};

/// "dataset/alg1-paper" — the display/metric form of a key.
std::string engine_key_name(const EngineKey& key);

/// Table of warm engines. Registration is explicit (the caller prepares the
/// engine, paying setup, then adds it); lookup never prepares anything.
class EngineRegistry {
 public:
  /// Register a warm engine under `key`. Rejects duplicates and null
  /// engines with InvalidInputError. Returns the registered engine.
  Engine& add(EngineKey key, std::unique_ptr<Engine> engine);

  /// Lookup; null if absent.
  Engine* find(const EngineKey& key);

  /// Lookup; throws InvalidInputError naming the key if absent.
  Engine& at(const EngineKey& key);

  /// Arm (or re-arm) the circuit breaker of the engine registered under
  /// `key`. Throws InvalidInputError if the key is absent. A threshold of 0
  /// disarms it.
  void set_breaker_policy(const EngineKey& key, BreakerPolicy policy);

  /// The breaker of the engine registered under `key` (throws if absent).
  CircuitBreaker& breaker(const EngineKey& key);

  std::size_t size() const { return engines_.size(); }
  std::vector<EngineKey> keys() const;

 private:
  std::map<EngineKey, std::unique_ptr<Engine>> engines_;
};

}  // namespace meshsearch::service
