#include "service/engine.hpp"

#include "multisearch/validate.hpp"

namespace meshsearch::service {

std::string engine_key_name(const EngineKey& key) {
  std::string out = key.dataset;
  out += '/';
  out += msearch::engine_kind_name(key.kind);
  return out;
}

Engine& EngineRegistry::add(EngineKey key, std::unique_ptr<Engine> engine) {
  if (engine == nullptr)
    msearch::invalid_input("EngineRegistry::add requires a non-null engine",
                           "EngineRegistry");
  // Stamp the dataset name so a later StaleEngineError can say WHICH
  // structure the engine went stale against.
  engine->set_dataset(key.dataset);
  auto [it, inserted] = engines_.emplace(std::move(key), std::move(engine));
  if (!inserted)
    msearch::invalid_input(
        "engine already registered for key " + engine_key_name(it->first),
        "EngineRegistry");
  return *it->second;
}

Engine* EngineRegistry::find(const EngineKey& key) {
  const auto it = engines_.find(key);
  return it == engines_.end() ? nullptr : it->second.get();
}

Engine& EngineRegistry::at(const EngineKey& key) {
  Engine* e = find(key);
  if (e == nullptr)
    msearch::invalid_input("no engine registered for key " +
                               engine_key_name(key),
                           "EngineRegistry");
  return *e;
}

void EngineRegistry::set_breaker_policy(const EngineKey& key,
                                        BreakerPolicy policy) {
  at(key).breaker().configure(policy);
}

CircuitBreaker& EngineRegistry::breaker(const EngineKey& key) {
  return at(key).breaker();
}

std::vector<EngineKey> EngineRegistry::keys() const {
  std::vector<EngineKey> out;
  out.reserve(engines_.size());
  for (const auto& [key, engine] : engines_) out.push_back(key);
  return out;
}

}  // namespace meshsearch::service
