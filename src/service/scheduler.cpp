#include "service/scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "multisearch/validate.hpp"
#include "util/check.hpp"

namespace meshsearch::service {

namespace {

double wall_us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Metric identity of an engine's breaker: "dataset/kind" as in
/// engine_key_name (the scheduler has the Engine, not its registry key, but
/// dataset + kind IS the key).
std::string breaker_id(const Engine& e) {
  std::string out = e.dataset();
  out += '/';
  out += msearch::engine_kind_name(e.kind());
  return out;
}

/// Scale a positive query count, flooring at 1 (a brownouted tenant is
/// deprioritized, never fully starved — starvation would turn a latency
/// SLO miss into unbounded waits for work already admitted).
std::size_t scale_count(std::size_t n, double scale) {
  const auto scaled = static_cast<std::size_t>(static_cast<double>(n) * scale);
  return std::max<std::size_t>(1, scaled);
}

}  // namespace

const char* schedule_policy_name(SchedulePolicy p) {
  switch (p) {
    case SchedulePolicy::kDeficitRoundRobin: return "drr";
    case SchedulePolicy::kExhaustive: return "exhaustive";
  }
  return "unknown";
}

ServiceScheduler::ServiceScheduler(ServiceConfig cfg,
                                   trace::TraceRecorder* trace)
    : cfg_(cfg), trace_(trace) {}

TenantSession& ServiceScheduler::add_tenant(std::string name, Engine& engine,
                                            TenantQuota quota, SloPolicy slo) {
  for (const auto& t : tenants_)
    if (t->name() == name)
      msearch::invalid_input("tenant '" + name + "' already registered",
                             "ServiceScheduler");
  if (quota.max_outstanding == 0)
    msearch::invalid_input("tenant quota requires max_outstanding >= 1",
                           "ServiceScheduler");
  if (quota.weight == 0)
    msearch::invalid_input("tenant quota requires weight >= 1",
                           "ServiceScheduler");
  if (slo.deadline_steps < 0 || slo.p99_target_steps < 0)
    msearch::invalid_input(
        "tenant SLO policy requires non-negative deadline/p99 target",
        "ServiceScheduler");
  if (slo.shed_mode == ShedMode::kDeadline && slo.deadline_steps <= 0)
    msearch::invalid_input(
        "ShedMode::kDeadline requires deadline_steps > 0 (a zero deadline "
        "would shed every query at its first dispatch opportunity)",
        "ServiceScheduler");
  tenants_.push_back(std::make_unique<TenantSession>(std::move(name), engine,
                                                     quota, slo, &clock_));
  tenants_.back()->sched_ = this;
  deficit_.push_back(0.0);
  return *tenants_.back();
}

TenantSession& ServiceScheduler::tenant(const std::string& name) {
  for (const auto& t : tenants_)
    if (t->name() == name) return *t;
  msearch::invalid_input("unknown tenant '" + name + "'", "ServiceScheduler");
}

const TenantSession& ServiceScheduler::tenant(const std::string& name) const {
  for (const auto& t : tenants_)
    if (t->name() == name) return *t;
  msearch::invalid_input("unknown tenant '" + name + "'", "ServiceScheduler");
}

bool ServiceScheduler::idle() const {
  for (const auto& t : tenants_)
    if (!t->queue_.empty() || t->pending_updates() > 0) return false;
  return true;
}

std::size_t ServiceScheduler::quantum_for(const TenantSession& t) const {
  const std::size_t base =
      cfg_.quantum == 0 ? t.engine().capacity() : cfg_.quantum;
  return base * t.quota().weight;
}

void ServiceScheduler::advance_clock_to(double steps) {
  MS_CHECK_MSG(steps >= clock_, "advance_clock_to cannot move time backwards");
  clock_ = steps;
}

void ServiceScheduler::resolve(TenantSession& t, std::uint32_t idx,
                               QueryState state, double attempt_start,
                               bool dispatched) {
  MS_CHECK(state != QueryState::kPending);
  t.state_[idx] = state;
  t.resolve_steps_[idx] = clock_;
  MS_CHECK(t.outstanding_ > 0);
  --t.outstanding_;
  switch (state) {
    case QueryState::kDone: ++t.completed_; break;
    case QueryState::kFailed: ++t.failed_; break;
    case QueryState::kShed: ++t.shed_; break;
    case QueryState::kPending: break;  // unreachable (checked above)
  }
  const double admitted = t.submit_steps_[idx];
  const double latency = clock_ - admitted;
  if (dispatched) {
    t.queue_wait_steps_.observe(attempt_start - admitted);
    t.latency_steps_.observe(latency);
  }
  if (t.callback_) {
    CompletionEvent ev;
    ev.ticket = idx;
    ev.query = &t.stream_[idx];
    ev.failed = state == QueryState::kFailed;
    ev.shed = state == QueryState::kShed;
    ev.latency_steps = latency;
    t.callback_(ev);
  }
}

std::size_t ServiceScheduler::shed_expired(TenantSession& t) {
  if (t.slo_.shed_mode != ShedMode::kDeadline || t.queue_.empty()) return 0;
  const double deadline = t.slo_.deadline_steps;
  const std::vector<std::uint32_t> expired =
      t.queue_.pop_expired([&](std::uint32_t idx) {
        return clock_ - t.submit_steps_[idx] > deadline;
      });
  if (expired.empty()) return 0;
  // Shed happens BEFORE any pop for dispatch, so a query that survives to a
  // dispatch has waited at most deadline_steps — the invariant that makes a
  // p99 target of deadline + one-batch-margin provably satisfiable.
  for (const auto idx : expired)
    resolve(t, idx, QueryState::kShed, clock_, /*dispatched=*/false);
  if (trace_ != nullptr)
    trace_->stat_add(trace::tenant_metric(t.name_, "shed"), expired.size());
  return expired.size();
}

bool ServiceScheduler::over_target(const TenantSession& t) const {
  return t.slo_.p99_target_steps > 0 && !t.latency_steps_.empty() &&
         t.latency_steps_.p99() > t.slo_.p99_target_steps;
}

double ServiceScheduler::retry_after_hint(const TenantSession& t,
                                          std::size_t incoming) const {
  const std::size_t queued = t.queue_.pending_queries();
  const std::size_t watermark = t.slo_.max_queue;
  const std::size_t excess =
      queued + incoming > watermark ? queued + incoming - watermark : 1;
  const std::size_t quantum = std::max<std::size_t>(1, quantum_for(t));
  const auto rounds_needed = static_cast<double>((excess + quantum - 1) /
                                                 quantum);
  // Observed service rate: virtual steps per resolved query so far, over
  // all tenants (1.0 before anything has resolved — any positive hint beats
  // "retry now" while the service is still cold).
  std::size_t resolved_total = 0;
  double round_queries = 0;
  for (const auto& tp : tenants_) {
    resolved_total += tp->completed_ + tp->failed_ + tp->shed_;
    round_queries += static_cast<double>(quantum_for(*tp));
  }
  const double per_query =
      resolved_total > 0 ? clock_ / static_cast<double>(resolved_total) : 1.0;
  return rounds_needed * round_queries * per_query;
}

ServiceScheduler::ServeOutcome ServiceScheduler::serve_slice(
    TenantSession& t, std::size_t window) {
  ServeOutcome out;
  // Deadline shedding first: anything already expired must not ride this
  // dispatch (it would be served past its deadline) and must not hold the
  // barrier clamp below hostage.
  out.resolved += shed_expired(t);
  // A pending update is a barrier in the tenant's stream: queries admitted
  // after it must not be served until it applies. The queue is FIFO in
  // admission order (fault requeues go to the front), so clamping the
  // window to the unresolved-before-barrier count is exact. Shed counts as
  // resolved: those queries will never be attempted.
  if (t.next_update_ < t.updates_.size()) {
    const std::size_t barrier = t.updates_[t.next_update_].barrier;
    const std::size_t resolved = t.completed_ + t.failed_ + t.shed_;
    window = barrier > resolved ? std::min(window, barrier - resolved) : 0;
  }
  if (window == 0 || t.queue_.empty()) return out;
  msearch::PendingBatch cur = t.queue_.pop_upto(window);
  out.taken = cur.indices.size();
  Engine& engine = t.engine();
  CircuitBreaker& breaker = engine.breaker();
  if (breaker.enabled()) {
    try {
      breaker.admit(round_, engine.dataset(),
                    msearch::engine_kind_name(engine.kind()));
      if (breaker.state() == BreakerState::kHalfOpen && trace_ != nullptr)
        trace_->stat_add(trace::breaker_metric(breaker_id(engine), "probes"));
    } catch (const CircuitOpenError&) {
      // Fail fast: reported failed with ZERO charge — no engine work, no
      // retry-budget burn, no clock advance. Still never silent: every
      // ticket flips to kFailed and the completion callback fires.
      breaker.count_fail_fast(cur.indices.size());
      t.failed_fast_ += cur.indices.size();
      if (trace_ != nullptr) {
        trace_->stat_add(trace::breaker_metric(breaker_id(engine),
                                               "fail_fast_queries"),
                         cur.indices.size());
        trace_->stat_add(trace::tenant_metric(t.name_, "failed_fast"),
                         cur.indices.size());
      }
      for (const auto idx : cur.indices)
        resolve(t, idx, QueryState::kFailed, clock_, /*dispatched=*/false);
      out.resolved += cur.indices.size();
      return out;
    }
  }
  engine.bind_sinks(trace_, t.fault_);
  // Span per attempt, like "stream.batch N": closing it lands the wall
  // latency in the shared wall.phase.service.batch histogram.
  trace::SpanScope span(trace_, "service.batch " + std::to_string(serial_));
  ++serial_;
  const double attempt_start = clock_;
  const auto wall_begin = std::chrono::steady_clock::now();
  // The engine runs on a COPY of the tenant's slice: a fault-exhausted
  // attempt leaves every query at its pre-batch checkpoint for free.
  std::vector<msearch::Query> batch;
  batch.reserve(cur.indices.size());
  for (const auto idx : cur.indices) batch.push_back(t.stream_[idx]);
  try {
    const msearch::BatchReport rep = engine.run_batch(batch);
    clock_ += (rep.inject + rep.run).steps;
    t.inject_ += rep.inject;
    t.run_ += rep.run;
    ++t.batches_;
    if (breaker.record_success() && trace_ != nullptr)
      trace_->stat_add(trace::breaker_metric(breaker_id(engine),
                                             "recoveries"));
    const double wall = wall_us_since(wall_begin);
    t.batch_latency_us_.observe(wall);
    if (trace_ != nullptr) {
      trace_->stat_observe(trace::tenant_metric(t.name_, "batch_latency_us"),
                           wall);
      trace_->stat_add(trace::tenant_metric(t.name_, "batches_run"));
    }
    for (std::size_t k = 0; k < cur.indices.size(); ++k) {
      t.stream_[cur.indices[k]] = batch[k];
      resolve(t, cur.indices[k], QueryState::kDone, attempt_start,
              /*dispatched=*/true);
    }
    out.resolved += cur.indices.size();
  } catch (const mesh::FaultExhaustedError&) {
    if (t.fault_ == nullptr) throw;  // not ours to recover
    out.faulted = true;
    if (breaker.record_failure(round_) && trace_ != nullptr)
      trace_->stat_add(trace::breaker_metric(breaker_id(engine), "trips"));
    t.fault_->degrade();
    const auto max_replans = static_cast<std::uint32_t>(
        std::max(0, t.fault_->config().max_replans));
    if (cur.replans < max_replans) {
      t.fault_->count_replanned_batch();
      ++t.replans_;
      if (trace_ != nullptr)
        trace_->stat_add(trace::tenant_metric(t.name_, "replans"));
      // Front, not back: the tenant's own later arrivals must not overtake
      // its failed queries.
      t.queue_.requeue_split_front(
          cur, t.fault_->effective_capacity(engine.capacity()));
    } else {
      t.fault_->count_degraded_batch();
      ++t.degraded_batches_;
      ++t.batches_;
      const double wall = wall_us_since(wall_begin);
      t.batch_latency_us_.observe(wall);
      if (trace_ != nullptr) {
        trace_->stat_observe(trace::tenant_metric(t.name_, "batch_latency_us"),
                             wall);
        trace_->stat_add(trace::tenant_metric(t.name_, "batches_run"));
        trace_->stat_add(trace::tenant_metric(t.name_, "degraded_batches"));
      }
      // Reported failed, never silently wrong: the tickets stay at their
      // checkpoint state and flip to kFailed.
      for (const auto idx : cur.indices)
        resolve(t, idx, QueryState::kFailed, attempt_start,
                /*dispatched=*/true);
      out.resolved += cur.indices.size();
    }
  }
  return out;
}

void ServiceScheduler::apply_ready_updates(TenantSession& t) {
  while (t.update_ready()) {
    TenantSession::PendingUpdate& u = t.updates_[t.next_update_];
    Engine& engine = t.engine();
    engine.bind_sinks(trace_, t.fault_);
    trace::SpanScope span(trace_, "service.update " + std::to_string(serial_));
    ++serial_;
    // The mutation itself (structure apply_updates) is mesh-free here; the
    // charged work is the engine refresh that follows.
    const msearch::RefreshRequest req = u.mutate();
    msearch::RefreshReport rep;
    try {
      rep = engine.refresh(req);
    } catch (const mesh::FaultExhaustedError&) {
      if (t.fault_ == nullptr) throw;  // not ours to recover
      // Same degradation contract as batches, but an update cannot be
      // "reported failed" — the structure already mutated, so a permanently
      // stale engine would wedge the tenant. Degrade the plan and re-run
      // the refresh fault-free: applied-after-degradation, never wedged.
      t.fault_->degrade();
      t.fault_->count_degraded_batch();
      ++t.degraded_refreshes_;
      if (trace_ != nullptr)
        trace_->stat_add(trace::tenant_metric(t.name_, "degraded_refreshes"));
      engine.bind_sinks(trace_, nullptr);
      rep = engine.refresh(req);
    }
    clock_ += rep.cost.steps;
    t.refresh_ += rep.cost;
    ++t.next_update_;
    if (rep.incremental)
      ++t.incremental_refreshes_;
    else
      ++t.full_refreshes_;
    if (trace_ != nullptr) {
      trace_->stat_add(trace::tenant_metric(t.name_, "updates_applied"));
      trace_->stat_add(trace::tenant_metric(
          t.name_, rep.incremental ? "incremental_refreshes"
                                   : "full_refreshes"));
    }
  }
}

std::size_t ServiceScheduler::pump() {
  ++round_;  // the breaker's probe clock: a trip this round probes the next
  // Brownout assessment once per round, on the aggregate backlog BEFORE any
  // serving — a deterministic function of the submit/pump sequence. DRR
  // only: the exhaustive baseline stays unfair on purpose.
  bool brownout = false;
  if (cfg_.brownout.watermark_queries > 0 &&
      cfg_.policy == SchedulePolicy::kDeficitRoundRobin) {
    std::size_t backlog = 0;
    for (const auto& t : tenants_) backlog += t->queue_.pending_queries();
    brownout = backlog > cfg_.brownout.watermark_queries;
    if (brownout) {
      ++brownout_rounds_;
      if (trace_ != nullptr) trace_->stat_add("service.brownout.rounds");
    }
  }
  std::size_t resolved = 0;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    TenantSession& t = *tenants_[i];
    apply_ready_updates(t);
    // Shed before the empty check: a queue made entirely of expired work
    // must still resolve (kShed) this round, not linger as phantom backlog.
    resolved += shed_expired(t);
    if (t.queue_.empty()) {
      deficit_[i] = 0;  // no banking while idle
      continue;
    }
    if (cfg_.policy == SchedulePolicy::kExhaustive) {
      // Unfair baseline: drain this tenant before anyone else runs. Updates
      // whose barrier resolves mid-drain apply between slices so later
      // queries see them (read-your-writes).
      while (!t.queue_.empty()) {
        resolved += serve_slice(t, t.slice_cap()).resolved;
        apply_ready_updates(t);
      }
      deficit_[i] = 0;
      continue;
    }
    std::size_t quantum = quantum_for(t);
    std::size_t cap_limit = t.slice_cap();
    if (brownout && over_target(t)) {
      // Over-target tenants yield: scaled quantum (floored at 1) shifts
      // this round's service toward tenants still inside their targets.
      quantum = scale_count(quantum, cfg_.brownout.quantum_scale);
      if (cfg_.brownout.capacity_scale < 1.0)
        cap_limit = scale_count(cap_limit, cfg_.brownout.capacity_scale);
      ++t.brownout_deprioritized_;
      if (trace_ != nullptr)
        trace_->stat_add(
            trace::tenant_metric(t.name_, "brownout_deprioritized"));
    }
    deficit_[i] += static_cast<double>(quantum);
    while (!t.queue_.empty() && deficit_[i] >= 1.0) {
      const std::size_t window =
          std::min({cap_limit, t.slice_cap(),
                    static_cast<std::size_t>(deficit_[i])});
      const ServeOutcome out = serve_slice(t, window);
      deficit_[i] -= static_cast<double>(out.taken);
      resolved += out.resolved;
      // A faulted attempt ends the tenant's turn: its retries queue behind
      // everyone else's round instead of taxing co-resident tenants now.
      if (out.faulted) break;
      // A slice that resolved an update's barrier lets the update apply
      // before the tenant's next slice — queries admitted after the write
      // are always served by the refreshed engine.
      apply_ready_updates(t);
    }
    if (t.queue_.empty()) deficit_[i] = 0;
  }
  return resolved;
}

std::size_t ServiceScheduler::run_until_idle() {
  std::size_t resolved = 0;
  while (!idle()) resolved += pump();
  return resolved;
}

std::vector<TenantReport> ServiceScheduler::reports() const {
  std::vector<TenantReport> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) out.push_back(t->report());
  return out;
}

void ServiceScheduler::export_metrics() const {
  if (trace_ == nullptr) return;
  // Deterministic counts and charges only — wall histograms already went
  // through stat_observe, keeping rec->metric() bit-identical across runs.
  const auto metric = [&](const TenantSession& t, const char* name,
                          double value) {
    trace_->metric(trace::tenant_metric(t.name_, name), value);
  };
  for (const auto& tp : tenants_) {
    const TenantSession& t = *tp;
    metric(t, "submitted", static_cast<double>(t.stream_.size()));
    metric(t, "completed", static_cast<double>(t.completed_));
    metric(t, "failed_queries", static_cast<double>(t.failed_));
    metric(t, "rejected_queries", static_cast<double>(t.rejected_queries_));
    metric(t, "rejected_backpressure",
           static_cast<double>(t.rejected_backpressure_));
    metric(t, "shed", static_cast<double>(t.shed_));
    metric(t, "failed_fast", static_cast<double>(t.failed_fast_));
    metric(t, "brownout_deprioritized",
           static_cast<double>(t.brownout_deprioritized_));
    metric(t, "batches", static_cast<double>(t.batches_));
    metric(t, "degraded_batches", static_cast<double>(t.degraded_batches_));
    metric(t, "replans", static_cast<double>(t.replans_));
    metric(t, "updates_submitted", static_cast<double>(t.updates_.size()));
    metric(t, "updates_applied", static_cast<double>(t.next_update_));
    metric(t, "incremental_refreshes",
           static_cast<double>(t.incremental_refreshes_));
    metric(t, "full_refreshes", static_cast<double>(t.full_refreshes_));
    metric(t, "refresh_steps", t.refresh_.steps);
    metric(t, "charged_steps", (t.inject_ + t.run_ + t.refresh_).steps);
    if (t.fault_ != nullptr)
      mesh::record_fault_metrics(trace_, *t.fault_,
                                 trace::tenant_metric(t.name_, ""));
  }
  trace_->metric("service.tenants", static_cast<double>(tenants_.size()));
  trace_->metric("service.clock_steps", clock_);
  trace_->metric("service.rounds", static_cast<double>(round_));
  trace_->metric("service.brownout_rounds",
                 static_cast<double>(brownout_rounds_));
  // One breaker block per distinct ENGINE with an armed breaker (tenants
  // may share an engine; dedupe by identity so counters export once).
  std::vector<const Engine*> seen;
  for (const auto& tp : tenants_) {
    const Engine& e = tp->engine();
    if (!e.breaker().enabled()) continue;
    if (std::find(seen.begin(), seen.end(), &e) != seen.end()) continue;
    seen.push_back(&e);
    const std::string id = breaker_id(e);
    const BreakerCounters& c = e.breaker().counters();
    const auto bmetric = [&](const char* name, double value) {
      trace_->metric(trace::breaker_metric(id, name), value);
    };
    bmetric("trips", static_cast<double>(c.trips));
    bmetric("probes", static_cast<double>(c.probes));
    bmetric("recoveries", static_cast<double>(c.recoveries));
    bmetric("fail_fast_batches", static_cast<double>(c.fail_fast_batches));
    bmetric("fail_fast_queries", static_cast<double>(c.fail_fast_queries));
    bmetric("consecutive_failures",
            static_cast<double>(e.breaker().consecutive_failures()));
    bmetric("open", e.breaker().state() == BreakerState::kOpen ? 1.0 : 0.0);
  }
}

}  // namespace meshsearch::service
