#include "service/tenant.hpp"

#include <utility>

#include "service/scheduler.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace meshsearch::service {

const char* shed_mode_name(ShedMode m) {
  switch (m) {
    case ShedMode::kNone: return "none";
    case ShedMode::kDeadline: return "deadline";
  }
  return "unknown";
}

TenantSession::TenantSession(std::string name, Engine& engine,
                             TenantQuota quota, SloPolicy slo,
                             const double* clock)
    : name_(std::move(name)),
      engine_(&engine),
      quota_(quota),
      slo_(slo),
      clock_(clock) {
  MS_CHECK_MSG(clock_ != nullptr, "TenantSession requires a service clock");
}

Submission TenantSession::submit(std::vector<msearch::Query> queries) {
  Submission sub;
  sub.first = stream_.size();
  if (queries.empty()) return sub;
  const std::size_t n = queries.size();
  if (outstanding_ + n > quota_.max_outstanding) {
    // Reject the whole call before anything is enqueued or charged; the
    // caller can split/shrink and retry once earlier work completes.
    ++rejected_submissions_;
    rejected_queries_ += n;
    ErrorContext ctx;
    ctx.engine = "service";
    ctx.phase = "admission";
    ctx.site = name_;
    throw CapacityError(
        "tenant '" + name_ + "' submit of " + std::to_string(n) +
            " queries exceeds max_outstanding quota (" +
            std::to_string(outstanding_) + " outstanding, quota " +
            std::to_string(quota_.max_outstanding) + ")",
        std::move(ctx));
  }
  if (slo_.max_queue != 0 && queue_.pending_queries() + n > slo_.max_queue) {
    // Backpressure: the pending queue (admitted, not yet dispatched) is the
    // overload signal — outstanding() also counts in-flight work the engine
    // is already serving. Rejected whole, nothing enqueued or charged, and
    // the error carries a retry-after hint in virtual steps from the DRR
    // drain-rate estimate so a caller can back off deterministically.
    ++rejected_submissions_;
    rejected_queries_ += n;
    rejected_backpressure_ += n;
    const double retry_after =
        sched_ != nullptr ? sched_->retry_after_hint(*this, n) : 0.0;
    ErrorContext ctx;
    ctx.engine = "service";
    ctx.phase = "admission";
    ctx.site = name_;
    throw BackpressureError(
        "tenant '" + name_ + "' submit of " + std::to_string(n) +
            " queries exceeds max_queue backpressure watermark (" +
            std::to_string(queue_.pending_queries()) + " queued, watermark " +
            std::to_string(slo_.max_queue) + "); retry after ~" +
            std::to_string(retry_after) + " virtual steps",
        retry_after, queue_.pending_queries(), slo_.max_queue,
        std::move(ctx));
  }
  sub.count = n;
  std::vector<std::uint32_t> indices;
  indices.reserve(n);
  const double now = *clock_;
  for (auto& q : queries) {
    indices.push_back(static_cast<std::uint32_t>(stream_.size()));
    stream_.push_back(std::move(q));
    state_.push_back(QueryState::kPending);
    submit_steps_.push_back(now);
    resolve_steps_.push_back(0);
  }
  queue_.enqueue(std::move(indices));
  outstanding_ += n;
  return sub;
}

std::size_t TenantSession::submit_update(UpdateFn mutate) {
  if (!mutate) {
    ErrorContext ctx;
    ctx.engine = "service";
    ctx.phase = "admission";
    ctx.site = name_;
    throw InvalidInputError(
        "tenant '" + name_ + "' submit_update requires a callable",
        std::move(ctx));
  }
  PendingUpdate u;
  u.mutate = std::move(mutate);
  u.barrier = stream_.size();
  updates_.push_back(std::move(u));
  return updates_.size() - 1;
}

QueryState TenantSession::poll(Ticket t) const {
  MS_CHECK_MSG(t < state_.size(), "poll on an unknown ticket");
  return state_[t];
}

const msearch::Query& TenantSession::result(Ticket t) const {
  MS_CHECK_MSG(t < state_.size(), "result on an unknown ticket");
  MS_CHECK_MSG(state_[t] != QueryState::kPending,
               "result on a still-pending ticket (poll first)");
  if (state_[t] == QueryState::kShed) {
    // A shed query has no answer — the typed error replays the shed
    // decision (admission clock vs deadline) instead of handing back a
    // query whose answer fields were never written.
    ErrorContext ctx;
    ctx.engine = "service";
    ctx.phase = "result";
    ctx.site = name_;
    throw DeadlineExceededError(name_, engine_->dataset(), submit_steps_[t],
                                slo_.deadline_steps, resolve_steps_[t],
                                std::move(ctx));
  }
  return stream_[t];
}

std::size_t TenantSession::slice_cap() const {
  std::size_t cap = engine_->capacity();
  if (quota_.max_batch != 0) cap = std::min(cap, quota_.max_batch);
  if (fault_ != nullptr && fault_->armed())
    cap = fault_->effective_capacity(cap);
  return std::max<std::size_t>(1, cap);
}

TenantReport TenantSession::report() const {
  TenantReport rep;
  rep.tenant = name_;
  rep.submitted = stream_.size();
  rep.completed = completed_;
  rep.failed_queries = failed_;
  rep.outstanding = outstanding_;
  rep.rejected_submissions = rejected_submissions_;
  rep.rejected_queries = rejected_queries_;
  rep.rejected_backpressure = rejected_backpressure_;
  rep.shed = shed_;
  rep.failed_fast = failed_fast_;
  rep.brownout_deprioritized = brownout_deprioritized_;
  rep.batches = batches_;
  rep.degraded_batches = degraded_batches_;
  rep.replans = replans_;
  rep.updates_submitted = updates_.size();
  rep.updates_applied = next_update_;
  rep.incremental_refreshes = incremental_refreshes_;
  rep.full_refreshes = full_refreshes_;
  rep.degraded_refreshes = degraded_refreshes_;
  rep.inject = inject_;
  rep.run = run_;
  rep.refresh = refresh_;
  rep.queue_wait_steps = queue_wait_steps_;
  rep.latency_steps = latency_steps_;
  rep.batch_latency_us = batch_latency_us_;
  return rep;
}

}  // namespace meshsearch::service
