// Tenant sessions: admission control, async completion, per-tenant report.
//
// A TenantSession is one tenant's view of the service: it owns the tenant's
// submitted queries, the pending-batch queue the ServiceScheduler drains
// (msearch::BatchSource), and the tenant's service-level accounting. The
// contracts:
//
//   * Admission is all-or-nothing and charge-free. submit() either admits
//     every query of the call or throws CapacityError BEFORE any engine work
//     — the rejected caller has consumed nothing but the admission check
//     itself, and the error context names the tenant (ctx.site) so a
//     multiplexed caller can tell whose quota tripped.
//   * Completion is asynchronous. submit() returns tickets immediately;
//     answers materialize when the scheduler runs the tenant's batches.
//     poll(ticket) observes the state machine kPending -> kDone/kFailed,
//     result(ticket) reads the answered query, and an optional on_complete
//     callback fires per query as its batch finishes (from inside the
//     scheduler's pump — keep callbacks cheap and do not call back into the
//     service from them).
//   * kFailed is a reported outcome, not an exception: queries in a batch
//     that exhausted its fault retry budget after max_replans re-plans are
//     marked failed and counted in the report (failed_queries), exactly the
//     StreamScheduler degradation contract — never a silent wrong answer.
//
// Latency accounting runs on the service's virtual clock (simulated mesh
// steps, see scheduler.hpp): queue_wait = admission -> attempt start,
// latency = admission -> completion. Both are deterministic functions of the
// submit/pump call sequence, so percentile tables built from them are safe
// to pin in bench baselines. Wall-clock histograms ride alongside as
// observability only.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mesh/fault.hpp"
#include "service/engine.hpp"
#include "util/stats.hpp"

namespace meshsearch::service {

class ServiceScheduler;

/// What to do with a query whose virtual queue wait has exceeded its
/// tenant's deadline by dispatch time.
enum class ShedMode : std::uint8_t {
  kNone = 0,   ///< never shed: late queries are still served (PR 8 behavior)
  kDeadline,   ///< shed before dispatch, resolve kShed, DeadlineExceededError
};

const char* shed_mode_name(ShedMode m);

/// Per-tenant service-level objectives and overload-protection policy.
/// Everything is measured on the service's VIRTUAL step clock, so every
/// shed/reject decision is a deterministic function of the submit/pump
/// sequence — bit-identical at any thread count (DESIGN.md decision 17).
/// The default policy (all zeros) disables every mechanism.
struct SloPolicy {
  /// Max virtual queue wait (admission -> dispatch) before a query is shed
  /// under ShedMode::kDeadline. 0 = no deadline.
  double deadline_steps = 0;
  /// The tenant's latency target. Drives two things: brownout
  /// deprioritization (a tenant whose observed latency p99 exceeds its
  /// target is over-target and loses quantum while the service is over its
  /// watermark), and the E12 acceptance gate (admitted-query p99 must stay
  /// within target under overload). 0 = no target (never over-target).
  double p99_target_steps = 0;
  /// Backpressure watermark: a submit that would push the tenant's PENDING
  /// queue past this is rejected whole with BackpressureError carrying a
  /// retry-after hint (in virtual steps, from the DRR round estimate).
  /// 0 = no backpressure (quota.max_outstanding still applies).
  std::size_t max_queue = 0;
  ShedMode shed_mode = ShedMode::kNone;
};

/// Per-tenant admission and scheduling limits.
struct TenantQuota {
  /// Queued + running queries the tenant may have in flight. A submit that
  /// would exceed this is rejected whole with CapacityError.
  std::size_t max_outstanding = 1024;
  /// Per-slice cap on queries handed to the engine in one batch; 0 = the
  /// engine's mesh capacity. Always additionally clamped to capacity (and
  /// to the fault plan's surviving capacity when one is armed).
  std::size_t max_batch = 0;
  /// Deficit-round-robin weight: a weight-w tenant earns w quanta per round.
  std::uint32_t weight = 1;
};

enum class QueryState : std::uint8_t {
  kPending = 0,  ///< admitted, not yet answered
  kDone,         ///< answered; result(ticket) holds the outcome
  kFailed,       ///< batch degraded after max_replans; reported, not answered
  kShed,         ///< deadline exceeded before dispatch; result(ticket) throws
                 ///< DeadlineExceededError — reported, never silently dropped
};

/// Ticket = the query's position in the tenant's submission order.
using Ticket = std::uint64_t;

/// Receipt for one submit() call: `count` consecutive tickets from `first`.
struct Submission {
  Ticket first = 0;
  std::size_t count = 0;
};

struct CompletionEvent {
  Ticket ticket = 0;
  const msearch::Query* query = nullptr;  ///< answered query (tenant-owned)
  bool failed = false;                    ///< kFailed (degraded or fail-fast)
  bool shed = false;                      ///< kShed (deadline exceeded)
  double latency_steps = 0;               ///< admission -> completion, sim
};
using CompletionFn = std::function<void(const CompletionEvent&)>;

/// An update batch, deferred: the callable mutates the tenant's structure
/// (e.g. KaryTree::apply_updates) and returns the RefreshRequest the
/// scheduler hands to the engine. It runs exactly once, from inside pump(),
/// only after every query admitted before submit_update() has resolved —
/// and queries admitted after it wait behind it (scheduler slices never
/// cross the barrier). So within a tenant: earlier reads see the
/// pre-update structure, later reads see the refreshed one
/// (read-your-writes), and the engine never serves a mutation it has not
/// been refreshed for.
using UpdateFn = std::function<msearch::RefreshRequest()>;

/// Snapshot of one tenant's service-level accounting.
struct TenantReport {
  std::string tenant;
  std::size_t submitted = 0;        ///< admitted queries
  std::size_t completed = 0;        ///< answered (kDone)
  std::size_t failed_queries = 0;   ///< reported-failed (kFailed)
  std::size_t outstanding = 0;      ///< still pending at snapshot time
  std::size_t rejected_submissions = 0;  ///< submit() calls refused
  std::size_t rejected_queries = 0;      ///< queries in refused calls (all)
  /// Queries in calls refused by SloPolicy::max_queue backpressure — a
  /// subset of rejected_queries; the rest tripped quota.max_outstanding.
  std::size_t rejected_backpressure = 0;
  /// Queries shed before dispatch (deadline exceeded, kShed). Disjoint from
  /// failed_queries: shed = never attempted, failed = attempted and lost.
  std::size_t shed = 0;
  /// Queries reported failed WITHOUT a dispatch because the engine's
  /// circuit breaker was open — a subset of failed_queries, so
  /// failed_queries - failed_fast = "failed after exhausting retries".
  std::size_t failed_fast = 0;
  /// Rounds in which brownout deprioritized this tenant (quantum scaled).
  std::size_t brownout_deprioritized = 0;
  std::size_t batches = 0;          ///< attempts that produced an outcome
  std::size_t degraded_batches = 0;
  std::size_t replans = 0;          ///< re-plan generations executed
  std::size_t updates_submitted = 0;
  std::size_t updates_applied = 0;
  std::size_t incremental_refreshes = 0;  ///< dirty-band re-distributions
  std::size_t full_refreshes = 0;         ///< fell back to full re-setup
  std::size_t degraded_refreshes = 0;     ///< retried fault-free after budget
  mesh::Cost inject;  ///< charged on this tenant's behalf
  mesh::Cost run;
  mesh::Cost refresh;  ///< engine refresh work done on this tenant's behalf
  /// Simulated-step SLO histograms — deterministic, baseline-safe.
  util::LogHistogram queue_wait_steps;  ///< admission -> attempt start
  util::LogHistogram latency_steps;     ///< admission -> completion
  /// Wall-clock per-attempt latency — observability only.
  util::LogHistogram batch_latency_us;

  mesh::Cost charged() const { return inject + run + refresh; }
};

class TenantSession {
 public:
  /// Built by ServiceScheduler::add_tenant. `clock` points at the service's
  /// virtual clock (stable for the scheduler's lifetime).
  TenantSession(std::string name, Engine& engine, TenantQuota quota,
                SloPolicy slo, const double* clock);

  TenantSession(const TenantSession&) = delete;
  TenantSession& operator=(const TenantSession&) = delete;

  const std::string& name() const { return name_; }
  Engine& engine() const { return *engine_; }
  const TenantQuota& quota() const { return quota_; }
  const SloPolicy& slo() const { return slo_; }

  /// Admit `queries` or throw (tenant named in the error context, nothing
  /// enqueued, nothing charged): CapacityError when the call would exceed
  /// quota.max_outstanding, BackpressureError — with a retry-after hint in
  /// virtual steps — when it would push the pending queue past
  /// slo().max_queue. An empty call is a no-op returning count 0. Admitted
  /// queries are answered asynchronously by the scheduler; the Submission's
  /// tickets are `first .. first + count - 1`.
  Submission submit(std::vector<msearch::Query> queries);

  /// Queries admitted but not yet popped for a dispatch (the backpressure
  /// watermark measures this, not outstanding()).
  std::size_t queued() const { return queue_.pending_queries(); }

  /// Enqueue an update batch (see UpdateFn). Returns the update's index in
  /// this tenant's update sequence. The mutation does NOT happen here — it
  /// runs inside a later pump(), once every query admitted before this call
  /// has resolved. Throws InvalidInputError on a null callable.
  std::size_t submit_update(UpdateFn mutate);

  std::size_t updates_submitted() const { return updates_.size(); }
  std::size_t updates_applied() const { return next_update_; }
  std::size_t pending_updates() const {
    return updates_.size() - next_update_;
  }

  QueryState poll(Ticket t) const;
  /// The answered (or reported-failed, checkpoint-state) query. MS_CHECKs
  /// that the ticket is resolved — poll first. A kShed ticket throws
  /// DeadlineExceededError (typed, replayable: tenant, dataset, admission
  /// clock, deadline) — a shed query has no answer to return, and silence
  /// is not an option.
  const msearch::Query& result(Ticket t) const;
  /// Register a per-query completion callback (replaces any previous one).
  void on_complete(CompletionFn fn) { callback_ = std::move(fn); }

  std::size_t submitted() const { return stream_.size(); }
  std::size_t outstanding() const { return outstanding_; }

  /// Arm per-tenant fault injection: this tenant's batches run under `plan`
  /// (not owned, may be null = fault-free). Other tenants are untouched —
  /// the isolation the fault tests pin.
  void set_fault(mesh::FaultPlan* plan) { fault_ = plan; }
  mesh::FaultPlan* fault() const { return fault_; }

  TenantReport report() const;

 private:
  friend class ServiceScheduler;

  /// One deferred update batch.
  struct PendingUpdate {
    UpdateFn mutate;
    /// Queries admitted before submission; the update waits for them.
    std::size_t barrier = 0;
  };

  /// Largest slice the scheduler may hand the engine right now: mesh
  /// capacity, clamped by quota.max_batch and the fault plan's surviving
  /// capacity.
  std::size_t slice_cap() const;

  /// The next unapplied update exists and its barrier has resolved.
  /// (Queries resolve in admission order, so resolved-count >= barrier is
  /// exactly "everything admitted before the update is done." Shed counts
  /// as resolved: a shed query will never be attempted, so waiting for it
  /// would deadlock the update queue.)
  bool update_ready() const {
    return next_update_ < updates_.size() &&
           completed_ + failed_ + shed_ >= updates_[next_update_].barrier;
  }

  std::string name_;
  Engine* engine_;
  TenantQuota quota_;
  SloPolicy slo_;
  const double* clock_;  ///< service virtual clock (owned by the scheduler)
  /// Owning scheduler (set by add_tenant); source of the DRR-based
  /// retry-after estimate that rides in BackpressureError.
  ServiceScheduler* sched_ = nullptr;

  std::vector<msearch::Query> stream_;   ///< all admitted queries, by ticket
  std::vector<QueryState> state_;        ///< parallel to stream_
  std::vector<double> submit_steps_;     ///< admission clock, parallel
  std::vector<double> resolve_steps_;    ///< resolution clock (0 = pending)
  msearch::BatchSource queue_;           ///< pending work the scheduler drains
  std::size_t outstanding_ = 0;
  mesh::FaultPlan* fault_ = nullptr;     ///< not owned
  CompletionFn callback_;

  // Report accumulators (histograms live here; counters snapshot into
  // TenantReport).
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
  std::size_t shed_ = 0;
  std::size_t failed_fast_ = 0;
  std::size_t rejected_submissions_ = 0;
  std::size_t rejected_queries_ = 0;
  std::size_t rejected_backpressure_ = 0;
  std::size_t brownout_deprioritized_ = 0;
  std::size_t batches_ = 0;
  std::size_t degraded_batches_ = 0;
  std::size_t replans_ = 0;
  std::vector<PendingUpdate> updates_;  ///< all submitted updates, in order
  std::size_t next_update_ = 0;         ///< first unapplied index
  std::size_t incremental_refreshes_ = 0;
  std::size_t full_refreshes_ = 0;
  std::size_t degraded_refreshes_ = 0;
  mesh::Cost inject_;
  mesh::Cost run_;
  mesh::Cost refresh_;
  util::LogHistogram queue_wait_steps_;
  util::LogHistogram latency_steps_;
  util::LogHistogram batch_latency_us_;
};

}  // namespace meshsearch::service
