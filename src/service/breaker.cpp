#include "service/breaker.hpp"

#include <utility>

#include "util/check.hpp"

namespace meshsearch::service {

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

void CircuitBreaker::configure(BreakerPolicy policy) {
  policy_ = policy;
  state_ = BreakerState::kClosed;
  consecutive_ = 0;
  opened_round_ = 0;
}

void CircuitBreaker::admit(std::uint64_t round, const std::string& dataset,
                           const std::string& engine_kind) {
  if (!enabled() || state_ == BreakerState::kClosed) return;
  // kHalfOpen at admit time would mean a probe was dispatched and never
  // resolved — the single-threaded pump resolves every dispatch before the
  // next admit, so treat it like open (defensive, not reachable).
  if (state_ == BreakerState::kOpen && round > opened_round_) {
    state_ = BreakerState::kHalfOpen;
    ++counters_.probes;
    return;  // this dispatch IS the probe
  }
  ErrorContext ctx;
  ctx.engine = "service";
  ctx.phase = "breaker";
  ctx.site = dataset + '/' + engine_kind;
  throw CircuitOpenError(dataset, engine_kind, consecutive_, std::move(ctx));
}

bool CircuitBreaker::record_success() {
  const bool recovered = state_ == BreakerState::kHalfOpen;
  if (recovered) ++counters_.recoveries;
  state_ = BreakerState::kClosed;
  consecutive_ = 0;
  return recovered;
}

bool CircuitBreaker::record_failure(std::uint64_t round) {
  ++consecutive_;
  if (!enabled()) return false;
  const bool probe_failed = state_ == BreakerState::kHalfOpen;
  if (probe_failed || (state_ == BreakerState::kClosed &&
                       consecutive_ >= policy_.failure_threshold)) {
    state_ = BreakerState::kOpen;
    opened_round_ = round;
    ++counters_.trips;
    return true;
  }
  return false;
}

void CircuitBreaker::count_fail_fast(std::size_t queries) {
  ++counters_.fail_fast_batches;
  counters_.fail_fast_queries += queries;
}

}  // namespace meshsearch::service
