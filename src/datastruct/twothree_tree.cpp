#include "datastruct/twothree_tree.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <string>

#include "multisearch/validate.hpp"
#include "util/check.hpp"

namespace meshsearch::ds {

TwoThreeTree::TwoThreeTree(const std::vector<std::int64_t>& keys) {
  // Front door (PR 5 contract): malformed input is caller error and throws
  // InvalidInputError before any construction work, never an MS_CHECK.
  if (keys.empty()) msearch::invalid_input("empty key set", "twothree-tree");
  for (std::size_t i = 1; i < keys.size(); ++i)
    if (!(keys[i - 1] < keys[i]))
      msearch::invalid_input(
          "keys not sorted unique at index " + std::to_string(i),
          "twothree-tree");
  keys_ = keys.size();

  // Bottom-up construction. A level of w nodes is grouped into parents of
  // 2 or 3 children: greedy 3s, switching to 2s when the remainder is 2 or
  // 4 (so no parent ever gets a single child). First pass counts nodes.
  auto parents_of = [](std::size_t w) {
    std::size_t parents = 0, i = 0;
    while (i < w) {
      const std::size_t rest = w - i;
      i += (rest == 2 || rest == 4) ? 2 : 3;
      ++parents;
    }
    return parents;
  };
  std::size_t total = keys.size();
  for (std::size_t w = keys.size(); w > 1; w = parents_of(w))
    total += parents_of(w);
  g_ = DistributedGraph(total);

  // Second pass: materialize nodes level by level, leaves first.
  std::vector<Vid> cur(keys.size());
  std::vector<std::int64_t> cur_min(keys.size());
  Vid next_vid = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const Vid v = next_vid++;
    cur[i] = v;
    cur_min[i] = keys[i];
    auto& rec = g_.vert(v);
    rec.key[0] = keys[i];
    rec.key[6] = 0;
  }
  height_ = 0;
  while (cur.size() > 1) {
    ++height_;
    std::vector<Vid> up;
    std::vector<std::int64_t> up_min;
    std::size_t i = 0;
    const std::size_t w = cur.size();
    while (i < w) {
      std::size_t take;
      const std::size_t rest = w - i;
      if (rest == 2 || rest == 4)
        take = 2;
      else
        take = 3;
      const Vid v = next_vid++;
      auto& rec = g_.vert(v);
      rec.key[6] = static_cast<std::int64_t>(take);
      for (std::size_t c = 0; c < take; ++c) {
        g_.add_edge(v, cur[i + c]);
        if (c >= 1) rec.key[c - 1] = cur_min[i + c];
      }
      up.push_back(v);
      up_min.push_back(cur_min[i]);
      i += take;
    }
    cur = std::move(up);
    cur_min = std::move(up_min);
  }
  root_ = cur[0];
  MS_CHECK(static_cast<std::size_t>(next_vid) == total);

  // Depth labels via BFS from the root.
  std::deque<Vid> frontier{root_};
  g_.vert(root_).level = 0;
  while (!frontier.empty()) {
    const Vid u = frontier.front();
    frontier.pop_front();
    const auto& rec = g_.vert(u);
    for (std::uint8_t d = 0; d < rec.degree; ++d) {
      g_.vert(rec.nbr[d]).level = rec.level + 1;
      frontier.push_back(rec.nbr[d]);
    }
  }
  g_.validate();
}

Vid TwoThreeTree::Lookup::next(const VertexRecord& v, Query& q) const {
  const std::int64_t x = q.key[0];
  if (v.key[6] == 0) {
    q.result = v.id;
    q.acc0 = v.key[0] == x ? 1 : 0;
    q.acc1 = v.key[0] <= x ? v.key[0]
                           : std::numeric_limits<std::int64_t>::min();
    return kNoVertex;
  }
  const auto nc = static_cast<unsigned>(v.key[6]);
  unsigned c = 0;
  while (c + 1 < nc && v.key[c] <= x) ++c;
  return v.nbr[c];
}

Splitting TwoThreeTree::alpha_splitting() const {
  Splitting s;
  s.piece.assign(g_.vertex_count(), 0);
  const std::int32_t d = std::max<std::int32_t>(1, (height_ + 1) / 2);
  // BFS labelling: every depth-d vertex roots its own tail piece.
  std::int32_t next_piece = 1;
  std::deque<std::pair<Vid, std::int32_t>> frontier{{root_, 0}};
  while (!frontier.empty()) {
    const auto [u, pc] = frontier.front();
    frontier.pop_front();
    const auto& rec = g_.vert(u);
    std::int32_t here = pc;
    if (rec.level == d && pc == 0) here = next_piece++;
    s.piece[static_cast<std::size_t>(u)] = here;
    for (std::uint8_t c = 0; c < rec.degree; ++c)
      frontier.emplace_back(rec.nbr[c], here);
  }
  s.kind.assign(static_cast<std::size_t>(next_piece),
                msearch::PieceKind::kTail);
  s.kind[0] = msearch::PieceKind::kHead;
  if (height_ == 0) s.kind[0] = msearch::PieceKind::kHead;
  s.delta = std::log(static_cast<double>(
                std::max<std::size_t>(2, msearch::max_piece_size(s)))) /
            std::log(std::max<double>(2.0,
                                      static_cast<double>(g_.vertex_count())));
  return s;
}

}  // namespace meshsearch::ds
