#include "datastruct/segment_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "mesh/snake.hpp"
#include "multisearch/validate.hpp"
#include "util/check.hpp"

namespace meshsearch::ds {

namespace {
constexpr std::int64_t kSentinel = std::numeric_limits<std::int64_t>::max();
}

// Elementary pieces over the E distinct endpoints e_0 < ... < e_{E-1}:
//   piece 2i+1 = the point [e_i, e_i], pieces 2i / 2E = the open gaps.
// An interval [l, r] covers pieces [2*idx(l)+1, 2*idx(r)+1]; a stabbing
// point x lies in exactly one piece. Internal nodes store the coordinate
// test that decides the descent (x < e or x <= e), so the query program
// needs nothing but the node record.
SegmentTree::SegmentTree(const std::vector<Interval>& intervals) {
  // Front door (PR 5 contract): malformed input is caller error and throws
  // InvalidInputError before any construction work, never an MS_CHECK.
  if (intervals.empty())
    msearch::invalid_input("empty interval set", "segment-tree");
  coords_.reserve(2 * intervals.size());
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const auto& iv = intervals[i];
    if (iv.lo > iv.hi)
      msearch::invalid_input(
          "interval " + std::to_string(i) + " has lo > hi", "segment-tree");
    coords_.push_back(iv.lo);
    coords_.push_back(iv.hi);
  }
  std::sort(coords_.begin(), coords_.end());
  coords_.erase(std::unique(coords_.begin(), coords_.end()), coords_.end());
  const std::size_t pieces = 2 * coords_.size() + 1;
  const std::size_t leaves = mesh::ceil_pow2(pieces);
  const std::size_t total = 2 * leaves - 1;
  const std::size_t leaf_off = leaves - 1;
  height_ = static_cast<std::int32_t>(mesh::floor_log2(leaves));

  g_ = DistributedGraph(total);
  for (std::size_t t = 0; t < total; ++t) {
    auto& rec = g_.vert(static_cast<Vid>(t));
    rec.level = static_cast<std::int32_t>(mesh::floor_log2(t + 1));
    rec.key[2] = 0;
    if (t >= leaf_off) {
      rec.key[6] = 0;
      continue;
    }
    rec.key[6] = 2;
    // Boundary piece index: the first leaf of the right subtree.
    std::size_t x = 2 * t + 2;
    while (x < leaf_off) x = 2 * x + 1;
    const std::size_t b = x - leaf_off;
    if (b >= pieces || b == 0) {
      rec.key[0] = kSentinel;  // split inside the padding: everything left
      rec.key[1] = 1;
    } else if (b % 2 == 1) {   // gap | point e_{(b-1)/2}
      rec.key[0] = coords_[(b - 1) / 2];
      rec.key[1] = 0;  // left iff x < e
    } else {                   // point e_{b/2-1} | gap
      rec.key[0] = coords_[b / 2 - 1];
      rec.key[1] = 1;  // left iff x <= e
    }
    g_.add_edge(static_cast<Vid>(t), static_cast<Vid>(2 * t + 1));
    g_.add_edge(static_cast<Vid>(t), static_cast<Vid>(2 * t + 2));
  }

  // Canonical-set insertion: count++ at every maximal node whose leaf range
  // is covered by the interval's piece range.
  auto idx_of = [&](std::int64_t v) {
    return static_cast<std::size_t>(
        std::lower_bound(coords_.begin(), coords_.end(), v) -
        coords_.begin());
  };
  for (const auto& iv : intervals) {
    const std::size_t a = 2 * idx_of(iv.lo) + 1;
    const std::size_t b = 2 * idx_of(iv.hi) + 1;
    // Iterative cover: walk down from the root with a small explicit stack.
    struct Frame {
      std::size_t t, lo, hi;
    };
    std::vector<Frame> stack{{0, 0, leaves - 1}};
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      if (f.hi < a || f.lo > b) continue;
      if (a <= f.lo && f.hi <= b) {
        ++g_.vert(static_cast<Vid>(f.t)).key[2];
        continue;
      }
      const std::size_t mid = (f.lo + f.hi) / 2;
      stack.push_back({2 * f.t + 1, f.lo, mid});
      stack.push_back({2 * f.t + 2, mid + 1, f.hi});
    }
  }
  g_.validate();
}

Vid SegmentTree::StabCount::next(const VertexRecord& v, Query& q) const {
  q.acc0 += v.key[2];
  if (v.key[6] == 0) return kNoVertex;
  const bool left =
      v.key[1] ? q.key[0] <= v.key[0] : q.key[0] < v.key[0];
  return v.nbr[left ? 0 : 1];
}

Splitting SegmentTree::alpha_splitting() const {
  Splitting s;
  const std::int32_t d = std::max<std::int32_t>(1, (height_ + 1) / 2);
  s.piece.assign(g_.vertex_count(), 0);
  const std::size_t cut_off = (std::size_t{1} << d) - 1;
  for (std::size_t t = 0; t < g_.vertex_count(); ++t) {
    std::int32_t depth = static_cast<std::int32_t>(mesh::floor_log2(t + 1));
    if (depth < d) continue;
    std::size_t a = t;
    while (depth > d) {
      a = (a - 1) / 2;
      --depth;
    }
    s.piece[t] = 1 + static_cast<std::int32_t>(a - cut_off);
  }
  s.kind.assign(1 + (std::size_t{1} << d), msearch::PieceKind::kTail);
  s.kind[0] = msearch::PieceKind::kHead;
  s.delta = std::log(static_cast<double>(
                std::max<std::size_t>(2, msearch::max_piece_size(s)))) /
            std::log(std::max<double>(2.0,
                                      static_cast<double>(g_.vertex_count())));
  return s;
}

}  // namespace meshsearch::ds
