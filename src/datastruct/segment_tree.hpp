// Static segment trees on the mesh — a further §6-style application of
// multisearch for alpha-partitionable directed graphs.
//
// The segment tree over the 2n interval endpoints stores, at each node, the
// number of input intervals whose span covers the node's elementary range
// entirely but not its parent's (the canonical-set count). A stabbing-count
// query then accumulates the counts along one root-to-leaf path: a pure
// directed descent, i.e. exactly the Theorem-5 setting, and an independent
// cross-check of the interval-tree results (both answer |{i : x in
// [l_i, r_i]}|, by totally different decompositions).
//
// Payload layout (VertexRecord::key):
//   key[0] = range low, key[1] = range high (inclusive elementary range),
//   key[2] = canonical count, key[6] = child count (0 for leaves).
// nbr[0..1] = children. level = depth.
#pragma once

#include <cstdint>
#include <vector>

#include "datastruct/interval_tree.hpp"  // Interval
#include "multisearch/graph.hpp"
#include "multisearch/splitter.hpp"

namespace meshsearch::ds {

class SegmentTree {
 public:
  explicit SegmentTree(const std::vector<Interval>& intervals);

  const DistributedGraph& graph() const { return g_; }
  Vid root() const { return 0; }
  std::int32_t height() const { return height_; }

  /// Stabbing-count program: q.key[0] = x. Result: q.acc0 = number of
  /// intervals containing x.
  struct StabCount {
    Vid root;
    Vid start(Query&) const { return root; }
    Vid next(const VertexRecord& v, Query& q) const;
  };
  StabCount stab_count() const { return StabCount{root()}; }

  /// Alpha-splitting at half height (Figure 2 applied to this tree).
  Splitting alpha_splitting() const;

 private:
  DistributedGraph g_;
  std::int32_t height_ = 0;
  std::vector<std::int64_t> coords_;  ///< sorted distinct endpoints
};

}  // namespace meshsearch::ds
