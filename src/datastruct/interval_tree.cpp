#include "datastruct/interval_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "mesh/snake.hpp"
#include "multisearch/validate.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace meshsearch::ds {

namespace {

constexpr std::int64_t kSentinel = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kAntiSentinel =
    std::numeric_limits<std::int64_t>::min();

// Vertex type tags (VertexRecord::key[6]).
constexpr std::int64_t kInternal = 0;
constexpr std::int64_t kLeaf = 1;
constexpr std::int64_t kChain = 2;

}  // namespace

IntervalTree::IntervalTree(std::vector<Interval> intervals,
                           std::size_t chain_slack)
    : intervals_(std::move(intervals)), slack_(chain_slack) {
  if (intervals_.empty())
    msearch::invalid_input("empty interval set", "interval-tree");
  for (std::size_t i = 0; i < intervals_.size(); ++i)
    if (intervals_[i].lo > intervals_[i].hi)
      msearch::invalid_input(
          "interval " + std::to_string(i) + " has lo > hi", "interval-tree");
  build();
}

Vid IntervalTree::assign_node(const Interval& iv) const {
  // Highest node whose split the interval straddles (or the leaf the
  // descent bottoms out at). Pure function of (iv, pts_), so build-time
  // assignments can be recomputed for deletes at update time.
  std::size_t t = 0;
  while (t < leaf_offset_) {
    std::size_t x = 2 * t + 1;  // last leaf of the left subtree
    while (x < leaf_offset_) x = 2 * x + 2;
    x -= leaf_offset_;
    const std::int64_t m = x < pts_.size() ? pts_[x] : kSentinel;
    if (iv.hi <= m)
      t = 2 * t + 1;
    else if (iv.lo > m)
      t = 2 * t + 2;
    else
      break;
  }
  return static_cast<Vid>(t);
}

void IntervalTree::build() {
  // Distinct endpoints, padded to a power of two.
  pts_.clear();
  pts_.reserve(2 * intervals_.size());
  for (const auto& iv : intervals_) {
    pts_.push_back(iv.lo);
    pts_.push_back(iv.hi);
  }
  std::sort(pts_.begin(), pts_.end());
  pts_.erase(std::unique(pts_.begin(), pts_.end()), pts_.end());
  const std::size_t leaves = mesh::ceil_pow2(pts_.size());
  tree_nodes_ = 2 * leaves - 1;
  leaf_offset_ = leaves - 1;
  tree_height_ = static_cast<std::int32_t>(mesh::floor_log2(leaves));

  auto leaf_value = [&](std::size_t j) {
    return j < pts_.size() ? pts_[j] : kSentinel;
  };
  // split(t) = value of the last leaf of t's left subtree.
  auto last_left_leaf = [&](std::size_t t) {
    std::size_t x = 2 * t + 1;  // left child
    while (x < leaf_offset_) x = 2 * x + 2;
    return x - leaf_offset_;
  };

  // Assign each interval to the highest node whose split it straddles.
  // `assigned` carries indices for the build; node_ids_ carries the stable
  // ids the update path works in.
  std::vector<std::vector<std::int32_t>> assigned(tree_nodes_);
  node_ids_.assign(tree_nodes_, {});
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    const auto t = static_cast<std::size_t>(assign_node(intervals_[i]));
    assigned[t].push_back(static_cast<std::int32_t>(i));
    node_ids_[t].push_back(intervals_[i].id);
  }

  // Build chains: per node, an L-chain (ascending lo) and an R-chain
  // (descending hi), each with `slack_` spare vertices after the real ones
  // (nodes storing no intervals get no chains at all). Count first.
  auto cap_of = [&](std::size_t t) -> std::uint32_t {
    return assigned[t].empty()
               ? 0
               : static_cast<std::uint32_t>(assigned[t].size() + slack_);
  };
  std::size_t chain_total = 0;
  for (std::size_t t = 0; t < tree_nodes_; ++t) chain_total += 2 * cap_of(t);
  const std::uint64_t gen = g_.generation();
  g_ = DistributedGraph(tree_nodes_ + chain_total);
  g_.set_generation(gen);
  chain_owner_.assign(chain_total, kNoVertex);
  chain_pos_.assign(chain_total, 0);
  lchain_.assign(tree_nodes_, ChainMeta{});
  rchain_.assign(tree_nodes_, ChainMeta{});

  // Tree node records (vid == heap index).
  for (std::size_t t = 0; t < tree_nodes_; ++t) {
    auto& rec = g_.vert(static_cast<Vid>(t));
    const bool leaf = t >= leaf_offset_;
    rec.key[6] = leaf ? kLeaf : kInternal;
    rec.key[0] = leaf ? leaf_value(t - leaf_offset_)
                      : leaf_value(last_left_leaf(t));
    rec.key[1] = -1;  // nbr index of L-chain head
    rec.key[2] = -1;  // nbr index of R-chain head
    rec.key[3] = -1;  // nbr index of parent
    rec.level = static_cast<std::int32_t>(mesh::floor_log2(t + 1));
  }

  // Primary tree edges. Adjacency order matters to the search program:
  // every node lists its children first (nbr[0] = left, nbr[1] = right),
  // then its parent, then any chain heads — so the down edges are added for
  // all nodes before any up edge, one direction at a time.
  for (std::size_t t = 0; t < leaf_offset_; ++t) {
    g_.add_edge(static_cast<Vid>(t), static_cast<Vid>(2 * t + 1));
    g_.add_edge(static_cast<Vid>(t), static_cast<Vid>(2 * t + 2));
  }
  for (std::size_t t = 1; t < tree_nodes_; ++t) {
    auto& rec = g_.vert(static_cast<Vid>(t));
    rec.key[3] = rec.degree;  // parent's slot
    g_.add_edge(static_cast<Vid>(t), static_cast<Vid>((t - 1) / 2));
  }

  // Chain vertices: `cap` consecutive vids per chain, real nodes first,
  // inert spares after. The last real node's has_next is 0, so spares are
  // never visited; their payloads are inert anyway (a left spare's lo is
  // +inf, a right spare's hi is -inf — in_order fails for any query).
  Vid next_vid = static_cast<Vid>(tree_nodes_);
  auto build_chain = [&](Vid owner, std::vector<std::int32_t> idxs,
                         bool left_chain, ChainMeta& meta) {
    const std::uint32_t cap = cap_of(static_cast<std::size_t>(owner));
    if (cap == 0) return;
    if (left_chain)
      std::sort(idxs.begin(), idxs.end(), [&](std::int32_t a, std::int32_t b) {
        const auto& ia = intervals_[static_cast<std::size_t>(a)];
        const auto& ib = intervals_[static_cast<std::size_t>(b)];
        return ia.lo != ib.lo ? ia.lo < ib.lo : a < b;
      });
    else
      std::sort(idxs.begin(), idxs.end(), [&](std::int32_t a, std::int32_t b) {
        const auto& ia = intervals_[static_cast<std::size_t>(a)];
        const auto& ib = intervals_[static_cast<std::size_t>(b)];
        return ia.hi != ib.hi ? ia.hi > ib.hi : a < b;
      });
    meta.first = next_vid;
    meta.cap = cap;
    meta.used = static_cast<std::uint32_t>(idxs.size());
    Vid prev = owner;
    for (std::size_t j = 0; j < cap; ++j) {
      const Vid cv = next_vid++;
      auto& rec = g_.vert(cv);
      if (j < idxs.size()) {
        const auto& iv = intervals_[static_cast<std::size_t>(idxs[j])];
        rec.key[0] = iv.lo;
        rec.key[1] = iv.hi;
        rec.key[2] = j + 1 < idxs.size() ? 1 : 0;  // has_next
        rec.key[4] = iv.id;
      } else {
        rec.key[0] = kSentinel;      // spare: in_order fails on the L side
        rec.key[1] = kAntiSentinel;  // ... and on the R side
        rec.key[2] = 0;
        rec.key[4] = -1;
      }
      rec.key[3] = left_chain ? 0 : 1;  // chain kind
      rec.key[6] = kChain;
      rec.level = g_.vert(owner).level;
      chain_owner_[static_cast<std::size_t>(cv) - tree_nodes_] = owner;
      chain_pos_[static_cast<std::size_t>(cv) - tree_nodes_] =
          static_cast<std::uint32_t>(j);
      // Edge to predecessor: appended as the chain node's nbr[0]; the head
      // position within the owner is recorded in the owner's key[1]/key[2].
      if (j == 0) {
        auto& orec = g_.vert(owner);
        const std::int64_t slot = orec.degree;  // where cv will land
        g_.add_undirected_edge(owner, cv);
        meta.head_slot = slot;
        (left_chain ? orec.key[1] : orec.key[2]) = slot;
      } else {
        g_.add_undirected_edge(prev, cv);
      }
      prev = cv;
    }
  };
  for (std::size_t t = 0; t < tree_nodes_; ++t) {
    build_chain(static_cast<Vid>(t), assigned[t], /*left_chain=*/true,
                lchain_[t]);
    build_chain(static_cast<Vid>(t), assigned[t], /*left_chain=*/false,
                rchain_[t]);
  }
  MS_CHECK(static_cast<std::size_t>(next_vid) == g_.vertex_count());
  g_.validate();
}

void IntervalTree::rewrite_chain(
    Vid t, bool left_chain, const std::vector<std::int32_t>& ids,
    const std::vector<std::pair<std::int32_t, std::size_t>>& id_index,
    std::vector<Vid>& dirty) {
  ChainMeta& meta = left_chain ? lchain_[static_cast<std::size_t>(t)]
                               : rchain_[static_cast<std::size_t>(t)];
  MS_CHECK_MSG(ids.size() <= meta.cap, "chain rewrite exceeds capacity");
  auto interval_of = [&](std::int32_t id) -> const Interval& {
    const auto it = std::lower_bound(
        id_index.begin(), id_index.end(), id,
        [](const std::pair<std::int32_t, std::size_t>& a, std::int32_t b) {
          return a.first < b;
        });
    MS_CHECK(it != id_index.end() && it->first == id);
    return intervals_[it->second];
  };
  std::vector<std::int32_t> sorted = ids;
  if (left_chain)
    std::sort(sorted.begin(), sorted.end(),
              [&](std::int32_t a, std::int32_t b) {
                const auto &ia = interval_of(a), &ib = interval_of(b);
                return ia.lo != ib.lo ? ia.lo < ib.lo : a < b;
              });
  else
    std::sort(sorted.begin(), sorted.end(),
              [&](std::int32_t a, std::int32_t b) {
                const auto &ia = interval_of(a), &ib = interval_of(b);
                return ia.hi != ib.hi ? ia.hi > ib.hi : a < b;
              });
  for (std::size_t j = 0; j < meta.cap; ++j) {
    auto& rec = g_.vert(meta.first + static_cast<Vid>(j));
    std::int64_t lo, hi, has_next, id;
    if (j < sorted.size()) {
      const Interval& iv = interval_of(sorted[j]);
      lo = iv.lo;
      hi = iv.hi;
      has_next = j + 1 < sorted.size() ? 1 : 0;
      id = iv.id;
    } else {
      lo = kSentinel;
      hi = kAntiSentinel;
      has_next = 0;
      id = -1;
    }
    if (rec.key[0] != lo || rec.key[1] != hi || rec.key[2] != has_next ||
        rec.key[4] != id) {
      rec.key[0] = lo;
      rec.key[1] = hi;
      rec.key[2] = has_next;
      rec.key[4] = id;
      dirty.push_back(meta.first + static_cast<Vid>(j));
    }
  }
  // An emptied chain parks the owner's head index at -1 (the query then
  // skips the detour entirely, like a node that never had intervals); the
  // first insert restores the recorded slot.
  auto& orec = g_.vert(t);
  std::int64_t& head = left_chain ? orec.key[1] : orec.key[2];
  const std::int64_t want = sorted.empty() ? -1 : meta.head_slot;
  if (head != want) {
    head = want;
    dirty.push_back(t);
  }
  meta.used = static_cast<std::uint32_t>(sorted.size());
}

msearch::StructureDelta IntervalTree::apply_updates(
    const std::vector<Interval>& inserts,
    const std::vector<std::int32_t>& delete_ids) {
  // id -> index of the live set. Dynamic updates address intervals by id,
  // so the live ids must be unique (static construction never needed that).
  auto make_id_index = [&] {
    std::vector<std::pair<std::int32_t, std::size_t>> idx;
    idx.reserve(intervals_.size());
    for (std::size_t i = 0; i < intervals_.size(); ++i)
      idx.emplace_back(intervals_[i].id, i);
    std::sort(idx.begin(), idx.end());
    for (std::size_t i = 1; i < idx.size(); ++i)
      if (idx[i - 1].first == idx[i].first)
        msearch::invalid_input(
            "interval ids not unique (id " + std::to_string(idx[i].first) +
                "); dynamic updates address intervals by id",
            "interval-tree.apply_updates");
    return idx;
  };
  std::vector<std::pair<std::int32_t, std::size_t>> id_index = make_id_index();
  auto find_id = [&](std::int32_t id) -> const Interval* {
    const auto it = std::lower_bound(
        id_index.begin(), id_index.end(), id,
        [](const std::pair<std::int32_t, std::size_t>& a, std::int32_t b) {
          return a.first < b;
        });
    if (it == id_index.end() || it->first != id) return nullptr;
    return &intervals_[it->second];
  };

  // Front door: validate the whole batch before mutating anything.
  std::vector<std::int32_t> dels = delete_ids;
  std::sort(dels.begin(), dels.end());
  for (std::size_t i = 1; i < dels.size(); ++i)
    if (dels[i - 1] == dels[i])
      msearch::invalid_input("duplicate delete id " + std::to_string(dels[i]),
                             "interval-tree.apply_updates");
  for (const std::int32_t id : dels)
    if (find_id(id) == nullptr)
      msearch::invalid_input("delete of missing interval id " +
                                 std::to_string(id),
                             "interval-tree.apply_updates");
  {
    std::vector<std::int32_t> ins_ids;
    ins_ids.reserve(inserts.size());
    for (const auto& iv : inserts) {
      if (iv.lo > iv.hi)
        msearch::invalid_input("insert interval id " + std::to_string(iv.id) +
                                   " has lo > hi",
                               "interval-tree.apply_updates");
      ins_ids.push_back(iv.id);
    }
    std::sort(ins_ids.begin(), ins_ids.end());
    for (std::size_t i = 1; i < ins_ids.size(); ++i)
      if (ins_ids[i - 1] == ins_ids[i])
        msearch::invalid_input(
            "duplicate insert id " + std::to_string(ins_ids[i]),
            "interval-tree.apply_updates");
    // An id may be deleted and re-inserted in one batch; otherwise it must
    // not collide with a surviving interval.
    for (const std::int32_t id : ins_ids)
      if (find_id(id) != nullptr &&
          !std::binary_search(dels.begin(), dels.end(), id))
        msearch::invalid_input(
            "insert id " + std::to_string(id) + " already present",
            "interval-tree.apply_updates");
  }
  if (intervals_.size() - dels.size() + inserts.size() == 0)
    msearch::invalid_input("update batch would empty the interval set",
                           "interval-tree.apply_updates");

  msearch::StructureDelta delta;
  delta.inserts = inserts.size();
  delta.deletes = delete_ids.size();

  // Which nodes change, and their net occupancy. Deletes recompute their
  // node by the same pure straddle-descent that placed them.
  std::map<Vid, std::ptrdiff_t> occupancy_change;
  std::map<Vid, std::vector<std::int32_t>> node_dels;
  std::map<Vid, std::vector<Interval>> node_ins;
  for (const std::int32_t id : dels) {
    const Vid t = assign_node(*find_id(id));
    occupancy_change[t] -= 1;
    node_dels[t].push_back(id);
  }
  for (const auto& iv : inserts) {
    const Vid t = assign_node(iv);
    occupancy_change[t] += 1;
    node_ins[t].push_back(iv);
  }
  bool fits = true;
  for (const auto& [t, change] : occupancy_change) {
    (void)change;
    const auto ts = static_cast<std::size_t>(t);
    const std::size_t del_here =
        node_dels.count(t) ? node_dels[t].size() : 0;
    const std::size_t ins_here = node_ins.count(t) ? node_ins[t].size() : 0;
    const std::size_t after = node_ids_[ts].size() - del_here + ins_here;
    if (after > lchain_[ts].cap || after > rchain_[ts].cap) {
      fits = false;
      break;
    }
  }

  // Apply the batch to the live set (deletes first, inserts appended).
  {
    std::vector<Interval> survivors;
    survivors.reserve(intervals_.size() - dels.size() + inserts.size());
    for (const auto& iv : intervals_)
      if (!std::binary_search(dels.begin(), dels.end(), iv.id))
        survivors.push_back(iv);
    for (const auto& iv : inserts) survivors.push_back(iv);
    intervals_ = std::move(survivors);
  }

  if (!fits) {
    // A touched chain would overflow (or the node never had chains): full
    // in-place rebuild over the new endpoint set, same slack policy. The
    // DistributedGraph member keeps its address; the generation stamp
    // survives the assignment inside build().
    build();
    g_.bump_generation();
    delta.topology_changed = true;
    delta.generation = g_.generation();
    return delta;
  }

  // Incremental path: rewrite the touched nodes' chains in place.
  id_index = make_id_index();  // indices shifted with the erase/append
  std::vector<Vid> dirty;
  for (const auto& [t, change] : occupancy_change) {
    (void)change;
    const auto ts = static_cast<std::size_t>(t);
    auto& ids = node_ids_[ts];
    if (node_dels.count(t)) {
      const auto& dd = node_dels[t];
      ids.erase(std::remove_if(ids.begin(), ids.end(),
                               [&](std::int32_t id) {
                                 return std::binary_search(dd.begin(),
                                                           dd.end(), id);
                               }),
                ids.end());
    }
    if (node_ins.count(t))
      for (const auto& iv : node_ins[t]) ids.push_back(iv.id);
    rewrite_chain(t, /*left_chain=*/true, ids, id_index, dirty);
    rewrite_chain(t, /*left_chain=*/false, ids, id_index, dirty);
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  delta.dirty_vertices = std::move(dirty);
  g_.bump_generation();
  delta.generation = g_.generation();
  return delta;
}

// ---------------------------------------------------------------------------
// stabbing program
// ---------------------------------------------------------------------------
//
// States: 0 = fresh arrival at a tree node, 1 = walking down a chain,
//         2 = walking back up a chain / arrived back with the detour done.

Vid IntervalTree::Stabbing::start(Query&) const { return root; }

Vid IntervalTree::Stabbing::next(const VertexRecord& v, Query& q) const {
  const std::int64_t x = q.key[0];
  if (v.key[6] == kChain) {
    if (q.state == 2) return v.nbr[0];  // keep climbing back
    const bool left_chain = v.key[3] == 0;
    const bool in_order = left_chain ? v.key[0] <= x : v.key[1] >= x;
    if (!in_order) {  // sorted prefix exhausted: turn around
      q.state = 2;
      return v.nbr[0];
    }
    if (v.key[0] <= x && x <= v.key[1]) {  // a hit
      q.acc0 += 1;
      q.acc1 ^= static_cast<std::int64_t>(
          util::mix64(static_cast<std::uint64_t>(v.key[4])));
    }
    if (v.key[2] == 0) {  // chain end: turn around
      q.state = 2;
      return v.nbr[0];
    }
    return v.nbr[1];  // continue down the chain
  }
  // Tree node.
  const bool leaf = v.key[6] == kLeaf;
  const bool go_left = x <= v.key[0];
  if (q.state == 0) {  // fresh arrival: detour into the relevant chain
    const std::int64_t head = go_left ? v.key[1] : v.key[2];
    if (head >= 0) {
      q.state = 1;
      return v.nbr[static_cast<std::size_t>(head)];
    }
  }
  // Chain done (or absent): descend.
  q.state = 0;
  if (leaf) return kNoVertex;
  return v.nbr[go_left ? 0 : 1];
}

// ---------------------------------------------------------------------------
// splittings
// ---------------------------------------------------------------------------

std::pair<Splitting, Splitting> IntervalTree::alpha_beta_splittings() const {
  const std::size_t n = g_.vertex_count();
  const std::uint32_t period = static_cast<std::uint32_t>(std::max<double>(
      4.0, std::ceil(std::sqrt(static_cast<double>(n)))));
  const std::int32_t d1 = std::max<std::int32_t>(1, (tree_height_ + 1) / 2);
  std::int32_t d2 = std::max<std::int32_t>(1, (tree_height_ + 1) / 3);
  // Cut levels >= 2 apart so the primary-tree borders never touch.
  if (d2 > d1 - 2) d2 = std::max<std::int32_t>(1, d1 - 2);

  auto tree_label = [&](std::size_t t, std::int32_t d) -> std::int32_t {
    // 0 for depth < d, else 1 + index of the depth-d ancestor.
    std::int32_t depth = static_cast<std::int32_t>(mesh::floor_log2(t + 1));
    if (depth < d) return 0;
    std::size_t a = t;
    while (depth > d) {
      a = (a - 1) / 2;
      --depth;
    }
    return 1 + static_cast<std::int32_t>(a - ((std::size_t{1} << d) - 1));
  };

  auto make = [&](std::int32_t d, bool attach_prefix) {
    Splitting s;
    s.piece.assign(n, -1);
    std::int32_t next_piece = 1 + (1 << d);  // tree pieces come first
    // Tree nodes.
    for (std::size_t t = 0; t < tree_nodes_; ++t)
      s.piece[t] = tree_label(t, d);
    // Chain nodes: segment pieces of `period` nodes; with attach_prefix the
    // first half-period of each chain joins its owner's tree piece.
    std::vector<std::pair<std::int64_t, std::int32_t>> seg_ids;
    auto seg_id_for = [&](Vid owner, std::uint32_t seg) {
      const std::int64_t key =
          static_cast<std::int64_t>(owner) * (1 << 24) + seg;
      if (!seg_ids.empty() && seg_ids.back().first == key)
        return seg_ids.back().second;
      seg_ids.emplace_back(key, next_piece);
      return next_piece++;
    };
    for (std::size_t c = 0; c < chain_owner_.size(); ++c) {
      const std::size_t vtx = tree_nodes_ + c;
      const std::uint32_t pos = chain_pos_[c];
      const Vid owner = chain_owner_[c];
      if (attach_prefix && pos < period / 2) {
        s.piece[vtx] = s.piece[static_cast<std::size_t>(owner)];
      } else {
        const std::uint32_t shifted = attach_prefix ? pos - period / 2 : pos;
        s.piece[vtx] = seg_id_for(owner, shifted / period);
      }
    }
    s.kind.assign(static_cast<std::size_t>(next_piece),
                  msearch::PieceKind::kPlain);
    s.delta = std::log(static_cast<double>(
                  std::max<std::size_t>(2, msearch::max_piece_size(s)))) /
              std::log(std::max<double>(2.0, static_cast<double>(n)));
    return s;
  };
  return {make(d1, /*attach_prefix=*/false), make(d2, /*attach_prefix=*/true)};
}

// ---------------------------------------------------------------------------
// oracles
// ---------------------------------------------------------------------------

std::pair<std::int64_t, std::int64_t> IntervalTree::stab_oracle(
    const std::vector<Interval>& intervals, std::int64_t x) {
  std::int64_t count = 0, checksum = 0;
  for (const auto& iv : intervals)
    if (iv.lo <= x && x <= iv.hi) {
      ++count;
      checksum ^= static_cast<std::int64_t>(
          util::mix64(static_cast<std::uint64_t>(iv.id)));
    }
  return {count, checksum};
}

std::int64_t intersect_count_oracle(const std::vector<Interval>& intervals,
                                    std::int64_t a, std::int64_t b) {
  std::int64_t count = 0;
  for (const auto& iv : intervals)
    if (iv.lo <= b && iv.hi >= a) ++count;
  return count;
}

}  // namespace meshsearch::ds
