#include "datastruct/interval_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mesh/snake.hpp"
#include "multisearch/validate.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace meshsearch::ds {

namespace {

constexpr std::int64_t kSentinel = std::numeric_limits<std::int64_t>::max();

// Vertex type tags (VertexRecord::key[6]).
constexpr std::int64_t kInternal = 0;
constexpr std::int64_t kLeaf = 1;
constexpr std::int64_t kChain = 2;

}  // namespace

IntervalTree::IntervalTree(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  if (intervals_.empty())
    msearch::invalid_input("empty interval set", "interval-tree");
  for (std::size_t i = 0; i < intervals_.size(); ++i)
    if (intervals_[i].lo > intervals_[i].hi)
      msearch::invalid_input(
          "interval " + std::to_string(i) + " has lo > hi", "interval-tree");

  // Distinct endpoints, padded to a power of two.
  std::vector<std::int64_t> pts;
  pts.reserve(2 * intervals_.size());
  for (const auto& iv : intervals_) {
    pts.push_back(iv.lo);
    pts.push_back(iv.hi);
  }
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const std::size_t leaves = mesh::ceil_pow2(pts.size());
  tree_nodes_ = 2 * leaves - 1;
  leaf_offset_ = leaves - 1;
  tree_height_ = static_cast<std::int32_t>(mesh::floor_log2(leaves));

  auto leaf_value = [&](std::size_t j) {
    return j < pts.size() ? pts[j] : kSentinel;
  };
  // split(t) = value of the last leaf of t's left subtree.
  auto last_left_leaf = [&](std::size_t t) {
    std::size_t x = 2 * t + 1;  // left child
    while (x < leaf_offset_) x = 2 * x + 2;
    return x - leaf_offset_;
  };

  // Assign each interval to the highest node whose split it straddles.
  std::vector<std::vector<std::int32_t>> assigned(tree_nodes_);
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    std::size_t t = 0;
    while (t < leaf_offset_) {
      const std::int64_t m = leaf_value(last_left_leaf(t));
      if (intervals_[i].hi <= m)
        t = 2 * t + 1;
      else if (intervals_[i].lo > m)
        t = 2 * t + 2;
      else
        break;
    }
    assigned[t].push_back(static_cast<std::int32_t>(i));
  }

  // Build chains: per node, an L-chain (ascending lo) and an R-chain
  // (descending hi). Count chain vertices first.
  std::size_t chain_total = 0;
  for (const auto& a : assigned) chain_total += 2 * a.size();
  g_ = DistributedGraph(tree_nodes_ + chain_total);
  chain_owner_.assign(chain_total, kNoVertex);
  chain_pos_.assign(chain_total, 0);

  // Tree node records (vid == heap index).
  for (std::size_t t = 0; t < tree_nodes_; ++t) {
    auto& rec = g_.vert(static_cast<Vid>(t));
    const bool leaf = t >= leaf_offset_;
    rec.key[6] = leaf ? kLeaf : kInternal;
    rec.key[0] = leaf ? leaf_value(t - leaf_offset_)
                      : leaf_value(last_left_leaf(t));
    rec.key[1] = -1;  // nbr index of L-chain head
    rec.key[2] = -1;  // nbr index of R-chain head
    rec.key[3] = -1;  // nbr index of parent
    rec.level = static_cast<std::int32_t>(mesh::floor_log2(t + 1));
  }

  // Primary tree edges. Adjacency order matters to the search program:
  // every node lists its children first (nbr[0] = left, nbr[1] = right),
  // then its parent, then any chain heads — so the down edges are added for
  // all nodes before any up edge, one direction at a time.
  for (std::size_t t = 0; t < leaf_offset_; ++t) {
    g_.add_edge(static_cast<Vid>(t), static_cast<Vid>(2 * t + 1));
    g_.add_edge(static_cast<Vid>(t), static_cast<Vid>(2 * t + 2));
  }
  for (std::size_t t = 1; t < tree_nodes_; ++t) {
    auto& rec = g_.vert(static_cast<Vid>(t));
    rec.key[3] = rec.degree;  // parent's slot
    g_.add_edge(static_cast<Vid>(t), static_cast<Vid>((t - 1) / 2));
  }

  // Chain vertices.
  Vid next_vid = static_cast<Vid>(tree_nodes_);
  auto build_chain = [&](Vid owner, std::vector<std::int32_t> ids,
                         bool left_chain) {
    if (ids.empty()) return;
    if (left_chain)
      std::sort(ids.begin(), ids.end(), [&](std::int32_t a, std::int32_t b) {
        return intervals_[static_cast<std::size_t>(a)].lo <
               intervals_[static_cast<std::size_t>(b)].lo;
      });
    else
      std::sort(ids.begin(), ids.end(), [&](std::int32_t a, std::int32_t b) {
        return intervals_[static_cast<std::size_t>(a)].hi >
               intervals_[static_cast<std::size_t>(b)].hi;
      });
    Vid prev = owner;
    for (std::size_t j = 0; j < ids.size(); ++j) {
      const Vid cv = next_vid++;
      const auto& iv = intervals_[static_cast<std::size_t>(ids[j])];
      auto& rec = g_.vert(cv);
      rec.key[0] = iv.lo;
      rec.key[1] = iv.hi;
      rec.key[2] = j + 1 < ids.size() ? 1 : 0;  // has_next
      rec.key[3] = left_chain ? 0 : 1;          // chain kind
      rec.key[4] = iv.id;
      rec.key[6] = kChain;
      rec.level = g_.vert(owner).level;
      chain_owner_[static_cast<std::size_t>(cv) - tree_nodes_] = owner;
      chain_pos_[static_cast<std::size_t>(cv) - tree_nodes_] =
          static_cast<std::uint32_t>(j);
      // Edge to predecessor: appended as the chain node's nbr[0]; the head
      // position within the owner is recorded in the owner's key[1]/key[2].
      if (j == 0) {
        auto& orec = g_.vert(owner);
        const std::int64_t slot = orec.degree;  // where cv will land
        g_.add_undirected_edge(owner, cv);
        (left_chain ? orec.key[1] : orec.key[2]) = slot;
      } else {
        g_.add_undirected_edge(prev, cv);
      }
      prev = cv;
    }
  };
  for (std::size_t t = 0; t < tree_nodes_; ++t) {
    build_chain(static_cast<Vid>(t), assigned[t], /*left_chain=*/true);
    build_chain(static_cast<Vid>(t), assigned[t], /*left_chain=*/false);
  }
  MS_CHECK(static_cast<std::size_t>(next_vid) == g_.vertex_count());
  g_.validate();
}

// ---------------------------------------------------------------------------
// stabbing program
// ---------------------------------------------------------------------------
//
// States: 0 = fresh arrival at a tree node, 1 = walking down a chain,
//         2 = walking back up a chain / arrived back with the detour done.

Vid IntervalTree::Stabbing::start(Query&) const { return root; }

Vid IntervalTree::Stabbing::next(const VertexRecord& v, Query& q) const {
  const std::int64_t x = q.key[0];
  if (v.key[6] == kChain) {
    if (q.state == 2) return v.nbr[0];  // keep climbing back
    const bool left_chain = v.key[3] == 0;
    const bool in_order = left_chain ? v.key[0] <= x : v.key[1] >= x;
    if (!in_order) {  // sorted prefix exhausted: turn around
      q.state = 2;
      return v.nbr[0];
    }
    if (v.key[0] <= x && x <= v.key[1]) {  // a hit
      q.acc0 += 1;
      q.acc1 ^= static_cast<std::int64_t>(
          util::mix64(static_cast<std::uint64_t>(v.key[4])));
    }
    if (v.key[2] == 0) {  // chain end: turn around
      q.state = 2;
      return v.nbr[0];
    }
    return v.nbr[1];  // continue down the chain
  }
  // Tree node.
  const bool leaf = v.key[6] == kLeaf;
  const bool go_left = x <= v.key[0];
  if (q.state == 0) {  // fresh arrival: detour into the relevant chain
    const std::int64_t head = go_left ? v.key[1] : v.key[2];
    if (head >= 0) {
      q.state = 1;
      return v.nbr[static_cast<std::size_t>(head)];
    }
  }
  // Chain done (or absent): descend.
  q.state = 0;
  if (leaf) return kNoVertex;
  return v.nbr[go_left ? 0 : 1];
}

// ---------------------------------------------------------------------------
// splittings
// ---------------------------------------------------------------------------

std::pair<Splitting, Splitting> IntervalTree::alpha_beta_splittings() const {
  const std::size_t n = g_.vertex_count();
  const std::uint32_t period = static_cast<std::uint32_t>(std::max<double>(
      4.0, std::ceil(std::sqrt(static_cast<double>(n)))));
  const std::int32_t d1 = std::max<std::int32_t>(1, (tree_height_ + 1) / 2);
  std::int32_t d2 = std::max<std::int32_t>(1, (tree_height_ + 1) / 3);
  // Cut levels >= 2 apart so the primary-tree borders never touch.
  if (d2 > d1 - 2) d2 = std::max<std::int32_t>(1, d1 - 2);

  auto tree_label = [&](std::size_t t, std::int32_t d) -> std::int32_t {
    // 0 for depth < d, else 1 + index of the depth-d ancestor.
    std::int32_t depth = static_cast<std::int32_t>(mesh::floor_log2(t + 1));
    if (depth < d) return 0;
    std::size_t a = t;
    while (depth > d) {
      a = (a - 1) / 2;
      --depth;
    }
    return 1 + static_cast<std::int32_t>(a - ((std::size_t{1} << d) - 1));
  };

  auto make = [&](std::int32_t d, bool attach_prefix) {
    Splitting s;
    s.piece.assign(n, -1);
    std::int32_t next_piece = 1 + (1 << d);  // tree pieces come first
    // Tree nodes.
    for (std::size_t t = 0; t < tree_nodes_; ++t)
      s.piece[t] = tree_label(t, d);
    // Chain nodes: segment pieces of `period` nodes; with attach_prefix the
    // first half-period of each chain joins its owner's tree piece.
    std::vector<std::pair<std::int64_t, std::int32_t>> seg_ids;
    auto seg_id_for = [&](Vid owner, std::uint32_t seg) {
      const std::int64_t key =
          static_cast<std::int64_t>(owner) * (1 << 24) + seg;
      if (!seg_ids.empty() && seg_ids.back().first == key)
        return seg_ids.back().second;
      seg_ids.emplace_back(key, next_piece);
      return next_piece++;
    };
    for (std::size_t c = 0; c < chain_owner_.size(); ++c) {
      const std::size_t vtx = tree_nodes_ + c;
      const std::uint32_t pos = chain_pos_[c];
      const Vid owner = chain_owner_[c];
      if (attach_prefix && pos < period / 2) {
        s.piece[vtx] = s.piece[static_cast<std::size_t>(owner)];
      } else {
        const std::uint32_t shifted = attach_prefix ? pos - period / 2 : pos;
        s.piece[vtx] = seg_id_for(owner, shifted / period);
      }
    }
    s.kind.assign(static_cast<std::size_t>(next_piece),
                  msearch::PieceKind::kPlain);
    s.delta = std::log(static_cast<double>(
                  std::max<std::size_t>(2, msearch::max_piece_size(s)))) /
              std::log(std::max<double>(2.0, static_cast<double>(n)));
    return s;
  };
  return {make(d1, /*attach_prefix=*/false), make(d2, /*attach_prefix=*/true)};
}

// ---------------------------------------------------------------------------
// oracles
// ---------------------------------------------------------------------------

std::pair<std::int64_t, std::int64_t> IntervalTree::stab_oracle(
    const std::vector<Interval>& intervals, std::int64_t x) {
  std::int64_t count = 0, checksum = 0;
  for (const auto& iv : intervals)
    if (iv.lo <= x && x <= iv.hi) {
      ++count;
      checksum ^= static_cast<std::int64_t>(
          util::mix64(static_cast<std::uint64_t>(iv.id)));
    }
  return {count, checksum};
}

std::int64_t intersect_count_oracle(const std::vector<Interval>& intervals,
                                    std::int64_t a, std::int64_t b) {
  std::int64_t count = 0;
  for (const auto& iv : intervals)
    if (iv.lo <= b && iv.hi >= a) ++count;
  return count;
}

}  // namespace meshsearch::ds
