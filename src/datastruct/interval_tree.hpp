// Static interval trees on the mesh (paper §6).
//
// The interval tree (Edelsbrunner [Ede83a], cited by the paper) over a set
// of n intervals: a balanced binary primary tree over the distinct interval
// endpoints; every interval is stored at the highest node whose split value
// it straddles, in two secondary lists — sorted ascending by left endpoint
// and descending by right endpoint. Here both the primary tree and the
// secondary lists are materialized as ONE constant-degree undirected graph
// (secondary lists become doubly-linked chains of vertices), so that a
// stabbing query is a single on-line search path: descend the primary tree
// and, at each node, detour down the relevant chain exactly as far as it
// reports, then walk back and continue — queries move along edges in both
// directions, the alpha-beta-partitionable setting of §4.6.
//
// The *counting* flavour of the §6 multiple interval intersection problem
// reduces to rank queries on two k-ary trees (see interval_count_* below):
// |{i : [l_i, r_i] meets [a, b]}| = n - |{r_i < a}| - |{l_i > b}|,
// which is Theorem-5 (directed) multisearch. The *reporting* flavour uses
// the stabbing program here.
//
// Splitter caveat (documented in DESIGN.md §6): chain attachment edges make
// this graph only approximately alpha-beta-partitionable — at a chain's
// attachment point the borders of S1 and S2 can coincide. Correctness of
// Algorithm 3 never depends on the border distance (only the log-phase
// progress bound does); the benchmarks report realized progress.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "multisearch/graph.hpp"
#include "multisearch/splitter.hpp"
#include "multisearch/update.hpp"

namespace meshsearch::ds {

using msearch::DistributedGraph;
using msearch::Query;
using msearch::Splitting;
using msearch::VertexRecord;
using msearch::Vid;
using msearch::kNoVertex;

struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;  ///< inclusive; lo <= hi
  std::int32_t id = 0;
};

class IntervalTree {
 public:
  /// `chain_slack` reserves that many spare vertices per secondary chain
  /// (both L and R, at every node that stores intervals) so later inserts
  /// can land without changing the topology. Spares sit after the chain's
  /// real nodes with inert payloads and are never visited: the last real
  /// node's has_next flag is 0, and an emptied chain parks its owner's
  /// head index at -1. The default 0 reproduces the static layout exactly.
  explicit IntervalTree(std::vector<Interval> intervals,
                        std::size_t chain_slack = 0);

  const DistributedGraph& graph() const { return g_; }
  Vid root() const { return 0; }
  std::int32_t tree_height() const { return tree_height_; }
  std::size_t interval_count() const { return intervals_.size(); }
  std::size_t tree_node_count() const { return tree_nodes_; }
  std::size_t chain_node_count() const {
    return g_.vertex_count() - tree_nodes_;
  }
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Stabbing query program: q.key[0] = x. Result: q.acc0 = number of
  /// intervals containing x, q.acc1 = XOR of mix64(interval id) over them.
  struct Stabbing {
    Vid root;
    Vid start(Query& q) const;
    Vid next(const VertexRecord& v, Query& q) const;
  };
  Stabbing stabbing_program() const { return Stabbing{root()}; }

  /// S1/S2 splittings: primary-tree cuts at ~h/2 and ~h/3 plus chain cuts
  /// with period `chain period` offset by half a period (see header note).
  std::pair<Splitting, Splitting> alpha_beta_splittings() const;

  /// Reference answer for a stabbing query.
  static std::pair<std::int64_t, std::int64_t> stab_oracle(
      const std::vector<Interval>& intervals, std::int64_t x);

  /// Batched dynamic update: remove the intervals named by `delete_ids`,
  /// then add `inserts`. Validation (front door, before any mutation):
  /// inserts must have lo <= hi and ids distinct from each other and from
  /// every surviving interval; delete_ids must name present intervals with
  /// no duplicates; the batch must not empty the set — violations throw
  /// InvalidInputError and leave the structure untouched.
  ///
  /// The primary tree's straddle-descent places an interval with ARBITRARY
  /// endpoints correctly (a stabbing query for any x in the interval
  /// follows the same root path — the classical interval-tree argument
  /// needs only that every proper ancestor's split lies strictly outside
  /// the interval), so an update is payload-only whenever every touched
  /// node's chains have capacity for their new occupancy: the touched
  /// chains' payloads are rewritten in place (spares from `chain_slack`
  /// absorb growth, emptied tails are re-inerted) and the delta lists the
  /// dirty vertices. If any chain would overflow — or a touched node never
  /// had chains — the whole structure is rebuilt in place (fresh endpoint
  /// tree, same DistributedGraph address, same slack) and the delta reports
  /// topology_changed. Either way the generation is bumped.
  msearch::StructureDelta apply_updates(
      const std::vector<Interval>& inserts,
      const std::vector<std::int32_t>& delete_ids);

 private:
  /// Fixed-capacity secondary chain: `cap` consecutive vids starting at
  /// `first`, of which the first `used` hold live intervals.
  struct ChainMeta {
    Vid first = kNoVertex;
    std::int64_t head_slot = -1;  ///< owner's nbr index of `first`
    std::uint32_t cap = 0;
    std::uint32_t used = 0;
  };

  /// (Re)build everything from intervals_ (+ slack_), preserving the graph
  /// generation stamp across the assignment.
  void build();
  /// Straddle-descent: the node that stores `iv` in the current tree.
  Vid assign_node(const Interval& iv) const;
  /// Rewrite one chain of node t to hold exactly `ids` (already sorted for
  /// the chain's direction), re-inerting any freed tail slots, and append
  /// the vids whose payload actually changed to `dirty`.
  void rewrite_chain(Vid t, bool left_chain,
                     const std::vector<std::int32_t>& ids,
                     const std::vector<std::pair<std::int32_t, std::size_t>>&
                         id_index,
                     std::vector<Vid>& dirty);

  DistributedGraph g_;
  std::vector<Interval> intervals_;
  std::size_t slack_ = 0;
  std::int32_t tree_height_ = 0;
  std::size_t tree_nodes_ = 0;
  std::size_t leaf_offset_ = 0;  ///< heap index of first leaf
  std::vector<std::int64_t> pts_;  ///< distinct endpoints the tree is built on
  std::vector<std::vector<std::int32_t>> node_ids_;  ///< live ids per node
  std::vector<ChainMeta> lchain_, rchain_;           ///< per tree node
  // Per chain-node metadata for splittings.
  std::vector<Vid> chain_owner_;          ///< owning tree node
  std::vector<std::uint32_t> chain_pos_;  ///< position within its chain
};

/// Number of intervals in `intervals` intersecting [a, b] (reference).
std::int64_t intersect_count_oracle(const std::vector<Interval>& intervals,
                                    std::int64_t a, std::int64_t b);

}  // namespace meshsearch::ds
