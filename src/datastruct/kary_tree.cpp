#include "datastruct/kary_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "multisearch/validate.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace meshsearch::ds {

namespace {

constexpr std::int64_t kSentinel = std::numeric_limits<std::int64_t>::max();

/// vid offset of the first node at depth d in BFS numbering: (k^d - 1)/(k-1).
std::size_t level_offset(unsigned k, std::int32_t d) {
  std::size_t off = 0, width = 1;
  for (std::int32_t i = 0; i < d; ++i) {
    off += width;
    width *= k;
  }
  return off;
}

std::size_t pow_k(unsigned k, std::int32_t e) {
  std::size_t p = 1;
  for (std::int32_t i = 0; i < e; ++i) p *= k;
  return p;
}

}  // namespace

std::vector<WeightedKey> iota_keys(std::size_t count) {
  std::vector<WeightedKey> keys(count);
  for (std::size_t i = 0; i < count; ++i)
    keys[i] = WeightedKey{static_cast<std::int64_t>(i), 1};
  return keys;
}

KaryTree::KaryTree(std::vector<WeightedKey> keys, unsigned k, TreeMode mode)
    : k_(k), mode_(mode) {
  if (k < 2 || k > 6)
    msearch::invalid_input("supported fan-out is 2..6", "kary-tree");
  if (keys.empty()) msearch::invalid_input("empty key set", "kary-tree");
  for (std::size_t i = 1; i < keys.size(); ++i)
    if (!(keys[i - 1].key < keys[i].key))
      msearch::invalid_input("keys not sorted unique at index " +
                                 std::to_string(i),
                             "kary-tree");
  key_set_ = std::move(keys);
  keys_ = key_set_.size();
  build();
}

void KaryTree::build() {
  // Complete k-ary tree: pad the leaf level with +inf sentinels.
  height_ = 0;
  while (pow_k(k_, height_) < key_set_.size()) ++height_;
  leaves_ = pow_k(k_, height_);
  const std::size_t total = level_offset(k_, height_ + 1);
  const std::uint64_t gen = g_.generation();
  g_ = DistributedGraph(total);
  g_.set_generation(gen);
  root_ = 0;

  fill_payloads();

  // Edges: children first (so nbr[0..nc-1] are children), then parents.
  for (std::int32_t d = 0; d < height_; ++d) {
    const std::size_t off = level_offset(k_, d);
    const std::size_t coff = level_offset(k_, d + 1);
    const std::size_t width = pow_k(k_, d);
    for (std::size_t i = 0; i < width; ++i)
      for (unsigned c = 0; c < k_; ++c)
        g_.add_edge(static_cast<Vid>(off + i),
                    static_cast<Vid>(coff + i * k_ + c));
  }
  if (mode_ == TreeMode::kUndirected) {
    for (std::int32_t d = 1; d <= height_; ++d) {
      const std::size_t off = level_offset(k_, d);
      const std::size_t poff = level_offset(k_, d - 1);
      const std::size_t width = pow_k(k_, d);
      for (std::size_t i = 0; i < width; ++i)
        g_.add_edge(static_cast<Vid>(off + i),
                    static_cast<Vid>(poff + i / k_));
    }
  }
  g_.validate();
}

void KaryTree::fill_payloads() {
  // Leaf weight prefix sums for left-sibling weights.
  std::vector<std::int64_t> wprefix(leaves_ + 1, 0);
  for (std::size_t j = 0; j < leaves_; ++j)
    wprefix[j + 1] = wprefix[j] + (j < key_set_.size() ? key_set_[j].weight : 0);

  auto leaf_min = [&](std::size_t leaf_idx) {
    return leaf_idx < key_set_.size() ? key_set_[leaf_idx].key : kSentinel;
  };

  for (std::int32_t d = 0; d <= height_; ++d) {
    const std::size_t off = level_offset(k_, d);
    const std::size_t width = pow_k(k_, d);
    const std::size_t span = pow_k(k_, height_ - d);  // leaves per subtree
    for (std::size_t i = 0; i < width; ++i) {
      auto& rec = g_.vert(static_cast<Vid>(off + i));
      rec.level = d;
      const std::size_t first_leaf = i * span;
      const std::size_t sib_first_leaf = (i - i % k_) * span;
      rec.key[7] = wprefix[first_leaf] - wprefix[sib_first_leaf];
      if (d == height_) {
        rec.key[6] = 0;  // leaf
        rec.key[0] = leaf_min(i);
        rec.key[5] = i < key_set_.size() ? key_set_[i].weight : 0;
      } else {
        rec.key[6] = k_;
        for (unsigned c = 1; c < k_; ++c)
          rec.key[c - 1] = leaf_min((i * k_ + c) * pow_k(k_, height_ - d - 1));
      }
    }
  }
}

msearch::StructureDelta KaryTree::apply_updates(
    const std::vector<WeightedKey>& inserts,
    const std::vector<std::int64_t>& deletes) {
  // Front door: validate the whole batch before mutating anything.
  auto key_present = [&](std::int64_t key) {
    const auto it = std::lower_bound(
        key_set_.begin(), key_set_.end(), key,
        [](const WeightedKey& a, std::int64_t b) { return a.key < b; });
    return it != key_set_.end() && it->key == key;
  };
  {
    std::vector<std::int64_t> dels = deletes;
    std::sort(dels.begin(), dels.end());
    for (std::size_t i = 1; i < dels.size(); ++i)
      if (dels[i - 1] == dels[i])
        msearch::invalid_input("duplicate delete key " +
                                   std::to_string(dels[i]),
                               "kary-tree.apply_updates");
    for (const std::int64_t key : dels)
      if (!key_present(key))
        msearch::invalid_input("delete of missing key " + std::to_string(key),
                               "kary-tree.apply_updates");
    std::vector<std::int64_t> ins;
    ins.reserve(inserts.size());
    for (const auto& wk : inserts) ins.push_back(wk.key);
    std::sort(ins.begin(), ins.end());
    for (std::size_t i = 1; i < ins.size(); ++i)
      if (ins[i - 1] == ins[i])
        msearch::invalid_input("duplicate insert key " +
                                   std::to_string(ins[i]),
                               "kary-tree.apply_updates");
  }

  // Merge: deletes first, then inserts (a key deleted and re-inserted in
  // one batch ends up with the inserted weight; an insert of a surviving
  // key updates its weight in place).
  std::vector<WeightedKey> merged;
  merged.reserve(key_set_.size() + inserts.size());
  {
    std::vector<std::int64_t> dels = deletes;
    std::sort(dels.begin(), dels.end());
    for (const auto& wk : key_set_)
      if (!std::binary_search(dels.begin(), dels.end(), wk.key))
        merged.push_back(wk);
    for (const auto& wk : inserts) {
      const auto it = std::lower_bound(
          merged.begin(), merged.end(), wk.key,
          [](const WeightedKey& a, std::int64_t b) { return a.key < b; });
      if (it != merged.end() && it->key == wk.key)
        it->weight = wk.weight;
      else
        merged.insert(it, wk);
    }
  }
  if (merged.empty())
    msearch::invalid_input("update batch would empty the tree",
                           "kary-tree.apply_updates");

  msearch::StructureDelta delta;
  delta.inserts = inserts.size();
  delta.deletes = deletes.size();

  if (merged.size() > leaves_) {
    // The key set outgrew the leaf level: rebuild in place, one (or more)
    // levels taller. The DistributedGraph member keeps its address; its
    // generation stamp survives the assignment inside build().
    key_set_ = std::move(merged);
    keys_ = key_set_.size();
    build();
    g_.bump_generation();
    delta.topology_changed = true;
    delta.generation = g_.generation();
    return delta;
  }

  // Payload-only path: same height, same vertices/edges — rewrite payloads
  // and diff to find the dirty records.
  const std::vector<VertexRecord> before = g_.verts();
  key_set_ = std::move(merged);
  keys_ = key_set_.size();
  fill_payloads();
  for (std::size_t v = 0; v < before.size(); ++v)
    if (g_.vert(static_cast<Vid>(v)).key != before[v].key)
      delta.dirty_vertices.push_back(static_cast<Vid>(v));
  g_.bump_generation();
  delta.generation = g_.generation();
  return delta;
}

std::vector<std::int32_t> KaryTree::subtree_labels(std::int32_t d) const {
  MS_CHECK(d >= 0 && d <= height_ + 1);
  std::vector<std::int32_t> label(g_.vertex_count(), 0);
  for (std::int32_t depth = d; depth <= height_; ++depth) {
    const std::size_t off = level_offset(k_, depth);
    const std::size_t width = pow_k(k_, depth);
    const std::size_t shrink = pow_k(k_, depth - d);
    for (std::size_t i = 0; i < width; ++i)
      label[off + i] = 1 + static_cast<std::int32_t>(i / shrink);
  }
  return label;
}

namespace {
double delta_of(const Splitting& s, std::size_t n) {
  return std::log(static_cast<double>(
             std::max<std::size_t>(2, msearch::max_piece_size(s)))) /
         std::log(std::max<double>(2.0, static_cast<double>(n)));
}
}  // namespace

Splitting KaryTree::alpha_splitting() const {
  return alpha_splitting_at(std::max<std::int32_t>(1, (height_ + 1) / 2));
}

Splitting KaryTree::alpha_splitting_at(std::int32_t d) const {
  MS_CHECK_MSG(mode_ == TreeMode::kDirected,
               "alpha splitting applies to the directed tree");
  Splitting s;
  const std::int32_t d1 = std::clamp<std::int32_t>(d, 1, std::max(1, height_));
  if (height_ == 0) {
    s.piece.assign(1, 0);
    s.kind.assign(1, msearch::PieceKind::kHead);
  } else {
    s.piece = subtree_labels(d1);
    s.kind.assign(1 + pow_k(k_, d1), msearch::PieceKind::kTail);
    s.kind[0] = msearch::PieceKind::kHead;
  }
  s.delta = delta_of(s, g_.vertex_count());
  return s;
}

std::pair<Splitting, Splitting> KaryTree::alpha_beta_splittings() const {
  MS_CHECK_MSG(mode_ == TreeMode::kUndirected,
               "alpha-beta splittings apply to the undirected tree");
  const std::int32_t d1 = std::max<std::int32_t>(1, (height_ + 1) / 2);
  std::int32_t d2 = std::max<std::int32_t>(1, (height_ + 1) / 3);
  // Keep the cut levels >= 2 apart so the splitter borders never touch
  // (Figure 3's h/6 separation, clamped for small trees).
  if (d2 > d1 - 2) d2 = std::max<std::int32_t>(1, d1 - 2);
  auto make = [&](std::int32_t d) {
    Splitting s;
    if (height_ == 0) {
      s.piece.assign(1, 0);
      s.kind.assign(1, msearch::PieceKind::kPlain);
    } else {
      s.piece = subtree_labels(d);
      s.kind.assign(1 + pow_k(k_, d), msearch::PieceKind::kPlain);
    }
    s.delta = delta_of(s, g_.vertex_count());
    return s;
  };
  return {make(d1), make(d2)};
}

KaryTree::EulerScan KaryTree::euler_scan() const {
  MS_CHECK_MSG(mode_ == TreeMode::kUndirected,
               "EulerScan requires the undirected tree");
  return EulerScan{root_};
}

// ---------------------------------------------------------------------------
// programs
// ---------------------------------------------------------------------------

namespace {
/// Child index chosen when descending for x: the last child whose subtree
/// minimum is <= x (separators are the minima of children 1..nc-1).
unsigned pick_child(const VertexRecord& v, std::int64_t x) {
  const auto nc = static_cast<unsigned>(v.key[6]);
  unsigned c = 0;
  while (c + 1 < nc && v.key[c] <= x) ++c;
  return c;
}
}  // namespace

Vid KaryTree::PredecessorSearch::start(Query&) const { return root; }

Vid KaryTree::PredecessorSearch::next(const VertexRecord& v, Query& q) const {
  if (v.key[6] == 0) {  // leaf
    q.result = v.id;
    q.acc0 = (v.key[0] != kSentinel && v.key[0] <= q.key[0])
                 ? v.key[0]
                 : std::numeric_limits<std::int64_t>::min();
    return kNoVertex;
  }
  return v.nbr[pick_child(v, q.key[0])];
}

Vid KaryTree::RankCount::start(Query&) const { return root; }

Vid KaryTree::RankCount::next(const VertexRecord& v, Query& q) const {
  q.acc0 += v.key[7];  // weight of subtrees left of the descent path
  if (v.key[6] == 0) {
    if (v.key[0] != kSentinel && v.key[0] <= q.key[0]) q.acc0 += v.key[5];
    return kNoVertex;
  }
  return v.nbr[pick_child(v, q.key[0])];
}

Vid KaryTree::EulerScan::start(Query&) const { return root; }

Vid KaryTree::EulerScan::next(const VertexRecord& v, Query& q) const {
  const auto nc = static_cast<unsigned>(v.key[6]);
  const std::int64_t lo = q.key[0], hi = q.key[1];
  if (nc == 0) {  // leaf: report, then continue the in-order walk
    if (v.key[0] != kSentinel && v.key[0] >= lo && v.key[0] <= hi) {
      q.acc0 += v.key[5];
      q.acc1 ^= static_cast<std::int64_t>(
          util::mix64(static_cast<std::uint64_t>(v.key[0])));
    }
    if (v.key[0] == kSentinel || v.key[0] > hi || v.id == root)
      return kNoVertex;  // past the range (or degenerate one-node tree)
    q.state = 1;
    q.prev = v.id;
    return v.nbr[0];  // parent
  }
  if (q.state == 0) {  // still descending toward the first relevant leaf
    return v.nbr[pick_child(v, lo)];
  }
  // Euler step at an internal node: came from q.prev.
  const Vid parent = v.id == root ? kNoVertex : v.nbr[nc];
  Vid out;
  if (q.prev == parent) {
    out = v.nbr[0];
  } else {
    unsigned i = 0;
    while (i < nc && v.nbr[i] != q.prev) ++i;
    MS_CHECK_MSG(i < nc, "Euler walk lost its way");
    out = (i + 1 < nc) ? v.nbr[i + 1] : parent;  // kNoVertex ends at root
  }
  q.prev = v.id;
  return out;
}

}  // namespace meshsearch::ds
