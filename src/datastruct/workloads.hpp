// Synthetic search structures and query workloads used by tests and by the
// benchmark harness (the paper has no data sets; these exercise exactly the
// graph classes of §3 and §4).
#pragma once

#include <cstdint>
#include <vector>

#include "multisearch/graph.hpp"
#include "multisearch/splitter.hpp"
#include "util/rng.hpp"

namespace meshsearch::ds {

using msearch::DistributedGraph;
using msearch::Query;
using msearch::Splitting;
using msearch::VertexRecord;
using msearch::Vid;
using msearch::kNoVertex;

// ---------------------------------------------------------------------------
// Random hierarchical DAG (paper §3, Figure 1)
// ---------------------------------------------------------------------------

/// A hierarchical DAG with |L_i| = round(mu^i) (clamped to reach ~n vertices
/// in total), every vertex having out-degree `fanout` chosen uniformly among
/// the next level, and every next-level vertex guaranteed an incoming edge.
/// Vids are level-contiguous; record.level is set.
DistributedGraph build_hierarchical_dag(std::size_t n_target, double mu,
                                        unsigned fanout, util::Rng& rng);

/// Search program on a hierarchical DAG: a pseudo-random but deterministic
/// descent — at vertex v the query's key hashed with v picks the out-edge.
/// Ends below the last level; q.result = final vertex, q.acc1 = path
/// checksum. This is the adversary-free stand-in for "compare the search
/// key with v's information" (§1).
struct HashWalk {
  Vid root = 0;
  Vid start(Query&) const { return root; }
  Vid next(const VertexRecord& v, Query& q) const {
    q.acc1 ^= static_cast<std::int64_t>(
        util::mix64(static_cast<std::uint64_t>(v.id) * 0x9e3779b97f4a7c15ull));
    if (v.degree == 0) {
      q.result = v.id;
      return kNoVertex;
    }
    const std::uint64_t h = util::mix64(
        static_cast<std::uint64_t>(q.key[0]) ^
        (static_cast<std::uint64_t>(v.id) << 17));
    return v.nbr[h % v.degree];
  }
};

// ---------------------------------------------------------------------------
// Comb graph (directed, alpha-partitionable with long paths) — E3
// ---------------------------------------------------------------------------

/// A complete binary "spine" tree over `teeth` leaves, each leaf continuing
/// into a directed path ("tooth") of `tooth_len` vertices. Searches descend
/// the spine (log2 teeth steps) and then walk d <= tooth_len steps down a
/// tooth, so the longest path r is controllable far beyond log n — the
/// regime where Theorem 5's r * sqrt(n)/log n term dominates. The spine is
/// the head piece; every tooth is a tail piece (Figure 2 generalized).
struct CombGraph {
  DistributedGraph graph;
  Splitting splitting;    ///< alpha-splitting: spine = head, teeth = tails
  Vid root = 0;
  std::size_t teeth = 0;
  std::size_t tooth_len = 0;
  std::int32_t spine_height = 0;
};

CombGraph build_comb(std::size_t teeth, std::size_t tooth_len);

/// Search program on a comb: q.key[0] selects the tooth (hashed at each
/// spine node), q.key[1] = number of tooth steps to take. q.result = final
/// vertex.
struct CombWalk {
  Vid root = 0;
  Vid start(Query&) const { return root; }
  Vid next(const VertexRecord& v, Query& q) const;
};

// ---------------------------------------------------------------------------
// Random alpha-partitionable directed graphs (paper §4.2, general case)
// ---------------------------------------------------------------------------

/// A random instance of the §4.2 class that is NOT a tree: k1 head pieces
/// and k2 tail pieces, each a random DAG of ~piece_size vertices (edges only
/// forward within a piece, so searches terminate), plus random splitter
/// edges from head-piece vertices to tail-piece vertices. Exercises
/// Algorithm 2 with multi-piece head sides, disconnected pieces and uneven
/// sizes — everything Figure 2's tree does not.
struct RandomPartitionable {
  DistributedGraph graph;
  Splitting splitting;
  std::vector<Vid> entry;  ///< one entry vertex per head piece (index 0..k1)
};

RandomPartitionable build_random_partitionable(std::size_t k1, std::size_t k2,
                                               std::size_t piece_size,
                                               unsigned fanout,
                                               util::Rng& rng);

/// Search program for RandomPartitionable: starts at the entry vertex of
/// the head piece selected by hashing key[0], then hash-walks forward
/// until it reaches a sink. q.result = sink, q.acc1 = path checksum.
struct PartitionableWalk {
  const RandomPartitionable* inst = nullptr;
  Vid start(Query& q) const {
    const auto h = util::mix64(static_cast<std::uint64_t>(q.key[0]));
    return inst->entry[h % inst->entry.size()];
  }
  Vid next(const VertexRecord& v, Query& q) const {
    q.acc1 ^= static_cast<std::int64_t>(
        util::mix64(static_cast<std::uint64_t>(v.id) * 0x9e3779b97f4a7c15ull));
    if (v.degree == 0) {
      q.result = v.id;
      return kNoVertex;
    }
    const std::uint64_t h = util::mix64(
        static_cast<std::uint64_t>(q.key[0]) ^
        (static_cast<std::uint64_t>(v.id) << 13));
    return v.nbr[h % v.degree];
  }
};

// ---------------------------------------------------------------------------
// Query generators
// ---------------------------------------------------------------------------

/// m queries whose key[0] is drawn uniformly from [0, key_space).
std::vector<Query> uniform_key_queries(std::size_t m, std::uint64_t key_space,
                                       util::Rng& rng);

/// m queries whose key[0] is drawn Zipf(s)-skewed over [0, key_space) —
/// the congested workloads of E2 (many searches through few pieces).
std::vector<Query> zipf_key_queries(std::size_t m, std::uint64_t key_space,
                                    double s, util::Rng& rng);

}  // namespace meshsearch::ds
