// Static 2-3 trees on the mesh.
//
// The paper contrasts its mesh techniques with Paul, Vishkin & Wagener's
// EREW-PRAM parallel dictionaries on 2-3 trees [PVS83] (§1): that solution
// leans on a linear order of the keys, which the mesh algorithms must not
// assume. This module provides the classic 2-3 tree itself as a
// DistributedGraph so that the same batched searches the PRAM work targets
// run through Algorithm 2 here: every internal node has 2 or 3 children,
// all leaves at equal depth, keys in the leaves.
//
// Payload layout: internal nodes key[0..1] = separators (minimum key of
// children 1 and 2), key[6] = child count; leaves key[0] = key,
// key[6] = 0. nbr[0..nc-1] = children, level = depth.
#pragma once

#include <cstdint>
#include <vector>

#include "multisearch/graph.hpp"
#include "multisearch/splitter.hpp"

namespace meshsearch::ds {

using msearch::DistributedGraph;
using msearch::Query;
using msearch::Splitting;
using msearch::VertexRecord;
using msearch::Vid;
using msearch::kNoVertex;

class TwoThreeTree {
 public:
  /// keys must be sorted and unique, at least one.
  explicit TwoThreeTree(const std::vector<std::int64_t>& keys);

  const DistributedGraph& graph() const { return g_; }
  Vid root() const { return root_; }
  std::int32_t height() const { return height_; }
  std::size_t key_count() const { return keys_; }

  /// Membership/predecessor search: q.key[0] = x. Result: q.result = leaf,
  /// q.acc0 = 1 if x is in the dictionary else 0, q.acc1 = predecessor key
  /// (INT64_MIN if none).
  struct Lookup {
    Vid root;
    Vid start(Query&) const { return root; }
    Vid next(const VertexRecord& v, Query& q) const;
  };
  Lookup lookup() const { return Lookup{root_}; }

  /// Alpha-splitting at half height (2-3 trees are the Figure 2 class with
  /// fan-out 2..3).
  Splitting alpha_splitting() const;

 private:
  DistributedGraph g_;
  Vid root_ = kNoVertex;
  std::int32_t height_ = 0;
  std::size_t keys_ = 0;
};

}  // namespace meshsearch::ds
