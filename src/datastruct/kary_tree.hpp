// Balanced k-ary search trees on the mesh (paper §4.2 Figure 2, §4.3
// Figure 3, and the §6 applications).
//
// A KaryTree is a complete k-ary search tree over a sorted, unique,
// weighted key set, stored as a DistributedGraph with one node per
// processor. Two edge modes:
//   * kDirected   — edges root->leaves only: the alpha-partitionable class
//                   (Algorithm 2) for one-way descents,
//   * kUndirected — parent edges too: the alpha-beta-partitionable class
//                   (Algorithm 3) for traversals that move both ways.
//
// Vertex payload layout (VertexRecord::key):
//   internal: key[0..nc-2] = separators (min key of child i+1's subtree),
//             key[6] = child count nc, key[7] = combined weight of left
//             siblings' subtrees (for rank accumulation).
//   leaf:     key[0] = leaf key, key[5] = weight, key[6] = 0,
//             key[7] = left-sibling weight.
// nbr[0..nc-1] = children; in undirected mode nbr[nc] = parent.
// level = depth. Supported fan-out: 2 <= k <= 6.
//
// Search programs provided:
//   * PredecessorSearch — root-to-leaf descent (directed; Theorem 5 shape)
//   * RankCount         — descent accumulating the number of weighted keys
//                         <= x (directed; used by the §6 interval counting)
//   * EulerScan         — descend to the first leaf >= lo, then in-order
//                         walk of leaves through hi (undirected; Theorem 7
//                         shape: queries move along tree edges in arbitrary
//                         directions, exactly the inorder-traversal example
//                         of §4.3)
#pragma once

#include <cstdint>
#include <vector>

#include "multisearch/graph.hpp"
#include "multisearch/splitter.hpp"
#include "multisearch/update.hpp"

namespace meshsearch::ds {

using msearch::DistributedGraph;
using msearch::Query;
using msearch::Splitting;
using msearch::VertexRecord;
using msearch::Vid;
using msearch::kNoVertex;

struct WeightedKey {
  std::int64_t key = 0;
  std::int64_t weight = 1;
};

enum class TreeMode { kDirected, kUndirected };

class KaryTree {
 public:
  /// keys must be sorted by key and unique; 2 <= k <= 6.
  KaryTree(std::vector<WeightedKey> keys, unsigned k, TreeMode mode);

  const DistributedGraph& graph() const { return g_; }
  Vid root() const { return root_; }
  unsigned fanout() const { return k_; }
  std::int32_t height() const { return height_; }  ///< leaf depth
  TreeMode mode() const { return mode_; }
  std::size_t leaf_count() const { return leaves_; }
  std::size_t key_count() const { return keys_; }
  /// The live sorted key set (the master copy apply_updates maintains).
  const std::vector<WeightedKey>& key_set() const { return key_set_; }

  /// Batched dynamic update: delete the keys in `deletes`, then apply
  /// `inserts` (an insert whose key is already present updates its weight).
  /// Validation (front door, before any mutation): deletes must name
  /// present keys, neither batch may contain duplicates, and the batch must
  /// not empty the tree — violations throw InvalidInputError and leave the
  /// structure untouched.
  ///
  /// While the merged key set still fits the current leaf level the tree
  /// topology (vertices, edges, levels) is unchanged and only record
  /// payloads are rewritten — the returned delta lists exactly the dirty
  /// vertices, so a warm engine refreshes incrementally. Appending/deleting
  /// at the key-space tail keeps the dirty set proportional to the batch
  /// (leaf payloads shift only at and after the first changed rank);
  /// interior inserts shift everything after them. When the merged set
  /// outgrows the leaf level the whole tree is rebuilt in place (same
  /// DistributedGraph address, one taller level) and the delta reports
  /// topology_changed. Either way the graph generation is bumped, so stale
  /// warm engines are fenced until they refresh.
  msearch::StructureDelta apply_updates(
      const std::vector<WeightedKey>& inserts,
      const std::vector<std::int64_t>& deletes);

  /// Alpha-splitting at half height (Figure 2): the top piece is the head,
  /// every depth-ceil(h/2) subtree a tail. Directed mode only.
  Splitting alpha_splitting() const;

  /// Alpha-splitting with the cut at depth d (1 <= d <= height): varies the
  /// piece-size exponent delta for the E2 sweeps.
  Splitting alpha_splitting_at(std::int32_t d) const;

  /// The (S1, S2) splittings of Figure 3 for undirected mode: cuts at
  /// depths ~h/2 and ~h/3, borders Theta(h) apart.
  std::pair<Splitting, Splitting> alpha_beta_splittings() const;

  // -- search programs -------------------------------------------------

  struct PredecessorSearch {
    Vid root;
    /// q.key[0] = x. Result: q.result = leaf vid, q.acc0 = leaf key if
    /// <= x else INT64_MIN (x below all keys).
    Vid start(Query& q) const;
    Vid next(const VertexRecord& v, Query& q) const;
  };

  struct RankCount {
    Vid root;
    /// q.key[0] = x. Result: q.acc0 = total weight of keys <= x.
    Vid start(Query& q) const;
    Vid next(const VertexRecord& v, Query& q) const;
  };

  struct EulerScan {
    Vid root;
    /// q.key[0] = lo, q.key[1] = hi. Result: q.acc0 = total weight of keys
    /// in [lo, hi], q.acc1 = order-free checksum of the reported keys.
    /// Requires undirected mode.
    Vid start(Query& q) const;
    Vid next(const VertexRecord& v, Query& q) const;
  };

  PredecessorSearch predecessor_search() const { return {root_}; }
  RankCount rank_count() const { return {root_}; }
  EulerScan euler_scan() const;

  /// Depth-d ancestor piece labels used by the splittings: label[v] = 0 for
  /// depth(v) < d, else 1 + (index of v's depth-d ancestor).
  std::vector<std::int32_t> subtree_labels(std::int32_t d) const;

 private:
  /// (Re)build the complete tree from key_set_: size the graph (preserving
  /// the generation stamp across the assignment), fill payloads, add edges.
  void build();
  /// Payload pass only — levels, separators, leaf keys/weights, sibling
  /// weight prefixes. Pure function of key_set_ over the fixed topology.
  void fill_payloads();

  DistributedGraph g_;
  Vid root_ = kNoVertex;
  unsigned k_ = 2;
  std::int32_t height_ = 0;
  std::size_t leaves_ = 0;
  std::size_t keys_ = 0;
  std::vector<WeightedKey> key_set_;  ///< live keys, sorted unique
  TreeMode mode_ = TreeMode::kDirected;
};

/// Convenience: keys 0..count-1 with unit weights.
std::vector<WeightedKey> iota_keys(std::size_t count);

}  // namespace meshsearch::ds
