#include "datastruct/workloads.hpp"

#include <algorithm>
#include <cmath>

#include "multisearch/query.hpp"
#include "util/check.hpp"

namespace meshsearch::ds {

DistributedGraph build_hierarchical_dag(std::size_t n_target, double mu,
                                        unsigned fanout, util::Rng& rng) {
  MS_CHECK(mu > 1.0);
  MS_CHECK(fanout >= 1);
  MS_CHECK(n_target >= 1);
  // Level sizes round(mu^i) until the total reaches n_target.
  std::vector<std::size_t> level_size{1};
  std::size_t total = 1;
  double width = 1.0;
  while (total < n_target) {
    width *= mu;
    const std::size_t w = std::max<std::size_t>(
        level_size.back() + 1, static_cast<std::size_t>(std::llround(width)));
    level_size.push_back(w);
    total += w;
  }
  DistributedGraph g(total);
  // Level offsets; vids are level-contiguous.
  std::vector<std::size_t> offset(level_size.size() + 1, 0);
  for (std::size_t i = 0; i < level_size.size(); ++i)
    offset[i + 1] = offset[i] + level_size[i];
  for (std::size_t i = 0; i < level_size.size(); ++i)
    for (std::size_t j = 0; j < level_size[i]; ++j)
      g.vert(static_cast<Vid>(offset[i] + j)).level =
          static_cast<std::int32_t>(i);
  // Edges: each vertex at level i gets `fanout` distinct-ish targets at
  // level i+1; additionally target j takes an edge from source j % |L_i| so
  // that every vertex is reachable.
  for (std::size_t i = 0; i + 1 < level_size.size(); ++i) {
    const std::size_t wi = level_size[i], wn = level_size[i + 1];
    for (std::size_t j = 0; j < wn; ++j) {
      const Vid src = static_cast<Vid>(offset[i] + (j % wi));
      const Vid dst = static_cast<Vid>(offset[i + 1] + j);
      if (!g.has_edge(src, dst)) g.add_edge(src, dst);
    }
    for (std::size_t j = 0; j < wi; ++j) {
      const Vid src = static_cast<Vid>(offset[i] + j);
      for (unsigned f = 0; f < fanout; ++f) {
        if (g.vert(src).degree >= msearch::kMaxDegree) break;
        const Vid dst =
            static_cast<Vid>(offset[i + 1] + rng.uniform(wn));
        if (!g.has_edge(src, dst)) g.add_edge(src, dst);
      }
    }
  }
  g.validate();
  return g;
}

CombGraph build_comb(std::size_t teeth, std::size_t tooth_len) {
  MS_CHECK(teeth >= 1 && tooth_len >= 1);
  // Spine: complete binary tree with `teeth` leaves (teeth rounded up to a
  // power of two by the caller's choice; we require it here).
  MS_CHECK_MSG((teeth & (teeth - 1)) == 0, "teeth must be a power of two");
  const std::size_t spine_nodes = 2 * teeth - 1;
  CombGraph comb;
  comb.teeth = teeth;
  comb.tooth_len = tooth_len;
  comb.spine_height = static_cast<std::int32_t>(mesh::floor_log2(teeth));
  comb.graph = DistributedGraph(spine_nodes + teeth * tooth_len);
  auto& g = comb.graph;
  // Spine in heap order; payload key[6] = node type (0 spine internal,
  // 1 spine leaf, 2 tooth), level = depth.
  for (std::size_t t = 0; t < spine_nodes; ++t) {
    auto& rec = g.vert(static_cast<Vid>(t));
    rec.level = static_cast<std::int32_t>(mesh::floor_log2(t + 1));
    rec.key[6] = t < teeth - 1 ? 0 : 1;
  }
  for (std::size_t t = 0; t + 1 < teeth; ++t) {
    g.add_edge(static_cast<Vid>(t), static_cast<Vid>(2 * t + 1));
    g.add_edge(static_cast<Vid>(t), static_cast<Vid>(2 * t + 2));
  }
  // Teeth: tooth i occupies vids [spine_nodes + i*len, ... + len).
  for (std::size_t i = 0; i < teeth; ++i) {
    const Vid leaf = static_cast<Vid>(teeth - 1 + i);
    Vid prev = leaf;
    for (std::size_t j = 0; j < tooth_len; ++j) {
      const Vid cur = static_cast<Vid>(spine_nodes + i * tooth_len + j);
      auto& rec = g.vert(cur);
      rec.key[6] = 2;
      rec.level = comb.spine_height + 1 + static_cast<std::int32_t>(j);
      g.add_edge(prev, cur);
      prev = cur;
    }
  }
  g.validate();
  // Alpha-splitting: spine = piece 0 (head), tooth i (including nothing of
  // the spine) = piece 1+i (tail).
  auto& s = comb.splitting;
  s.piece.assign(g.vertex_count(), 0);
  for (std::size_t i = 0; i < teeth; ++i)
    for (std::size_t j = 0; j < tooth_len; ++j)
      s.piece[spine_nodes + i * tooth_len + j] = 1 + static_cast<std::int32_t>(i);
  s.kind.assign(1 + teeth, msearch::PieceKind::kTail);
  s.kind[0] = msearch::PieceKind::kHead;
  s.delta = std::log(static_cast<double>(std::max<std::size_t>(
                2, std::max(spine_nodes, tooth_len)))) /
            std::log(static_cast<double>(std::max<std::size_t>(
                2, g.vertex_count())));
  return comb;
}

Vid CombWalk::next(const VertexRecord& v, Query& q) const {
  if (v.key[6] == 0) {  // spine internal: hash the key to pick a side
    const std::uint64_t h = util::mix64(
        static_cast<std::uint64_t>(q.key[0]) ^
        (static_cast<std::uint64_t>(v.id) * 0x2545f4914f6cdd1dull));
    return v.nbr[h & 1u];
  }
  // Spine leaf or tooth vertex: walk the tooth while budget remains.
  if (static_cast<std::int64_t>(q.state) >= q.key[1] || v.degree == 0) {
    q.result = v.id;
    return kNoVertex;
  }
  ++q.state;  // one tooth step consumed
  return v.nbr[0];
}

RandomPartitionable build_random_partitionable(std::size_t k1, std::size_t k2,
                                               std::size_t piece_size,
                                               unsigned fanout,
                                               util::Rng& rng) {
  MS_CHECK(k1 >= 1 && k2 >= 1 && piece_size >= 2);
  MS_CHECK(fanout >= 1 && fanout + 2 <= msearch::kMaxDegree);
  RandomPartitionable out;
  const std::size_t total = (k1 + k2) * piece_size;
  out.graph = DistributedGraph(total);
  auto& s = out.splitting;
  s.piece.assign(total, -1);
  s.kind.assign(k1 + k2, msearch::PieceKind::kTail);
  for (std::size_t pc = 0; pc < k1; ++pc)
    s.kind[pc] = msearch::PieceKind::kHead;

  // Piece pc occupies vids [pc*piece_size, (pc+1)*piece_size); vertices are
  // topologically ordered within a piece so forward edges keep it acyclic.
  auto base = [&](std::size_t pc) { return pc * piece_size; };
  for (std::size_t pc = 0; pc < k1 + k2; ++pc) {
    for (std::size_t j = 0; j < piece_size; ++j) {
      const Vid v = static_cast<Vid>(base(pc) + j);
      s.piece[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(pc);
      const std::size_t forward = piece_size - 1 - j;
      const unsigned edges =
          static_cast<unsigned>(std::min<std::size_t>(fanout, forward));
      for (unsigned f = 0; f < edges; ++f) {
        const Vid w =
            static_cast<Vid>(base(pc) + j + 1 + rng.uniform(forward));
        if (!out.graph.has_edge(v, w)) out.graph.add_edge(v, w);
      }
    }
  }
  // Splitter edges: from random head vertices to random tail entry points.
  for (std::size_t pc = 0; pc < k1; ++pc) {
    const std::size_t cross = 1 + rng.uniform(piece_size / 2);
    for (std::size_t c = 0; c < cross; ++c) {
      const Vid u = static_cast<Vid>(base(pc) + rng.uniform(piece_size));
      if (static_cast<std::size_t>(out.graph.vert(u).degree) + 1 >
          msearch::kMaxDegree)
        continue;
      const std::size_t tpc = k1 + rng.uniform(k2);
      const Vid w = static_cast<Vid>(base(tpc) + rng.uniform(piece_size / 2));
      if (!out.graph.has_edge(u, w)) out.graph.add_edge(u, w);
    }
    out.entry.push_back(static_cast<Vid>(base(pc)));
  }
  out.graph.validate();
  const double n = static_cast<double>(total);
  s.delta = std::log(static_cast<double>(piece_size)) /
            std::log(std::max(2.0, n));
  return out;
}

std::vector<Query> uniform_key_queries(std::size_t m, std::uint64_t key_space,
                                       util::Rng& rng) {
  auto qs = msearch::make_queries(m);
  for (auto& q : qs) q.key[0] = static_cast<std::int64_t>(rng.uniform(key_space));
  return qs;
}

std::vector<Query> zipf_key_queries(std::size_t m, std::uint64_t key_space,
                                    double s, util::Rng& rng) {
  auto qs = msearch::make_queries(m);
  util::Zipf zipf(static_cast<std::size_t>(key_space), s);
  // Scramble rank -> key so the hot keys are spread over the key space.
  for (auto& q : qs) {
    const std::size_t rank = zipf(rng);
    q.key[0] = static_cast<std::int64_t>(
        util::mix64(static_cast<std::uint64_t>(rank)) % key_space);
  }
  return qs;
}

}  // namespace meshsearch::ds
