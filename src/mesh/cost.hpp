// Simulated parallel time accounting.
//
// Every mesh primitive returns the number of elementary mesh steps it takes
// (one step = O(1) local compute + one word moved between grid neighbours,
// the machine model of the paper). Costs compose algebraically:
//
//     sequential composition  ->  operator+
//     "independently and in parallel on each submesh"  ->  par() (max)
//
// so a multisearch algorithm's total simulated time is an ordinary value
// threaded through the code, visible at every call site where the paper
// says "in parallel".
//
// CostModel holds the charged constants for each primitive on a p-processor
// (sub)mesh. The defaults charge the optimal O(sqrt p) mesh-sort bound
// (Schnorr–Shamir style, 3*sqrt(p)); setting `physical_sort` charges the
// shearsort bound sqrt(p)*(log2 p + 1) instead — the cycle engine actually
// runs shearsort, and experiment E7 uses this switch to show the claimed
// asymptotics degrade by exactly a log factor under a suboptimal sort.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <initializer_list>

#include "trace/trace.hpp"

namespace meshsearch::mesh {

class FaultPlan;  // mesh/fault.hpp — optional fault-injection oracle

/// Simulated mesh steps. A thin wrapper over double so that step counts
/// cannot be accidentally mixed with other scalar quantities.
struct Cost {
  double steps = 0;

  constexpr Cost() = default;
  constexpr explicit Cost(double s) : steps(s) {}

  constexpr Cost& operator+=(Cost o) {
    steps += o.steps;
    return *this;
  }
  friend constexpr Cost operator+(Cost a, Cost b) {
    return Cost{a.steps + b.steps};
  }
  friend constexpr Cost operator*(double k, Cost c) {
    return Cost{k * c.steps};
  }
  friend constexpr bool operator<(Cost a, Cost b) { return a.steps < b.steps; }
  friend constexpr bool operator==(Cost a, Cost b) = default;
};

/// Parallel composition: branches run concurrently, time is the maximum.
constexpr Cost par(Cost a, Cost b) { return Cost{std::max(a.steps, b.steps)}; }

constexpr Cost par(std::initializer_list<Cost> cs) {
  Cost m;
  for (Cost c : cs) m = par(m, c);
  return m;
}

/// Running max accumulator for loops over parallel branches.
class ParAccumulator {
 public:
  void add(Cost c) { max_ = par(max_, c); }
  Cost total() const { return max_; }

 private:
  Cost max_;
};

/// Charged step constants for the counting engine's primitives.
///
/// Every primitive takes an optional `times` — "this primitive runs `times`
/// times back to back" — so call sites that sweep a level k times charge
/// (and attribute, see below) all k executions in one call.
///
/// When `trace` is set, each charge is also recorded into the
/// trace::TraceRecorder under its primitive label, giving per-primitive
/// cost attribution for free at every call site that charges through the
/// model. Composite primitives (rar/raw/compress/route) record only
/// themselves, never their building blocks, so attributed steps sum exactly
/// to the charged total. A null sink costs one pointer test.
struct CostModel {
  double sort_c = 3.0;    ///< optimal mesh sort: sort_c * sqrt(p)
  double scan_c = 2.0;    ///< snake prefix scan (row scan + column scan + fix)
  double route_c = 3.0;   ///< permutation routing (sort-based)
  double bcast_c = 2.0;   ///< broadcast from one processor (row then columns)
  double reduce_c = 2.0;  ///< semigroup reduction to one processor
  bool physical_sort = false;  ///< charge shearsort O(sqrt(p) log p) instead
  trace::TraceRecorder* trace = nullptr;  ///< optional attribution sink (not owned)
  FaultPlan* fault = nullptr;  ///< optional fault oracle (not owned); null or
                               ///< disarmed leaves every charge untouched

  double sqrt_p(double p) const { return std::sqrt(std::max(1.0, p)); }

  Cost sort(double p, double times = 1.0) const {
    return charge(trace::Primitive::kSort, p, times, sort_steps(p));
  }
  Cost scan(double p, double times = 1.0) const {
    return charge(trace::Primitive::kScan, p, times, scan_steps(p));
  }
  Cost route(double p, double times = 1.0) const {
    return charge(trace::Primitive::kRoute, p, times, route_steps(p));
  }
  Cost broadcast(double p, double times = 1.0) const {
    return charge(trace::Primitive::kBroadcast, p, times, bcast_c * sqrt_p(p));
  }
  Cost reduce(double p, double times = 1.0) const {
    return charge(trace::Primitive::kReduce, p, times, reduce_c * sqrt_p(p));
  }

  /// Random access read: sort requests by address, rank, fetch via one
  /// routing, segmented broadcast for concurrent reads, route answers back.
  /// (A constant number of sorts/scans/routes — the standard construction.)
  Cost rar(double p, double times = 1.0) const {
    return charge(trace::Primitive::kRar, p, times,
                  2.0 * sort_steps(p) + 2.0 * scan_steps(p) +
                      2.0 * route_steps(p));
  }
  /// Random access write with combining; same skeleton minus the return trip.
  Cost raw(double p, double times = 1.0) const {
    return charge(trace::Primitive::kRaw, p, times,
                  sort_steps(p) + scan_steps(p) + route_steps(p));
  }
  /// Compress marked records to a prefix: scan + route.
  Cost compress(double p, double times = 1.0) const {
    return charge(trace::Primitive::kCompress, p, times,
                  scan_steps(p) + route_steps(p));
  }

  /// Fault-recovery backoff: `steps` idle steps waited between phase retry
  /// attempts (mesh/fault.hpp). Charged under its own primitive so the
  /// attribution table still sums exactly to the charged total when faults
  /// are armed. Zero steps charge (and record) nothing.
  Cost backoff(double p, double steps) const {
    if (steps <= 0) return Cost{};
    return charge(trace::Primitive::kBackoff, p, 1.0, steps);
  }

  /// Dynamic-update refresh: `times` rounds of re-distributing dirty
  /// records (and their band replicas) onto a p-processor submesh. Each
  /// round is one sort (collect the dirty records into address order) plus
  /// one routing (deliver them), the standard redistribution skeleton.
  /// Charged under its own primitive so incremental refresh cost is
  /// separable from setup and search in the attribution table.
  Cost rebuild(double p, double times = 1.0) const {
    return charge(trace::Primitive::kRebuild, p, times,
                  sort_steps(p) + route_steps(p));
  }

 private:
  double sort_steps(double p) const {
    if (physical_sort) return sqrt_p(p) * (std::log2(std::max(2.0, p)) + 1.0);
    return sort_c * sqrt_p(p);
  }
  double scan_steps(double p) const { return scan_c * sqrt_p(p); }
  // Sort-based routing inherits the sort bound plus one traversal.
  double route_steps(double p) const { return sort_steps(p) + sqrt_p(p); }

  Cost charge(trace::Primitive prim, double p, double times,
              double steps) const {
    if (times <= 0) return Cost{};
    if (trace != nullptr)
      trace->count(prim, p, times * steps,
                   static_cast<std::uint64_t>(
                       std::llround(std::max(1.0, times))));
    return Cost{times * steps};
  }
};

}  // namespace meshsearch::mesh
