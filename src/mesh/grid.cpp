#include "mesh/grid.hpp"

// Grid is a template; this TU anchors the module in the library target and
// provides an explicit instantiation for the common value type to speed up
// test/bench builds.
namespace meshsearch::mesh {
template class Grid<std::int64_t>;
}  // namespace meshsearch::mesh
