#include "mesh/cycle_ops.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <limits>

#include "mesh/integrity.hpp"
#include "util/check.hpp"
#include "util/parallel_for.hpp"

namespace meshsearch::mesh {

namespace {

/// Greedy XY routing of a partial packet set: payload_rm[i] travels from
/// row-major cell i to row-major dest_rm[i] (< 0 = no packet). Destinations
/// must be distinct. out_rm[d] receives the payload (others keep `fill`).
/// Same synchronous queue model as Grid::route_permutation.
template <typename T>
std::size_t route_partial_generic(MeshShape shape,
                                  const std::vector<T>& payload_rm,
                                  const std::vector<std::int64_t>& dest_rm,
                                  std::vector<T>& out_rm, T fill,
                                  FaultPlan* fault = nullptr) {
  const std::uint32_t s = shape.side();
  const std::size_t p = shape.size();
  MS_CHECK(payload_rm.size() == p && dest_rm.size() == p);
  out_rm.assign(p, fill);

  struct Packet {
    T value;
    std::uint32_t dr, dc;
    std::uint64_t sum = 0;  // payload checksum (computed while armed)
  };
  struct Cell {
    std::deque<Packet> horiz, vert;
  };
  constexpr bool kChecksummed = std::is_trivially_copyable_v<T>;
  const bool faulty = fault != nullptr && fault->armed();
  std::vector<Cell> state(p);
  std::size_t undelivered = 0;
#ifndef NDEBUG
  std::vector<std::uint8_t> seen(p, 0);
#endif
  for (std::size_t i = 0; i < p; ++i) {
    if (dest_rm[i] < 0) continue;
    const auto d = static_cast<std::size_t>(dest_rm[i]);
    MS_CHECK(d < p);
#ifndef NDEBUG
    MS_CHECK_MSG(!seen[d], "route_partial: destination collision");
    seen[d] = 1;
#endif
    Packet pk{payload_rm[i], static_cast<std::uint32_t>(d / s),
              static_cast<std::uint32_t>(d % s), 0};
    if constexpr (kChecksummed) {
      // Checksum at injection, verified at every delivery below.
      if (faulty) pk.sum = integrity::payload_checksum(pk.value);
    }
    const std::uint32_t r = static_cast<std::uint32_t>(i / s);
    const std::uint32_t c = static_cast<std::uint32_t>(i % s);
    if (r == pk.dr && c == pk.dc) {
      out_rm[d] = pk.value;
    } else {
      ++undelivered;
      if (c != pk.dc)
        state[i].horiz.push_back(pk);
      else
        state[i].vert.push_back(pk);
    }
  }

  std::size_t steps = 0;
  // Fault injection mirrors Grid::route_permutation: stalls suppress a
  // cell's departures for one step, drops and detected corruptions leave
  // the packet at its queue head (blocking that queue for the rest of the
  // step) and the convergence guard is scaled while armed.
  const std::uint64_t epoch = faulty ? fault->next_route_epoch() : 0;
  const std::size_t base_cap = 64 * static_cast<std::size_t>(s) + 64;
  const std::size_t cap =
      faulty ? static_cast<std::size_t>(
                   static_cast<double>(base_cap) *
                   std::max(1.0, fault->config().route_cap_factor))
             : base_cap;
  std::vector<std::uint64_t> blocked_h, blocked_v;
  if (faulty) {
    blocked_h.assign(p, 0);
    blocked_v.assign(p, 0);
  }
  while (undelivered > 0) {
    ++steps;
    if (!faulty) {
      MS_CHECK_MSG(steps <= cap, "partial routing failed to converge");
    } else if (steps > cap) {
      ErrorContext ctx;
      ctx.engine = "cycle";
      ctx.phase = "route";
      ctx.site = "route_partial";
      ctx.seed = fault->config().seed;
      ctx.occurrence = epoch;
      ctx.has_seed = true;
      throw FaultExhaustedError(
          "partial routing exceeded its scaled convergence guard under "
          "injected faults",
          std::move(ctx));
    }
    struct Move {
      std::size_t from_cell;
      bool from_horiz;
      std::size_t to_cell;
      bool to_horiz;
    };
    // Same scheme as Grid::route_permutation: read-only move generation
    // runs host-parallel over rows; per-row lists concatenate in row order
    // so the (order-sensitive) apply phase sees the serial sweep order.
    std::vector<std::vector<Move>> row_moves(s);
    util::parallel_for(
        std::size_t{0}, s,
        [&](std::size_t row) {
          const auto r = static_cast<std::uint32_t>(row);
          auto& moves = row_moves[row];
          for (std::uint32_t c = 0; c < s; ++c) {
            const std::size_t cell = static_cast<std::size_t>(r) * s + c;
            if (faulty && fault->stall(epoch, steps, cell)) continue;
            auto& hq = state[cell].horiz;
            int east = 0, west = 0;
            for (std::size_t k = 0; k < hq.size();) {
              const bool go_east = hq[k].dc > c;
              if (go_east && east == 0) {
                moves.push_back({cell, true, cell + 1, hq[k].dc != c + 1});
                ++east;
                ++k;
              } else if (!go_east && west == 0) {
                moves.push_back({cell, true, cell - 1, hq[k].dc != c - 1});
                ++west;
                ++k;
              } else {
                break;
              }
            }
            auto& vq = state[cell].vert;
            int south = 0, north = 0;
            for (std::size_t k = 0; k < vq.size();) {
              const bool go_south = vq[k].dr > r;
              if (go_south && south == 0) {
                moves.push_back({cell, false, cell + s, false});
                ++south;
                ++k;
              } else if (!go_south && north == 0) {
                moves.push_back({cell, false, cell - s, false});
                ++north;
                ++k;
              } else {
                break;
              }
            }
          }
        },
        /*grain=*/16);
    std::vector<Move> moves;
    for (const auto& rm : row_moves)
      moves.insert(moves.end(), rm.begin(), rm.end());
    for (const auto& mv : moves) {
      if (faulty) {
        auto& blocked = mv.from_horiz ? blocked_h : blocked_v;
        if (blocked[mv.from_cell] == steps) continue;
        if (fault->drop(epoch, steps, static_cast<std::uint64_t>(mv.from_cell),
                        static_cast<std::uint64_t>(mv.to_cell))) {
          blocked[mv.from_cell] = steps;
          continue;
        }
        if constexpr (kChecksummed) {
          if (fault->corrupt(epoch, steps,
                             static_cast<std::uint64_t>(mv.from_cell),
                             static_cast<std::uint64_t>(mv.to_cell))) {
            // One payload bit flips in transit; the receiver's checksum
            // catches it, the copy is discarded and the intact head packet
            // retransmits next step (same recovery as a drop).
            auto& q = mv.from_horiz ? state[mv.from_cell].horiz
                                    : state[mv.from_cell].vert;
            Packet sent = q.front();
            integrity::flip_payload_bit(
                sent.value,
                fault->corrupt_bit(epoch, steps,
                                   static_cast<std::uint64_t>(mv.from_cell),
                                   static_cast<std::uint64_t>(mv.to_cell)));
            if (integrity::payload_checksum(sent.value) == sent.sum) {
              ErrorContext ctx;
              ctx.engine = "cycle";
              ctx.phase = "route";
              ctx.site = "route_partial.corrupt";
              ctx.seed = fault->config().seed;
              ctx.occurrence = epoch;
              ctx.has_seed = true;
              throw IntegrityError(
                  "corrupted payload passed checksum verification",
                  std::move(ctx));
            }
            fault->count_corrupt_detected();
            fault->count_corrupt_recovered();
            blocked[mv.from_cell] = steps;
            continue;
          }
        }
      }
      auto& q = mv.from_horiz ? state[mv.from_cell].horiz
                              : state[mv.from_cell].vert;
      Packet pk = q.front();
      q.pop_front();
      if constexpr (kChecksummed) {
        if (faulty && integrity::payload_checksum(pk.value) != pk.sum) {
          ErrorContext ctx;
          ctx.engine = "cycle";
          ctx.phase = "route";
          ctx.site = "route_partial.verify";
          ctx.seed = fault->config().seed;
          ctx.occurrence = epoch;
          ctx.has_seed = true;
          throw IntegrityError("routed payload failed checksum verification",
                               std::move(ctx));
        }
      }
      const auto tr = static_cast<std::uint32_t>(mv.to_cell / s);
      const auto tc = static_cast<std::uint32_t>(mv.to_cell % s);
      if (tr == pk.dr && tc == pk.dc) {
        out_rm[mv.to_cell] = pk.value;
        --undelivered;
      } else if (mv.to_horiz) {
        state[mv.to_cell].horiz.push_back(pk);
      } else {
        state[mv.to_cell].vert.push_back(pk);
      }
    }
  }
  return steps;
}

}  // namespace

namespace {

void record(trace::TraceRecorder* trace, trace::Primitive prim,
            MeshShape shape, std::size_t steps) {
  if (trace != nullptr)
    trace->count(prim, static_cast<double>(shape.size()),
                 static_cast<double>(steps));
}

}  // namespace

std::size_t route_partial(Grid<std::int64_t>& g,
                          const std::vector<std::int64_t>& dest_rm,
                          std::int64_t fill, trace::TraceRecorder* trace,
                          FaultPlan* fault) {
  const MeshShape shape = g.shape();
  std::vector<std::int64_t> payload(shape.size());
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = g.at_rm(i);
  std::vector<std::int64_t> out;
  const std::size_t steps =
      route_partial_generic(shape, payload, dest_rm, out, fill, fault);
  for (std::size_t i = 0; i < out.size(); ++i) g.at_rm(i) = out[i];
  record(trace, trace::Primitive::kRoute, shape, steps);
  return steps;
}

std::size_t segmented_snake_broadcast(
    MeshShape shape, std::vector<std::int64_t>& values,
    const std::vector<std::uint8_t>& seg_start, trace::TraceRecorder* trace,
    FaultPlan* fault) {
  MS_CHECK(values.size() == shape.size() && seg_start.size() == shape.size());
  using Pair = std::array<std::int64_t, 2>;  // {is_leader, value}
  std::vector<Pair> packed(shape.size());
  for (std::size_t i = 0; i < packed.size(); ++i)
    packed[i] = Pair{seg_start[i] ? 1 : 0, values[i]};
  auto g = Grid<Pair>::from_snake(shape, packed);
  g.set_fault(fault);
  const std::size_t steps = g.snake_scan(
      [](const Pair& a, const Pair& b) { return b[0] ? b : a; });
  const auto out = g.to_snake();
  for (std::size_t i = 0; i < out.size(); ++i) values[i] = out[i][1];
  record(trace, trace::Primitive::kBroadcast, shape, steps);
  return steps;
}

CycleRarResult cycle_random_access_read(MeshShape shape,
                                        const std::vector<std::int64_t>& table,
                                        const std::vector<std::int64_t>& addr,
                                        std::int64_t fill,
                                        trace::TraceRecorder* trace,
                                        FaultPlan* fault) {
  const std::size_t p = shape.size();
  MS_CHECK(table.size() == p && addr.size() == p);
  CycleRarResult res;

  // Packet: {sort key (address, kNoAddr last), original snake index, value}.
  using Pk = std::array<std::int64_t, 3>;
  constexpr std::int64_t kLast = std::numeric_limits<std::int64_t>::max();
  std::vector<Pk> reqs(p);
  for (std::size_t i = 0; i < p; ++i) {
    MS_CHECK(addr[i] == kNoAddr ||
             (addr[i] >= 0 && static_cast<std::size_t>(addr[i]) <
                                  static_cast<std::size_t>(p)));
    reqs[i] = Pk{addr[i] == kNoAddr ? kLast : addr[i],
                 static_cast<std::int64_t>(i), 0};
  }

  // 1. Sort requests by address into snake order.
  auto g = Grid<Pk>::from_snake(shape, reqs);
  g.set_fault(fault);
  res.steps += g.shearsort(
      [](const Pk& a, const Pk& b) { return a[0] < b[0]; });
  auto sorted = g.to_snake();

  // 2. Mark group leaders (compare with the snake predecessor: 1 step).
  res.steps += 1;
  std::vector<std::uint8_t> leader(p, 0);
  for (std::size_t j = 0; j < p; ++j) {
    if (sorted[j][0] == kLast) continue;
    leader[j] = j == 0 || sorted[j - 1][0] != sorted[j][0];
  }

  // 3. Leaders travel to their target processors (distinct addresses =>
  //    a partial permutation). Payload carries the leader's sorted slot.
  std::vector<std::int64_t> dest_rm(p, -1);
  std::vector<std::int64_t> slot_payload_rm(p, -1);
  for (std::size_t j = 0; j < p; ++j) {
    if (!leader[j]) continue;
    const std::size_t rm_src = shape.snake_to_rowmajor(j);
    dest_rm[rm_src] = static_cast<std::int64_t>(
        shape.snake_to_rowmajor(static_cast<std::size_t>(sorted[j][0])));
    slot_payload_rm[rm_src] = static_cast<std::int64_t>(j);
  }
  std::vector<std::int64_t> arrived_slot_rm;
  res.steps += route_partial_generic(shape, slot_payload_rm, dest_rm,
                                     arrived_slot_rm, std::int64_t{-1}, fault);

  // 4. Targets send their table entry back to the leader's slot.
  std::vector<std::int64_t> back_dest_rm(p, -1), value_payload_rm(p, 0);
  for (std::size_t rm = 0; rm < p; ++rm) {
    if (arrived_slot_rm[rm] < 0) continue;
    const std::size_t snake_here = shape.rowmajor_to_snake(rm);
    back_dest_rm[rm] = static_cast<std::int64_t>(shape.snake_to_rowmajor(
        static_cast<std::size_t>(arrived_slot_rm[rm])));
    value_payload_rm[rm] = table[snake_here];
  }
  std::vector<std::int64_t> fetched_rm;
  res.steps += route_partial_generic(shape, value_payload_rm, back_dest_rm,
                                     fetched_rm, std::int64_t{0}, fault);

  // 5. Segmented broadcast of the fetched records down each address group.
  std::vector<std::int64_t> values(p, 0);
  for (std::size_t j = 0; j < p; ++j)
    values[j] = fetched_rm[shape.snake_to_rowmajor(j)];
  res.steps += segmented_snake_broadcast(shape, values, leader,
                                         /*trace=*/nullptr, fault);

  // 6. Answers travel back to the requesting processors (permutation by
  //    original index).
  std::vector<std::int64_t> ans_dest_rm(p, -1), ans_payload_rm(p, 0);
  for (std::size_t j = 0; j < p; ++j) {
    if (sorted[j][0] == kLast) continue;
    const std::size_t rm_src = shape.snake_to_rowmajor(j);
    ans_dest_rm[rm_src] = static_cast<std::int64_t>(shape.snake_to_rowmajor(
        static_cast<std::size_t>(sorted[j][1])));
    ans_payload_rm[rm_src] = values[j];
  }
  std::vector<std::int64_t> answers_rm;
  res.steps += route_partial_generic(shape, ans_payload_rm, ans_dest_rm,
                                     answers_rm, fill, fault);

  res.out.assign(p, fill);
  for (std::size_t i = 0; i < p; ++i) {
    if (addr[i] == kNoAddr) continue;
    res.out[i] = answers_rm[shape.snake_to_rowmajor(i)];
  }
  record(trace, trace::Primitive::kRar, shape, res.steps);
  return res;
}

CycleRawResult cycle_random_access_write(
    MeshShape shape, std::vector<std::int64_t> table,
    const std::vector<std::int64_t>& addr,
    const std::vector<std::int64_t>& value, trace::TraceRecorder* trace,
    FaultPlan* fault) {
  const std::size_t p = shape.size();
  MS_CHECK(table.size() == p && addr.size() == p && value.size() == p);
  CycleRawResult res;

  // Packet: {address (kNoAddr last), value, unused}.
  using Pk = std::array<std::int64_t, 3>;
  constexpr std::int64_t kLast = std::numeric_limits<std::int64_t>::max();
  std::vector<Pk> reqs(p);
  for (std::size_t i = 0; i < p; ++i) {
    MS_CHECK(addr[i] == kNoAddr ||
             (addr[i] >= 0 &&
              static_cast<std::size_t>(addr[i]) < static_cast<std::size_t>(p)));
    reqs[i] = Pk{addr[i] == kNoAddr ? kLast : addr[i], value[i], 0};
  }

  // 1. Sort by address.
  auto g = Grid<Pk>::from_snake(shape, reqs);
  g.set_fault(fault);
  res.steps += g.shearsort(
      [](const Pk& a, const Pk& b) { return a[0] < b[0]; });
  auto sorted = g.to_snake();

  // 2. Segmented SUM along the snake (group = equal addresses); after the
  //    scan the LAST element of each group holds the group total. Run the
  //    scan over {address, running sum} pairs.
  {
    auto g2 = Grid<Pk>::from_snake(shape, sorted);
    g2.set_fault(fault);
    res.steps += g2.snake_scan([](const Pk& a, const Pk& b) {
      if (a[0] != b[0]) return b;  // new group: restart the sum
      return Pk{b[0], a[1] + b[1], 0};
    });
    sorted = g2.to_snake();
  }

  // 3. Group-total holders (last of each group) route to the targets:
  //    one per distinct address — a partial permutation. (Identifying the
  //    last of a group is one neighbour comparison.)
  res.steps += 1;
  std::vector<std::int64_t> dest_rm(p, -1), payload_rm(p, 0);
  for (std::size_t j = 0; j < p; ++j) {
    if (sorted[j][0] == kLast) continue;
    const bool last = j + 1 == p || sorted[j + 1][0] != sorted[j][0];
    if (!last) continue;
    const std::size_t rm_src = shape.snake_to_rowmajor(j);
    dest_rm[rm_src] = static_cast<std::int64_t>(
        shape.snake_to_rowmajor(static_cast<std::size_t>(sorted[j][0])));
    payload_rm[rm_src] = sorted[j][1];
  }
  std::vector<std::int64_t> totals_rm;
  res.steps += route_partial_generic(shape, payload_rm, dest_rm, totals_rm,
                                     std::int64_t{0}, fault);

  // 4. Targets combine the arrived total into their table entry (local).
  res.table = std::move(table);
  std::vector<std::uint8_t> got(p, 0);
  for (std::size_t rm = 0; rm < p; ++rm)
    if (dest_rm[rm] >= 0) got[static_cast<std::size_t>(dest_rm[rm])] = 1;
  for (std::size_t rm = 0; rm < p; ++rm) {
    if (!got[rm]) continue;
    res.table[shape.rowmajor_to_snake(rm)] += totals_rm[rm];
  }
  record(trace, trace::Primitive::kRaw, shape, res.steps);
  return res;
}

}  // namespace meshsearch::mesh
