// Hilbert-curve indexing on a square mesh.
//
// The snake is meshsearch's canonical array order (snake.hpp): consecutive
// snake indices are grid neighbours, which is what the sort/scan primitives
// need, and every cost bound in the paper is stated along it. The Hilbert
// curve is the locality-tuned alternative: consecutive indices are still
// grid neighbours, but in addition any aligned 2^k x 2^k quadrant maps to one
// contiguous index range, so block-local phases (band routing, submesh
// duplication) touch contiguous memory instead of `side`-strided rows.
//
// DESIGN.md §5 decision 14: the SoA data plane keeps snake order canonical —
// charged costs and outcomes are pinned to it — and uses the Hilbert
// permutation as an opt-in storage order for wall-clock experiments. The
// helpers here are pure index arithmetic (no cost charged); converting an
// array between orders is a host-side relabeling, not a mesh operation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mesh/snake.hpp"

namespace meshsearch::mesh {

/// Hilbert index of grid cell (row, col) on a side x side grid (side a power
/// of two). Inverse of hilbert_to_coord; bijective on [0, side^2).
std::size_t coord_to_hilbert(std::uint32_t side, Coord c);

/// Grid cell of Hilbert index d on a side x side grid.
Coord hilbert_to_coord(std::uint32_t side, std::size_t d);

/// Permutation taking snake order to Hilbert order: perm[h] = snake index of
/// the processor at Hilbert position h. Applying `out[h] = data[perm[h]]`
/// re-lays an array into Hilbert storage order; the inverse relabeling
/// restores snake order bit-exactly.
std::vector<std::uint32_t> hilbert_order(const MeshShape& shape);

}  // namespace meshsearch::mesh
