#include "mesh/snake.hpp"

#include <cstdlib>

namespace meshsearch::mesh {

std::uint64_t ceil_pow2(std::uint64_t n) {
  MS_CHECK(n >= 1);
  std::uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint32_t floor_log2(std::uint64_t n) {
  MS_CHECK(n >= 1);
  std::uint32_t l = 0;
  while (n >>= 1) ++l;
  return l;
}

MeshShape MeshShape::for_elements(std::size_t n) {
  MS_CHECK(n >= 1);
  // side = 2^ceil(log4 n): the smallest power-of-two side with side^2 >= n.
  std::uint64_t side = 1;
  while (side * side < n) side <<= 1;
  return MeshShape(static_cast<std::uint32_t>(side));
}

std::size_t MeshShape::distance(std::size_t a, std::size_t b) const {
  const Coord ca = snake_to_coord(a), cb = snake_to_coord(b);
  const auto d = [](std::uint32_t x, std::uint32_t y) {
    return x > y ? x - y : y - x;
  };
  return d(ca.row, cb.row) + d(ca.col, cb.col);
}

}  // namespace meshsearch::mesh
