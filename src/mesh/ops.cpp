#include "mesh/ops.hpp"

// The counting engine is header-only (templates); this TU anchors the module
// in the library target.
namespace meshsearch::mesh::ops {}
