#include "mesh/ops.hpp"

#include <sstream>

#include "util/error.hpp"

namespace meshsearch::mesh::ops::detail {

void throw_address_violation(const char* op, std::size_t index, Addr addr,
                             std::size_t table_size) {
  std::ostringstream os;
  os << op << ": address out of range: addr[" << index << "]=" << addr
     << " table_size=" << table_size;
  ErrorContext ctx;
  ctx.engine = "counting";
  ctx.phase = op;
  ctx.site = "mesh/ops.hpp";
  throw IntegrityError(os.str(), std::move(ctx));
}

}  // namespace meshsearch::mesh::ops::detail
