// Composite operations on the cycle engine, built only from the grid's
// step-level primitives: partial greedy routing, segmented snake
// broadcast, and the centerpiece — the full sort-based concurrent-read
// RANDOM ACCESS READ, the workhorse every multisearch algorithm charges
// via CostModel::rar. Running it physically validates that the charged
// operation is implementable on the machine model and measures its real
// step count (a sqrt(p) log p object here, because the cycle engine's sort
// is shearsort; the counting engine charges the optimal bound instead).
//
// The RAR construction (standard, e.g. Miller & Stout):
//   1. sort the requests by target address into snake order   (shearsort)
//   2. mark group leaders (first request of each address run) (1 step)
//   3. leaders' requests travel to their target processors    (partial route)
//   4. targets send the fetched record back to the leaders    (partial route)
//   5. the fetched record is propagated down each group       (segmented
//      snake broadcast ~ one scan)
//   6. answers travel back to the requesting processors       (route by qid)
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/grid.hpp"
#include "mesh/snake.hpp"
#include "trace/trace.hpp"

namespace meshsearch::mesh {

// Every composite operation takes an optional trace sink and records its
// MEASURED step count under the same primitive label the counting engine
// charges (kRoute / kBroadcast / kRar / kRaw), so one workload run through
// both engines yields directly comparable traces. The optional FaultPlan
// (mesh/fault.hpp) injects stalls/drops into the routing sweeps and retried
// steps into the lockstep sub-operations: data outcomes are unchanged, only
// the measured step counts grow; null or disarmed changes nothing.

/// Partial permutation routing on a value grid: packet i (row-major) goes
/// to row-major dest_rm[i]; entries < 0 carry no packet. Destinations must
/// be distinct. Cells that receive no packet keep `fill`. Returns steps.
std::size_t route_partial(Grid<std::int64_t>& g,
                          const std::vector<std::int64_t>& dest_rm,
                          std::int64_t fill,
                          trace::TraceRecorder* trace = nullptr,
                          FaultPlan* fault = nullptr);

/// Segmented broadcast along the snake: positions where seg_start is true
/// keep their value; every other position copies the nearest seg_start
/// value above it in snake order. Implemented as a snake scan over
/// (flag, value) pairs. Returns steps (~3 * side).
std::size_t segmented_snake_broadcast(MeshShape shape,
                                      std::vector<std::int64_t>& values,
                                      const std::vector<std::uint8_t>& seg_start,
                                      trace::TraceRecorder* trace = nullptr,
                                      FaultPlan* fault = nullptr);

struct CycleRarResult {
  std::vector<std::int64_t> out;  ///< out[i] = table[addr[i]] or `fill`
  std::size_t steps = 0;          ///< exact simulated steps
};

/// Physical random access read: each processor i (snake order) holds table
/// entry table[i] and (optionally) a request addr[i] (snake address;
/// kNoAddr = none). Concurrent reads of one address are served by the
/// group-leader + segmented-broadcast construction above.
inline constexpr std::int64_t kNoAddr = -1;
CycleRarResult cycle_random_access_read(MeshShape shape,
                                        const std::vector<std::int64_t>& table,
                                        const std::vector<std::int64_t>& addr,
                                        std::int64_t fill = 0,
                                        trace::TraceRecorder* trace = nullptr,
                                        FaultPlan* fault = nullptr);

struct CycleRawResult {
  std::vector<std::int64_t> table;  ///< updated table
  std::size_t steps = 0;
};

/// Physical random access write with combining: table[addr[i]] +=
/// value[i] (sum combining — the canonical associative+commutative merge).
/// Construction: sort (addr, value) pairs by address, segmented snake SUM
/// per address group (leaders end with the group total), leaders route
/// their totals to the targets.
CycleRawResult cycle_random_access_write(MeshShape shape,
                                         std::vector<std::int64_t> table,
                                         const std::vector<std::int64_t>& addr,
                                         const std::vector<std::int64_t>& value,
                                         trace::TraceRecorder* trace = nullptr,
                                         FaultPlan* fault = nullptr);

}  // namespace meshsearch::mesh
