#include "mesh/cost.hpp"

// Header-only; this translation unit exists so the module participates in
// the library target and any future non-inline helpers have a home.
namespace meshsearch::mesh {}
