// SoA kernel layer for the counting engine (DESIGN.md §5, decision 14).
//
// The counting engine's hot call sites keep their data as structure-of-arrays
// — integer keys, payload indices, and segment flags in separate contiguous
// vectors, indexed by the snake position of the owning processor — and the
// kernels here transform those arrays with branch-light, cache-friendly
// passes:
//
//   * radix_sort_u64 / sort_values / sort_index — LSD radix sort on integer
//     keys (8-bit digits), replacing comparison std::stable_sort at the
//     integer-key call sites. Stable, and deterministic at any host thread
//     count: the histogram pass uses the fixed-chunk parallel_for scheme
//     (util::kFixedChunks), the per-(chunk, digit) cursors partition the
//     output, and the scatter order within a chunk is the input order.
//   * valid_mask — hoists the per-element kNone test of the random-access
//     primitives into a 0/1 mask array the main pass consumes branch-free.
//   * ScratchArena — generation-stamped membership set replacing route's
//     per-call `seen` allocation (no O(n) clear between calls).
//   * prefetch — portable wrapper over __builtin_prefetch for the
//     software-pipelined pointer-chase loops (graph.hpp, hierarchical.hpp,
//     constrained.hpp). On the latency-bound random-access sweeps this is
//     the single largest wall-clock lever (measured ~8x on the visit loop).
//
// Everything here moves wall-clock time only. Charged costs are computed by
// the callers (mesh/ops.hpp) from the mesh geometry alone, and every kernel
// produces bit-identical data to the scalar reference it replaced.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace meshsearch::mesh::ops {

/// Address type for random access operations; kNone marks "no request".
/// (Defined here so both the AoS primitives in ops.hpp and the SoA kernels
/// share one vocabulary without an include cycle.)
using Addr = std::int64_t;
inline constexpr Addr kNone = -1;

namespace soa {

/// Prefetch distance for the software-pipelined pointer-chase loops: far
/// enough to cover DRAM latency at ~1 visit per handful of cycles, small
/// enough that the prefetched lines survive in L1/L2.
inline constexpr std::size_t kPrefetchDistance = 16;

inline void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p);
#else
  (void)p;
#endif
}

/// Order-preserving bijection from signed to unsigned keys: flipping the
/// sign bit makes unsigned radix order equal signed numeric order.
inline std::uint64_t order_key(std::int64_t k) {
  return static_cast<std::uint64_t>(k) ^ (std::uint64_t{1} << 63);
}

/// Reusable buffers for radix_sort_u64 (ping-pong arrays + histograms).
/// Callers that sort repeatedly keep one alive to avoid re-allocation.
struct SortScratch {
  std::vector<std::uint64_t> keys;
  std::vector<std::uint32_t> payload;
  std::vector<std::uint32_t> hist;
};

/// Stable LSD radix sort of keys[0..n) ascending (unsigned order), with the
/// optional payload array permuted alongside. Digit histograms are built
/// over the fixed chunking and merged in chunk order; each (chunk, digit)
/// pair owns a disjoint output range, so the result is bit-identical at any
/// thread count. Passes whose digit is constant across all keys are skipped.
void radix_sort_u64(std::uint64_t* keys, std::uint32_t* payload, std::size_t n,
                    SortScratch& scratch);

/// Sort a vector of signed 64-bit values ascending in place (radix;
/// equivalent to std::stable_sort with std::less). Uses a thread-local
/// SortScratch.
void sort_values(std::vector<std::int64_t>& vals);

/// Stable order permutation of `keys`: returns `order` with order[r] = index
/// of the r-th smallest key, equal keys in index order (exactly what
/// std::stable_sort of iota by key produces).
std::vector<std::uint32_t> sort_index(std::span<const std::int64_t> keys);

/// mask[i] = 1 where addr[i] != kNone — one vectorizable compare pass, so
/// the consuming loop tests a byte instead of branching on a sentinel.
void valid_mask(std::span<const Addr> addr, std::vector<std::uint8_t>& mask);

/// Generation-stamped membership set: begin() starts a new epoch in O(1)
/// (amortized — a stamp wrap or growth pays one clear), mark(i) inserts i
/// and reports whether it was absent. Replaces the per-call
/// `std::vector<uint8_t> seen(n, 0)` pattern in route's collision check.
class ScratchArena {
 public:
  void begin(std::size_t n) {
    if (n > stamp_.size()) stamp_.resize(n, 0);
    if (++gen_ == 0) {  // stamp wrap: all stamps are stale, clear once
      std::fill(stamp_.begin(), stamp_.end(), 0);
      gen_ = 1;
    }
  }
  /// True when i was not yet marked this epoch (and marks it).
  bool mark(std::size_t i) {
    if (stamp_[i] == gen_) return false;
    stamp_[i] = gen_;
    return true;
  }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t gen_ = 0;
};

/// Thread-local arena shared by the route-family primitives.
ScratchArena& route_scratch();

}  // namespace soa
}  // namespace meshsearch::mesh::ops
