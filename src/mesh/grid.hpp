// Cycle engine: a physically faithful mesh-connected computer simulator.
//
// A Grid<T> is a side x side array of processors, each holding one value of
// type T. Algorithms here are executed step by step under the machine model
// of the paper: in one step a processor performs O(1) local work and
// exchanges at most one word with each grid neighbour. Every composite
// operation returns the exact number of steps it took.
//
// Provided operations (with their step counts on a side s mesh):
//   * odd-even transposition row/column sort       — s steps
//   * shearsort into snake order                   — (2⌈log2 s⌉ + 3) * s
//   * snake prefix scan                            — ~3s
//   * broadcast from the top-left processor        — 2(s-1)
//   * greedy XY (dimension-order) permutation routing — measured
//
// The counting engine (mesh/ops.hpp) charges closed-form costs for the same
// operations; the cross-engine tests check that both compute identical data
// and that measured steps track the charged bounds.
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "mesh/fault.hpp"
#include "mesh/integrity.hpp"
#include "mesh/snake.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/parallel_for.hpp"

namespace meshsearch::mesh {

template <typename T>
class Grid {
 public:
  explicit Grid(MeshShape shape) : shape_(shape), cells_(shape.size()) {}

  /// Load values given in snake order.
  static Grid from_snake(MeshShape shape, const std::vector<T>& snake) {
    MS_CHECK(snake.size() == shape.size());
    Grid g(shape);
    for (std::size_t i = 0; i < snake.size(); ++i)
      g.at_rm(shape.snake_to_rowmajor(i)) = snake[i];
    return g;
  }

  MeshShape shape() const { return shape_; }
  std::uint32_t side() const { return shape_.side(); }

  /// Attach an optional trace sink: composite operations (shearsort,
  /// snake_scan, broadcast, route_permutation) record their MEASURED step
  /// counts under the same primitive labels the counting engine charges,
  /// so cross-engine divergence is a queryable metric. Not owned.
  void set_trace(trace::TraceRecorder* t) { trace_ = t; }
  trace::TraceRecorder* trace() const { return trace_; }

  /// Attach an optional fault oracle (mesh/fault.hpp): routing injects
  /// per-step processor stalls, link drops, and in-transit payload
  /// corruption (caught by per-payload checksums, mesh/integrity.hpp);
  /// the lockstep primitives (shearsort, snake_scan, broadcast) add
  /// detected-and-retried steps. Null or disarmed changes nothing.
  /// Not owned.
  void set_fault(FaultPlan* f) { fault_ = f; }
  FaultPlan* fault() const { return fault_; }

  T& at(std::uint32_t r, std::uint32_t c) {
    MS_DCHECK(r < side() && c < side());
    return cells_[static_cast<std::size_t>(r) * side() + c];
  }
  const T& at(std::uint32_t r, std::uint32_t c) const {
    MS_DCHECK(r < side() && c < side());
    return cells_[static_cast<std::size_t>(r) * side() + c];
  }
  T& at_rm(std::size_t rm) { return cells_[rm]; }
  const T& at_rm(std::size_t rm) const { return cells_[rm]; }

  /// Dump the grid contents in snake order.
  std::vector<T> to_snake() const {
    std::vector<T> out(shape_.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = cells_[shape_.snake_to_rowmajor(i)];
    return out;
  }

  // -------------------------------------------------------------------------
  // Sorting
  // -------------------------------------------------------------------------

  /// One odd-even transposition sort of every row in parallel. Rows with
  /// `snake_direction` sort even rows ascending and odd rows descending
  /// (the shearsort row phase); otherwise all rows ascend. Returns steps.
  /// Each phase runs host-parallel over rows: rows touch disjoint cells, so
  /// the result is bit-identical at any thread count; small grids fall back
  /// to the serial path via the grain (see DESIGN.md §5.6).
  template <typename Cmp>
  std::size_t sort_rows(Cmp cmp, bool snake_direction) {
    const std::uint32_t s = side();
    for (std::uint32_t phase = 0; phase < s; ++phase) {
      util::parallel_for(
          std::size_t{0}, s,
          [&](std::size_t row) {
            const auto r = static_cast<std::uint32_t>(row);
            const bool descending = snake_direction && (r & 1u);
            for (std::uint32_t c = phase & 1u; c + 1 < s; c += 2) {
              T& a = at(r, c);
              T& b = at(r, c + 1);
              const bool out_of_order = descending ? cmp(a, b) : cmp(b, a);
              if (out_of_order) std::swap(a, b);
            }
          },
          /*grain=*/16);
    }
    return s;
  }

  /// Odd-even transposition sort of every column (ascending top->bottom).
  /// Host-parallel over columns per phase (disjoint cells per column).
  template <typename Cmp>
  std::size_t sort_cols(Cmp cmp) {
    const std::uint32_t s = side();
    for (std::uint32_t phase = 0; phase < s; ++phase) {
      util::parallel_for(
          std::size_t{0}, s,
          [&](std::size_t col) {
            const auto c = static_cast<std::uint32_t>(col);
            for (std::uint32_t r = phase & 1u; r + 1 < s; r += 2) {
              T& a = at(r, c);
              T& b = at(r + 1, c);
              if (cmp(b, a)) std::swap(a, b);
            }
          },
          /*grain=*/16);
    }
    return s;
  }

  /// Shearsort into snake order. O(sqrt(p) log p) steps — deliberately the
  /// simple suboptimal sort; see mesh/cost.hpp for the discussion.
  template <typename Cmp = std::less<T>>
  std::size_t shearsort(Cmp cmp = {}) {
    std::size_t steps = 0;
    const std::uint32_t s = side();
    std::uint32_t rounds = 1;
    for (std::uint32_t x = 1; x < s; x <<= 1) ++rounds;  // ceil(log2 s) + 1
    for (std::uint32_t i = 0; i < rounds; ++i) {
      steps += sort_rows(cmp, /*snake_direction=*/true);
      steps += sort_cols(cmp);
    }
    steps += sort_rows(cmp, /*snake_direction=*/true);
    steps += lockstep_faults(steps);
    record(trace::Primitive::kSort, steps);
    return steps;
  }

  // -------------------------------------------------------------------------
  // Scan / broadcast
  // -------------------------------------------------------------------------

  /// Inclusive prefix scan along the snake with associative op.
  /// Classic 3-sweep construction: row scans, a column scan of row totals,
  /// then a row broadcast of offsets.
  template <typename Op>
  std::size_t snake_scan(Op op) {
    const std::uint32_t s = side();
    // 1) Each row scans in its snake direction: s-1 steps. Rows are
    //    independent — host-parallel over rows.
    util::parallel_for(
        std::size_t{0}, s,
        [&](std::size_t row) {
          const auto r = static_cast<std::uint32_t>(row);
          if ((r & 1u) == 0)
            for (std::uint32_t c = 1; c < s; ++c)
              at(r, c) = op(at(r, c - 1), at(r, c));
          else
            for (std::uint32_t c = s - 1; c-- > 0;)
              at(r, c) = op(at(r, c + 1), at(r, c));
        },
        /*grain=*/16);
    // 2) Row totals live at the snake-exit end of each row. Scan them down
    //    a single column: s-1 steps to collect + s-1 to scan == modelled as
    //    s steps (totals hop to the exit column first is free: they are
    //    already there).
    std::vector<T> row_total(s);
    for (std::uint32_t r = 0; r < s; ++r)
      row_total[r] = (r & 1u) == 0 ? at(r, s - 1) : at(r, 0);
    std::vector<T> offset(s);  // offset[r] = combined totals of rows < r
    for (std::uint32_t r = 1; r < s; ++r)
      offset[r] = r == 1 ? row_total[0] : op(offset[r - 1], row_total[r - 1]);
    // 3) Broadcast offsets across rows and combine: s-1 steps. Each row
    //    combines its own offset — host-parallel over rows.
    util::parallel_for(
        std::size_t{1}, s,
        [&](std::size_t row) {
          const auto r = static_cast<std::uint32_t>(row);
          for (std::uint32_t c = 0; c < s; ++c)
            at(r, c) = op(offset[r], at(r, c));
        },
        /*grain=*/16);
    std::size_t steps = 3 * static_cast<std::size_t>(s);
    steps += lockstep_faults(steps);
    record(trace::Primitive::kScan, steps);
    return steps;
  }

  /// Broadcast the value at (0,0) to every processor: 2(s-1) steps.
  std::size_t broadcast_from_origin() {
    const std::uint32_t s = side();
    for (std::uint32_t c = 1; c < s; ++c) at(0, c) = at(0, 0);
    // Row 0 is read-only below — the per-row fill parallelizes cleanly.
    util::parallel_for(
        std::size_t{1}, s,
        [&](std::size_t row) {
          const auto r = static_cast<std::uint32_t>(row);
          for (std::uint32_t c = 0; c < s; ++c) at(r, c) = at(0, c);
        },
        /*grain=*/16);
    std::size_t steps = 2 * static_cast<std::size_t>(s - 1);
    steps += lockstep_faults(steps);
    record(trace::Primitive::kBroadcast, steps);
    return steps;
  }

  // -------------------------------------------------------------------------
  // Routing
  // -------------------------------------------------------------------------

  /// Greedy XY permutation routing: packet i (at row-major position i)
  /// must reach row-major position dest_rm[i]; dest_rm is a permutation.
  /// One packet per link per step, FIFO queues, X (row) dimension first.
  /// Returns the number of synchronous steps until delivery completes.
  std::size_t route_permutation(const std::vector<std::uint32_t>& dest_rm);

 private:
  void record(trace::Primitive prim, std::size_t steps) const {
    if (trace_ != nullptr)
      trace_->count(prim, static_cast<double>(shape_.size()),
                    static_cast<double>(steps));
  }

  /// Lockstep primitives (sort/scan/broadcast) synchronize every step, so a
  /// stalled processor is detected immediately and the step simply re-runs:
  /// the data outcome is unchanged, only the measured step count grows.
  std::size_t lockstep_faults(std::size_t steps) const {
    return fault_ != nullptr && fault_->armed() ? fault_->lockstep_extra(steps)
                                                : 0;
  }

  MeshShape shape_;
  std::vector<T> cells_;
  trace::TraceRecorder* trace_ = nullptr;
  FaultPlan* fault_ = nullptr;
};

template <typename T>
std::size_t Grid<T>::route_permutation(const std::vector<std::uint32_t>& dest_rm) {
  const std::uint32_t s = side();
  const std::size_t p = shape_.size();
  MS_CHECK(dest_rm.size() == p);

  struct Packet {
    T value{};
    std::uint32_t dr = 0, dc = 0;  // destination coordinates
    std::uint64_t sum = 0;         // payload checksum (computed while armed)
  };
  // Checksums need byte access to the payload; every T the engines route is
  // trivially copyable, but keep non-copyable instantiations compiling
  // (without transport integrity — corruption needs bit access too).
  constexpr bool kChecksummed = std::is_trivially_copyable_v<T>;
  // Per-cell queues; queue[0] = packets still travelling horizontally,
  // queue[1] = packets travelling vertically.
  struct Cell {
    std::deque<Packet> horiz, vert;
  };
  std::vector<Cell> state(p);
  const bool faulty = fault_ != nullptr && fault_->armed();
  std::size_t undelivered = 0;
  for (std::size_t i = 0; i < p; ++i) {
    Packet pk{cells_[i], dest_rm[i] / s, dest_rm[i] % s, 0};
    if constexpr (kChecksummed) {
      // Checksum at injection; every delivery below verifies it, so any
      // in-transit flip is detected-and-retransmitted, never silent.
      if (faulty) pk.sum = integrity::payload_checksum(pk.value);
    }
    const std::uint32_t r = static_cast<std::uint32_t>(i / s);
    const std::uint32_t c = static_cast<std::uint32_t>(i % s);
    if (r == pk.dr && c == pk.dc) {
      cells_[i] = pk.value;  // already home
    } else {
      ++undelivered;
      if (c != pk.dc)
        state[i].horiz.push_back(pk);
      else
        state[i].vert.push_back(pk);
    }
  }

  std::size_t steps = 0;
  // Each route_permutation call is its own fault epoch, so two calls at the
  // same step index draw independent stall/drop decisions.
  const std::uint64_t epoch = faulty ? fault_->next_route_epoch() : 0;
  const std::size_t base_cap = 64 * static_cast<std::size_t>(s) + 64;
  const std::size_t cap =
      faulty ? static_cast<std::size_t>(
                   static_cast<double>(base_cap) *
                   std::max(1.0, fault_->config().route_cap_factor))
             : base_cap;
  // Per-queue "a drop blocked this queue at step N" stamps. A dropped packet
  // is detected by the receiver's per-step validation and stays at the head
  // of its FIFO for retransmission; any later same-step departure from that
  // queue must also wait (it would dequeue the wrong packet otherwise).
  std::vector<std::uint64_t> blocked_h, blocked_v;
  if (faulty) {
    blocked_h.assign(p, 0);
    blocked_v.assign(p, 0);
  }
  // Synchronous rounds: each cell forwards at most one packet per outgoing
  // link per step. Moves computed against the pre-step state.
  while (undelivered > 0) {
    ++steps;
    if (!faulty) {
      MS_CHECK_MSG(steps <= cap,
                   "routing failed to converge (bug in route_permutation)");
    } else if (steps > cap) {
      ErrorContext ctx;
      ctx.engine = "cycle";
      ctx.phase = "route";
      ctx.site = "route_permutation";
      ctx.seed = fault_->config().seed;
      ctx.occurrence = epoch;
      ctx.has_seed = true;
      throw FaultExhaustedError(
          "routing exceeded its scaled convergence guard under injected "
          "faults",
          std::move(ctx));
    }
    struct Move {
      std::size_t from_cell;
      bool from_horiz;
      std::size_t to_cell;
      bool to_horiz;  // which queue it joins (false = vertical/done)
    };
    // Move generation only READS the pre-step queues, so rows can be
    // scanned host-parallel; per-row move lists are concatenated in row
    // order, which reproduces the serial sweep order exactly (the apply
    // phase below is order-sensitive: pops are FIFO per queue).
    std::vector<std::vector<Move>> row_moves(s);
    util::parallel_for(
        std::size_t{0}, s,
        [&](std::size_t row) {
          const auto r = static_cast<std::uint32_t>(row);
          auto& moves = row_moves[row];
          for (std::uint32_t c = 0; c < s; ++c) {
            const std::size_t cell = static_cast<std::size_t>(r) * s + c;
            // A stalled processor emits nothing this step; its queued
            // packets simply wait. (Pure hash draw — safe from any thread.)
            if (faulty && fault_->stall(epoch, steps, cell)) continue;
            // One horizontal departure per step (east or west link — a
            // packet uses only one, and all packets in this queue share the
            // row direction decision individually; we allow one east + one
            // west).
            auto& hq = state[cell].horiz;
            int sent_east = 0, sent_west = 0;
            for (std::size_t k = 0; k < hq.size();) {
              const Packet& pk = hq[k];
              const bool east = pk.dc > c;
              if (east && sent_east == 0) {
                moves.push_back({cell, true, cell + 1, pk.dc != c + 1});
                ++sent_east;
                ++k;
              } else if (!east && sent_west == 0) {
                moves.push_back({cell, true, cell - 1, pk.dc != c - 1});
                ++sent_west;
                ++k;
              } else {
                break;  // FIFO: head blocked means the rest of the queue waits
              }
            }
            // One vertical departure per step per direction.
            auto& vq = state[cell].vert;
            int sent_south = 0, sent_north = 0;
            for (std::size_t k = 0; k < vq.size();) {
              const Packet& pk = vq[k];
              const bool south = pk.dr > r;
              if (south && sent_south == 0) {
                moves.push_back({cell, false, cell + s, false});
                ++sent_south;
                ++k;
              } else if (!south && sent_north == 0) {
                moves.push_back({cell, false, cell - s, false});
                ++sent_north;
                ++k;
              } else {
                break;
              }
            }
          }
        },
        /*grain=*/16);
    std::vector<Move> moves;
    moves.reserve(p);
    for (const auto& rm : row_moves)
      moves.insert(moves.end(), rm.begin(), rm.end());
    // Apply moves: pop in order recorded (heads first), push to targets.
    for (const Move& mv : moves) {
      if (faulty) {
        auto& blocked = mv.from_horiz ? blocked_h : blocked_v;
        if (blocked[mv.from_cell] == steps) continue;  // behind a drop
        if (fault_->drop(epoch, steps, static_cast<std::uint64_t>(mv.from_cell),
                         static_cast<std::uint64_t>(mv.to_cell))) {
          blocked[mv.from_cell] = steps;  // head retransmits next step
          continue;
        }
        if constexpr (kChecksummed) {
          if (fault_->corrupt(epoch, steps,
                              static_cast<std::uint64_t>(mv.from_cell),
                              static_cast<std::uint64_t>(mv.to_cell))) {
            // The link flips one payload bit of the transmitted copy. The
            // receiver's checksum verification catches the mismatch, the
            // corrupted copy is discarded, and the intact head packet
            // retransmits next step — corruption behaves like a detected
            // drop, never a silent value change.
            auto& q = mv.from_horiz ? state[mv.from_cell].horiz
                                    : state[mv.from_cell].vert;
            Packet sent = q.front();
            integrity::flip_payload_bit(
                sent.value,
                fault_->corrupt_bit(epoch, steps,
                                    static_cast<std::uint64_t>(mv.from_cell),
                                    static_cast<std::uint64_t>(mv.to_cell)));
            if (integrity::payload_checksum(sent.value) == sent.sum) {
              // Unreachable by construction (a single-bit flip always
              // changes the position-mixed fold) — if it ever fires, the
              // integrity layer itself is broken.
              ErrorContext ctx;
              ctx.engine = "cycle";
              ctx.phase = "route";
              ctx.site = "route_permutation.corrupt";
              ctx.seed = fault_->config().seed;
              ctx.occurrence = epoch;
              ctx.has_seed = true;
              throw IntegrityError(
                  "corrupted payload passed checksum verification",
                  std::move(ctx));
            }
            fault_->count_corrupt_detected();
            fault_->count_corrupt_recovered();
            blocked[mv.from_cell] = steps;
            continue;
          }
        }
      }
      auto& q = mv.from_horiz ? state[mv.from_cell].horiz : state[mv.from_cell].vert;
      Packet pk = q.front();
      q.pop_front();
      if constexpr (kChecksummed) {
        // Receiver-side validation of every (non-corrupted) delivery: the
        // payload must still match its injection-time checksum.
        if (faulty && integrity::payload_checksum(pk.value) != pk.sum) {
          ErrorContext ctx;
          ctx.engine = "cycle";
          ctx.phase = "route";
          ctx.site = "route_permutation.verify";
          ctx.seed = fault_->config().seed;
          ctx.occurrence = epoch;
          ctx.has_seed = true;
          throw IntegrityError("routed payload failed checksum verification",
                               std::move(ctx));
        }
      }
      const std::uint32_t tr = static_cast<std::uint32_t>(mv.to_cell / s);
      const std::uint32_t tc = static_cast<std::uint32_t>(mv.to_cell % s);
      if (tr == pk.dr && tc == pk.dc) {
        cells_[mv.to_cell] = pk.value;
        --undelivered;
      } else if (mv.to_horiz) {
        state[mv.to_cell].horiz.push_back(pk);
      } else {
        state[mv.to_cell].vert.push_back(pk);
      }
    }
  }
  record(trace::Primitive::kRoute, steps);
  return steps;
}

}  // namespace meshsearch::mesh
