#include "mesh/ops_soa.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "util/parallel_for.hpp"

namespace meshsearch::mesh::ops::soa {

namespace {
constexpr std::size_t kRadix = 256;
constexpr std::size_t kPasses = 8;  // 8 bits x 8 passes covers uint64
}  // namespace

void radix_sort_u64(std::uint64_t* keys, std::uint32_t* payload, std::size_t n,
                    SortScratch& scratch) {
  if (n < 2) return;
  const std::size_t nchunks = util::fixed_chunk_count(n);
  scratch.keys.resize(n);
  if (payload != nullptr) scratch.payload.resize(n);
  scratch.hist.assign(nchunks * kRadix, 0);

  std::uint64_t* src_k = keys;
  std::uint64_t* dst_k = scratch.keys.data();
  std::uint32_t* src_p = payload;
  std::uint32_t* dst_p = payload != nullptr ? scratch.payload.data() : nullptr;
  std::uint32_t* hist = scratch.hist.data();

  for (std::size_t pass = 0; pass < kPasses; ++pass) {
    const unsigned shift = static_cast<unsigned>(8 * pass);
    std::memset(hist, 0, nchunks * kRadix * sizeof(std::uint32_t));
    // Per-chunk digit histograms over the FIXED chunking — bit-identical at
    // any thread count (DESIGN.md §5.6).
    util::for_fixed_chunks(n, [&](std::size_t c, std::size_t lo,
                                  std::size_t hi) {
      std::uint32_t* h = hist + c * kRadix;
      for (std::size_t i = lo; i < hi; ++i)
        ++h[(src_k[i] >> shift) & 0xff];
    });
    // Serial prefix in (digit-major, chunk-minor) order turns the counts
    // into per-(chunk, digit) start cursors; skip passes whose digit is
    // constant (common for narrow key ranges — only the live bytes pay).
    bool constant = false;
    {
      std::uint32_t pos = 0;
      for (std::size_t d = 0; d < kRadix && !constant; ++d) {
        std::uint32_t digit_total = 0;
        for (std::size_t c = 0; c < nchunks; ++c)
          digit_total += hist[c * kRadix + d];
        if (digit_total == n) constant = true;
      }
      if (!constant) {
        for (std::size_t d = 0; d < kRadix; ++d) {
          for (std::size_t c = 0; c < nchunks; ++c) {
            std::uint32_t& slot = hist[c * kRadix + d];
            const std::uint32_t count = slot;
            slot = pos;
            pos += count;
          }
        }
      }
    }
    if (constant) continue;
    // Stable scatter: each (chunk, digit) cursor owns a disjoint output
    // range, and a chunk writes its elements in input order.
    if (payload != nullptr) {
      util::for_fixed_chunks(n, [&](std::size_t c, std::size_t lo,
                                    std::size_t hi) {
        std::uint32_t* h = hist + c * kRadix;
        for (std::size_t i = lo; i < hi; ++i) {
          const std::uint32_t dst = h[(src_k[i] >> shift) & 0xff]++;
          dst_k[dst] = src_k[i];
          dst_p[dst] = src_p[i];
        }
      });
      std::swap(src_p, dst_p);
    } else {
      util::for_fixed_chunks(n, [&](std::size_t c, std::size_t lo,
                                    std::size_t hi) {
        std::uint32_t* h = hist + c * kRadix;
        for (std::size_t i = lo; i < hi; ++i)
          dst_k[h[(src_k[i] >> shift) & 0xff]++] = src_k[i];
      });
    }
    std::swap(src_k, dst_k);
  }
  // Skipped passes may leave the result in the scratch buffers.
  if (src_k != keys) {
    std::memcpy(keys, src_k, n * sizeof(std::uint64_t));
    if (payload != nullptr)
      std::memcpy(payload, src_p, n * sizeof(std::uint32_t));
  } else if (payload != nullptr && src_p != payload) {
    std::memcpy(payload, src_p, n * sizeof(std::uint32_t));
  }
}

namespace {
SortScratch& local_scratch() {
  thread_local SortScratch scratch;
  return scratch;
}
}  // namespace

void sort_values(std::vector<std::int64_t>& vals) {
  // int64 -> uint64 is the signed/unsigned-variant aliasing exception, so
  // the bias flip and the sort run in place on the vector's own storage.
  auto* u = reinterpret_cast<std::uint64_t*>(vals.data());
  const std::size_t n = vals.size();
  for (std::size_t i = 0; i < n; ++i) u[i] ^= std::uint64_t{1} << 63;
  radix_sort_u64(u, nullptr, n, local_scratch());
  for (std::size_t i = 0; i < n; ++i) u[i] ^= std::uint64_t{1} << 63;
}

std::vector<std::uint32_t> sort_index(std::span<const std::int64_t> keys) {
  const std::size_t n = keys.size();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  SortScratch& scratch = local_scratch();
  std::vector<std::uint64_t> k(n);
  for (std::size_t i = 0; i < n; ++i) k[i] = order_key(keys[i]);
  radix_sort_u64(k.data(), order.data(), n, scratch);
  return order;
}

void valid_mask(std::span<const Addr> addr, std::vector<std::uint8_t>& mask) {
  mask.resize(addr.size());
  for (std::size_t i = 0; i < addr.size(); ++i)
    mask[i] = static_cast<std::uint8_t>(addr[i] != kNone);
}

ScratchArena& route_scratch() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace meshsearch::mesh::ops::soa
