// Counting engine: the standard mesh operations.
//
// Each primitive transforms host arrays exactly as the corresponding mesh
// operation would and returns the Cost charged on a p-processor (sub)mesh
// (see mesh/cost.hpp for the charged bounds). The array index is the snake
// position of the owning processor; arrays may be shorter than p when the
// submesh is partially occupied (cost is still a function of p — idle
// processors do not speed a mesh up).
//
// The physically faithful counterparts of these primitives live in
// mesh/grid.hpp (the cycle engine); the cross-engine tests assert both
// produce identical data.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>
#include <span>
#include <type_traits>
#include <vector>

#include "mesh/cost.hpp"
#include "mesh/ops_soa.hpp"
#include "util/check.hpp"

namespace meshsearch::mesh::ops {

namespace detail {
/// Always-on failure path for the random-access primitives: throws
/// IntegrityError carrying the primitive name, the offending request index,
/// the address, and the table size. Out-of-line so the [[unlikely]] check in
/// the hot loops costs one compare + never-taken branch.
[[noreturn]] void throw_address_violation(const char* op, std::size_t index,
                                          Addr addr, std::size_t table_size);
}  // namespace detail

// ---------------------------------------------------------------------------
// Sorting and order maintenance
// ---------------------------------------------------------------------------

/// Sort `data` into snake order by `cmp`. Stable, so equal keys keep their
/// snake order and results are deterministic. Integer keys under the default
/// comparator take the SoA radix path (same order, same bits, less wall
/// clock); the charged cost is the comparison-sort bound either way, since
/// the mesh algorithm being modeled is unchanged.
template <typename T, typename Cmp = std::less<T>>
Cost sort(std::vector<T>& data, const CostModel& m, double p, Cmp cmp = {}) {
  MS_CHECK(static_cast<double>(data.size()) <= p);
  if constexpr (std::is_same_v<T, std::int64_t> &&
                std::is_same_v<Cmp, std::less<std::int64_t>>) {
    soa::sort_values(data);
  } else {
    std::stable_sort(data.begin(), data.end(), cmp);
  }
  return m.sort(p);
}

/// Rank of each element after sorting by cmp, without moving the data
/// (sort + scan on the mesh). Integer keys under the default comparator rank
/// through the SoA radix index sort, which produces the identical stable
/// order permutation.
template <typename T, typename Cmp = std::less<T>>
Cost rank(const std::vector<T>& data, std::vector<std::uint32_t>& ranks,
          const CostModel& m, double p, Cmp cmp = {}) {
  std::vector<std::uint32_t> order;
  if constexpr (std::is_same_v<T, std::int64_t> &&
                std::is_same_v<Cmp, std::less<std::int64_t>>) {
    order = soa::sort_index(std::span<const std::int64_t>(data));
  } else {
    order.resize(data.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return cmp(data[a], data[b]);
                     });
  }
  ranks.assign(data.size(), 0);
  for (std::uint32_t r = 0; r < order.size(); ++r) ranks[order[r]] = r;
  return m.sort(p) + m.scan(p);
}

// ---------------------------------------------------------------------------
// Scans and reductions
// ---------------------------------------------------------------------------

/// Inclusive prefix scan along the snake with associative `op`.
template <typename T, typename Op = std::plus<T>>
Cost scan_inclusive(std::vector<T>& data, const CostModel& m, double p,
                    Op op = {}) {
  for (std::size_t i = 1; i < data.size(); ++i)
    data[i] = op(data[i - 1], data[i]);
  return m.scan(p);
}

/// Exclusive prefix scan; `identity` fills position 0.
template <typename T, typename Op = std::plus<T>>
Cost scan_exclusive(std::vector<T>& data, const CostModel& m, double p,
                    T identity = {}, Op op = {}) {
  T acc = identity;
  for (auto& x : data) {
    const T next = op(acc, x);
    x = acc;
    acc = next;
  }
  return m.scan(p);
}

/// Segmented inclusive scan: restarts where seg_start[i] is true. The
/// additive case carries the segment-start select as a zeroed operand (a
/// cmov, not a branch) — identical arithmetic within a segment, identity at
/// each restart — so the pass vectorizes despite the flag array.
template <typename T, typename Op = std::plus<T>>
Cost scan_segmented(std::vector<T>& data, const std::vector<std::uint8_t>& seg_start,
                    const CostModel& m, double p, Op op = {}) {
  MS_CHECK(seg_start.size() == data.size());
  if constexpr (std::is_arithmetic_v<T> && std::is_same_v<Op, std::plus<T>>) {
    for (std::size_t i = 1; i < data.size(); ++i) {
      const T carry = seg_start[i] ? T{} : data[i - 1];
      data[i] = static_cast<T>(data[i] + carry);
    }
  } else {
    for (std::size_t i = 1; i < data.size(); ++i)
      if (!seg_start[i]) data[i] = op(data[i - 1], data[i]);
  }
  return m.scan(p);
}

/// Semigroup reduction of all elements to one value.
template <typename T, typename Op = std::plus<T>>
Cost reduce(const std::vector<T>& data, T& out, const CostModel& m, double p,
            T identity = {}, Op op = {}) {
  out = identity;
  for (const auto& x : data) out = op(out, x);
  return m.reduce(p);
}

/// Broadcast one value to all processors (data-wise the caller just uses
/// the value; the mesh pays the step cost).
inline Cost broadcast(const CostModel& m, double p) { return m.broadcast(p); }

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

/// Permutation routing: element i moves to snake position dest[i].
/// dest entries must be unique and < out_size.
template <typename T>
Cost route(const std::vector<T>& data, const std::vector<std::uint32_t>& dest,
           std::vector<T>& out, std::size_t out_size, const CostModel& m,
           double p) {
  MS_CHECK(dest.size() == data.size());
  out.assign(out_size, T{});
  // Collision detection stays on in release builds: a colliding "permutation"
  // silently drops a record, which would corrupt a measurement. The
  // generation-stamped arena replaces a per-call O(out_size) `seen`
  // allocation + clear.
  soa::ScratchArena& seen = soa::route_scratch();
  seen.begin(out_size);
  for (std::size_t i = 0; i < data.size(); ++i) {
    MS_CHECK_MSG(dest[i] < out_size, "route: destination out of range");
    MS_CHECK_MSG(seen.mark(dest[i]), "route: destination collision");
    out[dest[i]] = data[i];
  }
  return m.route(p);
}

/// In-place permutation routing.
template <typename T>
Cost route_inplace(std::vector<T>& data, const std::vector<std::uint32_t>& dest,
                   const CostModel& m, double p) {
  std::vector<T> out;
  const Cost c = route(data, dest, out, data.size(), m, p);
  data = std::move(out);
  return c;
}

// ---------------------------------------------------------------------------
// Random access read / write (the concurrent-access workhorses)
// ---------------------------------------------------------------------------

/// Random access read: out[i] = table[addr[i]] for addr[i] != kNone.
/// Concurrent reads of one address are legal (the mesh construction sorts
/// the requests, fetches once per distinct address, and segmented-broadcasts
/// copies — that is what makes the naive multisearch baselines pay, and the
/// cost charged here is the full construction, duplicates or not).
template <typename T>
Cost random_access_read(std::span<const T> table, std::span<const Addr> addr,
                        std::vector<T>& out, const CostModel& m, double p) {
  out.assign(addr.size(), T{});
  // Hoist the kNone test into a mask pass so the gather loop reads a byte
  // instead of branching on the sentinel; bounds stay checked in release
  // builds (a bad address is data corruption, not a debug-only concern).
  // The unsigned compare catches negatives in the same test.
  thread_local std::vector<std::uint8_t> mask;
  soa::valid_mask(addr, mask);
  for (std::size_t i = 0; i < addr.size(); ++i) {
    if (!mask[i]) continue;
    const Addr a = addr[i];
    if (static_cast<std::uint64_t>(a) >= table.size()) [[unlikely]]
      detail::throw_address_violation("random_access_read", i, a,
                                      table.size());
    out[i] = table[static_cast<std::size_t>(a)];
  }
  return m.rar(p);
}

/// Random access write with combining: table[addr[i]] = combine(table[addr[i]],
/// value[i]). Concurrent writes to one address are merged by `combine`
/// (associative+commutative), as the sort-based mesh RAW does.
template <typename T, typename Combine>
Cost random_access_write(std::span<const Addr> addr, std::span<const T> values,
                         std::vector<T>& table, Combine combine,
                         const CostModel& m, double p) {
  MS_CHECK(addr.size() == values.size());
  for (std::size_t i = 0; i < addr.size(); ++i) {
    const Addr a = addr[i];
    if (a == kNone) continue;
    if (static_cast<std::uint64_t>(a) >= table.size()) [[unlikely]]
      detail::throw_address_violation("random_access_write", i, a,
                                      table.size());
    auto& slot = table[static_cast<std::size_t>(a)];
    slot = combine(slot, values[i]);
  }
  return m.raw(p);
}

/// Histogram RAW: counts[a] = number of requests with addr == a.
inline Cost random_access_count(std::span<const Addr> addr,
                                std::vector<std::uint32_t>& counts,
                                std::size_t table_size, const CostModel& m,
                                double p) {
  counts.assign(table_size, 0);
  for (std::size_t i = 0; i < addr.size(); ++i) {
    const Addr a = addr[i];
    if (a == kNone) continue;
    if (static_cast<std::uint64_t>(a) >= table_size) [[unlikely]]
      detail::throw_address_violation("random_access_count", i, a, table_size);
    ++counts[static_cast<std::size_t>(a)];
  }
  return m.raw(p);
}

// ---------------------------------------------------------------------------
// Compression / distribution
// ---------------------------------------------------------------------------

/// Move elements satisfying `pred` to a contiguous prefix, preserving order.
/// Two passes: count first so the output is sized once (no reallocation
/// copies mid-stream), then a fill pass with the capacity check gone.
template <typename T, typename Pred>
Cost compress(const std::vector<T>& data, Pred pred, std::vector<T>& out,
              const CostModel& m, double p) {
  std::size_t k = 0;
  for (const auto& x : data) k += pred(x) ? 1u : 0u;
  out.clear();
  out.reserve(k);
  for (const auto& x : data)
    if (pred(x)) out.push_back(x);
  return m.compress(p);
}

/// Gather the elements at the given snake positions into a prefix
/// (a compress keyed by position).
template <typename T>
Cost gather(const std::vector<T>& data, std::span<const std::uint32_t> pos,
            std::vector<T>& out, const CostModel& m, double p) {
  out.clear();
  out.reserve(pos.size());
  for (const auto i : pos) {
    MS_DCHECK(i < data.size());
    out.push_back(data[i]);
  }
  return m.compress(p);
}

}  // namespace meshsearch::mesh::ops
