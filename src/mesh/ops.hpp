// Counting engine: the standard mesh operations.
//
// Each primitive transforms host arrays exactly as the corresponding mesh
// operation would and returns the Cost charged on a p-processor (sub)mesh
// (see mesh/cost.hpp for the charged bounds). The array index is the snake
// position of the owning processor; arrays may be shorter than p when the
// submesh is partially occupied (cost is still a function of p — idle
// processors do not speed a mesh up).
//
// The physically faithful counterparts of these primitives live in
// mesh/grid.hpp (the cycle engine); the cross-engine tests assert both
// produce identical data.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>
#include <span>
#include <vector>

#include "mesh/cost.hpp"
#include "util/check.hpp"

namespace meshsearch::mesh::ops {

/// Address type for random access operations; kNone marks "no request".
using Addr = std::int64_t;
inline constexpr Addr kNone = -1;

// ---------------------------------------------------------------------------
// Sorting and order maintenance
// ---------------------------------------------------------------------------

/// Sort `data` into snake order by `cmp`. Stable, so equal keys keep their
/// snake order and results are deterministic.
template <typename T, typename Cmp = std::less<T>>
Cost sort(std::vector<T>& data, const CostModel& m, double p, Cmp cmp = {}) {
  MS_CHECK(static_cast<double>(data.size()) <= p);
  std::stable_sort(data.begin(), data.end(), cmp);
  return m.sort(p);
}

/// Rank of each element after sorting by cmp, without moving the data
/// (sort + scan on the mesh).
template <typename T, typename Cmp = std::less<T>>
Cost rank(const std::vector<T>& data, std::vector<std::uint32_t>& ranks,
          const CostModel& m, double p, Cmp cmp = {}) {
  std::vector<std::uint32_t> order(data.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return cmp(data[a], data[b]);
                   });
  ranks.assign(data.size(), 0);
  for (std::uint32_t r = 0; r < order.size(); ++r) ranks[order[r]] = r;
  return m.sort(p) + m.scan(p);
}

// ---------------------------------------------------------------------------
// Scans and reductions
// ---------------------------------------------------------------------------

/// Inclusive prefix scan along the snake with associative `op`.
template <typename T, typename Op = std::plus<T>>
Cost scan_inclusive(std::vector<T>& data, const CostModel& m, double p,
                    Op op = {}) {
  for (std::size_t i = 1; i < data.size(); ++i)
    data[i] = op(data[i - 1], data[i]);
  return m.scan(p);
}

/// Exclusive prefix scan; `identity` fills position 0.
template <typename T, typename Op = std::plus<T>>
Cost scan_exclusive(std::vector<T>& data, const CostModel& m, double p,
                    T identity = {}, Op op = {}) {
  T acc = identity;
  for (auto& x : data) {
    const T next = op(acc, x);
    x = acc;
    acc = next;
  }
  return m.scan(p);
}

/// Segmented inclusive scan: restarts where seg_start[i] is true.
template <typename T, typename Op = std::plus<T>>
Cost scan_segmented(std::vector<T>& data, const std::vector<std::uint8_t>& seg_start,
                    const CostModel& m, double p, Op op = {}) {
  MS_CHECK(seg_start.size() == data.size());
  for (std::size_t i = 1; i < data.size(); ++i)
    if (!seg_start[i]) data[i] = op(data[i - 1], data[i]);
  return m.scan(p);
}

/// Semigroup reduction of all elements to one value.
template <typename T, typename Op = std::plus<T>>
Cost reduce(const std::vector<T>& data, T& out, const CostModel& m, double p,
            T identity = {}, Op op = {}) {
  out = identity;
  for (const auto& x : data) out = op(out, x);
  return m.reduce(p);
}

/// Broadcast one value to all processors (data-wise the caller just uses
/// the value; the mesh pays the step cost).
inline Cost broadcast(const CostModel& m, double p) { return m.broadcast(p); }

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

/// Permutation routing: element i moves to snake position dest[i].
/// dest entries must be unique and < out_size.
template <typename T>
Cost route(const std::vector<T>& data, const std::vector<std::uint32_t>& dest,
           std::vector<T>& out, std::size_t out_size, const CostModel& m,
           double p) {
  MS_CHECK(dest.size() == data.size());
  out.assign(out_size, T{});
  // Collision detection stays on in release builds: a colliding "permutation"
  // silently drops a record, which would corrupt a measurement.
  std::vector<std::uint8_t> seen(out_size, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    MS_CHECK_MSG(dest[i] < out_size, "route: destination out of range");
    MS_CHECK_MSG(!seen[dest[i]], "route: destination collision");
    seen[dest[i]] = 1;
    out[dest[i]] = data[i];
  }
  return m.route(p);
}

/// In-place permutation routing.
template <typename T>
Cost route_inplace(std::vector<T>& data, const std::vector<std::uint32_t>& dest,
                   const CostModel& m, double p) {
  std::vector<T> out;
  const Cost c = route(data, dest, out, data.size(), m, p);
  data = std::move(out);
  return c;
}

// ---------------------------------------------------------------------------
// Random access read / write (the concurrent-access workhorses)
// ---------------------------------------------------------------------------

/// Random access read: out[i] = table[addr[i]] for addr[i] != kNone.
/// Concurrent reads of one address are legal (the mesh construction sorts
/// the requests, fetches once per distinct address, and segmented-broadcasts
/// copies — that is what makes the naive multisearch baselines pay, and the
/// cost charged here is the full construction, duplicates or not).
template <typename T>
Cost random_access_read(std::span<const T> table, std::span<const Addr> addr,
                        std::vector<T>& out, const CostModel& m, double p) {
  out.assign(addr.size(), T{});
  for (std::size_t i = 0; i < addr.size(); ++i) {
    if (addr[i] == kNone) continue;
    MS_DCHECK(addr[i] >= 0 &&
              static_cast<std::size_t>(addr[i]) < table.size());
    out[i] = table[static_cast<std::size_t>(addr[i])];
  }
  return m.rar(p);
}

/// Random access write with combining: table[addr[i]] = combine(table[addr[i]],
/// value[i]). Concurrent writes to one address are merged by `combine`
/// (associative+commutative), as the sort-based mesh RAW does.
template <typename T, typename Combine>
Cost random_access_write(std::span<const Addr> addr, std::span<const T> values,
                         std::vector<T>& table, Combine combine,
                         const CostModel& m, double p) {
  MS_CHECK(addr.size() == values.size());
  for (std::size_t i = 0; i < addr.size(); ++i) {
    if (addr[i] == kNone) continue;
    MS_DCHECK(addr[i] >= 0 &&
              static_cast<std::size_t>(addr[i]) < table.size());
    auto& slot = table[static_cast<std::size_t>(addr[i])];
    slot = combine(slot, values[i]);
  }
  return m.raw(p);
}

/// Histogram RAW: counts[a] = number of requests with addr == a.
inline Cost random_access_count(std::span<const Addr> addr,
                                std::vector<std::uint32_t>& counts,
                                std::size_t table_size, const CostModel& m,
                                double p) {
  counts.assign(table_size, 0);
  for (const Addr a : addr) {
    if (a == kNone) continue;
    MS_DCHECK(a >= 0 && static_cast<std::size_t>(a) < table_size);
    ++counts[static_cast<std::size_t>(a)];
  }
  return m.raw(p);
}

// ---------------------------------------------------------------------------
// Compression / distribution
// ---------------------------------------------------------------------------

/// Move elements satisfying `pred` to a contiguous prefix, preserving order.
template <typename T, typename Pred>
Cost compress(const std::vector<T>& data, Pred pred, std::vector<T>& out,
              const CostModel& m, double p) {
  out.clear();
  for (const auto& x : data)
    if (pred(x)) out.push_back(x);
  return m.compress(p);
}

/// Gather the elements at the given snake positions into a prefix
/// (a compress keyed by position).
template <typename T>
Cost gather(const std::vector<T>& data, std::span<const std::uint32_t> pos,
            std::vector<T>& out, const CostModel& m, double p) {
  out.clear();
  out.reserve(pos.size());
  for (const auto i : pos) {
    MS_DCHECK(i < data.size());
    out.push_back(data[i]);
  }
  return m.compress(p);
}

}  // namespace meshsearch::mesh::ops
