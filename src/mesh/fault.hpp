// Deterministic fault injection for the simulated mesh.
//
// The paper's machine model is fault-free; a production-scale server is
// not. A FaultPlan is a seed-driven oracle answering "does this processor
// stall / does this link drop a word / does this link corrupt a word /
// does this phase fail?" — every answer is a pure hash of (seed, site,
// occurrence), so a run with faults armed is exactly as deterministic as a
// fault-free run: same seed + same fault plan => bit-identical injections,
// detections, retries and outcomes.
//
// Four injection surfaces, matched to the two engines:
//
//   * cycle engine, routing: a stalled processor emits no packets for one
//     step; a dropped link delivery is detected by the receiver's per-step
//     validation and the packet stays at the head of its FIFO queue
//     (retransmitted next step). A corrupted link delivery flips one bit of
//     the payload in transit; the receiver's per-payload checksum
//     (mesh/integrity.hpp) detects the mismatch and the packet is
//     retransmitted exactly like a drop. All three only add steps — data is
//     never silently corrupted. The convergence guard is scaled while armed
//     and throws FaultExhaustedError if congestion + faults exceed it.
//   * cycle engine, lockstep primitives (shearsort / scan / broadcast): a
//     failed or corrupted step is detected and retried, adding steps under
//     the same primitive label the fault-free run records.
//   * counting engine, phase draws: the multisearch engines checkpoint
//     their inputs per phase (Alg 1 steps 0-4, Constrained steps 1-6 as one
//     unit, Alg 2/3 per log-phase step) and ask draw_phase() how many
//     attempts fail before one succeeds. An attempt fails if the phase
//     draw fires (p_phase) or the end-of-phase checksum audit detects
//     transit corruption (p_corrupt, an independent draw). Failed attempts
//     re-run (and re-charge) the phase; the exponential backoff wait
//     between attempts is charged under trace::Primitive::kBackoff. A
//     phase that fails max_retries + 1 times throws FaultExhaustedError;
//     the stream scheduler catches it, degrades capacity and re-plans.
//
// The fault-free contract: a default-constructed (disarmed) FaultPlan, or
// a null CostModel::fault / Grid fault pointer, changes NOTHING — outcomes,
// charged cost and trace attribution are bit-identical to a build without
// the fault layer (tests/test_determinism.cpp, tests/test_fault.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "trace/trace.hpp"
#include "util/error.hpp"

namespace meshsearch::mesh {

/// Thrown when a phase (or a routing) exhausts its retry budget. The stream
/// scheduler turns this into capacity degradation + batch re-planning;
/// anything else propagating it is a reported failure, never a silent
/// wrong answer. Carries the fault seed, draw site and occurrence counter
/// (both in the message and as structured fields), so the exact failing
/// draw can be replayed from the error alone.
class FaultExhaustedError : public meshsearch::Error {
 public:
  explicit FaultExhaustedError(const std::string& message,
                               ErrorContext ctx = {})
      : Error(message, std::move(ctx)) {}

  std::uint64_t seed() const noexcept { return context().seed; }
  const std::string& site() const noexcept { return context().site; }
  std::uint64_t occurrence() const noexcept { return context().occurrence; }
};

struct FaultConfig {
  std::uint64_t seed = 0;     ///< fault-plan seed (independent of workloads)
  double p_stall = 0.0;       ///< per (step, cell) processor-stall probability
  double p_drop = 0.0;        ///< per (step, link) word-drop probability
  double p_corrupt = 0.0;     ///< per (step, link) payload-bit-flip probability
  double p_phase = 0.0;       ///< per-attempt phase-failure probability
  int max_retries = 6;        ///< phase attempts = 1 + up to max_retries
  double backoff_base = 8.0;  ///< backoff after attempt a: base * 2^a steps
  double degrade_factor = 0.5;  ///< surviving capacity share per degradation
  int max_replans = 3;          ///< re-plans before a batch reports degraded
  double route_cap_factor = 16.0;  ///< convergence-guard scale while armed
};

/// Result of one phase draw: how many attempts failed before the first
/// success, and the total exponential-backoff wait charged between them.
struct PhaseDraw {
  std::uint32_t failed_attempts = 0;
  double backoff_steps = 0;
};

/// Aggregate fault statistics, readable at any time (record_fault_metrics
/// exports them as fault.* trace metrics).
struct FaultStats {
  std::uint64_t injected_stalls = 0;
  std::uint64_t injected_drops = 0;
  std::uint64_t corrupt_injected = 0;   ///< payload words corrupted in transit
  std::uint64_t corrupt_detected = 0;   ///< checksum mismatches caught
  std::uint64_t corrupt_recovered = 0;  ///< corrupted deliveries retransmitted
  std::uint64_t detections = 0;  ///< stalls + drops + corruptions + failures
  std::uint64_t phase_failures = 0;
  std::uint64_t phase_retries = 0;  ///< successful re-runs of a failed phase
  std::uint64_t exhausted = 0;      ///< FaultExhaustedError count
  std::uint64_t lockstep_retried_steps = 0;
  double backoff_steps = 0;
  std::uint64_t degraded_batches = 0;
  std::uint64_t replanned_batches = 0;
  double capacity_factor = 1.0;
};

/// Seed-driven fault oracle. Default-constructed plans are DISARMED: every
/// query answers "no fault" without touching any counter, so a disarmed
/// plan threaded through an engine is indistinguishable from no plan.
///
/// Thread-safety: stall()/drop()/corrupt()/corrupt_bit() are pure hashes
/// plus atomic counters and may be called from parallel_for bodies (routing
/// move generation); draw_phase()/lockstep_extra()/next_route_epoch()
/// consume serial draw counters and must be called from phase-driving
/// (span-owning) threads, which the engines already guarantee.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& config) : cfg_(config) {
    armed_ = cfg_.p_stall > 0 || cfg_.p_drop > 0 || cfg_.p_corrupt > 0 ||
             cfg_.p_phase > 0;
  }

  bool armed() const { return armed_; }
  const FaultConfig& config() const { return cfg_; }

  /// Does the processor at row-major `cell` stall at `step` of routing
  /// epoch `epoch`? Pure hash; counts an injection when true.
  bool stall(std::uint64_t epoch, std::uint64_t step, std::uint64_t cell);

  /// Does the link from `from_cell` to `to_cell` drop its word at `step` of
  /// routing epoch `epoch`? Pure hash; counts an injection + detection.
  bool drop(std::uint64_t epoch, std::uint64_t step, std::uint64_t from_cell,
            std::uint64_t to_cell);

  /// Does the link from `from_cell` to `to_cell` corrupt its word at `step`
  /// of routing epoch `epoch`? Pure hash; counts an injection (detection is
  /// counted by the receiver, via count_corrupt_detected, when the payload
  /// checksum mismatches).
  bool corrupt(std::uint64_t epoch, std::uint64_t step,
               std::uint64_t from_cell, std::uint64_t to_cell);

  /// Which payload bit does a corrupted delivery flip? Deterministic
  /// companion draw to corrupt(); the result is reduced modulo the payload
  /// bit width by the caller.
  std::uint64_t corrupt_bit(std::uint64_t epoch, std::uint64_t step,
                            std::uint64_t from_cell,
                            std::uint64_t to_cell) const;

  /// Distinct routing executions must see uncorrelated faults: each call
  /// returns a fresh epoch for the stall()/drop()/corrupt() hashes.
  std::uint64_t next_route_epoch();

  /// Extra retried steps for a lockstep primitive that nominally takes
  /// `steps` steps: each step fails (is detected and retried once) with
  /// p_stall, and independently has its word corrupted-and-caught (checksum
  /// mismatch, one retry) with p_corrupt. Drawn from a serial counter so
  /// successive primitives see independent faults. Returns the extra steps.
  std::size_t lockstep_extra(std::size_t steps);

  /// Draw the retry schedule for one phase execution. Attempt a fails with
  /// p_phase, and independently with p_corrupt (the end-of-phase checksum
  /// audit detecting transit corruption); after a failed attempt the engine
  /// waits backoff_base * 2^a steps. Throws FaultExhaustedError when all
  /// 1 + max_retries attempts fail. Draws are keyed by (seed, name,
  /// per-name occurrence counter), so the schedule is a deterministic
  /// function of the call sequence.
  PhaseDraw draw_phase(std::string_view name);

  /// Shrink surviving capacity by degrade_factor (stream scheduler, after a
  /// batch exhausts its retries).
  void degrade();

  /// Capacity after degradation: max(1, floor(cap * capacity_factor)).
  std::size_t effective_capacity(std::size_t cap) const;

  void count_degraded_batch() { ++stats_degraded_; }
  void count_replanned_batch() { ++stats_replanned_; }

  /// Receiver-side bookkeeping for transit corruption: a checksum mismatch
  /// was detected / the corrupted delivery was retransmitted successfully.
  void count_corrupt_detected() {
    stats_corrupt_detected_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_corrupt_recovered() {
    stats_corrupt_recovered_.fetch_add(1, std::memory_order_relaxed);
  }

  FaultStats stats() const;

 private:
  bool hash_below(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                  std::uint64_t d, double p) const;

  FaultConfig cfg_;
  bool armed_ = false;

  std::atomic<std::uint64_t> route_epoch_{0};
  std::atomic<std::uint64_t> stats_stalls_{0};
  std::atomic<std::uint64_t> stats_drops_{0};
  std::atomic<std::uint64_t> stats_corrupt_injected_{0};
  std::atomic<std::uint64_t> stats_corrupt_detected_{0};
  std::atomic<std::uint64_t> stats_corrupt_recovered_{0};
  std::atomic<std::uint64_t> stats_degraded_{0};
  std::atomic<std::uint64_t> stats_replanned_{0};

  mutable std::mutex mu_;  ///< serial draw state below
  std::uint64_t lockstep_draws_ = 0;
  std::uint64_t lockstep_corrupt_draws_ = 0;
  std::map<std::string, std::uint64_t, std::less<>> phase_occurrence_;
  std::uint64_t stats_phase_failures_ = 0;
  std::uint64_t stats_phase_retries_ = 0;
  std::uint64_t stats_exhausted_ = 0;
  std::uint64_t stats_lockstep_extra_ = 0;
  double stats_backoff_ = 0;
  double capacity_factor_ = 1.0;
};

/// Export the plan's statistics as fault.* metrics into `rec` (both JSON
/// exporters and metrics_table include them). Null `rec` or a disarmed
/// plan is a no-op, preserving fault-free trace bit-identity.
void record_fault_metrics(trace::TraceRecorder* rec, const FaultPlan& plan);

/// Same, with every metric name prefixed — the service layer passes
/// trace::tenant_metric(tenant, "") so a per-stream plan's fault.* family
/// lands under "tenant.<name>.fault.*" instead of the global namespace.
void record_fault_metrics(trace::TraceRecorder* rec, const FaultPlan& plan,
                          std::string_view prefix);

}  // namespace meshsearch::mesh
