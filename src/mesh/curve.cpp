#include "mesh/curve.hpp"

namespace meshsearch::mesh {

namespace {
// One step of the classical Hilbert rotation: reflect/transpose the
// sub-square so the recursion always works on the same base orientation.
void hilbert_rot(std::size_t s, std::uint32_t& x, std::uint32_t& y,
                 std::size_t rx, std::size_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      x = static_cast<std::uint32_t>(s - 1) - x;
      y = static_cast<std::uint32_t>(s - 1) - y;
    }
    const std::uint32_t t = x;
    x = y;
    y = t;
  }
}
}  // namespace

std::size_t coord_to_hilbert(std::uint32_t side, Coord c) {
  MS_DCHECK(c.row < side && c.col < side);
  std::uint32_t x = c.col;
  std::uint32_t y = c.row;
  std::size_t d = 0;
  for (std::size_t s = side / 2; s > 0; s /= 2) {
    const std::size_t rx = (x & s) ? 1 : 0;
    const std::size_t ry = (y & s) ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    hilbert_rot(s, x, y, rx, ry);
  }
  return d;
}

Coord hilbert_to_coord(std::uint32_t side, std::size_t d) {
  MS_DCHECK(d < static_cast<std::size_t>(side) * side);
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::size_t t = d;
  for (std::size_t s = 1; s < side; s *= 2) {
    const std::size_t rx = 1 & (t / 2);
    const std::size_t ry = 1 & (t ^ rx);
    hilbert_rot(s, x, y, rx, ry);
    x += static_cast<std::uint32_t>(s * rx);
    y += static_cast<std::uint32_t>(s * ry);
    t /= 4;
  }
  return Coord{y, x};
}

std::vector<std::uint32_t> hilbert_order(const MeshShape& shape) {
  const std::size_t n = shape.size();
  std::vector<std::uint32_t> perm(n);
  for (std::size_t h = 0; h < n; ++h) {
    const Coord c = hilbert_to_coord(shape.side(), h);
    perm[h] = static_cast<std::uint32_t>(shape.coord_to_snake(c));
  }
  return perm;
}

}  // namespace meshsearch::mesh
