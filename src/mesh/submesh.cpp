#include "mesh/submesh.hpp"

namespace meshsearch::mesh {

Partition::Partition(MeshShape shape, std::uint32_t blocks_per_side)
    : shape_(shape), g_(blocks_per_side) {
  MS_CHECK_MSG(g_ > 0 && (g_ & (g_ - 1)) == 0,
               "blocks_per_side must be a power of two");
  MS_CHECK_MSG(g_ <= shape.side(), "more blocks than processors per side");
  block_side_ = shape.side() / g_;
}

std::vector<std::uint32_t> Partition::block_permutation() const {
  std::vector<std::uint32_t> perm(shape_.size());
  const std::size_t bs = block_size();
  for (std::size_t idx = 0; idx < perm.size(); ++idx)
    perm[idx] =
        static_cast<std::uint32_t>(block_of(idx) * bs + local_of(idx));
  return perm;
}

}  // namespace meshsearch::mesh
