#include "mesh/fault.hpp"

#include <algorithm>
#include <cmath>

namespace meshsearch::mesh {

namespace {

/// splitmix64 finalizer — the same avalanche mix util::Rng builds on. Fault
/// draws must be independent of workload RNG streams, so the plan seeds its
/// own hash chain instead of sharing util::Rng state.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash4(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                    std::uint64_t d) {
  return mix64(mix64(mix64(mix64(a) ^ b) ^ c) ^ d);
}

/// Map a 64-bit hash to [0, 1) and compare against p.
bool below(std::uint64_t h, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^53
  return u < p;
}

std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the phase name
  for (const char ch : name)
    h = (h ^ static_cast<unsigned char>(ch)) * 0x100000001b3ull;
  return h;
}

}  // namespace

bool FaultPlan::hash_below(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                           std::uint64_t d, double p) const {
  return below(hash4(cfg_.seed ^ a, b, c, d), p);
}

bool FaultPlan::stall(std::uint64_t epoch, std::uint64_t step,
                      std::uint64_t cell) {
  if (!armed_ || cfg_.p_stall <= 0) return false;
  // Domain tag 1: stall draws never collide with drop draws.
  if (!hash_below(1, epoch, step, cell, cfg_.p_stall)) return false;
  stats_stalls_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultPlan::drop(std::uint64_t epoch, std::uint64_t step,
                     std::uint64_t from_cell, std::uint64_t to_cell) {
  if (!armed_ || cfg_.p_drop <= 0) return false;
  // Domain tag 2; the link identity folds both endpoints.
  if (!hash_below(2, epoch, step, (from_cell << 32) ^ to_cell, cfg_.p_drop))
    return false;
  stats_drops_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultPlan::corrupt(std::uint64_t epoch, std::uint64_t step,
                        std::uint64_t from_cell, std::uint64_t to_cell) {
  if (!armed_ || cfg_.p_corrupt <= 0) return false;
  // Domain tag 5: independent of stall/drop draws on the same link+step.
  if (!hash_below(5, epoch, step, (from_cell << 32) ^ to_cell, cfg_.p_corrupt))
    return false;
  stats_corrupt_injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t FaultPlan::corrupt_bit(std::uint64_t epoch, std::uint64_t step,
                                     std::uint64_t from_cell,
                                     std::uint64_t to_cell) const {
  // Domain tag 6: the bit choice is a pure companion hash to corrupt(), so
  // the same (epoch, step, link) always flips the same bit.
  return hash4(cfg_.seed ^ 6, epoch, step, (from_cell << 32) ^ to_cell);
}

std::uint64_t FaultPlan::next_route_epoch() {
  return route_epoch_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t FaultPlan::lockstep_extra(std::size_t steps) {
  if (!armed_ || (cfg_.p_stall <= 0 && cfg_.p_corrupt <= 0)) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t extra = 0;
  if (cfg_.p_stall > 0) {
    for (std::size_t k = 0; k < steps; ++k)
      // Domain tag 3. A failed lockstep step is detected by the per-step
      // validation and retried exactly once (the retry itself is assumed to
      // land — a second failure would fold into p_stall^2, below noise).
      if (hash_below(3, lockstep_draws_++, k, 0, cfg_.p_stall)) ++extra;
  }
  if (cfg_.p_corrupt > 0) {
    // Domain tag 8, separate serial counter: a corrupted lockstep word is
    // caught by the per-payload checksum and the step retried once. Keeping
    // the counter separate leaves p_stall-only draw streams bit-identical
    // to plans without p_corrupt.
    std::size_t corrupted = 0;
    for (std::size_t k = 0; k < steps; ++k)
      if (hash_below(8, lockstep_corrupt_draws_++, k, 0, cfg_.p_corrupt))
        ++corrupted;
    if (corrupted > 0) {
      stats_corrupt_injected_.fetch_add(corrupted, std::memory_order_relaxed);
      stats_corrupt_detected_.fetch_add(corrupted, std::memory_order_relaxed);
      stats_corrupt_recovered_.fetch_add(corrupted,
                                         std::memory_order_relaxed);
      extra += corrupted;
    }
  }
  stats_lockstep_extra_ += extra;
  return extra;
}

PhaseDraw FaultPlan::draw_phase(std::string_view name) {
  PhaseDraw d;
  if (!armed_ || (cfg_.p_phase <= 0 && cfg_.p_corrupt <= 0)) return d;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = phase_occurrence_.find(name);
  if (it == phase_occurrence_.end())
    it = phase_occurrence_.emplace(std::string(name), 0).first;
  const std::uint64_t occurrence = it->second++;
  const std::uint64_t key = hash_name(name);
  const std::uint32_t attempts_allowed =
      1u + static_cast<std::uint32_t>(std::max(0, cfg_.max_retries));
  std::uint64_t corrupted_attempts = 0;
  for (std::uint32_t a = 0; a < attempts_allowed; ++a) {
    // Domain tag 4 (phase failure) and tag 7 (end-of-phase checksum audit
    // catching transit corruption); one independent draw of each per
    // attempt. p_corrupt draws consume no serial state beyond the shared
    // occurrence counter, so p_phase-only streams are unchanged.
    const bool phase_fail = hash_below(4, key, occurrence, a, cfg_.p_phase);
    const bool corrupt_fail = hash_below(7, key, occurrence, a, cfg_.p_corrupt);
    if (corrupt_fail) ++corrupted_attempts;
    if (!phase_fail && !corrupt_fail) {
      d.failed_attempts = a;
      stats_phase_failures_ += a;
      stats_phase_retries_ += a;
      if (corrupted_attempts > 0) {
        stats_corrupt_injected_.fetch_add(corrupted_attempts,
                                          std::memory_order_relaxed);
        stats_corrupt_detected_.fetch_add(corrupted_attempts,
                                          std::memory_order_relaxed);
        stats_corrupt_recovered_.fetch_add(corrupted_attempts,
                                           std::memory_order_relaxed);
      }
      // Exponential backoff between attempts: base * 2^j after attempt j.
      for (std::uint32_t j = 0; j < a; ++j)
        d.backoff_steps += cfg_.backoff_base * std::ldexp(1.0, static_cast<int>(j));
      stats_backoff_ += d.backoff_steps;
      return d;
    }
  }
  stats_phase_failures_ += attempts_allowed;
  ++stats_exhausted_;
  if (corrupted_attempts > 0) {
    // Corruptions on exhausted attempts were detected but not recovered.
    stats_corrupt_injected_.fetch_add(corrupted_attempts,
                                      std::memory_order_relaxed);
    stats_corrupt_detected_.fetch_add(corrupted_attempts,
                                      std::memory_order_relaxed);
  }
  ErrorContext ctx;
  ctx.phase = std::string(name);
  ctx.site = std::string(name);
  ctx.seed = cfg_.seed;
  ctx.occurrence = occurrence;
  ctx.has_seed = true;
  throw FaultExhaustedError("phase '" + std::string(name) + "' failed " +
                                std::to_string(attempts_allowed) +
                                " attempts (retry budget exhausted)",
                            std::move(ctx));
}

void FaultPlan::degrade() {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_factor_ *= cfg_.degrade_factor;
}

std::size_t FaultPlan::effective_capacity(std::size_t cap) const {
  std::lock_guard<std::mutex> lock(mu_);
  const double c = std::floor(static_cast<double>(cap) * capacity_factor_);
  return std::max<std::size_t>(1, static_cast<std::size_t>(c));
}

FaultStats FaultPlan::stats() const {
  FaultStats s;
  s.injected_stalls = stats_stalls_.load(std::memory_order_relaxed);
  s.injected_drops = stats_drops_.load(std::memory_order_relaxed);
  s.corrupt_injected =
      stats_corrupt_injected_.load(std::memory_order_relaxed);
  s.corrupt_detected =
      stats_corrupt_detected_.load(std::memory_order_relaxed);
  s.corrupt_recovered =
      stats_corrupt_recovered_.load(std::memory_order_relaxed);
  s.degraded_batches = stats_degraded_.load(std::memory_order_relaxed);
  s.replanned_batches = stats_replanned_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.phase_failures = stats_phase_failures_;
  s.phase_retries = stats_phase_retries_;
  s.exhausted = stats_exhausted_;
  s.lockstep_retried_steps = stats_lockstep_extra_;
  s.backoff_steps = stats_backoff_;
  s.capacity_factor = capacity_factor_;
  // Every injected fault is detected (that is the point: never a silent
  // wrong answer); lockstep retries detect one fault per retried step.
  s.detections = s.injected_stalls + s.injected_drops + s.corrupt_detected +
                 s.phase_failures + s.lockstep_retried_steps;
  return s;
}

void record_fault_metrics(trace::TraceRecorder* rec, const FaultPlan& plan) {
  record_fault_metrics(rec, plan, "");
}

void record_fault_metrics(trace::TraceRecorder* rec, const FaultPlan& plan,
                          std::string_view prefix) {
  if (rec == nullptr || !plan.armed()) return;
  const FaultStats s = plan.stats();
  // rec->metric() is backed by the recorder's StatsRegistry, so these land
  // in the same store the wall-clock histograms and stream.* SLO gauges use
  // — all three exporters (Perfetto, metrics JSON, metrics_table) read the
  // fault.* family from that one source. The prefix puts a per-stream plan's
  // family under its owner's namespace (e.g. "tenant.acme." -> the service
  // layer's per-tenant fault report).
  const auto metric = [&](const char* name, double value) {
    rec->metric(std::string(prefix) + name, value);
  };
  metric("fault.injected_stalls", static_cast<double>(s.injected_stalls));
  metric("fault.injected_drops", static_cast<double>(s.injected_drops));
  metric("fault.corrupt.injected", static_cast<double>(s.corrupt_injected));
  metric("fault.corrupt.detected", static_cast<double>(s.corrupt_detected));
  metric("fault.corrupt.recovered", static_cast<double>(s.corrupt_recovered));
  metric("fault.detections", static_cast<double>(s.detections));
  metric("fault.phase_failures", static_cast<double>(s.phase_failures));
  metric("fault.phase_retries", static_cast<double>(s.phase_retries));
  metric("fault.exhausted", static_cast<double>(s.exhausted));
  metric("fault.lockstep_retried_steps",
         static_cast<double>(s.lockstep_retried_steps));
  metric("fault.backoff_steps", s.backoff_steps);
  metric("fault.degraded_batches", static_cast<double>(s.degraded_batches));
  metric("fault.replanned_batches", static_cast<double>(s.replanned_batches));
  metric("fault.capacity_factor", s.capacity_factor);
}

}  // namespace meshsearch::mesh
