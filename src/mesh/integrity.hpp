// Per-payload transport integrity for the cycle engine.
//
// Every word the cycle engine routes or permutes can carry a 64-bit
// checksum computed at injection and verified at delivery. The checksum is
// a position-mixed splitmix64 fold over the payload's bytes:
//
//     h = XOR over 64-bit words i of  mix64(word_i ^ mix64(i + 1))
//
// mix64 is a bijection, so flipping any single bit of any word changes
// exactly one term of the fold — a single-bit in-transit flip (the
// FaultPlan p_corrupt model) is detected with certainty, not just with
// 1 - 2^-64 probability. Multi-bit flips within one word are likewise
// certain; only colliding flips across words could cancel, which the
// injector never produces.
//
// Checksums are computed only while a fault plan with p_corrupt > 0 is
// armed (or a paranoid audit asks for them), so fault-free runs charge and
// execute bit-identically to builds without this header.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace meshsearch::mesh::integrity {

/// splitmix64 finalizer (same mix as the fault plan's hash chain).
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Position-mixed checksum of a trivially-copyable payload. A tail of
/// fewer than 8 bytes is zero-padded into its word.
template <typename T>
std::uint64_t payload_checksum(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "checksummed payloads must be trivially copyable");
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  std::uint64_t h = 0;
  std::uint64_t i = 0;
  std::size_t off = 0;
  while (off < sizeof(T)) {
    std::uint64_t word = 0;
    const std::size_t n =
        sizeof(T) - off < 8 ? sizeof(T) - off : std::size_t{8};
    std::memcpy(&word, bytes + off, n);
    h ^= mix64(word ^ mix64(++i));
    off += 8;
  }
  return h;
}

/// Flip one bit of a payload in place (the in-transit corruption model).
/// `bit` is reduced modulo the payload's bit width.
template <typename T>
void flip_payload_bit(T& value, std::uint64_t bit) {
  static_assert(std::is_trivially_copyable_v<T>,
                "corrupted payloads must be trivially copyable");
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  const std::uint64_t b = bit % (8 * sizeof(T));
  bytes[b / 8] ^= static_cast<unsigned char>(1u << (b % 8));
  std::memcpy(&value, bytes, sizeof(T));
}

/// Order-independent fold of per-item checksums — the end-to-end audit
/// value paranoid mode compares across engine and oracle runs.
inline std::uint64_t fold_checksum(std::uint64_t acc, std::uint64_t item) {
  return acc ^ mix64(item);
}

}  // namespace meshsearch::mesh::integrity
