// Submesh partition algebra.
//
// The paper's algorithms repeatedly partition the sqrt(n) x sqrt(n) mesh
// into a g x g grid of square submeshes ("B_i-partitionings",
// "delta-submeshes") and run independently inside each. A Partition captures
// that decomposition and the index maps between
//
//   * global snake index on the full mesh, and
//   * (block id, local snake index) within a block,
//
// where blocks are numbered row-major over the block grid. Moving an array
// between the two layouts is a fixed permutation, realized on a mesh by one
// routing; block_permutation() materializes it for the counting engine.
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/snake.hpp"

namespace meshsearch::mesh {

class Partition {
 public:
  /// Partition `shape` into blocks_per_side x blocks_per_side submeshes.
  /// blocks_per_side must be a power of two dividing shape.side().
  Partition(MeshShape shape, std::uint32_t blocks_per_side);

  MeshShape shape() const { return shape_; }
  MeshShape block_shape() const { return MeshShape(block_side_); }
  std::uint32_t blocks_per_side() const { return g_; }
  std::size_t block_count() const { return static_cast<std::size_t>(g_) * g_; }
  std::size_t block_size() const {
    return static_cast<std::size_t>(block_side_) * block_side_;
  }

  /// Block containing the processor at global snake index `idx`.
  std::uint32_t block_of(std::size_t idx) const;
  /// Local snake index within its block of the processor at `idx`.
  std::size_t local_of(std::size_t idx) const;
  /// Global snake index of (block, local snake index).
  std::size_t global_of(std::uint32_t block, std::size_t local) const;

  /// perm[global] = block_of(global) * block_size() + local_of(global):
  /// the permutation taking a global-snake-order array to block-contiguous
  /// layout. Its inverse recovers the global layout.
  std::vector<std::uint32_t> block_permutation() const;

 private:
  MeshShape shape_;
  std::uint32_t g_ = 1;
  std::uint32_t block_side_ = 0;
};

inline std::uint32_t Partition::block_of(std::size_t idx) const {
  const Coord c = shape_.snake_to_coord(idx);
  return (c.row / block_side_) * g_ + (c.col / block_side_);
}

inline std::size_t Partition::local_of(std::size_t idx) const {
  const Coord c = shape_.snake_to_coord(idx);
  return block_shape().coord_to_snake(
      Coord{c.row % block_side_, c.col % block_side_});
}

inline std::size_t Partition::global_of(std::uint32_t block,
                                        std::size_t local) const {
  MS_DCHECK(block < block_count());
  const Coord lc = block_shape().snake_to_coord(local);
  const Coord gc{(block / g_) * block_side_ + lc.row,
                 (block % g_) * block_side_ + lc.col};
  return shape_.coord_to_snake(gc);
}

}  // namespace meshsearch::mesh
