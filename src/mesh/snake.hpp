// Snake-order indexing on a square mesh.
//
// The mesh is a side x side grid of processors. Two linear orders matter:
//   * row-major order  — (r, c) -> r*side + c
//   * snake order      — row-major, but odd rows reversed; consecutive snake
//     indices are always grid neighbours, which is why mesh sorting and
//     scanning are defined along the snake.
// All meshsearch arrays index processors by snake order unless stated
// otherwise.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/check.hpp"

namespace meshsearch::mesh {

struct Coord {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Geometry of a square mesh with side a power of two.
class MeshShape {
 public:
  MeshShape() = default;
  explicit MeshShape(std::uint32_t side);

  /// Smallest power-of-two-sided mesh with at least n processors.
  static MeshShape for_elements(std::size_t n);

  std::uint32_t side() const { return side_; }
  std::size_t size() const { return static_cast<std::size_t>(side_) * side_; }

  Coord snake_to_coord(std::size_t idx) const;
  std::size_t coord_to_snake(Coord c) const;

  std::size_t rowmajor_to_snake(std::size_t rm) const;
  std::size_t snake_to_rowmajor(std::size_t idx) const;

  /// Manhattan (grid) distance between two snake indices.
  std::size_t distance(std::size_t a, std::size_t b) const;

  friend bool operator==(const MeshShape&, const MeshShape&) = default;

 private:
  std::uint32_t side_ = 0;
};

/// Round n up to the next power of two (n >= 1).
std::uint64_t ceil_pow2(std::uint64_t n);

/// Floor of log2 (n >= 1).
std::uint32_t floor_log2(std::uint64_t n);

inline MeshShape::MeshShape(std::uint32_t side) : side_(side) {
  MS_CHECK_MSG(side > 0 && (side & (side - 1)) == 0,
               "mesh side must be a power of two");
}

inline Coord MeshShape::snake_to_coord(std::size_t idx) const {
  MS_DCHECK(idx < size());
  const std::uint32_t r = static_cast<std::uint32_t>(idx / side_);
  const std::uint32_t off = static_cast<std::uint32_t>(idx % side_);
  return Coord{r, (r & 1u) ? side_ - 1 - off : off};
}

inline std::size_t MeshShape::coord_to_snake(Coord c) const {
  MS_DCHECK(c.row < side_ && c.col < side_);
  const std::uint32_t off = (c.row & 1u) ? side_ - 1 - c.col : c.col;
  return static_cast<std::size_t>(c.row) * side_ + off;
}

inline std::size_t MeshShape::rowmajor_to_snake(std::size_t rm) const {
  MS_DCHECK(rm < size());
  return coord_to_snake(Coord{static_cast<std::uint32_t>(rm / side_),
                              static_cast<std::uint32_t>(rm % side_)});
}

inline std::size_t MeshShape::snake_to_rowmajor(std::size_t idx) const {
  const Coord c = snake_to_coord(idx);
  return static_cast<std::size_t>(c.row) * side_ + c.col;
}

}  // namespace meshsearch::mesh
