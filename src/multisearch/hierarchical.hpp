// Multisearch for hierarchical DAGs — paper §3, Algorithm 1, Theorem 2.
//
// A hierarchical DAG has levels L_0..L_h with |L_0| = 1, h = O(log n), every
// edge from L_i to L_{i+1}, and c1*mu^i <= |L_i| <= c2*mu^i for some mu > 1.
//
// Algorithm 1 decomposes the levels into bands B_0..B_{T-1} via the log*
// recursion (B_i spans levels [h - 2 log^{(i)} h, h - 1 - 2 log^{(i+1)} h],
// with log^{(0)} h = h/2) plus a constant-level suffix B*. Band B_i is
// small enough (|B_i| = O(n / (log^{(i)} h)^2)) that a copy fits in each
// submesh of a log^{(i)} h x log^{(i)} h partitioning of the mesh, so all
// queries advance through B_i *locally* in their own submesh. Within a band
// Lemma 1 splits once more: the prefix B_i^1 is replicated into Delta-h_i^2
// sub-submeshes and walked level-by-level there, the O(log Delta-h_i)-level
// suffix B_i^2 is walked level-by-level at submesh scale. B* is walked
// level-by-level on the whole mesh.
//
// Cost accounting is analytic from the band geometry (the machine is
// SIMD-lockstep: a level sweep costs its RAR whether or not a particular
// query is live), which matches the worst case the theorem bounds. Data
// advancement uses the shared master graph: all copies of a band are
// identical, so sharing host memory changes nothing observable (see
// constrained.hpp for the same argument).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "mesh/cost.hpp"
#include "mesh/fault.hpp"
#include "mesh/ops_soa.hpp"
#include "mesh/snake.hpp"
#include "multisearch/graph.hpp"
#include "multisearch/validate.hpp"
#include "util/parallel_for.hpp"

namespace meshsearch::msearch {

/// Level structure of a hierarchical DAG, derived from VertexRecord::level.
///
/// `level_work` generalizes the paper's model slightly: a query may take up
/// to level_work steps per level (edges within a level are then allowed, as
/// produced by the geometry hierarchies' candidate rings/chains — see
/// geometry/dk_hierarchy.hpp). Each level sweep of Algorithm 1 repeats
/// level_work times, a constant factor on every bound.
class HierarchicalDag {
 public:
  /// Group vertices of g by their level field and validate the hierarchical
  /// shape: contiguous levels starting at 0, |L_0| >= 1, every edge from
  /// L_i to L_i (level_work > 1 only) or L_{i+1}, geometric growth ratio mu.
  HierarchicalDag(const DistributedGraph& g, double mu,
                  std::int32_t level_work = 1);

  const DistributedGraph& graph() const { return *g_; }
  std::int32_t height() const {
    return static_cast<std::int32_t>(level_size_.size()) - 1;
  }
  double mu() const { return mu_; }
  std::int32_t level_work() const { return level_work_; }
  std::size_t level_size(std::int32_t i) const {
    return level_size_[static_cast<std::size_t>(i)];
  }
  /// Vertices in levels [lo, hi] inclusive.
  std::size_t band_vertex_count(std::int32_t lo, std::int32_t hi) const;

 private:
  const DistributedGraph* g_;
  double mu_;
  std::int32_t level_work_ = 1;
  std::vector<std::size_t> level_size_;
  std::vector<std::size_t> level_prefix_;  // prefix sums of level_size_
};

/// One band B_i of the decomposition plus its derived submesh geometry.
struct Band {
  std::int32_t lo = 0, hi = 0;     ///< level range, inclusive
  std::size_t vertices = 0;        ///< |B_i| (vertex count)
  std::uint32_t grid = 1;          ///< submeshes per side (the "log^(i) h")
  std::size_t submesh_elems = 0;   ///< processors per B_i-submesh
  std::int32_t split = 0;  ///< first level of B_i^2 (Lemma 1 inner split)
  std::uint32_t inner_grid = 1;    ///< sub-submeshes per side for B_i^1
};

struct HierarchicalPlan {
  std::vector<Band> bands;     ///< B_0 .. B_{T-1}
  std::int32_t bstar_lo = 0;   ///< B* = levels [bstar_lo, h]
  std::int32_t c = 2;          ///< the constant with mu^y >= y^2 for y >= c
};

/// Band construction strategy.
///
/// kPaper is §3's log* decomposition verbatim: O(1) memory per processor,
/// but the bands only exist once log_mu(h) >= c — for slowly-growing DAGs
/// (mu < ~2) that needs h >= mu^c levels, far beyond feasible sizes, and
/// the algorithm degenerates to the O(sqrt(n) log n) level-by-level B*
/// regime (measured in E1/E5).
///
/// kGeometric is our engineering variant: levels are grouped into maximal
/// runs whose cumulative prefix still fits a submesh of the same
/// power-of-two grid, so the grid halves from band to band. Every level is
/// processed in a submesh proportional to the DAG prefix above it, giving
/// the O(sqrt n) total for any mu > 1 at practical sizes — at the price of
/// O(log n) copies per processor instead of the paper's O(1) memory.
enum class PlanKind { kPaper, kGeometric };

/// Compute the band decomposition of §3 for `dag` on a mesh of `shape`.
HierarchicalPlan make_hierarchical_plan(const HierarchicalDag& dag,
                                        mesh::MeshShape shape,
                                        PlanKind kind = PlanKind::kPaper);

/// Step 1 of Algorithm 1: the label(p) registers. For i = T-1 .. 0, every
/// processor in the top-left B_i-submesh of each B_{i+1}-submesh gets
/// label i (later iterations overwrite with smaller indices, exactly as the
/// paper's note describes). Returns one label per processor (snake order),
/// -1 where no band stores data. The Theorem-2 space argument — each
/// B_{i+1}-submesh keeps >= Theta(|B_i|) label-i processors, so one copy of
/// B_i fits with O(1) words per processor — is checked by
/// verify_label_capacity below (and by tests).
std::vector<std::int32_t> band_labels(const HierarchicalPlan& plan,
                                      mesh::MeshShape shape);

/// Check the storage-capacity claim of the Theorem 2 proof: for every band
/// i and every B_{i+1}-submesh, the number of label-i processors is at
/// least half the B_i-submesh size (the paper's 1 - sum (ratio^2) bound
/// with our power-of-two grids gives >= 2/3). Throws on violation.
void verify_label_capacity(const HierarchicalPlan& plan,
                           mesh::MeshShape shape,
                           const std::vector<std::int32_t>& labels);

struct BandCostReport {
  std::int32_t lo = 0, hi = 0;
  std::size_t vertices = 0;
  std::uint32_t grid = 1;
  double setup_steps = 0;  ///< duplication into submeshes (step 3a + 1-2 share)
  double solve_steps = 0;  ///< Lemma 1 solve (step 3b)
  double lemma1_bound = 0; ///< sqrt(|B_i|) * log Delta-h_i, for E1b
};

struct HierarchicalRunResult {
  mesh::Cost cost;
  std::vector<BandCostReport> bands;
  double bstar_steps = 0;
  std::int32_t bstar_levels = 0;
  std::size_t total_visits = 0;
  /// Sweeps actually charged per DAG level (lockstep SIMD execution: a
  /// level's sweep repeats until every query advanced past it, i.e. the max
  /// number of visits any query spent in that level).
  std::vector<std::int32_t> level_sweeps;
};

/// Per-unit retry schedule for Algorithm 1 under an armed FaultPlan: one
/// draw for step 0 (initial multistep), one per band (its setup + Lemma-1
/// solve as one checkpoint unit), one for the B* sweep — in that order.
/// hierarchical_multisearch draws the schedule once and replays its failed
/// attempts in both the host data pass and the charged cost, so the two
/// stay consistent; hierarchical_cost draws its own only when called
/// standalone with an armed fault.
struct Alg1RetrySchedule {
  mesh::PhaseDraw step0;
  std::vector<mesh::PhaseDraw> bands;
  mesh::PhaseDraw bstar;
};

/// Draw the full Algorithm-1 schedule from `fault` (one draw_phase call per
/// unit, in execution order). Throws FaultExhaustedError if any unit
/// exhausts its retry budget.
Alg1RetrySchedule draw_alg1_retries(mesh::FaultPlan& fault,
                                    std::size_t num_bands);

/// Cost of Algorithm 1 (steps 1-4) on `shape`. `sweeps` gives the number of
/// RAR sweeps per DAG level; pass nullptr to charge the worst case
/// (level_work sweeps per level). hierarchical_multisearch measures the
/// realized sweeps during its data pass and charges those — still the
/// lockstep-SIMD max over all queries, just not the static upper bound.
/// `charge_band_setup` = false skips the per-band steps 1-3a charges (sort
/// labels + duplicate B_i): a warm engine (stream.hpp PreparedSearch) pays
/// band_setup_cost once at preparation and reuses the replicas per batch.
/// `retries` replays an already-drawn fault schedule (see Alg1RetrySchedule);
/// with a null `retries` and an armed m.fault the function draws its own.
HierarchicalRunResult hierarchical_cost(
    const HierarchicalDag& dag, const HierarchicalPlan& plan,
    mesh::MeshShape shape, const mesh::CostModel& m,
    const std::vector<std::int32_t>* sweeps = nullptr,
    bool charge_band_setup = true, const Alg1RetrySchedule* retries = nullptr);

/// Exactly the steps 1-3a charges hierarchical_cost makes per band (label
/// registers, band sort, duplication into submeshes), summed over all bands
/// of `plan` — the batch-invariant part a warm engine caches.
mesh::Cost band_setup_cost(const HierarchicalPlan& plan, mesh::MeshShape shape,
                           const mesh::CostModel& m);

/// Algorithm 1: run all queries through the DAG. Queries must start at the
/// level-0 root (the w.l.o.g. full-path assumption of §3; programs whose
/// paths end early simply stop being advanced). Returns the total cost and
/// per-band breakdown.
template <SearchProgram P>
HierarchicalRunResult hierarchical_multisearch(
    const HierarchicalDag& dag, const P& prog, std::vector<Query>& queries,
    const mesh::CostModel& m, mesh::MeshShape shape,
    PlanKind kind = PlanKind::kPaper, bool charge_band_setup = true);

// ---------------------------------------------------------------------------
// implementation
// ---------------------------------------------------------------------------

namespace detail {
/// Advance every query through levels [.., hi] of the DAG (data pass only;
/// costs are analytic). Host-parallel over query chunks, each with its own
/// per-level visit histogram; `sweeps[l]` is raised to the max visits any
/// query spent at level l. Returns total visits. visit_cap guards against a
/// program cycling forever inside a level.
template <SearchProgram P>
std::size_t advance_through_levels(const DistributedGraph& g, const P& prog,
                                   std::vector<Query>& queries,
                                   std::int32_t hi, std::size_t visit_cap,
                                   std::vector<std::int32_t>& sweeps) {
  // Chunking is FIXED (util::kFixedChunks, not thread-count-derived) so the
  // per-chunk reductions below are bit-identical at any MESHSEARCH_THREADS
  // value.
  const std::size_t nchunks = util::fixed_chunk_count(queries.size());
  std::vector<std::size_t> totals(nchunks, 0);
  std::vector<std::vector<std::int32_t>> maxima(nchunks);
  util::for_fixed_chunks(queries.size(), [&](std::size_t c, std::size_t lo_q,
                                             std::size_t hi_q) {
    // Accumulate into chunk-locals and store once at the end: totals and
    // maxima rows of adjacent chunks share cache lines, and this loop is
    // the hottest in the simulator (false sharing showed up as a top cost).
    std::vector<std::int32_t> chunk_max(sweeps.size(), 0);
    std::size_t chunk_total = 0;
    // Round-robin over the live queries instead of draining each query to
    // completion: with many independent pointer chases in flight, each
    // iteration can prefetch the vertex a query kPrefetchDistance slots
    // ahead will touch, hiding the DRAM latency that dominates this loop.
    // Queries are independent and the reductions are per-query sums/maxima,
    // so the interleaving cannot change any outcome or counter. Because
    // edge levels are non-decreasing along any path (validated at the
    // engine front door), a query's visits at one level form a single
    // contiguous run — run_len IS the per-(query, level) visit count the
    // old per_level histogram tracked, flushed into chunk_max when the
    // level changes or the query leaves the band.
    std::vector<std::uint32_t> live;
    std::vector<std::int32_t> run_lvl, run_len;
    live.reserve(hi_q - lo_q);
    for (std::size_t i = lo_q; i < hi_q; ++i)
      if (!queries[i].done) live.push_back(static_cast<std::uint32_t>(i));
    run_lvl.assign(live.size(), -1);
    run_len.assign(live.size(), 0);
    while (!live.empty()) {
      std::size_t w = 0;
      const std::size_t n_live = live.size();
      for (std::size_t k = 0; k < n_live; ++k) {
        if (k + mesh::ops::soa::kPrefetchDistance < n_live) {
          const Query& qa =
              queries[live[k + mesh::ops::soa::kPrefetchDistance]];
          if (qa.current != kNoVertex && qa.next != kNoVertex)
            mesh::ops::soa::prefetch(&g.vert(qa.next));
        }
        const std::uint32_t qi = live[k];
        Query& q = queries[qi];
        std::int32_t rl = run_lvl[k];
        std::int32_t rn = run_len[k];
        bool keep = false;
        MS_CHECK_MSG(static_cast<std::size_t>(q.steps) <= visit_cap,
                     "query exceeded the per-level work bound");
        // Peek the level of the vertex the query would visit next.
        // (start() is required to be pure, so peeking is safe.)
        const Vid peek = q.current == kNoVertex ? prog.start(q) : q.next;
        if (peek == kNoVertex) {
          q.done = true;
        } else {
          const std::int32_t lvl = g.vert(peek).level;
          // lvl > hi: belongs to a later band; drop from this pass.
          if (lvl <= hi && advance_one(g, prog, q)) {
            if (lvl != rl) {
              MS_DCHECK(lvl > rl);  // monotone levels => contiguous runs
              if (rn > 0)
                chunk_max[static_cast<std::size_t>(rl)] =
                    std::max(chunk_max[static_cast<std::size_t>(rl)], rn);
              rl = lvl;
              rn = 0;
            }
            ++rn;
            ++chunk_total;
            keep = true;
          }
        }
        if (keep) {
          live[w] = qi;
          run_lvl[w] = rl;
          run_len[w] = rn;
          ++w;
        } else if (rn > 0) {
          chunk_max[static_cast<std::size_t>(rl)] =
              std::max(chunk_max[static_cast<std::size_t>(rl)], rn);
        }
      }
      live.resize(w);
      run_lvl.resize(w);
      run_len.resize(w);
    }
    totals[c] = chunk_total;
    maxima[c] = std::move(chunk_max);
  });
  std::size_t total = 0;
  for (std::size_t c = 0; c < nchunks; ++c) {
    total += totals[c];
    for (std::size_t l = 0; l < sweeps.size(); ++l)
      sweeps[l] = std::max(sweeps[l], maxima[c][l]);
  }
  return total;
}
}  // namespace detail

template <SearchProgram P>
HierarchicalRunResult hierarchical_multisearch(
    const HierarchicalDag& dag, const P& prog, std::vector<Query>& queries,
    const mesh::CostModel& m, mesh::MeshShape shape, PlanKind kind,
    bool charge_band_setup) {
  // Front door: reject malformed input before any phase is charged.
  const char* engine =
      kind == PlanKind::kPaper ? "alg1-paper" : "alg1-geometric";
  validate_graph(dag.graph(), engine);
  validate_graph_fits(dag.graph(), shape, engine);
  validate_batch_size(queries.size(), shape.size(), engine);
  const HierarchicalPlan plan = make_hierarchical_plan(dag, shape, kind);
  reset_queries(queries);
  const DistributedGraph& g = dag.graph();
  // Paranoid mode: snapshot the post-reset input for the shadow oracle.
  const bool paranoid = paranoid_enabled();
  std::vector<Query> shadow;
  if (paranoid) shadow = queries;
  const std::size_t visit_cap =
      static_cast<std::size_t>(dag.height() + 2) *
      static_cast<std::size_t>(4 * dag.level_work() + 8);
  // Data pass, band by band, measuring the realized per-level sweep counts
  // (the lockstep machine repeats each level sweep until every query has
  // advanced past the level). Charges no simulated steps; the span records
  // its wall-clock time for the host-side profile.
  std::vector<std::int32_t> sweeps(static_cast<std::size_t>(dag.height()) + 1,
                                   0);
  // Under an armed fault plan, draw the whole retry schedule up front so the
  // host data pass and the charged cost replay identical failed attempts.
  std::optional<Alg1RetrySchedule> retries;
  if (m.fault != nullptr && m.fault->armed())
    retries = draw_alg1_retries(*m.fault, plan.bands.size());
  // A failed attempt physically re-runs a unit's data pass on a scratch copy
  // of the query state (the checkpoint is the unit's input), so recovery
  // never leaks partial progress into the real state.
  auto wasted_attempts = [&](std::uint32_t failed, std::int32_t hi) {
    for (std::uint32_t a = 0; a < failed; ++a) {
      std::vector<Query> scratch = queries;
      std::vector<std::int32_t> scratch_sweeps = sweeps;
      detail::advance_through_levels(g, prog, scratch, hi, visit_cap,
                                     scratch_sweeps);
    }
  };
  std::size_t total_visits = 0;
  {
    TRACE_SPAN(m.trace, "alg1.data pass (host)");
    for (std::size_t i = 0; i < plan.bands.size(); ++i) {
      if (retries) wasted_attempts(retries->bands[i].failed_attempts,
                                   plan.bands[i].hi);
      total_visits += detail::advance_through_levels(
          g, prog, queries, plan.bands[i].hi, visit_cap, sweeps);
    }
    if (retries) wasted_attempts(retries->bstar.failed_attempts, dag.height());
    total_visits += detail::advance_through_levels(g, prog, queries,
                                                   dag.height(), visit_cap,
                                                   sweeps);
  }
  for (auto& s : sweeps) s = std::max(s, 1);
  HierarchicalRunResult res =
      hierarchical_cost(dag, plan, shape, m, &sweeps, charge_band_setup,
                        retries ? &*retries : nullptr);
  res.total_visits = total_visits;
  if (paranoid) paranoid_audit(g, prog, std::move(shadow), queries, engine);
  return res;
}

}  // namespace meshsearch::msearch
