#include "multisearch/setup.hpp"

#include <algorithm>

#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/parallel_for.hpp"

namespace meshsearch::msearch {

mesh::Cost distribute_initial(const DistributedGraph& g, std::size_t queries,
                              const mesh::CostModel& m,
                              mesh::MeshShape shape) {
  TRACE_SPAN(m.trace, "setup: distribute data + queries");
  return distribute_graph(g, m, shape) + inject_queries(queries, m, shape);
}

mesh::Cost distribute_graph(const DistributedGraph& g,
                            const mesh::CostModel& m, mesh::MeshShape shape) {
  MS_CHECK(g.vertex_count() <= shape.size());
  const double p = static_cast<double>(shape.size());
  mesh::Cost cost;
  // Sort vertices by id to their home processors, then one routing per
  // adjacency slot to deliver neighbour addresses (degree is O(1)).
  TRACE_SPAN(m.trace, "setup: distribute graph");
  cost += m.sort(p);
  cost += m.route(
      p, static_cast<double>(std::max<std::size_t>(1, g.max_degree())));
  return cost;
}

mesh::Cost inject_queries(std::size_t queries, const mesh::CostModel& m,
                          mesh::MeshShape shape) {
  MS_CHECK(queries <= shape.size());
  const double p = static_cast<double>(shape.size());
  // One routing places the (at most one per processor) batch of queries.
  TRACE_SPAN(m.trace, "setup: inject queries");
  return m.route(p);
}

LevelIndexResult compute_level_indices(const DistributedGraph& g,
                                       const mesh::CostModel& m,
                                       mesh::MeshShape shape) {
  LevelIndexResult res;
  TRACE_SPAN(m.trace, "setup: level indices (peel)");
  const std::size_t n = g.vertex_count();
  res.level.assign(n, -1);

  // In-degrees of the reversed peel: a vertex is removable once all of its
  // out-neighbours are labelled. The degree init is pure per-vertex; the
  // predecessor build is CSR (count, prefix, cursor fill) instead of a
  // vector-of-vectors — one flat allocation, and the peel loop below walks
  // contiguous ranges. The fill sweeps v ascending, so each target's
  // predecessor list keeps exactly the order the old push_back build gave.
  std::vector<std::int32_t> unlabelled_succ(n, 0);
  util::parallel_for(
      std::size_t{0}, n,
      [&](std::size_t v) {
        unlabelled_succ[v] = g.vert(static_cast<Vid>(v)).degree;
      },
      /*grain=*/4096);
  std::vector<std::size_t> pred_off(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const auto& rec = g.vert(static_cast<Vid>(v));
    for (std::uint8_t d = 0; d < rec.degree; ++d)
      ++pred_off[static_cast<std::size_t>(rec.nbr[d]) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) pred_off[v + 1] += pred_off[v];
  std::vector<Vid> pred_data(pred_off.empty() ? 0 : pred_off[n]);
  {
    std::vector<std::size_t> cursor(pred_off.begin(), pred_off.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      const auto& rec = g.vert(static_cast<Vid>(v));
      for (std::uint8_t d = 0; d < rec.degree; ++d)
        pred_data[cursor[static_cast<std::size_t>(rec.nbr[d])]++] =
            static_cast<Vid>(v);
    }
  }

  // Peel from the sinks (level h) upward, assigning DESCENDING tags; a
  // final global subtract-from-max flips them into level indices. The
  // initial frontier is collected per fixed chunk and merged in chunk order
  // (identical to the serial sweep order at any thread count).
  std::vector<Vid> frontier;
  {
    const std::size_t nchunks = util::fixed_chunk_count(n);
    std::vector<std::vector<Vid>> found(nchunks);
    util::for_fixed_chunks(n, [&](std::size_t c, std::size_t lo,
                                  std::size_t hi) {
      for (std::size_t v = lo; v < hi; ++v)
        if (unlabelled_succ[v] == 0) found[c].push_back(static_cast<Vid>(v));
    });
    for (auto& f : found) frontier.insert(frontier.end(), f.begin(), f.end());
  }
  std::size_t remaining = n;
  std::int32_t tag = 0;
  while (!frontier.empty()) {
    // Charge this round on the subsquare holding the remaining vertices:
    // identify the current frontier (a reduction + compress) and update
    // predecessor counters (one RAW within the subsquare).
    const double sub = static_cast<double>(
        mesh::MeshShape::for_elements(std::max<std::size_t>(1, remaining))
            .size());
    res.cost += m.compress(sub) + m.raw(sub) + m.scan(sub);
    ++res.rounds;
    // Level assignment touches disjoint slots — safe to parallelize. The
    // counter-decrement pass stays serial: distinct frontier vertices share
    // predecessors, and `next` must keep the serial discovery order.
    util::parallel_for(
        std::size_t{0}, frontier.size(),
        [&](std::size_t i) {
          res.level[static_cast<std::size_t>(frontier[i])] = tag;
        },
        /*grain=*/4096);
    remaining -= frontier.size();
    std::vector<Vid> next;
    for (const auto v : frontier) {
      const std::size_t lo = pred_off[static_cast<std::size_t>(v)];
      const std::size_t hi = pred_off[static_cast<std::size_t>(v) + 1];
      for (std::size_t j = lo; j < hi; ++j) {
        const Vid u = pred_data[j];
        if (--unlabelled_succ[static_cast<std::size_t>(u)] == 0)
          next.push_back(u);
      }
    }
    ++tag;
    frontier = std::move(next);
  }
  MS_CHECK_MSG(remaining == 0, "level peel stalled (graph is not a "
                               "sink-reachable hierarchical DAG)");
  // Flip tags: level = (rounds - 1) - tag. One broadcast + local update.
  res.cost += m.broadcast(static_cast<double>(shape.size()));
  const auto h = static_cast<std::int32_t>(res.rounds) - 1;
  util::parallel_for(
      std::size_t{0}, res.level.size(),
      [&](std::size_t v) { res.level[v] = h - res.level[v]; },
      /*grain=*/4096);
  return res;
}

}  // namespace meshsearch::msearch
