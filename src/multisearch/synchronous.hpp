// Synchronous multistep baseline — the [DR90] hypercube strategy
// transplanted to the mesh, which the paper's introduction argues is "not
// viable": every multistep advances all live queries by one node via a
// full-mesh random access read, so each of the r steps of the longest path
// costs Theta(sqrt n), for a total of Theta(r * sqrt n). The paper's
// algorithms beat this by a log n factor in the r-dependent term; the
// benchmark suite measures exactly that gap.
#pragma once

#include <vector>

#include "mesh/cost.hpp"
#include "mesh/ops.hpp"
#include "multisearch/graph.hpp"
#include "multisearch/validate.hpp"
#include "trace/trace.hpp"

namespace meshsearch::msearch {

struct SynchronousResult {
  mesh::Cost cost;
  std::size_t multisteps = 0;
};

template <SearchProgram P>
SynchronousResult synchronous_multisearch(const DistributedGraph& g,
                                          const P& prog,
                                          std::vector<Query>& queries,
                                          const mesh::CostModel& m,
                                          mesh::MeshShape shape) {
  // Front door: reject malformed input before any phase is charged.
  constexpr const char* kEngine = "synchronous";
  validate_graph(g, kEngine);
  validate_graph_fits(g, shape, kEngine);
  validate_batch_size(queries.size(), shape.size(), kEngine);
  SynchronousResult res;
  const double p = static_cast<double>(shape.size());
  // Paranoid mode: snapshot the input for the shadow oracle. (This engine
  // does not reset queries; it continues wherever they stand.)
  const bool paranoid = paranoid_enabled();
  std::vector<Query> shadow;
  if (paranoid) shadow = queries;
  TRACE_SPAN(m.trace, "synchronous multisearch");
  for (;;) {
    // One multistep: every live query fetches the record of its next vertex
    // (one concurrent-read RAR over the whole mesh) and applies f —
    // host-parallel over query chunks.
    if (advance_all(g, prog, queries) == 0) break;
    ++res.multisteps;
    res.cost += mesh::ops::broadcast(m, p);  // "anyone still live?" check
    res.cost += m.rar(p);                    // the fetch itself
  }
  if (paranoid) paranoid_audit(g, prog, std::move(shadow), queries, kEngine);
  return res;
}

}  // namespace meshsearch::msearch
