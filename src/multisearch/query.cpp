#include "multisearch/query.hpp"

#include <sstream>

namespace meshsearch::msearch {

std::vector<Query> make_queries(std::size_t m) {
  std::vector<Query> qs(m);
  for (std::size_t i = 0; i < m; ++i) qs[i].qid = static_cast<std::int32_t>(i);
  return qs;
}

std::vector<QueryOutcome> outcomes(const std::vector<Query>& queries) {
  std::vector<QueryOutcome> out;
  out.reserve(queries.size());
  for (const auto& q : queries)
    out.push_back(QueryOutcome{q.steps, q.acc0, q.acc1, q.result});
  return out;
}

std::string diff_outcomes(const std::vector<QueryOutcome>& a,
                          const std::vector<QueryOutcome>& b) {
  if (a.size() != b.size()) {
    std::ostringstream os;
    os << "size mismatch: " << a.size() << " vs " << b.size();
    return os.str();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) continue;
    std::ostringstream os;
    os << "query " << i << ": steps " << a[i].steps << "/" << b[i].steps
       << " acc0 " << a[i].acc0 << "/" << b[i].acc0 << " acc1 " << a[i].acc1
       << "/" << b[i].acc1 << " result " << a[i].result << "/" << b[i].result;
    return os.str();
  }
  return "";
}

}  // namespace meshsearch::msearch
