// Sequential reference implementation ("oracle"): runs every search process
// to completion on a single processor. Used (a) for correctness checking of
// every mesh algorithm, and (b) as the 1-processor baseline in the
// benchmarks. Its "cost" is total work — the sum of all visits — since one
// processor performs them one after another.
#pragma once

#include <vector>

#include "mesh/cost.hpp"
#include "multisearch/graph.hpp"

namespace meshsearch::msearch {

struct SequentialResult {
  std::size_t total_visits = 0;  ///< sum over queries of path length executed
  mesh::Cost cost;               ///< = total_visits steps (1 visit = 1 step)
};

template <SearchProgram P>
SequentialResult sequential_multisearch(const DistributedGraph& g,
                                        const P& prog,
                                        std::vector<Query>& queries,
                                        std::int32_t step_limit = -1) {
  SequentialResult res;
  for (auto& q : queries) {
    while (!q.done && (step_limit < 0 || q.steps < step_limit)) {
      if (!advance_one(g, prog, q)) break;
      ++res.total_visits;
    }
  }
  res.cost = mesh::Cost{static_cast<double>(res.total_visits)};
  return res;
}

}  // namespace meshsearch::msearch
