#include "multisearch/partitioned.hpp"

namespace meshsearch::msearch {}
