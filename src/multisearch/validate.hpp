// Hardened front door: input validation for every public entry point.
//
// Scattered input checks used to live inside the engines (MS_CHECK sites in
// DistributedGraph::validate, validate_splitting, verify_label_capacity,
// the HierarchicalDag constructor, the geometry builders) and tripped as
// CheckFailedError from deep inside a phase. This header consolidates them
// into named validators that every public entry point (PreparedSearch,
// StreamScheduler::run, the four engine run functions, the geometry and
// data-structure builders) calls FIRST, so malformed input surfaces as
//
//   InvalidInputError — the input violates a structural precondition
//                       (duplicate edges, non-monotone levels, degenerate
//                       points, ...). Nothing was charged; nothing ran.
//   CapacityError     — the input is well-formed but exceeds a declared
//                       limit (more vertices/queries than processors).
//                       Split or shrink and retry.
//
// before any phase is charged. MS_CHECK remains the vocabulary for INTERNAL
// invariants — after the front door, a tripped check is a library bug.
//
// This header also hosts paranoid mode (MESHSEARCH_PARANOID env var, or the
// MESHSEARCH_PARANOID CMake option to default it on): every engine call
// shadow-runs the sequential oracle on a copy of its input and audits the
// end-to-end outcome checksum, throwing IntegrityError on any divergence —
// the runtime analogue of the determinism test suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/predicates.hpp"
#include "mesh/integrity.hpp"
#include "mesh/snake.hpp"
#include "multisearch/graph.hpp"
#include "multisearch/query.hpp"
#include "multisearch/sequential.hpp"
#include "multisearch/splitter.hpp"
#include "util/error.hpp"

namespace meshsearch::msearch {

/// Throw InvalidInputError with `site` context. The shared exit for every
/// validator here and for the entry-point checks refit in the builders.
[[noreturn]] void invalid_input(const std::string& message, const char* site);

/// Throw CapacityError with `site` context.
[[noreturn]] void capacity_error(const std::string& message, const char* site);

// ---------------------------------------------------------------------------
// Graph and splitting validation
// ---------------------------------------------------------------------------

/// Full structural validation of a distributed graph: vertex id == address,
/// degree within kMaxDegree, neighbours in range, no self loops, and no
/// duplicate (parallel) edges. Throws InvalidInputError.
void validate_graph(const DistributedGraph& g, const char* engine);

/// Hierarchical-DAG shape: every vertex carries a level >= 0, levels are
/// contiguous and non-empty, and every edge goes from L_i to L_{i+1}
/// (same-level edges allowed only when level_work > 1). Degree bounds ride
/// on validate_graph. Throws InvalidInputError.
void validate_hierarchical_graph(const DistributedGraph& g,
                                 std::int32_t level_work);

/// Splitting shape: one piece id per vertex, all ids in range. Alpha/beta
/// edge conditions stay in validate_alpha_splitting (they are structural
/// theorems about the splitting, checked where it is built). Throws
/// InvalidInputError.
void validate_splitting_input(const DistributedGraph& g, const Splitting& s,
                              const char* engine);

/// The mesh must hold the graph: vertex_count <= processors. Throws
/// CapacityError.
void validate_graph_fits(const DistributedGraph& g, mesh::MeshShape shape,
                         const char* engine);

/// The initial configuration stores at most one query per processor.
/// Throws CapacityError. (An empty batch is valid — engines return an
/// empty result without charging anything.)
void validate_batch_size(std::size_t batch_size, std::size_t capacity,
                         const char* engine);

/// Query keys must lie in [lo, hi] (used by builders whose key domain is
/// bounded, e.g. geometry coordinates within kMaxCoord). Throws
/// InvalidInputError naming the first offending query.
void validate_query_keys(const std::vector<Query>& queries, std::int64_t lo,
                         std::int64_t hi, const char* engine);

// ---------------------------------------------------------------------------
// Geometry input validation (via geometry/predicates.hpp)
// ---------------------------------------------------------------------------

/// All coordinates within +-kMaxCoord (the predicate overflow bound).
void validate_points_in_bounds(const std::vector<geom::Point2>& pts,
                               const char* site);

/// No two points coincide. O(n log n). Throws InvalidInputError naming the
/// first duplicate pair.
void validate_points_distinct(const std::vector<geom::Point2>& pts,
                              const char* site);

/// At least three points, pairwise distinct, within bounds and not all
/// collinear — the precondition for hull / Kirkpatrick / DK builders.
void validate_point_set_2d(const std::vector<geom::Point2>& pts,
                           const char* site);

// ---------------------------------------------------------------------------
// Paranoid mode
// ---------------------------------------------------------------------------

/// True when the MESHSEARCH_PARANOID environment variable is set to a
/// non-empty, non-"0" value, or the library was compiled with
/// -DMESHSEARCH_PARANOID=ON and the variable is unset. Cached after the
/// first call (the env is not re-read).
bool paranoid_enabled();

/// Test hook: force paranoid mode on (1), off (0), or back to the
/// environment/compile default (-1).
void set_paranoid_override(int mode);

/// Fold a query batch's outcomes into one order-independent audit value.
std::uint64_t outcome_checksum(const std::vector<Query>& queries);

namespace detail {
[[noreturn]] void paranoid_mismatch(const char* engine, std::size_t index,
                                    std::uint64_t engine_sum,
                                    std::uint64_t oracle_sum);
void paranoid_checksum_mismatch_check(const char* engine,
                                      std::uint64_t engine_sum,
                                      std::uint64_t oracle_sum);
}  // namespace detail

/// Shadow-run the sequential oracle on `shadow` (a copy of the engine's
/// post-reset input) and compare every outcome — and the folded end-to-end
/// checksum — against the engine's final `actual` state. Any divergence
/// throws IntegrityError naming the first diverging query. The oracle runs
/// fault-free and unmetered, so this audits the data path only.
template <SearchProgram P>
void paranoid_audit(const DistributedGraph& g, const P& prog,
                    std::vector<Query> shadow,
                    const std::vector<Query>& actual, const char* engine) {
  sequential_multisearch(g, prog, shadow);
  const auto want = outcomes(shadow);
  const auto got = outcomes(actual);
  for (std::size_t i = 0; i < got.size(); ++i)
    if (!(got[i] == want[i]))
      detail::paranoid_mismatch(engine, i, outcome_checksum(actual),
                                outcome_checksum(shadow));
  detail::paranoid_checksum_mismatch_check(engine, outcome_checksum(actual),
                                           outcome_checksum(shadow));
}

}  // namespace meshsearch::msearch
