#include "multisearch/graph.hpp"

#include <algorithm>

namespace meshsearch::msearch {

DistributedGraph::DistributedGraph(std::size_t vertex_count)
    : verts_(vertex_count) {
  for (std::size_t i = 0; i < vertex_count; ++i)
    verts_[i].id = static_cast<Vid>(i);
}

std::size_t DistributedGraph::size() const {
  std::size_t edges = 0;
  for (const auto& v : verts_) edges += v.degree;
  return verts_.size() + edges;
}

void DistributedGraph::add_edge(Vid u, Vid w) {
  MS_CHECK(u >= 0 && static_cast<std::size_t>(u) < verts_.size());
  MS_CHECK(w >= 0 && static_cast<std::size_t>(w) < verts_.size());
  MS_CHECK_MSG(u != w, "self loop");
  auto& rec = verts_[static_cast<std::size_t>(u)];
  MS_CHECK_MSG(rec.degree < kMaxDegree, "degree bound exceeded");
  rec.nbr[rec.degree++] = w;
}

void DistributedGraph::add_undirected_edge(Vid u, Vid w) {
  add_edge(u, w);
  add_edge(w, u);
}

bool DistributedGraph::has_edge(Vid u, Vid w) const {
  const auto& rec = vert(u);
  return std::find(rec.nbr.begin(), rec.nbr.begin() + rec.degree, w) !=
         rec.nbr.begin() + rec.degree;
}

mesh::MeshShape DistributedGraph::shape_for(std::size_t queries) const {
  return mesh::MeshShape::for_elements(std::max(verts_.size(), queries));
}

void DistributedGraph::validate() const {
  for (std::size_t i = 0; i < verts_.size(); ++i) {
    const auto& v = verts_[i];
    MS_CHECK_MSG(v.id == static_cast<Vid>(i), "vertex id != address");
    MS_CHECK(v.degree <= kMaxDegree);
    for (std::uint8_t d = 0; d < v.degree; ++d) {
      const Vid w = v.nbr[d];
      MS_CHECK_MSG(w >= 0 && static_cast<std::size_t>(w) < verts_.size(),
                   "neighbour out of range");
      MS_CHECK_MSG(w != v.id, "self loop");
    }
  }
}

std::size_t DistributedGraph::max_degree() const {
  std::size_t d = 0;
  for (const auto& v : verts_) d = std::max<std::size_t>(d, v.degree);
  return d;
}

void reset_queries(std::vector<Query>& queries) {
  for (auto& q : queries) {
    q.current = kNoVertex;
    q.next = kNoVertex;
    q.steps = 0;
    q.done = false;
    q.acc0 = 0;
    q.acc1 = 0;
    q.state = 0;
    q.prev = kNoVertex;
    q.result = kNoVertex;
  }
}

bool all_done(const std::vector<Query>& queries) {
  for (const auto& q : queries)
    if (!q.done) return false;
  return true;
}

std::int32_t max_steps(const std::vector<Query>& queries) {
  std::int32_t r = 0;
  for (const auto& q : queries) r = std::max(r, q.steps);
  return r;
}

}  // namespace meshsearch::msearch
