#include "multisearch/stream.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>

namespace meshsearch::msearch {

const char* engine_kind_name(EngineKind k) {
  switch (k) {
    case EngineKind::kAlg1Paper: return "alg1-paper";
    case EngineKind::kAlg1Geometric: return "alg1-geometric";
    case EngineKind::kAlg2Alpha: return "alg2-alpha";
    case EngineKind::kAlg3AlphaBeta: return "alg3-alpha-beta";
  }
  return "unknown";
}

std::vector<std::vector<std::uint32_t>> plan_batches(
    const std::vector<Query>& stream, const BatchPolicy& policy,
    std::size_t capacity) {
  // Caller error, not a library invariant: a zero-processor mesh cannot
  // serve a batch, so reject it at the front door like every other
  // malformed input (used to be an MS_CHECK).
  if (capacity == 0)
    invalid_input("plan_batches requires a mesh with at least one processor",
                  "plan_batches");
  const std::size_t b = policy.batch_size == 0
                            ? capacity
                            : std::min(policy.batch_size, capacity);
  std::vector<std::uint32_t> order(stream.size());
  std::iota(order.begin(), order.end(), 0u);
  if (policy.order == BatchOrder::kLocalityReorder) {
    // Sort each window by search key; ties keep arrival order so the
    // schedule is a deterministic function of the stream alone.
    const std::size_t w =
        std::max(b, policy.window == 0 ? 4 * b : policy.window);
    for (std::size_t lo = 0; lo < order.size(); lo += w) {
      const auto begin =
          order.begin() + static_cast<std::ptrdiff_t>(lo);
      const auto end = order.begin() + static_cast<std::ptrdiff_t>(
                                           std::min(order.size(), lo + w));
      // stable_sort on the keys alone: `order` is ascending within the
      // window, so stability IS the arrival-order tie-break. (A plain
      // std::sort without a total order here once made the schedule depend
      // on the libstdc++ introsort cutoffs for duplicate keys.)
      std::stable_sort(begin, end, [&](std::uint32_t a, std::uint32_t c) {
        const Query& qa = stream[a];
        const Query& qc = stream[c];
        return std::tie(qa.key[0], qa.key[1], qa.key[2]) <
               std::tie(qc.key[0], qc.key[1], qc.key[2]);
      });
    }
  }
  std::vector<std::vector<std::uint32_t>> batches;
  for (std::size_t lo = 0; lo < order.size(); lo += b) {
    const std::size_t hi = std::min(order.size(), lo + b);
    batches.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(lo),
                         order.begin() + static_cast<std::ptrdiff_t>(hi));
  }
  return batches;
}

BatchSource::BatchSource(const std::vector<Query>& stream,
                         const BatchPolicy& policy, std::size_t capacity) {
  for (auto& b : plan_batches(stream, policy, capacity)) enqueue(std::move(b));
}

void BatchSource::enqueue(std::vector<std::uint32_t> indices) {
  if (indices.empty()) return;
  queries_ += indices.size();
  work_.push_back(PendingBatch{std::move(indices), 0});
}

PendingBatch BatchSource::pop() {
  MS_CHECK_MSG(!work_.empty(), "pop on an empty BatchSource");
  PendingBatch out = std::move(work_.front());
  work_.pop_front();
  queries_ -= out.indices.size();
  return out;
}

PendingBatch BatchSource::pop_upto(std::size_t limit) {
  MS_CHECK_MSG(limit >= 1, "pop_upto requires a positive limit");
  MS_CHECK_MSG(!work_.empty(), "pop_upto on an empty BatchSource");
  PendingBatch out;
  out.replans = work_.front().replans;
  while (!work_.empty() && out.indices.size() < limit &&
         work_.front().replans == out.replans) {
    PendingBatch& front = work_.front();
    const std::size_t take =
        std::min(limit - out.indices.size(), front.indices.size());
    out.indices.insert(out.indices.end(), front.indices.begin(),
                       front.indices.begin() + static_cast<std::ptrdiff_t>(take));
    queries_ -= take;
    if (take == front.indices.size()) {
      work_.pop_front();
    } else {
      front.indices.erase(
          front.indices.begin(),
          front.indices.begin() + static_cast<std::ptrdiff_t>(take));
      break;  // limit reached
    }
  }
  return out;
}

std::vector<std::uint32_t> BatchSource::pop_expired(
    const std::function<bool(std::uint32_t)>& expired) {
  MS_CHECK_MSG(static_cast<bool>(expired),
               "pop_expired requires a predicate");
  std::vector<std::uint32_t> out;
  while (!work_.empty()) {
    PendingBatch& front = work_.front();
    std::size_t take = 0;
    while (take < front.indices.size() && expired(front.indices[take]))
      ++take;
    if (take > 0) {
      out.insert(out.end(), front.indices.begin(),
                 front.indices.begin() + static_cast<std::ptrdiff_t>(take));
      queries_ -= take;
    }
    if (take == front.indices.size()) {
      work_.pop_front();  // whole batch expired (or was empty)
      continue;
    }
    if (take > 0)
      front.indices.erase(
          front.indices.begin(),
          front.indices.begin() + static_cast<std::ptrdiff_t>(take));
    break;  // first live position reached: the expired prefix ends here
  }
  return out;
}

namespace {

std::vector<PendingBatch> split_pieces(const PendingBatch& failed,
                                       std::size_t cap) {
  MS_CHECK_MSG(cap >= 1, "requeue_split requires a positive capacity");
  std::vector<PendingBatch> pieces;
  for (std::size_t at = 0; at < failed.indices.size(); at += cap) {
    PendingBatch piece;
    piece.replans = failed.replans + 1;
    piece.indices.assign(
        failed.indices.begin() + static_cast<std::ptrdiff_t>(at),
        failed.indices.begin() + static_cast<std::ptrdiff_t>(std::min(
                                     at + cap, failed.indices.size())));
    pieces.push_back(std::move(piece));
  }
  return pieces;
}

}  // namespace

void BatchSource::requeue_split_back(const PendingBatch& failed,
                                     std::size_t cap) {
  for (auto& piece : split_pieces(failed, cap)) {
    queries_ += piece.indices.size();
    work_.push_back(std::move(piece));
  }
}

void BatchSource::requeue_split_front(const PendingBatch& failed,
                                      std::size_t cap) {
  auto pieces = split_pieces(failed, cap);
  // Prepend keeping piece order: insert in reverse so pieces[0] ends first.
  for (auto it = pieces.rbegin(); it != pieces.rend(); ++it) {
    queries_ += it->indices.size();
    work_.push_front(std::move(*it));
  }
}

double StreamResult::amortized_steps_per_query() const {
  return queries == 0 ? 0.0
                      : total().steps / static_cast<double>(queries);
}

double StreamResult::queries_per_step() const {
  const double t = total().steps;
  return t <= 0.0 ? 0.0 : static_cast<double>(queries) / t;
}

double StreamResult::setup_fraction() const {
  const double t = total().steps;
  return t <= 0.0 ? 0.0 : setup.steps / t;
}

void finalize_stream(StreamResult& res) {
  res.setup = mesh::Cost{};
  res.inject = mesh::Cost{};
  res.run = mesh::Cost{};
  res.slo.batches = res.batches.size();
  res.slo.degraded_batches = 0;
  res.slo.failed_queries = res.failed_queries.size();
  for (const auto& b : res.batches) {
    res.setup += b.setup;
    res.inject += b.inject;
    res.run += b.run;
    if (b.degraded) ++res.slo.degraded_batches;
  }
}

void record_stream_metrics(trace::TraceRecorder* rec,
                           const StreamResult& res) {
  if (rec == nullptr) return;
  rec->metric("stream.batches", static_cast<double>(res.batches.size()));
  rec->metric("stream.queries", static_cast<double>(res.queries));
  rec->metric("stream.queries_per_step", res.queries_per_step());
  rec->metric("stream.amortized_steps_per_query",
              res.amortized_steps_per_query());
  rec->metric("stream.setup_fraction", res.setup_fraction());
  // The deterministic half of the SLO report: error counts are a pure
  // function of (stream, seed, plan) and belong with the pinned metrics.
  // The wall-clock half (latency / queue-wait percentiles) deliberately does
  // NOT land here — metrics are part of the bit-identity contract (DESIGN §5
  // decision 13); percentiles live in StreamResult::slo and in the
  // wall-histogram section of the exporters, both observability-only.
  rec->metric("stream.degraded_batches",
              static_cast<double>(res.slo.degraded_batches));
  rec->metric("stream.replans", static_cast<double>(res.slo.replans));
  rec->metric("stream.failed_queries",
              static_cast<double>(res.slo.failed_queries));
}

}  // namespace meshsearch::msearch
