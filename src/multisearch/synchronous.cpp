#include "multisearch/synchronous.hpp"

namespace meshsearch::msearch {}
