#include "multisearch/sequential.hpp"

namespace meshsearch::msearch {}
