#include "multisearch/constrained.hpp"
namespace meshsearch::msearch {}
