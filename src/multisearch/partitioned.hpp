// Multisearch for partitionable graphs — paper §4.5 (Algorithm 2, directed
// alpha-partitionable) and §4.6 (Algorithm 3, undirected
// alpha-beta-partitionable).
//
// One log-phase is:
//   1. every query visits the first/next node of its path   (global RAR)
//   2. Constrained-Multisearch(Psi_A, .)                    (Lemma 3)
//   3. every query visits the next node                     (global RAR)
//   4. Constrained-Multisearch(Psi_B, .)                    (Lemma 3)
// For Algorithm 2, Psi_A == Psi_B == G(S) = {H_1..H_k1, T_1..T_k2}.
// For Algorithm 3, Psi_A = G(S_1) and Psi_B = G(S_2).
// The driver iterates log-phases until every search path has terminated,
// ceil(r / log n) times for longest path r (Theorems 5 and 7).
#pragma once

#include <string>
#include <vector>

#include "multisearch/constrained.hpp"
#include "multisearch/recovery.hpp"
#include "multisearch/validate.hpp"
#include "trace/trace.hpp"

namespace meshsearch::msearch {

struct PartitionedRunResult {
  mesh::Cost cost;
  std::size_t log_phases = 0;
  std::size_t constrained_calls = 0;
  std::size_t total_visits = 0;
  std::int32_t longest_path = 0;  ///< r: max steps over queries at the end
};

/// One global multistep: every live query visits the next node in its path
/// (one full-mesh RAR, host-parallel over query chunks). Returns the number
/// of queries that advanced.
template <SearchProgram P>
std::size_t global_multistep(const DistributedGraph& g, const P& prog,
                             std::vector<Query>& queries) {
  return advance_all(g, prog, queries);
}

template <SearchProgram P>
PartitionedRunResult multisearch_partitioned(
    const DistributedGraph& g, const Splitting& psi_a, const Splitting& psi_b,
    const P& prog, std::vector<Query>& queries, const mesh::CostModel& m,
    mesh::MeshShape shape, bool duplicate_copies = true) {
  // Front door: reject malformed input before any phase is charged.
  constexpr const char* kEngine = "partitioned";
  validate_graph(g, kEngine);
  validate_splitting_input(g, psi_a, kEngine);
  validate_splitting_input(g, psi_b, kEngine);
  validate_graph_fits(g, shape, kEngine);
  validate_batch_size(queries.size(), shape.size(), kEngine);
  PartitionedRunResult res;
  const double p = static_cast<double>(shape.size());
  reset_queries(queries);
  // Paranoid mode: snapshot the post-reset input for the shadow oracle.
  const bool paranoid = paranoid_enabled();
  std::vector<Query> shadow;
  if (paranoid) shadow = queries;
  TRACE_SPAN(m.trace, "partitioned multisearch");
  while (!all_done(queries)) {
    trace::SpanScope phase_span(
        m.trace, "log-phase " + std::to_string(res.log_phases));
    // Each step checkpoints `queries` via detail::recovered_phase: a failed
    // attempt re-runs (and re-charges) the step, then state rolls back, so
    // the visit/advance counters written inside the bodies always hold the
    // final successful attempt's values.
    {
      // Step 1: visit first/next node.
      trace::SpanScope s(m.trace, "phase.step1: global multistep");
      std::size_t advanced = 0;
      res.cost += detail::recovered_phase(m, p, "phase.step1", queries, [&] {
        advanced = global_multistep(g, prog, queries);
        return m.rar(p);
      });
      res.total_visits += advanced;
    }
    {
      // Step 2. The whole Constrained-Multisearch call (its steps 1-6) is
      // one checkpoint unit.
      trace::SpanScope s(m.trace, "phase.step2: constrained(Psi_A)");
      std::size_t advanced = 0;
      res.cost += detail::recovered_phase(m, p, "phase.step2", queries, [&] {
        const auto s2 = constrained_multisearch(g, psi_a, prog, queries, m,
                                                shape, duplicate_copies);
        advanced = s2.advanced;
        return s2.cost;
      });
      res.total_visits += advanced;
    }
    {
      // Step 3.
      trace::SpanScope s(m.trace, "phase.step3: global multistep");
      std::size_t advanced = 0;
      res.cost += detail::recovered_phase(m, p, "phase.step3", queries, [&] {
        advanced = global_multistep(g, prog, queries);
        return m.rar(p);
      });
      res.total_visits += advanced;
    }
    {
      // Step 4.
      trace::SpanScope s(m.trace, "phase.step4: constrained(Psi_B)");
      std::size_t advanced = 0;
      res.cost += detail::recovered_phase(m, p, "phase.step4", queries, [&] {
        const auto s4 = constrained_multisearch(g, psi_b, prog, queries, m,
                                                shape, duplicate_copies);
        advanced = s4.advanced;
        return s4.cost;
      });
      res.total_visits += advanced;
    }
    res.constrained_calls += 2;
    ++res.log_phases;
    // Termination check: a reduction over query flags.
    res.cost += m.reduce(p);
  }
  res.longest_path = max_steps(queries);
  if (paranoid) paranoid_audit(g, prog, std::move(shadow), queries, kEngine);
  return res;
}

/// Algorithm 2: alpha-partitionable directed graphs (Theorem 5).
template <SearchProgram P>
PartitionedRunResult multisearch_alpha(const DistributedGraph& g,
                                       const Splitting& gs, const P& prog,
                                       std::vector<Query>& queries,
                                       const mesh::CostModel& m,
                                       mesh::MeshShape shape,
                                       bool duplicate_copies = true) {
  return multisearch_partitioned(g, gs, gs, prog, queries, m, shape,
                                 duplicate_copies);
}

/// Algorithm 3: alpha-beta-partitionable undirected graphs (Theorem 7).
template <SearchProgram P>
PartitionedRunResult multisearch_alpha_beta(const DistributedGraph& g,
                                            const Splitting& gs1,
                                            const Splitting& gs2, const P& prog,
                                            std::vector<Query>& queries,
                                            const mesh::CostModel& m,
                                            mesh::MeshShape shape,
                                            bool duplicate_copies = true) {
  return multisearch_partitioned(g, gs1, gs2, prog, queries, m, shape,
                                 duplicate_copies);
}

}  // namespace meshsearch::msearch
