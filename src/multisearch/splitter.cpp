#include "multisearch/splitter.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>

#include "multisearch/validate.hpp"

namespace meshsearch::msearch {

std::vector<std::size_t> piece_sizes(const Splitting& s) {
  std::vector<std::size_t> sizes(s.num_pieces(), 0);
  for (const auto pc : s.piece)
    if (pc >= 0) {
      MS_CHECK(static_cast<std::size_t>(pc) < sizes.size());
      ++sizes[static_cast<std::size_t>(pc)];
    }
  return sizes;
}

std::size_t max_piece_size(const Splitting& s) {
  const auto sizes = piece_sizes(s);
  return sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
}

void validate_splitting(const DistributedGraph& g, const Splitting& s) {
  // Delegates to the typed front-door validator so a malformed splitting
  // surfaces as InvalidInputError wherever it is checked.
  validate_splitting_input(g, s, "splitting");
}

void validate_alpha_splitting(const DistributedGraph& g, const Splitting& s) {
  validate_splitting(g, s);
  for (std::size_t u = 0; u < g.vertex_count(); ++u) {
    const auto& rec = g.vert(static_cast<Vid>(u));
    const std::int32_t pu = s.piece[u];
    for (std::uint8_t d = 0; d < rec.degree; ++d) {
      const std::int32_t pw = s.piece[static_cast<std::size_t>(rec.nbr[d])];
      if (pu == pw) continue;
      MS_CHECK_MSG(s.kind[static_cast<std::size_t>(pu)] == PieceKind::kHead,
                   "splitter edge does not leave a head piece");
      MS_CHECK_MSG(s.kind[static_cast<std::size_t>(pw)] == PieceKind::kTail,
                   "splitter edge does not enter a tail piece");
    }
  }
}

std::vector<Vid> border_vertices(const DistributedGraph& g,
                                 const Splitting& s) {
  std::vector<std::uint8_t> is_border(g.vertex_count(), 0);
  for (std::size_t u = 0; u < g.vertex_count(); ++u) {
    const auto& rec = g.vert(static_cast<Vid>(u));
    for (std::uint8_t d = 0; d < rec.degree; ++d) {
      const std::size_t w = static_cast<std::size_t>(rec.nbr[d]);
      if (s.piece[u] != s.piece[w]) {
        is_border[u] = 1;
        is_border[w] = 1;
      }
    }
  }
  std::vector<Vid> out;
  for (std::size_t v = 0; v < is_border.size(); ++v)
    if (is_border[v]) out.push_back(static_cast<Vid>(v));
  return out;
}

std::size_t border_distance(const DistributedGraph& g, const Splitting& s1,
                            const Splitting& s2, std::size_t limit) {
  const auto b1 = border_vertices(g, s1);
  const auto b2 = border_vertices(g, s2);
  if (b1.empty() || b2.empty()) return std::numeric_limits<std::size_t>::max();
  std::vector<std::uint8_t> target(g.vertex_count(), 0);
  for (const Vid v : b2) target[static_cast<std::size_t>(v)] = 1;
  // Multi-source BFS from border(S1), treating edges as undirected by
  // following stored adjacency both ways is unnecessary: undirected graphs
  // store both directions already, and alpha-beta splittings only apply to
  // undirected graphs.
  std::vector<std::uint32_t> dist(g.vertex_count(),
                                  std::numeric_limits<std::uint32_t>::max());
  std::deque<Vid> frontier;
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (const Vid v : b1) {
    dist[static_cast<std::size_t>(v)] = 0;
    frontier.push_back(v);
    if (target[static_cast<std::size_t>(v)]) return 0;
  }
  while (!frontier.empty()) {
    const Vid u = frontier.front();
    frontier.pop_front();
    const std::uint32_t du = dist[static_cast<std::size_t>(u)];
    if (du >= limit && best == std::numeric_limits<std::size_t>::max())
      return limit + 1;  // provably > limit
    const auto& rec = g.vert(u);
    for (std::uint8_t d = 0; d < rec.degree; ++d) {
      const std::size_t w = static_cast<std::size_t>(rec.nbr[d]);
      if (dist[w] != std::numeric_limits<std::uint32_t>::max()) continue;
      dist[w] = du + 1;
      if (target[w]) best = std::min<std::size_t>(best, du + 1);
      frontier.push_back(static_cast<Vid>(w));
    }
    if (best <= du) break;  // no shorter path can appear later in BFS
  }
  return best;
}

Splitting normalize_splitting(const Splitting& s, std::size_t cap) {
  MS_CHECK(cap >= 1);
  const auto sizes = piece_sizes(s);
  // Greedy first-fit in piece-id order, one bin stream per kind. On a mesh
  // this is a scan over piece sizes plus a routing — O(sqrt n); the cost is
  // charged by the callers that use it.
  std::vector<std::int32_t> group_of(sizes.size(), -1);
  std::vector<PieceKind> group_kind;
  std::int32_t open_group[3] = {-1, -1, -1};
  std::size_t open_fill[3] = {0, 0, 0};
  for (std::size_t pc = 0; pc < sizes.size(); ++pc) {
    const auto k = static_cast<std::size_t>(s.kind[pc]);
    if (open_group[k] < 0 || open_fill[k] + sizes[pc] > cap) {
      open_group[k] = static_cast<std::int32_t>(group_kind.size());
      group_kind.push_back(s.kind[pc]);
      open_fill[k] = 0;
    }
    group_of[pc] = open_group[k];
    open_fill[k] += sizes[pc];
  }
  Splitting out;
  out.delta = s.delta;
  out.kind = std::move(group_kind);
  out.piece.resize(s.piece.size(), -1);
  for (std::size_t v = 0; v < s.piece.size(); ++v)
    if (s.piece[v] >= 0)
      out.piece[v] = group_of[static_cast<std::size_t>(s.piece[v])];
  return out;
}

}  // namespace meshsearch::msearch
