#include "multisearch/validate.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace meshsearch::msearch {

void invalid_input(const std::string& message, const char* site) {
  ErrorContext ctx;
  ctx.site = site;
  throw InvalidInputError(message, std::move(ctx));
}

void capacity_error(const std::string& message, const char* site) {
  ErrorContext ctx;
  ctx.site = site;
  throw CapacityError(message, std::move(ctx));
}

void validate_graph(const DistributedGraph& g, const char* engine) {
  for (std::size_t i = 0; i < g.vertex_count(); ++i) {
    const auto& v = g.vert(static_cast<Vid>(i));
    if (v.id != static_cast<Vid>(i))
      invalid_input("vertex id != address at " + std::to_string(i), engine);
    if (v.degree > kMaxDegree)
      invalid_input("vertex " + std::to_string(i) + " exceeds kMaxDegree",
                    engine);
    for (std::uint8_t d = 0; d < v.degree; ++d) {
      const Vid w = v.nbr[d];
      if (w < 0 || static_cast<std::size_t>(w) >= g.vertex_count())
        invalid_input("vertex " + std::to_string(i) +
                          " has a neighbour out of range",
                      engine);
      if (w == v.id)
        invalid_input("self loop at vertex " + std::to_string(i), engine);
      for (std::uint8_t e = 0; e < d; ++e)
        if (v.nbr[e] == w)
          invalid_input("duplicate edge " + std::to_string(i) + " -> " +
                            std::to_string(w),
                        engine);
    }
  }
}

void validate_hierarchical_graph(const DistributedGraph& g,
                                 std::int32_t level_work) {
  constexpr const char* kSite = "hierarchical-dag";
  if (level_work < 1) invalid_input("level_work must be >= 1", kSite);
  if (g.vertex_count() == 0)
    invalid_input("hierarchical DAG has no vertices", kSite);
  std::int32_t h = -1;
  for (const auto& v : g.verts()) {
    if (v.level < 0)
      invalid_input("vertex " + std::to_string(v.id) + " has no level",
                    kSite);
    h = std::max(h, v.level);
  }
  std::vector<std::size_t> level_size(static_cast<std::size_t>(h) + 1, 0);
  for (const auto& v : g.verts())
    ++level_size[static_cast<std::size_t>(v.level)];
  for (std::size_t i = 0; i < level_size.size(); ++i)
    if (level_size[i] == 0)
      invalid_input("empty level " + std::to_string(i) +
                        " in hierarchical DAG",
                    kSite);
  // Level monotonicity: every edge goes one level down (same-level edges
  // only in the generalized level_work > 1 model).
  for (const auto& v : g.verts())
    for (std::uint8_t d = 0; d < v.degree; ++d) {
      const std::int32_t nl = g.vert(v.nbr[d]).level;
      const bool ok = nl == v.level + 1 || (level_work > 1 && nl == v.level);
      if (!ok)
        invalid_input("edge " + std::to_string(v.id) + " -> " +
                          std::to_string(v.nbr[d]) +
                          " not between consecutive levels",
                      kSite);
    }
}

void validate_splitting_input(const DistributedGraph& g, const Splitting& s,
                              const char* engine) {
  if (s.piece.size() != g.vertex_count())
    invalid_input("splitting size != vertex count", engine);
  for (std::size_t v = 0; v < s.piece.size(); ++v) {
    if (s.piece[v] < 0)
      invalid_input("vertex " + std::to_string(v) +
                        " not covered by any piece",
                    engine);
    if (static_cast<std::size_t>(s.piece[v]) >= s.num_pieces())
      invalid_input("vertex " + std::to_string(v) +
                        " assigned an out-of-range piece",
                    engine);
  }
}

void validate_graph_fits(const DistributedGraph& g, mesh::MeshShape shape,
                         const char* engine) {
  if (g.vertex_count() > shape.size())
    capacity_error("graph has " + std::to_string(g.vertex_count()) +
                       " vertices but the mesh holds " +
                       std::to_string(shape.size()),
                   engine);
}

void validate_batch_size(std::size_t batch_size, std::size_t capacity,
                         const char* engine) {
  if (batch_size > capacity)
    capacity_error("batch of " + std::to_string(batch_size) +
                       " queries exceeds mesh capacity " +
                       std::to_string(capacity) +
                       " (one query per processor)",
                   engine);
}

void validate_query_keys(const std::vector<Query>& queries, std::int64_t lo,
                         std::int64_t hi, const char* engine) {
  for (std::size_t i = 0; i < queries.size(); ++i)
    for (const std::int64_t k : queries[i].key)
      if (k < lo || k > hi)
        invalid_input("query " + std::to_string(i) + " key " +
                          std::to_string(k) + " outside [" +
                          std::to_string(lo) + ", " + std::to_string(hi) +
                          "]",
                      engine);
}

void validate_points_in_bounds(const std::vector<geom::Point2>& pts,
                               const char* site) {
  for (std::size_t i = 0; i < pts.size(); ++i)
    if (std::abs(pts[i].x) > geom::kMaxCoord ||
        std::abs(pts[i].y) > geom::kMaxCoord)
      invalid_input("point " + std::to_string(i) +
                        " outside the +-kMaxCoord predicate bound",
                    site);
}

void validate_points_distinct(const std::vector<geom::Point2>& pts,
                              const char* site) {
  std::vector<geom::Point2> sorted = pts;
  std::sort(sorted.begin(), sorted.end(),
            [](const geom::Point2& a, const geom::Point2& b) {
              return a.x != b.x ? a.x < b.x : a.y < b.y;
            });
  for (std::size_t i = 1; i < sorted.size(); ++i)
    if (sorted[i] == sorted[i - 1])
      invalid_input("duplicate point (" + std::to_string(sorted[i].x) + ", " +
                        std::to_string(sorted[i].y) + ")",
                    site);
}

void validate_point_set_2d(const std::vector<geom::Point2>& pts,
                           const char* site) {
  if (pts.size() < 3)
    invalid_input("point set needs at least 3 points", site);
  validate_points_in_bounds(pts, site);
  validate_points_distinct(pts, site);
  // Not all collinear: scan for one witness triple off the line a-b.
  const geom::Point2& a = pts[0];
  const geom::Point2& b = pts[1];
  for (std::size_t i = 2; i < pts.size(); ++i)
    if (geom::orient2d(a, b, pts[i]) != 0) return;
  invalid_input("all points collinear", site);
}

// ---------------------------------------------------------------------------
// Paranoid mode
// ---------------------------------------------------------------------------

namespace {

std::atomic<int> g_paranoid_override{-1};

bool paranoid_from_env() {
  const char* v = std::getenv("MESHSEARCH_PARANOID");
  if (v == nullptr) {
#ifdef MESHSEARCH_PARANOID_DEFAULT
    return true;
#else
    return false;
#endif
  }
  return v[0] != '\0' && std::strcmp(v, "0") != 0;
}

}  // namespace

bool paranoid_enabled() {
  const int o = g_paranoid_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  static const bool cached = paranoid_from_env();
  return cached;
}

void set_paranoid_override(int mode) {
  g_paranoid_override.store(mode, std::memory_order_relaxed);
}

std::uint64_t outcome_checksum(const std::vector<Query>& queries) {
  std::uint64_t acc = 0;
  for (const auto& q : queries) {
    // Hash a packed word array, not the QueryOutcome struct: its int32/int64
    // mix leaves padding bytes whose values are indeterminate.
    const std::uint64_t words[4] = {
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(q.steps)),
        static_cast<std::uint64_t>(q.acc0),
        static_cast<std::uint64_t>(q.acc1),
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(q.result))};
    acc = mesh::integrity::fold_checksum(
        acc, mesh::integrity::payload_checksum(words));
  }
  return acc;
}

namespace detail {

void paranoid_mismatch(const char* engine, std::size_t index,
                       std::uint64_t engine_sum, std::uint64_t oracle_sum) {
  std::ostringstream os;
  os << "paranoid audit: query " << index
     << " diverged from the sequential oracle (outcome checksum "
     << engine_sum << " vs " << oracle_sum << ")";
  ErrorContext ctx;
  ctx.engine = engine;
  ctx.phase = "paranoid-audit";
  throw IntegrityError(os.str(), std::move(ctx));
}

void paranoid_checksum_mismatch_check(const char* engine,
                                      std::uint64_t engine_sum,
                                      std::uint64_t oracle_sum) {
  if (engine_sum == oracle_sum) return;
  std::ostringstream os;
  os << "paranoid audit: end-to-end outcome checksum mismatch (" << engine_sum
     << " vs oracle " << oracle_sum << ") with no per-query divergence";
  ErrorContext ctx;
  ctx.engine = engine;
  ctx.phase = "paranoid-audit";
  throw IntegrityError(os.str(), std::move(ctx));
}

}  // namespace detail

}  // namespace meshsearch::msearch
