// Dynamic-update vocabulary shared by the application structures
// (src/datastruct/, src/geometry/) and the warm engines that cache their
// distributed state (multisearch/stream.hpp, src/service/).
//
// A structure's apply_updates(inserts, deletes) mutates the host-side
// master copy IN PLACE (same DistributedGraph address, bumped generation)
// and returns a StructureDelta describing exactly what changed. A warm
// PreparedSearch turns that delta into a RefreshRequest and refreshes
// itself one of two ways:
//
//   incremental — the delta was payload-only (same vertices, same edges,
//     same levels; only record payloads moved). Only the dirty records and
//     their band replicas are re-distributed, charged under the `rebuild`
//     trace primitive proportionally to the number of dirty copies. The
//     cached plan, replica labels, and splittings all stay valid.
//
//   full re-setup — the delta changed topology (vertex/edge/level sets),
//     or the caller forced it. The engine recomputes its plan/labels (or
//     adopts the request's fresh splittings) and re-charges charge_setup().
//
// Either way the engine adopts the structure's new generation, so the
// StaleEngineError gate at run_batch reopens. The contract the oracle
// tests pin (DESIGN.md §5, decision 16): after refresh, a warm engine is
// bit-identical to a cold engine built from the post-update structure —
// same outcomes, same per-batch charges, same attribution — at any thread
// count. Only the *setup-side* cost differs (rebuild vs full setup), which
// is the whole point of E11.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mesh/cost.hpp"
#include "multisearch/splitter.hpp"
#include "multisearch/types.hpp"

namespace meshsearch::msearch {

/// What one apply_updates batch did to a structure, from the point of view
/// of a cached engine deciding how much of its state to invalidate.
struct StructureDelta {
  /// The structure's generation AFTER the batch (== graph().generation()).
  std::uint64_t generation = 0;
  /// True when the vertex/edge/level sets changed — cached plans, labels,
  /// and splittings are invalid and a full re-setup is required. False when
  /// only record payloads changed (dirty_vertices lists them).
  bool topology_changed = false;
  /// Vertices whose records changed, ascending, no duplicates. Meaningful
  /// only when !topology_changed (a topological delta dirties everything).
  std::vector<Vid> dirty_vertices;
  /// Batch accounting (reporting only).
  std::size_t inserts = 0;
  std::size_t deletes = 0;
};

/// Everything a warm engine needs to refresh itself after a delta.
struct RefreshRequest {
  StructureDelta delta;
  /// Force the full re-setup path even for a payload-only delta (the E11
  /// baseline strategy, and an escape hatch for callers that distrust a
  /// structure's dirty-set accounting).
  bool force_full = false;
  /// Fresh splittings for partitioned engines after a topological delta
  /// (Alg 2/3 cache them; a new topology needs new ones). Ignored by
  /// Algorithm-1 engines, which recompute their plan from the DAG.
  bool has_splittings = false;
  Splitting psi_a;
  Splitting psi_b;
};

/// What a refresh did and what it charged.
struct RefreshReport {
  bool incremental = false;  ///< dirty-set redistribution, not full setup
  mesh::Cost cost;           ///< charged under `rebuild` (incremental) or
                             ///< the usual setup primitives (full)
};

}  // namespace meshsearch::msearch
