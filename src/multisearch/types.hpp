// Core vocabulary of the multisearch problem (paper §2).
//
// A search structure is a constant-degree graph G distributed over the mesh
// with one vertex per processor (the vertex id IS the snake address of the
// processor that owns the master copy, paper Appendix "initial
// configuration"). A query's search path is produced on-line by a successor
// function f — modelled by the SearchProgram concept below. A query visits a
// vertex when a processor holds both the query and (a copy of) the vertex's
// record; programs receive the record, mutate their per-query accumulators,
// and name the next vertex.
#pragma once

#include <array>
#include <concepts>
#include <cstdint>

namespace meshsearch::msearch {

/// Vertex id == snake address of the owning processor. kNoVertex terminates
/// a search path.
using Vid = std::int32_t;
inline constexpr Vid kNoVertex = -1;

/// Constant degree bound of the graph classes considered (paper §2 assumes
/// O(1) out-degree / degree; applications in §5-6 stay well under this).
inline constexpr std::size_t kMaxDegree = 16;

/// Number of 64-bit payload words a vertex carries (split keys, interval
/// endpoints, triangle corners, ...). Applications interpret them.
inline constexpr std::size_t kMaxKeys = 8;

struct VertexRecord {
  Vid id = kNoVertex;
  std::uint8_t degree = 0;
  std::int32_t level = -1;  ///< level index for hierarchical DAGs (§3)
  std::array<Vid, kMaxDegree> nbr{};  ///< adjacency: processor addresses
  std::array<std::int64_t, kMaxKeys> key{};  ///< application payload
};

/// State of one search process. `current` is the vertex being visited,
/// `next` the successor determined at visit time (f applied on arrival),
/// so "advancing one step" never needs the old vertex's record again.
struct Query {
  std::int32_t qid = -1;
  Vid current = kNoVertex;
  Vid next = kNoVertex;   ///< successor; kNoVertex = path ends after current
  std::int32_t steps = 0;  ///< vertices visited so far
  bool done = false;
  std::array<std::int64_t, 3> key{};  ///< search key payload
  std::int64_t acc0 = 0;  ///< program accumulator (e.g. hit count)
  std::int64_t acc1 = 0;  ///< program accumulator (e.g. order-free checksum)
  std::int32_t state = 0; ///< program-defined automaton state
  Vid prev = kNoVertex;   ///< previously visited vertex (traversal programs)
  std::int32_t result = kNoVertex;  ///< program-defined answer vertex
};

/// The successor function f of paper §2, plus the start map.
/// `start(q)` gives the first vertex of q's search path; `next(v, q)` is
/// called exactly once per visit (when q holds v's record), may update q's
/// accumulators/state/result, and returns the next vertex (a neighbour of v,
/// in edge direction for directed G) or kNoVertex to terminate.
template <typename P>
concept SearchProgram = requires(const P& p, const VertexRecord& v, Query& q) {
  { p.start(q) } -> std::same_as<Vid>;
  { p.next(v, q) } -> std::same_as<Vid>;
};

}  // namespace meshsearch::msearch
