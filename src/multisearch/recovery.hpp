// Phase-level checkpoint/retry for the multisearch engines.
//
// The engines advance query state in discrete phases (Alg 1 steps 0-4 and
// per-band sweeps; Alg 2/3 log-phase steps 1-4, where steps 2/4 treat one
// whole Constrained-Multisearch call as the checkpoint unit). Each phase is
// a pure function of its input query state, so recovery is simple: snapshot
// the state, run the phase, and if the fault oracle says the attempt failed,
// restore the snapshot and re-run after an exponential backoff wait. Failed
// attempts are charged in full (the mesh really did the work) and the
// backoff wait is charged under trace::Primitive::kBackoff, so the armed
// cost model prices recovery instead of hiding it.
//
// With a null or disarmed CostModel::fault, recovered_phase is exactly
// `return body();` — no snapshot, no extra charges, no extra spans — which
// is what keeps fault-free runs bit-identical to a build without the fault
// layer.
#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "mesh/cost.hpp"
#include "mesh/fault.hpp"
#include "trace/trace.hpp"

namespace meshsearch::msearch::detail {

/// Run one phase under the fault oracle. `state` is the phase's checkpoint
/// (typically the query vector); `body` performs the phase and returns its
/// charged mesh::Cost. When the oracle reports failed attempts, each failed
/// attempt runs body() in full (its charges land in the trace under a
/// "fault.retry <name>" span), the state is rolled back to the snapshot,
/// and the summed backoff wait is charged before the final — successful —
/// attempt. Out-parameters written by `body` are safe: the final attempt
/// writes them last. Propagates FaultExhaustedError from draw_phase when
/// the retry budget is exhausted.
template <typename State, typename Body>
mesh::Cost recovered_phase(const mesh::CostModel& m, double p,
                           std::string_view name, State& state, Body&& body) {
  if (m.fault == nullptr || !m.fault->armed()) return body();
  const mesh::PhaseDraw draw = m.fault->draw_phase(name);
  mesh::Cost cost;
  if (draw.failed_attempts > 0) {
    const State snapshot = state;
    for (std::uint32_t a = 0; a < draw.failed_attempts; ++a) {
      trace::SpanScope retry(m.trace, "fault.retry " + std::string(name));
      cost += body();   // the wasted attempt is real work — charge it
      state = snapshot;  // discard its progress
    }
    cost += m.backoff(p, draw.backoff_steps);
  }
  cost += body();
  return cost;
}

}  // namespace meshsearch::msearch::detail
