// The paper's Appendix ("Details of the Initial Configuration of the Mesh")
// and the §3 preprocessing step.
//
// * distribute_initial — place the graph and the queries in the canonical
//   initial configuration: every processor stores one vertex, the
//   processor addresses of its neighbours, and at most one query. From an
//   arbitrary placement this is a constant number of sorts and routings.
//
// * compute_level_indices — §3: "the level indices can be easily computed
//   in time O(sqrt n) by successively identifying the vertices in each
//   level L_i, starting with level L_h, and compressing after each step
//   the remaining levels into a subsquare of processors." Implemented as
//   an actual reverse peel (round k removes the vertices all of whose
//   out-neighbours are already labelled), with each round charged on the
//   subsquare holding the still-unlabelled prefix — the shrinking-subsquare
//   telescoping that makes the total O(sqrt n).
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/cost.hpp"
#include "mesh/snake.hpp"
#include "multisearch/graph.hpp"

namespace meshsearch::msearch {

/// Cost of establishing the Appendix's initial configuration for g plus
/// `queries` search queries on `shape`. Equivalent to distribute_graph
/// followed by inject_queries (same charges, same attribution).
mesh::Cost distribute_initial(const DistributedGraph& g, std::size_t queries,
                              const mesh::CostModel& m, mesh::MeshShape shape);

/// Graph-only part of the initial configuration: sort vertices to their
/// home processors and deliver neighbour addresses. A streaming engine
/// (stream.hpp) pays this once; each batch then pays only inject_queries.
mesh::Cost distribute_graph(const DistributedGraph& g,
                            const mesh::CostModel& m, mesh::MeshShape shape);

/// Query part of the initial configuration: route one batch of at most
/// shape.size() queries to their starting processors.
mesh::Cost inject_queries(std::size_t queries, const mesh::CostModel& m,
                          mesh::MeshShape shape);

struct LevelIndexResult {
  std::vector<std::int32_t> level;  ///< computed level per vertex
  mesh::Cost cost;
  std::size_t rounds = 0;  ///< peel rounds (= height + 1)
};

/// Compute hierarchical-DAG level indices on-mesh (§3). Requires that every
/// non-final-level vertex has at least one out-edge (true for the paper's
/// class: |L_{i+1}| >= mu |L_i| with edges only between consecutive levels
/// and every vertex reachable). Throws if the peel stalls.
LevelIndexResult compute_level_indices(const DistributedGraph& g,
                                       const mesh::CostModel& m,
                                       mesh::MeshShape shape);

}  // namespace meshsearch::msearch
