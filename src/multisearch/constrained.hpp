// Procedure Constrained-Multisearch(Psi, delta) — paper §4.4, Lemma 3.
//
// Given a family Psi of disjoint subgraphs with |G_i| = O(n^delta) and
// k = O(n^{1-delta}), advance every query whose current vertex lies in some
// G_i by up to log2(n) steps, stopping early when its next vertex leaves
// G_i (the visit of that vertex is deferred to the caller) or its path ends.
//
// Cost reproduction of the procedure's steps:
//   1   mark queries                       one full-mesh RAR (fetch piece id)
//   2   compute Gamma_i                    RAW-with-count + scan
//   3   emptiness test                     reduction
//   4   create Gamma_i copies of G_i       constant # of sorts/routes
//   5   move marked queries to copies      sort + scan + route
//   6   log2(n) rounds, each a local RAR on a delta-submesh (parallel over
//       copies; time = max over copies of rounds actually needed)
//   7   discard copies                     free
//
// Because all copies of G_i hold identical data, the simulator shares one
// host-side master table instead of materializing Gamma_i physical copies;
// the data outcome is identical and the movement is charged as above.
// `duplicate_copies = false` disables the Gamma machinery (one copy per
// piece) for the congestion ablation E7: a copy serving q queries then
// timeshares, multiplying round cost by ceil(q / submesh capacity).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "mesh/cost.hpp"
#include "mesh/ops.hpp"
#include "mesh/snake.hpp"
#include "multisearch/graph.hpp"
#include "multisearch/splitter.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/parallel_for.hpp"

namespace meshsearch::msearch {

struct ConstrainedStats {
  mesh::Cost cost;
  std::size_t marked = 0;    ///< queries marked in step 1
  std::size_t copies = 0;    ///< subgraph copies created in step 4
  std::size_t advanced = 0;  ///< total visits performed in step 6
  std::size_t rounds = 0;    ///< max rounds used by any copy (<= log2 n)
};

template <SearchProgram P>
ConstrainedStats constrained_multisearch(const DistributedGraph& g,
                                         const Splitting& psi, const P& prog,
                                         std::vector<Query>& queries,
                                         const mesh::CostModel& m,
                                         mesh::MeshShape shape,
                                         bool duplicate_copies = true) {
  ConstrainedStats st;
  const double p = static_cast<double>(shape.size());
  const std::size_t n = shape.size();

  // Capacity of a delta-submesh: n^delta, but never smaller than the largest
  // piece it must hold (the paper's O(n^delta) constant).
  const std::size_t cap = std::max<std::size_t>(
      {std::size_t{1},
       static_cast<std::size_t>(std::ceil(std::pow(static_cast<double>(n),
                                                   psi.delta))),
       max_piece_size(psi)});
  const double s_sub =
      static_cast<double>(mesh::MeshShape::for_elements(cap).size());

  TRACE_SPAN(m.trace, "constrained-multisearch");

  // Step 1: mark. Fetching piece(v(q)) is one RAR over the whole mesh.
  std::vector<std::uint32_t> marked_idx;
  {
    TRACE_SPAN(m.trace, "cm.step1: mark queries");
    st.cost += m.rar(p);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const Query& q = queries[i];
      if (q.done || q.current == kNoVertex) continue;
      if (psi.piece[static_cast<std::size_t>(q.current)] < 0) continue;
      marked_idx.push_back(static_cast<std::uint32_t>(i));
    }
  }
  st.marked = marked_idx.size();

  // Step 2: Gamma_i = ceil(#queries in G_i / n^delta). RAW + scan.
  std::vector<std::size_t> gamma(psi.num_pieces(), 0);
  std::size_t total_copies = 0;
  {
    TRACE_SPAN(m.trace, "cm.step2: compute Gamma");
    st.cost += m.raw(p) + m.scan(p);
    std::vector<std::size_t> load(psi.num_pieces(), 0);
    for (const auto i : marked_idx)
      ++load[static_cast<std::size_t>(
          psi.piece[static_cast<std::size_t>(queries[i].current)])];
    for (std::size_t pc = 0; pc < gamma.size(); ++pc) {
      gamma[pc] = duplicate_copies ? (load[pc] + cap - 1) / cap
                                   : (load[pc] > 0 ? 1 : 0);
      total_copies += gamma[pc];
    }
  }
  st.copies = total_copies;

  // Step 3: emptiness test (reduction).
  {
    TRACE_SPAN(m.trace, "cm.step3: emptiness test");
    st.cost += m.reduce(p);
  }
  if (total_copies == 0) return st;

  // Step 4: create the copies and place them in delta-submeshes — a constant
  // number of standard mesh operations (Lemma 3 proof).
  {
    TRACE_SPAN(m.trace, "cm.step4: create copies");
    st.cost += m.sort(p) + m.route(p);
  }

  // Step 5: move marked queries to copies, <= cap queries per copy. The
  // copy -> queries map is CSR (one flat array + offsets) rather than a
  // vector-of-vectors; two passes make the identical round-robin assignment
  // (count per copy, then cursor fill in marked_idx order).
  std::vector<std::size_t> copy_off(total_copies + 1, 0);
  std::vector<std::uint32_t> copy_data;
  {
    TRACE_SPAN(m.trace, "cm.step5: distribute queries");
    st.cost += m.sort(p) + m.scan(p) + m.route(p);
    // Assignment: queries of piece i round-robin over its gamma_i copies.
    // copy_base[pc] = id of the first copy of piece pc.
    std::vector<std::size_t> copy_base(psi.num_pieces() + 1, 0);
    for (std::size_t pc = 0; pc < psi.num_pieces(); ++pc)
      copy_base[pc + 1] = copy_base[pc] + gamma[pc];
    std::vector<std::size_t> next_copy(psi.num_pieces(), 0);
    for (const auto i : marked_idx) {
      const auto pc = static_cast<std::size_t>(
          psi.piece[static_cast<std::size_t>(queries[i].current)]);
      ++copy_off[copy_base[pc] + next_copy[pc] + 1];
      next_copy[pc] = (next_copy[pc] + 1) % gamma[pc];
    }
    for (std::size_t c = 0; c < total_copies; ++c) copy_off[c + 1] += copy_off[c];
    copy_data.resize(copy_off[total_copies]);
    std::vector<std::size_t> cursor(copy_off.begin(), copy_off.end() - 1);
    std::fill(next_copy.begin(), next_copy.end(), 0);
    for (const auto i : marked_idx) {
      const auto pc = static_cast<std::size_t>(
          psi.piece[static_cast<std::size_t>(queries[i].current)]);
      copy_data[cursor[copy_base[pc] + next_copy[pc]]++] = i;
      next_copy[pc] = (next_copy[pc] + 1) % gamma[pc];
    }
  }

  // Step 6: local advancement rounds, parallel over copies. Each round is a
  // local RAR inside the delta-submesh. A copy stops when its queries all
  // unmarked; the procedure caps rounds at log2(n).
  const std::size_t max_rounds =
      static_cast<std::size_t>(std::floor(std::log2(std::max<double>(2.0, p))));
  std::vector<std::size_t> rounds_used(total_copies, 0);
  std::vector<std::size_t> visits(total_copies, 0);
  std::vector<std::size_t> batches(total_copies, 1);
  util::parallel_for(0, total_copies, [&](std::size_t c) {
    const std::size_t q_lo = copy_off[c];
    const std::size_t q_hi = copy_off[c + 1];
    // Without duplication (ablation) an overloaded copy timeshares its
    // submesh in ceil(q / cap) sequential batches per round.
    batches[c] = std::max<std::size_t>(1, (q_hi - q_lo + cap - 1) / cap);
    std::size_t r = 0;
    for (; r < max_rounds; ++r) {
      bool any = false;
      for (std::size_t j = q_lo; j < q_hi; ++j) {
        // Pipeline the dependent vertex read a few queries ahead (pure
        // latency hiding; queries are independent).
        if (j + mesh::ops::soa::kPrefetchDistance < q_hi) {
          const Query& qa =
              queries[copy_data[j + mesh::ops::soa::kPrefetchDistance]];
          if (qa.current != kNoVertex && qa.next != kNoVertex)
            mesh::ops::soa::prefetch(&g.vert(qa.next));
        }
        Query& q = queries[copy_data[j]];
        if (q.done) continue;
        if (q.next == kNoVertex) {
          q.done = true;  // path ends at current vertex — unmark
          continue;
        }
        const auto pc = psi.piece[static_cast<std::size_t>(q.current)];
        if (psi.piece[static_cast<std::size_t>(q.next)] != pc)
          continue;  // next node outside G_i — unmarked, visit deferred
        advance_one(g, prog, q);
        ++visits[c];
        any = true;
      }
      if (!any) break;
    }
    rounds_used[c] = r;
  });

  std::size_t worst = 0;
  for (std::size_t c = 0; c < total_copies; ++c) {
    worst = std::max(worst, rounds_used[c] * batches[c]);
    st.advanced += visits[c];
  }
  st.rounds = worst;
  {
    TRACE_SPAN(m.trace, "cm.step6: local advancement rounds");
    st.cost += m.rar(s_sub, static_cast<double>(worst));
  }

  // Step 7: discard copies — no mesh time.
  return st;
}

}  // namespace meshsearch::msearch
