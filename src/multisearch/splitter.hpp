// Delta-splitters and splittings (paper §4.1–§4.3).
//
// A splitter S is a set of edges whose removal breaks G into pieces of size
// O(n^delta); a Splitting records, per vertex, which piece it landed in.
// Pieces of an alpha-splitting of a *directed* graph are typed: every edge
// of S leaves an H ("head-side") piece and enters a T ("tail-side") piece
// (paper §4.2). Alpha-beta splittings of undirected graphs are untyped but
// come in pairs whose borders are Omega(log n) apart (§4.3).
#pragma once

#include <cstdint>
#include <vector>

#include "multisearch/graph.hpp"

namespace meshsearch::msearch {

enum class PieceKind : std::int8_t { kPlain = 0, kHead = 1, kTail = 2 };

struct Splitting {
  std::vector<std::int32_t> piece;  ///< piece id per vertex; -1 = in no piece
  std::vector<PieceKind> kind;      ///< per piece
  double delta = 0.5;               ///< claimed exponent: |G_i| = O(n^delta)

  std::size_t num_pieces() const { return kind.size(); }
};

/// Vertex count of each piece.
std::vector<std::size_t> piece_sizes(const Splitting& s);

/// Largest piece (vertex count).
std::size_t max_piece_size(const Splitting& s);

/// Check the alpha-partitionable property (§4.2): every vertex belongs to a
/// piece, and every cross-piece (splitter) edge goes from a kHead piece to a
/// kTail piece. Throws with a diagnostic on violation.
void validate_alpha_splitting(const DistributedGraph& g, const Splitting& s);

/// Check an (untyped) splitting: piece ids in range, every vertex covered.
void validate_splitting(const DistributedGraph& g, const Splitting& s);

/// Border vertices of a splitting: endpoints of cross-piece edges.
std::vector<Vid> border_vertices(const DistributedGraph& g, const Splitting& s);

/// Shortest undirected graph distance between the borders of s1 and s2
/// (multi-source BFS). Returns a value > limit early once that is certain.
std::size_t border_distance(const DistributedGraph& g, const Splitting& s1,
                            const Splitting& s2, std::size_t limit);

/// Normalize a splitting (§4.1/§4.5): greedily merge pieces of the same
/// kind so that every group has vertex count <= cap while keeping groups as
/// full as possible, giving k = O(n^{1-delta}) groups. A single piece larger
/// than cap keeps its own group (its size is the caller's contract).
Splitting normalize_splitting(const Splitting& s, std::size_t cap);

}  // namespace meshsearch::msearch
