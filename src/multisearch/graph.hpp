// Distributed search structure: the master copy of G on the mesh.
//
// One vertex per processor, adjacency by processor address (paper Appendix).
// The mesh is sized so that side^2 >= max(#vertices, #queries); the paper's
// "mesh of size n" with n = |V|+|E| and O(1) degree is the same thing up to
// the degree constant.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mesh/ops_soa.hpp"
#include "mesh/snake.hpp"
#include "multisearch/types.hpp"
#include "util/check.hpp"
#include "util/parallel_for.hpp"

namespace meshsearch::msearch {

class DistributedGraph {
 public:
  DistributedGraph() = default;
  explicit DistributedGraph(std::size_t vertex_count);

  std::size_t vertex_count() const { return verts_.size(); }
  /// |V| + |E| (directed edge count; undirected edges count twice).
  std::size_t size() const;

  VertexRecord& vert(Vid v) {
    MS_DCHECK(v >= 0 && static_cast<std::size_t>(v) < verts_.size());
    return verts_[static_cast<std::size_t>(v)];
  }
  const VertexRecord& vert(Vid v) const {
    MS_DCHECK(v >= 0 && static_cast<std::size_t>(v) < verts_.size());
    return verts_[static_cast<std::size_t>(v)];
  }
  const std::vector<VertexRecord>& verts() const { return verts_; }

  /// Append a directed edge u -> w to u's adjacency.
  void add_edge(Vid u, Vid w);
  /// Append both directions.
  void add_undirected_edge(Vid u, Vid w);

  bool has_edge(Vid u, Vid w) const;

  /// Mesh holding this graph together with `queries` many queries.
  mesh::MeshShape shape_for(std::size_t queries) const;

  /// Structural validation: ids consistent, neighbours in range, no
  /// self-loops, degree within kMaxDegree. Throws on violation.
  void validate() const;

  std::size_t max_degree() const;

  /// Monotonic mutation stamp. Structure builders bump it on every
  /// apply_updates batch (payload-only or topological); warm engines record
  /// the stamp they were prepared against and refuse to serve when it has
  /// moved (StaleEngineError). 0 = freshly built, never mutated.
  std::uint64_t generation() const { return generation_; }
  void bump_generation() { ++generation_; }
  /// For in-place rebuilds that replace the whole graph by assignment (the
  /// topological apply_updates fallback): carry the old stamp across the
  /// assignment, then bump. Never use this to rewind a stamp.
  void set_generation(std::uint64_t gen) { generation_ = gen; }

 private:
  std::vector<VertexRecord> verts_;
  std::uint64_t generation_ = 0;
};

/// Visit semantics shared by all engines: q arrives at q.next, receives the
/// record, applies the successor function once. Returns false when the query
/// was already finished (and flags `done`).
template <SearchProgram P>
bool advance_one(const DistributedGraph& g, const P& prog, Query& q) {
  if (q.done) return false;
  if (q.next == kNoVertex && q.current != kNoVertex) {
    q.done = true;
    return false;
  }
  const Vid v = q.current == kNoVertex ? prog.start(q) : q.next;
  if (v == kNoVertex) {
    q.done = true;
    return false;
  }
  q.current = v;
  ++q.steps;
  q.next = prog.next(g.vert(v), q);
  return true;
}

/// Advance every query by one visit (the body of a full-mesh multistep):
/// host-parallel over fixed query chunks — each query is touched by exactly
/// one chunk, and the advanced-count reduction merges per-chunk totals in
/// chunk order, so the result is bit-identical at any thread count. Returns
/// the number of queries that advanced.
template <SearchProgram P>
std::size_t advance_all(const DistributedGraph& g, const P& prog,
                        std::vector<Query>& queries) {
  // Fixed chunking (not thread-count-derived): see DESIGN.md §5.6.
  const std::size_t nchunks = util::fixed_chunk_count(queries.size());
  std::vector<std::size_t> advanced(nchunks, 0);
  util::for_fixed_chunks(queries.size(), [&](std::size_t c, std::size_t lo,
                                             std::size_t hi) {
    std::size_t local = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      // Software pipeline: the visit is a dependent random read of the
      // target vertex; issuing the prefetch kPrefetchDistance queries ahead
      // hides most of the DRAM latency. Queries are independent, so this
      // cannot change any outcome.
      if (i + mesh::ops::soa::kPrefetchDistance < hi) {
        const Query& qa = queries[i + mesh::ops::soa::kPrefetchDistance];
        if (qa.current != kNoVertex && qa.next != kNoVertex)
          mesh::ops::soa::prefetch(&g.vert(qa.next));
      }
      local += advance_one(g, prog, queries[i]) ? 1 : 0;
    }
    advanced[c] = local;
  });
  std::size_t total = 0;
  for (const auto a : advanced) total += a;
  return total;
}

/// Initialize query engine state (does not touch application payload).
void reset_queries(std::vector<Query>& queries);

/// True when every query's search path has terminated.
bool all_done(const std::vector<Query>& queries);

/// Longest search path executed so far (max steps over queries).
std::int32_t max_steps(const std::vector<Query>& queries);

}  // namespace meshsearch::msearch
