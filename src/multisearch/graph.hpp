// Distributed search structure: the master copy of G on the mesh.
//
// One vertex per processor, adjacency by processor address (paper Appendix).
// The mesh is sized so that side^2 >= max(#vertices, #queries); the paper's
// "mesh of size n" with n = |V|+|E| and O(1) degree is the same thing up to
// the degree constant.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mesh/snake.hpp"
#include "multisearch/types.hpp"
#include "util/check.hpp"
#include "util/parallel_for.hpp"

namespace meshsearch::msearch {

class DistributedGraph {
 public:
  DistributedGraph() = default;
  explicit DistributedGraph(std::size_t vertex_count);

  std::size_t vertex_count() const { return verts_.size(); }
  /// |V| + |E| (directed edge count; undirected edges count twice).
  std::size_t size() const;

  VertexRecord& vert(Vid v) {
    MS_DCHECK(v >= 0 && static_cast<std::size_t>(v) < verts_.size());
    return verts_[static_cast<std::size_t>(v)];
  }
  const VertexRecord& vert(Vid v) const {
    MS_DCHECK(v >= 0 && static_cast<std::size_t>(v) < verts_.size());
    return verts_[static_cast<std::size_t>(v)];
  }
  const std::vector<VertexRecord>& verts() const { return verts_; }

  /// Append a directed edge u -> w to u's adjacency.
  void add_edge(Vid u, Vid w);
  /// Append both directions.
  void add_undirected_edge(Vid u, Vid w);

  bool has_edge(Vid u, Vid w) const;

  /// Mesh holding this graph together with `queries` many queries.
  mesh::MeshShape shape_for(std::size_t queries) const;

  /// Structural validation: ids consistent, neighbours in range, no
  /// self-loops, degree within kMaxDegree. Throws on violation.
  void validate() const;

  std::size_t max_degree() const;

 private:
  std::vector<VertexRecord> verts_;
};

/// Visit semantics shared by all engines: q arrives at q.next, receives the
/// record, applies the successor function once. Returns false when the query
/// was already finished (and flags `done`).
template <SearchProgram P>
bool advance_one(const DistributedGraph& g, const P& prog, Query& q) {
  if (q.done) return false;
  if (q.next == kNoVertex && q.current != kNoVertex) {
    q.done = true;
    return false;
  }
  const Vid v = q.current == kNoVertex ? prog.start(q) : q.next;
  if (v == kNoVertex) {
    q.done = true;
    return false;
  }
  q.current = v;
  ++q.steps;
  q.next = prog.next(g.vert(v), q);
  return true;
}

/// Advance every query by one visit (the body of a full-mesh multistep):
/// host-parallel over fixed query chunks — each query is touched by exactly
/// one chunk, and the advanced-count reduction merges per-chunk totals in
/// chunk order, so the result is bit-identical at any thread count. Returns
/// the number of queries that advanced.
template <SearchProgram P>
std::size_t advance_all(const DistributedGraph& g, const P& prog,
                        std::vector<Query>& queries) {
  // Fixed chunking (not thread-count-derived): see DESIGN.md §5.6.
  constexpr std::size_t kChunks = 64;
  const std::size_t chunk =
      std::max<std::size_t>(1, (queries.size() + kChunks - 1) / kChunks);
  const std::size_t nchunks = (queries.size() + chunk - 1) / chunk;
  std::vector<std::size_t> advanced(nchunks, 0);
  util::parallel_for(std::size_t{0}, nchunks, [&](std::size_t c) {
    std::size_t local = 0;
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(queries.size(), lo + chunk);
    for (std::size_t i = lo; i < hi; ++i)
      local += advance_one(g, prog, queries[i]) ? 1 : 0;
    advanced[c] = local;
  });
  std::size_t total = 0;
  for (const auto a : advanced) total += a;
  return total;
}

/// Initialize query engine state (does not touch application payload).
void reset_queries(std::vector<Query>& queries);

/// True when every query's search path has terminated.
bool all_done(const std::vector<Query>& queries);

/// Longest search path executed so far (max steps over queries).
std::int32_t max_steps(const std::vector<Query>& queries);

}  // namespace meshsearch::msearch
