// Streaming batch scheduler: serve a stream of m >> n queries on one mesh.
//
// Every engine in this repo so far answers exactly one mesh-sized load: the
// graph is distributed (Appendix initial configuration), level indices are
// computed (§3 preprocessing), band replicas are laid out (Algorithm 1 steps
// 1-3a), one multisearch runs, everything is torn down. A server does not
// work like that: the structure is fixed and queries keep arriving. This
// layer splits every algorithm's cost into
//
//   one-time setup   — distribute_graph + level indices + band replication
//                      (batch-invariant: depends only on G and the mesh)
//   per-batch work   — inject_queries + the multisearch proper,
//
// pays the former once in PreparedSearch and amortizes it over an arbitrary
// query stream driven by StreamScheduler. The same batched-query framing
// that turns one-shot search structures into query servers in Sun &
// Blelloch's augmented-map work (PAPERS.md).
//
//   * PreparedSearch<P> — a warm engine for one algorithm (Alg 1 in either
//     plan, Alg 2, Alg 3). Construction charges the one-time setup through
//     the CostModel (so it lands in the trace attribution like any other
//     work) and caches the host-side artifacts: the distributed graph, the
//     validated level indices, the band plan and its Lemma-1 replica labels.
//     run_batch() then charges only inject + multisearch, with Algorithm 1's
//     per-band steps 1-3a suppressed (charge_band_setup = false): the
//     replicas are already resident.
//
//   * StreamScheduler<P> — slices a query stream into batches of at most
//     mesh-capacity queries under a BatchPolicy (FIFO, or locality-reorder:
//     sort a window of queries by search key so key-adjacent queries share a
//     batch), runs each batch on the warm engine, and reports per-batch and
//     cumulative cost plus throughput metrics (queries/step, amortized setup
//     fraction) into the trace layer. A resetup_every_batch mode re-charges
//     the full setup before every batch — the naive baseline E8 compares
//     against.
//
// Invalidation contract (DESIGN.md §5, decisions "Streaming batches" and
// 16): the cache is valid as long as the graph, the mesh shape, and (for
// Alg 1) the plan kind are unchanged — and, since PR 9, the engine TRACKS
// that. Construction records the graph's generation stamp; every
// run_batch/charge_setup first compares it against the live stamp and
// throws a typed StaleEngineError (never a silently wrong answer) when a
// structure's apply_updates has moved it. refresh(RefreshRequest) brings a
// stale engine back: payload-only deltas re-distribute just the dirty
// records and their band replicas (charged under the `rebuild` primitive,
// proportional to the dirty copy count, fault-recoverable like any phase);
// topological deltas or force_full re-run the full setup. After refresh the
// warm engine is bit-identical to a cold engine built from the post-update
// structure. Resizing the mesh still requires a new PreparedSearch. Query
// contents never invalidate anything.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "mesh/cost.hpp"
#include "mesh/fault.hpp"
#include "mesh/snake.hpp"
#include "multisearch/graph.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/partitioned.hpp"
#include "multisearch/recovery.hpp"
#include "multisearch/setup.hpp"
#include "multisearch/splitter.hpp"
#include "multisearch/update.hpp"
#include "multisearch/validate.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace meshsearch::msearch {

/// The four streaming engines. Constrained-Multisearch (Lemma 3) is not a
/// standalone engine here: it is the inner loop of both partitioned
/// algorithms and streams through them.
enum class EngineKind : std::uint8_t {
  kAlg1Paper = 0,    ///< Algorithm 1, §3 log* band plan
  kAlg1Geometric,    ///< Algorithm 1, geometric band plan (PlanKind doc)
  kAlg2Alpha,        ///< Algorithm 2, directed alpha-partitionable (Thm 5)
  kAlg3AlphaBeta,    ///< Algorithm 3, undirected alpha-beta (Thm 7)
};

const char* engine_kind_name(EngineKind k);

enum class BatchOrder : std::uint8_t {
  kFifo = 0,          ///< arrival order
  kLocalityReorder,   ///< sort each window by search key before slicing
};

struct BatchPolicy {
  /// Queries per batch; 0 = mesh capacity. Clamped to capacity (the initial
  /// configuration stores at most one query per processor).
  std::size_t batch_size = 0;
  BatchOrder order = BatchOrder::kFifo;
  /// Locality-reorder window (queries sorted together before slicing);
  /// 0 = 4 batches worth. Ignored under kFifo.
  std::size_t window = 0;
};

/// Slice `stream` into batches of at most min(policy.batch_size, capacity)
/// query indices, in arrival order or locality order. Every index appears
/// in exactly one batch; no batch is empty. Deterministic (key ties break
/// by arrival index).
///
/// Edge contracts (each a defined behavior, not caller discipline):
///   * empty stream        -> no batches (an empty vector), nothing charged;
///   * batch_size == 0     -> batches of exactly `capacity` (the largest the
///                            initial configuration admits);
///   * batch_size > capacity -> silently clamped to `capacity` (the clamp is
///                            a guarantee: no plan ever oversubscribes the
///                            mesh);
///   * capacity == 0       -> InvalidInputError (a mesh with no processors
///                            cannot serve a batch; this is caller error,
///                            not a library invariant violation).
std::vector<std::vector<std::uint32_t>> plan_batches(
    const std::vector<Query>& stream, const BatchPolicy& policy,
    std::size_t capacity);

/// One pending unit of work in a batch queue: stream/arrival positions plus
/// the fault re-plan generation that produced this slicing (0 = original).
struct PendingBatch {
  std::vector<std::uint32_t> indices;  ///< stream positions, arrival order
  std::uint32_t replans = 0;           ///< re-plan generation
};

/// The queue of pending batches a scheduler drains. Extracted from
/// StreamScheduler so the multi-tenant service layer (src/service/) can
/// feed per-tenant queues through the same machinery:
///
///   * StreamScheduler plans a whole stream up front (the two-argument
///     constructor wraps plan_batches) and pops planned batches whole;
///   * ServiceScheduler enqueues arrivals as they are admitted and pops
///     deficit-sized slices (pop_upto) for fair batching between tenants;
///   * both requeue a fault-exhausted batch as capacity-clamped pieces at
///     the next re-plan generation — at the back for the stream scheduler
///     (its batches are independent) and at the front for the service (a
///     tenant's queries must not be overtaken by its later arrivals).
///
/// Deterministic by construction: a pure function of the enqueue/pop call
/// sequence, no clocks, no randomness.
class BatchSource {
 public:
  BatchSource() = default;
  /// Plan `stream` into capacity-clamped batches under `policy` and queue
  /// them all (the StreamScheduler path). Same contracts as plan_batches.
  BatchSource(const std::vector<Query>& stream, const BatchPolicy& policy,
              std::size_t capacity);

  /// Append one batch of positions at re-plan generation 0 (the arrival
  /// path). An empty batch is a no-op.
  void enqueue(std::vector<std::uint32_t> indices);

  bool empty() const { return work_.empty(); }
  std::size_t pending_batches() const { return work_.size(); }
  /// Total queued query positions across all pending batches.
  std::size_t pending_queries() const { return queries_; }
  /// Re-plan generation of the front batch (0 on an empty source).
  std::uint32_t front_replans() const {
    return work_.empty() ? 0 : work_.front().replans;
  }

  /// Pop the whole front batch. MS_CHECKs non-empty.
  PendingBatch pop();

  /// Pop up to `limit` positions off the front, splitting the front batch
  /// if it is larger and coalescing across consecutive batches of EQUAL
  /// re-plan generation (mixing generations would let a fresh arrival
  /// inherit — or reset — another batch's retry budget). `limit` must be
  /// >= 1.
  PendingBatch pop_upto(std::size_t limit);

  /// Pop the expired front prefix: remove and return, in order, every
  /// position from the front of the queue for which `expired` holds,
  /// stopping at the first live one. The service scheduler uses this for
  /// deadline shedding at dispatch time — and the prefix form is EXACT, not
  /// an approximation, because the queue is kept in admission order (enqueue
  /// appends arrivals, requeue_split_front prepends strictly older work), so
  /// under a per-tenant deadline measured from each position's admission
  /// clock, the expired positions are always a prefix. Empty batches left
  /// behind are dropped. Returns an empty vector on an empty source.
  std::vector<std::uint32_t> pop_expired(
      const std::function<bool(std::uint32_t)>& expired);

  /// Requeue a fault-exhausted batch as pieces of at most `cap` positions,
  /// each at generation `failed.replans + 1`, preserving index order.
  /// _back appends (stream scheduler), _front prepends keeping piece order
  /// (service scheduler: the tenant's own later work must not overtake).
  void requeue_split_back(const PendingBatch& failed, std::size_t cap);
  void requeue_split_front(const PendingBatch& failed, std::size_t cap);

 private:
  std::deque<PendingBatch> work_;
  std::size_t queries_ = 0;  ///< invariant: sum of work_[i].indices.size()
};

/// Cost of one batch, split the way the amortization argument needs.
struct BatchReport {
  std::size_t size = 0;    ///< queries in this batch
  std::size_t visits = 0;  ///< total vertex visits (data-pass measure)
  mesh::Cost setup;   ///< one-time setup attributed here (batch 0 of a cold
                      ///< engine, or every batch under resetup_every_batch)
  mesh::Cost inject;  ///< inject_queries for this batch
  mesh::Cost run;     ///< the multisearch proper
  std::uint32_t replans = 0;  ///< re-plan generation (0 = original slicing)
  bool degraded = false;  ///< retry budget exhausted even after re-planning;
                          ///< the batch's queries are REPORTED failed, never
                          ///< silently wrong (see StreamResult::failed_queries)
  /// Wall-clock observability (NOT part of the determinism contract, which
  /// pins outcomes, charges, and attribution only — DESIGN.md decision 13).
  double wall_us = 0;        ///< wall time this batch attempt took
  double queue_wait_us = 0;  ///< wall time since run() start before it began

  mesh::Cost total() const { return setup + inject + run; }
};

/// Per-stream service-level report: what a tenant of the future multi-tenant
/// service would be handed after its stream completes. Latency and queue-wait
/// percentiles are wall-clock (util::LogHistogram — the repo's one
/// percentile implementation); degraded/replan/failure counts summarize the
/// fault story. Everything here is observability: two bit-identical runs may
/// report different latencies, never different outcomes.
struct StreamSlo {
  util::LogHistogram batch_latency_us;  ///< per-batch-attempt wall latency
  util::LogHistogram queue_wait_us;     ///< wall wait before each attempt ran
  std::size_t batches = 0;              ///< attempts that produced a report
  std::size_t degraded_batches = 0;     ///< reported-failed batches
  std::size_t replans = 0;              ///< re-plan generations executed
  std::size_t failed_queries = 0;       ///< |StreamResult::failed_queries|
};

struct StreamResult {
  std::vector<BatchReport> batches;
  std::size_t queries = 0;
  /// Stream positions of queries in degraded batches (retry budget
  /// exhausted after max_replans re-plans). Their Query records keep their
  /// pre-batch checkpoint state. Empty on every fault-free run.
  std::vector<std::uint32_t> failed_queries;
  mesh::Cost setup;   ///< sum of per-batch setup attributions
  mesh::Cost inject;
  mesh::Cost run;
  StreamSlo slo;      ///< wall-clock latency percentiles + error report

  mesh::Cost total() const { return setup + inject + run; }
  double amortized_steps_per_query() const;
  double queries_per_step() const;
  /// Share of the total spent on (re-)setup — the quantity amortization
  /// drives to zero as m/n grows.
  double setup_fraction() const;
};

/// Sum the per-batch reports into the cumulative fields of `res`.
void finalize_stream(StreamResult& res);

/// Record the stream throughput metrics (stream.batches, stream.queries,
/// stream.queries_per_step, stream.amortized_steps_per_query,
/// stream.setup_fraction) into `rec`. Null `rec` is a no-op.
void record_stream_metrics(trace::TraceRecorder* rec, const StreamResult& res);

template <SearchProgram P>
class PreparedSearch {
 public:
  /// Warm Algorithm-1 engine (either plan). Builds and verifies the band
  /// plan and its replica labels host-side, then charges the one-time setup
  /// (distribute_graph + level-index peel + band replication) through `m`.
  /// `dag` and `m` must outlive the engine.
  PreparedSearch(const HierarchicalDag& dag, PlanKind plan_kind, P prog,
                 const mesh::CostModel& m, mesh::MeshShape shape)
      : kind_(plan_kind == PlanKind::kPaper ? EngineKind::kAlg1Paper
                                            : EngineKind::kAlg1Geometric),
        g_(&dag.graph()),
        dag_(&dag),
        plan_kind_(plan_kind),
        prog_(std::move(prog)),
        m_(&m),
        shape_(shape) {
    // Front door: reject malformed input before charging the setup.
    validate_graph(*g_, engine_kind_name(kind_));
    validate_graph_fits(*g_, shape_, engine_kind_name(kind_));
    plan_ = make_hierarchical_plan(dag, shape_, plan_kind_);
    labels_ = band_labels(plan_, shape_);
    // Only the log* plan satisfies the Theorem-2 resident-replica storage
    // bound; the geometric plan stages its copies transiently (§5.9
    // trade-off), so its labels legitimately exceed capacity.
    if (plan_kind_ == PlanKind::kPaper)
      verify_label_capacity(plan_, shape_, labels_);
    prepared_generation_ = g_->generation();
    setup_cost_ = charge_setup();
  }

  /// Warm Algorithm-2/3 engine. The splittings are copied (the engine's
  /// cache must not dangle); `g` and `m` must outlive the engine.
  PreparedSearch(EngineKind kind, const DistributedGraph& g, Splitting psi_a,
                 Splitting psi_b, P prog, const mesh::CostModel& m,
                 mesh::MeshShape shape, bool duplicate_copies = true)
      : kind_(kind),
        g_(&g),
        psi_a_(std::move(psi_a)),
        psi_b_(std::move(psi_b)),
        prog_(std::move(prog)),
        m_(&m),
        shape_(shape),
        duplicate_copies_(duplicate_copies) {
    if (kind != EngineKind::kAlg2Alpha && kind != EngineKind::kAlg3AlphaBeta)
      invalid_input("partitioned PreparedSearch requires an Alg 2/3 kind",
                    "PreparedSearch");
    // Front door: reject malformed input before charging the setup.
    validate_graph(*g_, engine_kind_name(kind_));
    validate_graph_fits(*g_, shape_, engine_kind_name(kind_));
    validate_splitting_input(*g_, psi_a_, engine_kind_name(kind_));
    validate_splitting_input(*g_, psi_b_, engine_kind_name(kind_));
    prepared_generation_ = g_->generation();
    setup_cost_ = charge_setup();
  }

  EngineKind kind() const { return kind_; }
  mesh::MeshShape shape() const { return shape_; }
  /// Largest batch the initial configuration admits (one query/processor).
  std::size_t capacity() const { return shape_.size(); }
  /// The one-time setup charged at construction.
  mesh::Cost setup_cost() const { return setup_cost_; }
  std::size_t batches_served() const { return batches_served_; }
  const mesh::CostModel& model() const { return *m_; }

  /// Diagnostic name carried into StaleEngineError ("<unnamed>" until the
  /// registry — or a caller — stamps one).
  const std::string& dataset() const { return dataset_; }
  void set_dataset(std::string name) { dataset_ = std::move(name); }

  /// Generation of the structure the engine was prepared (or last
  /// refreshed) against, and the structure's live stamp.
  std::uint64_t prepared_generation() const { return prepared_generation_; }
  std::uint64_t structure_generation() const { return g_->generation(); }
  /// True when the structure has been mutated since preparation — serving
  /// would throw StaleEngineError; call refresh() first.
  bool stale() const { return structure_generation() != prepared_generation_; }
  /// Refreshes performed so far (incremental or full).
  std::size_t refreshes() const { return refreshes_; }

  /// Bring a stale (or doubted) engine back in sync with its structure
  /// after an apply_updates batch.
  ///
  /// Payload-only deltas (!delta.topology_changed, !force_full) refresh
  /// incrementally: the dirty records and every band replica holding a copy
  /// of them are re-distributed, charged under the `rebuild` primitive as
  /// ceil(dirty copies / p) redistribution rounds. All cached state (plan,
  /// labels, splittings) stays valid. The phase runs under the standard
  /// fault machinery as phase "rebuild" — failed attempts re-charge and
  /// back off, and an exhausted budget throws FaultExhaustedError leaving
  /// the engine still stale (the caller degrades and retries, or falls back
  /// to force_full).
  ///
  /// Topological deltas (or force_full) re-run the full setup: Algorithm-1
  /// engines recompute their band plan and replica labels from the DAG
  /// (which the structure must have refreshed in place — HierarchicalDag is
  /// assignable precisely so its address stays stable); partitioned engines
  /// adopt the request's fresh splittings when provided, keeping their old
  /// ones for payload-only-forced-full refreshes.
  ///
  /// Either way the engine adopts the structure's current generation and
  /// the run_batch gate reopens. Afterwards the engine is bit-identical to
  /// a cold engine built from the post-update structure (the contract the
  /// UpdateWarmColdOracle tests pin).
  RefreshReport refresh(const RefreshRequest& req) {
    TRACE_SPAN(m_->trace, "stream.refresh");
    RefreshReport rep;
    const double p = static_cast<double>(shape_.size());
    if (!req.delta.topology_changed && !req.force_full) {
      rep.incremental = true;
      // The charge body is idempotent (a pure cost computation), so an int
      // stands in as the checkpoint state for the retry machinery.
      int state = 0;
      rep.cost = detail::recovered_phase(*m_, p, "rebuild", state, [&] {
        double messages = 0;
        for (const Vid v : req.delta.dirty_vertices)
          messages += static_cast<double>(replica_copies(g_->vert(v).level));
        return m_->rebuild(p, std::max(1.0, std::ceil(messages / p)));
      });
    } else {
      // Full re-setup. Re-validate at the front door: the mutated structure
      // must still be a graph this engine kind can serve.
      validate_graph(*g_, engine_kind_name(kind_));
      validate_graph_fits(*g_, shape_, engine_kind_name(kind_));
      if (dag_ != nullptr) {
        plan_ = make_hierarchical_plan(*dag_, shape_, plan_kind_);
        labels_ = band_labels(plan_, shape_);
        if (plan_kind_ == PlanKind::kPaper)
          verify_label_capacity(plan_, shape_, labels_);
      } else {
        if (req.has_splittings) {
          psi_a_ = req.psi_a;
          psi_b_ = req.psi_b;
        }
        validate_splitting_input(*g_, psi_a_, engine_kind_name(kind_));
        validate_splitting_input(*g_, psi_b_, engine_kind_name(kind_));
      }
      setup_cost_ = charge_setup();
      rep.cost = setup_cost_;
    }
    prepared_generation_ = g_->generation();
    ++refreshes_;
    return rep;
  }

  /// Algorithm-1 cache views (MS_CHECKs on partitioned engines).
  const HierarchicalPlan& plan() const {
    MS_CHECK(dag_ != nullptr);
    return plan_;
  }
  const std::vector<std::int32_t>& replica_labels() const {
    MS_CHECK(dag_ != nullptr);
    return labels_;
  }

  /// Charge the one-time setup through the cost model (again). Construction
  /// calls this once; the resetup_every_batch baseline calls it before every
  /// batch. Alg 1: distribute_graph + the §3 level-index peel (whose on-mesh
  /// result is verified against the DAG's level fields) + band replication.
  /// Alg 2/3: distribute_graph + delivering the piece-id tags of each
  /// distinct splitting (one route each).
  mesh::Cost charge_setup() {
    TRACE_SPAN(m_->trace, "stream.prepare");
    mesh::Cost cost = distribute_graph(*g_, *m_, shape_);
    if (dag_ != nullptr) {
      const LevelIndexResult li = compute_level_indices(*g_, *m_, shape_);
      // The peel's strict input class (every edge drops exactly one level)
      // must reproduce the stored level fields exactly. Chain-link
      // hierarchies (e.g. Kirkpatrick transition chains, whose next-slot
      // edges run WITHIN a level) are outside that class: there the peel
      // yields some finer topological ranking, so verify precisely that —
      // every edge ascends in peel order.
      bool strictly_leveled = true;
      for (std::size_t v = 0; strictly_leveled && v < g_->vertex_count();
           ++v) {
        const auto& rec = g_->vert(static_cast<Vid>(v));
        for (std::uint8_t d = 0; d < rec.degree; ++d)
          strictly_leveled &=
              g_->vert(rec.nbr[d]).level == rec.level + 1;
      }
      for (std::size_t v = 0; v < li.level.size(); ++v) {
        const auto& rec = g_->vert(static_cast<Vid>(v));
        if (strictly_leveled) {
          MS_CHECK_MSG(li.level[v] == rec.level,
                       "on-mesh level peel disagrees with DAG level fields");
        } else {
          for (std::uint8_t d = 0; d < rec.degree; ++d)
            MS_CHECK_MSG(
                li.level[v] <
                    li.level[static_cast<std::size_t>(rec.nbr[d])],
                "on-mesh level peel is not a topological ranking");
        }
      }
      cost += li.cost;
      cost += band_setup_cost(plan_, shape_, *m_);
    } else {
      const double p = static_cast<double>(shape_.size());
      const double splittings =
          kind_ == EngineKind::kAlg2Alpha ? 1.0 : 2.0;  // Alg 2: Psi_A==Psi_B
      cost += m_->route(p, splittings);
    }
    return cost;
  }

  /// Run one batch on the warm engine: inject + multisearch, no setup.
  /// `batch.size()` must be at most capacity(). The queries are advanced in
  /// place (outcome fields hold the answers afterwards).
  BatchReport run_batch(std::vector<Query>& batch) {
    check_fresh("run_batch");
    BatchReport rep;
    rep.size = batch.size();
    if (batch.empty()) return rep;
    validate_batch_size(batch.size(), capacity(), engine_kind_name(kind_));
    rep.inject = inject_queries(batch.size(), *m_, shape_);
    switch (kind_) {
      case EngineKind::kAlg1Paper:
      case EngineKind::kAlg1Geometric: {
        const HierarchicalRunResult r =
            hierarchical_multisearch(*dag_, prog_, batch, *m_, shape_,
                                     plan_kind_, /*charge_band_setup=*/false);
        rep.run = r.cost;
        rep.visits = r.total_visits;
        break;
      }
      case EngineKind::kAlg2Alpha:
      case EngineKind::kAlg3AlphaBeta: {
        const PartitionedRunResult r =
            multisearch_partitioned(*g_, psi_a_, psi_b_, prog_, batch, *m_,
                                    shape_, duplicate_copies_);
        rep.run = r.cost;
        rep.visits = r.total_visits;
        break;
      }
    }
    ++batches_served_;
    return rep;
  }

 private:
  /// The stale gate: a mutated structure must never be served silently.
  void check_fresh(const char* phase) const {
    if (g_->generation() == prepared_generation_) return;
    ErrorContext ctx;
    ctx.engine = engine_kind_name(kind_);
    ctx.phase = phase;
    throw StaleEngineError(dataset_, g_->generation(), prepared_generation_,
                           std::move(ctx));
  }

  /// How many resident copies of a level's records the warm cache holds —
  /// the per-record multiplier of the incremental rebuild charge. Alg 1:
  /// each band is duplicated into its grid^2 submeshes, and the Lemma-1
  /// prefix B_i^1 (levels below band.split) again into inner_grid^2
  /// sub-submeshes of each; B* levels live once, in the master copy.
  /// Partitioned engines hold the master copy plus one piece-id tag route
  /// per distinct splitting (Alg 2: Psi_A == Psi_B).
  double replica_copies(std::int32_t level) const {
    if (dag_ == nullptr)
      return 1.0 + (kind_ == EngineKind::kAlg2Alpha ? 1.0 : 2.0);
    for (const Band& b : plan_.bands) {
      if (level < b.lo || level > b.hi) continue;
      const double g2 = static_cast<double>(b.grid) *
                        static_cast<double>(b.grid);
      if (level < b.split)
        return g2 * static_cast<double>(b.inner_grid) *
               static_cast<double>(b.inner_grid);
      return g2;
    }
    return 1.0;  // B* (or a level outside every band): master copy only
  }

  EngineKind kind_;
  const DistributedGraph* g_;
  const HierarchicalDag* dag_ = nullptr;  ///< Alg 1 only
  PlanKind plan_kind_ = PlanKind::kPaper;
  HierarchicalPlan plan_;                 ///< cached band plan (Alg 1)
  std::vector<std::int32_t> labels_;      ///< cached replica labels (Alg 1)
  Splitting psi_a_, psi_b_;               ///< cached splittings (Alg 2/3)
  P prog_;
  const mesh::CostModel* m_;
  mesh::MeshShape shape_;
  bool duplicate_copies_ = true;
  mesh::Cost setup_cost_;
  std::size_t batches_served_ = 0;
  std::string dataset_ = "<unnamed>";
  std::uint64_t prepared_generation_ = 0;
  std::size_t refreshes_ = 0;
};

template <SearchProgram P>
class StreamScheduler {
 public:
  /// `engine` must outlive the scheduler. resetup_every_batch re-charges the
  /// engine's full setup before every batch (the naive baseline).
  StreamScheduler(PreparedSearch<P>& engine, BatchPolicy policy,
                  bool resetup_every_batch = false)
      : engine_(&engine),
        policy_(policy),
        resetup_every_batch_(resetup_every_batch) {}

  /// Serve the whole stream. Queries are advanced in place, in their
  /// arrival positions regardless of batch order. The engine's one-time
  /// setup is attributed to the first batch if (and only if) this run is
  /// the engine's first; re-running on a warm engine charges no setup at
  /// all, which is the point.
  ///
  /// Fault degradation: each batch runs on a COPY of its stream slice, so a
  /// batch that throws FaultExhaustedError leaves the stream at its
  /// pre-batch checkpoint for free. The scheduler then shrinks the fault
  /// plan's surviving capacity, re-slices the batch onto it and requeues the
  /// pieces; a batch that exhausts max_replans generations is reported
  /// degraded (BatchReport.degraded, StreamResult::failed_queries) instead
  /// of poisoning the stream — never a silent wrong answer.
  StreamResult run(std::vector<Query>& stream) {
    StreamResult res;
    res.queries = stream.size();
    BatchSource work(stream, policy_, engine_->capacity());
    // The scheduler traces into the same sink the engine charges through.
    trace::TraceRecorder* rec = engine_->model().trace;
    mesh::FaultPlan* fault = engine_->model().fault;
    const std::uint32_t max_replans =
        fault != nullptr
            ? static_cast<std::uint32_t>(
                  std::max(0, fault->config().max_replans))
            : 0;
    TRACE_SPAN(rec, "stream");
    const bool cold = engine_->batches_served() == 0;
    std::size_t serial = 0;  ///< span numbering: one per attempt, run order
    bool setup_attributed = false;
    std::vector<Query> batch;
    // Wall-clock SLO instrumentation: queue wait = time between run() start
    // and the attempt beginning; latency = the attempt itself. Histograms
    // live on the result AND (via the recorder) in the StatsRegistry; they
    // never feed back into scheduling, so determinism is untouched.
    const auto wall_epoch = std::chrono::steady_clock::now();
    const auto wall_us_since = [](std::chrono::steady_clock::time_point t0) {
      return std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - t0)
          .count();
    };
    while (!work.empty()) {
      PendingBatch cur = work.pop();
      trace::SpanScope batch_span(rec,
                                  "stream.batch " + std::to_string(serial));
      ++serial;
      BatchReport rep;
      rep.replans = cur.replans;
      rep.queue_wait_us = wall_us_since(wall_epoch);
      const auto attempt_begin = std::chrono::steady_clock::now();
      // Cold setup rides on the first report actually emitted; a failed
      // attempt whose report is discarded carries it to the next one.
      const bool attribute_setup = cold && !resetup_every_batch_ &&
                                   !setup_attributed;
      if (resetup_every_batch_) {
        rep.setup = engine_->charge_setup();
      } else if (attribute_setup) {
        rep.setup = engine_->setup_cost();  // attribution only, not a charge
      }
      batch.clear();
      batch.reserve(cur.indices.size());
      for (const auto idx : cur.indices) batch.push_back(stream[idx]);
      try {
        const BatchReport r = engine_->run_batch(batch);
        rep.size = r.size;
        rep.visits = r.visits;
        rep.inject = r.inject;
        rep.run = r.run;
        for (std::size_t k = 0; k < cur.indices.size(); ++k)
          stream[cur.indices[k]] = batch[k];
        if (attribute_setup) setup_attributed = true;
        rep.wall_us = wall_us_since(attempt_begin);
        res.slo.batch_latency_us.observe(rep.wall_us);
        res.slo.queue_wait_us.observe(rep.queue_wait_us);
        if (rec != nullptr) {
          rec->stat_observe("stream.batch_latency_us", rep.wall_us);
          rec->stat_observe("stream.queue_wait_us", rep.queue_wait_us);
          rec->stat_add("stream.batches_run");
        }
        res.batches.push_back(rep);
      } catch (const mesh::FaultExhaustedError&) {
        if (fault == nullptr) throw;  // not ours to recover
        // `batch` was a copy — the stream still holds the checkpoint.
        fault->degrade();
        if (cur.replans < max_replans) {
          fault->count_replanned_batch();
          ++res.slo.replans;
          if (rec != nullptr) rec->stat_add("stream.replans");
          work.requeue_split_back(cur,
                                  fault->effective_capacity(engine_->capacity()));
        } else {
          fault->count_degraded_batch();
          rep.size = cur.indices.size();
          rep.degraded = true;
          res.failed_queries.insert(res.failed_queries.end(),
                                    cur.indices.begin(), cur.indices.end());
          if (attribute_setup) setup_attributed = true;
          rep.wall_us = wall_us_since(attempt_begin);
          res.slo.batch_latency_us.observe(rep.wall_us);
          res.slo.queue_wait_us.observe(rep.queue_wait_us);
          if (rec != nullptr) {
            rec->stat_observe("stream.batch_latency_us", rep.wall_us);
            rec->stat_observe("stream.queue_wait_us", rep.queue_wait_us);
            rec->stat_add("stream.batches_run");
            rec->stat_add("stream.degraded_batches");
          }
          res.batches.push_back(rep);
        }
      }
    }
    finalize_stream(res);
    record_stream_metrics(rec, res);
    if (fault != nullptr) mesh::record_fault_metrics(rec, *fault);
    return res;
  }

 private:
  PreparedSearch<P>* engine_;
  BatchPolicy policy_;
  bool resetup_every_batch_;
};

}  // namespace meshsearch::msearch
