#include "multisearch/hierarchical.hpp"

#include "mesh/submesh.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>

#include "multisearch/validate.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"

namespace meshsearch::msearch {

HierarchicalDag::HierarchicalDag(const DistributedGraph& g, double mu,
                                 std::int32_t level_work)
    : g_(&g), mu_(mu), level_work_(level_work) {
  if (!(mu > 1.0))
    invalid_input("hierarchical DAG requires mu > 1", "HierarchicalDag");
  if (level_work < 1)
    invalid_input("hierarchical DAG requires level_work >= 1",
                  "HierarchicalDag");
  // Level monotonicity, contiguity, and degree bounds — the full hardened
  // check (also the front door for the Algorithm-1 builders).
  validate_hierarchical_graph(g, level_work);
  std::int32_t h = -1;
  for (const auto& v : g.verts()) h = std::max(h, v.level);
  MS_CHECK(h >= 0);
  level_size_.assign(static_cast<std::size_t>(h) + 1, 0);
  for (const auto& v : g.verts())
    ++level_size_[static_cast<std::size_t>(v.level)];
  level_prefix_.assign(level_size_.size() + 1, 0);
  for (std::size_t i = 0; i < level_size_.size(); ++i)
    level_prefix_[i + 1] = level_prefix_[i] + level_size_[i];
}

std::size_t HierarchicalDag::band_vertex_count(std::int32_t lo,
                                               std::int32_t hi) const {
  MS_CHECK(lo >= 0 && hi <= height() && lo <= hi);
  return level_prefix_[static_cast<std::size_t>(hi) + 1] -
         level_prefix_[static_cast<std::size_t>(lo)];
}

namespace {

/// Largest power of two <= x (x >= 1).
std::uint32_t pow2_floor(double x) {
  std::uint32_t p = 1;
  while (2.0 * p <= x) p <<= 1;
  return p;
}

/// The constant c of §3: smallest integer y >= 2 with mu^z >= z^2 for all
/// z >= y (checked over the relevant range).
std::int32_t mu_constant(double mu) {
  for (std::int32_t c = 2; c < 64; ++c) {
    bool ok = true;
    for (std::int32_t z = c; z <= 128; ++z)
      if (std::pow(mu, z) < static_cast<double>(z) * z) {
        ok = false;
        break;
      }
    if (ok) return c;
  }
  MS_CHECK_MSG(false, "mu too close to 1 for the log* recursion");
  return 64;
}

}  // namespace

namespace {

/// The kGeometric strategy: maximal level runs sharing the same
/// power-of-two grid g = pow2_floor(sqrt(n / prefix)), so each level is
/// processed in a submesh ~proportional to the DAG prefix through it.
HierarchicalPlan make_geometric_plan(const HierarchicalDag& dag,
                                     mesh::MeshShape shape) {
  HierarchicalPlan plan;
  plan.c = mu_constant(dag.mu());
  const double n = static_cast<double>(shape.size());
  std::size_t prefix = 0;
  Band cur;
  bool open = false;
  for (std::int32_t l = 0; l <= dag.height(); ++l) {
    prefix += dag.level_size(l);
    std::uint32_t g = pow2_floor(std::sqrt(n / static_cast<double>(prefix)));
    g = std::min(g, shape.side());
    if (!open || g != cur.grid) {
      if (open) plan.bands.push_back(cur);
      cur = Band{};
      cur.lo = l;
      cur.grid = g;
      cur.submesh_elems =
          shape.size() / (static_cast<std::size_t>(g) * g);
      open = true;
    }
    cur.hi = l;
    cur.split = cur.lo;  // no inner split: every level at submesh scale
    cur.inner_grid = 1;
    cur.vertices = dag.band_vertex_count(cur.lo, cur.hi);
  }
  // The last (grid == 1, or largest) run is B*: it runs at full-mesh scale
  // anyway, and leaving it as B* keeps the reports comparable.
  if (open) {
    if (cur.grid == 1) {
      plan.bstar_lo = cur.lo;
    } else {
      plan.bands.push_back(cur);
      plan.bstar_lo = dag.height() + 1;
      // Ensure B* is non-empty for reporting: peel the last level.
      if (!plan.bands.empty() && plan.bands.back().hi == dag.height()) {
        auto& b = plan.bands.back();
        if (b.lo == b.hi) {
          plan.bstar_lo = b.lo;
          plan.bands.pop_back();
        } else {
          plan.bstar_lo = b.hi;
          b.hi -= 1;
          b.vertices = dag.band_vertex_count(b.lo, b.hi);
        }
      }
    }
  } else {
    plan.bstar_lo = 0;
  }
  return plan;
}

/// Parent submesh size s_{i+1} for band i: the next band's submesh (the
/// full mesh for the last band) — Algorithm 1 steps 1, 2 and 3(a) all run
/// at the B_{i+1}-partitioning scale.
double parent_submesh_elems(const HierarchicalPlan& plan, std::size_t i,
                            mesh::MeshShape shape) {
  return i + 1 < plan.bands.size()
             ? static_cast<double>(plan.bands[i + 1].submesh_elems)
             : static_cast<double>(shape.size());
}

/// The steps 1-3a charges for one band: sort + route at s_{i+1} (steps 1-2,
/// label registers and band sort), then one more route (step 3a, duplicate
/// B_i into its submeshes). Kept as three separate charges so the event
/// sequence matches what hierarchical_cost always recorded.
mesh::Cost one_band_setup(const mesh::CostModel& m, double s_next) {
  return m.sort(s_next) + m.route(s_next) + m.route(s_next);
}

}  // namespace

mesh::Cost band_setup_cost(const HierarchicalPlan& plan, mesh::MeshShape shape,
                           const mesh::CostModel& m) {
  mesh::Cost cost;
  TRACE_SPAN(m.trace, "alg1.steps1-3a: band setup");
  for (std::size_t i = 0; i < plan.bands.size(); ++i)
    cost += one_band_setup(m, parent_submesh_elems(plan, i, shape));
  return cost;
}

HierarchicalPlan make_hierarchical_plan(const HierarchicalDag& dag,
                                        mesh::MeshShape shape,
                                        PlanKind kind) {
  if (kind == PlanKind::kGeometric && dag.height() > 0)
    return make_geometric_plan(dag, shape);
  HierarchicalPlan plan;
  const double h = static_cast<double>(dag.height());
  const double mu = dag.mu();
  plan.c = mu_constant(mu);
  const double n = static_cast<double>(shape.size());

  if (dag.height() == 0) {
    plan.bstar_lo = 0;
    return plan;
  }

  // Iterated logarithm sequence: l[0] = h/2, l[i] = log_mu(l[i-1]) for i>=1
  // except l[1] = log_mu(h) by the paper's convention (log^{(1)} x = log x).
  std::vector<double> l;
  l.push_back(h / 2.0);
  double cur = h;
  while (true) {
    cur = std::log(cur) / std::log(mu);
    if (cur < static_cast<double>(plan.c)) {
      l.push_back(cur);  // l[T] < c terminates the recursion; B* begins here
      break;
    }
    l.push_back(cur);
  }
  // T = log*_mu h = max{ i >= 1 : l[i] >= c }. Bands exist for i = 0..T-1.
  std::size_t T = 0;
  for (std::size_t i = 1; i < l.size(); ++i)
    if (l[i] >= static_cast<double>(plan.c)) T = i;
  if (T == 0) {
    // h < mu^c: the whole (O(1)-level) DAG is B*.
    plan.bstar_lo = 0;
    return plan;
  }

  // Integer band boundaries: band i spans [w_i, w_{i+1} - 1], B* = [w_T, h].
  std::vector<std::int32_t> w(T + 1);
  w[0] = 0;
  for (std::size_t i = 1; i <= T; ++i) {
    const double b = h - 2.0 * l[i];
    w[i] = std::clamp(static_cast<std::int32_t>(std::ceil(b)), w[i - 1],
                      dag.height());
  }
  plan.bstar_lo = w[T];

  for (std::size_t i = 0; i < T; ++i) {
    if (w[i] > w[i + 1] - 1) continue;  // band emptied by rounding
    Band band;
    band.lo = w[i];
    band.hi = w[i + 1] - 1;
    band.vertices = dag.band_vertex_count(band.lo, band.hi);
    // grid = submeshes per side; a copy of B_i must fit in one submesh.
    band.grid = pow2_floor(
        std::sqrt(n / static_cast<double>(std::max<std::size_t>(
                          1, band.vertices))));
    band.grid = std::min(band.grid, shape.side());
    // Grids must strictly shrink band to band (the paper's log^{(i)} h are
    // strictly decreasing); the label scheme of Step 1 needs it.
    if (!plan.bands.empty())
      band.grid = std::min(band.grid, plan.bands.back().grid / 2);
    band.grid = std::max<std::uint32_t>(band.grid, 1);
    band.submesh_elems = shape.size() / (static_cast<std::size_t>(band.grid) *
                                         band.grid);
    // Lemma 1 inner split: B_i^2 = the last 2*ceil(log_mu Delta-h_i) levels.
    const std::int32_t dh = band.hi - band.lo + 1;
    const std::int32_t tail = 2 * static_cast<std::int32_t>(std::ceil(
                                      std::log(std::max(2.0, double(dh))) /
                                      std::log(mu)));
    band.split = std::max(band.lo, band.hi + 1 - tail);
    const std::size_t b1 =
        band.split > band.lo
            ? dag.band_vertex_count(band.lo, band.split - 1)
            : 0;
    band.inner_grid =
        b1 == 0 ? 1
                : pow2_floor(std::sqrt(
                      static_cast<double>(band.submesh_elems) /
                      static_cast<double>(std::max<std::size_t>(1, b1))));
    plan.bands.push_back(band);
  }
  return plan;
}

std::vector<std::int32_t> band_labels(const HierarchicalPlan& plan,
                                      mesh::MeshShape shape) {
  std::vector<std::int32_t> labels(shape.size(), -1);
  // i = T-1 .. 0: smaller bands overwrite later, as in the paper's Step 1.
  for (std::size_t bi = plan.bands.size(); bi-- > 0;) {
    const auto& band = plan.bands[bi];
    const std::uint32_t g_i = band.grid;
    const std::uint32_t g_next = bi + 1 < plan.bands.size()
                                     ? plan.bands[bi + 1].grid
                                     : 1;  // the full mesh
    const mesh::Partition part_i(shape, g_i);
    const std::uint32_t ratio = g_i / std::max<std::uint32_t>(1, g_next);
    if (ratio == 0) continue;
    // Top-left B_i-block of every B_{i+1}-block: block coordinates that are
    // multiples of `ratio` in both directions. Iterate the g_next^2
    // qualifying blocks directly and fill each one — size/ratio^2 writes
    // instead of a predicate test over all shape.size() processors. Blocks
    // own disjoint index sets, so the pass runs host-parallel; bands stay
    // sequential because later (smaller-index) bands overwrite.
    const std::size_t nsel = static_cast<std::size_t>(g_next) * g_next;
    util::parallel_for(std::size_t{0}, nsel, [&](std::size_t s) {
      const std::uint32_t br =
          static_cast<std::uint32_t>(s / g_next) * ratio;
      const std::uint32_t bc =
          static_cast<std::uint32_t>(s % g_next) * ratio;
      const std::uint32_t block = br * g_i + bc;
      for (std::size_t local = 0; local < part_i.block_size(); ++local)
        labels[part_i.global_of(block, local)] =
            static_cast<std::int32_t>(bi);
    });
  }
  return labels;
}

void verify_label_capacity(const HierarchicalPlan& plan,
                           mesh::MeshShape shape,
                           const std::vector<std::int32_t>& labels) {
  MS_CHECK(labels.size() == shape.size());
  for (std::size_t bi = 0; bi < plan.bands.size(); ++bi) {
    const auto& band = plan.bands[bi];
    const std::uint32_t g_next =
        bi + 1 < plan.bands.size() ? plan.bands[bi + 1].grid : 1;
    const mesh::Partition part_next(shape, std::max<std::uint32_t>(1, g_next));
    // Count label-i processors per B_{i+1}-block, one block per task: each
    // block owns a disjoint index set, so the counts are race-free and
    // identical at any thread count.
    std::vector<std::size_t> count(part_next.block_count(), 0);
    util::parallel_for(std::size_t{0}, count.size(), [&](std::size_t b) {
      std::size_t c = 0;
      for (std::size_t local = 0; local < part_next.block_size(); ++local)
        if (labels[part_next.global_of(static_cast<std::uint32_t>(b), local)] ==
            static_cast<std::int32_t>(bi))
          ++c;
      count[b] = c;
    });
    for (const auto c : count) {
      // Theta(|B_i|) with explicit constants: at least a third of the
      // B_i-submesh survives the overwrites, and the copy of B_i fits with
      // at most 4 records per processor (O(1) memory).
      MS_CHECK_MSG(3 * c >= band.submesh_elems,
                   "label capacity below a third of a B_i-submesh");
      MS_CHECK_MSG(4 * c >= band.vertices,
                   "label-i processors cannot store a copy of B_i");
    }
  }
}

Alg1RetrySchedule draw_alg1_retries(mesh::FaultPlan& fault,
                                    std::size_t num_bands) {
  Alg1RetrySchedule s;
  s.step0 = fault.draw_phase("alg1.step0");
  s.bands.reserve(num_bands);
  for (std::size_t i = 0; i < num_bands; ++i)
    s.bands.push_back(fault.draw_phase("alg1.band " + std::to_string(i)));
  s.bstar = fault.draw_phase("alg1.bstar");
  return s;
}

HierarchicalRunResult hierarchical_cost(
    const HierarchicalDag& dag, const HierarchicalPlan& plan,
    mesh::MeshShape shape, const mesh::CostModel& m,
    const std::vector<std::int32_t>* sweeps, bool charge_band_setup,
    const Alg1RetrySchedule* retries) {
  HierarchicalRunResult res;
  // Every charge goes through a TraceRecorder and the per-band report is
  // read back out of it (span deltas), so BandCostReport is a view over
  // the same data a --trace export sees. When the caller attached no sink,
  // a local recorder keeps the view available.
  trace::TraceRecorder local_rec("counting");
  mesh::CostModel mt = m;
  if (mt.trace == nullptr) mt.trace = &local_rec;
  trace::TraceRecorder* rec = mt.trace;

  const double p = static_cast<double>(shape.size());
  // Sweeps per level: measured if provided, else the static bound.
  auto sweeps_at = [&](std::int32_t level) {
    if (sweeps == nullptr) return static_cast<double>(dag.level_work());
    MS_CHECK(static_cast<std::size_t>(level) < sweeps->size());
    return static_cast<double>((*sweeps)[static_cast<std::size_t>(level)]);
  };
  res.level_sweeps.assign(static_cast<std::size_t>(dag.height()) + 1, 0);
  for (std::int32_t l = 0; l <= dag.height(); ++l)
    res.level_sweeps[static_cast<std::size_t>(l)] =
        static_cast<std::int32_t>(sweeps_at(l));

  // Standalone armed calls draw their own schedule; hierarchical_multisearch
  // passes the one it already drew so the draws are never double-consumed.
  std::optional<Alg1RetrySchedule> own_retries;
  if (retries == nullptr && mt.fault != nullptr && mt.fault->armed()) {
    own_retries = draw_alg1_retries(*mt.fault, plan.bands.size());
    retries = &*own_retries;
  }
  // Charge one checkpoint unit under its retry draw: each failed attempt
  // re-charges the unit in full under a "fault.retry" span, then the summed
  // exponential backoff is charged, then the successful attempt.
  auto with_retries = [&](const mesh::PhaseDraw* d, const std::string& name,
                          auto&& body) -> mesh::Cost {
    mesh::Cost c;
    if (d != nullptr && d->failed_attempts > 0) {
      for (std::uint32_t a = 0; a < d->failed_attempts; ++a) {
        trace::SpanScope retry(rec, "fault.retry " + name);
        c += body();
      }
      c += mt.backoff(p, d->backoff_steps);
    }
    c += body();
    return c;
  };

  TRACE_SPAN(rec, "algorithm1");

  {
    // Initial multistep: every query visits the first node of its path.
    TRACE_SPAN(rec, "alg1.step0: initial multistep");
    res.cost += with_retries(retries ? &retries->step0 : nullptr, "alg1.step0",
                             [&] { return mt.rar(p); });
  }

  for (std::size_t i = 0; i < plan.bands.size(); ++i) {
    const Band& band = plan.bands[i];
    BandCostReport rep;
    rep.lo = band.lo;
    rep.hi = band.hi;
    rep.vertices = band.vertices;
    rep.grid = band.grid;
    trace::SpanScope band_span(
        rec, "band " + std::to_string(i) + " [L" + std::to_string(band.lo) +
                 "..L" + std::to_string(band.hi) + "]");

    // The band's setup + Lemma-1 solve form one checkpoint unit; a failed
    // attempt re-charges the whole unit (the report fields are overwritten
    // by every attempt and end holding the final — identical — values).
    const double s_i = static_cast<double>(band.submesh_elems);
    auto band_body = [&]() -> mesh::Cost {
      mesh::Cost c;
      if (charge_band_setup) {
        trace::SpanScope setup_span(rec, "alg1.steps1-3a: band setup");
        c += one_band_setup(mt, parent_submesh_elems(plan, i, shape));
        rep.setup_steps = setup_span.sim_elapsed();
      }
      // Step 3(b): Lemma 1 on every B_i-submesh, independently in parallel —
      // all submeshes run the same lockstep sweeps, so max == one submesh.
      trace::SpanScope solve_span(rec, "alg1.step3b: lemma1 solve");
      const std::int32_t b1_levels = band.split - band.lo;
      if (b1_levels > 0) {
        // Phase 1: replicate B_i^1 into inner sub-submeshes, then walk its
        // levels locally (sweeps_at(l) RAR sweeps per level).
        TRACE_SPAN(rec, "lemma1.B1: replicate + local sweeps");
        const double s_inner =
            s_i / (static_cast<double>(band.inner_grid) * band.inner_grid);
        c += mt.route(s_i);
        for (std::int32_t l = band.lo; l < band.split; ++l)
          c += mt.rar(s_inner, sweeps_at(l));
      }
      {
        // Phase 2: walk B_i^2 level-by-level at submesh scale.
        TRACE_SPAN(rec, "lemma1.B2: submesh level sweeps");
        for (std::int32_t l = band.split; l <= band.hi; ++l)
          c += mt.rar(s_i, sweeps_at(l));
      }
      rep.solve_steps = solve_span.sim_elapsed();
      return c;
    };
    res.cost += with_retries(retries ? &retries->bands[i] : nullptr,
                             "alg1.band " + std::to_string(i), band_body);

    const double dh = static_cast<double>(band.hi - band.lo + 1);
    rep.lemma1_bound =
        std::sqrt(static_cast<double>(std::max<std::size_t>(1, band.vertices))) *
        std::max(1.0, std::log(dh) / std::log(dag.mu()));
    res.bands.push_back(rep);
  }

  {
    // Step 4: B* level-by-level on the whole mesh (O(1) levels).
    trace::SpanScope bstar_span(rec, "alg1.step4: B* level sweeps");
    res.bstar_levels = dag.height() - plan.bstar_lo + 1;
    res.cost += with_retries(retries ? &retries->bstar : nullptr, "alg1.bstar",
                             [&]() -> mesh::Cost {
                               mesh::Cost c;
                               for (std::int32_t l = plan.bstar_lo;
                                    l <= dag.height(); ++l)
                                 c += mt.rar(p, sweeps_at(l));
                               return c;
                             });
    res.bstar_steps = bstar_span.sim_elapsed();
  }
  return res;
}

}  // namespace meshsearch::msearch
