// Query-set helpers: construction, comparison against an oracle run, and
// simple workload generators shared by tests and benchmarks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "multisearch/types.hpp"
#include "util/rng.hpp"

namespace meshsearch::msearch {

/// m blank queries with qids 0..m-1.
std::vector<Query> make_queries(std::size_t m);

/// Outcome fields of a finished query, for oracle comparison.
struct QueryOutcome {
  std::int32_t steps = 0;
  std::int64_t acc0 = 0;
  std::int64_t acc1 = 0;
  std::int32_t result = kNoVertex;
  friend bool operator==(const QueryOutcome&, const QueryOutcome&) = default;
};

std::vector<QueryOutcome> outcomes(const std::vector<Query>& queries);

/// Human-readable first difference between two outcome vectors, or "" if
/// equal. Used by tests to report oracle mismatches precisely.
std::string diff_outcomes(const std::vector<QueryOutcome>& a,
                          const std::vector<QueryOutcome>& b);

}  // namespace meshsearch::msearch
