// Exporters for TraceRecorder: Chrome/Perfetto trace-event JSON for the
// timeline view, and a flat metrics summary (JSON or util::Table -> CSV)
// for cost attribution.
//
// The Perfetto timeline uses SIMULATED time: one mesh step is rendered as
// one microsecond, so a span's extent on screen is its share of the run's
// simulated cost (the quantity the paper's theorems bound). Wall-clock
// durations ride along as span args. Load the file at https://ui.perfetto.dev
// or chrome://tracing.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"
#include "util/table.hpp"

namespace meshsearch::trace {

/// Chrome trace-event JSON (the "JSON Object Format": {"traceEvents": [...]})
/// with phase spans on one track and individual primitive executions on a
/// second track.
void write_trace_json(const TraceRecorder& rec, std::ostream& os);

/// Same, to a file. Warns to stderr and returns false on I/O failure.
bool write_trace_json_file(const TraceRecorder& rec, const std::string& path);

/// Flat metrics summary: engine, total steps, the per-(primitive, p)
/// histogram, and every span with simulated + wall durations.
void write_metrics_json(const TraceRecorder& rec, std::ostream& os);

/// Same, to a file. Warns to stderr and returns false on I/O failure.
bool write_metrics_json_file(const TraceRecorder& rec, const std::string& path);

/// Per-primitive cost-attribution table (primitive, submesh size, calls,
/// steps, share of total). Named metrics (TraceRecorder::metric) follow as
/// "metric:<name>" rows with the value in the steps column. Print it or
/// mirror it to CSV via util::Table.
util::Table metrics_table(const TraceRecorder& rec);

}  // namespace meshsearch::trace
