#include "trace/stats.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/check.hpp"

namespace meshsearch::stats {

namespace {

std::uint64_t next_registry_uid() {
  static std::atomic<std::uint64_t> uid{1};
  return uid.fetch_add(1, std::memory_order_relaxed);
}

/// Tiny per-thread cache of (registry uid -> shard). Registries are keyed by
/// a process-unique uid, never by address, so a cache entry can never
/// resolve to a shard of a destroyed-and-reallocated registry. Bounded ring:
/// an evicted entry just costs one mutex hit on the next update.
struct TlsShardCache {
  static constexpr std::size_t kEntries = 8;
  std::array<std::uint64_t, kEntries> uid{};
  std::array<void*, kEntries> shard{};
  std::size_t next = 0;

  void* find(std::uint64_t u) const {
    for (std::size_t i = 0; i < kEntries; ++i)
      if (uid[i] == u) return shard[i];
    return nullptr;
  }
  void put(std::uint64_t u, void* s) {
    uid[next] = u;
    shard[next] = s;
    next = (next + 1) % kEntries;
  }
};

thread_local TlsShardCache tls_shards;

}  // namespace

/// One thread's slice of every counter and histogram. Slots live in
/// lazily-published fixed-size blocks so registering new instruments never
/// moves existing slots (the owning thread allocates; snapshot readers load
/// block pointers with acquire).
struct StatsRegistry::Shard {
  struct CounterBlock {
    std::array<std::atomic<std::uint64_t>, kBlockSlots> v{};
  };
  struct HistSlot {
    std::array<std::atomic<std::uint64_t>, util::LogHistogram::kBucketCount>
        buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0};
    std::atomic<double> min{0};
    std::atomic<double> max{0};
  };
  struct HistBlock {
    std::array<HistSlot, kBlockSlots> v{};
  };

  std::array<std::atomic<CounterBlock*>, kMaxBlocks> counter_blocks{};
  std::array<std::atomic<HistBlock*>, kMaxBlocks> hist_blocks{};
  std::vector<std::unique_ptr<CounterBlock>> counter_owner;
  std::vector<std::unique_ptr<HistBlock>> hist_owner;
  std::mutex alloc_mu;  ///< serializes block publication (cold path)

  std::atomic<std::uint64_t>* counter_slot(std::uint32_t id, bool create) {
    const std::size_t b = id / kBlockSlots;
    if (b >= kMaxBlocks) return nullptr;
    CounterBlock* blk = counter_blocks[b].load(std::memory_order_acquire);
    if (blk == nullptr) {
      if (!create) return nullptr;
      const std::lock_guard<std::mutex> lock(alloc_mu);
      blk = counter_blocks[b].load(std::memory_order_acquire);
      if (blk == nullptr) {
        auto owned = std::make_unique<CounterBlock>();
        blk = owned.get();
        counter_owner.push_back(std::move(owned));
        counter_blocks[b].store(blk, std::memory_order_release);
      }
    }
    return &blk->v[id % kBlockSlots];
  }

  HistSlot* hist_slot(std::uint32_t id, bool create) {
    const std::size_t b = id / kBlockSlots;
    if (b >= kMaxBlocks) return nullptr;
    HistBlock* blk = hist_blocks[b].load(std::memory_order_acquire);
    if (blk == nullptr) {
      if (!create) return nullptr;
      const std::lock_guard<std::mutex> lock(alloc_mu);
      blk = hist_blocks[b].load(std::memory_order_acquire);
      if (blk == nullptr) {
        auto owned = std::make_unique<HistBlock>();
        blk = owned.get();
        hist_owner.push_back(std::move(owned));
        hist_blocks[b].store(blk, std::memory_order_release);
      }
    }
    return &blk->v[id % kBlockSlots];
  }
};

StatsRegistry::StatsRegistry(bool enabled)
    : enabled_(enabled), uid_(next_registry_uid()) {}

StatsRegistry::~StatsRegistry() = default;

std::uint32_t StatsRegistry::intern(std::vector<std::string>& names,
                                    NameMap& ids, std::string_view name) {
  // Callers hold mu_.
  const auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names.size());
  MS_CHECK_MSG(id < kBlockSlots * kMaxBlocks,
               "StatsRegistry instrument limit exceeded");
  names.emplace_back(name);
  ids.emplace(names.back(), id);
  return id;
}

StatsRegistry::Counter StatsRegistry::counter(std::string_view name) {
  if (!enabled()) return Counter{};
  const std::lock_guard<std::mutex> lock(mu_);
  return Counter{this, intern(counter_names_, counter_ids_, name)};
}

StatsRegistry::Gauge StatsRegistry::gauge(std::string_view name) {
  if (!enabled()) return Gauge{};
  const std::lock_guard<std::mutex> lock(mu_);
  return Gauge{this, intern(gauge_names_, gauge_ids_, name)};
}

StatsRegistry::Histogram StatsRegistry::histogram(std::string_view name) {
  if (!enabled()) return Histogram{};
  const std::lock_guard<std::mutex> lock(mu_);
  return Histogram{this, intern(hist_names_, hist_ids_, name)};
}

StatsRegistry::Shard* StatsRegistry::shard_for_this_thread() {
  if (auto* cached = tls_shards.find(uid_))
    return static_cast<Shard*>(cached);
  const std::lock_guard<std::mutex> lock(mu_);
  // Re-check by thread id: a TLS-cache eviction must not mint a second
  // shard for the same thread (sums would still merge, but memory would
  // grow with every eviction).
  Shard*& s = shard_by_thread_[std::this_thread::get_id()];
  if (s == nullptr) {
    shards_.push_back(std::make_unique<Shard>());
    s = shards_.back().get();
  }
  tls_shards.put(uid_, s);
  return s;
}

void StatsRegistry::Counter::add(std::uint64_t delta) const {
  if (reg_ == nullptr || !reg_->enabled() || delta == 0) return;
  auto* slot = reg_->shard_for_this_thread()->counter_slot(id_, true);
  if (slot != nullptr) slot->fetch_add(delta, std::memory_order_relaxed);
}

std::atomic<double>* StatsRegistry::gauge_slot(std::uint32_t id, bool create) {
  const std::size_t b = id / kBlockSlots;
  if (b >= kMaxBlocks) return nullptr;
  GaugeBlock* blk = gauge_blocks_[b].load(std::memory_order_acquire);
  if (blk == nullptr) {
    if (!create) return nullptr;
    const std::lock_guard<std::mutex> lock(mu_);
    blk = gauge_blocks_[b].load(std::memory_order_acquire);
    if (blk == nullptr) {
      auto owned = std::make_unique<GaugeBlock>();
      blk = owned.get();
      gauge_block_owner_.push_back(std::move(owned));
      gauge_blocks_[b].store(blk, std::memory_order_release);
    }
  }
  return &blk->v[id % kBlockSlots];
}

void StatsRegistry::Gauge::set(double value) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  auto* slot = reg_->gauge_slot(id_, true);
  if (slot != nullptr) slot->store(value, std::memory_order_relaxed);
}

void StatsRegistry::Histogram::observe(double value) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  auto* slot = reg_->shard_for_this_thread()->hist_slot(id_, true);
  if (slot == nullptr) return;
  if (!(value >= 0)) value = 0;  // match LogHistogram's clamp
  slot->buckets[util::LogHistogram::bucket_index(value)].fetch_add(
      1, std::memory_order_relaxed);
  const std::uint64_t prev = slot->count.fetch_add(1, std::memory_order_relaxed);
  slot->sum.fetch_add(value, std::memory_order_relaxed);
  if (prev == 0) {
    // First observation on this shard seeds min/max; the shard is only
    // written by this thread, so plain stores suffice for correctness and
    // the atomics keep snapshot readers defined.
    slot->min.store(value, std::memory_order_relaxed);
    slot->max.store(value, std::memory_order_relaxed);
  } else {
    if (value < slot->min.load(std::memory_order_relaxed))
      slot->min.store(value, std::memory_order_relaxed);
    if (value > slot->max.load(std::memory_order_relaxed))
      slot->max.store(value, std::memory_order_relaxed);
  }
}

Snapshot StatsRegistry::snapshot() const {
  Snapshot out;
  std::vector<std::string> cnames, gnames, hnames;
  std::vector<Shard*> shards;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    cnames = counter_names_;
    gnames = gauge_names_;
    hnames = hist_names_;
    shards.reserve(shards_.size());
    for (const auto& s : shards_) shards.push_back(s.get());
  }
  out.counters.reserve(cnames.size());
  for (std::uint32_t id = 0; id < cnames.size(); ++id) {
    CounterSnapshot c;
    c.name = cnames[id];
    for (Shard* s : shards)
      if (auto* slot = s->counter_slot(id, false))
        c.value += slot->load(std::memory_order_relaxed);
    out.counters.push_back(std::move(c));
  }
  out.gauges.reserve(gnames.size());
  for (std::uint32_t id = 0; id < gnames.size(); ++id) {
    GaugeSnapshot g;
    g.name = gnames[id];
    if (auto* slot = const_cast<StatsRegistry*>(this)->gauge_slot(id, false))
      g.value = slot->load(std::memory_order_relaxed);
    out.gauges.push_back(std::move(g));
  }
  out.histograms.reserve(hnames.size());
  for (std::uint32_t id = 0; id < hnames.size(); ++id) {
    HistogramSnapshot h;
    h.name = hnames[id];
    double sum = 0;
    double mn = 0, mx = 0;
    bool any = false;
    for (Shard* s : shards) {
      auto* slot = s->hist_slot(id, false);
      if (slot == nullptr) continue;
      if (slot->count.load(std::memory_order_relaxed) == 0) continue;
      for (std::size_t b = 0; b < util::LogHistogram::kBucketCount; ++b) {
        const auto n = slot->buckets[b].load(std::memory_order_relaxed);
        if (n != 0) h.hist.add_bucket(b, n);
      }
      sum += slot->sum.load(std::memory_order_relaxed);
      const double smin = slot->min.load(std::memory_order_relaxed);
      const double smax = slot->max.load(std::memory_order_relaxed);
      if (!any) {
        mn = smin;
        mx = smax;
        any = true;
      } else {
        mn = std::min(mn, smin);
        mx = std::max(mx, smax);
      }
    }
    if (any) h.hist.override_moments(sum, mn, mx);
    out.histograms.push_back(std::move(h));
  }
  return out;
}

std::size_t StatsRegistry::gauge_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return gauge_names_.size();
}

std::size_t StatsRegistry::shard_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

void StatsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : shards_) {
    for (auto& owned : s->counter_owner)
      for (auto& v : owned->v) v.store(0, std::memory_order_relaxed);
    for (auto& owned : s->hist_owner)
      for (auto& slot : owned->v) {
        for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
        slot.count.store(0, std::memory_order_relaxed);
        slot.sum.store(0, std::memory_order_relaxed);
        slot.min.store(0, std::memory_order_relaxed);
        slot.max.store(0, std::memory_order_relaxed);
      }
  }
  for (auto& owned : gauge_block_owner_)
    for (auto& v : owned->v) v.store(0, std::memory_order_relaxed);
}

bool StatsRegistry::env_enabled() {
  const char* env = std::getenv("MESHSEARCH_STATS");
  if (env == nullptr) return false;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "") != 0 &&
         std::strcmp(env, "off") != 0 && std::strcmp(env, "false") != 0;
}

StatsRegistry& StatsRegistry::global() {
  static StatsRegistry reg(env_enabled());
  return reg;
}

ScopedWallTimer::ScopedWallTimer(StatsRegistry& reg, std::string_view name) {
  if (!reg.enabled()) return;
  hist_ = reg.histogram(name);
  armed_ = true;
  begin_ = std::chrono::steady_clock::now();
}

ScopedWallTimer::~ScopedWallTimer() {
  if (!armed_) return;
  const auto us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - begin_)
                      .count();
  hist_.observe(us);
}

}  // namespace meshsearch::stats
